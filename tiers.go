package emogi

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// Re-exported memory-tier types so user code only imports this package.
type (
	// Tier is one level of the simulated memory hierarchy: a capacity plus
	// the interconnect and device-side cost models accesses to it pay.
	Tier = memsys.Tier
	// TierStack is an ordered hierarchy: HBM, host DRAM, optionally a
	// CXL-class external tier.
	TierStack = memsys.TierStack
	// TierKind identifies a tier's position in the hierarchy.
	TierKind = memsys.TierKind
	// Placement selects which host-side tier(s) a graph's edge list is
	// homed on (see WithPlacement and Request.Placement).
	Placement = core.Placement
)

// Tier kinds.
const (
	TierHBM  = memsys.TierHBM
	TierDRAM = memsys.TierDRAM
	TierCXL  = memsys.TierCXL
)

// Placements.
const (
	PlaceAuto = core.PlaceAuto
	PlaceDRAM = core.PlaceDRAM
	PlaceCXL  = core.PlaceCXL
)

// TwoTier returns the canonical two-tier stack (GPU HBM over host DRAM
// behind one PCIe link), equivalent to the classic configuration fields.
func TwoTier(gpuBytes, hostBytes int64, hbm, dram memsys.DRAMModel, link pcie.LinkConfig) TierStack {
	return memsys.TwoTier(gpuBytes, hostBytes, hbm, dram, link)
}

// ThreeTierCXL extends a two-tier base with a CXL-class external tier of
// the given capacity, using the calibrated CXL link and expander models.
func ThreeTierCXL(base TierStack, cxlBytes int64) TierStack {
	return memsys.ThreeTierCXL(base, cxlBytes)
}

// ParsePlacement maps a wire name ("auto", "dram", "cxl") to a Placement.
func ParsePlacement(s string) (Placement, error) { return core.ParsePlacement(s) }

// TierStack returns the machine's memory hierarchy as a tier stack: the
// explicit SystemConfig.Tiers when set, otherwise the canonical two-tier
// stack derived from the classic GPU fields. Consumers that need the
// CPU-GPU interconnect model should read it from here
// (cfg.TierStack().DRAM().Link) rather than from GPU.Link directly.
func (cfg SystemConfig) TierStack() TierStack {
	if cfg.Tiers != nil {
		return cfg.Tiers
	}
	return memsys.TwoTier(cfg.GPU.MemBytes, cfg.GPU.HostMemBytes,
		cfg.GPU.HBM, cfg.GPU.HostDRAM, cfg.GPU.Link)
}

// TierStackEntry is one selectable tier stack in the catalog — what
// GET /v1/tiers serves and what the binaries' -tiers flags accept.
type TierStackEntry struct {
	// Name is the canonical catalog name.
	Name string `json:"name"`
	// Aliases are accepted spellings that resolve to this entry.
	Aliases []string `json:"aliases,omitempty"`
	// Tiers is the number of levels in the stack.
	Tiers int `json:"tiers"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
}

// tierCatalog is the named tier-stack registry, in catalog order. The CXL
// tier's capacity is 4x host DRAM — enough to home graphs that oversubscribe
// DRAM by the ratios the oversubscription suite exercises.
var tierCatalog = []TierStackEntry{
	{
		Name:        "2tier",
		Aliases:     []string{"two-tier", "pcie", "default"},
		Tiers:       2,
		Description: "GPU HBM + host DRAM over PCIe (the classic EMOGI machine)",
	},
	{
		Name:        "3tier-cxl",
		Aliases:     []string{"3tier", "cxl", "three-tier"},
		Tiers:       3,
		Description: "GPU HBM + host DRAM + CXL-class external memory (capacity 4x host DRAM) behind a CXL 2.0 x8 link",
	},
}

// TierStacks returns the selectable tier-stack catalog in registry order.
func TierStacks() []TierStackEntry {
	out := make([]TierStackEntry, len(tierCatalog))
	copy(out, tierCatalog)
	return out
}

// TierStackNames returns every accepted tier-stack spelling (canonical
// names and aliases), sorted — error-message material.
func TierStackNames() []string {
	var names []string
	for _, e := range tierCatalog {
		names = append(names, e.Name)
		names = append(names, e.Aliases...)
	}
	sort.Strings(names)
	return names
}

// TierStackByName resolves a tier-stack catalog entry by canonical name or
// alias (case-insensitive; empty means "2tier"). Unknown names return an
// error listing every accepted spelling.
func TierStackByName(name string) (TierStackEntry, error) {
	e, err := resolveTierStack(name)
	if err != nil {
		return TierStackEntry{}, err
	}
	return *e, nil
}

// resolveTierStack maps a name or alias to its catalog entry.
func resolveTierStack(name string) (*TierStackEntry, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	if s == "" {
		s = "2tier"
	}
	for i := range tierCatalog {
		e := &tierCatalog[i]
		if e.Name == s {
			return e, nil
		}
		for _, a := range e.Aliases {
			if a == s {
				return e, nil
			}
		}
	}
	return nil, fmt.Errorf("emogi: unknown tier stack %q (valid: %s)",
		name, strings.Join(TierStackNames(), ", "))
}

// ApplyTierStack applies a named catalog tier stack to a system
// configuration: "2tier" (and its aliases) leaves the classic two-tier
// machine untouched; "3tier-cxl" attaches a CXL-class external tier with
// capacity 4x the configured host DRAM. Unknown names list the valid
// spellings.
func ApplyTierStack(cfg SystemConfig, name string) (SystemConfig, error) {
	e, err := resolveTierStack(name)
	if err != nil {
		return cfg, err
	}
	switch e.Name {
	case "2tier":
		return cfg, nil
	case "3tier-cxl":
		base := cfg.Tiers
		if base == nil {
			base = memsys.TwoTier(cfg.GPU.MemBytes, cfg.GPU.HostMemBytes,
				cfg.GPU.HBM, cfg.GPU.HostDRAM, cfg.GPU.Link)
		}
		cfg.Tiers = memsys.ThreeTierCXL(base, 4*cfg.GPU.HostMemBytes)
		return cfg, nil
	default:
		return cfg, fmt.Errorf("emogi: tier stack %q has no builder", e.Name)
	}
}
