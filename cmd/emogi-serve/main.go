// Command emogi-serve exposes the concurrent traversal service over
// HTTP+JSON: a pool of datasets loaded on one simulated system, served
// with bounded admission, per-request deadlines, and a result cache.
//
//	emogi-serve -graphs GK,GU -scale 0.05 -addr :8080
//
// Endpoints:
//
//	POST /v1/traverse   {"dataset":"GK","algo":"bfs","src":12,"variant":"merged+aligned","timeout_ms":500}
//	GET  /v1/algorithms registered traversal algorithms
//	GET  /v1/datasets   loaded graphs
//	GET  /v1/transports selectable transport policies
//	GET  /v1/tiers      selectable memory-tier stacks (?name= resolves one, 400 on unknown)
//	GET  /metrics       Prometheus text exposition (queue, cache, outcomes, stage latencies)
//	GET  /healthz       health probe: 503 while draining or a device is unhealthy
//	GET  /debug/requests           flight recorder, newest-first (?limit=)
//	GET  /debug/requests/slowest   flight recorder, slowest-first (?limit=)
//	GET  /debug/pprof/  CPU/heap profiles (only with -pprof)
//
// Every request carries a trace ID: an inbound X-Request-ID is honored
// (and echoed on the response, error responses included); otherwise one
// is generated. The ID threads through the structured logs, the request's
// lifecycle spans, the flight recorder, and the -trace timeline.
//
// Overload semantics: requests beyond the -concurrency workers and the
// -queue-depth admission queue are rejected immediately with 429; a
// request whose timeout_ms (or client disconnect) fires mid-run stops at
// the engine's next round boundary and returns 504.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	emogi "repro"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		graphs   = flag.String("graphs", "GK", "comma-separated dataset symbols to load (see -list equivalents in cmd/emogi)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = the standard 1:1000 reduction)")
		seed     = flag.Int64("seed", 42, "graph synthesis seed")
		platform = flag.String("platform", "v100", "platform: v100, titanxp, a100-pcie3, a100-pcie4")
		tiers    = flag.String("tiers", "2tier",
			"memory-tier stack: 2tier (the classic machine) or 3tier-cxl (adds CXL-class external memory); see GET /v1/tiers")
		paging = flag.String("paging", "cpu",
			"UVM paging model: cpu (serialized fault handler) or gpu (GPU-driven page fetch)")
		placement = flag.String("placement", "auto",
			"edge-list tier placement: auto (DRAM with CXL spill), dram, or cxl")
		transport = flag.String("transport", "static-zc",
			"edge-list transport policy: static-zc, static-uvm, or adaptive (v1 spellings zerocopy/uvm still accepted)")
		elemBytes   = flag.Int("elem", 8, "edge element bytes (4 or 8)")
		concurrency = flag.Int("concurrency", 4, "worker goroutines executing traversals")
		queueDepth  = flag.Int("queue-depth", 64, "admission queue depth (beyond it requests get 429)")
		cacheSize   = flag.Int("cache", 128, "result cache entries (0 default, negative disables)")
		workers     = flag.Int("workers", 0, "host goroutines per kernel launch (0 = GOMAXPROCS)")

		batchWindow = flag.Duration("batch-window", 0,
			"coalesce same-dataset/algo/variant requests arriving within this window into one batched run (0 disables)")
		batchMax = flag.Int("batch-max", 32, "max distinct sources per coalesced batch (a full batch dispatches early)")

		faultProfile = flag.String("fault-profile", "none",
			fmt.Sprintf("fault-injection profile: %s", strings.Join(fault.Names(), ", ")))
		faultSeed = flag.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults)")
		faultRate = flag.Float64("fault-rate", 0,
			"override the profile's transient read-fault rate (0 keeps the profile default)")

		flightRecorder = flag.Int("flight-recorder", telemetry.DefaultRecorderCapacity,
			"flight-recorder capacity: last N completed requests served at /debug/requests (0 disables)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOut = flag.String("trace", "",
			"write a Chrome trace-event timeline (device tracks + per-request tracks) to this file on shutdown")
		drainGrace = flag.Duration("drain-grace", 0,
			"keep serving (with /healthz at 503) this long after SIGTERM before closing, so load balancers can route away")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg, err := parsePlatform(*platform, *scale)
	if err != nil {
		fatal(logger, "bad platform", err)
	}
	cfg.Workers = *workers
	cfg, err = emogi.ApplyTierStack(cfg, *tiers)
	if err != nil {
		fatal(logger, "bad tier stack", err)
	}
	gpuPaging, err := parsePaging(*paging)
	if err != nil {
		fatal(logger, "bad paging model", err)
	}
	cfg.GPUDrivenPaging = gpuPaging
	place, err := emogi.ParsePlacement(*placement)
	if err != nil {
		fatal(logger, "bad placement", err)
	}
	pol, err := emogi.PolicyByName(*transport)
	if err != nil {
		fatal(logger, "bad transport", err)
	}
	faultCfg, err := fault.ProfileConfig(*faultProfile, *faultSeed)
	if err != nil {
		fatal(logger, "bad fault profile", err)
	}
	if *faultRate > 0 {
		faultCfg.ReadFaultRate = *faultRate
	}
	inj, err := fault.New(faultCfg)
	if err != nil {
		fatal(logger, "bad fault config", err)
	}
	cfg.Faults = inj
	if inj != nil {
		logger.Info("fault injection enabled", "profile", inj.Name(), "seed", *faultSeed)
	}

	// Observability wiring: one registry backs /metrics; the collector
	// attributes device events (kernels, rounds, copies) to it and — when
	// a request is running — to that request's trace; the recorder and
	// health feed /debug/requests and /healthz.
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	cfg.Telemetry = telemetry.NewCollector(reg, tracer)
	var recorder *telemetry.Recorder
	if *flightRecorder > 0 {
		recorder = telemetry.NewRecorder(*flightRecorder)
	}
	health := telemetry.NewHealth(reg)

	sys := emogi.NewSystem(cfg)
	svc := service.New(sys, service.Config{
		Concurrency:  *concurrency,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheSize,
		Metrics:      reg,
		BatchWindow:  *batchWindow,
		BatchMax:     *batchMax,
		Recorder:     recorder,
		Health:       health,
		Tracer:       tracer,
	})
	for _, sym := range strings.Split(*graphs, ",") {
		sym = strings.TrimSpace(sym)
		if sym == "" {
			continue
		}
		g, err := emogi.BuildDataset(sym, *scale, *seed)
		if err != nil {
			fatal(logger, "building "+sym, err)
		}
		if err := svc.AddGraph(sym, g,
			emogi.WithTransportPolicy(pol), emogi.WithElemBytes(*elemBytes),
			emogi.WithPlacement(place)); err != nil {
			fatal(logger, "loading "+sym, err)
		}
		logger.Info("loaded dataset", "dataset", sym,
			"vertices", g.NumVertices(), "edges", g.NumEdges(), "transport", pol.Name())
	}

	mux := newServeMux(serveDeps{
		svc:      svc,
		reg:      reg,
		recorder: recorder,
		health:   health,
		logger:   logger,
		pprof:    *pprofOn,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen", err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve", err)
		}
	}()
	logger.Info("serving", "addr", ln.Addr().String(), "pprof", *pprofOn,
		"flight_recorder", recorder.Capacity())

	// Drain-then-stop on SIGINT/SIGTERM. The sequence is deliberate:
	// first flip /healthz to 503 while still accepting requests (the
	// drain grace), so load balancers route away before connections start
	// being refused; then stop the listener and finish in-flight
	// requests; then stop the service and unload.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("draining", "grace", drainGrace.String())
	health.SetDraining(true)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	svc.Close()
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			logger.Error("writing trace", "path", *traceOut, "err", err)
		} else {
			logger.Info("wrote trace", "path", *traceOut, "events", tracer.Len())
		}
	}
	logger.Info("stopped")
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

// writeTrace renders the accumulated timeline to path.
func writeTrace(path string, tracer *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveDeps is everything the HTTP surface needs; newServeMux keeps the
// routing in one testable place.
type serveDeps struct {
	svc      *service.Service
	reg      *telemetry.Registry
	recorder *telemetry.Recorder
	health   *telemetry.Health
	logger   *slog.Logger
	pprof    bool
}

// newServeMux assembles the server's routes: the traversal API plus the
// telemetry surface (/metrics, /healthz, /debug/requests, optional
// pprof).
func newServeMux(d serveDeps) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traverse", handleTraverse(d.svc, d.logger))
	mux.HandleFunc("/v1/algorithms", handleAlgorithms)
	mux.HandleFunc("/v1/datasets", handleDatasets(d.svc))
	mux.HandleFunc("/v1/transports", handleTransports)
	mux.HandleFunc("/v1/tiers", handleTiers)
	mux.Handle("/", telemetry.NewHandler(telemetry.HandlerOptions{
		Registry: d.reg,
		Recorder: d.recorder,
		Health:   d.health,
		Pprof:    d.pprof,
	}))
	return mux
}

// requestIDHeader carries the request's trace ID in and out.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an inbound trace ID; longer ones are replaced so
// a client cannot balloon the recorder or the logs.
const maxRequestIDLen = 128

// requestID honors an inbound X-Request-ID (trimmed, length-capped) or
// generates a fresh trace ID.
func requestID(r *http.Request) string {
	id := strings.TrimSpace(r.Header.Get(requestIDHeader))
	if id == "" || len(id) > maxRequestIDLen {
		return telemetry.NewTraceID()
	}
	return id
}

// traverseRequest is the POST /v1/traverse body.
type traverseRequest struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Src     int    `json:"src"`
	// Variant is "naive", "merged", or "merged+aligned" (the default).
	Variant string `json:"variant"`
	// Transport optionally overrides the dataset's transport policy for
	// this request ("static-zc", "static-uvm", "adaptive", or a v1
	// spelling; see GET /v1/transports). Unknown names are rejected with
	// 400 before admission.
	Transport string `json:"transport"`
	// TimeoutMS bounds the run; on expiry the traversal stops at the
	// next round boundary and the request returns 504. Zero means no
	// timeout; negative values are rejected with 400.
	TimeoutMS int64 `json:"timeout_ms"`
	// IncludeValues returns the full per-vertex value array (large).
	IncludeValues bool `json:"include_values"`
}

// traverseResponse is the success body. Elapsed fields are simulated
// device time; the values checksum identifies the result without
// shipping the array.
type traverseResponse struct {
	TraceID string `json:"trace_id"`
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	App     string `json:"app"`
	Src     int    `json:"src"`
	Variant string `json:"variant"`
	// Transport is the registry name of the policy the run executed under
	// ("static-zc", "static-uvm", "adaptive") — the dataset's loaded
	// policy, the request's override, or the static-uvm reroute after
	// degradation.
	Transport      string   `json:"transport"`
	Iterations     int      `json:"iterations"`
	ElapsedNS      int64    `json:"elapsed_ns"`
	Elapsed        string   `json:"elapsed"`
	PCIeRequests   uint64   `json:"pcie_requests"`
	PCIePayload    uint64   `json:"pcie_payload_bytes"`
	ValuesChecksum string   `json:"values_checksum"`
	Values         []uint32 `json:"values,omitempty"`
	// Degraded marks a result the service rerouted onto the static-uvm
	// policy after the requested transport kept faulting; the values are
	// still exact.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func handleTraverse(svc *service.Service, logger *slog.Logger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The trace ID is echoed on every response, error paths included,
		// so clients can always correlate.
		id := requestID(r)
		w.Header().Set(requestIDHeader, id)
		log := logger.With("trace_id", id)
		start := time.Now()
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
			return
		}
		var req traverseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			log.Warn("bad request body", "err", err)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
			return
		}
		variant := emogi.MergedAligned
		if req.Variant != "" {
			var err error
			if variant, err = parseVariant(req.Variant); err != nil {
				log.Warn("bad variant", "variant", req.Variant)
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
		}
		if req.Transport != "" {
			// Reject unknown policy names before admission, with the same
			// structured 400 shape as a bad timeout_ms.
			if _, err := emogi.PolicyByName(req.Transport); err != nil {
				log.Warn("bad transport", "transport", req.Transport)
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
		}
		if req.TimeoutMS < 0 {
			// A negative timeout used to silently mean "no timeout" — the
			// opposite of what the client asked for. Reject it instead.
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("timeout_ms must be >= 0, got %d (0 means no timeout)", req.TimeoutMS)})
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		res, err := svc.Do(ctx, service.Request{
			Dataset:   req.Dataset,
			Algo:      req.Algo,
			Src:       req.Src,
			Variant:   variant,
			Transport: req.Transport,
			TraceID:   id,
		})
		if err != nil {
			status := statusFor(err)
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				// Pace well-behaved clients: tell them how long the queue
				// typically takes to turn over before they try again.
				w.Header().Set("Retry-After", retryAfterSeconds(svc.RetryAfterHint()))
			}
			log.Warn("traverse failed", "dataset", req.Dataset, "algo", req.Algo,
				"src", req.Src, "status", status, "wall", time.Since(start).String(), "err", err)
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		log.Info("traverse", "dataset", req.Dataset, "algo", req.Algo, "src", req.Src,
			"iterations", res.Iterations, "degraded", res.Degraded,
			"sim", res.Elapsed.String(), "wall", time.Since(start).String())
		resp := traverseResponse{
			TraceID:        id,
			Dataset:        req.Dataset,
			Algo:           req.Algo,
			App:            res.App,
			Src:            res.Source,
			Variant:        res.Variant.String(),
			Transport:      effectiveTransport(res),
			Iterations:     res.Iterations,
			ElapsedNS:      res.Elapsed.Nanoseconds(),
			Elapsed:        res.Elapsed.String(),
			PCIeRequests:   res.Stats.PCIeRequests,
			PCIePayload:    res.Stats.PCIePayloadBytes,
			ValuesChecksum: checksum(res.Values),
			Degraded:       res.Degraded,
		}
		if req.IncludeValues {
			resp.Values = res.Values
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// statusFor maps service errors onto HTTP statuses: shed load is 429
// (retryable), cancellation/deadline is 504, unknown names are 404, and a
// request whose retry budget was exhausted by transient injected faults is
// 503 (retryable — the service already retried and degraded on the
// client's behalf; a later attempt draws fresh fault outcomes).
func statusFor(err error) int {
	var unknownDataset *service.UnknownDatasetError
	var unknownAlgo *emogi.UnknownAlgorithmError
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, emogi.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, emogi.ErrTransient):
		return http.StatusServiceUnavailable
	case errors.As(err, &unknownDataset), errors.As(err, &unknownAlgo):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// retryAfterSeconds renders a duration as the integral seconds form of the
// Retry-After header, rounding up so the hint never tells clients to come
// back before the queue has plausibly turned over.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func checksum(values []uint32) string {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range values {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

type algorithmInfo struct {
	Name            string `json:"name"`
	Description     string `json:"description"`
	NeedsWeights    bool   `json:"needs_weights"`
	NeedsUndirected bool   `json:"needs_undirected"`
	NoSource        bool   `json:"no_source"`
	FixedVariant    bool   `json:"fixed_variant"`
}

func handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	algos := emogi.Algorithms()
	out := make([]algorithmInfo, len(algos))
	for i, a := range algos {
		out[i] = algorithmInfo{
			Name:            a.Name,
			Description:     a.Description,
			NeedsWeights:    a.NeedsWeights,
			NeedsUndirected: a.NeedsUndirected,
			NoSource:        a.NoSource,
			FixedVariant:    a.FixedVariant,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func handleDatasets(svc *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Datasets())
	}
}

// transportInfo is one row of GET /v1/transports.
type transportInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func handleTransports(w http.ResponseWriter, r *http.Request) {
	pols := emogi.TransportPolicies()
	out := make([]transportInfo, len(pols))
	for i, p := range pols {
		out[i] = transportInfo{Name: p.Name(), Description: p.Description()}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTiers serves the memory-tier-stack catalog. With ?name= it answers
// for one stack (resolving aliases), returning a structured 400 listing the
// valid spellings on an unknown name — the same discipline as
// /v1/transports' policy names.
func handleTiers(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("name"); name != "" {
		e, err := emogi.TierStackByName(name)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, e)
		return
	}
	writeJSON(w, http.StatusOK, emogi.TierStacks())
}

// parsePaging maps the -paging flag to the UVM paging model selector.
func parsePaging(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "cpu", "":
		return false, nil
	case "gpu":
		return true, nil
	}
	return false, fmt.Errorf("unknown paging model %q (want cpu or gpu)", s)
}

func parseVariant(s string) (emogi.Variant, error) {
	switch strings.ToLower(s) {
	case "naive":
		return emogi.Naive, nil
	case "merged":
		return emogi.Merged, nil
	case "merged+aligned", "aligned", "mergedaligned":
		return emogi.MergedAligned, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want naive, merged, or merged+aligned)", s)
}

// effectiveTransport names the policy the run actually executed under.
// Results from entry points that predate the policy layer carry no policy
// name; the base transport still tells the story there.
func effectiveTransport(res *emogi.Result) string {
	if res.Policy != "" {
		return res.Policy
	}
	return res.Transport.String()
}

func parsePlatform(s string, scale float64) (emogi.SystemConfig, error) {
	switch strings.ToLower(s) {
	case "v100":
		return emogi.V100PCIe3(scale), nil
	case "titanxp":
		return emogi.TitanXpPCIe3(scale), nil
	case "a100-pcie3":
		return emogi.A100PCIe3(scale), nil
	case "a100-pcie4", "a100":
		return emogi.A100PCIe4(scale), nil
	}
	return emogi.SystemConfig{}, fmt.Errorf("unknown platform %q", s)
}
