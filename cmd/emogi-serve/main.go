// Command emogi-serve exposes the concurrent traversal service over
// HTTP+JSON: a pool of datasets loaded on one simulated system, served
// with bounded admission, per-request deadlines, and a result cache.
//
//	emogi-serve -graphs GK,GU -scale 0.05 -addr :8080
//
// Endpoints:
//
//	POST /v1/traverse   {"dataset":"GK","algo":"bfs","src":12,"variant":"merged+aligned","timeout_ms":500}
//	GET  /v1/algorithms registered traversal algorithms
//	GET  /v1/datasets   loaded graphs
//	GET  /metrics       Prometheus text exposition (queue, cache, outcomes)
//	GET  /healthz       liveness
//
// Overload semantics: requests beyond the -concurrency workers and the
// -queue-depth admission queue are rejected immediately with 429; a
// request whose timeout_ms (or client disconnect) fires mid-run stops at
// the engine's next round boundary and returns 504.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	emogi "repro"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		graphs      = flag.String("graphs", "GK", "comma-separated dataset symbols to load (see -list equivalents in cmd/emogi)")
		scale       = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = the standard 1:1000 reduction)")
		seed        = flag.Int64("seed", 42, "graph synthesis seed")
		platform    = flag.String("platform", "v100", "platform: v100, titanxp, a100-pcie3, a100-pcie4")
		transport   = flag.String("transport", "zerocopy", "edge-list transport: zerocopy or uvm")
		elemBytes   = flag.Int("elem", 8, "edge element bytes (4 or 8)")
		concurrency = flag.Int("concurrency", 4, "worker goroutines executing traversals")
		queueDepth  = flag.Int("queue-depth", 64, "admission queue depth (beyond it requests get 429)")
		cacheSize   = flag.Int("cache", 128, "result cache entries (0 default, negative disables)")
		workers     = flag.Int("workers", 0, "host goroutines per kernel launch (0 = GOMAXPROCS)")

		batchWindow = flag.Duration("batch-window", 0,
			"coalesce same-dataset/algo/variant requests arriving within this window into one batched run (0 disables)")
		batchMax = flag.Int("batch-max", 32, "max distinct sources per coalesced batch (a full batch dispatches early)")

		faultProfile = flag.String("fault-profile", "none",
			fmt.Sprintf("fault-injection profile: %s", strings.Join(fault.Names(), ", ")))
		faultSeed = flag.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults)")
		faultRate = flag.Float64("fault-rate", 0,
			"override the profile's transient read-fault rate (0 keeps the profile default)")
	)
	flag.Parse()

	cfg, err := parsePlatform(*platform, *scale)
	if err != nil {
		log.Fatalf("emogi-serve: %v", err)
	}
	cfg.Workers = *workers
	tr, err := parseTransport(*transport)
	if err != nil {
		log.Fatalf("emogi-serve: %v", err)
	}
	faultCfg, err := fault.ProfileConfig(*faultProfile, *faultSeed)
	if err != nil {
		log.Fatalf("emogi-serve: %v", err)
	}
	if *faultRate > 0 {
		faultCfg.ReadFaultRate = *faultRate
	}
	inj, err := fault.New(faultCfg)
	if err != nil {
		log.Fatalf("emogi-serve: %v", err)
	}
	cfg.Faults = inj
	if inj != nil {
		log.Printf("fault injection: profile %s, seed %d", inj.Name(), *faultSeed)
	}

	sys := emogi.NewSystem(cfg)
	reg := telemetry.NewRegistry()
	svc := service.New(sys, service.Config{
		Concurrency:  *concurrency,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheSize,
		Metrics:      reg,
		BatchWindow:  *batchWindow,
		BatchMax:     *batchMax,
	})
	for _, sym := range strings.Split(*graphs, ",") {
		sym = strings.TrimSpace(sym)
		if sym == "" {
			continue
		}
		g, err := emogi.BuildDataset(sym, *scale, *seed)
		if err != nil {
			log.Fatalf("emogi-serve: building %s: %v", sym, err)
		}
		if err := svc.AddGraph(sym, g,
			emogi.WithTransport(tr), emogi.WithElemBytes(*elemBytes)); err != nil {
			log.Fatalf("emogi-serve: loading %s: %v", sym, err)
		}
		log.Printf("loaded %s: %d vertices, %d edges (%s)",
			sym, g.NumVertices(), g.NumEdges(), tr)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traverse", handleTraverse(svc))
	mux.HandleFunc("/v1/algorithms", handleAlgorithms)
	mux.HandleFunc("/v1/datasets", handleDatasets(svc))
	mux.Handle("/", telemetry.Handler(reg)) // /metrics and /healthz

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("emogi-serve: %v", err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("emogi-serve: %v", err)
		}
	}()
	log.Printf("serving on http://%s (POST /v1/traverse)", ln.Addr())

	// Drain-then-stop on SIGINT/SIGTERM: stop accepting connections,
	// finish in-flight requests, then stop the service and unload.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("emogi-serve: shutdown: %v", err)
	}
	svc.Close()
}

// traverseRequest is the POST /v1/traverse body.
type traverseRequest struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Src     int    `json:"src"`
	// Variant is "naive", "merged", or "merged+aligned" (the default).
	Variant string `json:"variant"`
	// TimeoutMS bounds the run; on expiry the traversal stops at the
	// next round boundary and the request returns 504. Zero means no
	// timeout; negative values are rejected with 400.
	TimeoutMS int64 `json:"timeout_ms"`
	// IncludeValues returns the full per-vertex value array (large).
	IncludeValues bool `json:"include_values"`
}

// traverseResponse is the success body. Elapsed fields are simulated
// device time; the values checksum identifies the result without
// shipping the array.
type traverseResponse struct {
	Dataset        string   `json:"dataset"`
	Algo           string   `json:"algo"`
	App            string   `json:"app"`
	Src            int      `json:"src"`
	Variant        string   `json:"variant"`
	Transport      string   `json:"transport"`
	Iterations     int      `json:"iterations"`
	ElapsedNS      int64    `json:"elapsed_ns"`
	Elapsed        string   `json:"elapsed"`
	PCIeRequests   uint64   `json:"pcie_requests"`
	PCIePayload    uint64   `json:"pcie_payload_bytes"`
	ValuesChecksum string   `json:"values_checksum"`
	Values         []uint32 `json:"values,omitempty"`
	// Degraded marks a result served on the UVM fallback transport after
	// the zero-copy transport kept faulting; the values are still exact.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func handleTraverse(svc *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
			return
		}
		var req traverseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
			return
		}
		variant := emogi.MergedAligned
		if req.Variant != "" {
			var err error
			if variant, err = parseVariant(req.Variant); err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
		}
		if req.TimeoutMS < 0 {
			// A negative timeout used to silently mean "no timeout" — the
			// opposite of what the client asked for. Reject it instead.
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("timeout_ms must be >= 0, got %d (0 means no timeout)", req.TimeoutMS)})
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		res, err := svc.Do(ctx, service.Request{
			Dataset: req.Dataset,
			Algo:    req.Algo,
			Src:     req.Src,
			Variant: variant,
		})
		if err != nil {
			status := statusFor(err)
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				// Pace well-behaved clients: tell them how long the queue
				// typically takes to turn over before they try again.
				w.Header().Set("Retry-After", retryAfterSeconds(svc.RetryAfterHint()))
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		resp := traverseResponse{
			Dataset:        req.Dataset,
			Algo:           req.Algo,
			App:            res.App,
			Src:            res.Source,
			Variant:        res.Variant.String(),
			Transport:      res.Transport.String(),
			Iterations:     res.Iterations,
			ElapsedNS:      res.Elapsed.Nanoseconds(),
			Elapsed:        res.Elapsed.String(),
			PCIeRequests:   res.Stats.PCIeRequests,
			PCIePayload:    res.Stats.PCIePayloadBytes,
			ValuesChecksum: checksum(res.Values),
			Degraded:       res.Degraded,
		}
		if req.IncludeValues {
			resp.Values = res.Values
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// statusFor maps service errors onto HTTP statuses: shed load is 429
// (retryable), cancellation/deadline is 504, unknown names are 404, and a
// request whose retry budget was exhausted by transient injected faults is
// 503 (retryable — the service already retried and degraded on the
// client's behalf; a later attempt draws fresh fault outcomes).
func statusFor(err error) int {
	var unknownDataset *service.UnknownDatasetError
	var unknownAlgo *emogi.UnknownAlgorithmError
	switch {
	case errors.Is(err, service.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, emogi.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, emogi.ErrTransient):
		return http.StatusServiceUnavailable
	case errors.As(err, &unknownDataset), errors.As(err, &unknownAlgo):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// retryAfterSeconds renders a duration as the integral seconds form of the
// Retry-After header, rounding up so the hint never tells clients to come
// back before the queue has plausibly turned over.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func checksum(values []uint32) string {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range values {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

type algorithmInfo struct {
	Name            string `json:"name"`
	Description     string `json:"description"`
	NeedsWeights    bool   `json:"needs_weights"`
	NeedsUndirected bool   `json:"needs_undirected"`
	NoSource        bool   `json:"no_source"`
	FixedVariant    bool   `json:"fixed_variant"`
}

func handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	algos := emogi.Algorithms()
	out := make([]algorithmInfo, len(algos))
	for i, a := range algos {
		out[i] = algorithmInfo{
			Name:            a.Name,
			Description:     a.Description,
			NeedsWeights:    a.NeedsWeights,
			NeedsUndirected: a.NeedsUndirected,
			NoSource:        a.NoSource,
			FixedVariant:    a.FixedVariant,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func handleDatasets(svc *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Datasets())
	}
}

func parseVariant(s string) (emogi.Variant, error) {
	switch strings.ToLower(s) {
	case "naive":
		return emogi.Naive, nil
	case "merged":
		return emogi.Merged, nil
	case "merged+aligned", "aligned", "mergedaligned":
		return emogi.MergedAligned, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want naive, merged, or merged+aligned)", s)
}

func parseTransport(s string) (emogi.Transport, error) {
	switch strings.ToLower(s) {
	case "zerocopy", "zc", "emogi":
		return emogi.ZeroCopy, nil
	case "uvm":
		return emogi.UVM, nil
	}
	return 0, fmt.Errorf("unknown transport %q (want zerocopy or uvm)", s)
}

func parsePlatform(s string, scale float64) (emogi.SystemConfig, error) {
	switch strings.ToLower(s) {
	case "v100":
		return emogi.V100PCIe3(scale), nil
	case "titanxp":
		return emogi.TitanXpPCIe3(scale), nil
	case "a100-pcie3":
		return emogi.A100PCIe3(scale), nil
	case "a100-pcie4", "a100":
		return emogi.A100PCIe4(scale), nil
	}
	return emogi.SystemConfig{}, fmt.Errorf("unknown platform %q", s)
}
