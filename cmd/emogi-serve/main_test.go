package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	emogi "repro"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// testLogger discards structured log output in handler tests.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

const testScale = 0.02

// newServeService builds a service over a small system for handler
// tests. inj may be nil for a fault-free system.
func newServeService(t *testing.T, inj fault.Injector, cfg service.Config) (*service.Service, *emogi.System) {
	t.Helper()
	syscfg := emogi.V100PCIe3(testScale)
	syscfg.Faults = inj
	sys := emogi.NewSystem(syscfg)
	svc := service.New(sys, cfg)
	g, err := emogi.BuildDataset("GK", testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddGraph("GK", g); err != nil {
		t.Fatal(err)
	}
	return svc, sys
}

func postTraverse(handler http.HandlerFunc, body string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/traverse", strings.NewReader(body))
	handler(rr, req)
	return rr
}

// TestTraverseNegativeTimeout: a negative timeout_ms is a client error
// with a structured body naming the field, not a silent "no timeout".
func TestTraverseNegativeTimeout(t *testing.T) {
	svc, _ := newServeService(t, nil, service.Config{Concurrency: 1})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	rr := postTraverse(handler, `{"dataset":"GK","algo":"bfs","src":1,"timeout_ms":-5}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rr.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatalf("400 body is not the structured error JSON: %v (%q)", err, rr.Body.String())
	}
	if !strings.Contains(er.Error, "timeout_ms") || !strings.Contains(er.Error, "-5") {
		t.Errorf("error %q does not name the field and the offending value", er.Error)
	}
}

// TestTraverseRetryAfterOn429: shed requests carry a Retry-After header
// of at least one second so clients can pace their retries.
func TestTraverseRetryAfterOn429(t *testing.T) {
	svc, sys := newServeService(t, nil, service.Config{
		Concurrency:  1,
		QueueDepth:   1, // capacity 2: the rest of the flood must shed
		CacheEntries: -1,
	})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	// Freeze the device so admitted requests block and capacity stays full.
	release := make(chan struct{})
	held := make(chan struct{})
	go sys.Device().Exclusive(func() {
		close(held)
		<-release
	})
	<-held

	type reply struct {
		code       int
		retryAfter string
	}
	const flood = 8
	replies := make(chan reply, flood)
	for i := 0; i < flood; i++ {
		go func(i int) {
			rr := postTraverse(handler,
				`{"dataset":"GK","algo":"bfs","src":`+strconv.Itoa(i)+`}`)
			replies <- reply{rr.Code, rr.Header().Get("Retry-After")}
		}(i)
	}

	// Rejections return immediately while admitted requests block on the
	// frozen device, so a 429 arrives long before the timeout.
	timeout := time.After(10 * time.Second)
	seen429 := false
	drained := 0
	for !seen429 {
		select {
		case r := <-replies:
			drained++
			if r.code != http.StatusTooManyRequests {
				continue
			}
			seen429 = true
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil {
				t.Fatalf("429 Retry-After = %q, want integral seconds", r.retryAfter)
			}
			if secs < 1 {
				t.Errorf("429 Retry-After = %d, want >= 1", secs)
			}
		case <-timeout:
			t.Fatalf("no 429 after 10s (%d replies drained)", drained)
		}
	}
	close(release)
	for ; drained < flood; drained++ {
		<-replies
	}
}

// TestTraverseDegraded: against a flaky link the handler still answers
// 200 — the service retried and rerouted onto the static-uvm policy — and
// the response carries the degraded marker plus the policy it ran under.
func TestTraverseDegraded(t *testing.T) {
	inj, err := fault.Profile(fault.ProfileFlakyLink, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newServeService(t, inj, service.Config{Concurrency: 1, CacheEntries: -1})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	rr := postTraverse(handler, `{"dataset":"GK","algo":"bfs","src":3}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200 via retry+degradation", rr.Code, rr.Body.String())
	}
	var resp traverseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("response not marked degraded despite the static-uvm reroute")
	}
	if resp.Transport != "static-uvm" {
		t.Errorf("transport = %q, want static-uvm after degradation", resp.Transport)
	}
	if resp.Iterations == 0 || resp.ValuesChecksum == "" {
		t.Errorf("degraded response is missing traversal results: %+v", resp)
	}
}

// TestTraverseUnknownTransport: an unknown transport policy name is a
// structured 400 naming the offending value, same shape as a bad
// timeout_ms — not a silent fallback to the dataset's policy.
func TestTraverseUnknownTransport(t *testing.T) {
	svc, _ := newServeService(t, nil, service.Config{Concurrency: 1})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	rr := postTraverse(handler, `{"dataset":"GK","algo":"bfs","src":1,"transport":"warp-speed"}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rr.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatalf("400 body is not the structured error JSON: %v (%q)", err, rr.Body.String())
	}
	if !strings.Contains(er.Error, "warp-speed") {
		t.Errorf("error %q does not name the offending transport", er.Error)
	}
}

// TestTraverseTransportOverride: a request naming a policy runs under it —
// the response reports the override, not the dataset's loaded policy.
func TestTraverseTransportOverride(t *testing.T) {
	svc, _ := newServeService(t, nil, service.Config{Concurrency: 1})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	rr := postTraverse(handler, `{"dataset":"GK","algo":"bfs","src":2,"transport":"adaptive"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rr.Code, rr.Body.String())
	}
	var resp traverseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Transport != "adaptive" {
		t.Errorf("transport = %q, want adaptive (the request's override)", resp.Transport)
	}
	if resp.Iterations == 0 || resp.ValuesChecksum == "" {
		t.Errorf("override response is missing traversal results: %+v", resp)
	}
}

// TestTransportsEndpoint: GET /v1/transports lists the selectable policies
// in registry order with non-empty descriptions.
func TestTransportsEndpoint(t *testing.T) {
	rr := httptest.NewRecorder()
	handleTransports(rr, httptest.NewRequest(http.MethodGet, "/v1/transports", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var out []transportInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	want := []string{"static-zc", "static-uvm", "adaptive"}
	if len(out) != len(want) {
		t.Fatalf("got %d transports, want %d: %+v", len(out), len(want), out)
	}
	for i, w := range want {
		if out[i].Name != w {
			t.Errorf("transports[%d].name = %q, want %q", i, out[i].Name, w)
		}
		if out[i].Description == "" {
			t.Errorf("transports[%d] (%s) has an empty description", i, out[i].Name)
		}
	}
}

// TestStatusForTransient: an exhausted retry budget maps to 503, the
// retryable server-side status, not a client error.
func TestStatusForTransient(t *testing.T) {
	err := &emogi.TransientError{App: "BFS", Rounds: 2, Faults: 7}
	if got := statusFor(err); got != http.StatusServiceUnavailable {
		t.Errorf("statusFor(TransientError) = %d, want 503", got)
	}
}

// TestTraverseRequestIDEcho: an inbound X-Request-ID is honored verbatim —
// on the response header, in the response body, and as the flight
// recorder's trace ID.
func TestTraverseRequestIDEcho(t *testing.T) {
	rec := telemetry.NewRecorder(8)
	svc, _ := newServeService(t, nil, service.Config{Concurrency: 1, Recorder: rec})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	const id = "client-chosen-trace-7f3a"
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/traverse",
		strings.NewReader(`{"dataset":"GK","algo":"bfs","src":1}`))
	req.Header.Set("X-Request-ID", id)
	handler(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-Request-ID"); got != id {
		t.Errorf("response X-Request-ID = %q, want %q", got, id)
	}
	var resp traverseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Errorf("body trace_id = %q, want %q", resp.TraceID, id)
	}
	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight recorder holds %d records, want 1", len(recs))
	}
	if recs[0].TraceID != id {
		t.Errorf("recorded trace ID = %q, want %q", recs[0].TraceID, id)
	}
}

// TestTraverseRequestIDGenerated: with no inbound header every response —
// including error responses — carries a fresh server-generated trace ID.
func TestTraverseRequestIDGenerated(t *testing.T) {
	svc, _ := newServeService(t, nil, service.Config{Concurrency: 1})
	defer svc.Close()
	handler := handleTraverse(svc, testLogger())

	rr := postTraverse(handler, `{"dataset":"GK","algo":"bfs","src":2}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rr.Code, rr.Body.String())
	}
	id := rr.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("success response missing generated X-Request-ID")
	}
	var resp traverseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Errorf("body trace_id = %q, header = %q; want them equal", resp.TraceID, id)
	}

	// Error paths must echo too: a 404 for an unknown dataset still
	// carries the trace ID the client sent.
	rr = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/traverse",
		strings.NewReader(`{"dataset":"NOPE","algo":"bfs","src":1}`))
	req.Header.Set("X-Request-ID", "err-path-id")
	handler(rr, req)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d, want 404", rr.Code)
	}
	if got := rr.Header().Get("X-Request-ID"); got != "err-path-id" {
		t.Errorf("404 response X-Request-ID = %q, want err-path-id", got)
	}
}

// TestServeMuxSurface drives the assembled mux end to end: traffic lands
// in the flight recorder at /debug/requests, /healthz flips to 503 when
// draining begins, and unknown routes 404.
func TestServeMuxSurface(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(8)
	health := telemetry.NewHealth(reg)
	svc, _ := newServeService(t, nil, service.Config{
		Concurrency: 1, Metrics: reg, Recorder: rec, Health: health,
	})
	defer svc.Close()
	mux := newServeMux(serveDeps{
		svc: svc, reg: reg, recorder: rec, health: health, logger: testLogger(),
	})

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		mux.ServeHTTP(rr, httptest.NewRequest(method, path, rd))
		return rr
	}

	if rr := do(http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK {
		t.Fatalf("/healthz before drain = %d, want 200", rr.Code)
	}
	if rr := do(http.MethodPost, "/v1/traverse", `{"dataset":"GK","algo":"bfs","src":1}`); rr.Code != http.StatusOK {
		t.Fatalf("traverse via mux = %d (%s)", rr.Code, rr.Body.String())
	}

	rr := do(http.MethodGet, "/debug/requests", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", rr.Code)
	}
	var payload struct {
		Total    uint64                    `json:"total"`
		Requests []telemetry.RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/debug/requests body: %v", err)
	}
	if payload.Total == 0 || len(payload.Requests) == 0 {
		t.Fatalf("/debug/requests empty after traffic: %s", rr.Body.String())
	}

	if rr := do(http.MethodGet, "/no/such/route", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", rr.Code)
	}

	health.SetDraining(true)
	if rr := do(http.MethodGet, "/healthz", ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining = %d, want 503", rr.Code)
	}
}

// TestTiersEndpoint: GET /v1/tiers lists the named memory-tier stacks,
// ?name= resolves aliases, and an unknown name is a structured 400.
func TestTiersEndpoint(t *testing.T) {
	rr := httptest.NewRecorder()
	handleTiers(rr, httptest.NewRequest(http.MethodGet, "/v1/tiers", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var out []emogi.TierStackEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "2tier" || out[1].Name != "3tier-cxl" {
		t.Fatalf("catalog = %+v", out)
	}
	for _, e := range out {
		if e.Description == "" || e.Tiers < 2 {
			t.Errorf("entry %s is missing description or tiers: %+v", e.Name, e)
		}
	}

	rr = httptest.NewRecorder()
	handleTiers(rr, httptest.NewRequest(http.MethodGet, "/v1/tiers?name=cxl", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("?name=cxl status = %d, want 200", rr.Code)
	}
	var one emogi.TierStackEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "3tier-cxl" {
		t.Errorf("?name=cxl resolved to %q, want 3tier-cxl", one.Name)
	}

	rr = httptest.NewRecorder()
	handleTiers(rr, httptest.NewRequest(http.MethodGet, "/v1/tiers?name=nvlink", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown name status = %d, want 400", rr.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" || !strings.Contains(e.Error, "nvlink") {
		t.Errorf("structured 400 should name the unknown stack: %+v", e)
	}
}
