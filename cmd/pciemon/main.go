// Command pciemon reproduces the paper's §3.3 zero-copy characterization
// interactively: it runs the toy 1D-array traversal under each access
// pattern and prints what the FPGA traffic monitor observes — the request
// mix of Figure 3 and the bandwidths of Figure 4.
//
//	pciemon                 # all patterns
//	pciemon -pattern strided -elems 4194304
//	pciemon -prom           # append the Prometheus exposition of the runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pciemon: ")

	var (
		pattern = flag.String("pattern", "all", "strided, aligned, misaligned, uvm, or all")
		elems   = flag.Int("elems", 1<<22, "array length in 4-byte elements")
		scale   = flag.Float64("scale", 1.0, "platform scale")
		trace   = flag.Int("trace", 0, "print the first N raw requests of each run (the FPGA's stream view)")
		prom    = flag.Bool("prom", false, "after the runs, print their Prometheus text exposition")
	)
	flag.Parse()

	var col *telemetry.Collector
	if *prom {
		col = telemetry.NewCollector(nil, nil)
	}

	type run struct {
		name      string
		pattern   core.ToyPattern
		transport core.Transport
	}
	all := []run{
		{"strided", core.ToyStrided, core.ZeroCopy},
		{"aligned", core.ToyMergedAligned, core.ZeroCopy},
		{"misaligned", core.ToyMergedMisaligned, core.ZeroCopy},
		{"uvm", core.ToyMergedAligned, core.UVM},
	}
	var runs []run
	for _, r := range all {
		if *pattern == "all" || strings.EqualFold(*pattern, r.name) {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		log.Fatalf("unknown pattern %q", *pattern)
	}

	link := emogi.V100PCIe3(*scale).TierStack().DRAM().Link
	fmt.Printf("link: %s, memcpy peak %.2f GB/s, RTT %v, %d tags\n\n",
		link.Name, link.MemcpyPeak()/1e9, link.RTT, link.MaxTags)

	for _, r := range runs {
		dev := gpu.NewDevice(emogi.V100PCIe3(*scale).GPU)
		if col != nil {
			dev.SetTelemetry(col)
		}
		if *trace > 0 {
			dev.Monitor().EnableTrace(*trace)
		}
		res, err := core.ToyTraverse(dev, *elems, r.pattern, r.transport)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s (%s over %s)\n", r.name, res.Pattern, r.transport.String())
		fmt.Printf("  PCIe %.2f GB/s   DRAM %.2f GB/s   elapsed %v (simulated)\n",
			res.PCIeBandwidth/1e9, res.DRAMBandwidth/1e9, res.Elapsed)
		fmt.Printf("  requests: %d  payload: %.1f MB  wire: %.1f MB\n",
			res.Snapshot.Requests,
			float64(res.Snapshot.PayloadBytes)/1e6,
			float64(res.Snapshot.WireBytes)/1e6)
		total := float64(res.Snapshot.Requests)
		fmt.Printf("  size mix:")
		for _, size := range []int64{32, 64, 96, 128} {
			if n := res.Snapshot.BySize[size]; n > 0 {
				fmt.Printf("  %dB %.1f%%", size, float64(n)/total*100)
			}
		}
		fmt.Println()
		if *trace > 0 {
			fmt.Printf("  first %d requests:", len(dev.Monitor().Trace()))
			for _, e := range dev.Monitor().Trace() {
				tag := ""
				if e.Bulk {
					tag = "*"
				}
				fmt.Printf(" %d%s", e.Size, tag)
			}
			fmt.Println("   (* = DMA/migration)")
		}
		fmt.Println()
	}

	if col != nil {
		if err := col.Registry().WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
