// Command emogi runs one graph traversal on the simulated system and
// reports its simulated time and PCIe traffic, e.g.:
//
//	emogi -graph GK -app bfs -variant merged+aligned -transport static-zc
//	emogi -graph SK -app sssp -transport static-uvm -sources 8
//	emogi -graph GK -app bfs -transport adaptive
//	emogi -file mygraph.csr -app cc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emogi: ")

	var (
		graphSym  = flag.String("graph", "GK", "dataset symbol (GK GU FS ML SK UK5)")
		graphFile = flag.String("file", "", "load a CSR graph file instead of generating")
		app       = flag.String("app", "bfs", "application: bfs, sssp, or cc")
		algo      = flag.String("algo", "", "algorithm registry name (overrides -app; \"list\" prints all)")
		variant   = flag.String("variant", "merged+aligned",
			"kernel variant: naive, merged, merged+aligned; BFS also accepts balanced and compressed")
		transport = flag.String("transport", "static-zc",
			"edge-list transport policy: static-zc, static-uvm, or adaptive (legacy spellings zerocopy/uvm still accepted)")
		scale     = flag.Float64("scale", 1.0, "dataset scale (1.0 = standard 1:1000 reduction)")
		seed      = flag.Int64("seed", 42, "generator and source seed")
		sources   = flag.Int("sources", 4, "number of source vertices to average over")
		elemBytes = flag.Int("elem", 8, "edge element width in bytes (4 or 8)")
		platform  = flag.String("platform", "v100", "platform: v100, titanxp, a100-pcie3, a100-pcie4")
		tiers     = flag.String("tiers", "2tier",
			"memory-tier stack: 2tier (the classic machine) or 3tier-cxl (adds CXL-class external memory)")
		paging = flag.String("paging", "cpu",
			"UVM paging model: cpu (serialized fault handler) or gpu (GPU-driven page fetch)")
		placement = flag.String("placement", "auto",
			"edge-list tier placement: auto (DRAM with CXL spill), dram, or cxl")
		validate = flag.Bool("validate", true, "validate results against CPU references")
		kernels  = flag.Bool("kernels", false, "print the per-kernel (per-level) breakdown of the last run")
		reorder  = flag.Int("reorder-window", 0,
			"IARU-style reorder window in 32B sectors (0 disables; >0 buffers off-device accesses and re-groups them by 128B line before dispatch)")
		compare  = flag.Bool("compare", false, "run the UVM baseline alongside and print the speedup")
		gpus     = flag.Int("gpus", 1, "simulated GPU count (>1 uses the multi-GPU engine; BFS/SSSP/CC)")
	)
	flag.Parse()

	if *algo == "list" {
		fmt.Println("registered algorithms:")
		for _, a := range emogi.Algorithms() {
			fmt.Printf("  %-16s %s\n", a.Name, a.Description)
		}
		return
	}

	var g *emogi.Graph
	var err error
	if *graphFile != "" {
		g, err = graph.ReadFile(*graphFile)
		if err != nil {
			log.Fatalf("loading %s: %v", *graphFile, err)
		}
	} else {
		g, err = emogi.BuildDataset(strings.ToUpper(*graphSym), *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}

	// -algo dispatches straight through the algorithm registry; -app is
	// the typed three-application convenience that resolves to a registry
	// name ("bfs", "sssp", "cc").
	algoName := strings.ToLower(*algo)
	if algoName == "" {
		appID, err := parseApp(*app)
		if err != nil {
			log.Fatal(err)
		}
		algoName = strings.ToLower(appID.String())

		// The BFS extensions (balanced workload, compressed edge list) keep
		// their historical -variant spellings as an alias for -algo.
		ext := strings.ToLower(*variant)
		if ext == "balanced" || ext == "compressed" {
			if appID != emogi.BFS {
				log.Fatalf("variant %q only supports -app bfs", ext)
			}
			runExtension(g, ext, *platform, *scale, *sources, *seed, *reorder, *validate)
			return
		}
		if *gpus > 1 {
			cfg, err := parsePlatform(*platform, *scale)
			if err != nil {
				log.Fatal(err)
			}
			// runMultiGPU builds devices from cfg.GPU directly, so apply the
			// override here rather than through NewSystem.
			cfg.GPU.ReorderWindow = *reorder
			runMultiGPU(g, appID, cfg, *gpus, *sources, *seed, *elemBytes, *validate)
			return
		}
	} else if *gpus > 1 {
		log.Fatal("-algo does not support -gpus > 1 (use -app for the multi-GPU engine)")
	}
	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := emogi.PolicyByName(*transport)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := parsePlatform(*platform, *scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err = emogi.ApplyTierStack(cfg, *tiers)
	if err != nil {
		log.Fatal(err)
	}
	switch strings.ToLower(*paging) {
	case "cpu", "":
	case "gpu":
		cfg.GPUDrivenPaging = true
	default:
		log.Fatalf("unknown paging model %q (want cpu or gpu)", *paging)
	}
	place, err := emogi.ParsePlacement(*placement)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ReorderWindow = *reorder

	sys := emogi.NewSystem(cfg)
	dg, err := sys.Load(g, emogi.WithTransportPolicy(pol), emogi.WithElemBytes(*elemBytes),
		emogi.WithPlacement(place))
	if err != nil {
		log.Fatalf("loading graph onto device: %v", err)
	}
	srcs := emogi.PickSources(g, *sources, *seed)
	if srcs == nil {
		log.Fatal("graph has no vertices with outgoing edges")
	}

	sum, err := sys.RunManyAlgo(dg, algoName, srcs, v)
	if err != nil {
		log.Fatal(err)
	}
	if *validate {
		for _, r := range sum.Results {
			if err := emogi.Validate(g, r); err != nil {
				log.Fatalf("validation failed: %v", err)
			}
		}
	}

	fmt.Printf("platform:   %s\n", cfg.Name)
	fmt.Printf("graph:      %s  |V|=%d |E|=%d (%.1f MB edge list, %d-byte elements)\n",
		g.Name, g.NumVertices(), g.NumEdges(),
		float64(g.EdgeListBytes(*elemBytes))/1e6, *elemBytes)
	fmt.Printf("run:        %s, %s kernel, %s transport, %d source(s)\n",
		sum.Algo, v, pol.Name(), len(sum.Results))
	fmt.Printf("mean time:  %v (simulated)\n", sum.MeanElapsed)
	fmt.Printf("iterations: %d (first source)\n", sum.Results[0].Iterations)
	fmt.Printf("PCIe:       %.2f GB/s average payload bandwidth\n", sum.MeanBandwidth()/1e9)
	fmt.Printf("traffic:    %s\n", sum.Monitor)
	amp := sum.IOAmplification(g.EdgeListBytes(*elemBytes))
	fmt.Printf("I/O amp:    %.2fx of edge-list bytes per run\n", amp)
	if sum.Stats.CXLRequests > 0 {
		fmt.Printf("CXL:        reqs=%d payload=%d bytes over the external tier's link\n",
			sum.Stats.CXLRequests, sum.Stats.CXLPayloadBytes)
	}
	if *validate {
		fmt.Println("validated:  results match CPU reference")
	}
	if st, isStatic := pol.Static(); *compare && (!isStatic || st == emogi.ZeroCopy) {
		sysU := emogi.NewSystem(cfg)
		dgU, err := sysU.Load(g, emogi.WithTransportPolicy(emogi.StaticPolicy(emogi.UVM)), emogi.WithElemBytes(*elemBytes))
		if err != nil {
			log.Fatalf("loading UVM baseline: %v", err)
		}
		uvmSum, err := sysU.RunManyAlgo(dgU, algoName, srcs, emogi.Merged)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline:   UVM %v -> speedup %.2fx\n",
			uvmSum.MeanElapsed, emogi.Speedup(uvmSum, sum))
	}
	if *kernels {
		printKernelLog(sys.Device())
	}
	os.Exit(0)
}

// runMultiGPU measures the §7 multi-GPU engine.
func runMultiGPU(g *emogi.Graph, app emogi.App, cfg emogi.SystemConfig, n, sources int, seed int64, elemBytes int, validate bool) {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.NewDevice(cfg.GPU)
	}
	ms, err := core.NewMultiSystem(devs, g, elemBytes)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Free()
	srcs := emogi.PickSources(g, sources, seed)
	if srcs == nil {
		log.Fatal("graph has no vertices with outgoing edges")
	}
	var total time.Duration
	runs := 0
	for _, src := range srcs {
		var res *emogi.Result
		switch app {
		case emogi.SSSP:
			res, err = ms.SSSP(src)
		case emogi.CC:
			res, err = ms.CC()
		default:
			res, err = ms.BFS(src)
		}
		if err != nil {
			log.Fatal(err)
		}
		if validate {
			if err := emogi.Validate(g, res); err != nil {
				log.Fatalf("validation failed: %v", err)
			}
		}
		total += res.Elapsed
		runs++
		if app == emogi.CC {
			break
		}
	}
	fmt.Printf("platform:   %s x%d\n", cfg.Name, n)
	fmt.Printf("run:        %s (multi-GPU), %d source(s)\n", app, runs)
	fmt.Printf("mean time:  %v (simulated)\n", total/time.Duration(runs))
	for i := 0; i < n; i++ {
		lo, hi := ms.Partition(i)
		fmt.Printf("  GPU %d owns vertices [%d, %d)\n", i, lo, hi)
	}
	if validate {
		fmt.Println("validated:  results match CPU reference")
	}
}

// printKernelLog dumps the simulated device's per-launch statistics — the
// level-by-level view of how traffic and time evolve over a traversal.
func printKernelLog(dev *gpu.Device) {
	fmt.Println("\nper-kernel breakdown (all runs):")
	fmt.Printf("%-28s %8s %10s %12s %12s %10s\n",
		"kernel", "warps", "PCIe reqs", "payload KB", "migrations", "elapsed")
	for _, ks := range dev.Kernels() {
		fmt.Printf("%-28s %8d %10d %12.1f %12d %10v\n",
			ks.Name, ks.Warps, ks.PCIeRequests,
			float64(ks.PCIePayloadBytes)/1e3, ks.UVMMigrations, ks.Elapsed)
	}
}

// runExtension measures the balanced or compressed BFS extension.
func runExtension(g *emogi.Graph, ext, platform string, scale float64, sources int, seed int64, reorder int, validate bool) {
	cfg, err := parsePlatform(platform, scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.GPU.ReorderWindow = reorder
	srcs := emogi.PickSources(g, sources, seed)
	if srcs == nil {
		log.Fatal("graph has no vertices with outgoing edges")
	}
	dev := gpu.NewDevice(cfg.GPU)
	var total time.Duration
	var payload uint64
	var iterations int
	switch ext {
	case "balanced":
		dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
		if err != nil {
			log.Fatal(err)
		}
		for _, src := range srcs {
			res, err := core.BFSBalanced(dev, dg, src, 1024)
			if err != nil {
				log.Fatal(err)
			}
			if validate {
				if err := res.Validate(g); err != nil {
					log.Fatalf("validation failed: %v", err)
				}
			}
			total += res.Elapsed
			payload += res.Stats.PCIePayloadBytes
			iterations = res.Iterations
		}
	case "compressed":
		cdg, err := core.UploadCompressed(dev, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compression: %.1f MB -> %.1f MB (%.2fx)\n",
			float64(cdg.PlainBytes)/1e6, float64(cdg.CompressedBytes)/1e6, cdg.Ratio())
		for _, src := range srcs {
			res, err := core.BFSCompressed(dev, cdg, src)
			if err != nil {
				log.Fatal(err)
			}
			if validate {
				if err := res.Validate(g); err != nil {
					log.Fatalf("validation failed: %v", err)
				}
			}
			total += res.Elapsed
			payload += res.Stats.PCIePayloadBytes
			iterations = res.Iterations
		}
	}
	fmt.Printf("platform:   %s\n", cfg.Name)
	fmt.Printf("run:        BFS (%s extension), %d source(s)\n", ext, len(srcs))
	fmt.Printf("mean time:  %v (simulated)\n", total/time.Duration(len(srcs)))
	fmt.Printf("iterations: %d (last source)\n", iterations)
	fmt.Printf("payload:    %.1f MB over PCIe across all runs\n", float64(payload)/1e6)
	if validate {
		fmt.Println("validated:  results match CPU reference")
	}
}

func parseApp(s string) (emogi.App, error) {
	switch strings.ToLower(s) {
	case "bfs":
		return emogi.BFS, nil
	case "sssp":
		return emogi.SSSP, nil
	case "cc":
		return emogi.CC, nil
	}
	return 0, fmt.Errorf("unknown app %q (want bfs, sssp, or cc)", s)
}

func parseVariant(s string) (emogi.Variant, error) {
	switch strings.ToLower(s) {
	case "naive":
		return emogi.Naive, nil
	case "merged":
		return emogi.Merged, nil
	case "merged+aligned", "aligned", "mergedaligned":
		return emogi.MergedAligned, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want naive, merged, or merged+aligned)", s)
}

func parsePlatform(s string, scale float64) (emogi.SystemConfig, error) {
	switch strings.ToLower(s) {
	case "v100":
		return emogi.V100PCIe3(scale), nil
	case "titanxp":
		return emogi.TitanXpPCIe3(scale), nil
	case "a100-pcie3":
		return emogi.A100PCIe3(scale), nil
	case "a100-pcie4", "a100":
		return emogi.A100PCIe4(scale), nil
	}
	return emogi.SystemConfig{}, fmt.Errorf("unknown platform %q", s)
}
