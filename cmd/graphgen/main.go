// Command graphgen synthesizes the Table 2 dataset analogs (or any single
// one) and writes them as binary CSR files for reuse across runs.
//
//	graphgen -sym GK -scale 1.0 -o gk.csr
//	graphgen -all -scale 0.1 -dir graphs/
//	graphgen -sym ML -stats         # print statistics without writing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	emogi "repro"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")

	var (
		sym   = flag.String("sym", "", "dataset symbol to generate (GK GU FS ML SK UK5)")
		all   = flag.Bool("all", false, "generate all six datasets")
		scale = flag.Float64("scale", 1.0, "dataset scale (1.0 = standard 1:1000 reduction)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("o", "", "output file (single dataset)")
		dir   = flag.String("dir", ".", "output directory (with -all)")
		stats = flag.Bool("stats", false, "print statistics instead of writing files")
	)
	flag.Parse()

	var syms []string
	switch {
	case *all:
		syms = emogi.DatasetSymbols()
	case *sym != "":
		syms = []string{strings.ToUpper(*sym)}
	default:
		log.Fatal("pass -sym <SYM> or -all")
	}

	for _, s := range syms {
		g, err := emogi.BuildDataset(s, *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
		row := graph.Table2Row(g)
		st := graph.AnalyzeDegrees(g)
		fmt.Printf("%-4s |V|=%-9d |E|=%-10d edge list %.1f MB  deg min/mean/max = %d/%.1f/%d  isolated=%d\n",
			s, row.Vertices, row.Edges, float64(row.EdgeBytes)/1e6,
			st.Min, st.Mean, st.Max, st.Isolated)
		if *stats && !g.Directed {
			comps := map[uint32]int{}
			var largest int
			for _, l := range graph.RefCC(g) {
				comps[l]++
				if comps[l] > largest {
					largest = comps[l]
				}
			}
			fmt.Printf("     components=%d  largest=%.1f%% of vertices\n",
				len(comps), 100*float64(largest)/float64(row.Vertices))
		}
		if *stats {
			continue
		}
		path := *out
		if path == "" || *all {
			path = filepath.Join(*dir, strings.ToLower(s)+".csr")
		}
		if err := g.WriteFile(path); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("     wrote %s (%.1f MB)\n", path, float64(info.Size())/1e6)
	}
}
