// Command emogi-bench regenerates the paper's evaluation: every table and
// figure of §5 (plus the §3.3 toy characterization), printed as text tables
// and optionally written to a results directory.
//
//	emogi-bench                 # full run at the standard 1:1000 scale
//	emogi-bench -quick          # reduced scale for a fast smoke run
//	emogi-bench -only fig9,fig10
//	emogi-bench -o results/ -json -csv
//	emogi-bench -metrics-addr :9400 -trace timeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	emogi "repro"
	"repro/internal/bench"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emogi-bench: ")

	var (
		scale     = flag.Float64("scale", 1.0, "dataset scale (1.0 = standard 1:1000 reduction)")
		seed      = flag.Int64("seed", 42, "generator and source seed")
		sources   = flag.Int("sources", 3, "sources averaged per measurement (paper uses 64)")
		quick     = flag.Bool("quick", false, "use the reduced quick configuration")
		workers   = flag.Int("workers", 0, "host goroutines per kernel launch (0 = GOMAXPROCS, 1 = serial; results are identical)")
		only      = flag.String("only", "", "comma-separated subset: table1,table2,table3,transport,reorder,fig3..fig12,ablation-*")
		reorder   = flag.Int("reorder-window", 32,
			"window size in 32B sectors for the -only reorder comparison (off-vs-on legs)")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablations")
		outDir    = flag.String("o", "", "also write each table to <dir>/<id>.txt")
		csv       = flag.Bool("csv", false, "with -o, also write <dir>/<id>.csv")
		jsonOut   = flag.Bool("json", false, "with -o, also write <dir>/<id>.json and a run.json summary")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9400) during the run; keeps serving after it until interrupted")
		tracePath = flag.String("trace", "", "write a Chrome trace-event timeline of the run to this file")
		tiers     = flag.String("tiers", "2tier",
			"memory-tier stack applied to every system: 2tier (the classic machine) or 3tier-cxl (adds CXL-class external memory)")
		paging = flag.String("paging", "cpu",
			"UVM paging model: cpu (serialized fault handler) or gpu (GPU-driven page fetch)")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, Sources: *sources}
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Workers = *workers
	if _, err := emogi.TierStackByName(*tiers); err != nil {
		log.Fatal(err)
	}
	cfg.TierStack = *tiers
	switch strings.ToLower(*paging) {
	case "cpu", "":
	case "gpu":
		cfg.GPUDrivenPaging = true
	default:
		log.Fatalf("unknown paging model %q (want cpu or gpu)", *paging)
	}

	// Telemetry: one collector observes every system the harness builds.
	var (
		tracer *telemetry.Tracer
		srv    *telemetry.Server
	)
	if *metrics != "" || *tracePath != "" {
		if *tracePath != "" {
			tracer = telemetry.NewTracer()
		}
		col := telemetry.NewCollector(nil, tracer)
		cfg.Telemetry = col
		telemetry.RegisterBuildInfo(col.Registry())
		if *metrics != "" {
			var err error
			srv, err = telemetry.ListenAndServe(*metrics, col.Registry())
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("serving metrics at %s", srv.URL())
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	ds := bench.NewDatasets(cfg)
	var emitted []string
	emit := func(id string, t *bench.Table, err error) {
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		emitted = append(emitted, id)
		out := t.Render()
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				log.Fatal(err)
			}
			if *csv {
				cpath := filepath.Join(*outDir, id+".csv")
				if err := os.WriteFile(cpath, []byte(t.RenderCSV()), 0o644); err != nil {
					log.Fatal(err)
				}
			}
			if *jsonOut {
				data, err := json.MarshalIndent(t, "", "  ")
				if err != nil {
					log.Fatal(err)
				}
				jpath := filepath.Join(*outDir, id+".json")
				if err := os.WriteFile(jpath, append(data, '\n'), 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	start := time.Now()
	fmt.Printf("EMOGI evaluation harness  scale=%.3g sources=%d seed=%d\n\n",
		cfg.Scale, cfg.Sources, cfg.Seed)

	if selected("table1") {
		emit("table1", bench.Table1(cfg), nil)
	}
	if selected("table2") {
		emit("table2", bench.Table2(ds), nil)
	}
	if selected("fig3") {
		t, err := bench.Figure3(cfg)
		emit("fig3", t, err)
	}
	if selected("fig4") {
		t, err := bench.Figure4(cfg)
		emit("fig4", t, err)
	}
	if selected("fig6") {
		emit("fig6", bench.Figure6(ds), nil)
	}

	needSweep := selected("fig5") || selected("fig7") || selected("fig8") ||
		selected("fig9") || selected("fig10")
	if needSweep {
		log.Printf("running BFS case-study sweep (6 graphs x 4 systems x %d sources)...", cfg.Sources)
		sweep, err := bench.RunBFSSweep(ds)
		if err != nil {
			log.Fatalf("BFS sweep: %v", err)
		}
		if selected("fig5") {
			emit("fig5", bench.Figure5(sweep), nil)
		}
		if selected("fig7") {
			emit("fig7", bench.Figure7(sweep), nil)
		}
		if selected("fig8") {
			emit("fig8", bench.Figure8(sweep), nil)
		}
		if selected("fig9") {
			emit("fig9", bench.Figure9(sweep), nil)
		}
		if selected("fig10") {
			emit("fig10", bench.Figure10(sweep, ds), nil)
		}
	}

	if selected("fig11") {
		log.Printf("running all-applications sweep on V100...")
		sweep, err := bench.RunAppSweep(ds, emogi.V100PCIe3)
		if err != nil {
			log.Fatalf("app sweep: %v", err)
		}
		emit("fig11", bench.Figure11(sweep), nil)
	}
	if selected("fig12") {
		log.Printf("running PCIe 3.0 vs 4.0 sweeps on A100...")
		t, err := bench.Figure12(ds)
		emit("fig12", t, err)
	}
	if selected("claims") {
		log.Printf("running the paper-claims check...")
		t, err := bench.Claims(ds)
		emit("claims", t, err)
	}
	if selected("table3") {
		log.Printf("running prior-work comparison (HALO, Subway)...")
		t, err := bench.Table3(ds)
		emit("table3", t, err)
	}
	if selected("transport") {
		log.Printf("running transport-policy comparison (static-zc, static-uvm, adaptive)...")
		t, err := bench.TransportComparison(ds, bench.AllSyms(), []string{"bfs", "sssp"})
		emit("transport", t, err)
	}
	if selected("paging") {
		log.Printf("running UVM paging-model comparison (cpu fault handler vs gpu-driven)...")
		t, err := bench.PagingComparison(ds, bench.AllSyms(), []string{"bfs", "sssp"})
		emit("paging", t, err)
	}
	if selected("reorder") {
		log.Printf("running reorder-window comparison (off vs %d sectors)...", *reorder)
		t, err := bench.ReorderComparison(ds, bench.AllSyms(), []string{"bfs", "sssp"}, *reorder)
		emit("reorder", t, err)
	}

	type ablation struct {
		id  string
		run func(*bench.Datasets) (*bench.Table, error)
	}
	for _, ab := range []ablation{
		{"ablation-uvm", bench.AblationUVMBlock},
		{"ablation-worker", bench.AblationWorkerSize},
		{"ablation-balance", bench.AblationBalance},
		{"ablation-compress", bench.AblationCompression},
		{"ablation-multigpu", bench.AblationMultiGPU},
		{"ablation-hybrid", bench.AblationHybrid},
		{"ablation-link", bench.AblationLink},
		{"ablation-edgecentric", bench.AblationEdgeCentric},
		{"ablation-directionopt", bench.AblationDirectionOpt},
		{"ablation-thrash", bench.AblationThrash},
	} {
		if selected(ab.id) || (len(want) != 0 && want["ablations"]) {
			if len(want) == 0 && !*ablations {
				continue
			}
			t, err := ab.run(ds)
			emit(ab.id, t, err)
		}
	}

	elapsed := time.Since(start).Round(time.Millisecond)

	if *jsonOut && *outDir != "" {
		summary := struct {
			Scale     float64  `json:"scale"`
			Seed      int64    `json:"seed"`
			Sources   int      `json:"sources"`
			Workers   int      `json:"workers"`
			Tables    []string `json:"tables"`
			WallClock string   `json:"wall_clock"`
		}{cfg.Scale, cfg.Seed, cfg.Sources, cfg.Workers, emitted, elapsed.String()}
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, "run.json"), append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d trace events to %s", tracer.Len(), *tracePath)
	}

	fmt.Printf("done in %v (wall clock)\n", elapsed)

	if srv != nil {
		// Keep the exporter scrapeable after the run so one-shot consumers
		// (CI smoke jobs, a quick curl) can read the final counters.
		log.Printf("run complete; still serving metrics at %s (interrupt to exit)", srv.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.Close()
	}
}
