package emogi

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/pcie"
	"repro/internal/stats"
)

// RunSummary aggregates a multi-source measurement, following §5.2: "we
// pick 64 random vertices from each graph as the starting sources... the
// final execution time is calculated by averaging the execution times".
type RunSummary struct {
	App       App
	Algo      string // algorithm registry name the runs dispatched through
	Variant   Variant
	Transport Transport
	GraphName string
	Sources   []int

	Results     []*Result
	MeanElapsed time.Duration
	Stats       gpu.KernelStats // summed over all runs
	Monitor     pcie.Snapshot   // link traffic over all runs
}

// MeanBandwidth returns the average PCIe payload bandwidth across the
// summed runs, in bytes/sec.
func (rs *RunSummary) MeanBandwidth() float64 {
	if rs.Stats.Elapsed <= 0 {
		return 0
	}
	return float64(rs.Stats.PCIePayloadBytes) / rs.Stats.Elapsed.Seconds()
}

// IOAmplification returns bytes moved over the link divided by the bytes
// of the dataset the run needed (Figure 10's metric: data transferred /
// dataset size, where the dataset is the edge list plus weights if used).
func (rs *RunSummary) IOAmplification(datasetBytes int64) float64 {
	if datasetBytes <= 0 || len(rs.Results) == 0 {
		return 0
	}
	perRun := float64(rs.Stats.PCIePayloadBytes) / float64(len(rs.Results))
	return perRun / float64(datasetBytes)
}

// RunMany measures app over the given sources (ignored for CC, which runs
// once per "source" to preserve averaging semantics) and averages, with
// cold caches before each run. Every run is validated against the CPU
// reference; a wrong result aborts the measurement.
func (s *System) RunMany(dg *DeviceGraph, app App, sources []int, v Variant) (*RunSummary, error) {
	sum, err := s.RunManyAlgo(dg, strings.ToLower(app.String()), sources, v)
	if err != nil {
		return nil, err
	}
	sum.App = app
	return sum, nil
}

// RunManyAlgo is RunMany over the algorithm registry: it measures the
// named algorithm (built-in application or specialty traversal; see
// Algorithms) over the given sources. Source-free algorithms run once to
// preserve averaging semantics.
func (s *System) RunManyAlgo(dg *DeviceGraph, name string, sources []int, v Variant) (*RunSummary, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("emogi: RunMany needs at least one source")
	}
	a := core.LookupAlgorithm(name)
	if a == nil {
		return nil, &core.UnknownAlgorithmError{Name: name}
	}
	rs := &RunSummary{
		Algo:      a.Name,
		Variant:   v,
		Transport: dg.Transport,
		GraphName: dg.Graph.Name,
		Sources:   sources,
	}
	mon0 := s.dev.Monitor().Snapshot()
	var total time.Duration
	for _, src := range sources {
		res, err := s.Do(context.Background(),
			Request{Graph: dg, Algo: a.Name, Src: src, Variant: v, Cold: true})
		if err != nil {
			return nil, err
		}
		if err := res.Validate(dg.Graph); err != nil {
			return nil, fmt.Errorf("emogi: %s on %s produced wrong output: %w",
				a.Name, dg.Graph.Name, err)
		}
		rs.Results = append(rs.Results, res)
		rs.Stats.Add(&res.Stats)
		total += res.Elapsed
		if a.NoSource {
			break // no source vertex; one run is the measurement
		}
	}
	rs.MeanElapsed = total / time.Duration(len(rs.Results))
	mon1 := s.dev.Monitor().Snapshot()
	rs.Monitor = subtractSnap(mon1, mon0)
	return rs, nil
}

// subtractSnap returns the delta of two monitor snapshots.
func subtractSnap(now, before pcie.Snapshot) pcie.Snapshot {
	by := make(map[int64]uint64)
	for k, v := range now.BySize {
		if d := v - before.BySize[k]; d > 0 {
			by[k] = d
		}
	}
	return pcie.Snapshot{
		Requests:     now.Requests - before.Requests,
		PayloadBytes: now.PayloadBytes - before.PayloadBytes,
		WireBytes:    now.WireBytes - before.WireBytes,
		BySize:       by,
		AvgBandwidth: now.AvgBandwidth,
	}
}

// Speedup returns how many times faster b completed than a (a is the
// baseline): a.MeanElapsed / b.MeanElapsed.
func Speedup(baseline, other *RunSummary) float64 {
	if other.MeanElapsed <= 0 {
		return 0
	}
	return float64(baseline.MeanElapsed) / float64(other.MeanElapsed)
}

// MeanSpeedups averages a slice of speedups (the paper's figure captions
// report arithmetic means).
func MeanSpeedups(xs []float64) float64 { return stats.Mean(xs) }
