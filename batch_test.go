package emogi

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
)

// The batched-execution equivalence battery. The contract under test
// (DESIGN.md §13): every lane of a DoBatch returns Values and Iterations
// bit-for-bit identical to the same request run alone, for every
// algorithm with a batched mode, on both transports, for every kernel
// variant, at every host worker count — and the whole batch costs
// measurably fewer edge scans than running the lanes back to back.

// batchedAlgos are the applications with a native batched engine mode.
var batchedAlgos = []string{"bfs", "sssp", "sswp"}

// singleReference runs each source alone and returns the per-source
// Results, the bit-exact targets every batched lane must reproduce.
func singleReference(t *testing.T, algo string, variant Variant, srcs []int) []*Result {
	t.Helper()
	sys := NewSystem(V100PCIe3(smallScale))
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*Result, len(srcs))
	for i, src := range srcs {
		res, err := sys.Do(context.Background(), Request{
			Graph: dg, Algo: algo, Src: src, Variant: variant, Cold: true,
		})
		if err != nil {
			t.Fatalf("reference %s/src=%d: %v", algo, src, err)
		}
		refs[i] = res
	}
	return refs
}

// laneEqual reports whether a batched lane reproduced its single-source
// reference on the fields the batching contract pins bit-for-bit.
// (Elapsed and Stats describe the shared batch run by design.)
func laneEqual(got, want *Result) bool {
	if got.Iterations != want.Iterations || len(got.Values) != len(want.Values) {
		return false
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			return false
		}
	}
	return true
}

func TestBatchEquivalence(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 5, 11)
	if len(srcs) < 2 {
		t.Fatalf("PickSources returned %d sources, need at least 2", len(srcs))
	}

	// References once per (algo, variant): Values and Iterations do not
	// depend on transport or worker count (that independence is itself
	// asserted below by comparing every batched combination against the
	// same reference).
	type refKey struct {
		algo    string
		variant Variant
	}
	refs := map[refKey][]*Result{}
	for _, algo := range batchedAlgos {
		for _, variant := range []Variant{Merged, MergedAligned} {
			refs[refKey{algo, variant}] = singleReference(t, algo, variant, srcs)
		}
	}

	// batchSig serializes the full batch outcome (values, iterations,
	// stats, elapsed) so runs at different worker counts can be compared
	// bit-for-bit: the engine's determinism contract says the simulated
	// outcome never depends on host parallelism.
	batchSig := func(out *BatchOutcome) string {
		var sb strings.Builder
		for _, item := range out.Results {
			r := item.Res
			fmt.Fprintf(&sb, "%d/%d/%v/%d/%d/%d|", r.Iterations, r.BatchSize, r.Elapsed,
				r.Stats.WarpInstrs, r.Stats.PCIeRequests, r.Stats.PCIePayloadBytes)
			for _, v := range r.Values {
				fmt.Fprintf(&sb, "%x,", v)
			}
		}
		fmt.Fprintf(&sb, "scans=%d/saved=%d", out.EdgeScans, out.EdgeScansSaved)
		return sb.String()
	}

	type comboKey struct {
		algo      string
		transport Transport
		variant   Variant
	}
	sigByCombo := map[comboKey]map[int]string{} // -> workers -> signature

	for _, transport := range []Transport{ZeroCopy, UVM} {
		for _, variant := range []Variant{Merged, MergedAligned} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/workers=%d", transport, variant, workers)
				t.Run(name, func(t *testing.T) {
					cfg := V100PCIe3(smallScale)
					cfg.Workers = workers
					sys := NewSystem(cfg)
					dg, err := sys.Load(g, WithTransport(transport))
					if err != nil {
						t.Fatal(err)
					}
					for _, algo := range batchedAlgos {
						reqs := make([]Request, len(srcs))
						for i, src := range srcs {
							reqs[i] = Request{Graph: dg, Algo: algo, Src: src, Variant: variant, Cold: true}
						}
						out, err := sys.DoBatch(context.Background(), reqs)
						if err != nil {
							t.Fatalf("%s: DoBatch: %v", algo, err)
						}
						if !out.BatchedRun {
							t.Fatalf("%s: BatchedRun = false, want a shared engine run", algo)
						}
						if out.EdgeScansSaved == 0 {
							t.Errorf("%s: EdgeScansSaved = 0 across %d lanes, want sharing", algo, len(srcs))
						}
						want := refs[refKey{algo, variant}]
						for i, item := range out.Results {
							if item.Err != nil {
								t.Fatalf("%s lane %d: %v", algo, i, item.Err)
							}
							if item.Res.BatchSize != len(srcs) {
								t.Errorf("%s lane %d: BatchSize = %d, want %d",
									algo, i, item.Res.BatchSize, len(srcs))
							}
							if err := Validate(g, item.Res); err != nil {
								t.Errorf("%s lane %d: %v", algo, i, err)
							}
							if !laneEqual(item.Res, want[i]) {
								t.Errorf("%s lane %d (src=%d): diverged from single-source run: "+
									"iterations %d vs %d", algo, i, srcs[i],
									item.Res.Iterations, want[i].Iterations)
							}
						}
						key := comboKey{algo, transport, variant}
						if sigByCombo[key] == nil {
							sigByCombo[key] = map[int]string{}
						}
						sigByCombo[key][workers] = batchSig(out)
					}
				})
			}
		}
	}

	// Serial-vs-parallel determinism: the full batch outcome — including
	// the shared Stats and simulated Elapsed — is identical at 1 and 4
	// host workers for every combination.
	for key, byWorkers := range sigByCombo {
		if byWorkers[1] != byWorkers[4] {
			t.Errorf("%s/%s/%s: batch outcome differs between 1 and 4 workers",
				key.algo, key.transport, key.variant)
		}
	}
}

// TestBatchFallback: algorithms without a batched mode (cc, the
// specialty traversals) run lane-by-lane behind the same DoBatch call,
// report BatchedRun=false, and still match their single runs exactly.
func TestBatchFallback(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 3, 13)
	sys := NewSystem(V100PCIe3(smallScale))
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"cc", "bfs-balanced"} {
		reqs := make([]Request, len(srcs))
		for i, src := range srcs {
			reqs[i] = Request{Graph: dg, Algo: algo, Src: src, Cold: true}
		}
		out, err := sys.DoBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("%s: DoBatch: %v", algo, err)
		}
		if out.BatchedRun {
			t.Errorf("%s: BatchedRun = true for an algorithm without a batched mode", algo)
		}
		if out.EdgeScansSaved != 0 {
			t.Errorf("%s: EdgeScansSaved = %d on the sequential fallback, want 0", algo, out.EdgeScansSaved)
		}
		for i, item := range out.Results {
			if item.Err != nil {
				t.Fatalf("%s lane %d: %v", algo, i, item.Err)
			}
			if item.Res.BatchSize != 0 {
				t.Errorf("%s lane %d: BatchSize = %d on fallback, want 0", algo, i, item.Res.BatchSize)
			}
			want, err := sys.Do(context.Background(), Request{Graph: dg, Algo: algo, Src: srcs[i], Cold: true})
			if err != nil {
				t.Fatal(err)
			}
			if !laneEqual(item.Res, want) {
				t.Errorf("%s lane %d: fallback lane diverged from single run", algo, i)
			}
		}
	}
}

// TestBatchLaneCancel: a canceled Request.Ctx detaches only its own
// lane — the lane reports the typed cancellation error, the rest of the
// batch completes bit-identically to an uncanceled run.
func TestBatchLaneCancel(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 4, 17)
	sys := NewSystem(V100PCIe3(smallScale))
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	reqs := make([]Request, len(srcs))
	for i, src := range srcs {
		reqs[i] = Request{Graph: dg, Algo: "bfs", Src: src, Cold: true}
	}
	const victim = 2
	reqs[victim].Ctx = canceled

	out, err := sys.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := singleReference(t, "bfs", Merged, srcs)
	for i, item := range out.Results {
		if i == victim {
			if !errors.Is(item.Err, ErrCanceled) {
				t.Fatalf("victim lane: err = %v, want ErrCanceled", item.Err)
			}
			var ce *CanceledError
			if !errors.As(item.Err, &ce) {
				t.Fatalf("victim lane: err = %v, want *CanceledError", item.Err)
			} else if ce.Rounds != 0 {
				t.Errorf("victim lane: ran %d round(s) before detaching, want 0", ce.Rounds)
			}
			continue
		}
		if item.Err != nil {
			t.Fatalf("lane %d: %v", i, item.Err)
		}
		if !laneEqual(item.Res, want[i]) {
			t.Errorf("lane %d: result diverged after a batchmate was canceled", i)
		}
	}

	// Whole-batch cancellation still surfaces as one typed error.
	if _, err := sys.DoBatch(canceled, reqs); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled batch: err = %v, want ErrCanceled", err)
	}
}

// TestBatchLaneErrors: a bad source fails only its own lane; malformed
// batches fail as a whole with a descriptive error.
func TestBatchLaneErrors(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(V100PCIe3(smallScale))
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 2, 19)

	out, err := sys.DoBatch(context.Background(), []Request{
		{Graph: dg, Algo: "bfs", Src: srcs[0]},
		{Graph: dg, Algo: "bfs", Src: g.NumVertices() + 5},
		{Graph: dg, Algo: "bfs", Src: srcs[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[1].Err == nil || !strings.Contains(out.Results[1].Err.Error(), "out of range") {
		t.Errorf("out-of-range lane: err = %v, want out-of-range error", out.Results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Err != nil {
			t.Errorf("lane %d: %v, want success beside a failed lane", i, out.Results[i].Err)
		} else if err := Validate(g, out.Results[i].Res); err != nil {
			t.Errorf("lane %d: %v", i, err)
		}
	}

	whole := []struct {
		name string
		reqs []Request
		frag string
	}{
		{"empty", nil, "at least one request"},
		{"nil graph", []Request{{Algo: "bfs"}}, "requires Request.Graph"},
		{"no algo", []Request{{Graph: dg}}, "requires Request.Algo"},
		{"unknown algo", []Request{{Graph: dg, Algo: "dfs"}}, "unknown algorithm"},
		{"mixed algo", []Request{{Graph: dg, Algo: "bfs"}, {Graph: dg, Algo: "sssp"}}, "names algo"},
		{"mixed variant", []Request{
			{Graph: dg, Algo: "bfs", Variant: Merged},
			{Graph: dg, Algo: "bfs", Variant: Naive},
		}, "variant"},
	}
	for _, tc := range whole {
		_, err := sys.DoBatch(context.Background(), tc.reqs)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want message containing %q", tc.name, err, tc.frag)
		}
	}
}

// TestBatchTransientFault: injected transient faults abort the whole
// batch with the typed transient error — the retry ladder lives in the
// service layer, so DoBatch itself must surface the failure cleanly.
func TestBatchTransientFault(t *testing.T) {
	inj, err := fault.New(fault.Config{Seed: 5, ReadFaultRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cfg := V100PCIe3(smallScale)
	cfg.Faults = inj
	sys := NewSystem(cfg)
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 4, 23)
	reqs := make([]Request, len(srcs))
	for i, src := range srcs {
		reqs[i] = Request{Graph: dg, Algo: "bfs", Src: src, Cold: true}
	}
	for attempt := 0; attempt < 8; attempt++ {
		if _, err := sys.DoBatch(context.Background(), reqs); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("faulted batch: err = %v, want ErrTransient", err)
			}
			return
		}
	}
	t.Fatal("a 5% read-fault rate never aborted a batch in 8 attempts")
}
