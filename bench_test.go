package emogi_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md §5 for the index). Each benchmark runs the corresponding
// harness runner at the reduced QuickConfig scale and reports the headline
// simulated metrics via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation in miniature. cmd/emogi-bench runs the
// same runners at full scale.

import (
	"context"
	"fmt"
	"testing"
	"time"

	emogi "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// benchConfig is the shared reduced configuration.
func benchConfig() bench.Config { return bench.QuickConfig() }

// BenchmarkFig3RequestPatterns regenerates Figure 3: the PCIe request-size
// mix of the toy traversal's three access patterns.
func BenchmarkFig3RequestPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkFig4ToyBandwidth regenerates Figure 4: toy traversal PCIe and
// DRAM bandwidths, reporting the three patterns in GB/s.
func BenchmarkFig4ToyBandwidth(b *testing.B) {
	cfg := benchConfig()
	var strided, aligned, misaligned float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			p   core.ToyPattern
			dst *float64
		}{
			{core.ToyStrided, &strided},
			{core.ToyMergedAligned, &aligned},
			{core.ToyMergedMisaligned, &misaligned},
		} {
			gcfg := emogi.V100PCIe3(cfg.Scale).GPU
			gcfg.MemBytes = 0 // the toy's output array is not under test
			dev := gpu.NewDevice(gcfg)
			r, err := core.ToyTraverse(dev, 1<<20, tc.p, core.ZeroCopy)
			if err != nil {
				b.Fatal(err)
			}
			*tc.dst = r.PCIeBandwidth / 1e9
		}
	}
	b.ReportMetric(strided, "strided-GB/s")
	b.ReportMetric(misaligned, "misaligned-GB/s")
	b.ReportMetric(aligned, "aligned-GB/s")
}

// BenchmarkTable2Datasets regenerates Table 2: dataset synthesis and
// inventory statistics.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := bench.NewDatasets(benchConfig())
		t := bench.Table2(ds)
		if len(t.Rows) != 6 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkFig6DegreeCDF regenerates Figure 6: the edge-count CDF over
// vertex degree for all six graphs.
func BenchmarkFig6DegreeCDF(b *testing.B) {
	ds := bench.NewDatasets(benchConfig())
	for _, sym := range bench.AllSyms() {
		ds.Get(sym) // build outside the timed loop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.Figure6(ds)
		if len(t.Rows) != 6 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// benchSweep runs the §5.3 BFS case-study sweep once and caches it for the
// figure benchmarks that are views over it.
var cachedSweep *bench.BFSSweep
var cachedSweepDS *bench.Datasets

func getSweep(b *testing.B) (*bench.BFSSweep, *bench.Datasets) {
	b.Helper()
	if cachedSweep == nil {
		ds := bench.NewDatasets(benchConfig())
		sweep, err := bench.RunBFSSweep(ds)
		if err != nil {
			b.Fatal(err)
		}
		cachedSweep = sweep
		cachedSweepDS = ds
	}
	return cachedSweep, cachedSweepDS
}

// BenchmarkFig5RequestSizes regenerates Figure 5: BFS PCIe request size
// distributions, reporting the Merged+Aligned 128B share averaged over
// graphs.
func BenchmarkFig5RequestSizes(b *testing.B) {
	sweep, _ := getSweep(b)
	var share float64
	for i := 0; i < b.N; i++ {
		t := bench.Figure5(sweep)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		total := 0.0
		for _, sym := range bench.AllSyms() {
			mon := sweep.Cell(sym, "Merged+Aligned").Summary.Monitor
			total += float64(mon.BySize[128]) / float64(mon.Requests)
		}
		share = total / float64(len(bench.AllSyms()))
	}
	b.ReportMetric(share*100, "aligned-128B-%")
}

// BenchmarkFig7RequestCounts regenerates Figure 7: total PCIe requests per
// implementation, reporting the average merge-optimization cut.
func BenchmarkFig7RequestCounts(b *testing.B) {
	sweep, _ := getSweep(b)
	var cut float64
	for i := 0; i < b.N; i++ {
		t := bench.Figure7(sweep)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		total := 0.0
		for _, sym := range bench.AllSyms() {
			n := float64(sweep.Cell(sym, "Naive").Summary.Monitor.Requests)
			m := float64(sweep.Cell(sym, "Merged").Summary.Monitor.Requests)
			total += 1 - m/n
		}
		cut = total / float64(len(bench.AllSyms()))
	}
	b.ReportMetric(cut*100, "merge-request-cut-%")
}

// BenchmarkFig8Bandwidth regenerates Figure 8: average PCIe bandwidth
// during BFS, reporting the Merged+Aligned mean in GB/s.
func BenchmarkFig8Bandwidth(b *testing.B) {
	sweep, _ := getSweep(b)
	var bw float64
	for i := 0; i < b.N; i++ {
		t := bench.Figure8(sweep)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		total := 0.0
		for _, sym := range bench.AllSyms() {
			total += sweep.Cell(sym, "Merged+Aligned").Bandwidth()
		}
		bw = total / float64(len(bench.AllSyms())) / 1e9
	}
	b.ReportMetric(bw, "aligned-GB/s")
}

// BenchmarkFig9BFSSpeedup regenerates Figure 9: BFS performance normalized
// to UVM, reporting the Merged+Aligned average speedup.
func BenchmarkFig9BFSSpeedup(b *testing.B) {
	sweep, _ := getSweep(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		t := bench.Figure9(sweep)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		total := 0.0
		for _, sym := range bench.AllSyms() {
			total += emogi.Speedup(sweep.Cell(sym, "UVM").Summary,
				sweep.Cell(sym, "Merged+Aligned").Summary)
		}
		avg = total / float64(len(bench.AllSyms()))
	}
	b.ReportMetric(avg, "speedup-vs-uvm")
}

// BenchmarkFig10Amplification regenerates Figure 10: I/O read
// amplification, reporting UVM's and EMOGI's averages.
func BenchmarkFig10Amplification(b *testing.B) {
	sweep, ds := getSweep(b)
	var uvmAmp, emAmp float64
	for i := 0; i < b.N; i++ {
		t := bench.Figure10(sweep, ds)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		u, e := 0.0, 0.0
		for _, sym := range bench.AllSyms() {
			dataset := ds.Get(sym).EdgeListBytes(8)
			u += sweep.Cell(sym, "UVM").Summary.IOAmplification(dataset)
			e += sweep.Cell(sym, "Merged+Aligned").Summary.IOAmplification(dataset)
		}
		uvmAmp, emAmp = u/6, e/6
	}
	b.ReportMetric(uvmAmp, "uvm-amplification")
	b.ReportMetric(emAmp, "emogi-amplification")
}

// BenchmarkFig11AllApps regenerates Figure 11: SSSP/BFS/CC speedups over
// UVM, reporting the overall average (the paper's 2.92x).
func BenchmarkFig11AllApps(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		ds := bench.NewDatasets(benchConfig())
		sweep, err := bench.RunAppSweep(ds, emogi.V100PCIe3)
		if err != nil {
			b.Fatal(err)
		}
		t := bench.Figure11(sweep)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		total, count := 0.0, 0
		for _, app := range []emogi.App{emogi.SSSP, emogi.BFS, emogi.CC} {
			for _, sym := range bench.AppGraphs(app) {
				total += emogi.Speedup(sweep.Cell(app, sym, "UVM").Summary,
					sweep.Cell(app, sym, "EMOGI").Summary)
				count++
			}
		}
		avg = total / float64(count)
	}
	b.ReportMetric(avg, "avg-speedup-vs-uvm")
}

// BenchmarkFig12PCIe4Scaling regenerates Figure 12: PCIe 3.0 vs 4.0
// scaling on the A100, reporting both systems' link-scaling factors.
func BenchmarkFig12PCIe4Scaling(b *testing.B) {
	var uvmScale, emScale float64
	for i := 0; i < b.N; i++ {
		ds := bench.NewDatasets(benchConfig())
		t, err := bench.Figure12(ds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
		// The scaling factors are in the note; recompute them directly.
		gen3, err := bench.RunAppSweep(ds, emogi.A100PCIe3)
		if err != nil {
			b.Fatal(err)
		}
		gen4, err := bench.RunAppSweep(ds, emogi.A100PCIe4)
		if err != nil {
			b.Fatal(err)
		}
		u, e, n := 0.0, 0.0, 0
		for _, app := range []emogi.App{emogi.SSSP, emogi.BFS, emogi.CC} {
			for _, sym := range bench.AppGraphs(app) {
				u += emogi.Speedup(gen4.Cell(app, sym, "UVM").Summary, gen3.Cell(app, sym, "UVM").Summary)
				e += emogi.Speedup(gen4.Cell(app, sym, "EMOGI").Summary, gen3.Cell(app, sym, "EMOGI").Summary)
				n++
			}
		}
		// emogi.Speedup(gen4, gen3) = gen4/gen3 elapsed ratio; invert for scaling.
		uvmScale, emScale = 1/(u/float64(n)), 1/(e/float64(n))
	}
	b.ReportMetric(uvmScale, "uvm-gen4-scaling")
	b.ReportMetric(emScale, "emogi-gen4-scaling")
}

// BenchmarkTable3PriorWork regenerates Table 3: EMOGI vs HALO and Subway.
func BenchmarkTable3PriorWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := bench.NewDatasets(benchConfig())
		t, err := bench.Table3(ds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkCoreBFSMergedAligned is a plain throughput benchmark of the
// fully-optimized BFS kernel (simulator edges traversed per wall-clock
// second), for tracking the simulator's own performance.
func BenchmarkCoreBFSMergedAligned(b *testing.B) {
	g, err := emogi.BuildDataset("GK", 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	sys := emogi.NewSystem(emogi.V100PCIe3(0.1))
	dg, err := sys.Load(g)
	if err != nil {
		b.Fatal(err)
	}
	src := emogi.PickSources(g, 1, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BFS(dg, src, emogi.MergedAligned); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumEdges()*int64(b.N))/b.Elapsed().Seconds(), "sim-edges/s")
}

// BenchmarkCoalescer measures the simulator's coalescing unit in
// isolation.
func BenchmarkCoalescer(b *testing.B) {
	dev := gpu.NewDevice(emogi.V100PCIe3(1).GPU)
	buf := dev.Arena().MustAlloc("zc", 1, 1<<20) // SpaceHostPinned
	var idx [gpu.WarpSize]int64
	for i := range idx {
		idx[i] = int64(i)
	}
	b.ResetTimer()
	dev.Launch("bench", 1, func(w *gpu.Warp) {
		for i := 0; i < b.N; i++ {
			w.InvalidateMRU()
			w.GatherU64(buf, &idx, gpu.MaskFull)
		}
	})
}

// BenchmarkGenerators measures dataset synthesis throughput.
func BenchmarkGenerators(b *testing.B) {
	for _, sym := range bench.AllSyms() {
		b.Run(sym, func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				g, err := emogi.BuildDataset(sym, 0.1, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkRefAlgorithms measures the CPU reference implementations used
// for validation.
func BenchmarkRefAlgorithms(b *testing.B) {
	g, err := emogi.BuildDataset("GU", 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	src := emogi.PickSources(g, 1, 1)[0]
	b.Run("BFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.RefBFS(g, src)
		}
	})
	b.Run("SSSP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.RefSSSP(g, src)
		}
	})
	b.Run("CC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.RefCC(g)
		}
	})
}

// BenchmarkLaunchWorkers measures host wall-clock scaling of the parallel
// launch engine: the same zero-copy Merged+Aligned BFS run with 1, 2, 4,
// and 8 worker goroutines per kernel launch. Simulated results are
// bit-for-bit identical across the worker counts (enforced by
// internal/core/parallel_test.go); only the wall-clock time here should
// change, and only on hosts with that many cores to offer.
func BenchmarkLaunchWorkers(b *testing.B) {
	g, err := emogi.BuildDataset("GK", 0.3, 42)
	if err != nil {
		b.Fatal(err)
	}
	src := emogi.PickSources(g, 1, 1)[0]
	var refElapsed time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%d", workers), func(b *testing.B) {
			cfg := emogi.V100PCIe3(0.3)
			cfg.Workers = workers
			sys := emogi.NewSystem(cfg)
			dg, err := sys.Load(g)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *emogi.Result
			for i := 0; i < b.N; i++ {
				if res, err = sys.BFS(dg, src, emogi.MergedAligned); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if workers == 1 {
				refElapsed = res.Elapsed
			} else if refElapsed != 0 && res.Elapsed != refElapsed {
				b.Fatalf("simulated time diverged at %d workers: %v vs %v", workers, res.Elapsed, refElapsed)
			}
			b.ReportMetric(float64(g.NumEdges()*int64(b.N))/b.Elapsed().Seconds(), "sim-edges/s")
		})
	}
}

// BenchmarkAblations runs the six design-choice ablations at quick scale
// (see internal/bench/ablation.go and DESIGN.md §6).
func BenchmarkAblations(b *testing.B) {
	ablations := []struct {
		name string
		run  func(*bench.Datasets) (*bench.Table, error)
	}{
		{"UVMBlock", bench.AblationUVMBlock},
		{"WorkerSize", bench.AblationWorkerSize},
		{"Balance", bench.AblationBalance},
		{"Compression", bench.AblationCompression},
		{"MultiGPU", bench.AblationMultiGPU},
		{"Hybrid", bench.AblationHybrid},
		{"Link", bench.AblationLink},
		{"EdgeCentric", bench.AblationEdgeCentric},
		{"DirectionOpt", bench.AblationDirectionOpt},
		{"Thrash", bench.AblationThrash},
	}
	for _, ab := range ablations {
		b.Run(ab.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := bench.NewDatasets(benchConfig())
				t, err := ab.run(ds)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Log("\n" + t.Render())
				}
			}
		})
	}
}

// BenchmarkBatchRun measures the multi-source batched engine (DESIGN.md
// §13): K BFS sources advanced through one shared fixed-point loop on
// GK at 0.3 scale. The headline metric is edge-scans/query — the edge
// reads one query costs after lane sharing amortizes the sweep; at K=1
// it equals a solo run's scan count and it must fall monotonically as K
// grows (the acceptance criterion: a K=32 batch scans measurably fewer
// edges than 32 sequential runs). ns/edge is host wall-clock per
// simulated edge scan; scans-saved-% is the fraction of the unshared
// K-run scan volume the lane bitmask eliminated. The device is uncapped
// because the lane-major state scales with K, not with the dataset the
// simulated V100's memory was sized for.
func BenchmarkBatchRun(b *testing.B) {
	g, err := emogi.BuildDataset("GK", 0.3, 42)
	if err != nil {
		b.Fatal(err)
	}
	srcs := emogi.PickSources(g, 64, 9)
	if len(srcs) < 64 {
		b.Fatalf("only %d sources available", len(srcs))
	}
	for _, k := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			gcfg := emogi.V100PCIe3(0.3).GPU
			gcfg.MemBytes = 0
			dev := gpu.NewDevice(gcfg)
			dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
			if err != nil {
				b.Fatal(err)
			}
			specs := make([]core.BatchSpec, k)
			for i := range specs {
				specs[i].Src = srcs[i]
			}
			b.ResetTimer()
			var out *core.BatchOutcome
			for i := 0; i < b.N; i++ {
				out, err = core.RunBatchAlgo(context.Background(), dev, dg, "bfs", specs, core.MergedAligned)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			total := out.EdgeScans
			unshared := out.EdgeScans + out.EdgeScansSaved
			b.ReportMetric(float64(total)/float64(k), "edge-scans/query")
			b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(total)/float64(b.N), "ns/edge")
			b.ReportMetric(100*float64(out.EdgeScansSaved)/float64(unshared), "scans-saved-%")
		})
	}
}
