package emogi

import (
	"context"
	"strings"
	"testing"
)

func TestTierCatalogAndAliases(t *testing.T) {
	stacks := TierStacks()
	if len(stacks) != 2 || stacks[0].Name != "2tier" || stacks[1].Name != "3tier-cxl" {
		t.Fatalf("catalog = %+v", stacks)
	}
	for name, want := range map[string]string{
		"2tier": "2tier", "two-tier": "2tier", "pcie": "2tier", "default": "2tier", "": "2tier",
		"3tier-cxl": "3tier-cxl", "3tier": "3tier-cxl", "cxl": "3tier-cxl",
		"three-tier": "3tier-cxl", "CXL": "3tier-cxl", " 3TIER ": "3tier-cxl",
	} {
		e, err := TierStackByName(name)
		if err != nil {
			t.Errorf("TierStackByName(%q): %v", name, err)
			continue
		}
		if e.Name != want {
			t.Errorf("TierStackByName(%q) = %s, want %s", name, e.Name, want)
		}
	}
	_, err := TierStackByName("nvlink")
	if err == nil {
		t.Fatal("unknown tier stack should error")
	}
	for _, frag := range []string{"2tier", "3tier-cxl", "cxl", "pcie"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error should list %q: %v", frag, err)
		}
	}
}

func TestSystemConfigTierStackDerivation(t *testing.T) {
	for _, mk := range []func(float64) SystemConfig{V100PCIe3, TitanXpPCIe3, A100PCIe3, A100PCIe4} {
		cfg := mk(0.05)
		ts := cfg.TierStack()
		if err := ts.Validate(); err != nil {
			t.Errorf("%s: derived stack invalid: %v", cfg.Name, err)
		}
		dram := ts.DRAM()
		if dram.Link.Name != cfg.GPU.Link.Name || dram.Link.RawBytesPerSec != cfg.GPU.Link.RawBytesPerSec {
			t.Errorf("%s: derived DRAM link %q does not match GPU.Link %q", cfg.Name, dram.Link.Name, cfg.GPU.Link.Name)
		}
		if ts.HBM().CapacityBytes != cfg.GPU.MemBytes || dram.CapacityBytes != cfg.GPU.HostMemBytes {
			t.Errorf("%s: derived capacities do not match the classic fields", cfg.Name)
		}
		if ts.HasCXL() {
			t.Errorf("%s: platform constructors are two-tier", cfg.Name)
		}
	}
}

func TestApplyTierStackThreeTier(t *testing.T) {
	base := V100PCIe3(0.05)
	cfg, err := ApplyTierStack(base, "3tier-cxl")
	if err != nil {
		t.Fatal(err)
	}
	ts := cfg.TierStack()
	if !ts.HasCXL() {
		t.Fatal("3tier-cxl config has no CXL tier")
	}
	if got, want := ts.CXL().CapacityBytes, 4*base.GPU.HostMemBytes; got != want {
		t.Errorf("CXL capacity = %d, want 4x host DRAM = %d", got, want)
	}
	two, err := ApplyTierStack(base, "2tier")
	if err != nil {
		t.Fatal(err)
	}
	if two.Tiers != nil {
		t.Error("2tier should keep the classic (nil Tiers) configuration")
	}
	if _, err := ApplyTierStack(base, "bogus"); err == nil {
		t.Error("unknown stack name should error")
	}
}

// TestThreeTierTraversalEndToEnd drives the public API through a 3-tier
// system: CXL placement must produce CXL traffic and exact results, and the
// two-tier system must reject CXL placement with a clear error.
func TestThreeTierTraversalEndToEnd(t *testing.T) {
	cfg, err := ApplyTierStack(V100PCIe3(0.02), "3tier-cxl")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(cfg)
	g, err := BuildDataset("GK", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g, WithPlacement(PlaceCXL))
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 71)[0]
	res, err := sys.Do(context.Background(), Request{Graph: dg, Algo: "bfs", Src: src, Variant: MergedAligned})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res); err != nil {
		t.Fatalf("CXL-placed traversal wrong: %v", err)
	}
	if res.Stats.CXLRequests == 0 || res.Stats.CXLPayloadBytes == 0 {
		t.Errorf("CXL-placed run recorded no CXL traffic: reqs=%d payload=%d",
			res.Stats.CXLRequests, res.Stats.CXLPayloadBytes)
	}

	// Request-level placement moves the graph back to DRAM; the following
	// run must be CXL-quiet.
	res2, err := sys.Do(context.Background(), Request{
		Graph: dg, Algo: "bfs", Src: src, Variant: MergedAligned, Placement: PlaceDRAM})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res2); err != nil {
		t.Fatalf("re-homed traversal wrong: %v", err)
	}
	if res2.Stats.CXLRequests != 0 {
		t.Errorf("DRAM-re-homed run still issued %d CXL requests", res2.Stats.CXLRequests)
	}

	// Two-tier systems reject CXL placement at load.
	sys2 := NewSystem(V100PCIe3(0.02))
	if _, err := sys2.Load(g, WithPlacement(PlaceCXL)); err == nil {
		t.Error("PlaceCXL on a two-tier system should fail at Load")
	}
}

// TestWithTierStackAtLoad attaches the CXL tier through the Load option on
// a system built two-tier.
func TestWithTierStackAtLoad(t *testing.T) {
	cfg := V100PCIe3(0.02)
	sys := NewSystem(cfg)
	g, err := BuildDataset("GU", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	ts := ThreeTierCXL(cfg.TierStack(), 4*cfg.GPU.HostMemBytes)
	dg, err := sys.Load(g, WithTierStack(ts), WithPlacement(PlaceCXL))
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 71)[0]
	res, err := sys.Do(context.Background(), Request{Graph: dg, Algo: "bfs", Src: src, Variant: MergedAligned})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.CXLRequests == 0 {
		t.Error("load-time-attached CXL tier served no traffic")
	}

	// A stack whose DRAM capacity disagrees with the machine is rejected.
	bad := ThreeTierCXL(TwoTier(cfg.GPU.MemBytes, cfg.GPU.HostMemBytes+1,
		cfg.GPU.HBM, cfg.GPU.HostDRAM, cfg.GPU.Link), 1<<30)
	if _, err := sys.Load(g, WithTierStack(bad)); err == nil {
		t.Error("mismatched tier stack should fail at Load")
	}
}

// TestGPUDrivenPagingSystem checks the system-level paging selector: same
// migrations, faster UVM-bound runs.
func TestGPUDrivenPagingSystem(t *testing.T) {
	g, err := BuildDataset("GK", 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 71)[0]
	run := func(gpuDriven bool) *Result {
		cfg := V100PCIe3(0.02)
		cfg.GPUDrivenPaging = gpuDriven
		sys := NewSystem(cfg)
		dg, err := sys.Load(g, WithTransportPolicy(StaticPolicy(UVM)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Do(context.Background(), Request{Graph: dg, Algo: "bfs", Src: src, Variant: Merged})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	cpu, gpu := run(false), run(true)
	if cpu.Stats.UVMMigrations != gpu.Stats.UVMMigrations {
		t.Errorf("paging models disagree on migrations: %d vs %d",
			cpu.Stats.UVMMigrations, gpu.Stats.UVMMigrations)
	}
	if gpu.Elapsed >= cpu.Elapsed {
		t.Errorf("GPU-driven paging should beat the CPU fault handler on a UVM run: %v vs %v",
			gpu.Elapsed, cpu.Elapsed)
	}
}
