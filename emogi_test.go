package emogi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// smallScale keeps the public-API tests fast: ~1:50000 of the paper.
const smallScale = 0.02

func TestSystemConfigs(t *testing.T) {
	v100 := V100PCIe3(1.0)
	if v100.GPU.MemBytes != 16<<30/1000 {
		t.Errorf("V100 memory = %d, want 1:1000 of 16GB", v100.GPU.MemBytes)
	}
	xp := TitanXpPCIe3(1.0)
	if xp.GPU.MemBytes >= v100.GPU.MemBytes {
		t.Errorf("Titan Xp should have less memory than V100")
	}
	a3, a4 := A100PCIe3(1.0), A100PCIe4(1.0)
	if a3.GPU.MemBytes != a4.GPU.MemBytes {
		t.Errorf("A100 memory should not depend on link generation")
	}
	if a3.GPU.Link.Gen == a4.GPU.Link.Gen {
		t.Errorf("A100 configs should differ in link generation")
	}
	// Scaling scales memory too.
	half := V100PCIe3(0.5)
	if half.GPU.MemBytes != v100.GPU.MemBytes/2 {
		t.Errorf("dataset scale should scale GPU memory")
	}
}

func TestBuildDataset(t *testing.T) {
	for _, sym := range DatasetSymbols() {
		g, err := BuildDataset(sym, smallScale, 1)
		if err != nil {
			t.Fatalf("BuildDataset(%s): %v", sym, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", sym)
		}
	}
	if _, err := BuildDataset("nope", 1, 1); err == nil {
		t.Errorf("unknown dataset accepted")
	}
	if len(DatasetSymbols()) != 6 {
		t.Errorf("want 6 dataset symbols")
	}
}

func TestEndToEndBFS(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Unload(dg)
	src := PickSources(g, 1, 3)[0]
	res, err := sys.BFS(dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res); err != nil {
		t.Errorf("BFS result invalid: %v", err)
	}
	if res.Elapsed <= 0 || res.Stats.PCIeRequests == 0 {
		t.Errorf("degenerate run: %+v", res)
	}
}

func TestEndToEndAllAppsAllTransports(t *testing.T) {
	g, err := BuildDataset("GU", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 5)[0]
	for _, transport := range []Transport{ZeroCopy, UVM} {
		sys := NewSystem(V100PCIe3(smallScale))
		dg, err := sys.Load(g, WithTransport(transport))
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range []App{BFS, SSSP, CC} {
			res, err := sys.Run(dg, app, src, Merged)
			if err != nil {
				t.Fatalf("%s/%s: %v", transport, app, err)
			}
			if err := Validate(g, res); err != nil {
				t.Errorf("%s/%s: %v", transport, app, err)
			}
		}
	}
}

func TestRunManyAveraging(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, err := BuildDataset("GU", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(g, 3, 11)
	sum, err := sys.RunMany(dg, BFS, sources, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(sum.Results))
	}
	var total time.Duration
	for _, r := range sum.Results {
		total += r.Elapsed
	}
	if sum.MeanElapsed != total/3 {
		t.Errorf("MeanElapsed = %v, want %v", sum.MeanElapsed, total/3)
	}
	if sum.MeanBandwidth() <= 0 {
		t.Errorf("MeanBandwidth should be positive")
	}
	if sum.Monitor.Requests == 0 {
		t.Errorf("monitor delta empty")
	}
	amp := sum.IOAmplification(g.EdgeListBytes(8))
	if amp <= 0 || amp > 3 {
		t.Errorf("implausible amplification %v", amp)
	}
}

func TestRunManyCCRunsOnce(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.RunMany(dg, CC, []int{0, 1, 2}, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 1 {
		t.Errorf("CC should run once, got %d runs", len(sum.Results))
	}
}

func TestRunManyNoSources(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMany(dg, BFS, nil, Merged); err == nil {
		t.Errorf("empty source list accepted")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	a := &RunSummary{MeanElapsed: 2 * time.Second}
	b := &RunSummary{MeanElapsed: 1 * time.Second}
	if got := Speedup(a, b); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(a, &RunSummary{}); got != 0 {
		t.Errorf("zero-time Speedup = %v, want 0", got)
	}
	if got := MeanSpeedups([]float64{2, 4}); got != 3 {
		t.Errorf("MeanSpeedups = %v, want 3", got)
	}
}

// TestHeadlineSpeedupDirection: the paper's core claim in miniature —
// EMOGI Merged+Aligned beats the optimized UVM baseline for BFS on a
// skewed out-of-memory graph.
func TestHeadlineSpeedupDirection(t *testing.T) {
	g, err := BuildDataset("GK", 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(g, 2, 13)

	sysU := NewSystem(V100PCIe3(0.3))
	dgU, err := sysU.Load(g, WithTransport(UVM))
	if err != nil {
		t.Fatal(err)
	}
	uvm, err := sysU.RunMany(dgU, BFS, sources, Merged)
	if err != nil {
		t.Fatal(err)
	}

	sysE := NewSystem(V100PCIe3(0.3))
	dgE, err := sysE.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	em, err := sysE.RunMany(dgE, BFS, sources, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}

	if sp := Speedup(uvm, em); sp < 1.2 {
		t.Errorf("EMOGI speedup over UVM = %.2fx, want > 1.2x", sp)
	}
}

func TestValidateNilResult(t *testing.T) {
	g, _ := BuildDataset("GU", smallScale, 7)
	if err := Validate(g, nil); err == nil {
		t.Errorf("nil result accepted")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	if sys.Config().Name == "" {
		t.Errorf("Config should carry the platform name")
	}
	if sys.Device() == nil {
		t.Errorf("Device should be exposed")
	}
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 5)[0]
	if _, err := sys.SSSP(dg, src, Merged); err != nil {
		t.Fatalf("SSSP: %v", err)
	}
	if _, err := sys.CC(dg, Merged); err != nil {
		t.Fatalf("CC: %v", err)
	}
	if sys.Device().Clock() == 0 {
		t.Errorf("clock should have advanced")
	}
	sys.ResetStats()
	if sys.Device().Clock() != 0 {
		t.Errorf("ResetStats should zero the clock")
	}
}

func TestRunSummaryZeroCases(t *testing.T) {
	var rs RunSummary
	if rs.MeanBandwidth() != 0 {
		t.Errorf("zero summary bandwidth should be 0")
	}
	if rs.IOAmplification(0) != 0 || rs.IOAmplification(100) != 0 {
		t.Errorf("degenerate amplification should be 0")
	}
}

// TestLoadOptions: the functional-option Load covers every transport and
// element-width combination the positional v1 signature did, and the
// defaults are the paper's configuration (zero-copy, 8-byte elements).
func TestLoadOptions(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(V100PCIe3(smallScale))
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Transport != ZeroCopy || dg.EdgeBytes != 8 {
		t.Errorf("default Load = %v/%d, want zerocopy/8", dg.Transport, dg.EdgeBytes)
	}
	sys.Unload(dg)

	dg, err = sys.Load(g, WithTransport(UVM), WithElemBytes(4))
	if err != nil {
		t.Fatal(err)
	}
	if dg.Transport != UVM || dg.EdgeBytes != 4 {
		t.Errorf("Load with options = %v/%d, want uvm/4", dg.Transport, dg.EdgeBytes)
	}
	sys.Unload(dg)

	// The deprecated positional signature still works and agrees.
	dgV1, err := sys.LoadV1(g, UVM, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dgV1.Transport != UVM || dgV1.EdgeBytes != 4 {
		t.Errorf("LoadV1 = %v/%d, want uvm/4", dgV1.Transport, dgV1.EdgeBytes)
	}
	sys.Unload(dgV1)
}

// TestUnloadIdempotent: Unload (and the underlying Free) may be called
// any number of times, including on an already-unloaded graph, without
// corrupting the arena accounting.
func TestUnloadIdempotent(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(V100PCIe3(smallScale))
	before := sys.Device().Arena().GPUUsed()
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	sys.Unload(dg)
	after := sys.Device().Arena().GPUUsed()
	if after != before {
		t.Fatalf("Unload left %d bytes allocated", after-before)
	}
	sys.Unload(dg) // second unload: no-op
	sys.Unload(dg) // and again
	if got := sys.Device().Arena().GPUUsed(); got != after {
		t.Errorf("repeated Unload changed arena accounting: %d -> %d", after, got)
	}
	// A fresh Load after the double-unload still works.
	dg2, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Do(context.Background(), Request{Graph: dg2, Algo: "bfs", Src: 0}); err != nil {
		t.Fatal(err)
	}
	sys.Unload(dg2)
}

// TestDeprecatedWrappersDelegate: every v1 convenience method produces
// the same answer as the Do request it now delegates to.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	g, err := BuildDataset("GK", smallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(V100PCIe3(smallScale))
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Unload(dg)
	src := PickSources(g, 1, 7)[0]

	check := func(name string, v1 func() (*Result, error), req Request) {
		t.Helper()
		got, err := v1()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := sys.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("%s via Do: %v", name, err)
		}
		if got.App != want.App || got.Iterations != want.Iterations {
			t.Errorf("%s: v1 wrapper and Do disagree: %s/%d vs %s/%d",
				name, got.App, got.Iterations, want.App, want.Iterations)
		}
		for i := range got.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("%s: values diverge at vertex %d", name, i)
			}
		}
	}
	check("BFS",
		func() (*Result, error) { return sys.BFS(dg, src, MergedAligned) },
		Request{Graph: dg, Algo: "bfs", Src: src, Variant: MergedAligned})
	check("SSSP",
		func() (*Result, error) { return sys.SSSP(dg, src, MergedAligned) },
		Request{Graph: dg, Algo: "sssp", Src: src, Variant: MergedAligned})
	check("CC",
		func() (*Result, error) { return sys.CC(dg, MergedAligned) },
		Request{Graph: dg, Algo: "cc", Variant: MergedAligned})
	check("SSWP",
		func() (*Result, error) { return sys.SSWP(dg, src, MergedAligned) },
		Request{Graph: dg, Algo: "sswp", Src: src, Variant: MergedAligned})
	check("Run",
		func() (*Result, error) { return sys.Run(dg, BFS, src, MergedAligned) },
		Request{Graph: dg, Algo: "bfs", Src: src, Variant: MergedAligned})
	check("RunAlgo",
		func() (*Result, error) { return sys.RunAlgo(dg, "bfs-pushpull", src, MergedAligned) },
		Request{Graph: dg, Algo: "bfs-pushpull", Src: src, Variant: MergedAligned})
}

// TestDoValidation: Do rejects malformed requests with messages that
// tell the caller what to fix.
func TestDoValidation(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	if _, err := sys.Do(context.Background(), Request{Algo: "bfs"}); err == nil {
		t.Error("Do without a graph succeeded")
	}
	g, err := BuildDataset("GK", smallScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Unload(dg)
	_, err = sys.Do(context.Background(), Request{Graph: dg})
	if err == nil || !strings.Contains(err.Error(), "bfs") {
		t.Errorf("Do without algo: err = %v, want a message listing algorithms", err)
	}
	_, err = sys.Do(context.Background(), Request{Graph: dg, Algo: "dfs"})
	var ue *UnknownAlgorithmError
	if !errors.As(err, &ue) {
		t.Errorf("unknown algo: err = %v, want *UnknownAlgorithmError", err)
	}
}
