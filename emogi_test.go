package emogi

import (
	"testing"
	"time"
)

// smallScale keeps the public-API tests fast: ~1:50000 of the paper.
const smallScale = 0.02

func TestSystemConfigs(t *testing.T) {
	v100 := V100PCIe3(1.0)
	if v100.GPU.MemBytes != 16<<30/1000 {
		t.Errorf("V100 memory = %d, want 1:1000 of 16GB", v100.GPU.MemBytes)
	}
	xp := TitanXpPCIe3(1.0)
	if xp.GPU.MemBytes >= v100.GPU.MemBytes {
		t.Errorf("Titan Xp should have less memory than V100")
	}
	a3, a4 := A100PCIe3(1.0), A100PCIe4(1.0)
	if a3.GPU.MemBytes != a4.GPU.MemBytes {
		t.Errorf("A100 memory should not depend on link generation")
	}
	if a3.GPU.Link.Gen == a4.GPU.Link.Gen {
		t.Errorf("A100 configs should differ in link generation")
	}
	// Scaling scales memory too.
	half := V100PCIe3(0.5)
	if half.GPU.MemBytes != v100.GPU.MemBytes/2 {
		t.Errorf("dataset scale should scale GPU memory")
	}
}

func TestBuildDataset(t *testing.T) {
	for _, sym := range DatasetSymbols() {
		g, err := BuildDataset(sym, smallScale, 1)
		if err != nil {
			t.Fatalf("BuildDataset(%s): %v", sym, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", sym)
		}
	}
	if _, err := BuildDataset("nope", 1, 1); err == nil {
		t.Errorf("unknown dataset accepted")
	}
	if len(DatasetSymbols()) != 6 {
		t.Errorf("want 6 dataset symbols")
	}
}

func TestEndToEndBFS(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, err := BuildDataset("GK", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Unload(dg)
	src := PickSources(g, 1, 3)[0]
	res, err := sys.BFS(dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res); err != nil {
		t.Errorf("BFS result invalid: %v", err)
	}
	if res.Elapsed <= 0 || res.Stats.PCIeRequests == 0 {
		t.Errorf("degenerate run: %+v", res)
	}
}

func TestEndToEndAllAppsAllTransports(t *testing.T) {
	g, err := BuildDataset("GU", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 5)[0]
	for _, transport := range []Transport{ZeroCopy, UVM} {
		sys := NewSystem(V100PCIe3(smallScale))
		dg, err := sys.Load(g, transport, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range []App{BFS, SSSP, CC} {
			res, err := sys.Run(dg, app, src, Merged)
			if err != nil {
				t.Fatalf("%s/%s: %v", transport, app, err)
			}
			if err := Validate(g, res); err != nil {
				t.Errorf("%s/%s: %v", transport, app, err)
			}
		}
	}
}

func TestRunManyAveraging(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, err := BuildDataset("GU", smallScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(g, 3, 11)
	sum, err := sys.RunMany(dg, BFS, sources, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(sum.Results))
	}
	var total time.Duration
	for _, r := range sum.Results {
		total += r.Elapsed
	}
	if sum.MeanElapsed != total/3 {
		t.Errorf("MeanElapsed = %v, want %v", sum.MeanElapsed, total/3)
	}
	if sum.MeanBandwidth() <= 0 {
		t.Errorf("MeanBandwidth should be positive")
	}
	if sum.Monitor.Requests == 0 {
		t.Errorf("monitor delta empty")
	}
	amp := sum.IOAmplification(g.EdgeListBytes(8))
	if amp <= 0 || amp > 3 {
		t.Errorf("implausible amplification %v", amp)
	}
}

func TestRunManyCCRunsOnce(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.RunMany(dg, CC, []int{0, 1, 2}, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 1 {
		t.Errorf("CC should run once, got %d runs", len(sum.Results))
	}
}

func TestRunManyNoSources(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMany(dg, BFS, nil, Merged); err == nil {
		t.Errorf("empty source list accepted")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	a := &RunSummary{MeanElapsed: 2 * time.Second}
	b := &RunSummary{MeanElapsed: 1 * time.Second}
	if got := Speedup(a, b); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(a, &RunSummary{}); got != 0 {
		t.Errorf("zero-time Speedup = %v, want 0", got)
	}
	if got := MeanSpeedups([]float64{2, 4}); got != 3 {
		t.Errorf("MeanSpeedups = %v, want 3", got)
	}
}

// TestHeadlineSpeedupDirection: the paper's core claim in miniature —
// EMOGI Merged+Aligned beats the optimized UVM baseline for BFS on a
// skewed out-of-memory graph.
func TestHeadlineSpeedupDirection(t *testing.T) {
	g, err := BuildDataset("GK", 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	sources := PickSources(g, 2, 13)

	sysU := NewSystem(V100PCIe3(0.3))
	dgU, err := sysU.Load(g, UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	uvm, err := sysU.RunMany(dgU, BFS, sources, Merged)
	if err != nil {
		t.Fatal(err)
	}

	sysE := NewSystem(V100PCIe3(0.3))
	dgE, err := sysE.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	em, err := sysE.RunMany(dgE, BFS, sources, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}

	if sp := Speedup(uvm, em); sp < 1.2 {
		t.Errorf("EMOGI speedup over UVM = %.2fx, want > 1.2x", sp)
	}
}

func TestValidateNilResult(t *testing.T) {
	g, _ := BuildDataset("GU", smallScale, 7)
	if err := Validate(g, nil); err == nil {
		t.Errorf("nil result accepted")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := NewSystem(V100PCIe3(smallScale))
	if sys.Config().Name == "" {
		t.Errorf("Config should carry the platform name")
	}
	if sys.Device() == nil {
		t.Errorf("Device should be exposed")
	}
	g, _ := BuildDataset("GU", smallScale, 7)
	dg, err := sys.Load(g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := PickSources(g, 1, 5)[0]
	if _, err := sys.SSSP(dg, src, Merged); err != nil {
		t.Fatalf("SSSP: %v", err)
	}
	if _, err := sys.CC(dg, Merged); err != nil {
		t.Fatalf("CC: %v", err)
	}
	if sys.Device().Clock() == 0 {
		t.Errorf("clock should have advanced")
	}
	sys.ResetStats()
	if sys.Device().Clock() != 0 {
		t.Errorf("ResetStats should zero the clock")
	}
}

func TestRunSummaryZeroCases(t *testing.T) {
	var rs RunSummary
	if rs.MeanBandwidth() != 0 {
		t.Errorf("zero summary bandwidth should be 0")
	}
	if rs.IOAmplification(0) != 0 || rs.IOAmplification(100) != 0 {
		t.Errorf("degenerate amplification should be 0")
	}
}
