// Package emogi is the public API of the EMOGI reproduction: efficient
// out-of-memory graph traversal on GPUs via cache-line-sized zero-copy
// host-memory access (Min et al., VLDB 2020), running on a calibrated
// software simulation of the GPU memory system.
//
// A System is one simulated machine (GPU + host memory + PCIe link).
// Graphs are loaded onto it with a transport (ZeroCopy for EMOGI, UVM for
// the baseline) and traversed by algorithm name in one of the paper's
// three kernel variants. All functional results are exact (validated
// against CPU references); all performance numbers are simulated time from
// the calibrated model described in DESIGN.md.
//
//	sys := emogi.NewSystem(emogi.V100PCIe3(1.0))
//	g, _ := emogi.BuildDataset("GK", 1.0, 42)
//	dg, _ := sys.Load(g)
//	res, _ := sys.Do(ctx, emogi.Request{Graph: dg, Algo: "bfs", Src: src, Variant: emogi.MergedAligned})
//	fmt.Println(res.Elapsed, res.Stats.PCIeRequests)
//
// Do is the context-first v2 entry point: it accepts per-request
// cancellation and deadlines (a canceled run stops at the next round
// boundary with an error matching ErrCanceled) and is safe for concurrent
// use — runs serialize on the device. The v1 per-app methods (BFS, SSSP,
// CC, SSWP, Run, RunAlgo) and the positional LoadV1 survive as deprecated
// wrappers over Do and Load.
package emogi

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
	"repro/internal/telemetry"
)

// Re-exported types so user code only imports this package.
type (
	// Graph is a CSR graph in host memory.
	Graph = graph.CSR
	// DeviceGraph is a graph loaded onto a System.
	DeviceGraph = core.DeviceGraph
	// Result is one traversal run's output and counters.
	Result = core.Result
	// Variant selects the kernel access pattern.
	Variant = core.Variant
	// Transport selects where the edge list lives.
	Transport = core.Transport
	// TransportPolicy decides, per edge-list partition per round, which
	// substrate (zero-copy, UVM, explicit staging) serves each partition.
	// Build one with StaticPolicy or AdaptivePolicy, or resolve a name with
	// PolicyByName.
	TransportPolicy = core.TransportPolicy
	// App identifies a traversal application.
	App = core.App
	// Telemetry receives per-launch, per-round, and per-copy events from
	// the simulated device (see internal/telemetry for the Prometheus and
	// Chrome-trace implementation).
	Telemetry = gpu.Telemetry
	// RunLabels identifies one traversal run on a telemetry stream.
	RunLabels = gpu.RunLabels
	// Algorithm is one entry of the traversal-algorithm registry.
	Algorithm = core.Algorithm
	// CanceledError reports a traversal stopped cooperatively at a round
	// boundary through its context.
	CanceledError = core.CanceledError
	// UnknownAlgorithmError reports a Request.Algo not in the registry;
	// its message lists every valid name.
	UnknownAlgorithmError = core.UnknownAlgorithmError
	// TransientError reports a traversal aborted by an injected transient
	// read fault; the device graph remains loaded and re-traversable, and
	// a retry sees fresh fault outcomes.
	TransientError = core.TransientError
	// FaultInjector is a seeded, reproducible fault source attached via
	// SystemConfig.Faults (build one with fault.Profile / fault.New).
	FaultInjector = fault.Injector
	// FaultCounts is a snapshot of an injector's per-kind fault tallies.
	FaultCounts = fault.Counts
	// BatchItem is one lane's outcome of a batched run: exactly one of
	// Res and Err is set.
	BatchItem = core.BatchItem
	// BatchOutcome reports one DoBatch dispatch: per-lane results plus
	// the edge-scan sharing the batch achieved.
	BatchOutcome = core.BatchOutcome
)

// ErrCanceled matches any traversal stopped through its context:
// errors.Is(err, emogi.ErrCanceled).
var ErrCanceled = core.ErrCanceled

// ErrTransient matches any run failed by injected transient faults —
// aborted traversals (*TransientError) and injected allocation failures
// alike: errors.Is(err, emogi.ErrTransient). Transient failures are
// retryable; the serving layer's retry/degradation machinery keys off it.
var ErrTransient = fault.ErrTransient

// Kernel variants (§5.1.2).
const (
	Naive         = core.Naive
	Merged        = core.Merged
	MergedAligned = core.MergedAligned
)

// Edge-list transports.
const (
	ZeroCopy = core.ZeroCopy
	UVM      = core.UVM
)

// StaticPolicy returns the transport policy that binds the whole edge list
// to one transport for the whole run — exactly the historical WithTransport
// behavior ("static-zc" for ZeroCopy, "static-uvm" for UVM).
func StaticPolicy(t Transport) TransportPolicy { return core.StaticPolicyFor(t) }

// AdaptivePolicy returns the HyTGraph-style policy: a per-partition cost
// model rebinds 64KB edge-list segments between zero-copy, UVM, and
// explicit staging at every round boundary, with hysteresis. See DESIGN.md
// §15.
func AdaptivePolicy() TransportPolicy { return core.AdaptivePolicy() }

// TransportPolicies returns the selectable policies in registry order
// (static-zc, static-uvm, adaptive) — what GET /v1/transports serves.
func TransportPolicies() []TransportPolicy { return core.TransportPolicies() }

// PolicyByName resolves a transport policy by registry name ("static-zc",
// "static-uvm", "adaptive"; the v1 spellings "zerocopy", "zc", "emogi",
// "uvm" are accepted as aliases).
func PolicyByName(name string) (TransportPolicy, error) { return core.PolicyByName(name) }

// Applications.
const (
	BFS  = core.AppBFS
	SSSP = core.AppSSSP
	CC   = core.AppCC
)

// Scale is the repository's standard dataset reduction: every dataset and
// every memory capacity is 1/1000 of the paper's, preserving all the
// capacity ratios the results depend on.
const Scale = 1.0 / 1000.0

// SystemConfig describes one simulated machine.
type SystemConfig struct {
	Name string
	GPU  gpu.Config

	// Tiers, when non-nil, describes the machine's memory hierarchy as an
	// explicit tier stack (HBM → host DRAM → optional CXL-class external
	// memory); it overrides the classic GPU.MemBytes/HostMemBytes/HBM/
	// HostDRAM/Link fields. Nil (the default) synthesizes the canonical
	// two-tier stack from those fields — bit-for-bit the historical
	// machine. Build stacks with TwoTier / ThreeTierCXL, or apply a named
	// catalog stack with ApplyTierStack.
	Tiers TierStack

	// GPUDrivenPaging selects the GPUVM-style paging model for UVM
	// migrations: page fetches issue from the GPU as tag-limited link
	// transfers with no serialized CPU fault handler. False (the default)
	// keeps the classic CPU fault-handler model. Migration counts and
	// traversal results are identical either way; only the time model
	// changes.
	GPUDrivenPaging bool

	// Workers, when non-zero, overrides GPU.Workers: the number of host
	// goroutines each kernel launch spreads its warps over (0 selects
	// GOMAXPROCS, 1 runs warps serially). Simulated results — values,
	// iteration counts, elapsed time, every counter — are bit-for-bit
	// identical for every worker count; only host wall-clock time changes.
	Workers int

	// ReorderWindow, when non-zero, overrides GPU.ReorderWindow: the
	// IARU-style reorder stage's per-warp window, in 32-byte sectors.
	// Off-device accesses buffer in the window and are re-grouped by
	// 128-byte line before dispatch, merging requests that different
	// virtual-warp slices aimed at the same line. 0 (the default) disables
	// the stage and is bit-identical to the historical engine; results are
	// identical either way, only request shape and simulated time change.
	ReorderWindow int

	// Telemetry, when non-nil, observes every kernel launch, traversal
	// round, and bulk copy on the system's device. Nil (the default) keeps
	// the hook points disabled at zero cost.
	Telemetry Telemetry

	// Faults, when non-nil, injects deterministic faults into the system:
	// per-request transient read failures and latency spikes on the PCIe
	// link, a steady wire derating, and allocation failures in the memory
	// arena (see internal/fault for the profiles and the determinism
	// contract). Nil (the default) keeps every hot path zero-overhead and
	// bit-for-bit identical to the fault-free system.
	Faults FaultInjector
}

// scaleBytes scales a full-size capacity down by Scale times the user's
// additional dataset scale factor.
func scaleBytes(fullBytes int64, datasetScale float64) int64 {
	return int64(float64(fullBytes) * Scale * datasetScale)
}

// V100PCIe3 returns the paper's main evaluation platform (Table 1): a
// Tesla V100 16GB on PCIe 3.0 x16 with quad-channel DDR4 host memory,
// scaled to the given dataset scale (1.0 = the standard 1:1000 reduction).
func V100PCIe3(datasetScale float64) SystemConfig {
	return SystemConfig{
		Name: "V100 + PCIe 3.0",
		GPU: gpu.Config{
			Name:               "Tesla V100 16GB",
			MemBytes:           scaleBytes(16<<30, datasetScale),
			HostMemBytes:       scaleBytes(256<<30, datasetScale),
			L2Bytes:            scaleBytes(6<<20, datasetScale),
			MaxConcurrentLanes: scaleLanes(80*2048, datasetScale),
			HBM:                memsys.HBM2V100(),
			HostDRAM:           memsys.DDR4Quad(),
			Link:               pcie.Gen3x16(),
		},
	}
}

// scaleLanes scales the hardware thread concurrency with the dataset so
// the concurrent-streams-to-cache ratio of the full-size machine is
// preserved (see DESIGN.md).
func scaleLanes(fullLanes int, datasetScale float64) int {
	n := int(float64(fullLanes) * Scale * datasetScale)
	if n < 1 {
		n = 1
	}
	return n
}

// TitanXpPCIe3 returns the HALO comparison platform (Table 3): a Titan Xp
// 12GB on PCIe 3.0.
func TitanXpPCIe3(datasetScale float64) SystemConfig {
	return SystemConfig{
		Name: "Titan Xp + PCIe 3.0",
		GPU: gpu.Config{
			Name:               "Titan Xp 12GB",
			MemBytes:           scaleBytes(12<<30, datasetScale),
			HostMemBytes:       scaleBytes(256<<30, datasetScale),
			L2Bytes:            scaleBytes(3<<20, datasetScale),
			MaxConcurrentLanes: scaleLanes(60*2048, datasetScale),
			HBM:                memsys.GDDR5XTitanXp(),
			HostDRAM:           memsys.DDR4Quad(),
			Link:               pcie.Gen3x16(),
		},
	}
}

// A100PCIe3 returns the DGX A100 platform (§5.5) with the root port forced
// to PCIe 3.0 mode.
func A100PCIe3(datasetScale float64) SystemConfig {
	cfg := A100PCIe4(datasetScale)
	cfg.Name = "A100 + PCIe 3.0"
	cfg.GPU.Link = pcie.Gen3x16()
	return cfg
}

// A100PCIe4 returns the DGX A100 platform (§5.5): an A100 40GB on PCIe 4.0
// x16 with 1TB of host memory.
func A100PCIe4(datasetScale float64) SystemConfig {
	return SystemConfig{
		Name: "A100 + PCIe 4.0",
		GPU: gpu.Config{
			Name:               "A100 40GB",
			MemBytes:           scaleBytes(40<<30, datasetScale),
			HostMemBytes:       scaleBytes(1<<40, datasetScale),
			L2Bytes:            scaleBytes(40<<20, datasetScale),
			MaxConcurrentLanes: scaleLanes(108*2048, datasetScale),
			HBM:                memsys.HBM2eA100(),
			HostDRAM:           memsys.DDR4Quad(),
			Link:               pcie.Gen4x16(),
		},
	}
}

// System is one simulated machine ready to load and traverse graphs.
type System struct {
	cfg SystemConfig
	dev *gpu.Device
}

// NewSystem builds a System from the given configuration.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Workers != 0 {
		cfg.GPU.Workers = cfg.Workers
	}
	if cfg.ReorderWindow != 0 {
		cfg.GPU.ReorderWindow = cfg.ReorderWindow
	}
	if cfg.Tiers != nil {
		cfg.GPU.Tiers = cfg.Tiers
	}
	cfg.GPU.GPUDrivenPaging = cfg.GPUDrivenPaging
	if cfg.Faults != nil {
		cfg.GPU.Link.Faults = cfg.Faults
	}
	s := &System{cfg: cfg, dev: gpu.NewDevice(cfg.GPU)}
	if cfg.Telemetry != nil {
		s.dev.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Faults != nil {
		inj := cfg.Faults
		s.dev.Arena().SetAllocFaultHook(func(_ memsys.Space, size int64) error {
			return inj.AllocFault(size)
		})
	}
	return s
}

// Faults returns the system's fault injector, or nil when injection is
// disabled.
func (s *System) Faults() FaultInjector { return s.cfg.Faults }

// Config returns the system's configuration.
func (s *System) Config() SystemConfig { return s.cfg }

// Device exposes the underlying simulated GPU (traffic monitor, clock,
// kernel log) for instrumentation-heavy callers like the benchmark
// harness.
func (s *System) Device() *gpu.Device { return s.dev }

// LoadOption configures Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	policy    TransportPolicy
	elemBytes int
	placement Placement
	tiers     TierStack
}

// WithTransportPolicy selects the transport policy governing the graph's
// edge list: StaticPolicy(ZeroCopy) (EMOGI, the default), StaticPolicy(UVM)
// (the migration baseline), or AdaptivePolicy() (per-partition per-round
// HyTGraph-style rebinding). Static policies take exactly the historical
// code path; routed policies allocate the edge list pinned and rebind
// segments at run time.
func WithTransportPolicy(p TransportPolicy) LoadOption {
	return func(c *loadConfig) { c.policy = p }
}

// WithTransport selects where the edge list lives: ZeroCopy (EMOGI, the
// default) or UVM (the migration baseline).
//
// Deprecated: use WithTransportPolicy(StaticPolicy(t)); this wrapper is
// exactly that.
func WithTransport(t Transport) LoadOption {
	return WithTransportPolicy(StaticPolicy(t))
}

// WithElemBytes sets the edge element width: 8 (the paper's main
// experiments, the default) or 4 (the Subway comparison, Table 3).
func WithElemBytes(n int) LoadOption {
	return func(c *loadConfig) { c.elemBytes = n }
}

// WithTierStack replaces the system's memory-tier stack before placing the
// graph — the load-time route to a CXL-class external tier on a system
// built without one. The stack's HBM and DRAM tiers must match the system's
// configured capacities; Load fails otherwise. Systems that set
// SystemConfig.Tiers up front don't need this option.
func WithTierStack(ts TierStack) LoadOption {
	return func(c *loadConfig) { c.tiers = ts }
}

// WithPlacement selects which host-side tier(s) the edge and weight lists
// are homed on: PlaceAuto (host DRAM with CXL spill under pressure, the
// default), PlaceDRAM (DRAM only, fail when full), or PlaceCXL (external
// tier only). A no-op on two-tier systems except that PlaceCXL fails.
func WithPlacement(p Placement) LoadOption {
	return func(c *loadConfig) { c.placement = p }
}

// Load places a graph onto the system: the vertex list in GPU memory, the
// edge list (and weights) in host memory. The defaults — the static
// zero-copy policy, 8-byte edge elements — are the paper's main
// configuration; override them with WithTransportPolicy and WithElemBytes.
func (s *System) Load(g *Graph, opts ...LoadOption) (*DeviceGraph, error) {
	c := loadConfig{policy: StaticPolicy(ZeroCopy), elemBytes: 8}
	for _, o := range opts {
		o(&c)
	}
	if c.tiers != nil {
		if err := s.dev.SetTiers(c.tiers); err != nil {
			return nil, fmt.Errorf("emogi: WithTierStack: %w", err)
		}
	}
	return core.UploadPolicyPlaced(s.dev, g, c.policy, c.elemBytes, c.placement)
}

// LoadV1 is the v1 positional load.
//
// Deprecated: use Load with WithTransport / WithElemBytes.
func (s *System) LoadV1(g *Graph, transport Transport, elemBytes int) (*DeviceGraph, error) {
	return s.Load(g, WithTransport(transport), WithElemBytes(elemBytes))
}

// Unload releases a loaded graph's buffers. It is idempotent: unloading
// a graph twice, or unloading nil, is a no-op.
func (s *System) Unload(dg *DeviceGraph) { dg.Free(s.dev) }

// Request describes one traversal for Do.
type Request struct {
	// Graph is the loaded graph to traverse (required).
	Graph *DeviceGraph
	// Algo is the algorithm registry name: the built-in applications
	// ("bfs", "sssp", "cc", "sswp") and the specialty traversals
	// ("bfs-worker8", "bfs-balanced", "bfs-pushpull", "bfs-compressed",
	// "bfs-edgecentric"); see Algorithms for the full list.
	Algo string
	// Src is the source vertex (ignored by source-free algorithms).
	Src int
	// Variant selects the kernel access pattern (ignored by
	// fixed-variant specialty kernels).
	Variant Variant
	// Cold evicts UVM residency and staged edge segments before the run,
	// so it starts with cold caches like the paper's measurement
	// discipline (§5.2). Zero-copy runs are unaffected; for UVM and routed
	// policy runs it makes results independent of what ran before.
	Cold bool
	// Placement, when not PlaceAuto, re-homes the graph's edge and weight
	// segments onto the named host-side tier before the run (sticky: the
	// graph keeps the new homes afterward). The data movement is charged
	// over the CXL link. PlaceAuto (the zero value) keeps the graph's
	// current homes — the two-tier behavior.
	Placement Placement
	// Policy, when non-nil, overrides the graph's loaded transport policy
	// for this request only. An override whose static transport matches
	// the graph's is a no-op; any other override runs routed (every
	// partition bound per round by the override). This is how the serving
	// layer's degradation ladder reroutes retries onto static-uvm without
	// reloading the graph.
	Policy TransportPolicy
	// Ctx, when non-nil, is this request's own context inside DoBatch:
	// when it is done, the request's lane detaches at the next round
	// boundary (its BatchItem reports a *CanceledError) while the batch
	// keeps running for the other requests. Do ignores it — pass the
	// context to Do directly.
	Ctx context.Context
}

// Do executes one traversal. It is the context-first entry point that
// unifies the per-app methods and RunAlgo:
//
//   - Cancellation: when ctx is canceled or its deadline passes, the run
//     stops at the next round boundary and Do returns a *CanceledError
//     matching both ErrCanceled and the context cause. The device is left
//     exactly as a completed run leaves it.
//   - Concurrency: Do is safe for concurrent use; runs serialize on the
//     simulated device (one traversal owns the device clock and memory
//     system at a time, like a real CUDA context).
//
// An unknown Request.Algo returns an *UnknownAlgorithmError listing the
// valid names.
func (s *System) Do(ctx context.Context, req Request) (*Result, error) {
	if req.Graph == nil {
		return nil, fmt.Errorf("emogi: Do requires Request.Graph (load one with Load)")
	}
	if req.Algo == "" {
		return nil, fmt.Errorf("emogi: Do requires Request.Algo (valid algorithms: %s)",
			strings.Join(core.AlgorithmNames(), ", "))
	}
	if req.Policy != nil {
		ctx = core.WithPolicyOverride(ctx, req.Policy)
	}
	var res *Result
	var err error
	s.dev.Exclusive(func() {
		defer s.bindTrace(ctx)()
		if req.Placement != PlaceAuto {
			if err = core.ApplyPlacement(s.dev, req.Graph, req.Placement); err != nil {
				return
			}
		}
		if req.Cold {
			s.dev.ResetUVMResidency()
		}
		res, err = core.RunAlgoContext(ctx, s.dev, req.Graph, req.Algo, req.Src, req.Variant)
	})
	return res, err
}

// bindTrace attributes the run's device events (traversal rounds) to the
// request trace carried by ctx, when there is one and the system's
// telemetry sink can accept it. It must be called under s.dev.Exclusive —
// runs serialize there, so at most one trace is ever bound — and returns
// the unbind func (a no-op when nothing was bound). The nil path costs one
// context lookup and zero allocations, preserving the disabled-telemetry
// fast path.
func (s *System) bindTrace(ctx context.Context) func() {
	rt := telemetry.TraceFrom(ctx)
	if rt == nil {
		return func() {}
	}
	b, ok := s.dev.Telemetry().(telemetry.TraceBinder)
	if !ok {
		return func() {}
	}
	b.BindTrace(rt)
	return b.UnbindTrace
}

// DoBatch executes up to K traversals of the same (Graph, Algo, Variant)
// as one batched engine run: a per-vertex lane bitmask carries every
// query through a single fixed-point loop, so each edge scan serves all
// lanes whose frontier covers it (see DESIGN.md §13). Requirements and
// semantics:
//
//   - All requests must name the same loaded Graph, the same Algo, and
//     the same Variant — batching shares one sweep, so the keys must
//     agree. Sources may differ (and may repeat).
//   - Each request's lane produces the bit-for-bit Values and Iterations
//     an individual Do of that request returns; Elapsed and Stats on
//     each Result describe the shared batched run (Result.BatchSize
//     records the width).
//   - ctx governs the whole batch: cancellation aborts every lane with
//     an error matching ErrCanceled. A request's own Request.Ctx
//     detaches just that lane at the next round boundary; the batch
//     continues for the rest.
//   - Algorithms without a batched mode (source-free and fixed-variant
//     specialty kernels) run each lane sequentially with identical
//     per-lane semantics; BatchOutcome.BatchedRun reports false.
//
// Like Do, DoBatch is safe for concurrent use and serializes on the
// device.
func (s *System) DoBatch(ctx context.Context, reqs []Request) (*BatchOutcome, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("emogi: DoBatch requires at least one request")
	}
	first := reqs[0]
	if first.Graph == nil {
		return nil, fmt.Errorf("emogi: DoBatch requires Request.Graph (load one with Load)")
	}
	if first.Algo == "" {
		return nil, fmt.Errorf("emogi: DoBatch requires Request.Algo (valid algorithms: %s)",
			strings.Join(core.AlgorithmNames(), ", "))
	}
	specs := make([]core.BatchSpec, len(reqs))
	for i, r := range reqs {
		if r.Graph != first.Graph {
			return nil, fmt.Errorf("emogi: DoBatch request %d names a different graph; a batch shares one (graph, algo, variant)", i)
		}
		if r.Algo != first.Algo {
			return nil, fmt.Errorf("emogi: DoBatch request %d names algo %q, want %q; a batch shares one (graph, algo, variant)", i, r.Algo, first.Algo)
		}
		if r.Variant != first.Variant {
			return nil, fmt.Errorf("emogi: DoBatch request %d names variant %v, want %v; a batch shares one (graph, algo, variant)", i, r.Variant, first.Variant)
		}
		if r.Policy != first.Policy {
			return nil, fmt.Errorf("emogi: DoBatch request %d overrides the transport policy differently from request 0; a batch shares one policy", i)
		}
		specs[i] = core.BatchSpec{Src: r.Src, Ctx: r.Ctx}
	}
	if first.Policy != nil {
		ctx = core.WithPolicyOverride(ctx, first.Policy)
	}
	var out *BatchOutcome
	var err error
	s.dev.Exclusive(func() {
		defer s.bindTrace(ctx)()
		if first.Cold {
			s.dev.ResetUVMResidency()
		}
		out, err = core.RunBatchAlgo(ctx, s.dev, first.Graph, first.Algo, specs, first.Variant)
	})
	return out, err
}

// BFS runs breadth-first search from src.
//
// Deprecated: use Do with Request{Algo: "bfs"}.
func (s *System) BFS(dg *DeviceGraph, src int, v Variant) (*Result, error) {
	return s.Do(context.Background(), Request{Graph: dg, Algo: "bfs", Src: src, Variant: v})
}

// SSSP runs single-source shortest path from src.
//
// Deprecated: use Do with Request{Algo: "sssp"}.
func (s *System) SSSP(dg *DeviceGraph, src int, v Variant) (*Result, error) {
	return s.Do(context.Background(), Request{Graph: dg, Algo: "sssp", Src: src, Variant: v})
}

// CC runs connected components (undirected graphs only).
//
// Deprecated: use Do with Request{Algo: "cc"}.
func (s *System) CC(dg *DeviceGraph, v Variant) (*Result, error) {
	return s.Do(context.Background(), Request{Graph: dg, Algo: "cc", Variant: v})
}

// Run dispatches by application; src is ignored for CC.
//
// Deprecated: use Do with the algorithm's registry name.
func (s *System) Run(dg *DeviceGraph, app App, src int, v Variant) (*Result, error) {
	switch app {
	case BFS, SSSP, CC:
		return s.Do(context.Background(),
			Request{Graph: dg, Algo: strings.ToLower(app.String()), Src: src, Variant: v})
	default:
		return nil, fmt.Errorf("emogi: unknown application %d", int(app))
	}
}

// SSWP runs single-source widest path from src (weighted graphs only).
//
// Deprecated: use Do with Request{Algo: "sswp"}.
func (s *System) SSWP(dg *DeviceGraph, src int, v Variant) (*Result, error) {
	return s.Do(context.Background(), Request{Graph: dg, Algo: "sswp", Src: src, Variant: v})
}

// RunAlgo dispatches by algorithm registry name. src is ignored by
// source-free algorithms; variant is ignored by fixed-variant specialty
// kernels.
//
// Deprecated: use Do, which adds cancellation and concurrency safety.
func (s *System) RunAlgo(dg *DeviceGraph, name string, src int, v Variant) (*Result, error) {
	return s.Do(context.Background(), Request{Graph: dg, Algo: name, Src: src, Variant: v})
}

// Algorithms lists the registered traversal algorithms sorted by name.
func Algorithms() []*Algorithm {
	return core.Algorithms()
}

// ResetStats clears the device clock, monitor, and counters between
// measurement runs while keeping loaded graphs in place.
func (s *System) ResetStats() { s.dev.ResetStats() }

// ColdCaches evicts all UVM pages and all staged edge-list segments so the
// next run starts cold, whatever transport policy it uses.
func (s *System) ColdCaches() { s.dev.ResetUVMResidency() }

// BuildDataset synthesizes one of the paper's six Table 2 dataset analogs
// ("GK", "GU", "FS", "ML", "SK", "UK5") at the given scale (1.0 = the
// standard 1:1000 reduction; use the same scale as the SystemConfig).
func BuildDataset(sym string, datasetScale float64, seed int64) (*Graph, error) {
	spec, err := graph.BySym(sym)
	if err != nil {
		return nil, err
	}
	return spec.Build(datasetScale, seed), nil
}

// DatasetSymbols returns the six dataset symbols in Table 2 order.
func DatasetSymbols() []string {
	specs := graph.AllSpecs()
	syms := make([]string, len(specs))
	for i, s := range specs {
		syms[i] = s.Sym
	}
	return syms
}

// PickSources deterministically selects k traversal sources with outgoing
// edges, as in §5.2.
func PickSources(g *Graph, k int, seed int64) []int {
	return graph.PickSources(g, k, seed)
}

// Validate checks a result against the CPU reference implementation of its
// application.
func Validate(g *Graph, res *Result) error {
	if res == nil {
		return fmt.Errorf("emogi: nil result")
	}
	return res.Validate(g)
}
