package pcie

import (
	"math"
	"testing"
	"time"
)

// gbps is a readability helper: bytes/sec -> GB/s.
func gbps(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }

// TestCalibrationGen3 pins the model to the paper's §3.3 measurements.
// These are the anchors everything downstream depends on; if a constant
// changes, these tests say exactly which paper number broke.
func TestCalibrationGen3(t *testing.T) {
	link := Gen3x16()
	cases := []struct {
		name    string
		size    int
		wantGB  float64
		within  float64
		comment string
	}{
		{"memcpy-peak-128B", 128, 12.3, 0.3, "paper: 12.23-12.36 GB/s"},
		{"strided-32B", 32, 4.74, 0.15, "paper Fig 4(a): 4.74 GB/s"},
		{"96B", 96, 11.0, 1.0, "between 64B and 128B"},
	}
	for _, tc := range cases {
		got := gbps(link.EffectiveBandwidth(tc.size))
		if math.Abs(got-tc.wantGB) > tc.within {
			t.Errorf("%s: bandwidth = %.2f GB/s, want %.2f±%.2f (%s)",
				tc.name, got, tc.wantGB, tc.within, tc.comment)
		}
	}
	// Misaligned pattern: alternating 32B + 96B requests carrying 128B of
	// payload per pair, pipelined. Paper Fig 4(c): 9.61 GB/s.
	pair := StreamSeconds(
		link.WireSeconds(32)+link.WireSeconds(96),
		2*link.TagSeconds(),
	)
	got := gbps(128 / pair)
	if math.Abs(got-9.6) > 0.4 {
		t.Errorf("misaligned pair bandwidth = %.2f GB/s, want 9.6±0.4", got)
	}
}

func TestCalibrationGen4(t *testing.T) {
	link := Gen4x16()
	got := gbps(link.MemcpyPeak())
	if math.Abs(got-24.3) > 0.8 {
		t.Errorf("Gen4 memcpy peak = %.2f GB/s, want ~24 (paper §5.5)", got)
	}
	// The paper's headline scaling claim: EMOGI's 128B streams scale ~2x
	// moving Gen3 -> Gen4.
	scale := link.MemcpyPeak() / Gen3x16().MemcpyPeak()
	if math.Abs(scale-2.0) > 0.1 {
		t.Errorf("Gen4/Gen3 peak ratio = %.2f, want ~2.0", scale)
	}
}

func TestWireSeconds(t *testing.T) {
	link := Gen3x16()
	if got := link.WireSeconds(0); got != 0 {
		t.Errorf("WireSeconds(0) = %v, want 0", got)
	}
	if got := link.WireSeconds(-4); got != 0 {
		t.Errorf("WireSeconds(-4) = %v, want 0", got)
	}
	// Larger payloads take longer on the wire.
	if link.WireSeconds(128) <= link.WireSeconds(32) {
		t.Errorf("wire time should grow with payload")
	}
}

func TestTagSeconds(t *testing.T) {
	link := Gen3x16()
	want := link.RTT.Seconds() / float64(link.MaxTags)
	if got := link.TagSeconds(); got != want {
		t.Errorf("TagSeconds = %v, want %v", got, want)
	}
	link.MaxTags = 0
	if got := link.TagSeconds(); got != 0 {
		t.Errorf("TagSeconds with no tags = %v, want 0", got)
	}
}

func TestRequestSecondsIsMax(t *testing.T) {
	link := Gen3x16()
	// 32B requests are tag-limited on Gen3: tag time dominates.
	if got, tag := link.RequestSeconds(32), link.TagSeconds(); got != tag {
		t.Errorf("32B requests should be tag-limited: %v vs %v", got, tag)
	}
	// 128B requests are wire-limited.
	if got, wire := link.RequestSeconds(128), link.WireSeconds(128); got != wire {
		t.Errorf("128B requests should be wire-limited: %v vs %v", got, wire)
	}
}

// TestBandwidthMonotoneInSize verifies that larger requests never reduce
// effective bandwidth — the monotonicity underlying the merge optimization.
func TestBandwidthMonotoneInSize(t *testing.T) {
	for _, link := range []LinkConfig{Gen3x16(), Gen4x16()} {
		prev := 0.0
		for _, size := range []int{32, 64, 96, 128} {
			bw := link.EffectiveBandwidth(size)
			if bw < prev {
				t.Errorf("%s: bandwidth decreased at %dB: %.2f < %.2f",
					link.Name, size, gbps(bw), gbps(prev))
			}
			prev = bw
		}
	}
}

// TestMergeBenefit encodes the core §3.3 observation: one 128B request is
// far cheaper than four 32B requests.
func TestMergeBenefit(t *testing.T) {
	link := Gen3x16()
	four32 := 4 * link.RequestSeconds(32)
	one128 := link.RequestSeconds(128)
	if ratio := four32 / one128; ratio < 2.0 {
		t.Errorf("merged access should be >=2x cheaper, got %.2fx", ratio)
	}
}

// TestMisalignmentPenalty encodes §3.3's misalignment cost: a 32B+96B split
// is slower than a single aligned 128B request.
func TestMisalignmentPenalty(t *testing.T) {
	link := Gen3x16()
	split := link.RequestSeconds(32) + link.RequestSeconds(96)
	aligned := link.RequestSeconds(128)
	if split <= aligned {
		t.Errorf("misaligned split should cost more: split=%v aligned=%v", split, aligned)
	}
}

func TestBulkSeconds(t *testing.T) {
	link := Gen3x16()
	if got := link.BulkSeconds(0); got != 0 {
		t.Errorf("BulkSeconds(0) = %v", got)
	}
	n := int64(1 << 20)
	want := float64(n) / link.MemcpyPeak()
	if got := link.BulkSeconds(n); math.Abs(got-want) > 1e-15 {
		t.Errorf("BulkSeconds = %v, want %v", got, want)
	}
}

// TestTagLimitArithmetic reproduces the paper's own worked example: with
// only 32B requests and a 1.0-1.6us RTT, 256 tags cap bandwidth at
// 4.77-7.63 GB/s regardless of wire speed.
func TestTagLimitArithmetic(t *testing.T) {
	link := Gen3x16()
	link.MaxTags = 256
	link.RTT = 1000 * time.Nanosecond
	if got := gbps(link.EffectiveBandwidth(32)); math.Abs(got-8.19) > 0.1 {
		// 32B * 256 / 1.0us = 8.19 GB/s (paper rounds to 7.63 GiB/s).
		t.Errorf("1.0us/256-tag limit = %.2f GB/s, want 8.19", got)
	}
	link.RTT = 1600 * time.Nanosecond
	if got := gbps(link.EffectiveBandwidth(32)); math.Abs(got-5.12) > 0.1 {
		// 32B * 256 / 1.6us = 5.12 GB/s (paper: 4.77 GiB/s).
		t.Errorf("1.6us/256-tag limit = %.2f GB/s, want 5.12", got)
	}
}

func TestLinkWidthScaling(t *testing.T) {
	x16 := Link(Gen3, 16)
	x8 := Link(Gen3, 8)
	x4 := Link(Gen3, 4)
	if x8.RawBytesPerSec*2 != x16.RawBytesPerSec {
		t.Errorf("x8 should be half of x16 wire rate")
	}
	if x4.RawBytesPerSec*4 != x16.RawBytesPerSec {
		t.Errorf("x4 should be a quarter of x16 wire rate")
	}
	// Tags and RTT are width-independent.
	if x8.MaxTags != x16.MaxTags || x8.RTT != x16.RTT {
		t.Errorf("tag budget and RTT must not depend on width")
	}
	// Narrow links become wire-bound even for 32B requests.
	if x4.EffectiveBandwidth(128) >= x16.EffectiveBandwidth(128)/2 {
		t.Errorf("x4 128B bandwidth should be far below x16's")
	}
	if got := Link(Gen3, 0); got.Name != Gen3x16().Name {
		t.Errorf("zero lanes should default to x16")
	}
	if got := Link(Gen4, 8); got.Gen != Gen4 {
		t.Errorf("Gen4 width variant lost its generation")
	}
	if got := Link(Gen(9), 16); got.Gen != Gen3 {
		t.Errorf("unknown generation should default to Gen3")
	}
}
