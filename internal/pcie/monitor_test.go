package pcie

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestMonitorRecord(t *testing.T) {
	var m Monitor
	m.Record(32, 24)
	m.Record(128, 24)
	m.Record(128, 24)
	if got := m.Requests(); got != 3 {
		t.Errorf("Requests = %d, want 3", got)
	}
	if got := m.PayloadBytes(); got != 288 {
		t.Errorf("PayloadBytes = %d, want 288", got)
	}
	if got := m.WireBytes(); got != 288+3*24 {
		t.Errorf("WireBytes = %d, want %d", got, 288+3*24)
	}
	if got := m.SizeFraction(128); got != 2.0/3.0 {
		t.Errorf("SizeFraction(128) = %v, want 2/3", got)
	}
}

func TestMonitorRecordBulk(t *testing.T) {
	var m Monitor
	m.RecordBulk(4096, 24)
	if got := m.Requests(); got != 32 {
		t.Errorf("4KB bulk should be 32 x 128B requests, got %d", got)
	}
	if got := m.PayloadBytes(); got != 4096 {
		t.Errorf("PayloadBytes = %d, want 4096", got)
	}
	m.Reset()
	m.RecordBulk(200, 24)
	// 200 = 128 + 72
	if m.Requests() != 2 || m.PayloadBytes() != 200 {
		t.Errorf("bulk 200B: reqs=%d payload=%d", m.Requests(), m.PayloadBytes())
	}
	if m.SizeHistogram().Count(72) != 1 {
		t.Errorf("remainder request not recorded")
	}
	m.Reset()
	m.RecordBulk(0, 24)
	m.RecordBulk(-5, 24)
	if m.Requests() != 0 {
		t.Errorf("non-positive bulk should be no-op")
	}
}

func TestMonitorBandwidthSampling(t *testing.T) {
	var m Monitor
	m.Record(128, 0)
	m.Record(128, 0)
	m.Sample(1 * time.Microsecond) // 256 B over 1us = 256 MB/s
	m.Record(128, 0)
	m.Sample(2 * time.Microsecond) // 128 B over 1us = 128 MB/s
	pts := m.Bandwidth().Points()
	if len(pts) != 2 {
		t.Fatalf("samples = %d, want 2", len(pts))
	}
	if pts[0].V != 256e6 {
		t.Errorf("first sample = %v, want 256e6", pts[0].V)
	}
	if pts[1].V != 128e6 {
		t.Errorf("second sample = %v, want 128e6", pts[1].V)
	}
	if got := m.AverageBandwidth(); got != 192e6 {
		t.Errorf("AverageBandwidth = %v, want 192e6", got)
	}
}

func TestMonitorSampleZeroElapsed(t *testing.T) {
	var m Monitor
	m.Record(32, 0)
	m.Sample(0) // zero-width interval must not panic or record
	if m.Bandwidth().Len() != 0 {
		t.Errorf("zero-width interval should not produce a sample")
	}
}

func TestMonitorReset(t *testing.T) {
	var m Monitor
	m.Record(64, 24)
	m.Sample(time.Microsecond)
	m.Reset()
	if m.Requests() != 0 || m.WireBytes() != 0 || m.Bandwidth().Len() != 0 {
		t.Errorf("Reset did not clear state")
	}
}

func TestMonitorMerge(t *testing.T) {
	var a, b Monitor
	a.Record(32, 24)
	b.Record(128, 24)
	b.Record(128, 24)
	a.Merge(&b)
	if a.Requests() != 3 {
		t.Errorf("merged Requests = %d, want 3", a.Requests())
	}
	if a.PayloadBytes() != 288 {
		t.Errorf("merged PayloadBytes = %d, want 288", a.PayloadBytes())
	}
	a.Merge(nil) // must not panic
}

func TestSnapshot(t *testing.T) {
	var m Monitor
	m.Record(32, 24)
	m.Record(128, 24)
	s := m.Snapshot()
	if s.Requests != 2 || s.PayloadBytes != 160 {
		t.Errorf("snapshot counters wrong: %+v", s)
	}
	if s.BySize[32] != 1 || s.BySize[128] != 1 {
		t.Errorf("snapshot BySize wrong: %+v", s.BySize)
	}
	str := s.String()
	for _, want := range []string{"reqs=2", "32B:1", "128B:1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

// Property: conservation — the histogram total always equals Requests and
// payload bytes always equal the histogram weighted sum, regardless of the
// mix of Record and RecordBulk calls.
func TestMonitorConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var m Monitor
		var wantPayload uint64
		for i := 0; i < 200; i++ {
			if rng.Intn(4) == 0 {
				n := int64(rng.Intn(5000))
				m.RecordBulk(n, 24)
				if n > 0 {
					wantPayload += uint64(n)
				}
			} else {
				size := 32 * (1 + rng.Intn(4))
				m.Record(size, 24)
				wantPayload += uint64(size)
			}
		}
		if m.PayloadBytes() != wantPayload {
			t.Fatalf("payload bytes %d, want %d", m.PayloadBytes(), wantPayload)
		}
		hist := m.SizeHistogram()
		if hist.Total() != m.Requests() {
			t.Fatalf("histogram total %d != requests %d", hist.Total(), m.Requests())
		}
		if uint64(hist.Sum()) != wantPayload {
			t.Fatalf("histogram sum %d != payload %d", hist.Sum(), wantPayload)
		}
		if m.WireBytes() < m.PayloadBytes() {
			t.Fatalf("wire bytes below payload bytes")
		}
	}
}

func TestMonitorTrace(t *testing.T) {
	var m Monitor
	m.EnableTrace(5)
	m.Record(32, 24)
	m.Record(128, 24)
	m.RecordBulk(300, 24) // 128 + 128 + 44
	m.Record(96, 24)      // over the limit: dropped
	tr := m.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace length = %d, want 5 (bounded)", len(tr))
	}
	want := []TraceEntry{{32, false}, {128, false}, {128, true}, {128, true}, {44, true}}
	for i, w := range want {
		if tr[i] != w {
			t.Errorf("trace[%d] = %+v, want %+v", i, tr[i], w)
		}
	}
	// Reset keeps tracing enabled but clears entries.
	m.Reset()
	if len(m.Trace()) != 0 {
		t.Errorf("Reset should clear the trace")
	}
	m.Record(64, 24)
	if len(m.Trace()) != 1 {
		t.Errorf("tracing should continue after Reset")
	}
	// Disabling drops the buffer.
	m.EnableTrace(0)
	m.Record(32, 24)
	if m.Trace() != nil {
		t.Errorf("disabled trace should be nil")
	}
}

// TestMonitorTraceTruncation pins the EnableTrace limit contract: entries
// beyond the limit are truncated from the buffer but still counted — both
// in the monitor's counters and in TraceDropped — and kept + dropped always
// equals the entries offered.
func TestMonitorTraceTruncation(t *testing.T) {
	var m Monitor
	m.EnableTrace(3)
	m.RecordN(32, 24, 5) // 3 kept, 2 dropped
	if got := len(m.Trace()); got != 3 {
		t.Fatalf("trace length = %d, want 3", got)
	}
	if got := m.TraceDropped(); got != 2 {
		t.Errorf("TraceDropped = %d, want 2", got)
	}
	if got := m.Requests(); got != 5 {
		t.Errorf("counters must see all requests: Requests = %d, want 5", got)
	}
	m.RecordBulk(300, 24) // 128 + 128 + 44: all dropped
	if got := m.TraceDropped(); got != 5 {
		t.Errorf("TraceDropped after bulk = %d, want 5", got)
	}
	// Re-enabling resets both the buffer and the dropped count.
	m.EnableTrace(3)
	if m.TraceDropped() != 0 || len(m.Trace()) != 0 {
		t.Errorf("EnableTrace should reset trace state")
	}
	// Reset clears the dropped count too.
	m.RecordN(32, 24, 10)
	m.Reset()
	if m.TraceDropped() != 0 {
		t.Errorf("Reset should clear TraceDropped, got %d", m.TraceDropped())
	}
}

// TestMonitorTraceDroppedDisabled pins that a monitor without tracing never
// reports drops (nothing was offered to a trace buffer).
func TestMonitorTraceDroppedDisabled(t *testing.T) {
	var m Monitor
	m.RecordN(32, 24, 100)
	if got := m.TraceDropped(); got != 0 {
		t.Errorf("TraceDropped with tracing off = %d, want 0", got)
	}
}

// TestMonitorMergeTraceDropped pins the shard-merge invariant: merging
// monitors preserves kept + dropped = offered, whether the overflow
// happened in the shard or at the merge.
func TestMonitorMergeTraceDropped(t *testing.T) {
	var dst Monitor
	dst.EnableTrace(4)
	var a, b Monitor
	a.EnableTrace(4)
	b.EnableTrace(4)
	a.RecordN(32, 24, 3) // 3 kept in a
	b.RecordN(64, 24, 6) // 4 kept, 2 dropped in b
	dst.Merge(&a)        // 3 kept
	dst.Merge(&b)        // 1 kept, 3 truncated at merge + 2 from b
	if got := len(dst.Trace()); got != 4 {
		t.Fatalf("merged trace length = %d, want 4", got)
	}
	if got := dst.TraceDropped(); got != 5 {
		t.Errorf("merged TraceDropped = %d, want 5", got)
	}
	if kept, dropped := uint64(len(dst.Trace())), dst.TraceDropped(); kept+dropped != 9 {
		t.Errorf("kept %d + dropped %d != offered 9", kept, dropped)
	}
	// A non-tracing destination ignores trace state entirely.
	var off Monitor
	off.Merge(&b)
	if off.TraceDropped() != 0 || off.Trace() != nil {
		t.Errorf("non-tracing merge target must not accumulate trace state")
	}
}

func TestMonitorTraceOffByDefault(t *testing.T) {
	var m Monitor
	for i := 0; i < 100; i++ {
		m.Record(32, 24)
	}
	if m.Trace() != nil {
		t.Errorf("tracing must be opt-in")
	}
}

// TestRecordNDelegation pins the deprecated-style wrapper: RecordN is
// exactly RecordClassN with ClassZeroCopy.
func TestRecordNDelegation(t *testing.T) {
	var a, b Monitor
	a.RecordN(128, 24, 3)
	b.RecordClassN(128, 24, 3, ClassZeroCopy)
	if a.WireBytes() != b.WireBytes() {
		t.Errorf("wire bytes differ: %d vs %d", a.WireBytes(), b.WireBytes())
	}
	if a.ClassRequests(ClassZeroCopy) != b.ClassRequests(ClassZeroCopy) || a.ClassRequests(ClassZeroCopy) != 3 {
		t.Errorf("zero-copy class requests differ: %d vs %d",
			a.ClassRequests(ClassZeroCopy), b.ClassRequests(ClassZeroCopy))
	}
}

// TestClassCXLRegistered checks the CXL transfer class is part of the
// monitor's class taxonomy.
func TestClassCXLRegistered(t *testing.T) {
	if ClassCXL.String() != "cxl" {
		t.Errorf("ClassCXL label = %q", ClassCXL)
	}
	found := false
	for _, c := range TransferClasses() {
		if c == ClassCXL {
			found = true
		}
	}
	if !found {
		t.Error("TransferClasses() missing ClassCXL")
	}
	var m Monitor
	m.RecordClassN(64, 24, 2, ClassCXL)
	if m.ClassRequests(ClassCXL) != 2 {
		t.Errorf("CXL class requests = %d", m.ClassRequests(ClassCXL))
	}
}
