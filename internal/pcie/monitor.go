package pcie

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// TransferClass labels why bytes crossed the link, so the monitor can
// attribute traffic to the transport substrate that generated it. The
// transport-policy layer uses the split to show where an adaptive run's
// traffic went (per-request zero-copy reads vs. UVM page migrations vs.
// explicit segment staging vs. plain memcpys).
type TransferClass uint8

const (
	// ClassZeroCopy is individual coalesced zero-copy reads/writes.
	ClassZeroCopy TransferClass = iota
	// ClassUVM is page-migration bulk traffic from the UVM manager.
	ClassUVM
	// ClassStaged is explicit segment staging by the batched-copy substrate.
	ClassStaged
	// ClassBulk is ordinary explicit copies (result downloads, uploads).
	ClassBulk
	// ClassCXL is traffic crossing the external CXL-class tier's link:
	// coalesced reads against CXL-homed segments and page/segment
	// migrations in or out of the tier.
	ClassCXL

	numTransferClasses
)

// String returns the class label used in snapshots and metrics.
func (c TransferClass) String() string {
	switch c {
	case ClassZeroCopy:
		return "zerocopy"
	case ClassUVM:
		return "uvm"
	case ClassStaged:
		return "staged"
	case ClassBulk:
		return "bulk"
	case ClassCXL:
		return "cxl"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// TransferClasses returns all classes in a fixed order, for pre-registering
// metric label values.
func TransferClasses() []TransferClass {
	return []TransferClass{ClassZeroCopy, ClassUVM, ClassStaged, ClassBulk, ClassCXL}
}

// Monitor observes the request stream crossing the link, playing the role
// of the paper's FPGA-based PCIe traffic monitor (§3.2): it records request
// counts by size, payload and wire bytes, and per-interval bandwidth
// samples, without perturbing the stream.
type Monitor struct {
	sizeHist  stats.Histogram
	wireBytes uint64
	series    stats.TimeSeries

	// per-transfer-class request and payload-byte attribution
	classReqs  [numTransferClasses]uint64
	classBytes [numTransferClasses]uint64

	// interval state for bandwidth sampling
	intervalBytes uint64
	intervalStart time.Duration

	// bounded raw request trace (see EnableTrace)
	trace        []TraceEntry
	traceLimit   int
	traceDropped uint64

	// generation counts Reset calls, letting delta-tracking observers (the
	// telemetry collector) distinguish "counter went backwards because of a
	// reset" from ordinary growth without guessing from counter values.
	generation uint64
}

// Record notes one request of the given payload size with the given wire
// overhead bytes.
func (m *Monitor) Record(payloadBytes, overheadBytes int) {
	m.RecordClassN(payloadBytes, overheadBytes, 1, ClassZeroCopy)
}

// RecordN notes n identical requests of the given payload size, attributed
// to the zero-copy transfer class.
//
// Deprecated: use RecordClassN with an explicit TransferClass; tiered
// traffic (ClassCXL) cannot be expressed through this wrapper.
func (m *Monitor) RecordN(payloadBytes, overheadBytes int, n uint64) {
	m.RecordClassN(payloadBytes, overheadBytes, n, ClassZeroCopy)
}

// RecordClassN is RecordN with an explicit transfer class: ClassCXL for
// coalesced reads served by the external tier's link.
func (m *Monitor) RecordClassN(payloadBytes, overheadBytes int, n uint64, class TransferClass) {
	if n == 0 {
		return
	}
	m.sizeHist.AddN(int64(payloadBytes), n)
	m.wireBytes += n * uint64(payloadBytes+overheadBytes)
	m.intervalBytes += n * uint64(payloadBytes)
	m.classReqs[class] += n
	m.classBytes[class] += n * uint64(payloadBytes)
	m.traceAddN(payloadBytes, false, n)
}

// RecordBulk notes a bulk (DMA) transfer of n payload bytes moved as
// maximum-size requests, e.g. a cudaMemcpy, attributed to ClassBulk.
func (m *Monitor) RecordBulk(n int64, overheadBytes int) {
	m.RecordBulkClass(n, overheadBytes, ClassBulk)
}

// RecordBulkClass is RecordBulk with an explicit transfer class: ClassUVM
// for page migrations, ClassStaged for segment staging copies.
func (m *Monitor) RecordBulkClass(n int64, overheadBytes int, class TransferClass) {
	if n <= 0 {
		return
	}
	full := n / 128
	if full > 0 {
		m.sizeHist.AddN(128, uint64(full))
		m.wireBytes += uint64(full) * uint64(128+overheadBytes)
		m.intervalBytes += uint64(full) * 128
		m.classReqs[class] += uint64(full)
		m.classBytes[class] += uint64(full) * 128
		m.traceAddN(128, true, uint64(full))
	}
	if rem := n % 128; rem != 0 {
		m.sizeHist.Add(rem)
		m.wireBytes += uint64(rem) + uint64(overheadBytes)
		m.intervalBytes += uint64(rem)
		m.classReqs[class]++
		m.classBytes[class] += uint64(rem)
		m.traceAdd(int(rem), true)
	}
}

// ClassRequests returns the number of requests attributed to class c.
func (m *Monitor) ClassRequests(c TransferClass) uint64 { return m.classReqs[c] }

// ClassBytes returns the payload bytes attributed to class c.
func (m *Monitor) ClassBytes(c TransferClass) uint64 { return m.classBytes[c] }

// Sample closes the current bandwidth-sampling interval at simulated time
// now, appending (now, bytes/elapsed) to the time series. Intervals are
// typically kernel launches.
func (m *Monitor) Sample(now time.Duration) {
	elapsed := now - m.intervalStart
	if elapsed > 0 {
		m.series.Append(now, float64(m.intervalBytes)/elapsed.Seconds())
	}
	m.intervalStart = now
	m.intervalBytes = 0
}

// Requests returns the total number of requests observed.
func (m *Monitor) Requests() uint64 { return m.sizeHist.Total() }

// PayloadBytes returns the total payload bytes observed.
func (m *Monitor) PayloadBytes() uint64 { return uint64(m.sizeHist.Sum()) }

// WireBytes returns the total wire bytes (payload + per-request overhead).
func (m *Monitor) WireBytes() uint64 { return m.wireBytes }

// SizeHistogram returns a copy of the request-size histogram.
func (m *Monitor) SizeHistogram() *stats.Histogram { return m.sizeHist.Clone() }

// SizeFraction returns the fraction of requests with the given payload size.
func (m *Monitor) SizeFraction(size int) float64 {
	return m.sizeHist.Fraction(int64(size))
}

// Bandwidth returns the bandwidth time series sampled via Sample.
func (m *Monitor) Bandwidth() *stats.TimeSeries { return &m.series }

// AverageBandwidth returns the time-weighted mean of the sampled bandwidth.
func (m *Monitor) AverageBandwidth() float64 { return m.series.TimeWeightedMean() }

// Reset clears all observations — counters, samples, recorded trace
// entries, and the dropped-entry count — keeping the trace configuration.
func (m *Monitor) Reset() {
	m.sizeHist.Reset()
	m.wireBytes = 0
	m.series.Reset()
	m.intervalBytes = 0
	m.intervalStart = 0
	m.classReqs = [numTransferClasses]uint64{}
	m.classBytes = [numTransferClasses]uint64{}
	m.traceDropped = 0
	m.generation++
	if m.traceLimit > 0 {
		m.trace = m.trace[:0]
	}
}

// Generation returns the number of times this monitor has been Reset.
func (m *Monitor) Generation() uint64 { return m.generation }

// Merge folds the counting state of another monitor into m, including any
// recorded trace entries (appended in other's arrival order, truncated at
// m's own trace limit). Entries that do not fit — and entries other itself
// already dropped — are added to m's dropped count when m is tracing, so
// the invariant "entries kept + entries dropped = entries offered" holds
// across the parallel launch engine's shard merge exactly as it does on the
// serial path. Bandwidth time series are not merged (they are per-device
// observations).
func (m *Monitor) Merge(other *Monitor) {
	if other == nil {
		return
	}
	m.sizeHist.Merge(&other.sizeHist)
	m.wireBytes += other.wireBytes
	m.intervalBytes += other.intervalBytes
	for c := TransferClass(0); c < numTransferClasses; c++ {
		m.classReqs[c] += other.classReqs[c]
		m.classBytes[c] += other.classBytes[c]
	}
	if m.traceLimit > 0 {
		m.traceDropped += other.traceDropped
		for _, e := range other.trace {
			if len(m.trace) >= m.traceLimit {
				m.traceDropped++
				continue
			}
			m.trace = append(m.trace, e)
		}
	}
}

// Snapshot is an immutable summary of a monitor's counters, suitable for
// attaching to experiment results.
type Snapshot struct {
	Requests     uint64
	PayloadBytes uint64
	WireBytes    uint64
	BySize       map[int64]uint64
	ByClass      map[string]uint64 // payload bytes per transfer class (non-zero only)
	AvgBandwidth float64
}

// Snapshot captures the monitor's current counters.
func (m *Monitor) Snapshot() Snapshot {
	by := make(map[int64]uint64)
	for _, k := range m.sizeHist.Keys() {
		by[k] = m.sizeHist.Count(k)
	}
	byClass := make(map[string]uint64)
	for c := TransferClass(0); c < numTransferClasses; c++ {
		if m.classBytes[c] > 0 {
			byClass[c.String()] = m.classBytes[c]
		}
	}
	return Snapshot{
		Requests:     m.Requests(),
		PayloadBytes: m.PayloadBytes(),
		WireBytes:    m.WireBytes(),
		BySize:       by,
		ByClass:      byClass,
		AvgBandwidth: m.AverageBandwidth(),
	}
}

// String renders the snapshot compactly for logs and test output.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reqs=%d payload=%d wire=%d", s.Requests, s.PayloadBytes, s.WireBytes)
	keys := make([]int64, 0, len(s.BySize))
	for k := range s.BySize {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintf(&b, " %dB:%d", k, s.BySize[k])
	}
	return b.String()
}

// TraceEntry is one recorded request: payload size in bytes and whether it
// was part of a bulk (DMA) transfer rather than an individual zero-copy
// read.
type TraceEntry struct {
	Size int32
	Bulk bool
}

// EnableTrace starts recording up to limit individual request entries —
// the raw stream view the paper's FPGA exposes, bounded so long runs don't
// accumulate unbounded memory. Once the buffer holds limit entries, further
// requests are silently truncated from the trace (their counters are still
// recorded); the number truncated is available from TraceDropped, and the
// telemetry collector exports it as emogi_pcie_trace_dropped_total so a
// clipped trace is never mistaken for the full stream. Passing 0 disables
// tracing. Enabling (or re-enabling) resets both the buffer and the
// dropped count.
func (m *Monitor) EnableTrace(limit int) {
	m.traceLimit = limit
	m.traceDropped = 0
	if limit > 0 {
		m.trace = make([]TraceEntry, 0, min(limit, 4096))
	} else {
		m.trace = nil
	}
}

// Trace returns the recorded entries in arrival order. The returned slice
// is shared with the monitor and must not be mutated.
func (m *Monitor) Trace() []TraceEntry { return m.trace }

// TraceLimit returns the configured trace bound (0 when tracing is off).
func (m *Monitor) TraceLimit() int { return m.traceLimit }

// TraceDropped returns the number of requests truncated from the trace
// because the buffer was already at its limit (always 0 when tracing is
// off).
func (m *Monitor) TraceDropped() uint64 { return m.traceDropped }

// traceAdd records one entry if tracing is on, counting it as dropped when
// the buffer is full.
func (m *Monitor) traceAdd(size int, bulk bool) {
	m.traceAddN(size, bulk, 1)
}

// traceAddN records n identical entries, keeping as many as fit under the
// limit and counting the rest as dropped.
func (m *Monitor) traceAddN(size int, bulk bool, n uint64) {
	if m.traceLimit <= 0 || n == 0 {
		return
	}
	keep := n
	if space := uint64(m.traceLimit - len(m.trace)); keep > space {
		keep = space
	}
	for i := uint64(0); i < keep; i++ {
		m.trace = append(m.trace, TraceEntry{Size: int32(size), Bulk: bulk})
	}
	m.traceDropped += n - keep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
