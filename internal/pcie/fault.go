package pcie

import "time"

// This file is the link model's fault-injection attachment point. Real
// interconnects are not the always-healthy pipe the analytic model
// otherwise assumes: links retrain to lower generations under signal
//-integrity pressure, completions time out and are retried, and external
// -memory fabrics exhibit microsecond-scale latency spikes (see the CXL
// external-memory characterization, arXiv:2312.03113). A FaultHook lets a
// deterministic injector (internal/fault) impose those behaviours on the
// simulated link without the link model knowing anything about profiles
// or seeds. A nil hook — the default — keeps every formula bit-for-bit
// identical to the healthy link.

// RequestOutcome is a FaultHook's verdict on one individual read request.
type RequestOutcome uint8

const (
	// ReqOK lets the request complete normally.
	ReqOK RequestOutcome = iota
	// ReqFail marks the request as a transient completion failure: the
	// wire traffic still happened, but the data is unusable and the run
	// that issued it must be retried (the engine surfaces a
	// *TransientError at the next round boundary).
	ReqFail
	// ReqSpike lets the request complete but charges the link a fixed
	// latency-spike stall (the hook's SpikePenalty).
	ReqSpike
)

// FaultHook injects faults into the link model. Implementations must be
// safe for concurrent use, and RequestFault must be a pure function of
// its arguments (plus the hook's own seed): the (epoch, stream, seq)
// coordinate identifies a request independently of how the launch engine
// scheduled it across host workers, which is what keeps parallel launches
// bit-for-bit deterministic under injection.
type FaultHook interface {
	// RequestFault decides the fate of one individual (non-bulk) read
	// request. epoch identifies the traversal run on the device, stream
	// the issuing warp, and seq the request's index within that warp.
	RequestFault(epoch uint64, stream int, seq uint64, payloadBytes int) RequestOutcome

	// WireScale returns the steady multiplier (>= 1) on per-request wire
	// occupancy, modeling a link retrained to a lower generation. 1 means
	// a healthy link.
	WireScale() float64

	// SpikePenalty returns the simulated stall charged per ReqSpike.
	SpikePenalty() time.Duration
}

// wireScale resolves the effective wire derating of the configured hook.
func (c LinkConfig) wireScale() float64 {
	if c.Faults == nil {
		return 1
	}
	if s := c.Faults.WireScale(); s > 1 {
		return s
	}
	return 1
}
