// Package pcie models the CPU-GPU interconnect: an analytic PCIe link whose
// throughput is limited both by wire bytes (payload plus transaction-layer
// packet overhead) and by the number of outstanding non-posted read requests
// (the 8-bit tag field of PCIe 3.0, §3.3 of the paper), plus a traffic
// monitor equivalent to the paper's FPGA-based observation platform.
//
// Calibration. The model constants are fixed once against the paper's own
// §3.3 microbenchmark numbers and then never changed per-experiment:
//
//	128B requests on Gen3 x16  -> 12.3 GB/s  (paper: 12.23-12.36, = memcpy peak)
//	32B requests on Gen3 x16   ->  4.75 GB/s (paper: 4.74, tag-limited)
//	32B+96B pairs on Gen3 x16  ->  9.5 GB/s  (paper: 9.61, tag-limited)
//	128B requests on Gen4 x16  -> 24.6 GB/s  (paper: ~24, wire-limited)
package pcie

import (
	"fmt"
	"time"
)

// Gen identifies a PCIe generation for a x16 link.
type Gen int

const (
	// Gen3 is PCIe 3.0 x16: 8 GT/s per lane, 128b/130b encoding.
	Gen3 Gen = 3
	// Gen4 is PCIe 4.0 x16: 16 GT/s per lane.
	Gen4 Gen = 4
	// GenCXL marks a CXL-class link (CXL.mem over a PCIe 5.0 PHY). It is
	// not selectable through Link; use CXLLink.
	GenCXL Gen = 5
)

// LinkConfig describes one x16 link.
type LinkConfig struct {
	Name string
	Gen  Gen

	// RawBytesPerSec is the post-encoding wire rate in each direction.
	RawBytesPerSec float64

	// TLPOverheadBytes is the average per-request wire overhead: the 3-DW
	// TLP header with 64-bit addressing (18 bytes per the paper) plus
	// framing and DLLP share, amortized.
	TLPOverheadBytes int

	// Efficiency captures flow control, ACK traffic, and completion-side
	// overhead as a single multiplicative derating of the wire rate.
	Efficiency float64

	// MaxTags is the effective number of outstanding non-posted read
	// requests the GPU sustains. PCIe 3.0's tag field is 8 bits (<=256);
	// the effective value is lower because the GPU does not keep every tag
	// in flight continuously. PCIe 4.0 supports 10-bit tags.
	MaxTags int

	// RTT is the request round-trip time between GPU and host memory, the
	// paper's measured 1.0-1.6us; we use the midpoint.
	RTT time.Duration

	// Faults, when non-nil, injects deterministic faults into the link:
	// per-request transient failures and latency spikes, and a steady wire
	// derating (link retrained to a lower generation). Nil means a healthy
	// link and leaves every formula bit-for-bit unchanged.
	Faults FaultHook
}

// Gen3x16 returns the calibrated PCIe 3.0 x16 link of the paper's V100
// evaluation platform (Table 1).
func Gen3x16() LinkConfig {
	return LinkConfig{
		Name:             "PCIe 3.0 x16",
		Gen:              Gen3,
		RawBytesPerSec:   15.754e9, // 8 GT/s * 16 lanes * 128/130
		TLPOverheadBytes: 24,
		Efficiency:       0.93,
		MaxTags:          215,
		RTT:              1450 * time.Nanosecond,
	}
}

// Link returns a calibrated link of the given generation and width. Lane
// count scales the wire rate; the tag budget and RTT are properties of the
// protocol and the GPU, not the width.
func Link(gen Gen, lanes int) LinkConfig {
	var base LinkConfig
	switch gen {
	case Gen4:
		base = Gen4x16()
	default:
		base = Gen3x16()
	}
	if lanes <= 0 || lanes == 16 {
		return base
	}
	base.Name = fmt.Sprintf("PCIe %d.0 x%d", int(gen), lanes)
	base.RawBytesPerSec *= float64(lanes) / 16
	return base
}

// Gen4x16 returns the calibrated PCIe 4.0 x16 link of the DGX A100
// platform used in §5.5.
func Gen4x16() LinkConfig {
	return LinkConfig{
		Name:             "PCIe 4.0 x16",
		Gen:              Gen4,
		RawBytesPerSec:   31.508e9,
		TLPOverheadBytes: 24,
		Efficiency:       0.93,
		MaxTags:          512, // 10-bit tags; effective value scaled like Gen3's
		RTT:              1450 * time.Nanosecond,
	}
}

// CXLLink returns the external-memory tier's interconnect: a CXL-class
// memory expander behind a switch (the pooled configuration the CXL
// graph-processing literature targets). The wire is an x8 PCIe 5.0 PHY
// derated for the CXL.mem flit protocol; bulk transfers reach roughly the
// Gen3 x16 ceiling, so the tier's distinguishing cost is latency: a
// microsecond-class round trip that makes small random reads tag-bound and
// hub-vertex walks latency-bound, rewarding exactly the latency-tolerance
// EMOGI's coalesced streaming already has.
func CXLLink() LinkConfig {
	return LinkConfig{
		Name:             "CXL 2.0 x8 (switched)",
		Gen:              GenCXL,
		RawBytesPerSec:   16.0e9, // 32 GT/s * 8 lanes * flit efficiency share
		TLPOverheadBytes: 24,     // 64B flit slot overhead, amortized
		Efficiency:       0.90,
		MaxTags:          256, // CXL.mem outstanding-read credit budget
		RTT:              2500 * time.Nanosecond,
	}
}

// WireSeconds returns the wire occupancy of one request of the given
// payload size, including TLP overhead and efficiency derating.
func (c LinkConfig) WireSeconds(payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	wire := float64(payloadBytes + c.TLPOverheadBytes)
	s := wire / (c.RawBytesPerSec * c.Efficiency)
	if c.Faults != nil {
		// Degraded link: wire occupancy stretches by the retrained-rate
		// ratio. Guarded so the fault-free float math stays bit-identical.
		s *= c.wireScale()
	}
	return s
}

// TagSeconds returns the tag-occupancy cost of one request: with MaxTags
// requests kept in flight over a round trip, the link completes one request
// every RTT/MaxTags on average (Little's law).
func (c LinkConfig) TagSeconds() float64 {
	if c.MaxTags <= 0 {
		return 0
	}
	return c.RTT.Seconds() / float64(c.MaxTags)
}

// RequestSeconds returns the steady-state time the link needs per request
// in a *uniform* stream of requests of the given size: the larger of its
// wire occupancy and its tag occupancy.
//
// For mixed streams this per-request max overestimates: wire idle time of
// small tag-bound requests overlaps the tag slack of large wire-bound ones.
// Mixed streams must use StreamSeconds (accumulate wire and tag occupancy
// separately and take the max of the sums), which is what the GPU device's
// kernel accounting does.
func (c LinkConfig) RequestSeconds(payloadBytes int) float64 {
	w := c.WireSeconds(payloadBytes)
	t := c.TagSeconds()
	if w > t {
		return w
	}
	return t
}

// StreamSeconds returns the link time for a pipelined stream with the given
// total wire occupancy and total tag occupancy: the stream finishes when
// both the wire and the tag window have drained, i.e. max of the sums.
func StreamSeconds(wireSeconds, tagSeconds float64) float64 {
	if wireSeconds > tagSeconds {
		return wireSeconds
	}
	return tagSeconds
}

// EffectiveBandwidth returns the steady-state payload bandwidth for a
// uniform stream of requests of the given size.
func (c LinkConfig) EffectiveBandwidth(payloadBytes int) float64 {
	s := c.RequestSeconds(payloadBytes)
	if s <= 0 {
		return 0
	}
	return float64(payloadBytes) / s
}

// MemcpyPeak returns the bandwidth of a bulk cudaMemcpy-style transfer,
// which moves data as a stream of maximum-size (128B) requests. On the
// calibrated Gen3 link this is ~12.3 GB/s, matching the paper's measured
// ceiling.
func (c LinkConfig) MemcpyPeak() float64 {
	return c.EffectiveBandwidth(128)
}

// BulkSeconds returns the time to move n bytes as a bulk transfer at
// MemcpyPeak bandwidth (DMA engines use full-size requests and are not
// tag-limited in practice).
func (c LinkConfig) BulkSeconds(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / c.MemcpyPeak()
}
