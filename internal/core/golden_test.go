package core

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// This file pins the traversal engine's observable behavior to the numbers
// the pre-engine (per-app round loop) implementations produced: iteration
// counts, the full simulated counter set, and simulated elapsed time, for
// every application on all six Table 2 dataset analogs plus every specialty
// traversal path. The refactor onto the unified frontier engine must be
// bit-for-bit invisible in these numbers; any drift is a correctness bug,
// not a tolerable regression.
//
// Regenerate (only when intentionally changing the simulation model):
//
//	go test ./internal/core/ -run TestEngineGolden -update-golden

var updateGolden = flag.Bool("update-golden", false,
	"rewrite results/golden-engine.json from the current implementation")

const goldenPath = "../../results/golden-engine.json"

// goldenRecord is one pinned run: identity plus every counter a Result
// carries that the simulation model determines.
type goldenRecord struct {
	Name             string `json:"name"`
	Iterations       int    `json:"iterations"`
	Warps            int    `json:"warps"`
	WarpInstrs       uint64 `json:"warpInstrs"`
	PCIeRequests     uint64 `json:"pcieRequests"`
	PCIePayloadBytes uint64 `json:"pciePayloadBytes"`
	HostDRAMBytes    uint64 `json:"hostDRAMBytes"`
	UVMMigrations    uint64 `json:"uvmMigrations"`
	ElapsedNs        int64  `json:"elapsedNs"`
}

func recordOf(name string, res *Result) goldenRecord {
	return goldenRecord{
		Name:             name,
		Iterations:       res.Iterations,
		Warps:            res.Stats.Warps,
		WarpInstrs:       res.Stats.WarpInstrs,
		PCIeRequests:     res.Stats.PCIeRequests,
		PCIePayloadBytes: res.Stats.PCIePayloadBytes,
		HostDRAMBytes:    res.Stats.HostDRAMBytes,
		UVMMigrations:    res.Stats.UVMMigrations,
		ElapsedNs:        res.Elapsed.Nanoseconds(),
	}
}

// goldenRuns executes the pinned matrix: the three core applications on all
// six datasets (CC where undirected), plus the UVM transport and every
// specialty traversal on GK. Each run gets a fresh device so records are
// independent of suite ordering.
func goldenRuns(t *testing.T) []goldenRecord {
	return goldenRunsWith(t, testDevice, multiDevices)
}

// goldenRunsWith runs the matrix on devices from the given factories, so the
// same pinned records can assert equivalence of differently-configured but
// supposedly identical machines (e.g. explicit two-tier stacks vs. the
// classic config fields).
func goldenRunsWith(t *testing.T, mkdev func() *gpu.Device, mkmulti func(int) []*gpu.Device) []goldenRecord {
	t.Helper()
	var recs []goldenRecord
	for _, sym := range []string{"GK", "GU", "FS", "ML", "SK", "UK5"} {
		spec, err := graph.BySym(sym)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Build(0.02, 42)
		src := graph.PickSources(g, 1, 71)[0]
		run := func(name string, f func() (*Result, error)) {
			res, err := f()
			if err != nil {
				t.Fatalf("%s/%s: %v", sym, name, err)
			}
			if err := res.Validate(g); err != nil {
				t.Fatalf("%s/%s: %v", sym, name, err)
			}
			recs = append(recs, recordOf(sym+"/"+name, res))
		}
		run("bfs", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFS(dev, dg, src, MergedAligned)
		})
		run("sssp", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return SSSP(dev, dg, src, MergedAligned)
		})
		if !g.Directed {
			run("cc", func() (*Result, error) {
				dev := mkdev()
				dg, err := Upload(dev, g, ZeroCopy, 8)
				if err != nil {
					return nil, err
				}
				return CC(dev, dg, MergedAligned)
			})
		}
		if sym != "GK" {
			continue
		}
		// Specialty paths, pinned on GK: every other round-loop entry point
		// in the repository.
		run("bfs-uvm", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, UVM, 8)
			if err != nil {
				return nil, err
			}
			return BFS(dev, dg, src, Merged)
		})
		run("bfs-naive", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFS(dev, dg, src, Naive)
		})
		run("bfs-worker8", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSWithWorker(dev, dg, src, 8, true)
		})
		run("bfs-worker16-unaligned", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSWithWorker(dev, dg, src, 16, false)
		})
		run("bfs-balanced", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSBalanced(dev, dg, src, 64)
		})
		run("bfs-compressed", func() (*Result, error) {
			dev := mkdev()
			cdg, err := UploadCompressed(dev, g)
			if err != nil {
				return nil, err
			}
			return BFSCompressed(dev, cdg, src)
		})
		run("bfs-edgecentric", func() (*Result, error) {
			dev := mkdev()
			ec, err := UploadEdgeCentric(dev, g)
			if err != nil {
				return nil, err
			}
			return BFSEdgeCentric(dev, ec, src)
		})
		run("bfs-pushpull", func() (*Result, error) {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSDirectionOptimized(dev, dg, src, DefaultPushPullConfig())
		})
		run("bfs-hybrid0.3", func() (*Result, error) {
			h, err := NewHybridSystem(mkdev(), g, 8, DefaultHybridConfig(0.3))
			if err != nil {
				return nil, err
			}
			defer h.Free()
			return h.BFS(src)
		})
		run("bfs-multigpu2", func() (*Result, error) {
			ms, err := NewMultiSystem(mkmulti(2), g, 8)
			if err != nil {
				return nil, err
			}
			defer ms.Free()
			return ms.BFS(src)
		})
		run("sssp-multigpu2", func() (*Result, error) {
			ms, err := NewMultiSystem(mkmulti(2), g, 8)
			if err != nil {
				return nil, err
			}
			defer ms.Free()
			return ms.SSSP(src)
		})
		// Batched lanes, pinned on GK: each lane's record carries its own
		// iteration count plus the batch's shared counters, so both the
		// per-lane convergence and the amortized traffic are pinned.
		bsrcs := graph.PickSources(g, 4, 71)
		for _, app := range []string{"bfs", "sssp", "sswp"} {
			dev := mkdev()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				t.Fatalf("GK/%s-batch4: %v", app, err)
			}
			specs := make([]BatchSpec, len(bsrcs))
			for i, src := range bsrcs {
				specs[i] = BatchSpec{Src: src}
			}
			out, err := RunBatchAlgo(context.Background(), dev, dg, app, specs, MergedAligned)
			if err != nil {
				t.Fatalf("GK/%s-batch4: %v", app, err)
			}
			for i, item := range out.Results {
				if item.Err != nil {
					t.Fatalf("GK/%s-batch4 lane %d: %v", app, i, item.Err)
				}
				if err := item.Res.Validate(g); err != nil {
					t.Fatalf("GK/%s-batch4 lane %d: %v", app, i, err)
				}
				recs = append(recs, recordOf(fmt.Sprintf("GK/%s-batch4.q%d", app, i), item.Res))
			}
		}
		run("cc-multigpu2", func() (*Result, error) {
			ms, err := NewMultiSystem(mkmulti(2), g, 8)
			if err != nil {
				return nil, err
			}
			defer ms.Free()
			return ms.CC()
		})
	}
	return recs
}

// TestEngineGolden compares the full run matrix against the pinned
// pre-refactor records in results/golden-engine.json.
func TestEngineGolden(t *testing.T) {
	t.Parallel()
	recs := goldenRuns(t)
	if *updateGolden {
		out, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(goldenPath), append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(recs), goldenPath)
		return
	}
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenRecord, len(want))
	for _, r := range want {
		byName[r.Name] = r
	}
	if len(recs) != len(want) {
		t.Errorf("run matrix has %d records, golden file has %d", len(recs), len(want))
	}
	for _, got := range recs {
		exp, ok := byName[got.Name]
		if !ok {
			t.Errorf("%s: no golden record (regenerate with -update-golden)", got.Name)
			continue
		}
		if got != exp {
			t.Errorf("%s drifted from pre-refactor behavior:\n got:  %s\n want: %s",
				got.Name, mustJSON(got), mustJSON(exp))
		}
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%+v", v)
	}
	return string(b)
}
