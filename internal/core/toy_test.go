package core

import (
	"math"
	"testing"
)

// TestToyFigure3Patterns verifies the request mixes of Figure 3: strided
// is all 32B, merged+aligned is all 128B, misaligned is a 1:1 mix of 32B
// and 96B.
func TestToyFigure3Patterns(t *testing.T) {
	const elems = 1 << 16
	cases := []struct {
		pattern ToyPattern
		check   func(t *testing.T, r *ToyResult)
	}{
		{ToyStrided, func(t *testing.T, r *ToyResult) {
			if f := fracOf(r, 32); f < 0.999 {
				t.Errorf("strided: 32B fraction = %.3f, want ~1", f)
			}
		}},
		{ToyMergedAligned, func(t *testing.T, r *ToyResult) {
			if f := fracOf(r, 128); f < 0.999 {
				t.Errorf("aligned: 128B fraction = %.3f, want ~1", f)
			}
		}},
		{ToyMergedMisaligned, func(t *testing.T, r *ToyResult) {
			f32, f96 := fracOf(r, 32), fracOf(r, 96)
			if math.Abs(f32-0.5) > 0.02 || math.Abs(f96-0.5) > 0.02 {
				t.Errorf("misaligned: 32B=%.3f 96B=%.3f, want ~0.5 each", f32, f96)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.pattern.String(), func(t *testing.T) {
			dev := testDevice()
			r, err := ToyTraverse(dev, elems, tc.pattern, ZeroCopy)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, r)
		})
	}
}

func fracOf(r *ToyResult, size int64) float64 {
	if r.Snapshot.Requests == 0 {
		return 0
	}
	return float64(r.Snapshot.BySize[size]) / float64(r.Snapshot.Requests)
}

// TestToyFigure4Bandwidths pins the toy example to the paper's measured
// Figure 4 numbers: strided 4.74 GB/s PCIe / 9.40 DRAM; merged+aligned
// 12.23 / 12.36; misaligned 9.61 / 14.26; UVM ~9.1-9.3.
func TestToyFigure4Bandwidths(t *testing.T) {
	const elems = 1 << 20
	cases := []struct {
		name      string
		pattern   ToyPattern
		transport Transport
		wantPCIe  float64
		wantDRAM  float64
		tol       float64
	}{
		{"strided", ToyStrided, ZeroCopy, 4.74, 9.40, 0.4},
		{"merged+aligned", ToyMergedAligned, ZeroCopy, 12.3, 12.3, 0.5},
		{"misaligned", ToyMergedMisaligned, ZeroCopy, 9.6, 14.26, 0.7},
		{"uvm", ToyMergedAligned, UVM, 9.15, 9.15, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := testDevice()
			r, err := ToyTraverse(dev, elems, tc.pattern, tc.transport)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.PCIeBandwidth / 1e9; math.Abs(got-tc.wantPCIe) > tc.tol {
				t.Errorf("PCIe bandwidth = %.2f GB/s, want %.2f±%.2f (paper Fig 4)",
					got, tc.wantPCIe, tc.tol)
			}
			if got := r.DRAMBandwidth / 1e9; math.Abs(got-tc.wantDRAM) > tc.tol {
				t.Errorf("DRAM bandwidth = %.2f GB/s, want %.2f±%.2f (paper Fig 4)",
					got, tc.wantDRAM, tc.tol)
			}
		})
	}
}

// TestToyDataCopied: the toy kernel is functionally a copy; verify output
// equals input (sampling).
func TestToyDataCopied(t *testing.T) {
	dev := testDevice()
	_, err := ToyTraverse(dev, 1<<14, ToyMergedAligned, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	// Buffers are freed inside ToyTraverse; re-run with direct inspection
	// via a second traversal capturing the device arena before free is not
	// possible, so instead verify the invariant indirectly: payload bytes
	// equal the array size (every element moved exactly once).
	dev2 := testDevice()
	r, err := ToyTraverse(dev2, 1<<14, ToyMergedAligned, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.PCIePayloadBytes != uint64(r.Elems*4) {
		t.Errorf("payload = %d, want exactly the array (%d)",
			r.Stats.PCIePayloadBytes, r.Elems*4)
	}
}

func TestToyRoundsUpElems(t *testing.T) {
	dev := testDevice()
	r, err := ToyTraverse(dev, 100, ToyStrided, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Elems%(32*toyChunkElems) != 0 {
		t.Errorf("elems = %d not a whole tile", r.Elems)
	}
}

func TestToyUnknownPattern(t *testing.T) {
	dev := testDevice()
	if _, err := ToyTraverse(dev, 1<<12, ToyPattern(42), ZeroCopy); err == nil {
		t.Errorf("unknown pattern accepted")
	}
}

// TestToyMisalignedSlowerThanAligned: the §3.3 ordering in time, not just
// request mix.
func TestToyBandwidthOrdering(t *testing.T) {
	dev := testDevice()
	const elems = 1 << 18
	strided, err := ToyTraverse(dev, elems, ToyStrided, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := ToyTraverse(dev, elems, ToyMergedMisaligned, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	ali, err := ToyTraverse(dev, elems, ToyMergedAligned, ZeroCopy)
	if err != nil {
		t.Fatal(err)
	}
	if !(strided.PCIeBandwidth < mis.PCIeBandwidth && mis.PCIeBandwidth < ali.PCIeBandwidth) {
		t.Errorf("bandwidth ordering violated: strided=%.2f mis=%.2f aligned=%.2f GB/s",
			strided.PCIeBandwidth/1e9, mis.PCIeBandwidth/1e9, ali.PCIeBandwidth/1e9)
	}
}
