package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestDirectionOptimizedCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		if g.Directed {
			continue
		}
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.PickSources(g, 1, 67)[0]
		res, err := BFSDirectionOptimized(dev, dg, src, DefaultPushPullConfig())
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestDirectionOptimizedRejectsDirected(t *testing.T) {
	g := graph.Web("w", 300, 8, 1)
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := BFSDirectionOptimized(dev, dg, 0, DefaultPushPullConfig()); err == nil {
		t.Errorf("directed graph accepted")
	}
}

func TestDirectionOptimizedBadSource(t *testing.T) {
	g := testGraphs()[1]
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := BFSDirectionOptimized(dev, dg, -1, DefaultPushPullConfig()); err == nil {
		t.Errorf("bad source accepted")
	}
}

// TestDirectionOptimizedUsesPull: on a uniform graph whose middle frontier
// is most of the vertex set, at least one level must run bottom-up, and the
// early exit must cut edge-list bytes versus pure push.
func TestDirectionOptimizedUsesPull(t *testing.T) {
	g := graph.Urand("gu", 8000, 24, 5)
	src := graph.PickSources(g, 1, 1)[0]

	devD := testDevice()
	dgD, _ := Upload(devD, g, ZeroCopy, 8)
	do, err := BFSDirectionOptimized(devD, dgD, src, DefaultPushPullConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, src, do.Values); err != nil {
		t.Fatal(err)
	}
	pulls := 0
	for _, ks := range devD.Kernels() {
		if strings.Contains(ks.Name, "bfs/pull") {
			pulls++
		}
	}
	if pulls == 0 {
		t.Fatalf("no pull levels ran on a wide-frontier graph")
	}

	devP := testDevice()
	dgP, _ := Upload(devP, g, ZeroCopy, 8)
	push, err := BFS(devP, dgP, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if do.Stats.PCIePayloadBytes >= push.Stats.PCIePayloadBytes {
		t.Errorf("direction optimization should cut bytes: %d vs %d",
			do.Stats.PCIePayloadBytes, push.Stats.PCIePayloadBytes)
	}
}

// TestDirectionOptimizedAllPushMatchesPlain: with an unreachable pull
// threshold, the run degenerates to plain push BFS with identical traffic.
func TestDirectionOptimizedAllPushMatchesPlain(t *testing.T) {
	g := testGraphs()[1]
	src := graph.PickSources(g, 1, 3)[0]

	devA := testDevice()
	dgA, _ := Upload(devA, g, ZeroCopy, 8)
	a, err := BFSDirectionOptimized(devA, dgA, src, PushPullConfig{PullThreshold: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	devB := testDevice()
	dgB, _ := Upload(devB, g, ZeroCopy, 8)
	b, err := BFS(devB, dgB, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.PCIePayloadBytes != b.Stats.PCIePayloadBytes {
		t.Errorf("all-push direction-optimized differs from plain: %d vs %d",
			a.Stats.PCIePayloadBytes, b.Stats.PCIePayloadBytes)
	}
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			t.Fatalf("values diverge at %d", v)
		}
	}
}
