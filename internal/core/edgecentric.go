package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file implements the edge-centric traversal method the paper's §2.1
// background contrasts with its chosen vertex-centric scatter ("graph
// traversals can be largely divided into a vertex-centric method and an
// edge-centric method [44]"). An edge-centric engine streams the *entire*
// edge array every iteration and relaxes the edges whose source is active;
// it needs a parallel source array (COO layout) since CSR's edge list
// doesn't carry sources.
//
// The trade is exactly why EMOGI is vertex-centric: edge-centric streaming
// is perfectly sequential (ideal 128B requests with no alignment work at
// all) but must touch |E| edges per iteration regardless of frontier size,
// so on high-diameter or narrow-frontier traversals it moves far more
// bytes. The edge-centric ablation quantifies this.

// EdgeCentricGraph is a graph in COO layout: parallel src/dst arrays in
// pinned host memory.
type EdgeCentricGraph struct {
	Graph *graph.CSR
	Src   *memsys.Buffer // 4-byte source IDs
	Dst   *memsys.Buffer // 4-byte destination IDs
}

// UploadEdgeCentric lays g out in COO form for edge-centric streaming.
// Both arrays are 4-byte (edge-centric engines favor compact layouts since
// they re-stream everything each round).
func UploadEdgeCentric(dev *gpu.Device, g *graph.CSR) (*EdgeCentricGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: refusing to upload invalid graph: %w", err)
	}
	arena := dev.Arena()
	e := g.NumEdges()
	src, err := arena.Alloc(g.Name+".coosrc", memsys.SpaceHostPinned, e*4, memsys.WithElem(4))
	if err != nil {
		return nil, fmt.Errorf("core: allocating COO sources: %w", err)
	}
	dst, err := arena.Alloc(g.Name+".coodst", memsys.SpaceHostPinned, e*4, memsys.WithElem(4))
	if err != nil {
		return nil, fmt.Errorf("core: allocating COO destinations: %w", err)
	}
	i := int64(0)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			src.PutU32(i, uint32(v))
			dst.PutU32(i, u)
			i++
		}
	}
	dev.ResetUVMResidency()
	return &EdgeCentricGraph{Graph: g, Src: src, Dst: dst}, nil
}

// Free releases the COO buffers.
func (ec *EdgeCentricGraph) Free(dev *gpu.Device) {
	arena := dev.Arena()
	arena.Free(ec.Src)
	arena.Free(ec.Dst)
	dev.ResetUVMResidency()
}

// BFSEdgeCentric runs breadth-first search by streaming the full COO edge
// array every level: each warp reads 32 consecutive (src, dst) pairs —
// perfectly coalesced 128-byte requests with no alignment logic — and
// relaxes the edges whose source carries the current level.
func BFSEdgeCentric(dev *gpu.Device, ec *EdgeCentricGraph, src int) (*Result, error) {
	return BFSEdgeCentricContext(context.Background(), dev, ec, src)
}

// BFSEdgeCentricContext is BFSEdgeCentric with cooperative cancellation
// at round boundaries (see cancel.go for the contract).
func BFSEdgeCentricContext(ctx context.Context, dev *gpu.Device, ec *EdgeCentricGraph, src int) (*Result, error) {
	g := ec.Graph
	n := g.NumVertices()
	e := g.NumEdges()
	warps := int((e + gpu.WarpSize - 1) / gpu.WarpSize)
	prog := bfsProgram()
	kernel := func(r *engineRound) {
		level, labels, visit := r.level, r.values, r.visit
		r.dev.Launch("bfs/edgecentric", warps, func(w *gpu.Warp) {
			base := int64(w.ID()) * gpu.WarpSize
			var idx [gpu.WarpSize]int64
			mask := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if j := base + int64(l); j < e {
					idx[l] = j
					mask = mask.Set(l)
				}
			}
			if mask == gpu.MaskNone {
				return
			}
			// Stream the source column; lanes whose edge source is at the
			// current level relax the destination column.
			srcs := w.GatherU32(ec.Src, &idx, mask)
			var srcLabIdx [gpu.WarpSize]int64
			for l := 0; l < gpu.WarpSize; l++ {
				if mask.Has(l) {
					srcLabIdx[l] = int64(srcs[l])
				}
			}
			labs := w.GatherU32(labels, &srcLabIdx, mask)
			active := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if mask.Has(l) && labs[l] == level {
					active = active.Set(l)
				}
			}
			if active == gpu.MaskNone {
				return
			}
			dst := w.GatherU32(ec.Dst, &idx, active)
			var srcVals, wgt [gpu.WarpSize]uint32
			for l := 0; l < gpu.WarpSize; l++ {
				srcVals[l] = prog.push(level)
			}
			visit(w, active, &dst, &wgt, &srcVals)
		})
	}
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:      MergedAligned,
		transport:    ZeroCopy,
		graphName:    g.Name,
		labelVariant: "edgecentric",
		valueName:    "ecbfs.labels",
		roundName:    "bfs/edgecentric",
		kernel:       kernel,
	})
}
