package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// bfsProgram declares breadth-first search over the frontier engine: a
// min-lattice carry monoid over an implicit match-by-level frontier, with
// active vertices pushing level+1 to their neighbors. Seed is set even
// though match programs don't use it so the multi-GPU topology (which
// always keeps an explicit frontier) can run the same descriptor.
func bfsProgram() *Program {
	return &Program{
		App:      "BFS",
		Frontier: FrontierMatch,
		Relax:    Monoid{Identity: graph.InfDist, Combine: CombineCarry},
		Init: func(v, src int) uint32 {
			if v == src {
				return 0
			}
			return graph.InfDist
		},
		Seed:     func(v, src int) bool { return v == src },
		Push:     func(sv uint32) uint32 { return sv + 1 },
		Validate: ValidateBFS,
	}
}

// BFS runs level-synchronous breadth-first search from src on the device
// graph, one kernel launch per level (§4.2: "the total number of kernels
// launched... is equal to the distance between the source vertex to the
// furthest reachable vertex"). It returns each vertex's BFS level
// (graph.InfDist for unreachable vertices).
func BFS(dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	return BFSContext(context.Background(), dev, dg, src, variant)
}

// BFSContext is BFS with cooperative cancellation: when ctx is canceled or
// its deadline passes, the run stops at the next round boundary and
// returns a *CanceledError (see cancel.go for the contract).
func BFSContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	prog := bfsProgram()
	name := "bfs/" + variant.String()
	return runProgram(ctx, dev, dg.NumVertices(), prog, src, &engineConfig{
		variant:   variant,
		transport: dg.Transport,
		graphName: dg.Graph.Name,
		valueName: "bfs.labels",
		roundName: name,
		dg:        dg,
		kernel:    stdMatchKernel(dg, variant, name, prog),
	})
}

// ValidateBFS checks a BFS result against the CPU reference.
func ValidateBFS(g *graph.CSR, src int, values []uint32) error {
	want := graph.RefBFS(g, src)
	if len(values) != len(want) {
		return fmt.Errorf("core: BFS result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: BFS level[%d] = %d, want %d (src %d)",
				v, values[v], want[v], src)
		}
	}
	return nil
}
