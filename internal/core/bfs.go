package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// BFS runs level-synchronous breadth-first search from src on the device
// graph, one kernel launch per level (§4.2: "the total number of kernels
// launched... is equal to the distance between the source vertex to the
// furthest reachable vertex"). It returns each vertex's BFS level
// (graph.InfDist for unreachable vertices).
func BFS(dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: BFS source %d out of range [0,%d)", src, n)
	}
	dev.BeginRun(gpu.RunLabels{App: "BFS", Variant: variant.String(),
		Transport: dg.Transport.String(), Graph: dg.Graph.Name})
	defer dev.EndRun()
	rs, err := newRunState(dev)
	if err != nil {
		return nil, err
	}
	labels, err := rs.alloc("bfs.labels", int64(n)*4)
	if err != nil {
		return nil, err
	}
	// Initialize labels to INF with the source at level 0, and model the
	// initial upload of the label array.
	for v := 0; v < n; v++ {
		labels.PutU32(int64(v), graph.InfDist)
	}
	labels.PutU32(int64(src), 0)
	dev.CopyToDevice(int64(n) * 4)

	visit := relaxVisitor(labels, nil, rs.flag, false)
	iterations := 0
	for level := uint32(0); ; level++ {
		roundStart := dev.Clock()
		rs.clearFlag()
		launchMatchKernel(dev, dg, variant, "bfs/"+variant.String(), labels, level, level+1, visit)
		iterations++
		more := rs.readFlag()
		dev.EmitRound("bfs/"+variant.String(), int(level), roundStart)
		if !more {
			break
		}
	}
	return rs.finish("BFS", variant, dg.Transport, src, labels, n, iterations), nil
}

// ValidateBFS checks a BFS result against the CPU reference.
func ValidateBFS(g *graph.CSR, src int, values []uint32) error {
	want := graph.RefBFS(g, src)
	if len(values) != len(want) {
		return fmt.Errorf("core: BFS result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: BFS level[%d] = %d, want %d (src %d)",
				v, values[v], want[v], src)
		}
	}
	return nil
}
