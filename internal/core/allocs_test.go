package core

import (
	"context"
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// This file pins the engine's zero-alloc round contract: once a run's
// first round has warmed the per-worker scratch and the device's
// capacity-preserving stat buffers, a steady-state round performs NO heap
// allocation — not in the round loop, not in the kernel bodies, not in
// the visitors, not in the coalescer or its reorder stage.
//
// The contract is asserted with a delta method built on
// testing.AllocsPerRun (the testing-package form of AllocsPerOp): two
// full runs on the same warmed device differ only in their round count,
// so their total allocation counts are equal exactly when the per-round
// allocation count is zero. This is robust against per-run constants
// (Result assembly, runState, prebuilt visitors) that a naive per-op
// threshold would have to guess at.
//
// The contract covers the serial engine (Workers=1): parallel launches
// spawn worker goroutines per launch by design, which Go runtime
// machinery charges allocations for outside the engine's control.

// allocDevice returns a single-worker device, optionally with the
// coalescer's reorder stage enabled, so the contract covers both paths.
func allocDevice(reorderWindow int) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:          "alloc-test",
		HBM:           memsys.HBM2V100(),
		HostDRAM:      memsys.DDR4Quad(),
		Link:          pcie.Gen3x16(),
		Workers:       1,
		ReorderWindow: reorderWindow,
	})
}

// depthSources returns two sources whose BFS depths differ, so runs from
// them take different round counts.
func depthSources(t *testing.T, g *graph.CSR) (int, int) {
	t.Helper()
	depth := func(src int) uint32 {
		d := uint32(0)
		for _, l := range graph.RefBFS(g, src) {
			if l != graph.InfDist && l > d {
				d = l
			}
		}
		return d
	}
	cands := graph.PickSources(g, 16, 29)
	for _, s := range cands[1:] {
		if depth(s) != depth(cands[0]) {
			return cands[0], s
		}
	}
	t.Fatal("no source pair with differing BFS depth; pick a different graph seed")
	return 0, 0
}

// measureRunAllocs returns the average total allocations of run(src),
// after warming both sources so capacity growth is excluded.
func measureRunAllocs(run func(src int), srcA, srcB int) (float64, float64) {
	run(srcA)
	run(srcB)
	a := testing.AllocsPerRun(5, func() { run(srcA) })
	b := testing.AllocsPerRun(5, func() { run(srcB) })
	return a, b
}

func assertEqualAllocs(t *testing.T, name string, a, b float64, itersA, itersB int) {
	t.Helper()
	if itersA == itersB {
		t.Fatalf("%s: both runs took %d rounds; the delta method needs differing round counts", name, itersA)
	}
	if a != b {
		t.Errorf("%s: steady-state rounds allocate: %d-round run averaged %.1f allocs, %d-round run %.1f — the per-round delta must be zero",
			name, itersA, a, itersB, b)
	}
}

// TestSteadyStateRoundAllocsEngine covers the single-source engine:
// FrontierMatch (BFS) and FrontierActive (SSSP) disciplines, with the
// reorder stage off and on.
func TestSteadyStateRoundAllocsEngine(t *testing.T) {
	g := graph.Urand("alloc-u", 800, 8, 3)
	g.InitWeights(7, 8, 72)
	for _, rw := range []int{0, 16} {
		dev := allocDevice(rw)
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		srcA, srcB := depthSources(t, g)
		for _, tc := range []struct {
			name string
			algo func(src int) (*Result, error)
		}{
			{"bfs", func(src int) (*Result, error) { return BFS(dev, dg, src, MergedAligned) }},
			{"sssp", func(src int) (*Result, error) { return SSSP(dev, dg, src, MergedAligned) }},
		} {
			iters := map[int]int{}
			run := func(src int) {
				dev.ResetStats()
				res, err := tc.algo(src)
				if err != nil {
					t.Fatalf("reorder=%d/%s: %v", rw, tc.name, err)
				}
				iters[src] = res.Iterations
			}
			a, b := measureRunAllocs(run, srcA, srcB)
			assertEqualAllocs(t, tc.name, a, b, iters[srcA], iters[srcB])
		}
	}
}

// TestSteadyStateRoundAllocsBatch covers the batched lane loop: the
// match (BFS) and active (SSSP) batched kernels with K=4 lanes.
func TestSteadyStateRoundAllocsBatch(t *testing.T) {
	g := graph.Urand("alloc-b", 800, 8, 3)
	g.InitWeights(7, 8, 72)
	for _, rw := range []int{0, 16} {
		dev := allocDevice(rw)
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		srcA, srcB := depthSources(t, g)
		for _, app := range []string{"bfs", "sssp"} {
			iters := map[int]int{}
			run := func(src int) {
				dev.ResetStats()
				specs := []BatchSpec{{Src: src}, {Src: src}, {Src: src}, {Src: src}}
				out, err := RunBatchAlgo(context.Background(), dev, dg, app, specs, MergedAligned)
				if err != nil {
					t.Fatalf("reorder=%d/%s-batch: %v", rw, app, err)
				}
				for _, item := range out.Results {
					if item.Err != nil {
						t.Fatalf("reorder=%d/%s-batch lane: %v", rw, app, item.Err)
					}
					iters[src] = item.Res.Iterations
				}
			}
			a, b := measureRunAllocs(run, srcA, srcB)
			assertEqualAllocs(t, app+"-batch", a, b, iters[srcA], iters[srcB])
		}
	}
}
