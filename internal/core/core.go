package core
