package core

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// This file defines the pluggable transport-policy layer. EMOGI's original
// design makes the host-to-GPU transport one global, load-time choice (the
// Transport enum: zero-copy vs. UVM). HyTGraph (PAPERS.md) shows the right
// choice is per-partition and per-iteration: dense partitions are cheaper to
// copy wholesale, sparse ones are cheaper to read on demand, and the winner
// changes as the frontier moves. A TransportPolicy makes that decision —
// the engine partitions the edge list into fixed memsys.SegmentBytes
// segments, measures each partition's expected access density at every round
// boundary, and asks the policy which substrate each partition should be
// served from for the coming round. See DESIGN.md §15.

// Choice is the substrate a policy binds one partition to for one round.
type Choice uint8

const (
	// ChoiceZeroCopy serves the partition with per-request pinned-host
	// reads (EMOGI's optimized transport).
	ChoiceZeroCopy Choice = iota
	// ChoiceUVM serves the partition through demand page migration.
	ChoiceUVM
	// ChoiceStaged serves the partition from an explicit batched copy in
	// GPU memory, uploaded at the round boundary that chose it.
	ChoiceStaged
	// ChoiceHostCached serves a CXL-homed partition from a host-DRAM copy:
	// a one-time bulk read over the CXL link promotes the segment into
	// DRAM, after which it is read zero-copy at PCIe rates. Only
	// meaningful on three-tier systems; policies never choose it for
	// DRAM-homed partitions.
	ChoiceHostCached

	numChoices
)

// String returns the substrate label used in metrics and traces.
func (c Choice) String() string {
	switch c {
	case ChoiceZeroCopy:
		return "zerocopy"
	case ChoiceUVM:
		return "uvm"
	case ChoiceStaged:
		return "staged"
	case ChoiceHostCached:
		return "dram"
	default:
		return fmt.Sprintf("choice(%d)", uint8(c))
	}
}

// PartitionStats is one partition's access-density snapshot for the round
// about to execute, computed host-side from the frontier (the same
// information a real implementation gets from its frontier inspection pass).
type PartitionStats struct {
	// Bytes is the partition length (SegmentBytes except the tail).
	Bytes int64
	// AccessedBytes is the expected edge-list bytes the coming round reads
	// from this partition: the summed overlap of every frontier vertex's
	// neighbor-list byte range with the partition, rounded to the 32B
	// sector transaction granule — the payload a zero-copy round would
	// actually put on the wire, amplification included.
	AccessedBytes int64
	// Requests is the expected number of coalesced zero-copy PCIe requests
	// the coming round issues against this partition (one per 128B cache
	// line touched per frontier vertex). Zero-copy streams of small
	// requests are tag-limited, not wire-limited (paper §3.3), so request
	// count — not bytes — is what dominates skewed-graph cost.
	Requests int64
	// MaxVertexRequests is the largest request count any single frontier
	// vertex contributes to Requests — the partition's share of the busiest
	// warp's latency critical path. One warp walks one vertex's neighbor
	// list with a bounded number of reads in flight, so a hub vertex
	// serializes on round trips no matter how idle the wire is; on skewed
	// graphs this term, not bytes or tags, is the real zero-copy cost.
	MaxVertexRequests int64
	// ActiveVertices counts frontier vertices whose neighbor list starts in
	// this partition.
	ActiveVertices int
	// CXLHome reports that the partition's backing bytes live on the
	// external CXL-class tier (a three-tier placement spilled it there).
	// Its in-place read and migration costs then use the CXL constants of
	// CostParams, and ChoiceHostCached becomes available.
	CXLHome bool
}

// DensityClass buckets a partition's predicted density for metrics:
// "cold" (no expected accesses), "hot" (expected bytes cover the whole
// partition), "warm" (in between).
func (p PartitionStats) DensityClass() string {
	switch {
	case p.AccessedBytes == 0:
		return "cold"
	case p.AccessedBytes >= p.Bytes:
		return "hot"
	default:
		return "warm"
	}
}

// PartitionState is the engine-maintained binding state the policy sees.
type PartitionState struct {
	// Choice is the substrate currently serving the partition.
	Choice Choice
	// Since is the round the current choice was adopted, or -1 while the
	// partition still sits on its load-time binding: a first move owes no
	// dwell (there is no prior decision to protect from thrashing), which
	// matters because the densest rounds of a traversal are the early ones.
	Since int
	// Staged reports whether the partition's explicit device copy is
	// resident (staying resident across rounds makes re-choosing staged
	// free until ColdCaches evicts it).
	Staged bool
	// HostCached reports whether a CXL-homed partition's host-DRAM copy is
	// resident (re-choosing ChoiceHostCached is then free; leaving the
	// substrate drops the copy and re-entry pays the promotion again).
	HostCached bool
	// SpentSeconds is the estimated link time already paid reading this
	// partition zero-copy since its current binding was adopted — the
	// "rent paid so far" of the ski-rental rule. The engine accumulates it
	// each round a zero-copy-bound partition is accessed and resets it on
	// every binding change, so a policy can justify a one-time migration
	// (staging copy, page migration) against the recurring cost it ends:
	// traversals that re-read edges across rounds (SSSP/CC relaxation
	// sweeps) amortize the buy even when no single round does.
	SpentSeconds float64
}

// CostParams carries the platform-derived constants a policy's cost model
// needs. The engine fills it once per run from the device configuration, so
// Decide stays a pure function of its arguments.
type CostParams struct {
	// SegmentBytes is the partition granule.
	SegmentBytes int64
	// ZCBytesPerSec is the effective zero-copy streaming rate for
	// cache-line requests (wire + tag overhead included).
	ZCBytesPerSec float64
	// ZCSecondsPerRequest is the tag-occupancy cost of one outstanding
	// zero-copy read (RTT over the in-flight tag budget). A partition's
	// zero-copy cost is the larger of its wire time and its tag time,
	// mirroring the link's stream model.
	ZCSecondsPerRequest float64
	// CritSecondsPerRequest is the latency critical-path cost of one
	// host-memory request on the warp that issues it (RTT over the per-warp
	// outstanding-read budget). Multiplied by MaxVertexRequests it bounds
	// the serialization a hub vertex's warp imposes on a zero-copy round.
	CritSecondsPerRequest float64
	// BulkBytesPerSec is the explicit-copy (DMA) rate.
	BulkBytesPerSec float64
	// UVMBytesPerSec is the effective page-migration rate (transfer plus
	// serialized fault handling).
	UVMBytesPerSec float64
	// UVMChunkBytes is the migration amplification granule: touching a cold
	// UVM-bound partition drags in at least this many bytes (the driver's
	// aligned prefetch block).
	UVMChunkBytes int64
	// StagedBudgetBytes caps the total bytes of explicitly staged segments
	// (GPU memory left after allocations, with headroom). Negative means
	// unlimited.
	StagedBudgetBytes int64
	// UVMBudgetBytes is the page cache capacity backing UVM-bound
	// partitions. Binding more than this does not fail — the driver's LRU
	// silently evicts — but residency stops being sticky: every round
	// re-migrates chunks, so an over-budget UVM incumbent costs its
	// migration again instead of zero. Negative means unlimited.
	UVMBudgetBytes int64
	// HoldRounds is the hysteresis dwell: a partition keeps its substrate
	// for at least this many rounds before switching again.
	HoldRounds int
	// SwitchMargin is the hysteresis margin: a new substrate must beat the
	// current one's estimated cost by this factor to displace it.
	SwitchMargin float64

	// CXL-tier constants, the external-link analogues of the fields above.
	// All zero on two-tier systems, where no partition is CXL-homed and
	// they are never read.

	// CXLBytesPerSec is the effective in-place read rate for cache-line
	// requests over the CXL link.
	CXLBytesPerSec float64
	// CXLSecondsPerRequest is the CXL link's tag-occupancy cost per
	// outstanding read. The microsecond RTT makes this the dominant
	// in-place cost for sparse access.
	CXLSecondsPerRequest float64
	// CXLCritSecondsPerRequest is the per-warp latency critical-path cost
	// of one CXL request.
	CXLCritSecondsPerRequest float64
	// CXLBulkBytesPerSec is the CXL link's bulk (DMA) rate, paid by
	// staging copies and host-cache promotions out of the tier.
	CXLBulkBytesPerSec float64
	// CXLUVMBytesPerSec is the effective page-migration rate out of the
	// CXL tier.
	CXLUVMBytesPerSec float64
	// HostCacheBudgetBytes caps the total bytes of CXL-homed partitions
	// promoted into host DRAM copies. Negative means unlimited.
	HostCacheBudgetBytes int64
}

// TransportPolicy decides, per partition per round, which substrate serves
// each edge-list partition. Decide must be a pure function of its arguments
// — no clocks, no randomness, no retained state — so decision sequences
// replay identically across retries and are independent of host worker
// count (the determinism suite pins this).
type TransportPolicy interface {
	// Name is the stable registry identifier ("static-zc", "static-uvm",
	// "adaptive").
	Name() string
	// Description is a one-line human summary for /v1/transports.
	Description() string
	// Static returns the fixed transport the policy binds everything to for
	// the whole run, with ok true; ok false means the policy is routed:
	// decisions are per partition per round through Decide.
	Static() (t Transport, ok bool)
	// Decide writes one Choice per partition into out (len(out) ==
	// len(parts) == len(state)). round is the round about to execute.
	Decide(round int, parts []PartitionStats, state []PartitionState, costs CostParams, out []Choice)
}

// policyBase returns the space a policy's graph buffers are allocated in:
// the static transport for static policies, pinned host memory for routed
// ones (routing rebinds segments at run time on top of the pinned base).
func policyBase(p TransportPolicy) Transport {
	if t, ok := p.Static(); ok {
		return t
	}
	return ZeroCopy
}

// staticPolicy reproduces the pre-policy behavior for one Transport. Loaded
// under it, a graph takes exactly the historical code path: no router, no
// density accounting, no per-round decisions (golden-pinned bit-for-bit).
// Used as an override on a graph whose base transport differs, it degrades
// gracefully to a routed run that binds every partition to its transport.
type staticPolicy struct {
	t Transport
}

func (s staticPolicy) Name() string {
	if s.t == UVM {
		return "static-uvm"
	}
	return "static-zc"
}

func (s staticPolicy) Description() string {
	if s.t == UVM {
		return "edge list in managed memory; 4KB pages migrate on first touch (the paper's UVM baseline)"
	}
	return "edge list pinned in host memory; every access is a coalesced zero-copy PCIe read (EMOGI)"
}

func (s staticPolicy) Static() (Transport, bool) { return s.t, true }

func (s staticPolicy) Decide(round int, parts []PartitionStats, state []PartitionState, costs CostParams, out []Choice) {
	c := ChoiceZeroCopy
	if s.t == UVM {
		c = ChoiceUVM
	}
	for i := range out {
		out[i] = c
	}
}

// StaticPolicyFor returns the static policy reproducing the given
// transport's historical behavior.
func StaticPolicyFor(t Transport) TransportPolicy { return staticPolicy{t} }

// adaptivePolicy implements the HyTGraph rule: per partition, compare the
// estimated transfer cost of each substrate against the bytes the coming
// round is expected to access, and pick the cheapest — with hysteresis (a
// dwell time plus a switch margin) so oscillating frontiers don't thrash
// partitions between substrates. The explicit-copy substrate is bounded by
// a staged-bytes budget (free GPU memory); dense partitions that overflow
// the budget fall back to the next-cheapest substrate.
type adaptivePolicy struct{}

func (adaptivePolicy) Name() string { return "adaptive" }

func (adaptivePolicy) Description() string {
	return "per-partition cost model rebinds edge segments between zero-copy, UVM, and explicit staging each round (HyTGraph-style)"
}

func (adaptivePolicy) Static() (Transport, bool) { return ZeroCopy, false }

// cost returns the estimated time for one partition to serve the coming
// round's AccessedBytes through each substrate. uvmThrash reports that the
// UVM-bound working set exceeds the page cache, so an incumbent's residency
// cannot be trusted: it pays its chunk migration every round like a
// newcomer. CXL-homed partitions price their in-place reads, staging
// copies, and page migrations with the CXL-tier constants; cached is the
// host-cache substrate's cost (promotion plus DRAM-rate reads), +Inf for
// DRAM-homed partitions, which have nothing to promote.
func adaptiveCosts(p PartitionStats, st PartitionState, costs CostParams, uvmThrash bool) (zc, staged, uvmc, cached float64) {
	zcRate, tagSec, critSec := costs.ZCBytesPerSec, costs.ZCSecondsPerRequest, costs.CritSecondsPerRequest
	bulkRate, uvmRate := costs.BulkBytesPerSec, costs.UVMBytesPerSec
	if p.CXLHome {
		zcRate, tagSec, critSec = costs.CXLBytesPerSec, costs.CXLSecondsPerRequest, costs.CXLCritSecondsPerRequest
		bulkRate, uvmRate = costs.CXLBulkBytesPerSec, costs.CXLUVMBytesPerSec
	}
	// In-place reads: a pipelined request stream finishes when the wire, the
	// tag window, and the busiest warp's latency chain all drain — max of
	// the three occupancies. Uniform graphs are wire- or tag-bound; skewed
	// graphs are bound by the hub warp's serialized round trips.
	zc = float64(p.AccessedBytes) / zcRate
	if tag := float64(p.Requests) * tagSec; tag > zc {
		zc = tag
	}
	if crit := float64(p.MaxVertexRequests) * critSec; crit > zc {
		zc = crit
	}
	if st.Staged {
		staged = 0 // copy already resident: served from HBM
	} else {
		staged = float64(p.Bytes) / bulkRate
	}
	if st.Choice == ChoiceUVM && !uvmThrash {
		uvmc = 0 // pages migrated when the partition was bound: served from HBM
	} else {
		chunk := costs.UVMChunkBytes
		if chunk < p.Bytes {
			chunk = p.Bytes
		}
		uvmc = float64(chunk) / uvmRate
	}
	if !p.CXLHome {
		cached = math.Inf(1)
	} else {
		// Host cache: DRAM-rate zero-copy reads, plus — when the copy is
		// not already resident — the one-time bulk promotion over the CXL
		// link.
		cached = float64(p.AccessedBytes) / costs.ZCBytesPerSec
		if tag := float64(p.Requests) * costs.ZCSecondsPerRequest; tag > cached {
			cached = tag
		}
		if crit := float64(p.MaxVertexRequests) * costs.CritSecondsPerRequest; crit > cached {
			cached = crit
		}
		if !st.HostCached {
			cached += float64(p.Bytes) / costs.CXLBulkBytesPerSec
		}
	}
	return zc, staged, uvmc, cached
}

func (adaptivePolicy) Decide(round int, parts []PartitionStats, state []PartitionState, costs CostParams, out []Choice) {
	margin := costs.SwitchMargin
	if margin <= 0 {
		margin = 1
	}
	// UVM residency check: when more bytes are UVM-bound than the page
	// cache holds, the LRU is thrashing — incumbents pay migration every
	// round, and escaping that is an emergency the dwell must not block.
	var uvmBound int64
	for i := range state {
		if state[i].Choice == ChoiceUVM {
			uvmBound += parts[i].Bytes
		}
	}
	uvmThrash := costs.UVMBudgetBytes >= 0 && uvmBound > costs.UVMBudgetBytes
	// Phase 1: per-partition desired substrate by cost, with hysteresis
	// against the current binding.
	type stager struct {
		idx int
		acc int64
	}
	var wantStaged, wantCached []stager
	for i := range parts {
		st := state[i]
		out[i] = st.Choice
		dwellOK := st.Since < 0 || round-st.Since >= costs.HoldRounds ||
			(st.Choice == ChoiceUVM && uvmThrash)
		if parts[i].AccessedBytes == 0 {
			// Cold partition: after the dwell, release non-zero-copy
			// bindings so staged budget, host-cache budget, and UVM
			// capacity go to live ones.
			if st.Choice != ChoiceZeroCopy && dwellOK {
				out[i] = ChoiceZeroCopy
			}
			if out[i] == ChoiceStaged {
				// A cold staged incumbent still occupies budget; phase 2
				// must see it or new admissions overflow the cap. Zero
				// density sorts it behind every live resident, so it is
				// the first evicted when the budget tightens.
				wantStaged = append(wantStaged, stager{i, 0})
			}
			if out[i] == ChoiceHostCached {
				wantCached = append(wantCached, stager{i, 0})
			}
			continue
		}
		zc, staged, uvmc, cached := adaptiveCosts(parts[i], st, costs, uvmThrash)
		cur := zc
		switch st.Choice {
		case ChoiceStaged:
			cur = staged
		case ChoiceUVM:
			cur = uvmc
		case ChoiceHostCached:
			cur = cached
		}
		// Ski-rental: a zero-copy incumbent is charged the rent it has
		// already paid on top of this round's, so a one-time buy (staging
		// copy, page migration, host-cache promotion) wins once the
		// recurring reads it would end have accumulated past it — the
		// cross-round reuse a single-round comparison cannot see.
		if st.Choice == ChoiceZeroCopy {
			cur += st.SpentSeconds
		}
		best, bestCost := st.Choice, cur
		// Fixed evaluation order keeps ties deterministic; a challenger must
		// beat the incumbent by the margin, and only after the dwell. The
		// host-cache candidate exists only for CXL-homed partitions (it is
		// +Inf otherwise, so listing it unconditionally is safe and keeps
		// the order fixed).
		for _, cand := range [...]struct {
			c    Choice
			cost float64
		}{{ChoiceZeroCopy, zc}, {ChoiceStaged, staged}, {ChoiceUVM, uvmc}, {ChoiceHostCached, cached}} {
			if cand.c == st.Choice {
				continue
			}
			if cand.cost*margin < bestCost && dwellOK {
				best, bestCost = cand.c, cand.cost
			}
		}
		out[i] = best
		if best == ChoiceStaged {
			wantStaged = append(wantStaged, stager{i, parts[i].AccessedBytes})
		}
		if best == ChoiceHostCached {
			wantCached = append(wantCached, stager{i, parts[i].AccessedBytes})
		}
	}
	// budgetSort orders admission candidates: already-resident copies keep
	// their slot first (stability); new admissions go densest-first.
	budgetSort := func(want []stager, resident func(i int) bool) {
		sort.Slice(want, func(a, b int) bool {
			sa, sb := want[a], want[b]
			ra, rb := resident(sa.idx), resident(sb.idx)
			if ra != rb {
				return ra
			}
			if sa.acc != sb.acc {
				return sa.acc > sb.acc
			}
			return sa.idx < sb.idx
		})
	}
	// Phase 2: enforce the staged budget.
	if costs.StagedBudgetBytes >= 0 {
		budgetSort(wantStaged, func(i int) bool { return state[i].Staged })
		var used int64
		for _, s := range wantStaged {
			if used+parts[s.idx].Bytes <= costs.StagedBudgetBytes {
				used += parts[s.idx].Bytes
				continue
			}
			// Over budget: fall back to the cheaper of in-place reads and
			// UVM, charging a zero-copy incumbent its accumulated rent (the
			// same ski-rental comparison phase 1 applies).
			zc, _, uvmc, _ := adaptiveCosts(parts[s.idx], state[s.idx], costs, uvmThrash)
			if state[s.idx].Choice == ChoiceZeroCopy {
				zc += state[s.idx].SpentSeconds
			}
			if uvmc*margin < zc {
				out[s.idx] = ChoiceUVM
			} else if state[s.idx].Choice == ChoiceStaged {
				out[s.idx] = ChoiceZeroCopy
			} else {
				out[s.idx] = state[s.idx].Choice
			}
		}
	}
	// Phase 3: enforce the host-cache budget the same way; overflow falls
	// back to reading the partition in place over the CXL link.
	if costs.HostCacheBudgetBytes >= 0 {
		budgetSort(wantCached, func(i int) bool { return state[i].HostCached })
		var used int64
		for _, s := range wantCached {
			if out[s.idx] != ChoiceHostCached {
				continue // phase 2 already rerouted it
			}
			if used+parts[s.idx].Bytes <= costs.HostCacheBudgetBytes {
				used += parts[s.idx].Bytes
				continue
			}
			zc, _, uvmc, _ := adaptiveCosts(parts[s.idx], state[s.idx], costs, uvmThrash)
			if state[s.idx].Choice == ChoiceZeroCopy {
				zc += state[s.idx].SpentSeconds
			}
			if uvmc*margin < zc {
				out[s.idx] = ChoiceUVM
			} else if state[s.idx].Choice == ChoiceHostCached {
				out[s.idx] = ChoiceZeroCopy
			} else {
				out[s.idx] = state[s.idx].Choice
			}
		}
	}
}

// AdaptivePolicy returns the HyTGraph-style cost-model policy.
func AdaptivePolicy() TransportPolicy { return adaptivePolicy{} }

// TransportPolicies returns the selectable policies in a fixed order (the
// order /v1/transports lists them in).
func TransportPolicies() []TransportPolicy {
	return []TransportPolicy{
		StaticPolicyFor(ZeroCopy),
		StaticPolicyFor(UVM),
		AdaptivePolicy(),
	}
}

// PolicyByName resolves a policy by registry name. The v1 transport
// spellings ("zerocopy", "zc", "emogi", "uvm") are accepted as aliases of
// their static policies.
func PolicyByName(name string) (TransportPolicy, error) {
	switch name {
	case "static-zc", "zerocopy", "zc", "emogi":
		return StaticPolicyFor(ZeroCopy), nil
	case "static-uvm", "uvm":
		return StaticPolicyFor(UVM), nil
	case "adaptive":
		return AdaptivePolicy(), nil
	}
	return nil, fmt.Errorf("core: unknown transport policy %q (have static-zc, static-uvm, adaptive)", name)
}

// policyOverrideKey carries a per-run TransportPolicy override through
// context — how the service's degradation ladder reroutes a retry onto UVM
// without reloading the graph or threading a parameter through every
// registry entry point.
type policyOverrideKey struct{}

// WithPolicyOverride returns a context that makes traversal runs under it
// use p instead of the device graph's loaded policy. An override whose
// static base matches the graph's transport is a no-op; any other override
// runs routed (every partition bound per round by the override's Decide).
func WithPolicyOverride(ctx context.Context, p TransportPolicy) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, policyOverrideKey{}, p)
}

// PolicyOverrideFrom returns the override installed by WithPolicyOverride,
// or nil.
func PolicyOverrideFrom(ctx context.Context) TransportPolicy {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(policyOverrideKey{}).(TransportPolicy)
	return p
}

// effectivePolicy resolves the policy governing one run of dg under ctx and
// whether the run must be routed (per-partition runtime) rather than taking
// the static fast path. The fast path requires a static policy whose
// transport matches the space the graph was actually allocated in;
// everything else routes. memsys guarantees the router granule exists for
// any buffer, so routing needs no re-upload.
func effectivePolicy(ctx context.Context, dg *DeviceGraph) (pol TransportPolicy, routed bool) {
	if dg == nil {
		return nil, false
	}
	pol = dg.Policy
	if o := PolicyOverrideFrom(ctx); o != nil {
		pol = o
	}
	if pol == nil {
		return nil, false
	}
	if t, ok := pol.Static(); ok {
		return pol, t != dg.Transport
	}
	return pol, true
}
