package core

import (
	"math"

	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// policyRuntime is the engine-side glue for routed transport policies: it
// installs the per-segment space router on the edge-list buffer, computes
// each partition's access-density snapshot from the upcoming frontier at
// every round boundary, asks the policy for new bindings, and applies the
// transitions (staging copies, UVM evictions) before the round's kernel
// launches. Static fast-path runs never construct one, so they cost nothing
// and stay bit-for-bit identical to the pre-policy engine.
//
// Decisions happen only at round boundaries: mid-kernel rebinding would
// make the traffic of a launch depend on warp execution order, breaking the
// determinism contract, and a real implementation could not swap a
// partition's backing store under a running kernel either.
type policyRuntime struct {
	dev *gpu.Device
	dg  *DeviceGraph
	pol TransportPolicy

	// naive and weighted describe the run's kernel so the density snapshot
	// predicts the traffic the coalescer will actually emit: the Naive
	// variant's lane-strided walk issues sector-granule requests (one per
	// element when interleaved weight reads evict the lane's MRU sector),
	// while the merged variants issue line-granule gathers.
	naive    bool
	weighted bool

	// Thrash-model constants (mirroring Device.chargeThrash): per-lane
	// sector reuse only survives in L2 while the concurrent zero-copy
	// stream footprint fits, so a fraction of the reuses the request
	// estimate assumes come back as extra 32B re-fetches.
	thrashSens float64
	l2Bytes    int64
	maxLanes   int

	segBytes int64
	reuses   []int64        // per-partition expected sector reuses (scratch)
	home     []memsys.Space // per-partition home tier (SpaceHostPinned or SpaceCXL)
	parts    []PartitionStats
	state    []PartitionState
	choices  []Choice // live routing table (read by the router closure)
	next     []Choice // Decide scratch
	costs    CostParams
	moves    []gpu.TransportMove
}

// newPolicyRuntime builds the runtime for one routed run and installs its
// router. Call after per-run buffers are allocated (the staged budget is
// derived from the GPU memory left at that point) and close when the run
// ends.
func newPolicyRuntime(dev *gpu.Device, dg *DeviceGraph, pol TransportPolicy, variant Variant, weighted bool) *policyRuntime {
	rt := &policyRuntime{
		dev:      dev,
		dg:       dg,
		pol:      pol,
		naive:    variant == Naive,
		weighted: weighted,
		segBytes: memsys.SegmentBytes,
	}
	n := dg.Edges.Segments()
	if n < 1 {
		n = 1
	}
	rt.parts = make([]PartitionStats, n)
	rt.state = make([]PartitionState, n)
	rt.choices = make([]Choice, n)
	rt.next = make([]Choice, n)
	rt.reuses = make([]int64, n)
	rt.home = make([]memsys.Space, n)
	cfg := dev.Config()
	rt.thrashSens = cfg.ThrashSensitivity
	rt.l2Bytes = cfg.L2Bytes
	rt.maxLanes = cfg.MaxConcurrentLanes
	size := dg.Edges.Size()
	base := ChoiceZeroCopy
	if dg.Transport == UVM {
		base = ChoiceUVM
	}
	for i := range rt.parts {
		pb := rt.segBytes
		if off := int64(i) * rt.segBytes; off+pb > size {
			pb = size - off
		}
		rt.parts[i].Bytes = pb
		rt.home[i] = memsys.SpaceHostPinned
		if size > 0 {
			rt.home[i] = dg.Edges.SegmentHome(i)
		}
		rt.parts[i].CXLHome = rt.home[i] == memsys.SpaceCXL
		rt.state[i].Choice = base
		rt.state[i].Since = -1
		rt.choices[i] = base
	}
	rt.costs = rt.deriveCosts()
	rt.seedDegreePrior()

	// Replay determinism: every routed run starts cold — no UVM pages, no
	// staged segments inherited from a previous run — so the decision
	// sequence is a pure function of (graph, rounds, frontier), and a
	// fault-injected retry replays it identically.
	dev.ResetUVMResidency()
	dg.Edges.SpaceFn = rt.spaceAt
	if dg.Weights != nil {
		// Weights ride their edges' binding: edge i's weight is at offset
		// i*4 while the edge is at i*EdgeBytes, so the weight router maps
		// back through the edge offset. Segment boundaries fall on
		// cache-line and page multiples of both layouts, so a coalesced
		// weight request never spans two partitions either.
		ew := int64(dg.EdgeBytes)
		dg.Weights.SpaceFn = func(off int64) memsys.Space { return rt.spaceAt(off / 4 * ew) }
	}
	// Routed runs may bind segments to UVM mid-run; the UVM manager's LRU
	// is order-dependent, so launches stay serial (same rule static UVM
	// runs already follow via Arena.HasUVM).
	dev.SetSerialLaunches(true)
	return rt
}

// close removes the router and releases the serial-launch pin. Staged
// segment copies and UVM residency stay for warm reruns; ColdCaches (or the
// next routed run's cold start) evicts them.
func (rt *policyRuntime) close() {
	rt.dg.Edges.SpaceFn = nil
	if rt.dg.Weights != nil {
		rt.dg.Weights.SpaceFn = nil
	}
	rt.dev.SetSerialLaunches(false)
}

// spaceAt is the router: one table lookup per coalesced request. A
// zero-copy binding reads the partition in place through its home tier
// (host DRAM, or CXL for spilled segments); ChoiceHostCached serves a
// CXL-homed partition from its promoted host-DRAM copy.
func (rt *policyRuntime) spaceAt(off int64) memsys.Space {
	p := off / rt.segBytes
	switch rt.choices[p] {
	case ChoiceStaged:
		return memsys.SpaceGPU
	case ChoiceUVM:
		return memsys.SpaceUVM
	case ChoiceHostCached:
		return memsys.SpaceHostPinned
	default:
		return rt.home[p]
	}
}

// seedDegreePrior pre-charges each partition's ski-rental balance with a
// degree-distribution prior: on graphs whose average degree is high, the
// frontier densifies almost immediately (a handful of BFS rounds reach most
// vertices), so the recurring zero-copy rent the adaptive rule waits to
// observe is a near-certainty at round 0. Seeding SpentSeconds with ~2
// rounds of full-partition reads (scaled by how confidently degree predicts
// immediate densification) lets the first decisions buy UVM or staging
// directly instead of paying the zero-copy ramp HyTGraph-style hysteresis
// otherwise imposes — the BENCH_8 SK-class residual. Static policies ignore
// partition state, so the prior only shapes routed cost-model policies.
func (rt *policyRuntime) seedDegreePrior() {
	g := rt.dg.Graph
	nv := g.NumVertices()
	if nv <= 0 {
		return
	}
	avgDeg := float64(g.NumEdges()) / float64(nv)
	// 1 - exp(-deg/16): ~0 for road-network degrees (2-3), ~0.85+ for
	// social/web graphs (30+), saturating for hub-dominated graphs.
	confidence := 1 - math.Exp(-avgDeg/16)
	if confidence <= 0 {
		return
	}
	// The distribution's tail matters as much as its mean: a hub vertex's
	// adjacency walk is served as one warp's serialized request chain, so a
	// hub-dominated partition's real zero-copy rent is latency-bound, not
	// wire-bound. Pre-compute each partition's worst single-vertex request
	// chain from the CSR (the same per-line count beforeRound charges) so
	// hub partitions are seeded with the rent they will actually pay.
	ew := int64(rt.dg.EdgeBytes)
	maxReqs := make([]int64, len(rt.state))
	for v := 0; v < nv; v++ {
		lo := g.Offsets[v] * ew
		hi := g.Offsets[v+1] * ew
		if lo == hi {
			continue
		}
		for p := lo / rt.segBytes; p <= (hi-1)/rt.segBytes; p++ {
			segLo := p * rt.segBytes
			a, b := lo, hi
			if a < segLo {
				a = segLo
			}
			if end := segLo + rt.parts[p].Bytes; b > end {
				b = end
			}
			la := a &^ (memsys.CacheLineBytes - 1)
			if req := (b - la + memsys.CacheLineBytes - 1) / memsys.CacheLineBytes; req > maxReqs[p] {
				maxReqs[p] = req
			}
		}
	}
	for p := range rt.state {
		rate, critSec := rt.costs.ZCBytesPerSec, rt.costs.CritSecondsPerRequest
		if rt.parts[p].CXLHome && rt.costs.CXLBytesPerSec > 0 {
			rate, critSec = rt.costs.CXLBytesPerSec, rt.costs.CXLCritSecondsPerRequest
		}
		rent := float64(rt.parts[p].Bytes) / rate
		if crit := float64(maxReqs[p]) * critSec; crit > rent {
			rent = crit
		}
		rt.state[p].SpentSeconds = 2 * rent * confidence
	}
}

// deriveCosts fills the policy's cost model from the device platform.
func (rt *policyRuntime) deriveCosts() CostParams {
	cfg := rt.dev.Config()
	uvmCfg := rt.dev.UVM().Config()
	pageBytes := int64(uvmCfg.PageBytes)
	chunk := int64(uvmCfg.BlockPages) * pageBytes
	if chunk < pageBytes {
		chunk = pageBytes
	}
	// Effective UVM rate: page transfer at bulk rate plus — under the CPU
	// fault handler — the serialized handler cost per page. GPU-driven
	// paging pays link tag occupancy instead, so its rate is the larger of
	// the wire and tag occupancies, mirroring the device's accounting.
	pageSeconds := uvmPageSeconds(cfg.Link, pageBytes, uvmCfg.FaultCPUSeconds, uvmCfg.GPUDriven)
	budget := rt.dev.Arena().GPUFree()
	// The UVM page cache holds at most the GPU's free memory; binding more
	// than that makes the driver's LRU evict between rounds, so residency
	// stops being sticky (see CostParams.UVMBudgetBytes).
	uvmBudget := budget
	if budget < 0 {
		uvmBudget = -1 // uncapped device: UVM never thrashes
	}
	if budget > 0 {
		// Leave headroom: UVM-bound partitions and later runs' buffers
		// share the same free memory.
		budget -= budget / 4
	}
	if rt.dg.Weights != nil && budget > 0 {
		// Staging a weighted partition uploads its weight slice too (4 bytes
		// per edge riding the edge binding); shrink the edge-byte budget so
		// the policy's edge-only accounting stays within the real footprint.
		ew := int64(rt.dg.EdgeBytes)
		budget = budget * ew / (ew + 4)
		if uvmBudget > 0 {
			// Weight pages migrate alongside their edges' pages, so the
			// edge-only UVM accounting shares the cache with them too.
			uvmBudget = uvmBudget * ew / (ew + 4)
		}
	}
	perWarp := cfg.PerWarpOutstanding
	if perWarp < 1 {
		perWarp = 1
	}
	cp := CostParams{
		SegmentBytes:          rt.segBytes,
		ZCBytesPerSec:         cfg.Link.EffectiveBandwidth(memsys.CacheLineBytes),
		ZCSecondsPerRequest:   cfg.Link.TagSeconds(),
		CritSecondsPerRequest: cfg.Link.RTT.Seconds() / float64(perWarp),
		BulkBytesPerSec:       cfg.Link.MemcpyPeak(),
		UVMBytesPerSec:        float64(pageBytes) / pageSeconds,
		UVMChunkBytes:         chunk,
		StagedBudgetBytes:     budget,
		UVMBudgetBytes:        uvmBudget,
		HoldRounds:            2,
		SwitchMargin:          1.25,
		HostCacheBudgetBytes:  -1,
	}
	if cxlT := rt.dev.Arena().CXLTier(); cxlT != nil {
		cp.CXLBytesPerSec = cxlT.Link.EffectiveBandwidth(memsys.CacheLineBytes)
		cp.CXLSecondsPerRequest = cxlT.Link.TagSeconds()
		cp.CXLCritSecondsPerRequest = cxlT.Link.RTT.Seconds() / float64(perWarp)
		cp.CXLBulkBytesPerSec = cxlT.Link.MemcpyPeak()
		cxlPageSeconds := uvmPageSeconds(cxlT.Link, pageBytes, uvmCfg.FaultCPUSeconds, uvmCfg.GPUDriven)
		cp.CXLUVMBytesPerSec = float64(pageBytes) / cxlPageSeconds
		// Host-cache promotions compete with pinned allocations for host
		// DRAM; leave the same headroom fraction the staged budget does.
		hostBudget := rt.dev.Arena().HostFree()
		if hostBudget > 0 {
			hostBudget -= hostBudget / 4
		}
		cp.HostCacheBudgetBytes = hostBudget
	}
	return cp
}

// uvmPageSeconds returns the effective per-page migration time over lnk:
// bulk transfer plus the serialized CPU fault handler, or — GPU-driven —
// the larger of the transfer's wire and tag occupancies (the device charges
// one full-size request's tag per 128 bytes instead of the handler).
func uvmPageSeconds(lnk pcie.LinkConfig, pageBytes int64, faultCPUSeconds float64, gpuDriven bool) float64 {
	s := lnk.BulkSeconds(pageBytes)
	if !gpuDriven {
		return s + faultCPUSeconds
	}
	if tag := float64(pageBytes/128) * lnk.TagSeconds(); tag > s {
		s = tag
	}
	return s
}

// beforeRound runs at one round boundary: snapshot density from the
// frontier (active reports whether vertex v is in the coming round's
// frontier), get the policy's decisions, and apply the transitions. Charged
// device time (staging copies) lands here, before the round's kernel.
func (rt *policyRuntime) beforeRound(round int, active func(v int) bool) {
	start := rt.dev.Clock()
	for i := range rt.parts {
		rt.parts[i].AccessedBytes = 0
		rt.parts[i].Requests = 0
		rt.parts[i].MaxVertexRequests = 0
		rt.parts[i].ActiveVertices = 0
		rt.reuses[i] = 0
	}
	g := rt.dg.Graph
	ew := int64(rt.dg.EdgeBytes)
	n := g.NumVertices()
	var zcLanes int64
	for v := 0; v < n; v++ {
		if !active(v) {
			continue
		}
		lo := g.Offsets[v] * ew
		hi := g.Offsets[v+1] * ew
		if lo == hi {
			continue
		}
		p0 := lo / rt.segBytes
		p1 := (hi - 1) / rt.segBytes
		rt.parts[p0].ActiveVertices++
		if rt.naive {
			zcLanes++ // one lane walks this vertex's list
		} else {
			zcLanes += int64(gpu.WarpSize) // a whole warp gathers it
		}
		for p := p0; p <= p1; p++ {
			segLo := p * rt.segBytes
			segHi := segLo + rt.parts[p].Bytes
			a, b := lo, hi
			if a < segLo {
				a = segLo
			}
			if b > segHi {
				b = segHi
			}
			// Estimate the requests and wire payload this vertex's walk puts
			// on the link if the partition serves it zero-copy, following
			// the coalescer's actual behavior per kernel variant.
			var req, acc int64
			if rt.naive {
				if rt.weighted {
					// Strided walk alternating edge and weight reads: the
					// interleaving evicts the lane's MRU sector between
					// consecutive edge elements, so every element read is its
					// own 32B request (edge plus weight, both routed to this
					// partition — weights ride the edge binding).
					req = (b - a) / ew * 2
					acc = req * memsys.SectorBytes
				} else {
					// Strided walk, one buffer: the lane reuses its current
					// sector until the walk crosses a 32B boundary — but the
					// reuse must survive in L2; the thrash pass below turns a
					// concurrency-dependent fraction into re-fetches.
					sa := a &^ (memsys.SectorBytes - 1)
					sb := (b + memsys.SectorBytes - 1) &^ (memsys.SectorBytes - 1)
					acc = sb - sa
					req = acc / memsys.SectorBytes
					rt.reuses[p] += (b-a)/ew - req
				}
			} else {
				// Merged (warp-per-vertex) gathers: one request per 128B
				// line from the aligned walk start, 32B-sector payload.
				sa := a &^ (memsys.SectorBytes - 1)
				sb := (b + memsys.SectorBytes - 1) &^ (memsys.SectorBytes - 1)
				la := a &^ (memsys.CacheLineBytes - 1)
				req = (b - la + memsys.CacheLineBytes - 1) / memsys.CacheLineBytes
				acc = sb - sa
				if rt.weighted {
					// One weight gather per 32-edge chunk (32 4-byte weights
					// coalesce into a single line request).
					chunkBytes := int64(gpu.WarpSize) * ew
					req += (b - a + chunkBytes - 1) / chunkBytes
					acc += (b - a) / ew * 4
				}
			}
			rt.parts[p].AccessedBytes += acc
			rt.parts[p].Requests += req
			if req > rt.parts[p].MaxVertexRequests {
				rt.parts[p].MaxVertexRequests = req
			}
		}
	}

	// Thrash pass (the policy-side mirror of the device's §3.3 cache
	// model): estimate the fraction of per-lane sector reuses evicted from
	// L2 by the round's concurrent zero-copy streams and fold them back in
	// as extra 32B requests.
	if rt.thrashSens > 0 && rt.l2Bytes > 0 {
		streams := zcLanes
		if hw := int64(rt.maxLanes); hw > 0 && streams > hw {
			streams = hw
		}
		missFrac := rt.thrashSens * float64(streams) * float64(memsys.SectorBytes) / float64(rt.l2Bytes)
		if missFrac > 1 {
			missFrac = 1
		}
		for p := range rt.parts {
			if rt.reuses[p] == 0 {
				continue
			}
			extra := int64(float64(rt.reuses[p]) * missFrac)
			rt.parts[p].Requests += extra
			rt.parts[p].AccessedBytes += extra * memsys.SectorBytes
		}
	}

	rt.pol.Decide(round, rt.parts, rt.state, rt.costs, rt.next)
	rt.applyDecisions(round)

	// Accrue this round's zero-copy rent on the partitions that will serve
	// it zero-copy — the ski-rental balance the next decision sees. Rent is
	// priced at the link the reads actually cross: the CXL constants for
	// CXL-homed partitions.
	for p := range rt.parts {
		if rt.state[p].Choice != ChoiceZeroCopy || rt.parts[p].AccessedBytes == 0 {
			continue
		}
		rate, tagSec, critSec := rt.costs.ZCBytesPerSec, rt.costs.ZCSecondsPerRequest, rt.costs.CritSecondsPerRequest
		if rt.parts[p].CXLHome {
			rate, tagSec, critSec = rt.costs.CXLBytesPerSec, rt.costs.CXLSecondsPerRequest, rt.costs.CXLCritSecondsPerRequest
		}
		rent := float64(rt.parts[p].AccessedBytes) / rate
		if tag := float64(rt.parts[p].Requests) * tagSec; tag > rent {
			rent = tag
		}
		if crit := float64(rt.parts[p].MaxVertexRequests) * critSec; crit > rent {
			rent = crit
		}
		rt.state[p].SpentSeconds += rent
	}
	if len(rt.moves) > 0 {
		rt.dev.EmitTransportDecisions(round, rt.moves, start, rt.dev.Clock())
	}
}

// applyDecisions transitions partitions whose binding changed: stage or
// drop explicit copies, evict pages leaving UVM, update the routing table,
// and aggregate the moves for telemetry. Staging is charged as one batched
// copy (the substrate's whole point: segment uploads coalesce into a single
// round-boundary DMA).
func (rt *policyRuntime) applyDecisions(round int) {
	rt.moves = rt.moves[:0]
	ew := int64(rt.dg.EdgeBytes)
	var stageBytes, stageCXLBytes, promoteBytes int64
	for p := range rt.next {
		newC, oldC := rt.next[p], rt.state[p].Choice
		if newC == oldC {
			continue
		}
		off := int64(p) * rt.segBytes
		// The partition's weight slice rides the same binding (see the
		// router in newPolicyRuntime): evict and stage it alongside.
		woff, wbytes := off/ew*4, rt.parts[p].Bytes/ew*4
		if oldC == ChoiceUVM {
			rt.dev.UVM().EvictRange(rt.dg.Edges, off, rt.parts[p].Bytes)
			if rt.dg.Weights != nil {
				rt.dev.UVM().EvictRange(rt.dg.Weights, woff, wbytes)
			}
		}
		if newC == ChoiceStaged && !rt.state[p].Staged {
			n := rt.parts[p].Bytes
			if rt.dg.Weights != nil {
				n += wbytes
			}
			// The upload crosses the link of the tier the partition is
			// homed on: PCIe for DRAM-homed segments, the CXL link for
			// spilled ones.
			if rt.parts[p].CXLHome {
				stageCXLBytes += n
			} else {
				stageBytes += n
			}
			rt.dg.Edges.SetSegmentStaged(p, true)
			rt.state[p].Staged = true
		}
		if oldC == ChoiceStaged && newC != ChoiceStaged {
			// Leaving the staged substrate releases the copy (and its
			// budget); re-entry pays the upload again.
			rt.dg.Edges.SetSegmentStaged(p, false)
			rt.state[p].Staged = false
		}
		if newC == ChoiceHostCached && !rt.state[p].HostCached {
			// Promote the partition (and its weight slice) out of the CXL
			// tier into a host-DRAM copy; subsequent reads go zero-copy at
			// PCIe rates through the router.
			promoteBytes += rt.parts[p].Bytes
			if rt.dg.Weights != nil {
				promoteBytes += wbytes
			}
			rt.state[p].HostCached = true
		}
		if oldC == ChoiceHostCached && newC != ChoiceHostCached {
			// Dropping the host copy is free (read-mostly duplicate of the
			// CXL-resident data); re-entry pays the promotion again.
			rt.state[p].HostCached = false
		}
		rt.state[p].Choice = newC
		rt.state[p].Since = round
		rt.state[p].SpentSeconds = 0
		rt.choices[p] = newC
		rt.recordMove(rt.parts[p].DensityClass(), newC)
	}
	if stageBytes > 0 {
		rt.dev.StageSegments(stageBytes)
	}
	if stageCXLBytes > 0 {
		rt.dev.StageSegmentsCXL(stageCXLBytes)
	}
	if promoteBytes > 0 {
		rt.dev.PromoteFromCXL(promoteBytes)
	}
}

// recordMove aggregates one partition transition into the per-round move
// groups ((density class, choice) pairs; at most 9 distinct).
func (rt *policyRuntime) recordMove(class string, c Choice) {
	choice := c.String()
	for i := range rt.moves {
		if rt.moves[i].PartitionClass == class && rt.moves[i].Choice == choice {
			rt.moves[i].Count++
			return
		}
	}
	rt.moves = append(rt.moves, gpu.TransportMove{PartitionClass: class, Choice: choice, Count: 1})
}
