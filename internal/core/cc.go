package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// CC computes connected components by iterative min-label propagation (the
// GARDENIA-style baseline [51] the paper starts from): every vertex begins
// as its own component with the whole vertex set active — "all vertices
// are set as root vertices and the entire edge list is traversed" (§5.4)
// — and pushes its label to its neighbors until a fixed point. The final
// label of each vertex is the minimum vertex ID in its component.
//
// Like SSSP, propagation is bulk-synchronous: active vertices read their
// label from a round-boundary snapshot while atomic-min updates land in
// the live array, which keeps runs bit-for-bit reproducible under the
// parallel launch engine (see the SSSP comment).
//
// The graph must be undirected; the paper excludes the directed SK and
// UK5 graphs from CC for the same reason.
func CC(dev *gpu.Device, dg *DeviceGraph, variant Variant) (*Result, error) {
	if dg.Graph.Directed {
		return nil, fmt.Errorf("core: CC requires an undirected graph (got %s)", dg.Graph.Name)
	}
	n := dg.NumVertices()
	dev.BeginRun(gpu.RunLabels{App: "CC", Variant: variant.String(),
		Transport: dg.Transport.String(), Graph: dg.Graph.Name})
	defer dev.EndRun()
	rs, err := newRunState(dev)
	if err != nil {
		return nil, err
	}
	comp, err := rs.alloc("cc.comp", int64(n)*4)
	if err != nil {
		return nil, err
	}
	compRead, err := rs.alloc("cc.compread", int64(n)*4)
	if err != nil {
		return nil, err
	}
	cur, err := rs.alloc("cc.active0", int64(n)*4)
	if err != nil {
		return nil, err
	}
	next, err := rs.alloc("cc.active1", int64(n)*4)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		comp.PutU32(int64(v), uint32(v))
		cur.PutU32(int64(v), 1)
	}
	dev.CopyToDevice(int64(n) * 4 * 2)

	iterations := 0
	for {
		roundStart := dev.Clock()
		rs.clearFlag()
		dev.CopyOnDevice(compRead, comp) // round-boundary snapshot for source reads
		visit := relaxVisitor(comp, next, rs.flag, false)
		launchActiveKernel(dev, dg, variant, "cc/"+variant.String(), compRead, cur, false, visit)
		iterations++
		more := rs.readFlag()
		dev.EmitRound("cc/"+variant.String(), iterations-1, roundStart)
		if !more {
			break
		}
		cur, next = next, cur
		dev.Memset(next, 0)
	}
	res := rs.finish("CC", variant, dg.Transport, 0, comp, n, iterations)
	res.Source = -1 // CC has no source vertex
	return res, nil
}

// ValidateCC checks a CC result against the union-find reference.
func ValidateCC(g *graph.CSR, values []uint32) error {
	want := graph.RefCC(g)
	if len(values) != len(want) {
		return fmt.Errorf("core: CC result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: CC label[%d] = %d, want %d", v, values[v], want[v])
		}
	}
	return nil
}
