package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// ccProgram declares connected components by iterative min-label
// propagation (the GARDENIA-style baseline [51] the paper starts from):
// every vertex begins as its own component with the whole vertex set
// active — "all vertices are set as root vertices and the entire edge list
// is traversed" (§5.4) — and pushes its label to its neighbors until a
// fixed point. The final label of each vertex is the minimum vertex ID in
// its component. Identity is graph.InfDist for the active-kernel
// unreached-vertex guard; labels are vertex IDs, so the guard never trips.
func ccProgram() *Program {
	return &Program{
		App:      "CC",
		Frontier: FrontierActive,
		Relax:    Monoid{Identity: graph.InfDist, Combine: CombineCarry},
		NoSource: true,
		Init:     func(v, src int) uint32 { return uint32(v) },
		Seed:     func(v, src int) bool { return true },
		Validate: func(g *graph.CSR, _ int, values []uint32) error {
			return ValidateCC(g, values)
		},
	}
}

// CC computes connected components over the frontier engine's explicit
// active set. Like SSSP, propagation is bulk-synchronous: active vertices
// read their label from a round-boundary snapshot while atomic-min
// updates land in the live array, which keeps runs bit-for-bit
// reproducible under the parallel launch engine (see the SSSP comment).
//
// The graph must be undirected; the paper excludes the directed SK and
// UK5 graphs from CC for the same reason.
func CC(dev *gpu.Device, dg *DeviceGraph, variant Variant) (*Result, error) {
	return CCContext(context.Background(), dev, dg, variant)
}

// CCContext is CC with cooperative cancellation at round boundaries (see
// cancel.go for the contract).
func CCContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, variant Variant) (*Result, error) {
	if dg.Graph.Directed {
		return nil, fmt.Errorf("core: CC requires an undirected graph (got %s)", dg.Graph.Name)
	}
	prog := ccProgram()
	name := "cc/" + variant.String()
	return runProgram(ctx, dev, dg.NumVertices(), prog, 0, &engineConfig{
		variant:     variant,
		transport:   dg.Transport,
		graphName:   dg.Graph.Name,
		valueName:   "cc.comp",
		snapName:    "cc.compread",
		activeNames: [2]string{"cc.active0", "cc.active1"},
		roundName:   name,
		dg:          dg,
		kernel:      stdActiveKernel(dg, variant, name, prog),
	})
}

// ValidateCC checks a CC result against the union-find reference.
func ValidateCC(g *graph.CSR, values []uint32) error {
	want := graph.RefCC(g)
	if len(values) != len(want) {
		return fmt.Errorf("core: CC result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: CC label[%d] = %d, want %d", v, values[v], want[v])
		}
	}
	return nil
}
