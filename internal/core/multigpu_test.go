package core

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

func multiDevices(n int) []*gpu.Device {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.NewDevice(gpu.Config{
			Name:     "mgpu",
			HBM:      memsys.HBM2V100(),
			HostDRAM: memsys.DDR4Quad(),
			Link:     pcie.Gen3x16(),
		})
	}
	return devs
}

func TestMultiGPUBFSCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		for _, n := range []int{1, 2, 4} {
			ms, err := NewMultiSystem(multiDevices(n), g, 8)
			if err != nil {
				t.Fatalf("%s x%d: %v", g.Name, n, err)
			}
			src := graph.PickSources(g, 1, 43)[0]
			res, err := ms.BFS(src)
			if err != nil {
				t.Fatalf("%s x%d: %v", g.Name, n, err)
			}
			if err := ValidateBFS(g, src, res.Values); err != nil {
				t.Errorf("%s x%d: %v", g.Name, n, err)
			}
			ms.Free()
		}
	}
}

func TestMultiSystemValidation(t *testing.T) {
	g := testGraphs()[0]
	if _, err := NewMultiSystem(nil, g, 8); err == nil {
		t.Errorf("empty device list accepted")
	}
	bad := &graph.CSR{Offsets: []int64{0, 3}, Dst: []uint32{0}}
	if _, err := NewMultiSystem(multiDevices(1), bad, 8); err == nil {
		t.Errorf("invalid graph accepted")
	}
	ms, err := NewMultiSystem(multiDevices(2), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.BFS(-1); err == nil {
		t.Errorf("bad source accepted")
	}
}

func TestMultiGPUPartitionBalanced(t *testing.T) {
	g := graph.RMAT("gk", 2048, 16, 0.57, 0.19, 0.19, true, 7)
	ms, err := NewMultiSystem(multiDevices(4), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := g.NumEdges()
	for i := 0; i < 4; i++ {
		lo, hi := ms.Partition(i)
		if lo > hi {
			t.Fatalf("partition %d inverted: [%d, %d)", i, lo, hi)
		}
		var arcs int64
		for v := lo; v < hi; v++ {
			arcs += g.Degree(v)
		}
		// Balanced within a generous factor (hub granularity limits).
		if arcs > total {
			t.Fatalf("partition %d has more arcs than the graph", i)
		}
		if i < 3 && arcs < total/16 {
			t.Errorf("partition %d suspiciously small: %d of %d arcs", i, arcs, total)
		}
	}
	lo0, _ := ms.Partition(0)
	_, hi3 := ms.Partition(3)
	if lo0 != 0 || hi3 != g.NumVertices() {
		t.Errorf("partitions do not cover the vertex set")
	}
}

// TestMultiGPUScalesTraversal: with independent links, two GPUs should
// traverse a large low-locality graph meaningfully faster than one, and
// four faster than two (sub-linear is fine: replica reduction costs grow
// with device count).
func TestMultiGPUScalesTraversal(t *testing.T) {
	g := graph.Urand("gu", 20000, 32, 3)
	src := graph.PickSources(g, 1, 1)[0]
	times := map[int]time.Duration{}
	for _, n := range []int{1, 2, 4} {
		ms, err := NewMultiSystem(multiDevices(n), g, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ms.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Fatal(err)
		}
		times[n] = res.Elapsed
		ms.Free()
	}
	if times[2] >= times[1] {
		t.Errorf("2 GPUs (%v) not faster than 1 (%v)", times[2], times[1])
	}
	if times[4] >= times[2] {
		t.Errorf("4 GPUs (%v) not faster than 2 (%v)", times[4], times[2])
	}
	if sp := float64(times[1]) / float64(times[2]); sp < 1.2 {
		t.Errorf("2-GPU speedup only %.2fx", sp)
	}
}

// TestMultiGPUSingleMatchesPlainValues: a 1-device MultiSystem must give
// the same BFS levels as the plain path.
func TestMultiGPUSingleMatchesPlainValues(t *testing.T) {
	g := testGraphs()[1]
	src := graph.PickSources(g, 1, 5)[0]
	ms, err := NewMultiSystem(multiDevices(1), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := ms.BFS(src)
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	plain, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Values {
		if multi.Values[v] != plain.Values[v] {
			t.Fatalf("values diverge at vertex %d", v)
		}
	}
}

func TestMultiGPUSSSPCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		for _, n := range []int{1, 3} {
			ms, err := NewMultiSystem(multiDevices(n), g, 8)
			if err != nil {
				t.Fatal(err)
			}
			src := graph.PickSources(g, 1, 53)[0]
			res, err := ms.SSSP(src)
			if err != nil {
				t.Fatalf("%s x%d: %v", g.Name, n, err)
			}
			if err := ValidateSSSP(g, src, res.Values); err != nil {
				t.Errorf("%s x%d: %v", g.Name, n, err)
			}
			ms.Free()
		}
	}
}

func TestMultiGPUCCCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		if g.Directed {
			continue
		}
		ms, err := NewMultiSystem(multiDevices(2), g, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ms.CC()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := ValidateCC(g, res.Values); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if res.Source != -1 {
			t.Errorf("CC result should have no source")
		}
		ms.Free()
	}
}

func TestMultiGPUAppValidation(t *testing.T) {
	unweighted := graph.Urand("u", 200, 8, 1)
	ms, err := NewMultiSystem(multiDevices(2), unweighted, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.SSSP(0); err == nil {
		t.Errorf("unweighted multi-GPU SSSP accepted")
	}
	directed := graph.Web("w", 300, 8, 2)
	ms2, err := NewMultiSystem(multiDevices(2), directed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms2.CC(); err == nil {
		t.Errorf("directed multi-GPU CC accepted")
	}
}
