package core

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file implements the paper's §6 compression direction: "while
// maintaining the basic structure of CSR, if each neighbor list can be
// stored into the host memory in a compressed form, these idling resources
// can be utilized to decompress the list without any overall performance
// loss."
//
// Encoding: adjacency lists are already sorted ascending, so each list is
// stored as a 4-byte first destination followed by fixed-width deltas
// (1, 2, or 4 bytes, chosen per list), padded to 4-byte alignment. The
// fixed width keeps decompression a warp-parallel prefix sum — the kind of
// work idle lanes can absorb — rather than a serial varint scan.
//
// The traversal kernel walks the *compressed* byte extent with the same
// merged+aligned 128-byte request discipline as the plain kernel, so the
// PCIe request mix stays optimal while the bytes shrink.

// CompressedDeviceGraph is a graph whose edge list lives compressed in
// pinned host memory.
type CompressedDeviceGraph struct {
	Graph *graph.CSR

	// Offsets is the original element-count offset array (GPU memory).
	Offsets *memsys.Buffer
	// Meta holds one u64 per vertex: byte offset of the vertex's
	// compressed list in Comp, with the delta width code (0:1B, 1:2B,
	// 2:4B) in the top two bits. GPU memory.
	Meta *memsys.Buffer
	// Comp is the compressed edge stream (pinned host memory, zero-copy).
	Comp *memsys.Buffer

	// CompressedBytes and PlainBytes report the compression result
	// (plain = 8-byte elements, the paper's main configuration).
	CompressedBytes int64
	PlainBytes      int64
}

// Ratio returns plain bytes divided by compressed bytes.
func (c *CompressedDeviceGraph) Ratio() float64 {
	if c.CompressedBytes == 0 {
		return 0
	}
	return float64(c.PlainBytes) / float64(c.CompressedBytes)
}

// deltaWidth returns the narrowest fixed width covering every gap of the
// sorted list, and its meta code.
func deltaWidth(list []uint32) (int, uint64) {
	width := 1
	for i := 1; i < len(list); i++ {
		switch d := list[i] - list[i-1]; {
		case d > 0xFFFF:
			return 4, 2
		case d > 0xFF && width < 2:
			width = 2
		}
	}
	if width == 2 {
		return 2, 1
	}
	return 1, 0
}

// UploadCompressed compresses g's edge list and places it on the device:
// offsets and meta in GPU memory, the compressed stream in pinned host
// memory.
func UploadCompressed(dev *gpu.Device, g *graph.CSR) (*CompressedDeviceGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: refusing to compress invalid graph: %w", err)
	}
	n := g.NumVertices()
	arena := dev.Arena()

	// First pass: sizes.
	var total int64
	metaVals := make([]uint64, n)
	for v := 0; v < n; v++ {
		list := g.Neighbors(v)
		if len(list) == 0 {
			metaVals[v] = uint64(total) // empty list: zero extent
			continue
		}
		w, code := deltaWidth(list)
		bytes := int64(4 + (len(list)-1)*w)
		bytes = (bytes + 3) &^ 3 // 4-byte padding
		metaVals[v] = uint64(total) | code<<62
		total += bytes
	}

	offsets, err := arena.Alloc(g.Name+".offsets", memsys.SpaceGPU, int64(n+1)*8, memsys.WithElem(8))
	if err != nil {
		return nil, fmt.Errorf("core: allocating vertex list: %w", err)
	}
	meta, err := arena.Alloc(g.Name+".cmeta", memsys.SpaceGPU, int64(n)*8, memsys.WithElem(8))
	if err != nil {
		return nil, fmt.Errorf("core: allocating compression metadata: %w", err)
	}
	comp, err := arena.Alloc(g.Name+".cedges", memsys.SpaceHostPinned, total, memsys.WithElem(4))
	if err != nil {
		return nil, fmt.Errorf("core: allocating compressed edges: %w", err)
	}
	for v := 0; v <= n; v++ {
		offsets.PutU64(int64(v), uint64(g.Offsets[v]))
	}
	// Second pass: encode.
	for v := 0; v < n; v++ {
		meta.PutU64(int64(v), metaVals[v])
		list := g.Neighbors(v)
		if len(list) == 0 {
			continue
		}
		off := int64(metaVals[v] &^ (3 << 62))
		w := 1 << uint(metaVals[v]>>62)
		binary.LittleEndian.PutUint32(comp.Data[off:], list[0])
		p := off + 4
		for i := 1; i < len(list); i++ {
			d := list[i] - list[i-1]
			switch w {
			case 1:
				comp.Data[p] = byte(d)
			case 2:
				binary.LittleEndian.PutUint16(comp.Data[p:], uint16(d))
			default:
				binary.LittleEndian.PutUint32(comp.Data[p:], d)
			}
			p += int64(w)
		}
	}
	dev.ResetUVMResidency()
	return &CompressedDeviceGraph{
		Graph:           g,
		Offsets:         offsets,
		Meta:            meta,
		Comp:            comp,
		CompressedBytes: total,
		PlainBytes:      g.EdgeListBytes(8),
	}, nil
}

// Free releases the compressed graph's buffers.
func (c *CompressedDeviceGraph) Free(dev *gpu.Device) {
	arena := dev.Arena()
	arena.Free(c.Offsets)
	arena.Free(c.Meta)
	arena.Free(c.Comp)
	dev.ResetUVMResidency()
}

// DecodeList decompresses vertex v's neighbor list from the compressed
// stream (host-side helper used by tests and the kernel's functional
// path).
func (c *CompressedDeviceGraph) DecodeList(v int) []uint32 {
	deg := int(c.Graph.Degree(v))
	if deg == 0 {
		return nil
	}
	metaVal := c.Meta.U64(int64(v))
	off := int64(metaVal &^ (3 << 62))
	w := 1 << uint(metaVal>>62)
	out := make([]uint32, deg)
	out[0] = binary.LittleEndian.Uint32(c.Comp.Data[off:])
	p := off + 4
	for i := 1; i < deg; i++ {
		var d uint32
		switch w {
		case 1:
			d = uint32(c.Comp.Data[p])
		case 2:
			d = uint32(binary.LittleEndian.Uint16(c.Comp.Data[p:]))
		default:
			d = binary.LittleEndian.Uint32(c.Comp.Data[p:])
		}
		out[i] = out[i-1] + d
		p += int64(w)
	}
	return out
}

// BFSCompressed runs merged+aligned BFS over the compressed edge stream.
// Warps stream their vertex's compressed extent with 128-byte-aligned
// requests and decompress with warp-parallel prefix sums (charged as extra
// warp instructions — the "idling resources" of §6).
func BFSCompressed(dev *gpu.Device, cdg *CompressedDeviceGraph, src int) (*Result, error) {
	return BFSCompressedContext(context.Background(), dev, cdg, src)
}

// BFSCompressedContext is BFSCompressed with cooperative cancellation at
// round boundaries (see cancel.go for the contract).
func BFSCompressedContext(ctx context.Context, dev *gpu.Device, cdg *CompressedDeviceGraph, src int) (*Result, error) {
	g := cdg.Graph
	n := g.NumVertices()
	prog := bfsProgram()
	kernel := func(r *engineRound) {
		level, labels, visit := r.level, r.values, r.visit
		r.dev.Launch("bfs/compressed", n, func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(labels, v) != level {
				return
			}
			deg := g.Degree(int(v))
			if deg == 0 {
				return
			}
			metaVal := w.ScalarU64(cdg.Meta, v)
			off := int64(metaVal &^ (3 << 62))
			width := 1 << uint(metaVal>>62)
			bytes := int64(4 + (deg-1)*int64(width))
			bytes = (bytes + 3) &^ 3

			// Traffic: stream the compressed extent as 4-byte words with
			// 128B-aligned warp loads (the merged+aligned discipline over
			// the compressed bytes).
			firstWord := (off / 4) &^ (32 - 1)
			lastWord := (off + bytes + 3) / 4
			for i := firstWord; i < lastWord; i += gpu.WarpSize {
				var idx [gpu.WarpSize]int64
				mask := gpu.MaskNone
				for l := 0; l < gpu.WarpSize; l++ {
					j := i + int64(l)
					if j >= off/4 && j < lastWord {
						idx[l] = j
						mask = mask.Set(l)
					}
				}
				w.Instr(2)
				if mask != gpu.MaskNone {
					w.GatherU32(cdg.Comp, &idx, mask)
				}
			}
			// Decompression: a warp-parallel prefix sum over the deltas,
			// charged as ~1 instruction per 32 decoded elements plus a
			// fixed log-depth scan cost.
			w.Instr(int(deg/gpu.WarpSize) + 5)

			// Functional path: decode and relax, 32 destinations at a time.
			list := cdg.DecodeList(int(v))
			var srcArr, wgt [gpu.WarpSize]uint32
			for l := range srcArr {
				srcArr[l] = prog.push(level)
			}
			for base := 0; base < len(list); base += gpu.WarpSize {
				var dst [gpu.WarpSize]uint32
				mask := gpu.MaskNone
				for l := 0; l < gpu.WarpSize && base+l < len(list); l++ {
					dst[l] = list[base+l]
					mask = mask.Set(l)
				}
				visit(w, mask, &dst, &wgt, &srcArr)
			}
		})
	}
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:      MergedAligned,
		transport:    ZeroCopy,
		graphName:    g.Name,
		labelVariant: "compressed",
		valueName:    "bfs.labels",
		roundName:    "bfs/compressed",
		kernel:       kernel,
	})
}
