package core

import (
	"repro/internal/gpu"
)

// visitFn processes one warp-load of traversed edges. For each active lane
// l: dst[l] is the edge destination, wgt[l] its weight (zero when the walk
// was invoked without weights), and srcVal[l] the caller-supplied value of
// the edge's source vertex (BFS level, SSSP distance, CC label).
type visitFn func(w *gpu.Warp, mask gpu.Mask, dst *[gpu.WarpSize]uint32, wgt, srcVal *[gpu.WarpSize]uint32)

// gatherEdges loads edge destinations at the given indices with the
// device graph's element width.
func gatherEdges(w *gpu.Warp, dg *DeviceGraph, idx *[gpu.WarpSize]int64, mask gpu.Mask) [gpu.WarpSize]uint32 {
	var out [gpu.WarpSize]uint32
	if dg.EdgeBytes == 8 {
		vals := w.GatherU64(dg.Edges, idx, mask)
		for l := 0; l < gpu.WarpSize; l++ {
			if mask.Has(l) {
				out[l] = uint32(vals[l])
			}
		}
		return out
	}
	return w.GatherU32(dg.Edges, idx, mask)
}

// walkMerged traverses vertex v's neighbor list with the whole warp as the
// worker (§4.3.1): each iteration the 32 lanes read 32 consecutive edge
// elements. With aligned set, the start index is first shifted down to the
// closest preceding 128-byte boundary and the underflowed lanes are masked
// off (§4.3.2 / Listing 2) so every request the coalescer emits is
// 128B-aligned.
func walkMerged(w *gpu.Warp, dg *DeviceGraph, v int64, srcVal uint32, aligned, needW bool, visit visitFn) {
	start, end := w.PairU64(dg.Offsets, v)
	if start >= end {
		return
	}
	first := int64(start)
	if aligned {
		first &^= dg.ElemsPerCacheLine() - 1
	}
	// The arrays the visitor sees live in the worker's scratch, not on this
	// frame: visit is an indirect call, so frame-local arrays passed to it
	// would escape and every chunk would allocate (see scratch.go).
	s := scratchOf(w)
	for l := range s.src {
		s.src[l] = srcVal
	}
	if !needW {
		s.wgt = [gpu.WarpSize]uint32{}
	}
	for i := first; i < int64(end); i += gpu.WarpSize {
		var idx [gpu.WarpSize]int64
		mask := gpu.MaskNone
		for l := 0; l < gpu.WarpSize; l++ {
			j := i + int64(l)
			// The aligned variant's underflow guard (Listing 2's
			// `if (i >= start_org)`).
			if j >= int64(start) && j < int64(end) {
				idx[l] = j
				mask = mask.Set(l)
			}
		}
		w.Instr(2) // loop + guard bookkeeping
		if mask == gpu.MaskNone {
			continue
		}
		s.dst = gatherEdges(w, dg, &idx, mask)
		if needW {
			s.wgt = w.GatherU32(dg.Weights, &idx, mask)
		}
		visit(w, mask, &s.dst, &s.wgt, &s.src)
	}
}

// walkStrided traverses 32 vertices with one warp, one thread per vertex
// (Listing 1): lane l owns vertex vbase+l and iterates its neighbor list
// element by element. active masks which lanes have work; srcVals carries
// each lane's source-vertex value.
func walkStrided(w *gpu.Warp, dg *DeviceGraph, vbase int64, active gpu.Mask, srcVals *[gpu.WarpSize]uint32, needW bool, visit visitFn) {
	if active == gpu.MaskNone {
		return
	}
	// Per-lane neighbor list bounds, loaded through the vertex list.
	var idxV, idxV1 [gpu.WarpSize]int64
	for l := 0; l < gpu.WarpSize; l++ {
		if active.Has(l) {
			idxV[l] = vbase + int64(l)
			idxV1[l] = vbase + int64(l) + 1
		}
	}
	starts := w.GatherU64(dg.Offsets, &idxV, active)
	ends := w.GatherU64(dg.Offsets, &idxV1, active)
	maxDeg := int64(0)
	for l := 0; l < gpu.WarpSize; l++ {
		if active.Has(l) {
			if d := int64(ends[l] - starts[l]); d > maxDeg {
				maxDeg = d
			}
		}
	}
	// Same scratch discipline as walkMerged: the visitor-visible arrays
	// must not live on this frame. Callers pass srcVals pointing into the
	// same scratch (or other launch-lived storage), never a frame-local.
	s := scratchOf(w)
	if !needW {
		s.wgt = [gpu.WarpSize]uint32{}
	}
	for j := int64(0); j < maxDeg; j++ {
		var idx [gpu.WarpSize]int64
		mask := gpu.MaskNone
		for l := 0; l < gpu.WarpSize; l++ {
			if active.Has(l) && j < int64(ends[l]-starts[l]) {
				idx[l] = int64(starts[l]) + j
				mask = mask.Set(l)
			}
		}
		w.Instr(2)
		if mask == gpu.MaskNone {
			break
		}
		s.dst = gatherEdges(w, dg, &idx, mask)
		if needW {
			s.wgt = w.GatherU32(dg.Weights, &idx, mask)
		}
		visit(w, mask, &s.dst, &s.wgt, srcVals)
	}
}
