package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file implements direction-optimized BFS (Beamer-style push/pull) on
// top of EMOGI's zero-copy transport — an example of §6's point that
// "several graph traversal specific optimizations... can be added" on top
// of the memory-access contribution. It is the frontier engine's BFS
// program with a direction-switching kernel: the engine still owns the
// round loop; only the per-round launch choice is custom.
//
// Push levels are the paper's merged+aligned scatter. Pull levels invert
// the work: every *unvisited* vertex scans its own neighbor list looking
// for any parent on the current frontier and stops at the first hit. When
// the frontier is a large fraction of the graph (the middle levels of
// social and uniform graphs), the early exit makes pull read far fewer
// edge bytes than push would.
//
// Pull requires the in-edges of a vertex, so it is limited to undirected
// graphs (where out-lists serve), exactly like real direction-optimized
// implementations that run on the symmetrized graph.

// PushPullConfig controls the direction heuristic.
type PushPullConfig struct {
	// PullThreshold switches to pull when the next frontier exceeds this
	// fraction of the vertex set. Beamer's heuristic uses edge counts; the
	// vertex fraction is the simple, robust variant.
	PullThreshold float64
}

// DefaultPushPullConfig returns the standard heuristic.
func DefaultPushPullConfig() PushPullConfig {
	return PushPullConfig{PullThreshold: 0.10}
}

// BFSDirectionOptimized runs push/pull BFS from src over zero-copy memory.
// It returns the same levels as plain BFS; only the traffic differs.
func BFSDirectionOptimized(dev *gpu.Device, dg *DeviceGraph, src int, cfg PushPullConfig) (*Result, error) {
	return BFSDirectionOptimizedContext(context.Background(), dev, dg, src, cfg)
}

// BFSDirectionOptimizedContext is BFSDirectionOptimized with cooperative
// cancellation at round boundaries (see cancel.go for the contract).
func BFSDirectionOptimizedContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, cfg PushPullConfig) (*Result, error) {
	g := dg.Graph
	if g.Directed {
		return nil, fmt.Errorf("core: direction-optimized BFS requires an undirected graph")
	}
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: BFS source %d out of range [0,%d)", src, n)
	}
	if cfg.PullThreshold <= 0 {
		cfg = DefaultPushPullConfig()
	}
	prog := bfsProgram()
	frontier := 1
	kernel := func(r *engineRound) {
		pull := float64(frontier) > cfg.PullThreshold*float64(n)
		if pull {
			launchPullKernel(r.dev, dg, r.values, r.flag, r.level)
		} else {
			launchMatchKernel(r.dev, dg, MergedAligned, "bfs/push", r.values, r.level, prog.push(r.level), r.visit)
		}
	}
	// The next frontier size steers the heuristic. Real implementations
	// keep this count on-device; its readback rides the flag transfer.
	postRound := func(r *engineRound, more bool) {
		if !more {
			return
		}
		frontier = 0
		for v := 0; v < n; v++ {
			if r.values.U32(int64(v)) == r.level+1 {
				frontier++
			}
		}
	}
	// Which levels ran bottom-up is visible in the device's kernel log
	// ("bfs/pull" vs "bfs/push" entries).
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:      MergedAligned,
		transport:    dg.Transport,
		graphName:    g.Name,
		labelVariant: "pushpull",
		valueName:    "dobfs.labels",
		roundName:    "bfs/pushpull",
		dg:           dg,
		kernel:       kernel,
		postRound:    postRound,
	})
}

// launchPullKernel runs one bottom-up level: every unvisited vertex scans
// its list (merged+aligned) for a neighbor at the current level and claims
// level+1 on the first hit — the early exit is where pull saves bytes.
func launchPullKernel(dev *gpu.Device, dg *DeviceGraph, labels, flag *memsys.Buffer, level uint32) {
	n := dg.NumVertices()
	elemsPerLine := dg.ElemsPerCacheLine()
	dev.Launch("bfs/pull", n, func(w *gpu.Warp) {
		v := int64(w.ID())
		if w.ScalarU32(labels, v) != graph.InfDist {
			return
		}
		start, end := w.PairU64(dg.Offsets, v)
		if start >= end {
			return
		}
		first := int64(start) &^ (elemsPerLine - 1)
		for i := first; i < int64(end); i += gpu.WarpSize {
			var idx [gpu.WarpSize]int64
			mask := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				j := i + int64(l)
				if j >= int64(start) && j < int64(end) {
					idx[l] = j
					mask = mask.Set(l)
				}
			}
			w.Instr(2)
			if mask == gpu.MaskNone {
				continue
			}
			dst := gatherEdges(w, dg, &idx, mask)
			var labIdx [gpu.WarpSize]int64
			for l := 0; l < gpu.WarpSize; l++ {
				if mask.Has(l) {
					labIdx[l] = int64(dst[l])
				}
			}
			labs := w.GatherU32(labels, &labIdx, mask)
			for l := 0; l < gpu.WarpSize; l++ {
				if mask.Has(l) && labs[l] == level {
					// Found a frontier parent: claim and stop scanning.
					w.StoreScalarU32(labels, v, level+1)
					w.StoreScalarU32(flag, 0, 1)
					return
				}
			}
		}
	})
}
