package core

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestHybridBFSCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		for _, share := range []float64{0, 0.2, 0.5, 1.0} {
			dev := testDevice()
			h, err := NewHybridSystem(dev, g, 8, DefaultHybridConfig(share))
			if err != nil {
				t.Fatalf("%s share=%v: %v", g.Name, share, err)
			}
			src := graph.PickSources(g, 1, 47)[0]
			res, err := h.BFS(src)
			if err != nil {
				t.Fatalf("%s share=%v: %v", g.Name, share, err)
			}
			if err := ValidateBFS(g, src, res.Values); err != nil {
				t.Errorf("%s share=%v: %v", g.Name, share, err)
			}
			h.Free()
		}
	}
}

func TestHybridValidation(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	if _, err := NewHybridSystem(dev, g, 8, DefaultHybridConfig(-0.1)); err == nil {
		t.Errorf("negative share accepted")
	}
	if _, err := NewHybridSystem(dev, g, 8, DefaultHybridConfig(1.5)); err == nil {
		t.Errorf("share above 1 accepted")
	}
	cfg := DefaultHybridConfig(0.5)
	cfg.CPUScanBytesPerSec = 0
	if _, err := NewHybridSystem(dev, g, 8, cfg); err == nil {
		t.Errorf("zero CPU rate accepted")
	}
	h, err := NewHybridSystem(testDevice(), g, 8, DefaultHybridConfig(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.BFS(-1); err == nil {
		t.Errorf("bad source accepted")
	}
}

func TestHybridSplitTracksShare(t *testing.T) {
	g := graph.Urand("gu", 5000, 16, 1)
	var prev int
	for _, share := range []float64{0, 0.25, 0.5, 1.0} {
		h, err := NewHybridSystem(testDevice(), g, 8, DefaultHybridConfig(share))
		if err != nil {
			t.Fatal(err)
		}
		if h.Split() < prev {
			t.Errorf("split not monotone in share")
		}
		prev = h.Split()
	}
	if prev != g.NumVertices() {
		t.Errorf("share 1.0 should hand the whole graph to the CPU")
	}
	h0, _ := NewHybridSystem(testDevice(), g, 8, DefaultHybridConfig(0))
	if h0.Split() != 0 {
		t.Errorf("share 0 should hand nothing to the CPU")
	}
}

// TestHybridOffloadHelpsUpToAPoint: a small CPU share should beat the
// GPU-only configuration (the CPU's memory-local work is free bandwidth),
// but an overgrown share makes the slow CPU the bottleneck.
func TestHybridOffloadHelpsUpToAPoint(t *testing.T) {
	g := graph.Urand("gu", 30000, 32, 3)
	src := graph.PickSources(g, 1, 1)[0]
	times := map[float64]time.Duration{}
	for _, share := range []float64{0, 0.15, 0.9} {
		h, err := NewHybridSystem(testDevice(), g, 8, DefaultHybridConfig(share))
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.BFS(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Fatal(err)
		}
		times[share] = res.Elapsed
		h.Free()
	}
	if times[0.15] >= times[0] {
		t.Errorf("a modest CPU share should help: %v vs %v", times[0.15], times[0])
	}
	if times[0.9] <= times[0.15] {
		t.Errorf("an overgrown CPU share should hurt: %v vs %v", times[0.9], times[0.15])
	}
}
