package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/gpu"
)

// This file is the algorithm registry: every traversal entry point —
// the paper's applications and the specialty configurations — registered
// under a stable name so callers (core.Run, the public emogi API, the
// emogi and emogi-bench commands, the traversal service) dispatch by name
// instead of hard-coded switches. Registering an Algorithm is the second
// half of adding an app to the frontier engine (the first is its Program
// descriptor; see sswp.go for the worked example).

// Algorithm is one registered traversal entry point.
type Algorithm struct {
	// Name is the registry key (lower-case, stable; the -algo flag value).
	Name string
	// Description is the one-line -algo listing text.
	Description string
	// NeedsWeights marks algorithms that require a weighted graph.
	NeedsWeights bool
	// NeedsUndirected marks algorithms that require an undirected graph.
	NeedsUndirected bool
	// NoSource marks source-free algorithms (src is ignored).
	NoSource bool
	// FixedVariant marks algorithms that ignore the requested kernel
	// variant (specialty kernels with their own access discipline).
	FixedVariant bool
	// Run executes the algorithm on a loaded device graph, stopping at
	// the next round boundary with a *CanceledError when ctx is done.
	// Algorithms with their own edge layout (compressed, edge-centric)
	// build it from dg.Graph internally and release it before returning.
	Run func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error)
	// Batch, when non-nil, advances up to K sources in one batched engine
	// run sharing each edge scan across the lanes (see batch.go). Nil
	// algorithms batch through RunBatchAlgo's sequential fallback.
	Batch func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, specs []BatchSpec, variant Variant) (*BatchOutcome, error)
}

// registry holds the built-in algorithms. It is populated once at init
// and read-only afterwards, so lookups are safe for concurrent use.
var registry = map[string]*Algorithm{}

// RegisterAlgorithm adds an algorithm to the registry. It panics on a
// duplicate or empty name (registration is a program-startup act, like
// flag declaration).
func RegisterAlgorithm(a *Algorithm) {
	if a == nil || a.Name == "" {
		panic("core: RegisterAlgorithm with empty name")
	}
	name := strings.ToLower(a.Name)
	if _, dup := registry[name]; dup {
		panic("core: duplicate algorithm " + name)
	}
	registry[name] = a
}

// LookupAlgorithm returns the named algorithm, or nil if unknown. Names
// are case-insensitive.
func LookupAlgorithm(name string) *Algorithm {
	return registry[strings.ToLower(name)]
}

// Algorithms returns all registered algorithms sorted by name.
func Algorithms() []*Algorithm {
	out := make([]*Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AlgorithmNames returns the sorted registry keys.
func AlgorithmNames() []string {
	algos := Algorithms()
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}

// UnknownAlgorithmError is returned for a name not in the registry. Its
// message lists every valid name so the caller never needs a second
// round-trip to discover them.
type UnknownAlgorithmError struct {
	Name string
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("core: unknown algorithm %q (valid algorithms: %s)",
		e.Name, strings.Join(AlgorithmNames(), ", "))
}

// RunAlgo dispatches a traversal by registry name.
func RunAlgo(dev *gpu.Device, dg *DeviceGraph, name string, src int, variant Variant) (*Result, error) {
	return RunAlgoContext(context.Background(), dev, dg, name, src, variant)
}

// RunAlgoContext dispatches a traversal by registry name with cooperative
// cancellation at round boundaries. An unknown name returns an
// *UnknownAlgorithmError listing the valid names.
func RunAlgoContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, name string, src int, variant Variant) (*Result, error) {
	a := LookupAlgorithm(name)
	if a == nil {
		return nil, &UnknownAlgorithmError{Name: name}
	}
	return a.Run(ctx, dev, dg, src, variant)
}

func init() {
	RegisterAlgorithm(&Algorithm{
		Name:        "bfs",
		Description: "breadth-first search (match-by-level frontier)",
		Run:         BFSContext,
		Batch:       BFSBatchContext,
	})
	RegisterAlgorithm(&Algorithm{
		Name:         "sssp",
		Description:  "single-source shortest path (atomic-min + add)",
		NeedsWeights: true,
		Run:          SSSPContext,
		Batch:        SSSPBatchContext,
	})
	RegisterAlgorithm(&Algorithm{
		Name:            "cc",
		Description:     "connected components (min-label propagation)",
		NeedsUndirected: true,
		NoSource:        true,
		Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, _ int, variant Variant) (*Result, error) {
			return CCContext(ctx, dev, dg, variant)
		},
	})
	RegisterAlgorithm(&Algorithm{
		Name:         "sswp",
		Description:  "single-source widest path (atomic-max + min)",
		NeedsWeights: true,
		Run:          SSWPContext,
		Batch:        SSWPBatchContext,
	})
	for _, lanes := range []int{4, 8, 16} {
		lanes := lanes
		RegisterAlgorithm(&Algorithm{
			Name:         fmt.Sprintf("bfs-worker%d", lanes),
			Description:  fmt.Sprintf("BFS with %d-lane sub-warp workers (§4.3.1 study)", lanes),
			FixedVariant: true,
			Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, _ Variant) (*Result, error) {
				return BFSWithWorkerContext(ctx, dev, dg, src, lanes, true)
			},
		})
	}
	RegisterAlgorithm(&Algorithm{
		Name:         "bfs-balanced",
		Description:  "BFS with hub-list splitting across virtual workers (§6)",
		FixedVariant: true,
		Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, _ Variant) (*Result, error) {
			return BFSBalancedContext(ctx, dev, dg, src, 1024)
		},
	})
	RegisterAlgorithm(&Algorithm{
		Name:            "bfs-pushpull",
		Description:     "direction-optimized BFS (Beamer push/pull)",
		NeedsUndirected: true,
		FixedVariant:    true,
		Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, _ Variant) (*Result, error) {
			return BFSDirectionOptimizedContext(ctx, dev, dg, src, DefaultPushPullConfig())
		},
	})
	RegisterAlgorithm(&Algorithm{
		Name:         "bfs-compressed",
		Description:  "BFS over the delta-compressed edge stream (§6)",
		FixedVariant: true,
		Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, _ Variant) (*Result, error) {
			cdg, err := UploadCompressed(dev, dg.Graph)
			if err != nil {
				return nil, err
			}
			defer cdg.Free(dev)
			return BFSCompressedContext(ctx, dev, cdg, src)
		},
	})
	RegisterAlgorithm(&Algorithm{
		Name:         "bfs-edgecentric",
		Description:  "edge-centric BFS over a COO edge stream (§2.1 contrast)",
		FixedVariant: true,
		Run: func(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, _ Variant) (*Result, error) {
			ec, err := UploadEdgeCentric(dev, dg.Graph)
			if err != nil {
				return nil, err
			}
			defer ec.Free(dev)
			return BFSEdgeCentricContext(ctx, dev, ec, src)
		},
	})
}
