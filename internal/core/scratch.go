package core

import (
	"repro/internal/gpu"
)

// This file holds the engine's per-worker kernel scratch. The warp-size
// arrays a kernel hands to its visitFn would otherwise escape to the heap
// on every call — visitFn is an indirect call, so escape analysis must
// assume the callee retains its pointer arguments — which made every
// traversed edge chunk allocate. Instead, each launch worker keeps one
// warpScratch reachable through gpu.Warp.Local (which the launch machinery
// deliberately preserves across launches, see gpu/launch.go), and kernels
// route all visitor-visible storage through it. A visitor must therefore
// never retain its argument pointers past the call — the same lifetime
// rule CUDA shared memory imposes — and none of the engine's visitors do.
//
// The zero-alloc contract this enables is pinned by the
// TestSteadyStateRound*Allocs tests in allocs_test.go: once a run's first
// round has warmed the scratch, subsequent rounds allocate nothing.
type warpScratch struct {
	// Visitor-visible warp-size arrays for the walk helpers: edge
	// destinations, edge weights, and per-lane source values.
	dst, wgt, src [gpu.WarpSize]uint32

	// Batched-mode per-warp lists, sized to the batch width on first use
	// by a batchRun (owner tracks which run sized them). act and push are
	// the views the batched visitor reads; actBuf/groupBuf/pushBuf are
	// their backing storage.
	owner    *batchRun
	actBuf   []int
	groupBuf []uint32
	pushBuf  []uint32
	act      []int
	push     []uint32
}

// scratchOf returns the worker's scratch, creating it on first use. The
// single allocation per worker happens during the first round and is why
// the allocation contract is phrased over steady-state rounds.
func scratchOf(w *gpu.Warp) *warpScratch {
	if s, ok := w.Local.(*warpScratch); ok {
		return s
	}
	s := &warpScratch{}
	w.Local = s
	return s
}

// batchScratch returns the worker's scratch with the batched-mode lists
// sized for br (capacity k). Resizing happens at most once per worker per
// batch width — never in a steady-state round.
func (br *batchRun) batchScratch(w *gpu.Warp) *warpScratch {
	s := scratchOf(w)
	if s.owner != br {
		s.owner = br
		if cap(s.actBuf) < br.k {
			s.actBuf = make([]int, 0, br.k)
			s.groupBuf = make([]uint32, br.k)
			s.pushBuf = make([]uint32, br.k)
		}
	}
	return s
}
