package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// ssspProgram declares single-source shortest path: a min-lattice monoid
// adding the edge weight, over an explicit active set with round-boundary
// snapshots (the frontier-based Bellman-Ford relaxation of [28, 37] the
// paper builds on).
func ssspProgram() *Program {
	return &Program{
		App:      "SSSP",
		Frontier: FrontierActive,
		Relax:    Monoid{Identity: graph.InfDist, Combine: CombineAdd},
		Weighted: true,
		Init: func(v, src int) uint32 {
			if v == src {
				return 0
			}
			return graph.InfDist
		},
		Seed:     func(v, src int) bool { return v == src },
		Validate: ValidateSSSP,
	}
}

// SSSP runs single-source shortest path from src: each iteration, every
// vertex whose distance improved last round relaxes its outgoing edges;
// the run converges when no distance changes. Edge weights stream from
// host memory alongside the destinations.
//
// Relaxations are bulk-synchronous (Jacobi): each round, active vertices
// read their distance from a device-side snapshot taken at the round
// boundary while atomic-min updates land in the live array — the same
// racy-read/atomic-write structure a real GPU kernel has, with the
// snapshot making the reads independent of warp execution order so runs
// are bit-for-bit reproducible under the parallel launch engine (the
// engine's FrontierActive policy). Intra-round chaining (a warp reusing a
// distance another warp lowered moments earlier) is given up; the fixed
// point is identical, reached in a few more launches.
func SSSP(dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	return SSSPContext(context.Background(), dev, dg, src, variant)
}

// SSSPContext is SSSP with cooperative cancellation at round boundaries
// (see cancel.go for the contract).
func SSSPContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: SSSP source %d out of range [0,%d)", src, n)
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("core: SSSP requires a weighted graph")
	}
	prog := ssspProgram()
	name := "sssp/" + variant.String()
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:     variant,
		transport:   dg.Transport,
		graphName:   dg.Graph.Name,
		valueName:   "sssp.dist",
		snapName:    "sssp.distread",
		activeNames: [2]string{"sssp.active0", "sssp.active1"},
		roundName:   name,
		dg:          dg,
		kernel:      stdActiveKernel(dg, variant, name, prog),
	})
}

// ValidateSSSP checks an SSSP result against the Dijkstra reference.
func ValidateSSSP(g *graph.CSR, src int, values []uint32) error {
	want := graph.RefSSSP(g, src)
	if len(values) != len(want) {
		return fmt.Errorf("core: SSSP result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: SSSP dist[%d] = %d, want %d (src %d)",
				v, values[v], want[v], src)
		}
	}
	return nil
}
