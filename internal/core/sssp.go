package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// SSSP runs single-source shortest path from src using frontier-based
// Bellman-Ford relaxation (the vertex-centric scatter formulation of
// [28, 37] the paper builds on): each iteration, every vertex whose
// distance improved last round relaxes its outgoing edges; the run
// converges when no distance changes. Edge weights stream from host
// memory alongside the destinations.
//
// Relaxations are bulk-synchronous (Jacobi): each round, active vertices
// read their distance from a device-side snapshot taken at the round
// boundary while atomic-min updates land in the live array — the same
// racy-read/atomic-write structure a real GPU kernel has, with the
// snapshot making the reads independent of warp execution order so runs
// are bit-for-bit reproducible under the parallel launch engine.
// Intra-round chaining (a warp reusing a distance another warp lowered
// moments earlier) is given up; the fixed point is identical, reached in
// a few more launches.
func SSSP(dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: SSSP source %d out of range [0,%d)", src, n)
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("core: SSSP requires a weighted graph")
	}
	dev.BeginRun(gpu.RunLabels{App: "SSSP", Variant: variant.String(),
		Transport: dg.Transport.String(), Graph: dg.Graph.Name})
	defer dev.EndRun()
	rs, err := newRunState(dev)
	if err != nil {
		return nil, err
	}
	dist, err := rs.alloc("sssp.dist", int64(n)*4)
	if err != nil {
		return nil, err
	}
	distRead, err := rs.alloc("sssp.distread", int64(n)*4)
	if err != nil {
		return nil, err
	}
	cur, err := rs.alloc("sssp.active0", int64(n)*4)
	if err != nil {
		return nil, err
	}
	next, err := rs.alloc("sssp.active1", int64(n)*4)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		dist.PutU32(int64(v), graph.InfDist)
	}
	dist.PutU32(int64(src), 0)
	cur.PutU32(int64(src), 1)
	dev.CopyToDevice(int64(n) * 4 * 2) // dist + initial frontier upload

	iterations := 0
	for {
		roundStart := dev.Clock()
		rs.clearFlag()
		dev.CopyOnDevice(distRead, dist) // round-boundary snapshot for source reads
		visit := relaxVisitor(dist, next, rs.flag, true)
		launchActiveKernel(dev, dg, variant, "sssp/"+variant.String(), distRead, cur, true, visit)
		iterations++
		more := rs.readFlag()
		dev.EmitRound("sssp/"+variant.String(), iterations-1, roundStart)
		if !more {
			break
		}
		cur, next = next, cur
		dev.Memset(next, 0) // clear the new next-frontier (cudaMemsetAsync)
	}
	return rs.finish("SSSP", variant, dg.Transport, src, dist, n, iterations), nil
}

// ValidateSSSP checks an SSSP result against the Dijkstra reference.
func ValidateSSSP(g *graph.CSR, src int, values []uint32) error {
	want := graph.RefSSSP(g, src)
	if len(values) != len(want) {
		return fmt.Errorf("core: SSSP result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: SSSP dist[%d] = %d, want %d (src %d)",
				v, values[v], want[v], src)
		}
	}
	return nil
}
