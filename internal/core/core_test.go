package core

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// testDevice returns an uncapped device on the calibrated Gen3 link.
func testDevice() *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:     "test-v100",
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

// smallDevice returns a device with a small GPU memory so UVM
// oversubscription paths get exercised.
func smallDevice(memBytes int64) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:     "test-small",
		MemBytes: memBytes,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

// testGraphs returns small instances of every generator family, weighted.
func testGraphs() []*graph.CSR {
	gs := []*graph.CSR{
		graph.RMAT("gk", 512, 10, 0.57, 0.19, 0.19, true, 1),
		graph.Urand("gu", 500, 12, 2),
		graph.Dense("ml", 120, 48, 16, 3),
		graph.Social("fs", 512, 10, 4),
		graph.Web("sk", 600, 14, 5),
	}
	for _, g := range gs {
		g.InitWeights(7, 8, 72)
	}
	return gs
}

var allVariants = []Variant{Naive, Merged, MergedAligned}

func TestVariantAndTransportStrings(t *testing.T) {
	if Naive.String() != "Naive" || Merged.String() != "Merged" ||
		MergedAligned.String() != "Merged+Aligned" {
		t.Errorf("variant names wrong")
	}
	if ZeroCopy.String() != "zerocopy" || UVM.String() != "uvm" {
		t.Errorf("transport names wrong")
	}
	if Variant(9).String() == "" || Transport(9).String() == "" {
		t.Errorf("unknown values should still render")
	}
}

func TestUploadLayout(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if dg.Offsets.Space != memsys.SpaceGPU {
		t.Errorf("vertex list must live in GPU memory (§4.2)")
	}
	if dg.Edges.Space != memsys.SpaceHostPinned {
		t.Errorf("zero-copy edges must be pinned host memory")
	}
	if dg.Weights == nil || dg.Weights.Space != memsys.SpaceHostPinned {
		t.Errorf("weights should follow the edge list's space")
	}
	if dg.ElemsPerCacheLine() != 16 {
		t.Errorf("8B elements: 16 per line, got %d", dg.ElemsPerCacheLine())
	}
	// Data integrity.
	for i := 0; i < 100; i++ {
		if uint32(dg.Edges.U64(int64(i))) != g.Dst[i] {
			t.Fatalf("edge %d corrupted on upload", i)
		}
	}
	dg.Free(dev)

	dgU, err := Upload(dev, g, UVM, 4)
	if err != nil {
		t.Fatalf("Upload UVM: %v", err)
	}
	if dgU.Edges.Space != memsys.SpaceUVM {
		t.Errorf("UVM edges in wrong space")
	}
	if dgU.ElemsPerCacheLine() != 32 {
		t.Errorf("4B elements: 32 per line, got %d", dgU.ElemsPerCacheLine())
	}
	if uint32(dgU.Edges.U32(5)) != g.Dst[5] {
		t.Errorf("4-byte edge upload corrupted")
	}
	dgU.Free(dev)
}

func TestUploadErrors(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	if _, err := Upload(dev, g, ZeroCopy, 6); err == nil {
		t.Errorf("bad element width accepted")
	}
	bad := &graph.CSR{Offsets: []int64{0, 5}, Dst: []uint32{0}}
	if _, err := Upload(dev, bad, ZeroCopy, 8); err == nil {
		t.Errorf("invalid graph accepted")
	}
	tiny := smallDevice(1024) // too small for the vertex list
	if _, err := Upload(tiny, g, ZeroCopy, 8); err == nil {
		t.Errorf("expected GPU OOM for the vertex list")
	}
}

// TestBFSCorrectnessMatrix validates BFS on every graph family, variant,
// and transport against the CPU reference.
func TestBFSCorrectnessMatrix(t *testing.T) {
	for _, g := range testGraphs() {
		for _, transport := range []Transport{ZeroCopy, UVM} {
			dev := testDevice()
			dg, err := Upload(dev, g, transport, 8)
			if err != nil {
				t.Fatalf("%s/%s: upload: %v", g.Name, transport, err)
			}
			src := graph.PickSources(g, 1, 11)[0]
			for _, variant := range allVariants {
				res, err := BFS(dev, dg, src, variant)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if err := ValidateBFS(g, src, res.Values); err != nil {
					t.Errorf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if res.Iterations <= 0 || res.Elapsed <= 0 {
					t.Errorf("%s/%s/%s: degenerate result: %+v",
						g.Name, transport, variant, res)
				}
			}
		}
	}
}

// TestSSSPCorrectnessMatrix validates SSSP against Dijkstra.
func TestSSSPCorrectnessMatrix(t *testing.T) {
	for _, g := range testGraphs() {
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatalf("%s: upload: %v", g.Name, err)
		}
		src := graph.PickSources(g, 1, 13)[0]
		for _, variant := range allVariants {
			res, err := SSSP(dev, dg, src, variant)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, variant, err)
			}
			if err := ValidateSSSP(g, src, res.Values); err != nil {
				t.Errorf("%s/%s: %v", g.Name, variant, err)
			}
		}
	}
}

func TestSSSPUVMTransport(t *testing.T) {
	g := testGraphs()[1]
	dev := testDevice()
	dg, err := Upload(dev, g, UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 13)[0]
	res, err := SSSP(dev, dg, src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSSSP(g, src, res.Values); err != nil {
		t.Error(err)
	}
	if res.Stats.UVMMigrations == 0 {
		t.Errorf("UVM transport should migrate pages")
	}
}

// TestCCCorrectnessMatrix validates CC against union-find on the
// undirected families.
func TestCCCorrectnessMatrix(t *testing.T) {
	for _, g := range testGraphs() {
		if g.Directed {
			continue
		}
		for _, transport := range []Transport{ZeroCopy, UVM} {
			dev := testDevice()
			dg, err := Upload(dev, g, transport, 8)
			if err != nil {
				t.Fatalf("%s: upload: %v", g.Name, err)
			}
			for _, variant := range allVariants {
				res, err := CC(dev, dg, variant)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if err := ValidateCC(g, res.Values); err != nil {
					t.Errorf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if res.Source != -1 {
					t.Errorf("CC result should have no source")
				}
			}
		}
	}
}

func TestCCRejectsDirected(t *testing.T) {
	g := graph.Web("sk", 300, 10, 1)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CC(dev, dg, Merged); err == nil {
		t.Errorf("CC on a directed graph should error")
	}
}

func TestBFSBadSource(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := BFS(dev, dg, -1, Merged); err == nil {
		t.Errorf("negative source accepted")
	}
	if _, err := BFS(dev, dg, g.NumVertices(), Merged); err == nil {
		t.Errorf("out-of-range source accepted")
	}
	if _, err := SSSP(dev, dg, -1, Merged); err == nil {
		t.Errorf("SSSP negative source accepted")
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	g := graph.Urand("u", 200, 8, 1) // no weights
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := SSSP(dev, dg, 0, Merged); err == nil {
		t.Errorf("unweighted SSSP accepted")
	}
}

func TestBFSWith4ByteEdges(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 11)[0]
	res, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, src, res.Values); err != nil {
		t.Error(err)
	}
}

// TestBFSIterationsEqualDepth: the kernel-per-level structure means the
// launch count equals the BFS eccentricity of the source plus the final
// empty round.
func TestBFSIterationsEqualDepth(t *testing.T) {
	g := graph.Urand("u", 400, 8, 3)
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	src := graph.PickSources(g, 1, 1)[0]
	res, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(0)
	for _, l := range graph.RefBFS(g, src) {
		if l != graph.InfDist && l > want {
			want = l
		}
	}
	if res.Iterations != int(want)+1 {
		t.Errorf("iterations = %d, want depth+1 = %d", res.Iterations, want+1)
	}
}

// TestRequestCountOrdering encodes Figure 7: on every graph, the merge
// optimization reduces PCIe request counts and alignment reduces them
// further (or at worst leaves them equal).
func TestRequestCountOrdering(t *testing.T) {
	for _, g := range testGraphs() {
		src := graph.PickSources(g, 1, 17)[0]
		reqs := make(map[Variant]uint64)
		for _, variant := range allVariants {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BFS(dev, dg, src, variant)
			if err != nil {
				t.Fatal(err)
			}
			reqs[variant] = res.Stats.PCIeRequests
		}
		if reqs[Merged] >= reqs[Naive] {
			t.Errorf("%s: merged (%d) should use fewer requests than naive (%d)",
				g.Name, reqs[Merged], reqs[Naive])
		}
		if reqs[MergedAligned] > reqs[Merged] {
			t.Errorf("%s: aligned (%d) should not exceed merged (%d)",
				g.Name, reqs[MergedAligned], reqs[Merged])
		}
	}
}

// TestAlignedRequestSizeShift encodes Figure 5: the aligned variant's
// 128-byte request share must be at least the merged variant's on every
// graph.
func TestAlignedRequestSizeShift(t *testing.T) {
	for _, g := range testGraphs() {
		src := graph.PickSources(g, 1, 19)[0]
		frac := make(map[Variant]float64)
		for _, variant := range []Variant{Naive, Merged, MergedAligned} {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := BFS(dev, dg, src, variant); err != nil {
				t.Fatal(err)
			}
			frac[variant] = dev.Monitor().SizeFraction(128)
		}
		if frac[MergedAligned] < frac[Merged]-1e-9 {
			t.Errorf("%s: aligned 128B share %.3f below merged %.3f",
				g.Name, frac[MergedAligned], frac[Merged])
		}
		if frac[Naive] > 0.1 {
			t.Errorf("%s: naive 128B share %.3f should be near zero", g.Name, frac[Naive])
		}
	}
}

// TestZeroCopyAmplificationBound encodes Figure 10's EMOGI side: the bytes
// EMOGI moves are bounded by a small multiple of the bytes it needs.
func TestZeroCopyAmplificationBound(t *testing.T) {
	for _, g := range testGraphs() {
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.PickSources(g, 1, 23)[0]
		res, err := BFS(dev, dg, src, MergedAligned)
		if err != nil {
			t.Fatal(err)
		}
		reached := graph.ReachableCount(res.Values)
		if reached < 2 {
			continue
		}
		// Upper bound on useful bytes: every arc of the graph once.
		useful := float64(g.NumEdges() * 8)
		amp := float64(res.Stats.PCIePayloadBytes) / useful
		if amp > 2.0 {
			t.Errorf("%s: EMOGI amplification %.2f too high", g.Name, amp)
		}
	}
}

func TestAppDispatcher(t *testing.T) {
	if got := AllApps(); len(got) != 3 || got[0] != AppSSSP || got[1] != AppBFS || got[2] != AppCC {
		t.Errorf("AllApps = %v (want Figure 11 order: SSSP, BFS, CC)", got)
	}
	if AppBFS.String() != "BFS" || AppSSSP.String() != "SSSP" || AppCC.String() != "CC" {
		t.Errorf("app names wrong")
	}
	if App(9).String() == "" {
		t.Errorf("unknown app should still render")
	}
	g := testGraphs()[1]
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 3)[0]
	for _, app := range AllApps() {
		res, err := Run(dev, dg, app, src, Merged)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if err := res.Validate(g); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
	if _, err := Run(dev, dg, App(42), src, Merged); err == nil {
		t.Errorf("unknown app accepted")
	}
	bad := &Result{App: "nope"}
	if err := bad.Validate(g); err == nil {
		t.Errorf("unknown result app validated")
	}
	// Validation catches wrong lengths and wrong values.
	short := &Result{App: "BFS", Source: src, Values: []uint32{1}}
	if err := short.Validate(g); err == nil {
		t.Errorf("short result validated")
	}
	wrong := &Result{App: "CC", Values: make([]uint32, g.NumVertices())}
	for i := range wrong.Values {
		wrong.Values[i] = 7
	}
	if err := wrong.Validate(g); err == nil {
		t.Errorf("wrong CC labels validated")
	}
}

func TestCompressedRatioZero(t *testing.T) {
	var c CompressedDeviceGraph
	if c.Ratio() != 0 {
		t.Errorf("empty compressed graph ratio should be 0")
	}
}
