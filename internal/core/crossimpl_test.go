package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// TestAllBFSImplementationsAgree is the repository's flagship consistency
// check: every BFS implementation — the three paper variants over both
// transports, the sub-warp workers, the balanced, compressed, edge-centric
// and direction-optimized extensions, the multi-GPU engine, and the hybrid
// CPU-GPU engine — must produce byte-identical level arrays on the same
// graph and source. Between them these paths exercise every transport,
// kernel discipline, and coalescing pattern in the simulator.
func TestAllBFSImplementationsAgree(t *testing.T) {
	t.Parallel()
	graphs := []*graph.CSR{
		graph.RMAT("gk", 700, 10, 0.57, 0.19, 0.19, true, 3),
		graph.Urand("gu", 800, 12, 4),
		graph.Dense("ml", 150, 40, 16, 5),
	}
	type impl struct {
		name string
		run  func(g *graph.CSR, src int) ([]uint32, error)
	}
	zc := func(v Variant) func(*graph.CSR, int) ([]uint32, error) {
		return func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFS(dev, dg, src, v)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}
	}
	impls := []impl{
		{"naive", zc(Naive)},
		{"merged", zc(Merged)},
		{"merged+aligned", zc(MergedAligned)},
		{"uvm", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, UVM, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFS(dev, dg, src, Merged)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"4-byte-edges", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 4)
			if err != nil {
				return nil, err
			}
			res, err := BFS(dev, dg, src, MergedAligned)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"worker8", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFSWithWorker(dev, dg, src, 8, true)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"worker16-unaligned", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFSWithWorker(dev, dg, src, 16, false)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"balanced", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFSBalanced(dev, dg, src, 64)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"compressed", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			cdg, err := UploadCompressed(dev, g)
			if err != nil {
				return nil, err
			}
			res, err := BFSCompressed(dev, cdg, src)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"edge-centric", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			ec, err := UploadEdgeCentric(dev, g)
			if err != nil {
				return nil, err
			}
			res, err := BFSEdgeCentric(dev, ec, src)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"direction-optimized", func(g *graph.CSR, src int) ([]uint32, error) {
			dev := testDevice()
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			res, err := BFSDirectionOptimized(dev, dg, src, DefaultPushPullConfig())
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"multi-gpu-3", func(g *graph.CSR, src int) ([]uint32, error) {
			ms, err := NewMultiSystem(multiDevices(3), g, 8)
			if err != nil {
				return nil, err
			}
			defer ms.Free()
			res, err := ms.BFS(src)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
		{"hybrid-0.3", func(g *graph.CSR, src int) ([]uint32, error) {
			h, err := NewHybridSystem(testDevice(), g, 8, DefaultHybridConfig(0.3))
			if err != nil {
				return nil, err
			}
			defer h.Free()
			res, err := h.BFS(src)
			if err != nil {
				return nil, err
			}
			return res.Values, nil
		}},
	}

	for _, g := range graphs {
		src := graph.PickSources(g, 1, 71)[0]
		want := graph.RefBFS(g, src)
		for _, im := range impls {
			t.Run(fmt.Sprintf("%s/%s", g.Name, im.name), func(t *testing.T) {
				got, err := im.run(g, src)
				if err != nil {
					t.Fatalf("%s: %v", im.name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: length %d, want %d", im.name, len(got), len(want))
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s: level[%d] = %d, want %d", im.name, v, got[v], want[v])
					}
				}
			})
		}
	}
}
