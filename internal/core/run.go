package core

import (
	"time"

	"repro/internal/gpu"
)

// Result reports one traversal run: functional output plus the simulated
// performance counters the paper's figures are built from. Every
// application — the paper's three plus any Program registered with the
// frontier engine (see engine.go and registry.go) — produces one.
type Result struct {
	App       string
	Variant   Variant
	Transport Transport
	Source    int

	// Values holds per-vertex output: BFS levels, SSSP distances, SSWP
	// widths, or CC labels (graph.InfDist for unreached vertices of a
	// min-lattice program, the monoid identity in general).
	Values []uint32

	// Iterations is the number of traversal kernel launches (BFS: graph
	// depth from the source, §4.2).
	Iterations int

	// Elapsed is the simulated wall-clock time of the whole run,
	// including per-iteration flag synchronization and result download.
	Elapsed time.Duration

	// Stats is this run's delta of the device counters.
	Stats gpu.KernelStats

	// BatchSize records how many sources shared the engine run that
	// produced this result (see batch.go): zero for single-source runs.
	// Values and Iterations are bit-for-bit what a single-source run
	// returns; Elapsed and Stats describe the shared batched run.
	BatchSize int `json:",omitempty"`

	// Degraded marks a result produced under the service's degradation
	// ladder: after the requested transport policy kept faulting
	// transiently, the run was rerouted onto the static-uvm policy. Set by
	// the serving layer, never by the engine: the values are still exact,
	// only the transport (and therefore the performance counters) differ
	// from what was asked for.
	Degraded bool `json:",omitempty"`

	// Policy names the transport policy that governed the run ("static-zc",
	// "static-uvm", "adaptive"). Empty for entry points that predate the
	// policy layer (hybrid, multi-GPU); Transport then tells the story.
	Policy string `json:",omitempty"`
}
