package core

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/memsys"
)

// Result reports one traversal run: functional output plus the simulated
// performance counters the paper's figures are built from.
type Result struct {
	App       string
	Variant   Variant
	Transport Transport
	Source    int

	// Values holds per-vertex output: BFS levels, SSSP distances, or CC
	// labels (graph.InfDist for unreached vertices).
	Values []uint32

	// Iterations is the number of traversal kernel launches (BFS: graph
	// depth from the source, §4.2).
	Iterations int

	// Elapsed is the simulated wall-clock time of the whole run,
	// including per-iteration flag synchronization and result download.
	Elapsed time.Duration

	// Stats is this run's delta of the device counters.
	Stats gpu.KernelStats
}

// runState carries the shared plumbing of the three applications: the
// convergence flag, the device clock/stat baseline, and per-run GPU
// buffers to free.
type runState struct {
	dev        *gpu.Device
	flag       *memsys.Buffer
	freeList   []*memsys.Buffer
	clockStart time.Duration
	statStart  gpu.KernelStats
}

func newRunState(dev *gpu.Device) (*runState, error) {
	flag, err := dev.Arena().Alloc("flag", memsys.SpaceGPU, 4)
	if err != nil {
		return nil, fmt.Errorf("core: allocating convergence flag: %w", err)
	}
	rs := &runState{
		dev:        dev,
		flag:       flag,
		clockStart: dev.Clock(),
		statStart:  dev.Total(),
	}
	rs.freeList = append(rs.freeList, flag)
	return rs, nil
}

// alloc creates a per-run GPU buffer that finish will release.
func (rs *runState) alloc(name string, size int64) (*memsys.Buffer, error) {
	b, err := rs.dev.Arena().Alloc(name, memsys.SpaceGPU, size)
	if err != nil {
		return nil, fmt.Errorf("core: allocating %s: %w", name, err)
	}
	rs.freeList = append(rs.freeList, b)
	return b, nil
}

// clearFlag resets the convergence flag before a kernel (a 4-byte
// host-to-device write).
func (rs *runState) clearFlag() {
	rs.flag.PutU32(0, 0)
	rs.dev.CopyToDevice(4)
}

// readFlag reads the convergence flag back after a kernel (a 4-byte
// device-to-host read).
func (rs *runState) readFlag() bool {
	rs.dev.CopyToHost(4)
	return rs.flag.U32(0) != 0
}

// finish downloads the n-element 4-byte result array from values, frees
// per-run buffers, and assembles the Result.
func (rs *runState) finish(app string, variant Variant, transport Transport, src int, values *memsys.Buffer, n int, iterations int) *Result {
	rs.dev.CopyToHost(int64(n) * 4)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = values.U32(int64(i))
	}
	for _, b := range rs.freeList {
		rs.dev.Arena().Free(b)
	}
	return &Result{
		App:        app,
		Variant:    variant,
		Transport:  transport,
		Source:     src,
		Values:     out,
		Iterations: iterations,
		Elapsed:    rs.dev.Clock() - rs.clockStart,
		Stats:      rs.dev.Total().Sub(rs.statStart),
	}
}

// relaxVisitor builds the shared edge visitor of all three applications:
// for each traversed edge it computes the candidate value (source value,
// plus the edge weight if addWeight), atomically lowers the destination's
// entry in target, and folds the per-lane success predicate into the
// convergence flag and, when nextActive is non-nil, the next-iteration
// active bitmap.
//
// Parallel-determinism contract: which lane observes its atomic-min
// succeed depends on warp execution order, but whether ANY candidate beat
// a destination's starting value this launch does not (the first lane to
// reach the round's minimum always observes success). The success bits
// therefore feed only commutative ORs, and both stores are issued
// unconditionally — the traffic depends on mask alone, never on race
// outcomes — so results and stats are bit-for-bit identical for any
// worker count (see DESIGN.md, "Parallel execution engine").
func relaxVisitor(target, nextActive, flag *memsys.Buffer, addWeight bool) visitFn {
	return func(w *gpu.Warp, mask gpu.Mask, dst *[gpu.WarpSize]uint32, wgt, srcVal *[gpu.WarpSize]uint32) {
		var idx [gpu.WarpSize]int64
		var val [gpu.WarpSize]uint32
		for l := 0; l < gpu.WarpSize; l++ {
			if !mask.Has(l) {
				continue
			}
			idx[l] = int64(dst[l])
			if addWeight {
				val[l] = srcVal[l] + wgt[l]
			} else {
				val[l] = srcVal[l]
			}
		}
		old := w.AtomicMinU32(target, &idx, &val, mask)
		var bits [gpu.WarpSize]uint32
		anySet := uint32(0)
		for l := 0; l < gpu.WarpSize; l++ {
			if mask.Has(l) && old[l] > val[l] {
				bits[l] = 1
				anySet = 1
			}
		}
		if nextActive != nil {
			w.AtomicOrU32(nextActive, &idx, &bits, mask)
		}
		w.AtomicOrScalarU32(flag, 0, anySet)
	}
}
