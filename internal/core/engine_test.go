package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// recordingTelemetry records run labels and flags any kernel or round
// event that fires outside a labeled run — the invariant the engine
// refactor establishes for every traversal entry point.
type recordingTelemetry struct {
	mu        sync.Mutex
	active    map[*gpu.Device]gpu.RunLabels
	runs      []gpu.RunLabels
	unlabeled []string // "kernel:<name>" / "round:<name>" seen outside a run
}

func newRecordingTelemetry() *recordingTelemetry {
	return &recordingTelemetry{active: map[*gpu.Device]gpu.RunLabels{}}
}

func (r *recordingTelemetry) RunBegin(dev *gpu.Device, labels gpu.RunLabels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active[dev] = labels
	r.runs = append(r.runs, labels)
}

func (r *recordingTelemetry) RunEnd(dev *gpu.Device) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.active, dev)
}

func (r *recordingTelemetry) KernelDone(dev *gpu.Device, ks *gpu.KernelStats, workers, maxWorkers int, start, end time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.active[dev]; !ok {
		r.unlabeled = append(r.unlabeled, "kernel:"+ks.Name)
	}
}

func (r *recordingTelemetry) CopyDone(dev *gpu.Device, toDevice bool, bytes int64, start, end time.Duration) {
	// Bulk copies legitimately happen outside runs (graph upload).
}

func (r *recordingTelemetry) RoundDone(dev *gpu.Device, name string, round int, start, end time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.active[dev]; !ok {
		r.unlabeled = append(r.unlabeled, "round:"+name)
	}
}

// hasRun reports whether a run with the given app and variant label was
// recorded.
func (r *recordingTelemetry) hasRun(app, variant string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.runs {
		if l.App == app && l.Variant == variant {
			return true
		}
	}
	return false
}

// TestEngineTelemetryCoverage drives every traversal entry point —
// built-in applications, specialty kernels, the hybrid CPU-GPU system,
// and the multi-GPU system — under a recording telemetry sink and asserts
// that no kernel launch or traversal round ever fires outside a labeled
// run, and that each entry point announces itself with its own variant
// label.
func TestEngineTelemetryCoverage(t *testing.T) {
	g := graph.Urand("gu", 500, 12, 2)
	g.InitWeights(7, 8, 72)
	src := graph.PickSources(g, 1, 11)[0]
	rec := newRecordingTelemetry()

	dev := testDevice()
	dev.SetTelemetry(rec)
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	singles := []struct {
		app, variant string
		run          func() (*Result, error)
	}{
		{"BFS", "Merged+Aligned", func() (*Result, error) { return BFS(dev, dg, src, MergedAligned) }},
		{"SSSP", "Merged", func() (*Result, error) { return SSSP(dev, dg, src, Merged) }},
		{"CC", "Merged+Aligned", func() (*Result, error) { return CC(dev, dg, MergedAligned) }},
		{"SSWP", "Merged+Aligned", func() (*Result, error) { return SSWP(dev, dg, src, MergedAligned) }},
		{"BFS", "worker8", func() (*Result, error) { return BFSWithWorker(dev, dg, src, 8, true) }},
		{"BFS", "worker16-unaligned", func() (*Result, error) { return BFSWithWorker(dev, dg, src, 16, false) }},
		{"BFS", "balanced", func() (*Result, error) { return BFSBalanced(dev, dg, src, 1024) }},
		{"BFS", "pushpull", func() (*Result, error) { return BFSDirectionOptimized(dev, dg, src, DefaultPushPullConfig()) }},
	}
	for _, s := range singles {
		if _, err := s.run(); err != nil {
			t.Fatalf("%s/%s: %v", s.app, s.variant, err)
		}
		if !rec.hasRun(s.app, s.variant) {
			t.Errorf("no labeled run recorded for %s/%s", s.app, s.variant)
		}
	}

	cdg, err := UploadCompressed(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSCompressed(dev, cdg, src); err != nil {
		t.Fatal(err)
	}
	cdg.Free(dev)
	if !rec.hasRun("BFS", "compressed") {
		t.Errorf("no labeled run recorded for BFS/compressed")
	}
	ec, err := UploadEdgeCentric(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSEdgeCentric(dev, ec, src); err != nil {
		t.Fatal(err)
	}
	ec.Free(dev)
	if !rec.hasRun("BFS", "edgecentric") {
		t.Errorf("no labeled run recorded for BFS/edgecentric")
	}

	hdev := testDevice()
	hdev.SetTelemetry(rec)
	h, err := NewHybridSystem(hdev, g, 8, DefaultHybridConfig(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.BFS(src); err != nil {
		t.Fatal(err)
	}
	h.Free()
	if !rec.hasRun("BFS", "hybrid") {
		t.Errorf("no labeled run recorded for BFS/hybrid")
	}

	devs := []*gpu.Device{testDevice(), testDevice()}
	for _, d := range devs {
		d.SetTelemetry(rec)
	}
	ms, err := NewMultiSystem(devs, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.BFS(src); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.SSSP(src); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.CC(); err != nil {
		t.Fatal(err)
	}
	ms.Free()
	for _, app := range []string{"BFS", "SSSP", "CC"} {
		if !rec.hasRun(app, "multi-gpu") {
			t.Errorf("no labeled run recorded for %s/multi-gpu", app)
		}
	}

	if len(rec.unlabeled) > 0 {
		t.Errorf("events outside a labeled run: %v", rec.unlabeled)
	}
}

// TestEngineMatrix runs every registered algorithm across transports,
// variants, and worker counts, validating each result against its CPU
// reference and asserting the engine's bit-for-bit worker-count
// determinism (identical Values, Iterations, and counters regardless of
// how many host goroutines execute the warps).
func TestEngineMatrix(t *testing.T) {
	g := graph.Urand("gu", 500, 12, 2)
	g.InitWeights(7, 8, 72)
	src := graph.PickSources(g, 1, 11)[0]

	type key struct {
		algo, transport string
		variant         Variant
	}
	type outcome struct {
		values     []uint32
		iterations int
		stats      gpu.KernelStats
	}
	baseline := map[key]outcome{}

	for _, workers := range []int{1, 3} {
		for _, a := range Algorithms() {
			variants := allVariants
			if a.FixedVariant {
				variants = []Variant{MergedAligned}
			}
			for _, transport := range []Transport{ZeroCopy, UVM} {
				dev := gpu.NewDevice(gpu.Config{
					Name:     "matrix",
					Workers:  workers,
					HBM:      memsys.HBM2V100(),
					HostDRAM: memsys.DDR4Quad(),
					Link:     pcie.Gen3x16(),
				})
				dg, err := Upload(dev, g, transport, 8)
				if err != nil {
					t.Fatalf("%s/%s: upload: %v", a.Name, transport, err)
				}
				for _, variant := range variants {
					res, err := a.Run(context.Background(), dev, dg, src, variant)
					if err != nil {
						t.Fatalf("%s/%s/%s w%d: %v", a.Name, transport, variant, workers, err)
					}
					if err := res.Validate(g); err != nil {
						t.Errorf("%s/%s/%s w%d: %v", a.Name, transport, variant, workers, err)
						continue
					}
					k := key{a.Name, transport.String(), variant}
					got := outcome{res.Values, res.Iterations, res.Stats}
					if workers == 1 {
						baseline[k] = got
						continue
					}
					want := baseline[k]
					if got.iterations != want.iterations {
						t.Errorf("%s/%s/%s: iterations diverge across workers: %d vs %d",
							a.Name, transport, variant, got.iterations, want.iterations)
					}
					for v := range want.values {
						if got.values[v] != want.values[v] {
							t.Errorf("%s/%s/%s: values[%d] diverges across workers: %d vs %d",
								a.Name, transport, variant, v, got.values[v], want.values[v])
							break
						}
					}
					if got.stats.PCIeRequests != want.stats.PCIeRequests ||
						got.stats.Warps != want.stats.Warps {
						t.Errorf("%s/%s/%s: counters diverge across workers", a.Name, transport, variant)
					}
				}
				dg.Free(dev)
			}
		}
	}
}

// TestAlgorithmRegistry checks the registry surface: lookup semantics,
// name listing, unknown-name errors, and flag metadata.
func TestAlgorithmRegistry(t *testing.T) {
	names := AlgorithmNames()
	for _, want := range []string{"bfs", "sssp", "cc", "sswp", "bfs-worker8",
		"bfs-balanced", "bfs-pushpull", "bfs-compressed", "bfs-edgecentric"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("AlgorithmNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
	if LookupAlgorithm("BFS") == nil || LookupAlgorithm("bfs") == nil {
		t.Errorf("lookup should be case-insensitive")
	}
	if LookupAlgorithm("nope") != nil {
		t.Errorf("unknown name should return nil")
	}
	if a := LookupAlgorithm("sswp"); a == nil || !a.NeedsWeights {
		t.Errorf("sswp should be registered as weight-requiring")
	}
	if a := LookupAlgorithm("cc"); a == nil || !a.NoSource || !a.NeedsUndirected {
		t.Errorf("cc should be registered source-free and undirected-only")
	}

	g := graph.Urand("gu", 300, 8, 2)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 3)[0]
	if _, err := RunAlgo(dev, dg, "no-such-algo", src, Merged); err == nil {
		t.Errorf("unknown algorithm accepted")
	} else if !strings.Contains(err.Error(), "no-such-algo") {
		t.Errorf("error should name the unknown algorithm: %v", err)
	}
	res, err := RunAlgo(dev, dg, "BFS", src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g); err != nil {
		t.Error(err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate registration should panic")
			}
		}()
		RegisterAlgorithm(&Algorithm{Name: "bfs", Run: BFSContext})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("empty-name registration should panic")
			}
		}()
		RegisterAlgorithm(&Algorithm{})
	}()
}

// TestSSWPCorrectnessMatrix validates the descriptor-only SSWP
// application against the widest-path Dijkstra reference on every graph
// family, variant, and transport.
func TestSSWPCorrectnessMatrix(t *testing.T) {
	for _, g := range testGraphs() {
		for _, transport := range []Transport{ZeroCopy, UVM} {
			dev := testDevice()
			dg, err := Upload(dev, g, transport, 8)
			if err != nil {
				t.Fatalf("%s/%s: upload: %v", g.Name, transport, err)
			}
			src := graph.PickSources(g, 1, 29)[0]
			for _, variant := range allVariants {
				res, err := SSWP(dev, dg, src, variant)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if err := ValidateSSWP(g, src, res.Values); err != nil {
					t.Errorf("%s/%s/%s: %v", g.Name, transport, variant, err)
				}
				if res.Values[src] != graph.InfDist {
					t.Errorf("%s: source width should be InfDist (empty path)", g.Name)
				}
			}
			dg.Free(dev)
		}
	}
}

func TestSSWPErrors(t *testing.T) {
	g := graph.Urand("u", 200, 8, 1) // no weights
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := SSWP(dev, dg, 0, Merged); err == nil {
		t.Errorf("unweighted SSWP accepted")
	}
	if _, err := SSWP(dev, dg, -1, Merged); err == nil {
		t.Errorf("negative source accepted")
	}
	if _, err := SSWP(dev, dg, g.NumVertices(), Merged); err == nil {
		t.Errorf("out-of-range source accepted")
	}
}

// FuzzEngineConvergence fuzzes the engine's fixed-point loop: random
// graphs and sources across all four Program descriptors must converge
// to exactly the CPU reference in a bounded number of rounds.
func FuzzEngineConvergence(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(4), uint8(0))
	f.Add(int64(2), uint16(200), uint8(8), uint8(1))
	f.Add(int64(3), uint16(33), uint8(2), uint8(2))
	f.Add(int64(4), uint16(150), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nv uint16, deg uint8, algoIdx uint8) {
		n := int(nv)%300 + 2
		avgDeg := int(deg)%8 + 1
		g := graph.Urand("fuzz", n, avgDeg, seed)
		g.InitWeights(seed+1, 1, 64)
		srcs := graph.PickSources(g, 1, seed)
		if srcs == nil {
			t.Skip("no vertex with outgoing edges")
		}
		src := srcs[0]
		algos := []string{"bfs", "sssp", "cc", "sswp"}
		a := LookupAlgorithm(algos[int(algoIdx)%len(algos)])
		if a.NeedsUndirected && g.Directed {
			t.Skip("directed graph for undirected-only algorithm")
		}
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(context.Background(), dev, dg, src, Merged)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(g); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		// Fixed point must be reached in at most n+1 rounds (every round
		// before the last improves at least one vertex value).
		if res.Iterations < 1 || res.Iterations > n+1 {
			t.Errorf("%s: implausible round count %d for %d vertices",
				a.Name, res.Iterations, n)
		}
	})
}
