package core

import (
	"testing"

	"repro/internal/graph"
)

func TestBFSWithWorkerCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		src := graph.PickSources(g, 1, 29)[0]
		for _, worker := range []int{4, 8, 16, 32} {
			for _, aligned := range []bool{false, true} {
				dev := testDevice()
				dg, err := Upload(dev, g, ZeroCopy, 8)
				if err != nil {
					t.Fatal(err)
				}
				res, err := BFSWithWorker(dev, dg, src, worker, aligned)
				if err != nil {
					t.Fatalf("%s worker=%d aligned=%v: %v", g.Name, worker, aligned, err)
				}
				if err := ValidateBFS(g, src, res.Values); err != nil {
					t.Errorf("%s worker=%d aligned=%v: %v", g.Name, worker, aligned, err)
				}
			}
		}
	}
}

func TestBFSWithWorkerBadArgs(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := BFSWithWorker(dev, dg, 0, 5, true); err == nil {
		t.Errorf("worker size 5 accepted")
	}
	if _, err := BFSWithWorker(dev, dg, -1, 8, true); err == nil {
		t.Errorf("bad source accepted")
	}
}

// TestWorkerSizeRequestShrink encodes §4.3.1's argument: smaller workers
// produce smaller maximum requests, so on a long-list graph the request
// count rises as the worker shrinks.
func TestWorkerSizeRequestShrink(t *testing.T) {
	g := graph.Dense("ml", 200, 96, 48, 3)
	g.InitWeights(1, 8, 72)
	src := graph.PickSources(g, 1, 1)[0]
	var prevReqs uint64
	for _, worker := range []int{32, 16, 8, 4} {
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BFSWithWorker(dev, dg, src, worker, true)
		if err != nil {
			t.Fatal(err)
		}
		if prevReqs != 0 && res.Stats.PCIeRequests < prevReqs {
			t.Errorf("worker %d: requests %d below larger worker's %d",
				worker, res.Stats.PCIeRequests, prevReqs)
		}
		prevReqs = res.Stats.PCIeRequests
	}
}

// TestWorker32MatchesMergedAligned: the 32-lane worker is the
// MergedAligned variant; its zero-copy traffic must agree closely.
func TestWorker32MatchesMergedAligned(t *testing.T) {
	g := testGraphs()[0]
	src := graph.PickSources(g, 1, 31)[0]

	devA := testDevice()
	dgA, _ := Upload(devA, g, ZeroCopy, 8)
	a, err := BFSWithWorker(devA, dgA, src, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	devB := testDevice()
	dgB, _ := Upload(devB, g, ZeroCopy, 8)
	b, err := BFS(devB, dgB, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	// The edge-list gather traffic must be identical; label traffic
	// differs slightly (grouped label reads), so compare edge requests via
	// payload bytes within a small tolerance.
	ra := float64(a.Stats.PCIePayloadBytes)
	rb := float64(b.Stats.PCIePayloadBytes)
	if ra < 0.95*rb || ra > 1.05*rb {
		t.Errorf("worker-32 payload %v deviates from MergedAligned %v", ra, rb)
	}
}

func TestBFSBalancedCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		src := graph.PickSources(g, 1, 37)[0]
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BFSBalanced(dev, dg, src, 128)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestBFSBalancedBadArgs(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	dg, _ := Upload(dev, g, ZeroCopy, 8)
	if _, err := BFSBalanced(dev, dg, 0, 16); err == nil {
		t.Errorf("split below warp size accepted")
	}
	if _, err := BFSBalanced(dev, dg, -1, 128); err == nil {
		t.Errorf("bad source accepted")
	}
}

// TestBalancedShortensCriticalPath: on a star graph (one huge hub list),
// splitting bounds the per-worker host request maximum and the run is not
// slower than the unbalanced kernel.
func TestBalancedShortensCriticalPath(t *testing.T) {
	const n = 4096
	edges := make([]graph.Edge, 0, n-1)
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v})
	}
	g := graph.FromEdges("star", n, edges, false)

	devPlain := testDevice()
	dgPlain, _ := Upload(devPlain, g, ZeroCopy, 8)
	plain, err := BFS(devPlain, dgPlain, 0, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	devBal := testDevice()
	dgBal, _ := Upload(devBal, g, ZeroCopy, 8)
	bal, err := BFSBalanced(devBal, dgBal, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, 0, bal.Values); err != nil {
		t.Fatal(err)
	}
	if bal.Stats.MaxWarpHostReqs >= plain.Stats.MaxWarpHostReqs {
		t.Errorf("balancing should cut the critical path: %d vs %d",
			bal.Stats.MaxWarpHostReqs, plain.Stats.MaxWarpHostReqs)
	}
	if bal.Elapsed > plain.Elapsed {
		t.Errorf("balanced run slower on a hub graph: %v vs %v",
			bal.Elapsed, plain.Elapsed)
	}
	// Traffic is unchanged: same bytes over the link.
	if bal.Stats.PCIePayloadBytes != plain.Stats.PCIePayloadBytes {
		t.Errorf("balancing changed traffic: %d vs %d",
			bal.Stats.PCIePayloadBytes, plain.Stats.PCIePayloadBytes)
	}
}
