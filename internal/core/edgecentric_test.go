package core

import (
	"testing"

	"repro/internal/graph"
)

func TestEdgeCentricCOOLayout(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	ec, err := UploadEdgeCentric(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Free(dev)
	// Spot-check COO pairs against CSR.
	i := int64(0)
	for v := 0; v < g.NumVertices() && i < 500; v++ {
		for _, u := range g.Neighbors(v) {
			if ec.Src.U32(i) != uint32(v) || ec.Dst.U32(i) != u {
				t.Fatalf("COO pair %d = (%d, %d), want (%d, %d)",
					i, ec.Src.U32(i), ec.Dst.U32(i), v, u)
			}
			i++
		}
	}
}

func TestBFSEdgeCentricCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		dev := testDevice()
		ec, err := UploadEdgeCentric(dev, g)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.PickSources(g, 1, 59)[0]
		res, err := BFSEdgeCentric(dev, ec, src)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		ec.Free(dev)
	}
}

func TestBFSEdgeCentricBadSource(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	ec, _ := UploadEdgeCentric(dev, g)
	if _, err := BFSEdgeCentric(dev, ec, -1); err == nil {
		t.Errorf("bad source accepted")
	}
}

func TestUploadEdgeCentricInvalid(t *testing.T) {
	bad := &graph.CSR{Offsets: []int64{0, 5}, Dst: []uint32{0}}
	dev := testDevice()
	if _, err := UploadEdgeCentric(dev, bad); err == nil {
		t.Errorf("invalid graph accepted")
	}
}

// TestEdgeCentricStreamsEverything encodes the method's defining cost: the
// bytes moved grow with iterations x |E|, so on a multi-level traversal it
// moves far more than the vertex-centric scatter — §2.1's reason EMOGI is
// vertex-centric.
func TestEdgeCentricStreamsEverything(t *testing.T) {
	g := testGraphs()[0] // skewed graph, several BFS levels
	src := graph.PickSources(g, 1, 61)[0]

	devE := testDevice()
	ec, err := UploadEdgeCentric(devE, g)
	if err != nil {
		t.Fatal(err)
	}
	edgeRes, err := BFSEdgeCentric(devE, ec, src)
	if err != nil {
		t.Fatal(err)
	}

	devV := testDevice()
	dg, err := Upload(devV, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	vertRes, err := BFS(devV, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}

	// Per iteration, edge-centric must stream ~|E| * 8 bytes (two 4B
	// columns); the source column alone is always fully read.
	minPerIter := uint64(g.NumEdges() * 4)
	if edgeRes.Stats.PCIePayloadBytes < minPerIter*uint64(edgeRes.Iterations) {
		t.Errorf("edge-centric moved %d bytes over %d iterations, below the %d floor",
			edgeRes.Stats.PCIePayloadBytes, edgeRes.Iterations,
			minPerIter*uint64(edgeRes.Iterations))
	}
	// With >2 levels it must move more total bytes than vertex-centric,
	// despite its perfect request shapes.
	if edgeRes.Iterations > 2 &&
		edgeRes.Stats.PCIePayloadBytes <= vertRes.Stats.PCIePayloadBytes {
		t.Errorf("edge-centric (%d bytes) should out-stream vertex-centric (%d bytes)",
			edgeRes.Stats.PCIePayloadBytes, vertRes.Stats.PCIePayloadBytes)
	}
	// And its requests are mostly 128B (the source column is perfectly
	// sequential; the destination column is gathered under sparse masks).
	frac := devE.Monitor().SizeFraction(128)
	if frac < 0.8 {
		t.Errorf("edge-centric 128B share = %.2f, want > 0.8", frac)
	}
}
