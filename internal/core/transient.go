package core

import (
	"fmt"

	"repro/internal/fault"
)

// TransientError reports a traversal aborted because the fault injector
// failed one or more of its zero-copy read completions. Like cancellation,
// the abort lands at a round boundary — the faulted round runs to
// completion (a real device cannot abandon an in-flight kernel) and the
// engine checks the device's fault tally before starting the next one — so
// the same abort paths run: every per-run buffer is freed, loaded device
// graphs stay intact, and the same graph is immediately re-traversable.
// Because fault decisions are keyed by the device's run epoch, a retry is
// a fresh draw, not a deterministic replay of the same faults.
//
// TransientError matches fault.ErrTransient via errors.Is; the service
// layer uses that to distinguish retryable runs from hard failures.
type TransientError struct {
	// App is the Program's application label ("BFS", "SSSP", ...).
	App string
	// Rounds is how many relaxation rounds completed before the abort
	// (including the faulted one).
	Rounds int
	// Faults is how many read completions were injected as failed during
	// this run.
	Faults uint64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("core: %s traversal aborted after %d round(s): %d transient read fault(s) injected",
		e.App, e.Rounds, e.Faults)
}

// Is matches the fault.ErrTransient sentinel.
func (e *TransientError) Is(target error) bool { return target == fault.ErrTransient }
