package core

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// This file implements the paper's §3.3 toy example: the GPU traverses a
// large 1D array of 4-byte elements living in external memory and copies
// it into GPU global memory, under three access disciplines. The resulting
// request patterns are Figure 3; the achieved PCIe and DRAM bandwidths are
// Figure 4.

// ToyPattern selects the toy kernel's access discipline.
type ToyPattern int

const (
	// ToyStrided has each thread iterate over its own contiguous chunk,
	// Figure 3(a): a new 32B request per 32B boundary crossing per lane.
	ToyStrided ToyPattern = iota
	// ToyMergedAligned has each warp read 32 consecutive elements starting
	// on a 128B boundary, Figure 3(b): single 128B requests.
	ToyMergedAligned
	// ToyMergedMisaligned shifts every warp 32 bytes off the 128B
	// boundary, Figure 3(c): a 96B + 32B request pair per warp read.
	ToyMergedMisaligned
)

// String names the pattern as in the paper's figures.
func (p ToyPattern) String() string {
	switch p {
	case ToyStrided:
		return "Strided"
	case ToyMergedAligned:
		return "Merged and Aligned"
	case ToyMergedMisaligned:
		return "Merged but Misaligned"
	default:
		return fmt.Sprintf("ToyPattern(%d)", int(p))
	}
}

// ToyResult reports one toy traversal: the achieved bandwidths and the
// observed request stream.
type ToyResult struct {
	Pattern   ToyPattern
	Transport Transport
	Elems     int

	Elapsed time.Duration
	// PCIeBandwidth is useful payload bytes per second over the link.
	PCIeBandwidth float64
	// DRAMBandwidth is host DRAM bytes served per second (≥ PCIe payload
	// because of the 64-byte minimum DDR4 burst).
	DRAMBandwidth float64
	Snapshot      pcie.Snapshot
	Stats         gpu.KernelStats
}

// toyChunkElems is each thread's chunk length in the strided pattern: 64
// four-byte elements (256 bytes, 8 sectors) per thread.
const toyChunkElems = 64

// ToyTraverse runs the §3.3 toy kernel over an array of elems 4-byte
// elements in the given transport's memory, copying it to GPU memory.
// elems is rounded up to a whole number of warp tiles.
func ToyTraverse(dev *gpu.Device, elems int, pattern ToyPattern, transport Transport) (*ToyResult, error) {
	const laneElems = gpu.WarpSize // elements one warp covers per load (4B each: 128B)
	tile := gpu.WarpSize * toyChunkElems
	if elems < tile {
		elems = tile
	}
	if rem := elems % tile; rem != 0 {
		elems += tile - rem
	}
	space := memsys.SpaceHostPinned
	if transport == UVM {
		space = memsys.SpaceUVM
	}
	arena := dev.Arena()
	// The misaligned pattern needs one extra line of slack at the end.
	in, err := arena.Alloc("toy.in", space, int64(elems)*4+memsys.CacheLineBytes, memsys.WithElem(4))
	if err != nil {
		return nil, fmt.Errorf("core: allocating toy input: %w", err)
	}
	out, err := arena.Alloc("toy.out", memsys.SpaceGPU, int64(elems)*4+memsys.CacheLineBytes, memsys.WithElem(4))
	if err != nil {
		arena.Free(in)
		return nil, fmt.Errorf("core: allocating toy output: %w", err)
	}
	defer func() {
		arena.Free(in)
		arena.Free(out)
		dev.ResetUVMResidency()
	}()
	if transport == UVM {
		dev.ResetUVMResidency()
	}
	for i := 0; i < elems; i++ {
		in.PutU32(int64(i), uint32(i))
	}

	warps := elems / tile
	dev.BeginRun(gpu.RunLabels{App: "toy", Variant: pattern.String(),
		Transport: transport.String(), Graph: "1d-array"})
	defer dev.EndRun()
	clock0 := dev.Clock()
	stats0 := dev.Total()
	mon0 := dev.Monitor().Snapshot()

	var ks *gpu.KernelStats
	switch pattern {
	case ToyStrided:
		ks = dev.Launch("toy/strided", warps, func(w *gpu.Warp) {
			// Lane l owns chunk [base + l*chunk, base + (l+1)*chunk).
			base := int64(w.ID()) * int64(tile)
			var idx [gpu.WarpSize]int64
			var val [gpu.WarpSize]uint32
			for j := 0; j < toyChunkElems; j++ {
				for l := 0; l < gpu.WarpSize; l++ {
					idx[l] = base + int64(l*toyChunkElems+j)
				}
				vals := w.GatherU32(in, &idx, gpu.MaskFull)
				copy(val[:], vals[:])
				w.ScatterU32(out, &idx, &val, gpu.MaskFull)
			}
		})
	case ToyMergedAligned, ToyMergedMisaligned:
		shift := int64(0)
		if pattern == ToyMergedMisaligned {
			shift = 8 // 8 x 4B = 32B off the 128B boundary
		}
		ks = dev.Launch("toy/"+pattern.String(), warps, func(w *gpu.Warp) {
			base := int64(w.ID())*int64(tile) + shift
			var idx [gpu.WarpSize]int64
			var val [gpu.WarpSize]uint32
			for j := 0; j < tile; j += laneElems {
				for l := 0; l < gpu.WarpSize; l++ {
					idx[l] = base + int64(j) + int64(l)
				}
				vals := w.GatherU32(in, &idx, gpu.MaskFull)
				copy(val[:], vals[:])
				w.ScatterU32(out, &idx, &val, gpu.MaskFull)
			}
		})
	default:
		return nil, fmt.Errorf("core: unknown toy pattern %d", pattern)
	}

	elapsed := dev.Clock() - clock0
	kernelTime := ks.Elapsed - dev.Config().LaunchOverhead
	res := &ToyResult{
		Pattern:   pattern,
		Transport: transport,
		Elems:     elems,
		Elapsed:   elapsed,
		Stats:     dev.Total().Sub(stats0),
	}
	snap := dev.Monitor().Snapshot()
	res.Snapshot = subtractSnapshots(snap, mon0)
	if kernelTime > 0 {
		res.PCIeBandwidth = float64(res.Stats.PCIePayloadBytes) / kernelTime.Seconds()
		res.DRAMBandwidth = float64(res.Stats.HostDRAMBytes) / kernelTime.Seconds()
	}
	return res, nil
}

// subtractSnapshots returns the delta of two monitor snapshots.
func subtractSnapshots(now, before pcie.Snapshot) pcie.Snapshot {
	by := make(map[int64]uint64)
	for k, v := range now.BySize {
		if d := v - before.BySize[k]; d > 0 {
			by[k] = d
		}
	}
	return pcie.Snapshot{
		Requests:     now.Requests - before.Requests,
		PayloadBytes: now.PayloadBytes - before.PayloadBytes,
		WireBytes:    now.WireBytes - before.WireBytes,
		BySize:       by,
		AvgBandwidth: now.AvgBandwidth,
	}
}
