package core

import (
	"fmt"
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// This file is the serial-vs-parallel equivalence suite for the gpu
// package's parallel launch engine: every simulated quantity — functional
// values, iteration counts, elapsed simulated time, and the full
// per-run KernelStats delta — must be bit-for-bit identical whether a
// kernel's warps run on one worker goroutine or eight. Workers=8 is forced
// explicitly (GOMAXPROCS may be 1 on small CI hosts, which would silently
// test nothing).

// workerDevice returns an uncapped device on the calibrated Gen3 link with
// the given per-launch worker count.
func workerDevice(workers int) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:     fmt.Sprintf("test-v100-w%d", workers),
		Workers:  workers,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
}

// equivGraphs builds two of the paper's Table 2 dataset analogs, small
// enough to sweep the full app x transport x variant matrix quickly.
func equivGraphs(t *testing.T) []*graph.CSR {
	t.Helper()
	gs := make([]*graph.CSR, 0, 2)
	for _, sym := range []string{"GK", "GU"} {
		spec, err := graph.BySym(sym)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, spec.Build(0.02, 42))
	}
	return gs
}

// assertResultsEqual fails unless the two runs match in every field the
// simulator reports.
func assertResultsEqual(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if len(serial.Values) != len(parallel.Values) {
		t.Fatalf("value lengths differ: %d vs %d", len(serial.Values), len(parallel.Values))
	}
	for v := range serial.Values {
		if serial.Values[v] != parallel.Values[v] {
			t.Fatalf("values[%d] differ: serial %d, parallel %d", v, serial.Values[v], parallel.Values[v])
		}
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("iterations differ: serial %d, parallel %d", serial.Iterations, parallel.Iterations)
	}
	if serial.Elapsed != parallel.Elapsed {
		t.Errorf("elapsed differs: serial %v, parallel %v", serial.Elapsed, parallel.Elapsed)
	}
	if serial.Stats != parallel.Stats {
		t.Errorf("kernel stats differ:\nserial:   %+v\nparallel: %+v", serial.Stats, parallel.Stats)
	}
}

// TestSerialParallelEquivalence sweeps all three applications over both
// transports and all three kernel variants on two Table 2 datasets,
// asserting Workers=1 and Workers=8 agree exactly.
func TestSerialParallelEquivalence(t *testing.T) {
	graphs := equivGraphs(t)
	for _, g := range graphs {
		src := graph.PickSources(g, 1, 71)[0]
		for _, transport := range []Transport{ZeroCopy, UVM} {
			for _, variant := range allVariants {
				for _, app := range []App{AppBFS, AppSSSP, AppCC} {
					name := fmt.Sprintf("%s/%s/%s/%s", g.Name, transport, variant, app)
					t.Run(name, func(t *testing.T) {
						run := func(workers int) *Result {
							dev := workerDevice(workers)
							dg, err := Upload(dev, g, transport, 8)
							if err != nil {
								t.Fatal(err)
							}
							res, err := Run(dev, dg, app, src, variant)
							if err != nil {
								t.Fatal(err)
							}
							if err := res.Validate(g); err != nil {
								t.Fatal(err)
							}
							return res
						}
						assertResultsEqual(t, run(1), run(8))
					})
				}
			}
		}
	}
}

// TestSerialParallelEquivalenceExtensions covers the traversal extensions
// beyond the paper's core matrix — sub-warp workers, balanced scheduling,
// compressed edges, edge-centric streaming, direction-optimized BFS, and
// the hybrid CPU-GPU engine — so every parallel-eligible kernel body in
// the repository gets serial-vs-parallel (and, under -race, data-race)
// coverage.
func TestSerialParallelEquivalenceExtensions(t *testing.T) {
	g := equivGraphs(t)[0]
	src := graph.PickSources(g, 1, 71)[0]
	impls := []struct {
		name string
		run  func(dev *gpu.Device) (*Result, error)
	}{
		{"worker8", func(dev *gpu.Device) (*Result, error) {
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSWithWorker(dev, dg, src, 8, true)
		}},
		{"balanced", func(dev *gpu.Device) (*Result, error) {
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSBalanced(dev, dg, src, 64)
		}},
		{"compressed", func(dev *gpu.Device) (*Result, error) {
			cdg, err := UploadCompressed(dev, g)
			if err != nil {
				return nil, err
			}
			return BFSCompressed(dev, cdg, src)
		}},
		{"edge-centric", func(dev *gpu.Device) (*Result, error) {
			ec, err := UploadEdgeCentric(dev, g)
			if err != nil {
				return nil, err
			}
			return BFSEdgeCentric(dev, ec, src)
		}},
		{"direction-optimized", func(dev *gpu.Device) (*Result, error) {
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				return nil, err
			}
			return BFSDirectionOptimized(dev, dg, src, DefaultPushPullConfig())
		}},
		{"hybrid-0.3", func(dev *gpu.Device) (*Result, error) {
			h, err := NewHybridSystem(dev, g, 8, DefaultHybridConfig(0.3))
			if err != nil {
				return nil, err
			}
			defer h.Free()
			return h.BFS(src)
		}},
		{"toy-strided", func(dev *gpu.Device) (*Result, error) {
			tr, err := ToyTraverse(dev, 1<<14, ToyStrided, ZeroCopy)
			if err != nil {
				return nil, err
			}
			return &Result{App: "toy", Elapsed: tr.Elapsed, Stats: tr.Stats}, nil
		}},
	}
	want := graph.RefBFS(g, src)
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			run := func(workers int) *Result {
				res, err := im.run(workerDevice(workers))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, parallel := run(1), run(8)
			if im.name != "toy-strided" {
				for v := range want {
					if serial.Values[v] != want[v] {
						t.Fatalf("serial run wrong: level[%d] = %d, want %d", v, serial.Values[v], want[v])
					}
				}
			}
			assertResultsEqual(t, serial, parallel)
		})
	}
}
