package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// App identifies one of the paper's three graph traversal applications.
// It survives as a typed convenience over the algorithm registry
// (registry.go), which is the general dispatch surface and also names the
// specialty traversals and post-paper applications like SSWP.
type App int

const (
	// AppBFS is breadth-first search.
	AppBFS App = iota
	// AppSSSP is single-source shortest path.
	AppSSSP
	// AppCC is connected components.
	AppCC
)

// String returns the paper's abbreviation for the application.
func (a App) String() string {
	switch a {
	case AppBFS:
		return "BFS"
	case AppSSSP:
		return "SSSP"
	case AppCC:
		return "CC"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// AllApps returns the applications in the paper's Figure 11 order.
func AllApps() []App { return []App{AppSSSP, AppBFS, AppCC} }

// Run dispatches to the requested application through the algorithm
// registry. src is ignored for CC.
func Run(dev *gpu.Device, dg *DeviceGraph, app App, src int, variant Variant) (*Result, error) {
	return RunContext(context.Background(), dev, dg, app, src, variant)
}

// RunContext is Run with cooperative cancellation at round boundaries.
func RunContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, app App, src int, variant Variant) (*Result, error) {
	switch app {
	case AppBFS, AppSSSP, AppCC:
		return RunAlgoContext(ctx, dev, dg, strings.ToLower(app.String()), src, variant)
	default:
		return nil, fmt.Errorf("core: unknown application %d", int(app))
	}
}

// Validate checks a result's Values against the CPU reference for its app.
func (r *Result) Validate(g *graph.CSR) error {
	switch r.App {
	case "BFS":
		return ValidateBFS(g, r.Source, r.Values)
	case "SSSP":
		return ValidateSSSP(g, r.Source, r.Values)
	case "SSWP":
		return ValidateSSWP(g, r.Source, r.Values)
	case "CC":
		return ValidateCC(g, r.Values)
	default:
		return fmt.Errorf("core: cannot validate unknown app %q", r.App)
	}
}
