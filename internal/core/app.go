package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// App identifies one of the paper's three graph traversal applications.
type App int

const (
	// AppBFS is breadth-first search.
	AppBFS App = iota
	// AppSSSP is single-source shortest path.
	AppSSSP
	// AppCC is connected components.
	AppCC
)

// String returns the paper's abbreviation for the application.
func (a App) String() string {
	switch a {
	case AppBFS:
		return "BFS"
	case AppSSSP:
		return "SSSP"
	case AppCC:
		return "CC"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// AllApps returns the applications in the paper's Figure 11 order.
func AllApps() []App { return []App{AppSSSP, AppBFS, AppCC} }

// Run dispatches to the requested application. src is ignored for CC.
func Run(dev *gpu.Device, dg *DeviceGraph, app App, src int, variant Variant) (*Result, error) {
	switch app {
	case AppBFS:
		return BFS(dev, dg, src, variant)
	case AppSSSP:
		return SSSP(dev, dg, src, variant)
	case AppCC:
		return CC(dev, dg, variant)
	default:
		return nil, fmt.Errorf("core: unknown application %d", int(app))
	}
}

// Validate checks a result's Values against the CPU reference for its app.
func (r *Result) Validate(g *graph.CSR) error {
	switch r.App {
	case "BFS":
		return ValidateBFS(g, r.Source, r.Values)
	case "SSSP":
		return ValidateSSSP(g, r.Source, r.Values)
	case "CC":
		return ValidateCC(g, r.Values)
	default:
		return fmt.Errorf("core: cannot validate unknown app %q", r.App)
	}
}
