package core

import (
	"context"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/gpu"
	"repro/internal/memsys"
)

// This file is the engine's batched execution mode: one fixed-point loop
// advancing up to K sources of the same (graph, algorithm, variant,
// transport) together, MS-BFS style. Per-vertex state is a K-lane group
// ("lane-major": element v*K+q is query q's value at vertex v), the
// explicit frontier is a per-vertex bitmask of uint64 words with one bit
// per query, and a single edge scan relaxes every active lane at once —
// a vertex on the frontier of several queries has its neighbor list
// streamed over PCIe once instead of once per query, which is the entire
// point: EMOGI makes one traversal transfer-efficient, batching amortizes
// the transfer across queries (see DESIGN.md §13).
//
// Per-lane convergence is tracked with a K-element flag array: a lane
// whose flag stays clear for a round has reached its fixed point and
// retires (its bit leaves the host-side live mask, so no kernel ever
// scans it again and its values stay frozen). A lane whose per-request
// context is done detaches the same way at the next round boundary —
// the batch keeps running for the other lanes. The whole-batch context
// and injected transient faults abort the entire run through runRounds,
// exactly like a single-source run.
//
// Determinism and equivalence contract: lanes are independent — lane q's
// atomics touch only elements v*K+q and bit q of the frontier words, and
// all cross-lane aggregation (the frontier-word OR, the per-lane flag OR)
// is commutative — so each lane's value array and retirement round are
// bit-for-bit identical to the same source run alone, for any worker
// count and any batch composition (pinned by TestBatchEquivalence and
// FuzzBatchLanes). Stats and Elapsed describe the shared batched run and
// are attached to every lane's Result, with Result.BatchSize recording
// the batch width.

// BatchSpec names one lane of a batched run.
type BatchSpec struct {
	// Src is the lane's source vertex.
	Src int
	// Ctx, when non-nil, detaches this lane at the next round boundary
	// once done: the lane's BatchItem reports a *CanceledError while the
	// batch keeps running for the other lanes. Nil lanes only stop with
	// the whole batch.
	Ctx context.Context
}

// BatchItem is one lane's outcome: exactly one of Res and Err is set.
type BatchItem struct {
	Res *Result
	Err error
}

// BatchOutcome reports one batched dispatch.
type BatchOutcome struct {
	// Results holds one item per BatchSpec, in input order.
	Results []BatchItem
	// BatchedRun reports whether the lanes shared one engine run (false
	// when the algorithm has no batched mode and the lanes ran through
	// the sequential fallback).
	BatchedRun bool
	// EdgeScans counts the edges the shared sweep streamed (each scan of
	// a vertex's neighbor list counts its degree once, however many lanes
	// it served).
	EdgeScans uint64
	// EdgeScansSaved counts the edge reads the sharing avoided: the
	// degree-weighted excess of per-lane active vertices over scanned
	// vertices, i.e. what K independent runs would have re-streamed.
	EdgeScansSaved uint64
}

// batchLane is one query's host-side state.
type batchLane struct {
	spec   BatchSpec
	rounds int   // kernel launches this lane participated in
	err    error // set when the lane detached (cancellation, bad source)
}

// batchRun is the batched one-device topology behind runRounds.
type batchRun struct {
	dev  *gpu.Device
	dg   *DeviceGraph
	prog *Program

	n, k, lwords int
	aligned      bool
	roundName    string

	values *memsys.Buffer // lane-major value groups, n*K elements
	snap   *memsys.Buffer // round-boundary snapshot (FrontierActive)
	cur    *memsys.Buffer // frontier bitmask words, n*lwords (FrontierActive)
	next   *memsys.Buffer
	flags  *memsys.Buffer // per-lane convergence flags, K elements

	lanes []*batchLane
	live  []uint64       // host-side live-lane mask words
	prt   *policyRuntime // non-nil only for routed transport-policy runs

	scans, saved uint64

	// Prebuilt per-run machinery for the zero-alloc round contract
	// (allocs_test.go): the launch bodies and the shared visitor are
	// constructed once at run setup and read the mutable fields below;
	// liveList and liveSnap are reused round to round.
	matchBody, activeBody func(w *gpu.Warp)
	batchVisit            visitFn
	liveList              []int
	liveSnap              []uint64 // copy of live the active body reads, stable per launch
	matchLevel            uint32
	pushVal               uint32
	pred                  func(v int) bool
	predLevel             uint32
}

func (br *batchRun) faultCount() uint64 { return br.dev.Total().FaultedReads }

func (br *batchRun) isLive(q int) bool { return br.live[q>>6]&(1<<(uint(q)&63)) != 0 }
func (br *batchRun) clearLive(q int)   { br.live[q>>6] &^= 1 << (uint(q) & 63) }
func (br *batchRun) setLive(q int)     { br.live[q>>6] |= 1 << (uint(q) & 63) }

// liveLanes rebuilds br.liveList (ascending live lane numbers) and returns
// it. The backing array is reused across rounds: the launch bodies read it
// through br, and a launch always completes before the next rebuild.
func (br *batchRun) liveLanes() []int {
	out := br.liveList[:0]
	for q := 0; q < br.k; q++ {
		if br.isLive(q) {
			out = append(out, q)
		}
	}
	br.liveList = out
	return out
}

func (br *batchRun) round(level uint32) bool {
	dev := br.dev
	roundStart := dev.Clock()

	// Detach lanes whose request context is done — at the round boundary,
	// like whole-run cancellation, and purely host-side: the lane leaves
	// the live mask, so no device write is needed and the shared buffers
	// stay untouched until the batch completes.
	for q, ln := range br.lanes {
		if !br.isLive(q) || ln.spec.Ctx == nil {
			continue
		}
		if cause := ln.spec.Ctx.Err(); cause != nil {
			ln.err = &CanceledError{App: br.prog.App, Rounds: ln.rounds, Cause: cause}
			br.clearLive(q)
		}
	}
	liveList := br.liveLanes()
	if len(liveList) == 0 {
		return false
	}
	br.accountScans(liveList, level)
	if br.prt != nil {
		br.predLevel = level
		br.prt.beforeRound(int(level), br.pred)
	}

	// Clear the live lanes' convergence flags (a host-to-device write,
	// the batched analog of runState.clearFlag).
	for _, q := range liveList {
		br.flags.PutU32(int64(q), 0)
	}
	dev.CopyToDevice(int64(len(liveList)) * 4)

	if br.prog.Frontier == FrontierActive {
		// Round-boundary snapshot of the whole lane-major value array:
		// active lanes read source values from here while atomics land in
		// the live array, same discipline as the single-source engine.
		dev.CopyOnDevice(br.snap, br.values)
		br.launchActive()
	} else {
		br.launchMatch(level)
	}

	// Read the flags back; a live lane with a clear flag reached its
	// fixed point this round and retires.
	dev.CopyToHost(int64(len(liveList)) * 4)
	more := false
	for _, q := range liveList {
		br.lanes[q].rounds++
		if br.flags.U32(int64(q)) == 0 {
			br.clearLive(q)
		} else {
			more = true
		}
	}
	dev.EmitRound(br.roundName, int(level), roundStart)
	if more && br.prog.Frontier == FrontierActive {
		br.cur, br.next = br.next, br.cur
		dev.Memset(br.next, 0)
	}
	return more
}

// anyActive reports whether any live lane puts vertex v in the coming
// round's frontier — the batched density predicate the transport-policy
// runtime samples (the union of the per-lane singleRun.frontierActive
// tests, which is exactly what the shared sweep will scan).
func (br *batchRun) anyActive(liveList []int, v int, level uint32) bool {
	k := int64(br.k)
	ident := br.prog.Relax.Identity
	if br.prog.Frontier == FrontierActive {
		lw := int64(br.lwords)
		for wd := int64(0); wd < lw; wd++ {
			bm := br.cur.U64(int64(v)*lw+wd) & br.live[wd]
			for bm != 0 {
				q := int(wd)<<6 + bits.TrailingZeros64(bm)
				bm &= bm - 1
				if br.values.U32(int64(v)*k+int64(q)) != ident {
					return true
				}
			}
		}
		return false
	}
	for _, q := range liveList {
		if br.values.U32(int64(v)*k+int64(q)) == level {
			return true
		}
	}
	return false
}

// accountScans tallies the round's edge-scan sharing, host-side (this is
// simulator accounting, not modeled device work: it reads the buffers the
// simulator already holds in host memory and touches no device counter).
// A vertex active in a lanes has its neighbor list streamed once instead
// of a times, so the sweep saves (a-1)*degree edge reads.
func (br *batchRun) accountScans(liveList []int, level uint32) {
	k := int64(br.k)
	lw := int64(br.lwords)
	ident := br.prog.Relax.Identity
	for v := 0; v < br.n; v++ {
		a := uint64(0)
		if br.prog.Frontier == FrontierActive {
			for wd := int64(0); wd < lw; wd++ {
				bm := br.cur.U64(int64(v)*lw+wd) & br.live[wd]
				for bm != 0 {
					q := int(wd)<<6 + bits.TrailingZeros64(bm)
					bm &= bm - 1
					if br.values.U32(int64(v)*k+int64(q)) != ident {
						a++
					}
				}
			}
		} else {
			for _, q := range liveList {
				if br.values.U32(int64(v)*k+int64(q)) == level {
					a++
				}
			}
		}
		if a == 0 {
			continue
		}
		deg := uint64(br.dg.Graph.Degree(v))
		br.scans += deg
		br.saved += (a - 1) * deg
	}
}

// gatherGroup gathers buf[base+lanes[i]] for every listed lane in
// warp-size chunks — the batched analog of the per-source kernels'
// single value read. Lane-major groups are contiguous, so the reads
// coalesce into a handful of requests however wide the batch is.
func gatherGroup(w *gpu.Warp, buf *memsys.Buffer, base int64, lanes []int, out []uint32) {
	for c := 0; c < len(lanes); c += gpu.WarpSize {
		var idx [gpu.WarpSize]int64
		mask := gpu.MaskNone
		for l := 0; l < gpu.WarpSize && c+l < len(lanes); l++ {
			idx[l] = base + int64(lanes[c+l])
			mask = mask.Set(l)
		}
		vals := w.GatherU32(buf, &idx, mask)
		for l := 0; l < gpu.WarpSize && c+l < len(lanes); l++ {
			out[c+l] = vals[l]
		}
	}
}

// buildVisit builds the batched edge visitor, shared by every warp of
// every round: for each traversed edge chunk and each active query lane q
// (read from the worker's scratch, where the launch body staged the
// vertex's active-lane list and push values), it relaxes the
// destinations' lane-q entries and folds the per-lane success predicate
// into lane q's convergence flag and (under FrontierActive) the
// destinations' lane-q frontier bits. Both stores are issued for the full
// edge mask with zero contributions for non-improving lanes — the same
// traffic-depends-on-mask-alone discipline as Monoid.visitor, so results
// and counters are independent of worker count.
func (br *batchRun) buildVisit() visitFn {
	m := br.prog.Relax
	k := int64(br.k)
	lw := int64(br.lwords)
	return func(w *gpu.Warp, mask gpu.Mask, dst *[gpu.WarpSize]uint32, wgt, _ *[gpu.WarpSize]uint32) {
		s := scratchOf(w)
		act, push := s.act, s.push
		for i, q := range act {
			var idx [gpu.WarpSize]int64
			var val [gpu.WarpSize]uint32
			for l := 0; l < gpu.WarpSize; l++ {
				if !mask.Has(l) {
					continue
				}
				idx[l] = int64(dst[l])*k + int64(q)
				val[l] = m.combine(push[i], wgt[l])
			}
			var old [gpu.WarpSize]uint32
			if m.Max {
				old = w.AtomicMaxU32(br.values, &idx, &val, mask)
			} else {
				old = w.AtomicMinU32(br.values, &idx, &val, mask)
			}
			anySet := uint32(0)
			if br.next != nil {
				var widx [gpu.WarpSize]int64
				var wval [gpu.WarpSize]uint64
				for l := 0; l < gpu.WarpSize; l++ {
					if !mask.Has(l) {
						continue
					}
					widx[l] = int64(dst[l])*lw + int64(q>>6)
					if m.better(val[l], old[l]) {
						wval[l] = 1 << (uint(q) & 63)
						anySet = 1
					}
				}
				w.AtomicOrU64(br.next, &widx, &wval, mask)
			} else {
				for l := 0; l < gpu.WarpSize; l++ {
					if mask.Has(l) && m.better(val[l], old[l]) {
						anySet = 1
					}
				}
			}
			w.AtomicOrScalarU32(br.flags, int64(q), anySet)
		}
	}
}

// buildBodies constructs the two launch bodies once per run. Both stage
// each vertex's active-lane list and push values in the worker's scratch
// (sized to the batch width by batchScratch) before walking the neighbor
// list with the shared visitor — no per-warp makes, no per-round
// closures. Per-round inputs (liveList, matchLevel/pushVal, the cur/next
// swap, the liveSnap copy) are fields the bodies read through br.
func (br *batchRun) buildBodies() {
	dg := br.dg
	k := int64(br.k)
	lw := int64(br.lwords)
	prog := br.prog
	ident := prog.Relax.Identity
	needW := prog.Weighted
	aligned := br.aligned
	br.batchVisit = br.buildVisit()

	// Batched match-by-level (BFS): a warp per vertex gathers the vertex's
	// live-lane value group, keeps the lanes sitting exactly at the current
	// level, and walks the neighbor list once for all of them. Batched
	// scanning is inherently warp-per-vertex, so the requested variant
	// selects only the 128B alignment shift; see DESIGN.md §13.
	br.matchBody = func(w *gpu.Warp) {
		v := int64(w.ID())
		s := br.batchScratch(w)
		liveList := br.liveList
		group := s.groupBuf[:len(liveList)]
		gatherGroup(w, br.values, v*k, liveList, group)
		act := s.actBuf[:0]
		for i, q := range liveList {
			if group[i] == br.matchLevel {
				act = append(act, q)
			}
		}
		if len(act) == 0 {
			return
		}
		push := s.pushBuf[:len(act)]
		for i := range push {
			push[i] = br.pushVal
		}
		s.act, s.push = act, push
		walkMerged(w, dg, v, 0, aligned, false, br.batchVisit)
	}

	// Batched explicit-frontier (SSSP, SSWP): a warp per vertex reads the
	// vertex's frontier words, masks them to the live lanes, gathers the
	// surviving lanes' snapshot values, drops lanes still at the identity,
	// and walks the neighbor list once for the rest.
	br.activeBody = func(w *gpu.Warp) {
		v := int64(w.ID())
		s := br.batchScratch(w)
		act := s.actBuf[:0]
		for wd := int64(0); wd < lw; wd++ {
			bm := w.ScalarU64(br.cur, v*lw+wd) & br.liveSnap[wd]
			for bm != 0 {
				act = append(act, int(wd)<<6+bits.TrailingZeros64(bm))
				bm &= bm - 1
			}
		}
		if len(act) == 0 {
			return
		}
		group := s.groupBuf[:len(act)]
		gatherGroup(w, br.snap, v*k, act, group)
		work := act[:0]
		push := group[:0]
		for i, q := range act {
			if group[i] != ident {
				work = append(work, q)
				push = append(push, prog.push(group[i]))
			}
		}
		if len(work) == 0 {
			return
		}
		s.act, s.push = work, push
		walkMerged(w, dg, v, 0, aligned, needW, br.batchVisit)
	}
}

// launchMatch runs one batched match-by-level round (the body reads the
// live-lane list through br.liveList).
func (br *batchRun) launchMatch(level uint32) {
	br.matchLevel = level
	br.pushVal = br.prog.push(level)
	br.dev.Launch(br.roundName, br.n, br.matchBody)
}

// launchActive runs one batched explicit-frontier round. liveSnap keeps
// the launch's view of the live mask stable while lanes retire between
// rounds.
func (br *batchRun) launchActive() {
	br.liveSnap = append(br.liveSnap[:0], br.live...)
	br.dev.Launch(br.roundName, br.n, br.activeBody)
}

// runBatchProgram executes a Program for K sources in one batched engine
// run. Out-of-range sources fail their lane (the same error a
// single-source run returns) without aborting the batch; whole-batch
// cancellation and injected transient faults abort everything through
// runRounds, leaving the arena exactly as a completed run would.
func runBatchProgram(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, prog *Program, specs []BatchSpec, variant Variant) (*BatchOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := dg.NumVertices()
	k := len(specs)
	if k == 0 {
		return nil, fmt.Errorf("core: %s batch requires at least one source", prog.App)
	}
	lwords := (k + 63) / 64

	// Same policy resolution as runProgram: static policies matching the
	// graph's base transport take the historical fast path, anything else
	// routes per partition per round.
	pol, routed := effectivePolicy(ctx, dg)
	labelTransport := dg.Transport.String()
	if routed {
		labelTransport = pol.Name()
	}
	dev.BeginRun(gpu.RunLabels{App: prog.App,
		Variant:   fmt.Sprintf("batch%d/%s", k, variant),
		Transport: labelTransport, Graph: dg.Graph.Name})
	defer dev.EndRun()
	clockStart := dev.Clock()
	statStart := dev.Total()

	br := &batchRun{
		dev: dev, dg: dg, prog: prog,
		n: n, k: k, lwords: lwords,
		aligned:   variant == MergedAligned,
		roundName: strings.ToLower(prog.App) + "/batch",
		lanes:     make([]*batchLane, k),
		live:      make([]uint64, lwords),
	}
	var freeList []*memsys.Buffer
	alloc := func(name string, size int64) (*memsys.Buffer, error) {
		b, err := dev.Arena().Alloc(name, memsys.SpaceGPU, size)
		if err != nil {
			return nil, fmt.Errorf("core: allocating %s: %w", name, err)
		}
		freeList = append(freeList, b)
		return b, nil
	}
	freeAll := func() {
		for _, b := range freeList {
			dev.Arena().Free(b)
		}
	}
	var err error
	if br.values, err = alloc("batch.values", int64(n)*int64(k)*4); err != nil {
		return nil, err
	}
	if br.flags, err = alloc("batch.flags", int64(k)*4); err != nil {
		freeAll()
		return nil, err
	}
	if prog.Frontier == FrontierActive {
		if br.snap, err = alloc("batch.snap", int64(n)*int64(k)*4); err != nil {
			freeAll()
			return nil, err
		}
		if br.cur, err = alloc("batch.active0", int64(n)*int64(lwords)*8); err != nil {
			freeAll()
			return nil, err
		}
		if br.next, err = alloc("batch.active1", int64(n)*int64(lwords)*8); err != nil {
			freeAll()
			return nil, err
		}
	}

	// Prebuild the round machinery (launch bodies, shared visitor, density
	// predicate) and size the reused round scratch once, so steady-state
	// rounds allocate nothing.
	br.liveList = make([]int, 0, k)
	br.liveSnap = make([]uint64, 0, lwords)
	br.buildBodies()
	br.pred = func(v int) bool { return br.anyActive(br.liveList, v, br.predLevel) }

	// Per-lane admission: an out-of-range source fails its lane exactly
	// as runProgram fails a single request; the lane never goes live.
	for q, sp := range specs {
		br.lanes[q] = &batchLane{spec: sp}
		if sp.Src < 0 || sp.Src >= n {
			br.lanes[q].err = fmt.Errorf("core: %s source %d out of range [0,%d)", prog.App, sp.Src, n)
			continue
		}
		br.setLive(q)
	}

	// Host-side init of the lane-major state (and seed frontier), then
	// the modeled upload.
	for v := 0; v < n; v++ {
		base := int64(v) * int64(k)
		for q, sp := range specs {
			br.values.PutU32(base+int64(q), prog.Init(v, sp.Src))
			if prog.Frontier == FrontierActive && br.isLive(q) && prog.Seed(v, sp.Src) {
				wi := int64(v)*int64(lwords) + int64(q>>6)
				br.cur.PutU64(wi, br.cur.U64(wi)|1<<(uint(q)&63))
			}
		}
	}
	uploadBytes := int64(n) * int64(k) * 4
	if prog.Frontier == FrontierActive {
		uploadBytes += int64(n) * int64(lwords) * 8
	}
	dev.CopyToDevice(uploadBytes)

	if routed {
		// Built after the per-run buffers exist so the staged budget sees
		// the GPU memory actually left for this run.
		// The batched kernel always walks merged (the variant selects only
		// the alignment shift), so the density model uses merged coalescing.
		br.prt = newPolicyRuntime(dev, dg, pol, Merged, prog.Weighted)
		defer br.prt.close()
	}

	if _, err := runRounds(ctx, prog.App, br); err != nil {
		freeAll()
		return nil, err
	}

	// Download the lane-major array once and slice it per lane.
	dev.CopyToHost(int64(n) * int64(k) * 4)
	elapsed := dev.Clock() - clockStart
	stats := dev.Total().Sub(statStart)
	out := &BatchOutcome{
		Results:        make([]BatchItem, k),
		BatchedRun:     true,
		EdgeScans:      br.scans,
		EdgeScansSaved: br.saved,
	}
	policyName := dg.PolicyName()
	if pol != nil {
		policyName = pol.Name()
	}
	for q, ln := range br.lanes {
		if ln.err != nil {
			out.Results[q] = BatchItem{Err: ln.err}
			continue
		}
		vals := make([]uint32, n)
		base := int64(q)
		for v := 0; v < n; v++ {
			vals[v] = br.values.U32(int64(v)*int64(k) + base)
		}
		out.Results[q] = BatchItem{Res: &Result{
			App:        prog.App,
			Variant:    variant,
			Transport:  dg.Transport,
			Source:     specs[q].Src,
			Values:     vals,
			Iterations: ln.rounds,
			Elapsed:    elapsed,
			Stats:      stats,
			BatchSize:  k,
			Policy:     policyName,
		}}
	}
	freeAll()
	return out, nil
}

// BFSBatchContext advances K BFS sources in one batched engine run.
func BFSBatchContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, specs []BatchSpec, variant Variant) (*BatchOutcome, error) {
	return runBatchProgram(ctx, dev, dg, bfsProgram(), specs, variant)
}

// SSSPBatchContext advances K SSSP sources in one batched engine run.
func SSSPBatchContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, specs []BatchSpec, variant Variant) (*BatchOutcome, error) {
	if dg.Weights == nil {
		return nil, fmt.Errorf("core: SSSP requires a weighted graph")
	}
	return runBatchProgram(ctx, dev, dg, ssspProgram(), specs, variant)
}

// SSWPBatchContext advances K SSWP sources in one batched engine run.
func SSWPBatchContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, specs []BatchSpec, variant Variant) (*BatchOutcome, error) {
	if dg.Weights == nil {
		return nil, fmt.Errorf("core: SSWP requires a weighted graph")
	}
	return runBatchProgram(ctx, dev, dg, sswpProgram(), specs, variant)
}

// RunBatchAlgo dispatches a batched traversal by registry name.
// Algorithms without a batched mode run each lane sequentially (one
// engine run per lane, honoring per-lane contexts) and report
// BatchedRun=false — callers get identical per-lane semantics either
// way, only the sharing differs.
func RunBatchAlgo(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, name string, specs []BatchSpec, variant Variant) (*BatchOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	a := LookupAlgorithm(name)
	if a == nil {
		return nil, &UnknownAlgorithmError{Name: name}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: %s batch requires at least one source", a.Name)
	}
	if a.Batch != nil {
		return a.Batch(ctx, dev, dg, specs, variant)
	}
	out := &BatchOutcome{Results: make([]BatchItem, len(specs))}
	for i, sp := range specs {
		if cause := ctx.Err(); cause != nil {
			out.Results[i] = BatchItem{Err: &CanceledError{App: a.Name, Cause: cause}}
			continue
		}
		runCtx := sp.Ctx
		if runCtx == nil {
			runCtx = ctx
		}
		res, err := a.Run(runCtx, dev, dg, sp.Src, variant)
		out.Results[i] = BatchItem{Res: res, Err: err}
	}
	return out, nil
}
