package core

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// cancelAfterRound is a telemetry sink that fires a context cancel once
// round N completes. Cancellation through the simulated timeline is
// deterministic: the engine checks the context at the top of every round,
// so a cancel raised in RoundDone(N) always stops the run with exactly
// N+1 completed rounds, independent of host scheduling.
type cancelAfterRound struct {
	mu     sync.Mutex
	after  int
	cancel context.CancelFunc
	rounds int
}

func (c *cancelAfterRound) RunBegin(dev *gpu.Device, labels gpu.RunLabels) {}
func (c *cancelAfterRound) RunEnd(dev *gpu.Device)                         {}
func (c *cancelAfterRound) KernelDone(dev *gpu.Device, ks *gpu.KernelStats, workers, maxWorkers int, start, end time.Duration) {
}
func (c *cancelAfterRound) CopyDone(dev *gpu.Device, toDevice bool, bytes int64, start, end time.Duration) {
}

func (c *cancelAfterRound) RoundDone(dev *gpu.Device, name string, round int, start, end time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds++
	if round == c.after {
		c.cancel()
	}
}

func cancelTestGraph(t *testing.T) (*graph.CSR, int) {
	t.Helper()
	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.02, 42)
	return g, graph.PickSources(g, 1, 71)[0]
}

// TestCancelBeforeFirstRound: a context canceled before the run starts
// executes nothing — zero rounds, zero kernels — and reports the typed
// error through both the package sentinel and the context cause.
func TestCancelBeforeFirstRound(t *testing.T) {
	g, src := cancelTestGraph(t)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)

	kernels := len(dev.Kernels())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BFSContext(ctx, dev, dg, src, MergedAligned)
	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if ce.Rounds != 0 {
		t.Errorf("Rounds = %d, want 0 (pre-canceled context must run nothing)", ce.Rounds)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false")
	}
	if got := len(dev.Kernels()); got != kernels {
		t.Errorf("pre-canceled run launched %d kernel(s)", got-kernels)
	}
}

// TestCancelMidRunThenRerun is the cancellation contract end to end: a
// run canceled after round N stops at the next round boundary with the
// typed error, leaks no device memory, and leaves the device graph in a
// state where an immediate rerun completes and reproduces the pinned
// golden-engine numbers bit for bit.
func TestCancelMidRunThenRerun(t *testing.T) {
	g, src := cancelTestGraph(t)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)
	usedBefore := dev.Arena().GPUUsed()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfterRound{after: 1, cancel: cancel}
	dev.SetTelemetry(sink)
	res, err := BFSContext(ctx, dev, dg, src, MergedAligned)
	dev.SetTelemetry(nil)
	if res != nil {
		t.Fatalf("canceled run returned a result")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if ce.App != "BFS" {
		t.Errorf("CanceledError.App = %q, want BFS", ce.App)
	}
	// The cancel fired inside RoundDone(1), so rounds 0 and 1 completed
	// and the level-2 boundary check stopped the run: exactly the "next
	// round boundary" the contract promises.
	if ce.Rounds != sink.rounds {
		t.Errorf("Rounds = %d, want %d (the rounds the sink observed)", ce.Rounds, sink.rounds)
	}
	if ce.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 (cancel after round 1)", ce.Rounds)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled error must match ErrCanceled and context.Canceled, got %v", err)
	}

	// No leak: every frontier/value buffer the aborted run allocated was
	// returned to the arena, leaving only the uploaded graph.
	if used := dev.Arena().GPUUsed(); used != usedBefore {
		t.Errorf("GPU arena after cancel = %d bytes, want %d (canceled run leaked buffers)",
			used, usedBefore)
	}

	// Rerun on the same device graph: the canceled attempt must be
	// invisible. The pinned golden record is the arbiter — every counter
	// of the rerun has to match results/golden-engine.json exactly.
	res2, err := BFSContext(context.Background(), dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if err := res2.Validate(g); err != nil {
		t.Fatalf("rerun after cancel produced wrong output: %v", err)
	}
	want := goldenRecordByName(t, "GK/bfs")
	got := recordOf("GK/bfs", res2)
	if got != want {
		t.Errorf("rerun after cancel diverged from golden record:\n got %+v\nwant %+v", got, want)
	}
}

// goldenRecordByName loads one pinned record from results/golden-engine.json.
func goldenRecordByName(t *testing.T, name string) goldenRecord {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var recs []goldenRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	for _, r := range recs {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("golden record %q not found", name)
	return goldenRecord{}
}

// TestCancelDeadline: context.DeadlineExceeded flows through the same
// typed error.
func TestCancelDeadline(t *testing.T) {
	g, src := cancelTestGraph(t)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = SSSPContext(ctx, dev, dg, src, MergedAligned)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false, got %v", err)
	}
}

// TestCancelSpecialtyTopologies: the hybrid and multi-GPU round loops
// honor pre-canceled contexts and free their per-run buffers.
func TestCancelSpecialtyTopologies(t *testing.T) {
	g, src := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("hybrid", func(t *testing.T) {
		dev := testDevice()
		h, err := NewHybridSystem(dev, g, 8, DefaultHybridConfig(0.3))
		if err != nil {
			t.Fatal(err)
		}
		defer h.Free()
		if _, err := h.BFSContext(ctx, src); !errors.Is(err, ErrCanceled) {
			t.Errorf("hybrid: err = %v, want ErrCanceled", err)
		}
		// Still usable after the cancel.
		if _, err := h.BFSContext(context.Background(), src); err != nil {
			t.Errorf("hybrid rerun: %v", err)
		}
	})

	t.Run("multi", func(t *testing.T) {
		ms, err := NewMultiSystem(multiDevices(3), g, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer ms.Free()
		if _, err := ms.BFSContext(ctx, src); !errors.Is(err, ErrCanceled) {
			t.Errorf("multi: err = %v, want ErrCanceled", err)
		}
		if _, err := ms.BFSContext(context.Background(), src); err != nil {
			t.Errorf("multi rerun: %v", err)
		}
	})
}

// TestUnknownAlgorithmListsNames: the registry error names every valid
// algorithm so callers can self-correct.
func TestUnknownAlgorithmListsNames(t *testing.T) {
	dev := testDevice()
	g, src := cancelTestGraph(t)
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)

	_, err = RunAlgoContext(context.Background(), dev, dg, "dfs", src, MergedAligned)
	var ue *UnknownAlgorithmError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnknownAlgorithmError", err)
	}
	if ue.Name != "dfs" {
		t.Errorf("Name = %q, want dfs", ue.Name)
	}
	for _, name := range AlgorithmNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered algorithm %q", err.Error(), name)
		}
	}
}
