package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// faultDevice returns a test device whose PCIe link carries the given
// fault injector. Workers selects the launch engine parallelism (0 =
// GOMAXPROCS, 1 = serial).
func faultDevice(inj fault.Injector, workers int) *gpu.Device {
	link := pcie.Gen3x16()
	link.Faults = inj
	return gpu.NewDevice(gpu.Config{
		Name:     "test-v100-faulty",
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     link,
		Workers:  workers,
	})
}

func readFaultInjector(t *testing.T, seed uint64, rate float64) fault.Injector {
	t.Helper()
	inj, err := fault.New(fault.Config{Seed: seed, ReadFaultRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestTransientFaultSurfacesTyped: a run that absorbs injected read
// faults aborts at the next round boundary with a *TransientError that
// matches fault.ErrTransient, reports the injector's own fault tally,
// and frees every per-run buffer.
func TestTransientFaultSurfacesTyped(t *testing.T) {
	g, src := cancelTestGraph(t)
	inj := readFaultInjector(t, 21, 0.05) // ~300 faults over GK/bfs's 6017 requests
	dev := faultDevice(inj, 0)
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)
	usedBefore := dev.Arena().GPUUsed()

	res, err := BFSContext(context.Background(), dev, dg, src, MergedAligned)
	if res != nil {
		t.Fatalf("faulted run returned a result: %+v", res)
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransientError", err)
	}
	if !errors.Is(err, fault.ErrTransient) {
		t.Errorf("errors.Is(err, fault.ErrTransient) = false")
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("transient error must not match ErrCanceled")
	}
	if te.App != "BFS" {
		t.Errorf("TransientError.App = %q, want BFS", te.App)
	}
	if te.Rounds < 1 {
		t.Errorf("TransientError.Rounds = %d, want >= 1 (the faulted round completed)", te.Rounds)
	}
	if te.Faults == 0 {
		t.Error("TransientError.Faults = 0 on an aborted run")
	}
	// The error's tally is the injector's tally: the engine counted every
	// ReqFail the hook returned, nothing more.
	if got := inj.Counts().ReadFaults; te.Faults != got {
		t.Errorf("TransientError.Faults = %d, injector counted %d", te.Faults, got)
	}

	// No leak: the abort path returned every frontier/value buffer.
	if used := dev.Arena().GPUUsed(); used != usedBefore {
		t.Errorf("GPU arena after transient abort = %d bytes, want %d", used, usedBefore)
	}
}

// TestRetryUntilCleanMatchesGolden is the retry-equivalence contract:
// under a read-fault-only injector (no latency spikes, no wire derating)
// a retried run that draws a clean epoch is bit-for-bit identical —
// values, counters, and modeled time — to the same run on a fault-free
// device. The pinned golden-engine record is the arbiter.
func TestRetryUntilCleanMatchesGolden(t *testing.T) {
	g, src := cancelTestGraph(t)
	// ~3 expected faults per epoch: most attempts fault, a clean epoch
	// arrives within a few dozen retries. Deterministic for this seed.
	inj := readFaultInjector(t, 17, 0.0005)
	dev := faultDevice(inj, 0)
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)
	usedBefore := dev.Arena().GPUUsed()

	var res *Result
	faulted := 0
	for attempt := 0; attempt < 100; attempt++ {
		r, err := BFSContext(context.Background(), dev, dg, src, MergedAligned)
		if err == nil {
			res = r
			break
		}
		if !errors.Is(err, fault.ErrTransient) {
			t.Fatalf("attempt %d failed non-transiently: %v", attempt, err)
		}
		faulted++
	}
	if res == nil {
		t.Fatalf("no clean epoch within 100 attempts (all %d faulted); rate too high", faulted)
	}
	if faulted == 0 {
		t.Fatal("first epoch was already clean; raise the rate so the test exercises a retry")
	}
	t.Logf("clean epoch after %d faulted attempts", faulted)

	if err := res.Validate(g); err != nil {
		t.Fatalf("retried run produced wrong output: %v", err)
	}
	want := goldenRecordByName(t, "GK/bfs")
	got := recordOf("GK/bfs", res)
	if got != want {
		t.Errorf("clean retry diverged from golden record:\n got %+v\nwant %+v", got, want)
	}
	if res.Stats.FaultedReads != 0 || res.Stats.LatencySpikes != 0 {
		t.Errorf("clean epoch reported FaultedReads=%d LatencySpikes=%d, want 0/0",
			res.Stats.FaultedReads, res.Stats.LatencySpikes)
	}
	if used := dev.Arena().GPUUsed(); used != usedBefore {
		t.Errorf("GPU arena after retries = %d bytes, want %d (a faulted attempt leaked)",
			used, usedBefore)
	}
}

// TestFaultDeterminismAcrossWorkers: injected fault decisions are keyed
// on (epoch, warp, sequence) coordinates, not call order, so the serial
// engine and the parallel engine observe the identical fault set.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	g, src := cancelTestGraph(t)
	run := func(workers int) (uint64, error) {
		inj := readFaultInjector(t, 33, 0.01)
		dev := faultDevice(inj, workers)
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer dg.Free(dev)
		_, err = BFSContext(context.Background(), dev, dg, src, MergedAligned)
		return inj.Counts().ReadFaults, err
	}
	serialFaults, serialErr := run(1)
	parallelFaults, parallelErr := run(4)
	if serialFaults == 0 {
		t.Fatal("1% read faults over GK/bfs injected nothing; tune the rate")
	}
	if serialFaults != parallelFaults {
		t.Errorf("serial engine drew %d faults, 4-worker engine drew %d", serialFaults, parallelFaults)
	}
	var st, pt *TransientError
	if !errors.As(serialErr, &st) || !errors.As(parallelErr, &pt) {
		t.Fatalf("errors = (%v, %v), want *TransientError from both engines", serialErr, parallelErr)
	}
	if st.Faults != pt.Faults || st.Rounds != pt.Rounds {
		t.Errorf("serial abort (rounds=%d faults=%d) != parallel abort (rounds=%d faults=%d)",
			st.Rounds, st.Faults, pt.Rounds, pt.Faults)
	}
}

// TestAllocFaultSurfacesTransient: an injected allocation failure from
// the arena hook aborts the run with an error matching fault.ErrTransient
// and leaves the device graph re-traversable once the hook is lifted.
func TestAllocFaultSurfacesTransient(t *testing.T) {
	g, src := cancelTestGraph(t)
	inj, err := fault.New(fault.Config{Seed: 3, AllocFaultRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer dg.Free(dev)
	usedBefore := dev.Arena().GPUUsed()

	dev.Arena().SetAllocFaultHook(func(_ memsys.Space, size int64) error {
		return inj.AllocFault(size)
	})
	_, err = BFSContext(context.Background(), dev, dg, src, MergedAligned)
	dev.Arena().SetAllocFaultHook(nil)
	if !errors.Is(err, fault.ErrTransient) {
		t.Fatalf("alloc-faulted run: err = %v, want match for fault.ErrTransient", err)
	}
	if used := dev.Arena().GPUUsed(); used != usedBefore {
		t.Errorf("GPU arena after alloc fault = %d bytes, want %d", used, usedBefore)
	}

	// With the hook lifted the same device graph traverses to the golden
	// numbers.
	res, err := BFSContext(context.Background(), dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatalf("rerun after alloc fault: %v", err)
	}
	want := goldenRecordByName(t, "GK/bfs")
	if got := recordOf("GK/bfs", res); got != want {
		t.Errorf("rerun after alloc fault diverged from golden record:\n got %+v\nwant %+v", got, want)
	}
}
