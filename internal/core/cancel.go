package core

import (
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel every cooperative cancellation matches:
// errors.Is(err, ErrCanceled) holds for any traversal stopped through its
// context, whether by explicit cancel or by deadline. The concrete error
// is always a *CanceledError carrying how far the run got.
var ErrCanceled = errors.New("core: traversal canceled")

// CanceledError reports a traversal that stopped cooperatively at a round
// boundary. The engine only observes cancellation between rounds (the
// simulated device, like a real one, cannot abandon a launched kernel), so
// the device is left exactly as a completed run leaves it: per-run buffers
// freed, loaded graphs intact, and the same graph immediately traversable
// again.
type CanceledError struct {
	// App is the Program's application label ("BFS", "SSSP", ...).
	App string
	// Rounds is how many relaxation rounds completed before the stop.
	// Zero means the context was already done before the first round.
	Rounds int
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: %s traversal canceled after %d round(s): %v",
		e.App, e.Rounds, e.Cause)
}

// Is matches the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context cause, so errors.Is also matches
// context.Canceled / context.DeadlineExceeded.
func (e *CanceledError) Unwrap() error { return e.Cause }
