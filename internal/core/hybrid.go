package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// This file implements the collaborative CPU-GPU extension of §7 ("prior
// works have proposed ... collaborative CPU-GPU computation to meet the
// needs of large graph computation ... EMOGI can be extended to support
// both"): the host CPU traverses a share of the vertex space directly from
// its own memory — no PCIe crossing at all — while the GPU covers the rest
// with zero-copy reads, and the two label replicas are min-reduced between
// levels.

// HybridConfig sets the CPU side's capabilities.
type HybridConfig struct {
	// CPUShare is the fraction of arcs assigned to the CPU partition
	// (0 disables the CPU side; 1 disables the GPU side).
	CPUShare float64
	// CPUScanBytesPerSec is the CPU's effective edge-scan throughput:
	// multi-threaded pointer-chasing over DDR4 lands far below streaming
	// bandwidth; ~3 GB/s is typical for a modern two-socket host.
	CPUScanBytesPerSec float64
	// CPUIterOverhead is the fixed per-level cost of the CPU worker
	// (thread wakeup, frontier scan).
	CPUIterOverhead time.Duration
}

// DefaultHybridConfig returns the calibrated host model with the given
// CPU share.
func DefaultHybridConfig(share float64) HybridConfig {
	return HybridConfig{
		CPUShare:           share,
		CPUScanBytesPerSec: 3e9,
		CPUIterOverhead:    5 * time.Microsecond,
	}
}

// HybridSystem pairs one simulated GPU with the host CPU over a shared
// graph.
type HybridSystem struct {
	dev   *gpu.Device
	dg    *DeviceGraph
	graph *graph.CSR
	cfg   HybridConfig
	split int // first GPU-owned vertex; CPU owns [0, split)
}

// NewHybridSystem uploads g and computes the arc-balanced split point.
func NewHybridSystem(dev *gpu.Device, g *graph.CSR, edgeBytes int, cfg HybridConfig) (*HybridSystem, error) {
	if cfg.CPUShare < 0 || cfg.CPUShare > 1 {
		return nil, fmt.Errorf("core: CPU share %v outside [0, 1]", cfg.CPUShare)
	}
	if cfg.CPUScanBytesPerSec <= 0 {
		return nil, fmt.Errorf("core: CPU scan rate must be positive")
	}
	dg, err := Upload(dev, g, ZeroCopy, edgeBytes)
	if err != nil {
		return nil, err
	}
	target := int64(float64(g.NumEdges()) * cfg.CPUShare)
	split := 0
	var acc int64
	for split < g.NumVertices() && acc < target {
		acc += g.Degree(split)
		split++
	}
	return &HybridSystem{dev: dev, dg: dg, graph: g, cfg: cfg, split: split}, nil
}

// Split returns the first GPU-owned vertex: the CPU owns [0, Split).
func (h *HybridSystem) Split() int { return h.split }

// Free releases the graph buffers.
func (h *HybridSystem) Free() { h.dg.Free(h.dev) }

// BFS runs level-synchronous collaborative BFS: per level the CPU relaxes
// its partition's active lists from host memory while the GPU relaxes its
// own with merged+aligned zero-copy reads; the level costs the slower of
// the two plus a label-replica reduction. The round loop is the frontier
// engine's hybrid topology (engine.go) driving the standard BFS program.
func (h *HybridSystem) BFS(src int) (*Result, error) {
	return h.BFSContext(context.Background(), src)
}

// BFSContext is BFS with cooperative cancellation at round boundaries
// (see cancel.go for the contract).
func (h *HybridSystem) BFSContext(ctx context.Context, src int) (*Result, error) {
	return runHybrid(ctx, h, bfsProgram(), src)
}
