package core

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file implements the collaborative CPU-GPU extension of §7 ("prior
// works have proposed ... collaborative CPU-GPU computation to meet the
// needs of large graph computation ... EMOGI can be extended to support
// both"): the host CPU traverses a share of the vertex space directly from
// its own memory — no PCIe crossing at all — while the GPU covers the rest
// with zero-copy reads, and the two label replicas are min-reduced between
// levels.

// HybridConfig sets the CPU side's capabilities.
type HybridConfig struct {
	// CPUShare is the fraction of arcs assigned to the CPU partition
	// (0 disables the CPU side; 1 disables the GPU side).
	CPUShare float64
	// CPUScanBytesPerSec is the CPU's effective edge-scan throughput:
	// multi-threaded pointer-chasing over DDR4 lands far below streaming
	// bandwidth; ~3 GB/s is typical for a modern two-socket host.
	CPUScanBytesPerSec float64
	// CPUIterOverhead is the fixed per-level cost of the CPU worker
	// (thread wakeup, frontier scan).
	CPUIterOverhead time.Duration
}

// DefaultHybridConfig returns the calibrated host model with the given
// CPU share.
func DefaultHybridConfig(share float64) HybridConfig {
	return HybridConfig{
		CPUShare:           share,
		CPUScanBytesPerSec: 3e9,
		CPUIterOverhead:    5 * time.Microsecond,
	}
}

// HybridSystem pairs one simulated GPU with the host CPU over a shared
// graph.
type HybridSystem struct {
	dev   *gpu.Device
	dg    *DeviceGraph
	graph *graph.CSR
	cfg   HybridConfig
	split int // first GPU-owned vertex; CPU owns [0, split)
}

// NewHybridSystem uploads g and computes the arc-balanced split point.
func NewHybridSystem(dev *gpu.Device, g *graph.CSR, edgeBytes int, cfg HybridConfig) (*HybridSystem, error) {
	if cfg.CPUShare < 0 || cfg.CPUShare > 1 {
		return nil, fmt.Errorf("core: CPU share %v outside [0, 1]", cfg.CPUShare)
	}
	if cfg.CPUScanBytesPerSec <= 0 {
		return nil, fmt.Errorf("core: CPU scan rate must be positive")
	}
	dg, err := Upload(dev, g, ZeroCopy, edgeBytes)
	if err != nil {
		return nil, err
	}
	target := int64(float64(g.NumEdges()) * cfg.CPUShare)
	split := 0
	var acc int64
	for split < g.NumVertices() && acc < target {
		acc += g.Degree(split)
		split++
	}
	return &HybridSystem{dev: dev, dg: dg, graph: g, cfg: cfg, split: split}, nil
}

// Split returns the first GPU-owned vertex: the CPU owns [0, Split).
func (h *HybridSystem) Split() int { return h.split }

// Free releases the graph buffers.
func (h *HybridSystem) Free() { h.dg.Free(h.dev) }

// BFS runs level-synchronous collaborative BFS: per level the CPU relaxes
// its partition's active lists from host memory while the GPU relaxes its
// own with merged+aligned zero-copy reads; the level costs the slower of
// the two plus a label-replica reduction.
func (h *HybridSystem) BFS(src int) (*Result, error) {
	g := h.graph
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: BFS source %d out of range [0,%d)", src, n)
	}
	dev := h.dev
	statStart := dev.Total()

	labels, err := dev.Arena().Alloc("hbfs.labels", memsys.SpaceGPU, int64(n)*4)
	if err != nil {
		return nil, err
	}
	defer dev.Arena().Free(labels)
	flag, err := dev.Arena().Alloc("hbfs.flag", memsys.SpaceGPU, 4)
	if err != nil {
		return nil, err
	}
	defer dev.Arena().Free(flag)
	for v := 0; v < n; v++ {
		labels.PutU32(int64(v), graph.InfDist)
	}
	labels.PutU32(int64(src), 0)
	dev.CopyToDevice(int64(n) * 4)

	// The CPU's label replica.
	cpuLabels := make([]uint32, n)
	for v := range cpuLabels {
		cpuLabels[v] = graph.InfDist
	}
	cpuLabels[src] = 0

	elapsed := dev.Clock()
	mark := dev.Clock()
	visit := relaxVisitor(labels, nil, flag, false)
	iterations := 0
	for level := uint32(0); ; level++ {
		// GPU side: vertices [split, n).
		flag.PutU32(0, 0)
		dev.CopyToDevice(4)
		dev.Launch("hbfs/gpu", n-h.split, func(w *gpu.Warp) {
			v := int64(h.split + w.ID())
			if w.ScalarU32(labels, v) != level {
				return
			}
			walkMerged(w, h.dg, v, level+1, true, false, visit)
		})
		dev.CopyToHost(4)
		gpuChanged := flag.U32(0) != 0
		dev.CopyToHost(int64(n) * 4) // replica download for the reduce
		gpuTime := dev.Clock() - mark

		// CPU side, concurrently: vertices [0, split).
		var cpuBytes int64
		cpuChanged := false
		for v := 0; v < h.split; v++ {
			if cpuLabels[v] != level {
				continue
			}
			cpuBytes += g.Degree(v) * int64(h.dg.EdgeBytes)
			for _, u := range g.Neighbors(v) {
				if level+1 < cpuLabels[u] {
					cpuLabels[u] = level + 1
					cpuChanged = true
				}
			}
		}
		cpuTime := h.cfg.CPUIterOverhead +
			time.Duration(float64(cpuBytes)/h.cfg.CPUScanBytesPerSec*float64(time.Second))

		levelTime := gpuTime
		if cpuTime > levelTime {
			levelTime = cpuTime
		}

		// Min-reduce the two replicas, then re-upload the GPU copy.
		for v := int64(0); v < int64(n); v++ {
			gl := labels.U32(v)
			cl := cpuLabels[v]
			m := gl
			if cl < m {
				m = cl
			}
			labels.PutU32(v, m)
			cpuLabels[v] = m
		}
		preUp := dev.Clock()
		dev.CopyToDevice(int64(n) * 4)
		levelTime += dev.Clock() - preUp

		elapsed += levelTime
		mark = dev.Clock()
		iterations++
		if !gpuChanged && !cpuChanged {
			break
		}
	}

	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = labels.U32(int64(v))
	}
	return &Result{
		App:        "BFS",
		Variant:    MergedAligned,
		Transport:  ZeroCopy,
		Source:     src,
		Values:     out,
		Iterations: iterations,
		Elapsed:    elapsed,
		Stats:      dev.Total().Sub(statStart),
	}, nil
}
