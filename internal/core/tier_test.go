package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// tieredTestDevice is testDevice expressed through the tier API: an explicit
// two-tier stack carrying the identical models. Every simulated number must
// be bit-for-bit the classic device's.
func tieredTestDevice() *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:  "test-v100",
		Tiers: memsys.TwoTier(0, 0, memsys.HBM2V100(), memsys.DDR4Quad(), pcie.Gen3x16()),
	})
}

func tieredMultiDevices(n int) []*gpu.Device {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.NewDevice(gpu.Config{
			Name:  "mgpu",
			Tiers: memsys.TwoTier(0, 0, memsys.HBM2V100(), memsys.DDR4Quad(), pcie.Gen3x16()),
		})
	}
	return devs
}

// TestGoldenTierStackEquivalence runs the full pinned golden matrix on
// devices configured through explicit two-tier TierStacks and demands every
// record match results/golden-engine.json bit-for-bit: the tier refactor
// must be invisible on the two-tier default path.
func TestGoldenTierStackEquivalence(t *testing.T) {
	t.Parallel()
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenRecord, len(want))
	for _, r := range want {
		byName[r.Name] = r
	}
	recs := goldenRunsWith(t, tieredTestDevice, tieredMultiDevices)
	if len(recs) != len(want) {
		t.Errorf("tiered run matrix has %d records, golden file has %d", len(recs), len(want))
	}
	for _, got := range recs {
		exp, ok := byName[got.Name]
		if !ok {
			t.Errorf("%s: no golden record", got.Name)
			continue
		}
		if got != exp {
			t.Errorf("%s: explicit TierStack drifted from the classic two-tier device:\n got:  %s\n want: %s",
				got.Name, mustJSON(got), mustJSON(exp))
		}
	}
}

// threeTierDevice builds a device whose host DRAM is capped small enough
// that sizeable edge lists oversubscribe it, backed by a CXL tier that can
// absorb the spill.
func threeTierDevice(hostBytes, cxlBytes int64, gpuDriven bool) *gpu.Device {
	two := memsys.TwoTier(0, hostBytes, memsys.HBM2V100(), memsys.DDR4Quad(), pcie.Gen3x16())
	return gpu.NewDevice(gpu.Config{
		Name:            "test-cxl",
		Tiers:           memsys.ThreeTierCXL(two, cxlBytes),
		GPUDrivenPaging: gpuDriven,
	})
}

// TestOversubscriptionSpillsToCXL loads a graph whose edge list exceeds
// host-DRAM capacity onto a three-tier device: the tail must spill to the
// CXL tier, traversals must stay exact, and the CXL counters must show the
// external tier actually served traffic.
func TestOversubscriptionSpillsToCXL(t *testing.T) {
	t.Parallel()
	// Placement is per 64KB segment, so the edge lists must span many
	// segments for a meaningful DRAM/CXL split — bigger than testGraphs().
	graphs := []*graph.CSR{
		graph.RMAT("gk-big", 8192, 24, 0.57, 0.19, 0.19, true, 1),
		graph.Urand("gu-big", 8000, 30, 2),
	}
	for _, g := range graphs {
		edgeBytes := g.NumEdges() * 8
		hostCap := edgeBytes/2 + 4096 // roughly half the edge list fits
		dev := threeTierDevice(hostCap, 4*edgeBytes, false)
		dg, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
		if err != nil {
			t.Fatalf("%s: upload onto oversubscribed host: %v", g.Name, err)
		}
		spilled := dg.Edges.HomedBytes(memsys.SpaceCXL)
		if spilled == 0 {
			t.Fatalf("%s: edge list (%d bytes) vs host cap %d: expected CXL spill, got none",
				g.Name, edgeBytes, hostCap)
		}
		if dg.Edges.HomedBytes(memsys.SpaceHostPinned) == 0 {
			t.Errorf("%s: PlaceAuto should fill DRAM before spilling", g.Name)
		}
		src := graph.PickSources(g, 1, 43)[0]
		res, err := BFS(dev, dg, src, MergedAligned)
		if err != nil {
			t.Fatalf("%s: BFS over spilled edges: %v", g.Name, err)
		}
		if err := res.Validate(g); err != nil {
			t.Errorf("%s: spilled traversal wrong: %v", g.Name, err)
		}
		if res.Stats.CXLRequests == 0 || res.Stats.CXLPayloadBytes == 0 {
			t.Errorf("%s: traversal over CXL-homed segments recorded no CXL traffic (reqs=%d payload=%d)",
				g.Name, res.Stats.CXLRequests, res.Stats.CXLPayloadBytes)
		}
		dg.Free(dev)
		if got := dev.Arena().CXLUsed(); got != 0 {
			t.Errorf("%s: CXL bytes leaked after Free: %d", g.Name, got)
		}
	}
}

// TestPlacementForcedCXL pins the whole edge list on the CXL tier and checks
// the placement is total, exact, and strictly slower than host DRAM (the
// external tier's link is narrower and its latency higher).
func TestPlacementForcedCXL(t *testing.T) {
	t.Parallel()
	g := testGraphs()[0]
	src := graph.PickSources(g, 1, 43)[0]

	devD := threeTierDevice(0, 0, false) // uncapped
	dgD, err := UploadPolicyPlaced(devD, g, StaticPolicyFor(ZeroCopy), 8, PlaceDRAM)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := BFS(devD, dgD, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}

	devC := threeTierDevice(0, 0, false)
	dgC, err := UploadPolicyPlaced(devC, g, StaticPolicyFor(ZeroCopy), 8, PlaceCXL)
	if err != nil {
		t.Fatal(err)
	}
	if got := dgC.Edges.HomedBytes(memsys.SpaceHostPinned); got != 0 {
		t.Fatalf("PlaceCXL left %d bytes in DRAM", got)
	}
	resC, err := BFS(devC, dgC, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := resC.Validate(g); err != nil {
		t.Fatalf("CXL-placed traversal wrong: %v", err)
	}
	if resC.Stats.PCIeRequests != 0 {
		t.Errorf("fully CXL-placed run still issued %d PCIe zero-copy requests", resC.Stats.PCIeRequests)
	}
	if resC.Elapsed <= resD.Elapsed {
		t.Errorf("CXL run (%v) should be slower than DRAM run (%v)", resC.Elapsed, resD.Elapsed)
	}
	for i := range resC.Values {
		if resC.Values[i] != resD.Values[i] {
			t.Fatalf("values diverge at %d: CXL %d vs DRAM %d", i, resC.Values[i], resD.Values[i])
		}
	}
}

// TestApplyPlacementMoves re-homes a loaded graph between DRAM and CXL and
// checks accounting and traversal exactness across the moves.
func TestApplyPlacementMoves(t *testing.T) {
	t.Parallel()
	g := testGraphs()[1]
	src := graph.PickSources(g, 1, 43)[0]
	dev := threeTierDevice(0, 0, false)
	dg, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyPlacement(dev, dg, PlaceCXL); err != nil {
		t.Fatalf("ApplyPlacement(cxl): %v", err)
	}
	if got := dg.Edges.HomedBytes(memsys.SpaceHostPinned); got != 0 {
		t.Fatalf("after PlaceCXL, %d edge bytes still DRAM-homed", got)
	}
	res, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(g); err != nil {
		t.Fatalf("post-move traversal wrong: %v", err)
	}
	if err := ApplyPlacement(dev, dg, PlaceDRAM); err != nil {
		t.Fatalf("ApplyPlacement(dram): %v", err)
	}
	if got := dg.Edges.HomedBytes(memsys.SpaceCXL); got != 0 {
		t.Fatalf("after PlaceDRAM, %d edge bytes still CXL-homed", got)
	}
	if got := dev.Arena().CXLUsed(); got != 0 {
		t.Fatalf("CXL accounting nonzero after move back: %d", got)
	}
	res2, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Validate(g); err != nil {
		t.Fatalf("round-trip traversal wrong: %v", err)
	}

	// On a two-tier device PlaceCXL must fail loudly, PlaceDRAM is a no-op.
	dev2 := testDevice()
	dg2, err := Upload(dev2, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyPlacement(dev2, dg2, PlaceCXL); err == nil {
		t.Error("ApplyPlacement(cxl) on a two-tier device should fail")
	}
	if err := ApplyPlacement(dev2, dg2, PlaceDRAM); err != nil {
		t.Errorf("ApplyPlacement(dram) on a two-tier device should be a no-op, got %v", err)
	}
}

// pagingDevice builds a small-HBM device (so UVM must migrate and evict)
// with the given worker count and paging model.
func pagingDevice(workers int, gpuDriven bool) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:            "test-paging",
		MemBytes:        96 << 10,
		HBM:             memsys.HBM2V100(),
		HostDRAM:        memsys.DDR4Quad(),
		Link:            pcie.Gen3x16(),
		Workers:         workers,
		GPUDrivenPaging: gpuDriven,
	})
}

// TestPagingDeterminism checks both paging models against the engine's
// determinism contract — serial, parallel, and batched execution produce
// bit-for-bit identical migrations, counters, and elapsed time — and that
// the models agree on everything but time.
func TestPagingDeterminism(t *testing.T) {
	t.Parallel()
	g := testGraphs()[0]
	srcs := graph.PickSources(g, 2, 43)

	type outcome struct {
		res *Result
		err error
	}
	run := func(workers int, gpuDriven bool) outcome {
		dev := pagingDevice(workers, gpuDriven)
		dg, err := Upload(dev, g, UVM, 8)
		if err != nil {
			return outcome{err: err}
		}
		res, err := BFS(dev, dg, srcs[0], Merged)
		return outcome{res: res, err: err}
	}
	for _, gpuDriven := range []bool{false, true} {
		serial := run(1, gpuDriven)
		parallel := run(8, gpuDriven)
		if serial.err != nil || parallel.err != nil {
			t.Fatalf("gpuDriven=%v: serial err %v, parallel err %v", gpuDriven, serial.err, parallel.err)
		}
		if serial.res.Elapsed != parallel.res.Elapsed ||
			serial.res.Stats.UVMMigrations != parallel.res.Stats.UVMMigrations ||
			serial.res.Stats.PCIePayloadBytes != parallel.res.Stats.PCIePayloadBytes {
			t.Errorf("gpuDriven=%v: serial vs parallel drift: %v/%d/%d vs %v/%d/%d", gpuDriven,
				serial.res.Elapsed, serial.res.Stats.UVMMigrations, serial.res.Stats.PCIePayloadBytes,
				parallel.res.Elapsed, parallel.res.Stats.UVMMigrations, parallel.res.Stats.PCIePayloadBytes)
		}
		// Batched lanes must reproduce the individual runs' values exactly.
		dev := pagingDevice(0, gpuDriven)
		dg, err := Upload(dev, g, UVM, 8)
		if err != nil {
			t.Fatal(err)
		}
		specs := []BatchSpec{{Src: srcs[0]}, {Src: srcs[1]}}
		out, err := RunBatchAlgo(context.Background(), dev, dg, "bfs", specs, Merged)
		if err != nil {
			t.Fatalf("gpuDriven=%v: batch: %v", gpuDriven, err)
		}
		for i, item := range out.Results {
			if item.Err != nil {
				t.Fatalf("gpuDriven=%v lane %d: %v", gpuDriven, i, item.Err)
			}
			if err := item.Res.Validate(g); err != nil {
				t.Errorf("gpuDriven=%v lane %d: %v", gpuDriven, i, err)
			}
		}
		lane0 := out.Results[0].Res
		for i := range lane0.Values {
			if lane0.Values[i] != serial.res.Values[i] {
				t.Fatalf("gpuDriven=%v: batched lane diverges from solo run at vertex %d", gpuDriven, i)
			}
		}
	}

	// The two models must agree on migrations and traffic: GPU-driven paging
	// changes only the time accounting.
	cpu := run(1, false)
	gpuRes := run(1, true)
	if cpu.res.Stats.UVMMigrations != gpuRes.res.Stats.UVMMigrations {
		t.Errorf("paging models disagree on migrations: cpu %d vs gpu %d",
			cpu.res.Stats.UVMMigrations, gpuRes.res.Stats.UVMMigrations)
	}
	if cpu.res.Stats.PCIePayloadBytes != gpuRes.res.Stats.PCIePayloadBytes {
		t.Errorf("paging models disagree on wire payload: cpu %d vs gpu %d",
			cpu.res.Stats.PCIePayloadBytes, gpuRes.res.Stats.PCIePayloadBytes)
	}
	if gpuRes.res.Elapsed >= cpu.res.Elapsed {
		t.Errorf("GPU-driven paging should beat the serialized CPU fault handler on a migration-bound run: gpu %v vs cpu %v",
			gpuRes.res.Elapsed, cpu.res.Elapsed)
	}
}

// TestWeightedSpillHomes loads a weighted graph whose edge list alone
// oversubscribes host DRAM (promoted from the PR 9 review scratch test,
// which only checked that the upload did not error). The edge list must
// split across DRAM and CXL, and the weight list — planned after the edges
// have consumed DRAM — must land entirely on the CXL tier rather than OOM
// against a full DRAM. Traversal over the split layout must stay exact and
// actually exercise both links.
func TestWeightedSpillHomes(t *testing.T) {
	t.Parallel()
	g := graph.RMAT("wspill", 8192, 24, 0.57, 0.19, 0.19, true, 1)
	g.InitWeights(7, 1, 64)
	edgeBytes := g.NumEdges() * 8
	hostCap := edgeBytes/2 + 4096 // roughly half the edge list fits
	dev := threeTierDevice(hostCap, 4*edgeBytes, false)
	dg, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
	if err != nil {
		t.Fatalf("weighted spill upload failed: %v", err)
	}
	edgeDRAM := dg.Edges.HomedBytes(memsys.SpaceHostPinned)
	edgeCXL := dg.Edges.HomedBytes(memsys.SpaceCXL)
	if edgeDRAM == 0 || edgeCXL == 0 {
		t.Fatalf("edge list should split across DRAM and CXL, got DRAM=%d CXL=%d", edgeDRAM, edgeCXL)
	}
	if edgeDRAM+edgeCXL != edgeBytes {
		t.Errorf("edge homes do not cover the list: DRAM %d + CXL %d != %d", edgeDRAM, edgeCXL, edgeBytes)
	}
	wBytes := g.NumEdges() * 4
	wDRAM := dg.Weights.HomedBytes(memsys.SpaceHostPinned)
	wCXL := dg.Weights.HomedBytes(memsys.SpaceCXL)
	if wDRAM+wCXL != wBytes {
		t.Errorf("weight homes do not cover the list: DRAM %d + CXL %d != %d", wDRAM, wCXL, wBytes)
	}
	// DRAM was filled by the edge prefix; the capacity-aware weight plan
	// must have pushed every weight segment that no longer fits out to CXL.
	if free := dev.Arena().HostFree(); free < 0 || wDRAM > edgeBytes/2 {
		t.Errorf("weight list overcommitted DRAM: %d weight bytes in DRAM, %d free", wDRAM, free)
	}
	src := graph.PickSources(g, 1, 43)[0]
	res, err := SSSP(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatalf("SSSP over split weighted layout: %v", err)
	}
	if err := res.Validate(g); err != nil {
		t.Errorf("split-layout SSSP wrong: %v", err)
	}
	if res.Stats.CXLRequests == 0 {
		t.Error("traversal over CXL-homed segments recorded no CXL requests")
	}
	dg.Free(dev)
	if got := dev.Arena().CXLUsed(); got != 0 {
		t.Errorf("CXL bytes leaked after Free: %d", got)
	}
}

// TestWeightsJustOverflowHomes is the boundary case: the edge list fits host
// DRAM exactly, so only the weight list overflows (promoted from the PR 9
// review scratch test). The edges must stay entirely DRAM-homed and the
// weights must spill their tail to CXL — the upload used to OOM here because
// the weight list inherited the edges' "everything fits" plan.
func TestWeightsJustOverflowHomes(t *testing.T) {
	t.Parallel()
	g := graph.RMAT("woverflow", 8192, 24, 0.57, 0.19, 0.19, true, 1)
	g.InitWeights(7, 1, 64)
	edgeBytes := g.NumEdges() * 8
	hostCap := edgeBytes + 4096 // edges fit, edges+weights do not
	dev := threeTierDevice(hostCap, 4*edgeBytes, false)
	dg, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
	if err != nil {
		t.Fatalf("weights-overflow upload failed: %v", err)
	}
	if got := dg.Edges.HomedBytes(memsys.SpaceCXL); got != 0 {
		t.Errorf("edge list fits DRAM but %d bytes landed on CXL", got)
	}
	if got := dg.Edges.HomedBytes(memsys.SpaceHostPinned); got != edgeBytes {
		t.Errorf("edge list should be fully DRAM-homed: %d of %d bytes", got, edgeBytes)
	}
	wBytes := g.NumEdges() * 4
	wDRAM := dg.Weights.HomedBytes(memsys.SpaceHostPinned)
	wCXL := dg.Weights.HomedBytes(memsys.SpaceCXL)
	if wCXL == 0 {
		t.Fatalf("weight list should spill to CXL (DRAM=%d CXL=%d)", wDRAM, wCXL)
	}
	if wDRAM+wCXL != wBytes {
		t.Errorf("weight homes do not cover the list: DRAM %d + CXL %d != %d", wDRAM, wCXL, wBytes)
	}
	src := graph.PickSources(g, 1, 43)[0]
	res, err := SSSP(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatalf("SSSP over spilled weights: %v", err)
	}
	if err := res.Validate(g); err != nil {
		t.Errorf("spilled-weights SSSP wrong: %v", err)
	}
	if res.Stats.CXLRequests == 0 {
		t.Error("traversal over CXL-homed weights recorded no CXL requests")
	}
	dg.Free(dev)
	if got := dev.Arena().CXLUsed(); got != 0 {
		t.Errorf("CXL bytes leaked after Free: %d", got)
	}
}
