package core

import "testing"

// BenchmarkAdaptiveDecide measures the per-round host cost of the adaptive
// policy's decision pass over a GK-sized partition table (21 segments at
// the probe scale; 64 here to be conservative). This is pure host
// orchestration overhead — it must stay far below the microseconds-range
// simulated round times it steers.
func BenchmarkAdaptiveDecide(b *testing.B) {
	const nParts = 64
	costs := CostParams{
		SegmentBytes:          64 << 10,
		ZCBytesPerSec:         12.3e9,
		ZCSecondsPerRequest:   6.74e-9,
		CritSecondsPerRequest: 45.3e-9,
		BulkBytesPerSec:       12.3e9,
		UVMBytesPerSec:        9.12e9,
		UVMChunkBytes:         128 << 10,
		StagedBudgetBytes:     512 << 10,
		UVMBudgetBytes:        768 << 10,
		HoldRounds:            2,
		SwitchMargin:          1.25,
	}
	parts := make([]PartitionStats, nParts)
	state := make([]PartitionState, nParts)
	for i := range parts {
		parts[i] = PartitionStats{
			Bytes:             64 << 10,
			AccessedBytes:     int64(i) * 1024,
			Requests:          int64(i) * 40,
			MaxVertexRequests: int64(i),
			ActiveVertices:    i * 10,
		}
		state[i] = PartitionState{Choice: Choice(i % 3), Since: i % 5, SpentSeconds: float64(i) * 1e-6}
		state[i].Staged = state[i].Choice == ChoiceStaged
	}
	pol := AdaptivePolicy()
	out := make([]Choice, nParts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Decide(i%16, parts, state, costs, out)
	}
}
