package core

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// Failure injection and degenerate-input tests: the library must fail
// loudly on impossible configurations and behave sensibly on pathological
// graphs.

func TestUploadHostMemoryExhausted(t *testing.T) {
	g := testGraphs()[0]
	dev := gpu.NewDevice(gpu.Config{
		HostMemBytes: 1024, // host cannot hold the edge list
		HBM:          memsys.HBM2V100(),
		HostDRAM:     memsys.DDR4Quad(),
		Link:         pcie.Gen3x16(),
	})
	if _, err := Upload(dev, g, ZeroCopy, 8); err == nil {
		t.Errorf("expected host OOM")
	}
}

func TestBFSZeroUVMCache(t *testing.T) {
	// GPU memory just fits the explicit buffers, leaving (almost) no UVM
	// page cache: every access bounces pages but results stay correct.
	g := graph.Urand("gu", 300, 8, 1)
	g.InitWeights(1, 8, 72)
	need := int64(g.NumVertices()+1)*8 + int64(g.NumVertices())*4*2 + 4096*4
	dev := gpu.NewDevice(gpu.Config{
		MemBytes: need,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
	dg, err := Upload(dev, g, UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 1)[0]
	res, err := BFS(dev, dg, src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, src, res.Values); err != nil {
		t.Errorf("thrash-heavy UVM BFS wrong: %v", err)
	}
	if res.Stats.UVMMigrations == 0 {
		t.Errorf("expected migrations under page pressure")
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := &graph.CSR{Name: "one", Offsets: []int64{0, 0}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(dev, dg, 0, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 0 {
		t.Errorf("source level = %d, want 0", res.Values[0])
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (empty first frontier)", res.Iterations)
	}
	cc, err := CC(dev, dg, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Values[0] != 0 {
		t.Errorf("CC label = %d, want 0", cc.Values[0])
	}
}

func TestIsolatedSourceBFS(t *testing.T) {
	// BFS from a vertex with no edges: one empty kernel round, all other
	// vertices unreached.
	g := graph.FromEdges("iso", 8, []graph.Edge{{Src: 1, Dst: 2}}, false)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(dev, dg, 5, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, 5, res.Values); err != nil {
		t.Error(err)
	}
	if graph.ReachableCount(res.Values) != 1 {
		t.Errorf("isolated source should reach only itself")
	}
}

func TestAllVariantsOnPathGraph(t *testing.T) {
	// A long path stresses the iteration loop: depth = n-1 kernels.
	const n = 64
	edges := make([]graph.Edge, 0, n-1)
	for v := uint32(0); v < n-1; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1})
	}
	g := graph.FromEdges("path", n, edges, false)
	g.InitWeights(1, 8, 72)
	for _, variant := range allVariants {
		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BFS(dev, dg, 0, variant)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateBFS(g, 0, res.Values); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if res.Iterations != n {
			t.Errorf("%s: iterations = %d, want %d", variant, res.Iterations, n)
		}
		sp, err := SSSP(dev, dg, 0, variant)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateSSSP(g, 0, sp.Values); err != nil {
			t.Fatalf("%s SSSP: %v", variant, err)
		}
	}
}

func TestMisalignedEdgeBufferBase(t *testing.T) {
	// An edge buffer whose base is 32B off the 128B boundary: the aligned
	// variant still produces correct results (alignment is relative to
	// addresses, not list indices).
	g := testGraphs()[1]
	dev := testDevice()
	arena := dev.Arena()
	n := g.NumVertices()
	offsets, err := arena.Alloc("off", memsys.SpaceGPU, int64(n+1)*8)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := arena.Alloc("edg", memsys.SpaceHostPinned, g.NumEdges()*8,
		memsys.WithBaseOffset(32))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v <= n; v++ {
		offsets.PutU64(int64(v), uint64(g.Offsets[v]))
	}
	for i, d := range g.Dst {
		edges.PutU64(int64(i), uint64(d))
	}
	dg := &DeviceGraph{Graph: g, Transport: ZeroCopy, EdgeBytes: 8,
		Offsets: offsets, Edges: edges}
	src := graph.PickSources(g, 1, 1)[0]
	res, err := BFS(dev, dg, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, src, res.Values); err != nil {
		t.Errorf("misaligned base broke correctness: %v", err)
	}
	// And the monitor should see split requests (the base offset defeats
	// index-based alignment).
	if dev.Monitor().SizeFraction(128) > 0.9 {
		t.Errorf("misaligned base should reduce the 128B share")
	}
}

func TestSelfLoopHeavyInput(t *testing.T) {
	// Self loops are dropped at construction; a traversal over what
	// remains must agree with the reference.
	edges := []graph.Edge{{Src: 0, Dst: 0}, {Src: 1, Dst: 1}, {Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	g := graph.FromEdges("loops", 3, edges, false)
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(dev, dg, 0, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, 0, res.Values); err != nil {
		t.Error(err)
	}
}

func TestRepeatedRunsIndependent(t *testing.T) {
	// Back-to-back runs on one device must not contaminate each other:
	// same source gives identical values and (with cold caches) identical
	// traffic.
	g := testGraphs()[0]
	dev := testDevice()
	dg, err := Upload(dev, g, UVM, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.PickSources(g, 1, 1)[0]
	dev.ResetUVMResidency()
	a, err := BFS(dev, dg, src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetUVMResidency()
	b, err := BFS(dev, dg, src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.UVMMigrations != b.Stats.UVMMigrations {
		t.Errorf("cold runs differ: %d vs %d migrations",
			a.Stats.UVMMigrations, b.Stats.UVMMigrations)
	}
	for v := range a.Values {
		if a.Values[v] != b.Values[v] {
			t.Fatalf("values diverge at %d", v)
		}
	}
	// A warm second run must migrate less.
	c, err := BFS(dev, dg, src, Merged)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.UVMMigrations >= b.Stats.UVMMigrations {
		t.Errorf("warm run should migrate fewer pages: %d vs %d",
			c.Stats.UVMMigrations, b.Stats.UVMMigrations)
	}
}
