package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// TestCompressionRoundTripProperty feeds randomized sorted adjacency
// structures through the encoder and checks exact reconstruction: for any
// graph, DecodeList must reproduce Neighbors verbatim, and the compressed
// extent must never exceed the plain 8-byte layout.
func TestCompressionRoundTripProperty(t *testing.T) {
	f := func(raw []uint16, nSeed uint8) bool {
		n := 50 + int(nSeed)%200
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				Src: uint32(int(raw[i]) % n),
				Dst: uint32(int(raw[i+1]) % n),
			})
		}
		g := graph.FromEdges("q", n, edges, false)
		dev := testDevice()
		cdg, err := UploadCompressed(dev, g)
		if err != nil {
			return false
		}
		defer cdg.Free(dev)
		if cdg.CompressedBytes > cdg.PlainBytes && g.NumEdges() > 0 {
			return false
		}
		for v := 0; v < n; v++ {
			want := g.Neighbors(v)
			got := cdg.DecodeList(v)
			if len(got) != len(want) {
				return false
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCompressedBFSAgreesWithPlainProperty: for random graphs, the
// compressed traversal and the plain traversal produce identical levels.
func TestCompressedBFSAgreesWithPlainProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Urand("q", 300, 10, seed)
		src := graph.PickSources(g, 1, seed)[0]

		devA := testDevice()
		dgA, err := Upload(devA, g, ZeroCopy, 8)
		if err != nil {
			return false
		}
		plain, err := BFS(devA, dgA, src, MergedAligned)
		if err != nil {
			return false
		}
		devB := testDevice()
		cdg, err := UploadCompressed(devB, g)
		if err != nil {
			return false
		}
		comp, err := BFSCompressed(devB, cdg, src)
		if err != nil {
			return false
		}
		for v := range plain.Values {
			if plain.Values[v] != comp.Values[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
