package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// This file is the adaptive transport policy's determinism suite. The
// policy contract (TransportPolicy.Decide) demands a pure function of its
// arguments — no clocks, no randomness, no retained state — and the
// runtime contract demands that a routed run's decision sequence is a pure
// function of (graph, source, rounds): identical across worker counts,
// identical between the batched and single-source engines, and replayed
// identically by a fault-injected retry.

// adaptDevice mirrors the V100PCIe3 platform at dataset scale 0.05: a
// capped device whose GPU memory is smaller than the test graphs' edge
// lists, so the adaptive policy faces real staging and UVM budget
// pressure instead of trivially promoting everything.
func adaptDevice(workers int) *gpu.Device {
	s := 0.05 / 1000.0 // dataset scale x the repo's 1:1000 reduction
	return gpu.NewDevice(gpu.Config{
		Name:               "test-v100-capped",
		Workers:            workers,
		MemBytes:           int64(float64(int64(16)<<30) * s),
		HostMemBytes:       int64(float64(int64(256)<<30) * s),
		L2Bytes:            int64(float64(int64(6)<<20) * s),
		MaxConcurrentLanes: int(float64(80*2048) * s),
		HBM:                memsys.HBM2V100(),
		HostDRAM:           memsys.DDR4Quad(),
		Link:               pcie.Gen3x16(),
	})
}

// decisionLog records the per-round transport decision stream in a
// canonical textual form so two runs can be compared for exact equality.
type decisionLog struct{ rounds []string }

func (l *decisionLog) RunBegin(*gpu.Device, gpu.RunLabels) {}
func (l *decisionLog) RunEnd(*gpu.Device)                  {}
func (l *decisionLog) KernelDone(*gpu.Device, *gpu.KernelStats, int, int, time.Duration, time.Duration) {
}
func (l *decisionLog) CopyDone(*gpu.Device, bool, int64, time.Duration, time.Duration)  {}
func (l *decisionLog) RoundDone(*gpu.Device, string, int, time.Duration, time.Duration) {}
func (l *decisionLog) TransportDecisions(_ *gpu.Device, round int, moves []gpu.TransportMove, _, _ time.Duration) {
	l.rounds = append(l.rounds, fmt.Sprintf("%d:%v", round, moves))
}

func sameDecisions(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// adaptiveRun executes one routed traversal with the adaptive policy on a
// fresh capped device, returning the result and the decision stream.
func adaptiveRun(t *testing.T, g *graph.CSR, algo string, src, workers int, variant Variant) (*Result, []string) {
	t.Helper()
	dev := adaptDevice(workers)
	log := &decisionLog{}
	dev.SetTelemetry(log)
	dg, err := UploadPolicy(dev, g, AdaptivePolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LookupAlgorithm(algo).Run(context.Background(), dev, dg, src, variant)
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", g.Name, algo, workers, err)
	}
	if err := res.Validate(g); err != nil {
		t.Fatalf("%s/%s workers=%d: %v", g.Name, algo, workers, err)
	}
	return res, log.rounds
}

// TestAdaptiveDecidePure: Decide is a pure function — repeated calls with
// identical inputs produce identical outputs, garbage in the out slice is
// fully overwritten, and the inputs are never mutated.
func TestAdaptiveDecidePure(t *testing.T) {
	pol := AdaptivePolicy()
	costs := CostParams{
		SegmentBytes:          64 << 10,
		ZCBytesPerSec:         12.3e9,
		ZCSecondsPerRequest:   6.74e-9,
		CritSecondsPerRequest: 45.3e-9,
		BulkBytesPerSec:       12.3e9,
		UVMBytesPerSec:        9.12e9,
		UVMChunkBytes:         128 << 10,
		StagedBudgetBytes:     160 << 10,
		UVMBudgetBytes:        512 << 10,
		HoldRounds:            2,
		SwitchMargin:          1.25,
	}
	parts := []PartitionStats{
		{Bytes: 64 << 10, AccessedBytes: 60 << 10, Requests: 500, MaxVertexRequests: 40, ActiveVertices: 900},
		{Bytes: 64 << 10, AccessedBytes: 2 << 10, Requests: 64, MaxVertexRequests: 2, ActiveVertices: 3},
		{Bytes: 64 << 10, AccessedBytes: 0, Requests: 0},
		{Bytes: 64 << 10, AccessedBytes: 30 << 10, Requests: 4000, MaxVertexRequests: 800, ActiveVertices: 400},
		{Bytes: 32 << 10, AccessedBytes: 31 << 10, Requests: 250, MaxVertexRequests: 9, ActiveVertices: 500},
	}
	state := []PartitionState{
		{Choice: ChoiceZeroCopy, Since: -1, SpentSeconds: 4e-5},
		{Choice: ChoiceUVM, Since: 1},
		{Choice: ChoiceZeroCopy, Since: -1},
		{Choice: ChoiceStaged, Since: 0, Staged: true},
		{Choice: ChoiceZeroCopy, Since: -1, SpentSeconds: 9e-5},
	}
	partsCopy := append([]PartitionStats(nil), parts...)
	stateCopy := append([]PartitionState(nil), state...)

	var ref []Choice
	for trial := 0; trial < 3; trial++ {
		out := make([]Choice, len(parts))
		for i := range out {
			out[i] = Choice(trial + i) // garbage the policy must overwrite
		}
		pol.Decide(3, parts, state, costs, out)
		if trial == 0 {
			ref = out
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("trial %d: out[%d] = %v, first call said %v", trial, i, out[i], ref[i])
			}
		}
	}
	for i := range parts {
		if parts[i] != partsCopy[i] || state[i] != stateCopy[i] {
			t.Fatalf("Decide mutated its inputs at partition %d", i)
		}
	}
}

// TestAdaptiveSerialParallelEquivalence: a routed adaptive run is
// bit-for-bit identical — values, iterations, simulated elapsed, kernel
// stats, and the full decision stream — whether kernels run on one worker
// goroutine or eight.
func TestAdaptiveSerialParallelEquivalence(t *testing.T) {
	for _, tc := range []struct{ sym, algo string }{{"GK", "bfs"}, {"GU", "sssp"}} {
		spec, err := graph.BySym(tc.sym)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Build(0.05, 42)
		src := graph.PickSources(g, 1, 71)[0]
		t.Run(tc.sym+"/"+tc.algo, func(t *testing.T) {
			res1, dec1 := adaptiveRun(t, g, tc.algo, src, 1, Naive)
			res8, dec8 := adaptiveRun(t, g, tc.algo, src, 8, Naive)
			assertResultsEqual(t, res1, res8)
			if !sameDecisions(dec1, dec8) {
				t.Errorf("decision streams differ:\nserial:   %v\nparallel: %v", dec1, dec8)
			}
			if len(dec1) == 0 {
				t.Error("adaptive run decided nothing; test exercised no policy rounds")
			}
		})
	}
}

// TestAdaptiveBatchedMatchesSingle: a single-lane batched run under the
// adaptive policy reproduces the single-source engine's values and round
// count, and repeated batched runs replay an identical decision stream.
// (The batched engine walks merged regardless of variant, so the
// comparison uses Merged on both sides.)
func TestAdaptiveBatchedMatchesSingle(t *testing.T) {
	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.05, 42)
	src := graph.PickSources(g, 1, 71)[0]
	single, _ := adaptiveRun(t, g, "sssp", src, 1, Merged)

	batched := func() (*Result, []string) {
		dev := adaptDevice(1)
		log := &decisionLog{}
		dev.SetTelemetry(log)
		dg, err := UploadPolicy(dev, g, AdaptivePolicy(), 8)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunBatchAlgo(context.Background(), dev, dg, "sssp", []BatchSpec{{Src: src}}, Merged)
		if err != nil {
			t.Fatal(err)
		}
		if out.Results[0].Err != nil {
			t.Fatal(out.Results[0].Err)
		}
		return out.Results[0].Res, log.rounds
	}
	b1, d1 := batched()
	b2, d2 := batched()
	if !sameLane(b1, single) {
		t.Errorf("batched lane diverged from single-source run: %d rounds vs %d", b1.Iterations, single.Iterations)
	}
	if !sameLane(b2, b1) {
		t.Errorf("repeated batched runs diverged: %d rounds vs %d", b2.Iterations, b1.Iterations)
	}
	if !sameDecisions(d1, d2) {
		t.Errorf("repeated batched runs decided differently:\nfirst:  %v\nsecond: %v", d1, d2)
	}
	if len(d1) == 0 {
		t.Error("batched adaptive run decided nothing")
	}
}

// TestAdaptiveFaultRetryReplaysDecisions: the policy runtime resets UVM
// and staged residency at run start, so a fault-injected retry observes
// the same cold substrate state and replays the identical decision
// sequence — every faulted attempt's stream is a prefix of the clean
// run's, and the clean run matches a fault-free reference exactly.
func TestAdaptiveFaultRetryReplaysDecisions(t *testing.T) {
	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.05, 42)
	src := graph.PickSources(g, 1, 71)[0]
	_, want := adaptiveRun(t, g, "bfs", src, 1, Naive)

	inj, err := fault.New(fault.Config{Seed: 29, ReadFaultRate: 0.0004})
	if err != nil {
		t.Fatal(err)
	}
	s := 0.05 / 1000.0
	link := pcie.Gen3x16()
	link.Faults = inj
	dev := gpu.NewDevice(gpu.Config{
		Name:               "test-v100-capped-faulty",
		Workers:            1,
		MemBytes:           int64(float64(int64(16)<<30) * s),
		HostMemBytes:       int64(float64(int64(256)<<30) * s),
		L2Bytes:            int64(float64(int64(6)<<20) * s),
		MaxConcurrentLanes: int(float64(80*2048) * s),
		HBM:                memsys.HBM2V100(),
		HostDRAM:           memsys.DDR4Quad(),
		Link:               link,
	})
	log := &decisionLog{}
	dev.SetTelemetry(log)
	dg, err := UploadPolicy(dev, g, AdaptivePolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}

	faulted := 0
	var res *Result
	for attempt := 0; attempt < 100; attempt++ {
		log.rounds = log.rounds[:0]
		r, err := BFSContext(context.Background(), dev, dg, src, Naive)
		if err == nil {
			res = r
			break
		}
		if !errors.Is(err, fault.ErrTransient) {
			t.Fatalf("attempt %d failed non-transiently: %v", attempt, err)
		}
		faulted++
		// A faulted attempt aborts at a round boundary; everything it
		// decided up to that point must match the clean stream's prefix.
		if len(log.rounds) > len(want) {
			t.Fatalf("faulted attempt decided %d rounds, clean run only %d", len(log.rounds), len(want))
		}
		if !sameDecisions(log.rounds, want[:len(log.rounds)]) {
			t.Fatalf("faulted attempt %d diverged from the clean decision stream:\n got %v\nwant %v",
				attempt, log.rounds, want[:len(log.rounds)])
		}
	}
	if res == nil {
		t.Fatalf("no clean epoch within 100 attempts (all %d faulted); rate too high", faulted)
	}
	if faulted == 0 {
		t.Fatal("first epoch was already clean; raise the rate so the test exercises a retry")
	}
	if err := res.Validate(g); err != nil {
		t.Fatalf("retried run produced wrong output: %v", err)
	}
	if !sameDecisions(log.rounds, want) {
		t.Errorf("clean retry decided differently from the fault-free reference:\n got %v\nwant %v", log.rounds, want)
	}
}

// TestColdCachesEvictsStagedSegments: an adaptive run leaves staged
// segment copies behind for warm reruns; ResetUVMResidency (the device
// half of System.ColdCaches) must evict them along with UVM pages so a
// "cold" rerun is honestly cold.
func TestColdCachesEvictsStagedSegments(t *testing.T) {
	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.05, 42)
	src := graph.PickSources(g, 1, 71)[0]
	dev := adaptDevice(1)
	dg, err := UploadPolicy(dev, g, AdaptivePolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LookupAlgorithm("sssp").Run(context.Background(), dev, dg, src, Naive); err != nil {
		t.Fatal(err)
	}
	if n := dg.Edges.StagedSegments(); n == 0 {
		t.Fatal("adaptive run staged no segments; the eviction test exercised nothing")
	}
	dev.ResetUVMResidency()
	if n := dg.Edges.StagedSegments(); n != 0 {
		t.Errorf("ResetUVMResidency left %d staged segments resident", n)
	}
	if dg.Weights != nil {
		if n := dg.Weights.StagedSegments(); n != 0 {
			t.Errorf("ResetUVMResidency left %d staged weight segments resident", n)
		}
	}
}

// FuzzTransportPolicy: under arbitrary partition shapes the adaptive
// policy must stay deterministic, emit only valid choices, and respect
// the staged budget.
func FuzzTransportPolicy(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), int64(192<<10), 4)
	f.Add(uint64(0), uint64(0), uint64(0), int64(0), 1)
	f.Add(uint64(1<<40), uint64(7), uint64(999), int64(-1), 9)
	f.Fuzz(func(t *testing.T, a, b, c uint64, budget int64, nParts int) {
		if nParts < 1 || nParts > 64 {
			return
		}
		costs := CostParams{
			SegmentBytes:          64 << 10,
			ZCBytesPerSec:         12.3e9,
			ZCSecondsPerRequest:   6.74e-9,
			CritSecondsPerRequest: 45.3e-9,
			BulkBytesPerSec:       12.3e9,
			UVMBytesPerSec:        9.12e9,
			UVMChunkBytes:         128 << 10,
			StagedBudgetBytes:     budget,
			UVMBudgetBytes:        budget * 2,
			HoldRounds:            2,
			SwitchMargin:          1.25,
		}
		// Derive partitions from the seed words with an xorshift mix; the
		// generator is deterministic so failures minimize and replay.
		x := a ^ b<<21 ^ c<<42 ^ 0x9e3779b97f4a7c15
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		parts := make([]PartitionStats, nParts)
		state := make([]PartitionState, nParts)
		for i := range parts {
			bytes := int64(next()%(64<<10)) + 1
			parts[i] = PartitionStats{
				Bytes:             bytes,
				AccessedBytes:     int64(next() % uint64(bytes+1)),
				Requests:          int64(next() % 5000),
				MaxVertexRequests: int64(next() % 1000),
				ActiveVertices:    int(next() % 2000),
			}
			state[i] = PartitionState{
				Choice:       Choice(next() % 3),
				Since:        int(next()%8) - 1,
				SpentSeconds: float64(next()%1000) * 1e-6,
			}
			state[i].Staged = state[i].Choice == ChoiceStaged
		}
		pol := AdaptivePolicy()
		out1 := make([]Choice, nParts)
		out2 := make([]Choice, nParts)
		for i := range out2 {
			out2[i] = ChoiceStaged // garbage that must be overwritten
		}
		round := int(next() % 16)
		pol.Decide(round, parts, state, costs, out1)
		pol.Decide(round, parts, state, costs, out2)
		var stagedBytes int64
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("nondeterministic decision at partition %d: %v vs %v", i, out1[i], out2[i])
			}
			if out1[i] > ChoiceStaged {
				t.Fatalf("invalid choice %d at partition %d", out1[i], i)
			}
			if out1[i] == ChoiceStaged {
				stagedBytes += parts[i].Bytes
			}
		}
		if costs.StagedBudgetBytes >= 0 && stagedBytes > costs.StagedBudgetBytes {
			t.Fatalf("staged %d bytes over the %d budget", stagedBytes, costs.StagedBudgetBytes)
		}
	})
}
