// Package core implements EMOGI itself: zero-copy out-of-memory graph
// traversal on the simulated GPU. It provides the device-side graph layout
// (§4.2: vertex list in GPU memory, edge list in host memory), the three
// kernel access variants the paper evaluates — Naive (Listing 1), Merged
// (§4.3.1), and Merged+Aligned (§4.3.2 / Listing 2) — and the three
// traversal applications: BFS, SSSP, and CC.
package core

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// Variant selects the kernel access pattern (§5.1.2).
type Variant int

const (
	// Naive assigns one GPU thread per vertex; each thread iterates its
	// neighbor list alone, producing strided 32B requests (Listing 1).
	Naive Variant = iota
	// Merged assigns a full 32-thread warp per vertex so the coalescer can
	// merge lane accesses into large requests (§4.3.1).
	Merged
	// MergedAligned additionally shifts each warp's start down to the
	// closest preceding 128-byte boundary, masking the underflowed lanes
	// (§4.3.2, Listing 2's blue lines).
	MergedAligned
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case Merged:
		return "Merged"
	case MergedAligned:
		return "Merged+Aligned"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Transport selects where the edge list lives.
type Transport int

const (
	// ZeroCopy pins the edge list in host memory and has GPU threads read
	// it directly with cache-line-sized PCIe requests (EMOGI).
	ZeroCopy Transport = iota
	// UVM places the edge list in managed memory with read-mostly advice;
	// pages migrate to GPU memory on fault (the baseline, §5.1.2(a)).
	UVM
)

// String returns a short name for the transport.
func (t Transport) String() string {
	switch t {
	case ZeroCopy:
		return "zerocopy"
	case UVM:
		return "uvm"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Placement selects which host-side tier(s) the edge (and weight) list is
// homed on when the device has a CXL-class external tier. It is a no-op on
// two-tier devices: everything lands in host DRAM exactly as before.
type Placement int

const (
	// PlaceAuto fills host DRAM first and spills the tail segments to the
	// CXL tier only when DRAM capacity runs out (the default).
	PlaceAuto Placement = iota
	// PlaceDRAM forces the whole edge list into host DRAM; allocation fails
	// with ErrOutOfMemory if it does not fit.
	PlaceDRAM
	// PlaceCXL homes every edge segment on the CXL tier, leaving host DRAM
	// free (e.g. for other graphs or the adaptive host cache).
	PlaceCXL
)

// String returns the wire name for the placement ("auto", "dram", "cxl").
func (p Placement) String() string {
	switch p {
	case PlaceAuto:
		return "auto"
	case PlaceDRAM:
		return "dram"
	case PlaceCXL:
		return "cxl"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement maps a wire name back to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "auto", "":
		return PlaceAuto, nil
	case "dram":
		return PlaceDRAM, nil
	case "cxl":
		return PlaceCXL, nil
	default:
		return PlaceAuto, fmt.Errorf("core: unknown placement %q (want auto, dram, or cxl)", s)
	}
}

// DeviceGraph is a CSR graph laid out across the simulated system per
// §4.2: offsets (the vertex list) in GPU memory, edge destinations and
// weights in host memory (pinned or managed).
type DeviceGraph struct {
	Graph     *graph.CSR
	Transport Transport
	// EdgeBytes is the edge element width: 8 in the paper's main
	// experiments, 4 for the Subway comparison (Table 3).
	EdgeBytes int

	// Policy is the transport policy the graph was loaded under. Nil is
	// equivalent to the static policy for Transport (the pre-policy code
	// path, kept for direct Upload callers and old tests). Transport always
	// holds the policy's base transport — the space Edges/Weights were
	// actually allocated in — so static runs are untouched by the policy
	// layer.
	Policy TransportPolicy

	Offsets *memsys.Buffer // GPU, 8-byte elements, len n+1
	Edges   *memsys.Buffer // host, EdgeBytes elements, len |E|
	Weights *memsys.Buffer // host, 4-byte elements, len |E| (nil if unweighted)

	// freed guards Free against double-release (the arena treats a
	// double free as corruption, not a no-op).
	freed bool
}

// PolicyName returns the name of the transport policy governing this graph:
// the loaded policy's name, or the static policy name matching Transport
// when the graph was uploaded without one.
func (dg *DeviceGraph) PolicyName() string {
	if dg.Policy != nil {
		return dg.Policy.Name()
	}
	return StaticPolicyFor(dg.Transport).Name()
}

// NumVertices returns |V|.
func (dg *DeviceGraph) NumVertices() int { return dg.Graph.NumVertices() }

// ElemsPerCacheLine returns how many edge elements fit one 128B line: the
// alignment quantum of the MergedAligned variant (16 for 8-byte elements —
// Listing 2's `& ~0xF` — or 32 for 4-byte).
func (dg *DeviceGraph) ElemsPerCacheLine() int64 {
	return int64(memsys.CacheLineBytes / dg.EdgeBytes)
}

// Upload places g into the device's memory system. The offsets array
// always goes to GPU memory ("GPU memory is sufficient for the vertex
// list", §4.2); edges and weights go to pinned host memory (ZeroCopy) or
// managed memory (UVM).
func Upload(dev *gpu.Device, g *graph.CSR, transport Transport, edgeBytes int) (*DeviceGraph, error) {
	return UploadPolicy(dev, g, StaticPolicyFor(transport), edgeBytes)
}

// UploadPolicy places g into the device's memory system under a transport
// policy. The edge and weight lists are allocated in the policy's base
// space: pinned host memory unless the policy is statically UVM-bound.
// Routed (adaptive) policies start from pinned memory and rebind segments
// per round at run time. Edges are homed per PlaceAuto: host DRAM with
// CXL-tier spill only when DRAM is full.
func UploadPolicy(dev *gpu.Device, g *graph.CSR, policy TransportPolicy, edgeBytes int) (*DeviceGraph, error) {
	return UploadPolicyPlaced(dev, g, policy, edgeBytes, PlaceAuto)
}

// planHomes computes the per-segment tier homes for a host-side allocation
// of the given size under a placement. A nil plan means a plain single-space
// allocation (everything in host DRAM).
func planHomes(arena *memsys.Arena, size int64, placement Placement) ([]memsys.Space, error) {
	cxl := arena.CXLTier()
	if cxl == nil {
		if placement == PlaceCXL {
			return nil, fmt.Errorf("core: placement %q requires a CXL tier, and the device has none", placement)
		}
		return nil, nil
	}
	nseg := int((size + memsys.SegmentBytes - 1) / memsys.SegmentBytes)
	switch placement {
	case PlaceDRAM:
		return nil, nil
	case PlaceCXL:
		homes := make([]memsys.Space, nseg)
		for i := range homes {
			homes[i] = memsys.SpaceCXL
		}
		return homes, nil
	}
	// PlaceAuto: host DRAM first, spill the tail to CXL only under pressure.
	hostFree := arena.HostFree()
	if hostFree < 0 || size <= hostFree {
		return nil, nil
	}
	homes := make([]memsys.Space, nseg)
	var placed int64
	for i := range homes {
		segEnd := placed + memsys.SegmentBytes
		if segEnd > size {
			segEnd = size
		}
		if segEnd <= hostFree {
			homes[i] = memsys.SpaceHostPinned
		} else {
			homes[i] = memsys.SpaceCXL
		}
		placed = segEnd
	}
	return homes, nil
}

// weightHomes derives the weight buffer's segment homes from the edge plan:
// weights follow their edges' placement at segment granularity. Weight
// segment j covers the edges whose 4-byte weights occupy that segment, i.e.
// edge offset j*SegmentBytes/4*edgeBytes.
func weightHomes(edgeHomes []memsys.Space, weightSize int64, edgeBytes int) []memsys.Space {
	if edgeHomes == nil {
		return nil
	}
	nseg := int((weightSize + memsys.SegmentBytes - 1) / memsys.SegmentBytes)
	homes := make([]memsys.Space, nseg)
	for j := range homes {
		edgeOff := int64(j) * memsys.SegmentBytes / 4 * int64(edgeBytes)
		edgeSeg := int(edgeOff / memsys.SegmentBytes)
		if edgeSeg >= len(edgeHomes) {
			edgeSeg = len(edgeHomes) - 1
		}
		homes[j] = edgeHomes[edgeSeg]
	}
	return homes
}

// capHomesToHostFree rechecks a DRAM-destined segment plan against the host
// DRAM actually left (earlier allocations — the edge list — have consumed
// capacity since the plan was derived): DRAM-bound segments that no longer
// fit flip to CXL, earliest-fits-first, mirroring planHomes' fill-then-spill
// order. Homes already aimed at CXL are untouched.
func capHomesToHostFree(arena *memsys.Arena, homes []memsys.Space, size int64) []memsys.Space {
	hostFree := arena.HostFree()
	if hostFree < 0 {
		return homes // unlimited host DRAM
	}
	var dramBytes int64
	for j := range homes {
		if homes[j] != memsys.SpaceHostPinned {
			continue
		}
		segStart := int64(j) * memsys.SegmentBytes
		segEnd := segStart + memsys.SegmentBytes
		if segEnd > size {
			segEnd = size
		}
		if dramBytes+(segEnd-segStart) > hostFree {
			homes[j] = memsys.SpaceCXL
			continue
		}
		dramBytes += segEnd - segStart
	}
	return homes
}

// UploadPolicyPlaced is UploadPolicy with explicit tier placement for the
// edge and weight lists (see Placement). On devices without a CXL tier only
// PlaceAuto and PlaceDRAM are valid, and both are the historical layout.
func UploadPolicyPlaced(dev *gpu.Device, g *graph.CSR, policy TransportPolicy, edgeBytes int, placement Placement) (*DeviceGraph, error) {
	if policy == nil {
		policy = StaticPolicyFor(ZeroCopy)
	}
	transport := policyBase(policy)
	if edgeBytes != 4 && edgeBytes != 8 {
		return nil, fmt.Errorf("core: unsupported edge element width %d", edgeBytes)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: refusing to upload invalid graph: %w", err)
	}
	n := g.NumVertices()
	e := g.NumEdges()

	space := memsys.SpaceHostPinned
	if transport == UVM {
		space = memsys.SpaceUVM
	}
	arena := dev.Arena()

	offsets, err := arena.Alloc(g.Name+".offsets", memsys.SpaceGPU, int64(n+1)*8, memsys.WithElem(8))
	if err != nil {
		return nil, fmt.Errorf("core: allocating vertex list: %w", err)
	}
	edgeSize := e * int64(edgeBytes)
	edgeHomes, err := planHomes(arena, edgeSize, placement)
	if err != nil {
		arena.Free(offsets)
		return nil, err
	}
	edgeOpts := []memsys.AllocOption{memsys.WithElem(edgeBytes)}
	if edgeHomes != nil {
		edgeOpts = append(edgeOpts, memsys.WithSegmentHomes(edgeHomes))
	}
	edges, err := arena.Alloc(g.Name+".edges", space, edgeSize, edgeOpts...)
	if err != nil {
		arena.Free(offsets)
		return nil, fmt.Errorf("core: allocating edge list: %w", err)
	}
	dg := &DeviceGraph{
		Graph:     g,
		Transport: transport,
		Policy:    policy,
		EdgeBytes: edgeBytes,
		Offsets:   offsets,
		Edges:     edges,
	}
	for v := 0; v <= n; v++ {
		offsets.PutU64(int64(v), uint64(g.Offsets[v]))
	}
	if edgeBytes == 8 {
		for i, d := range g.Dst {
			edges.PutU64(int64(i), uint64(d))
		}
	} else {
		for i, d := range g.Dst {
			edges.PutU32(int64(i), d)
		}
	}
	if g.Weights != nil {
		// The weight plan runs after the edge allocation, so it sees the
		// host DRAM the edges actually consumed: segments the edge-derived
		// plan aims at DRAM spill to CXL once DRAM is exhausted, and a
		// weight list with no edge-derived plan (edges fully in DRAM) gets
		// its own capacity-aware plan instead of a guaranteed-OOM DRAM
		// allocation.
		wSize := e * 4
		wh := weightHomes(edgeHomes, wSize, edgeBytes)
		if wh == nil {
			wh, err = planHomes(arena, wSize, placement)
			if err != nil {
				arena.Free(offsets)
				arena.Free(edges)
				return nil, err
			}
		} else {
			wh = capHomesToHostFree(arena, wh, wSize)
		}
		wOpts := []memsys.AllocOption{memsys.WithElem(4)}
		if wh != nil {
			wOpts = append(wOpts, memsys.WithSegmentHomes(wh))
		}
		weights, err := arena.Alloc(g.Name+".weights", space, wSize, wOpts...)
		if err != nil {
			arena.Free(offsets)
			arena.Free(edges)
			return nil, fmt.Errorf("core: allocating weight list: %w", err)
		}
		for i, w := range g.Weights {
			weights.PutU32(int64(i), w)
		}
		dg.Weights = weights
	}
	// Explicit GPU allocations changed: refresh the UVM caching capacity.
	dev.ResetUVMResidency()
	return dg, nil
}

// ApplyPlacement re-homes an already-uploaded graph's edge and weight
// segments to match the requested placement, charging the data movement over
// the CXL link in whichever direction it crosses. PlaceAuto is sticky: it
// keeps whatever homes the graph already has. The move fails (leaving the
// already-moved prefix in place) if the destination tier runs out of
// capacity.
func ApplyPlacement(dev *gpu.Device, dg *DeviceGraph, placement Placement) error {
	if placement == PlaceAuto {
		return nil
	}
	arena := dev.Arena()
	if arena.CXLTier() == nil {
		if placement == PlaceCXL {
			return fmt.Errorf("core: placement %q requires a CXL tier, and the device has none", placement)
		}
		return nil // PlaceDRAM on a two-tier device is already the layout
	}
	target := memsys.SpaceHostPinned
	if placement == PlaceCXL {
		target = memsys.SpaceCXL
	}
	var toDRAM, toCXL int64
	rehome := func(b *memsys.Buffer) error {
		if b == nil {
			return nil
		}
		for s := 0; s < b.Segments(); s++ {
			cur := b.SegmentHome(s)
			if cur == target {
				continue
			}
			n := b.Size() - int64(s)*memsys.SegmentBytes
			if n > memsys.SegmentBytes {
				n = memsys.SegmentBytes
			}
			if err := arena.SetSegmentHome(b, s, target); err != nil {
				return fmt.Errorf("core: re-homing %q segment %d: %w", b.Name, s, err)
			}
			if target == memsys.SpaceCXL {
				toCXL += n
			} else {
				toDRAM += n
			}
		}
		return nil
	}
	if err := rehome(dg.Edges); err != nil {
		return err
	}
	if err := rehome(dg.Weights); err != nil {
		return err
	}
	if toDRAM > 0 {
		dev.PromoteFromCXL(toDRAM)
	}
	if toCXL > 0 {
		dev.DemoteToCXL(toCXL)
	}
	return nil
}

// Free releases the device graph's buffers. It is idempotent: freeing an
// already-freed graph is a no-op, so teardown paths (service shutdown,
// deferred unloads) can release unconditionally.
func (dg *DeviceGraph) Free(dev *gpu.Device) {
	if dg == nil || dg.freed {
		return
	}
	dg.freed = true
	arena := dev.Arena()
	arena.Free(dg.Offsets)
	arena.Free(dg.Edges)
	if dg.Weights != nil {
		arena.Free(dg.Weights)
	}
	dev.ResetUVMResidency()
}
