package core

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file implements the multi-GPU extension the paper defers to future
// work (§7: "EMOGI can be extended to support both multi-GPU and hybrid
// CPU-GPU computing"). N simulated GPUs hang off the host on independent
// PCIe links; vertices are partitioned by balanced edge count; every GPU
// keeps a full replica of the value array and traverses only its own
// partition's neighbor lists with zero-copy reads. After each iteration
// the replicas are min-reduced through the host and the vertices whose
// merged value changed form the next frontier — a delta-driven engine that
// covers all three applications:
//
//	BFS:  push value+1, start from the source          (unit-weight SSSP)
//	SSSP: push value+edge weight, start from the source
//	CC:   push the value itself, start from everyone
//
// The level-synchronous reduce is the simple design a first multi-GPU
// EMOGI would use; its cost is what makes the scaling sub-linear in the
// multi-GPU ablation.

// MultiSystem is a set of simulated GPUs sharing one host-resident graph.
type MultiSystem struct {
	devs   []*gpu.Device
	graph  *graph.CSR
	dgs    []*DeviceGraph
	bounds []int // len(devs)+1 partition boundaries in vertex IDs
}

// NewMultiSystem uploads g once per device (simulating a single shared
// pinned allocation) and computes an edge-balanced contiguous partition.
func NewMultiSystem(devs []*gpu.Device, g *graph.CSR, edgeBytes int) (*MultiSystem, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: MultiSystem needs at least one device")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ms := &MultiSystem{devs: devs, graph: g}
	for _, dev := range devs {
		dg, err := Upload(dev, g, ZeroCopy, edgeBytes)
		if err != nil {
			return nil, fmt.Errorf("core: multi-GPU upload: %w", err)
		}
		ms.dgs = append(ms.dgs, dg)
	}
	// Balanced partition: split vertex IDs so each device owns roughly
	// |E|/N arcs.
	n := g.NumVertices()
	ms.bounds = make([]int, len(devs)+1)
	target := g.NumEdges() / int64(len(devs))
	v := 0
	for i := 1; i < len(devs); i++ {
		var acc int64
		for v < n && acc < target {
			acc += g.Degree(v)
			v++
		}
		ms.bounds[i] = v
	}
	ms.bounds[len(devs)] = n
	return ms, nil
}

// Partition returns device i's vertex range [lo, hi).
func (ms *MultiSystem) Partition(i int) (lo, hi int) {
	return ms.bounds[i], ms.bounds[i+1]
}

// BFS runs multi-GPU breadth-first search from src.
func (ms *MultiSystem) BFS(src int) (*Result, error) {
	return ms.run(AppBFS, src)
}

// SSSP runs multi-GPU single-source shortest path from src.
func (ms *MultiSystem) SSSP(src int) (*Result, error) {
	if ms.graph.Weights == nil {
		return nil, fmt.Errorf("core: SSSP requires a weighted graph")
	}
	return ms.run(AppSSSP, src)
}

// CC runs multi-GPU connected components (undirected graphs only).
func (ms *MultiSystem) CC() (*Result, error) {
	if ms.graph.Directed {
		return nil, fmt.Errorf("core: CC requires an undirected graph")
	}
	return ms.run(AppCC, 0)
}

// run is the delta-driven multi-GPU engine shared by the three apps.
func (ms *MultiSystem) run(app App, src int) (*Result, error) {
	g := ms.graph
	n := g.NumVertices()
	if app != AppCC && (src < 0 || src >= n) {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, n)
	}
	nd := len(ms.devs)

	values := make([]*memsys.Buffer, nd)
	actives := make([]*memsys.Buffer, nd)
	flags := make([]*memsys.Buffer, nd)
	statStart := make([]gpu.KernelStats, nd)
	for i, dev := range ms.devs {
		statStart[i] = dev.Total()
		var err error
		values[i], err = dev.Arena().Alloc("mgpu.values", memsys.SpaceGPU, int64(n)*4)
		if err != nil {
			return nil, err
		}
		actives[i], err = dev.Arena().Alloc("mgpu.active", memsys.SpaceGPU, int64(n)*4)
		if err != nil {
			return nil, err
		}
		flags[i], err = dev.Arena().Alloc("mgpu.flag", memsys.SpaceGPU, 4)
		if err != nil {
			return nil, err
		}
		switch app {
		case AppCC:
			for v := 0; v < n; v++ {
				values[i].PutU32(int64(v), uint32(v))
				actives[i].PutU32(int64(v), 1)
			}
		default:
			for v := 0; v < n; v++ {
				values[i].PutU32(int64(v), graph.InfDist)
			}
			values[i].PutU32(int64(src), 0)
			actives[i].PutU32(int64(src), 1)
		}
		dev.CopyToDevice(int64(n) * 4 * 2)
	}

	// prev mirrors the merged value array for frontier detection.
	prev := make([]uint32, n)
	for v := 0; v < n; v++ {
		prev[v] = values[0].U32(int64(v))
	}

	var elapsed time.Duration
	for i, dev := range ms.devs {
		if dt := dev.Clock(); i == 0 || dt > elapsed {
			elapsed = dt
		}
	}
	clockMark := make([]time.Duration, nd)
	for i, dev := range ms.devs {
		clockMark[i] = dev.Clock()
	}

	needW := app == AppSSSP
	iterations := 0
	for {
		var levelMax time.Duration
		for i, dev := range ms.devs {
			lo, hi := ms.Partition(i)
			val, act, flag := values[i], actives[i], flags[i]
			flag.PutU32(0, 0)
			dev.CopyToDevice(4)
			visit := relaxVisitor(val, nil, flag, needW)
			dg := ms.dgs[i]
			// Serial launch: the kernel reads each source's value from the
			// live relax target (chained relaxation, no snapshot), so its
			// traffic depends on warp execution order.
			dev.Launch("mgpu/"+app.String(), hi-lo, func(w *gpu.Warp) {
				v := int64(lo + w.ID())
				if w.ScalarU32(act, v) == 0 {
					return
				}
				sv := w.ScalarU32(val, v)
				if sv == graph.InfDist {
					return
				}
				push := sv
				if app == AppBFS {
					push = sv + 1
				}
				walkMerged(w, dg, v, push, true, needW, visit)
			}, gpu.Serial())
			dev.CopyToHost(4)
			dev.CopyToHost(int64(n) * 4) // replica download for the reduce
			if dt := dev.Clock() - clockMark[i]; dt > levelMax {
				levelMax = dt
			}
		}
		iterations++

		// Host min-reduce; the delta against prev is the next frontier.
		changed := false
		for v := int64(0); v < int64(n); v++ {
			m := values[0].U32(v)
			for i := 1; i < nd; i++ {
				if x := values[i].U32(v); x < m {
					m = x
				}
			}
			isNew := m != prev[v]
			if isNew {
				changed = true
				prev[v] = m
			}
			for i := 0; i < nd; i++ {
				values[i].PutU32(v, m)
				if isNew {
					actives[i].PutU32(v, 1)
				} else {
					actives[i].PutU32(v, 0)
				}
			}
		}
		// Broadcast the merged values and the next frontier.
		var bcastMax time.Duration
		for _, dev := range ms.devs {
			mark := dev.Clock()
			dev.CopyToDevice(int64(n) * 4 * 2)
			if dt := dev.Clock() - mark; dt > bcastMax {
				bcastMax = dt
			}
		}
		elapsed += levelMax + bcastMax
		for i, dev := range ms.devs {
			clockMark[i] = dev.Clock()
		}
		if !changed {
			break
		}
	}

	out := make([]uint32, n)
	copy(out, prev)
	var stats gpu.KernelStats
	for i, dev := range ms.devs {
		d := dev.Total().Sub(statStart[i])
		stats.Add(&d)
		dev.Arena().Free(values[i])
		dev.Arena().Free(actives[i])
		dev.Arena().Free(flags[i])
	}
	resSrc := src
	if app == AppCC {
		resSrc = -1
	}
	return &Result{
		App:        app.String(),
		Variant:    MergedAligned,
		Transport:  ZeroCopy,
		Source:     resSrc,
		Values:     out,
		Iterations: iterations,
		Elapsed:    elapsed,
		Stats:      stats,
	}, nil
}

// Free releases all per-device graph buffers.
func (ms *MultiSystem) Free() {
	for i, dev := range ms.devs {
		ms.dgs[i].Free(dev)
	}
}
