package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// This file implements the multi-GPU extension the paper defers to future
// work (§7: "EMOGI can be extended to support both multi-GPU and hybrid
// CPU-GPU computing"). N simulated GPUs hang off the host on independent
// PCIe links; vertices are partitioned by balanced edge count; every GPU
// keeps a full replica of the value array and traverses only its own
// partition's neighbor lists with zero-copy reads. After each iteration
// the replicas are reduced through the host under the program's monoid and
// the vertices whose merged value changed form the next frontier — the
// frontier engine's delta-driven multiRun topology (engine.go), which
// serves any registered Program:
//
//	BFS:  push value+1, start from the source          (unit-weight SSSP)
//	SSSP: push value+edge weight, start from the source
//	CC:   push the value itself, start from everyone
//
// The level-synchronous reduce is the simple design a first multi-GPU
// EMOGI would use; its cost is what makes the scaling sub-linear in the
// multi-GPU ablation.

// MultiSystem is a set of simulated GPUs sharing one host-resident graph.
type MultiSystem struct {
	devs   []*gpu.Device
	graph  *graph.CSR
	dgs    []*DeviceGraph
	bounds []int // len(devs)+1 partition boundaries in vertex IDs
}

// NewMultiSystem uploads g once per device (simulating a single shared
// pinned allocation) and computes an edge-balanced contiguous partition.
func NewMultiSystem(devs []*gpu.Device, g *graph.CSR, edgeBytes int) (*MultiSystem, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: MultiSystem needs at least one device")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ms := &MultiSystem{devs: devs, graph: g}
	for _, dev := range devs {
		dg, err := Upload(dev, g, ZeroCopy, edgeBytes)
		if err != nil {
			return nil, fmt.Errorf("core: multi-GPU upload: %w", err)
		}
		ms.dgs = append(ms.dgs, dg)
	}
	// Balanced partition: split vertex IDs so each device owns roughly
	// |E|/N arcs.
	n := g.NumVertices()
	ms.bounds = make([]int, len(devs)+1)
	target := g.NumEdges() / int64(len(devs))
	v := 0
	for i := 1; i < len(devs); i++ {
		var acc int64
		for v < n && acc < target {
			acc += g.Degree(v)
			v++
		}
		ms.bounds[i] = v
	}
	ms.bounds[len(devs)] = n
	return ms, nil
}

// Partition returns device i's vertex range [lo, hi).
func (ms *MultiSystem) Partition(i int) (lo, hi int) {
	return ms.bounds[i], ms.bounds[i+1]
}

// BFS runs multi-GPU breadth-first search from src.
func (ms *MultiSystem) BFS(src int) (*Result, error) {
	return ms.BFSContext(context.Background(), src)
}

// BFSContext is BFS with cooperative cancellation at round boundaries
// (see cancel.go for the contract).
func (ms *MultiSystem) BFSContext(ctx context.Context, src int) (*Result, error) {
	return runMulti(ctx, ms, bfsProgram(), src)
}

// SSSP runs multi-GPU single-source shortest path from src.
func (ms *MultiSystem) SSSP(src int) (*Result, error) {
	return ms.SSSPContext(context.Background(), src)
}

// SSSPContext is SSSP with cooperative cancellation at round boundaries.
func (ms *MultiSystem) SSSPContext(ctx context.Context, src int) (*Result, error) {
	if ms.graph.Weights == nil {
		return nil, fmt.Errorf("core: SSSP requires a weighted graph")
	}
	return runMulti(ctx, ms, ssspProgram(), src)
}

// CC runs multi-GPU connected components (undirected graphs only).
func (ms *MultiSystem) CC() (*Result, error) {
	return ms.CCContext(context.Background())
}

// CCContext is CC with cooperative cancellation at round boundaries.
func (ms *MultiSystem) CCContext(ctx context.Context) (*Result, error) {
	if ms.graph.Directed {
		return nil, fmt.Errorf("core: CC requires an undirected graph")
	}
	return runMulti(ctx, ms, ccProgram(), 0)
}

// Free releases all per-device graph buffers.
func (ms *MultiSystem) Free() {
	for i, dev := range ms.devs {
		ms.dgs[i].Free(dev)
	}
}
