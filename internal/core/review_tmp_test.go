package core

import (
	"testing"

	"repro/internal/graph"
)

// Temporary review check: weighted graph spilling under PlaceAuto.
func TestReviewWeightedSpill(t *testing.T) {
	g := graph.RMAT("wspill", 8192, 24, 0.57, 0.19, 0.19, true, 1)
	g.InitWeights(7, 1, 64)
	edgeBytes := g.NumEdges() * 8
	hostCap := edgeBytes/2 + 4096
	dev := threeTierDevice(hostCap, 4*edgeBytes, false)
	_, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
	if err != nil {
		t.Fatalf("weighted spill upload failed: %v", err)
	}
}

// Temporary review check: weighted graph where edges fit DRAM exactly but
// weights push past it, with a CXL tier available.
func TestReviewWeightsJustOverflow(t *testing.T) {
	g := graph.RMAT("woverflow", 8192, 24, 0.57, 0.19, 0.19, true, 1)
	g.InitWeights(7, 1, 64)
	edgeBytes := g.NumEdges() * 8
	hostCap := edgeBytes + 4096 // edges fit, edges+weights do not
	dev := threeTierDevice(hostCap, 4*edgeBytes, false)
	_, err := UploadPolicyPlaced(dev, g, StaticPolicyFor(ZeroCopy), 8, PlaceAuto)
	if err != nil {
		t.Fatalf("weights-overflow upload failed: %v", err)
	}
}
