package core

import (
	"repro/internal/gpu"
	"repro/internal/memsys"
)

// The engine's standard programs share two kernel launch disciplines:
//
//   - match kernels (BFS): a vertex is active when its state equals the
//     current level, and it pushes the constant level+1 to its neighbors.
//   - active-set kernels (SSSP, CC, SSWP): a vertex is active when its
//     entry in an explicit active bitmap is set, and it pushes its own
//     state value (combined with the edge weight per the program's
//     monoid).
//
// Each discipline comes in the three access variants of §5.1.2: Naive
// (thread per vertex, Listing 1), Merged (warp per vertex, §4.3.1), and
// MergedAligned (warp per vertex shifted to the 128B boundary, §4.3.2).
//
// Both disciplines are materialized as small kernel objects whose launch
// body is built ONCE and reused for every round: the body reads the
// object's mutable per-round fields (level, visitor, buffers) instead of
// capturing per-round values, so a steady-state round allocates no
// closures (the zero-alloc round contract, see allocs_test.go). Warp-size
// arrays the body hands to the visitor route through the per-worker
// scratch for the same reason (see scratch.go).

// Parallel-determinism contract: kernels launched here run their warps on
// several workers at once (gpu.Config.Workers). A match kernel's activity
// predicate (state == match) is stable within a launch — entries only move
// from InfDist to match+1, and neither value equals match — so every
// warp's traffic depends on its ID alone. Active-set kernels additionally
// read per-vertex source values; callers must pass a `state` buffer the
// launch does not mutate (a snapshot of the relax target, see SSSP/CC) so
// those reads are stable too.

// matchKernel is the reusable match-by-level launch: per-round fields are
// assigned, then launch() runs the prebuilt body.
type matchKernel struct {
	dev   *gpu.Device
	name  string
	warps int
	body  func(w *gpu.Warp)

	// Per-round inputs, written before each launch and read by body.
	state   *memsys.Buffer
	match   uint32
	pushVal uint32
	visit   visitFn
}

func newMatchKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string) *matchKernel {
	k := &matchKernel{dev: dev, name: name}
	n := dg.NumVertices()
	switch variant {
	case Naive:
		k.warps = (n + gpu.WarpSize - 1) / gpu.WarpSize
		k.body = func(w *gpu.Warp) {
			vbase := int64(w.ID()) * gpu.WarpSize
			var idx [gpu.WarpSize]int64
			lanes := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if v := vbase + int64(l); v < int64(n) {
					idx[l] = v
					lanes = lanes.Set(l)
				}
			}
			states := w.GatherU32(k.state, &idx, lanes)
			active := gpu.MaskNone
			s := scratchOf(w)
			for l := 0; l < gpu.WarpSize; l++ {
				s.src[l] = 0
				if lanes.Has(l) && states[l] == k.match {
					active = active.Set(l)
					s.src[l] = k.pushVal
				}
			}
			walkStrided(w, dg, vbase, active, &s.src, false, k.visit)
		}
	case Merged, MergedAligned:
		aligned := variant == MergedAligned
		k.warps = n
		k.body = func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(k.state, v) != k.match {
				return
			}
			walkMerged(w, dg, v, k.pushVal, aligned, false, k.visit)
		}
	}
	return k
}

func (k *matchKernel) launch() { k.dev.Launch(k.name, k.warps, k.body) }

// activeKernel is the reusable explicit-active-set launch. needW selects
// whether edge weights are gathered; ident is the program's unreached
// value (the relax monoid's identity): vertices still holding it have
// nothing to push and are skipped. state is the buffer active vertices
// read their source value from; per the contract above it must not be
// written during the launch.
type activeKernel struct {
	dev   *gpu.Device
	name  string
	warps int
	body  func(w *gpu.Warp)

	// Per-round inputs, written before each launch and read by body.
	state  *memsys.Buffer
	active *memsys.Buffer
	visit  visitFn
}

func newActiveKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string, needW bool, ident uint32) *activeKernel {
	k := &activeKernel{dev: dev, name: name}
	n := dg.NumVertices()
	switch variant {
	case Naive:
		k.warps = (n + gpu.WarpSize - 1) / gpu.WarpSize
		k.body = func(w *gpu.Warp) {
			vbase := int64(w.ID()) * gpu.WarpSize
			var idx [gpu.WarpSize]int64
			lanes := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if v := vbase + int64(l); v < int64(n) {
					idx[l] = v
					lanes = lanes.Set(l)
				}
			}
			acts := w.GatherU32(k.active, &idx, lanes)
			actMask := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if lanes.Has(l) && acts[l] != 0 {
					actMask = actMask.Set(l)
				}
			}
			if actMask == gpu.MaskNone {
				return
			}
			s := scratchOf(w)
			s.src = w.GatherU32(k.state, &idx, actMask)
			work := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if actMask.Has(l) && s.src[l] != ident {
					work = work.Set(l)
				}
			}
			walkStrided(w, dg, vbase, work, &s.src, needW, k.visit)
		}
	case Merged, MergedAligned:
		aligned := variant == MergedAligned
		k.warps = n
		k.body = func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(k.active, v) == 0 {
				return
			}
			sv := w.ScalarU32(k.state, v)
			if sv == ident {
				return
			}
			walkMerged(w, dg, v, sv, aligned, needW, k.visit)
		}
	}
	return k
}

func (k *activeKernel) launch() { k.dev.Launch(k.name, k.warps, k.body) }

// launchMatchKernel runs one BFS-style iteration through a throwaway
// matchKernel. Specialty callers (direction-optimized push rounds) that
// mix disciplines round to round use it; the engine's standard round loop
// holds a matchKernel instead so steady-state rounds stay allocation-free.
func launchMatchKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string,
	state *memsys.Buffer, match, pushVal uint32, visit visitFn) {

	k := newMatchKernel(dev, dg, variant, name)
	k.state, k.match, k.pushVal, k.visit = state, match, pushVal, visit
	k.launch()
}

// launchActiveKernel runs one SSSP/CC-style iteration through a throwaway
// activeKernel; see launchMatchKernel for when to prefer a held kernel.
func launchActiveKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string,
	state, active *memsys.Buffer, needW bool, ident uint32, visit visitFn) {

	k := newActiveKernel(dev, dg, variant, name, needW, ident)
	k.state, k.active, k.visit = state, active, visit
	k.launch()
}
