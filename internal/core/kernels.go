package core

import (
	"repro/internal/gpu"
	"repro/internal/memsys"
)

// The engine's standard programs share two kernel launch disciplines:
//
//   - match kernels (BFS): a vertex is active when its state equals the
//     current level, and it pushes the constant level+1 to its neighbors.
//   - active-set kernels (SSSP, CC, SSWP): a vertex is active when its
//     entry in an explicit active bitmap is set, and it pushes its own
//     state value (combined with the edge weight per the program's
//     monoid).
//
// Each discipline comes in the three access variants of §5.1.2: Naive
// (thread per vertex, Listing 1), Merged (warp per vertex, §4.3.1), and
// MergedAligned (warp per vertex shifted to the 128B boundary, §4.3.2).

// Parallel-determinism contract: kernels launched here run their warps on
// several workers at once (gpu.Config.Workers). A match kernel's activity
// predicate (state == match) is stable within a launch — entries only move
// from InfDist to match+1, and neither value equals match — so every
// warp's traffic depends on its ID alone. Active-set kernels additionally
// read per-vertex source values; callers must pass a `state` buffer the
// launch does not mutate (a snapshot of the relax target, see SSSP/CC) so
// those reads are stable too.

// launchMatchKernel runs one BFS-style iteration.
func launchMatchKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string,
	state *memsys.Buffer, match, pushVal uint32, visit visitFn) {

	n := dg.NumVertices()
	switch variant {
	case Naive:
		warps := (n + gpu.WarpSize - 1) / gpu.WarpSize
		dev.Launch(name, warps, func(w *gpu.Warp) {
			vbase := int64(w.ID()) * gpu.WarpSize
			var idx [gpu.WarpSize]int64
			lanes := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if v := vbase + int64(l); v < int64(n) {
					idx[l] = v
					lanes = lanes.Set(l)
				}
			}
			states := w.GatherU32(state, &idx, lanes)
			active := gpu.MaskNone
			var srcVals [gpu.WarpSize]uint32
			for l := 0; l < gpu.WarpSize; l++ {
				if lanes.Has(l) && states[l] == match {
					active = active.Set(l)
					srcVals[l] = pushVal
				}
			}
			walkStrided(w, dg, vbase, active, &srcVals, false, visit)
		})
	case Merged, MergedAligned:
		aligned := variant == MergedAligned
		dev.Launch(name, n, func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(state, v) != match {
				return
			}
			walkMerged(w, dg, v, pushVal, aligned, false, visit)
		})
	}
}

// launchActiveKernel runs one SSSP/CC-style iteration over the explicit
// active set. needW selects whether edge weights are gathered. state is
// the buffer active vertices read their source value from; per the
// contract above it must not be written during the launch. ident is the
// program's unreached value (the relax monoid's identity): vertices still
// holding it have nothing to push and are skipped.
func launchActiveKernel(dev *gpu.Device, dg *DeviceGraph, variant Variant, name string,
	state, active *memsys.Buffer, needW bool, ident uint32, visit visitFn) {

	n := dg.NumVertices()
	switch variant {
	case Naive:
		warps := (n + gpu.WarpSize - 1) / gpu.WarpSize
		dev.Launch(name, warps, func(w *gpu.Warp) {
			vbase := int64(w.ID()) * gpu.WarpSize
			var idx [gpu.WarpSize]int64
			lanes := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if v := vbase + int64(l); v < int64(n) {
					idx[l] = v
					lanes = lanes.Set(l)
				}
			}
			acts := w.GatherU32(active, &idx, lanes)
			actMask := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if lanes.Has(l) && acts[l] != 0 {
					actMask = actMask.Set(l)
				}
			}
			if actMask == gpu.MaskNone {
				return
			}
			srcVals := w.GatherU32(state, &idx, actMask)
			work := gpu.MaskNone
			for l := 0; l < gpu.WarpSize; l++ {
				if actMask.Has(l) && srcVals[l] != ident {
					work = work.Set(l)
				}
			}
			walkStrided(w, dg, vbase, work, &srcVals, needW, visit)
		})
	case Merged, MergedAligned:
		aligned := variant == MergedAligned
		dev.Launch(name, n, func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(active, v) == 0 {
				return
			}
			sv := w.ScalarU32(state, v)
			if sv == ident {
				return
			}
			walkMerged(w, dg, v, sv, aligned, needW, visit)
		})
	}
}
