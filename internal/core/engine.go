package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
)

// This file is the repository's single traversal engine. Every traversal
// entry point — the paper's three applications, the sub-warp worker and
// balanced-scheduling studies, the compressed, edge-centric,
// direction-optimized, hybrid CPU-GPU, and multi-GPU extensions, and any
// new application — is a declarative Program descriptor plus an
// engineConfig (kernel choice, buffer names, device topology) over the one
// round loop implemented here. The loop, the runState lifecycle, the
// BeginRun/EmitRound/EndRun telemetry hooks, and the Result assembly exist
// exactly once; apps differ only in their descriptors.
//
// The design follows the observation that EMOGI's applications are one
// algorithm wearing different hats: an atomic-min (or atomic-max) relax
// over a frontier, iterated to a fixed point (§4.2, §5.4). A Program names
// the lattice (per-vertex init, relax monoid, convergence by the shared
// flag); the engine owns how rounds execute.
//
// Determinism contract: everything the engine does per round — flag clear,
// optional snapshot copy, kernel launch, flag readback, frontier swap —
// reproduces the exact simulated-operation sequence of the historical
// per-app loops, so Results, counters, and bench tables are bit-for-bit
// identical to the pre-engine implementations (pinned by
// results/golden-engine.json and the serial-vs-parallel and cross-impl
// equivalence suites).

// CombineOp folds an active vertex's pushed value with the traversed
// edge's weight into the relax candidate.
type CombineOp int

const (
	// CombineCarry pushes the source value unchanged (BFS levels, CC
	// labels).
	CombineCarry CombineOp = iota
	// CombineAdd adds the edge weight (SSSP path lengths).
	CombineAdd
	// CombineMin takes the smaller of value and weight (SSWP path widths:
	// a path is as wide as its narrowest edge).
	CombineMin
)

// Monoid is the pluggable relax operator: how candidates are formed from
// source values and edge weights, and which direction "improves" a
// destination's entry.
type Monoid struct {
	// Identity is the value of an unreached vertex (InfDist for min
	// lattices, 0 for max lattices). Active-set kernels skip vertices
	// still holding it.
	Identity uint32
	// Combine forms the relax candidate from (pushed value, edge weight).
	Combine CombineOp
	// Max relaxes with atomic-max instead of atomic-min (candidates
	// raise destination entries; SSWP).
	Max bool
}

// combine folds one pushed value with one edge weight.
func (m Monoid) combine(sv, w uint32) uint32 {
	switch m.Combine {
	case CombineAdd:
		return sv + w
	case CombineMin:
		if w < sv {
			return w
		}
		return sv
	default:
		return sv
	}
}

// better reports whether cand improves on cur under the monoid's order.
func (m Monoid) better(cand, cur uint32) bool {
	if m.Max {
		return cand > cur
	}
	return cand < cur
}

// visitor builds the engine's edge visitor from the monoid: for each
// traversed edge it computes the candidate value, atomically
// lowers (or raises, for a Max monoid) the destination's entry in target,
// and folds the per-lane success predicate into the convergence flag and,
// when nextActive is non-nil, the next-iteration active bitmap.
//
// Parallel-determinism contract: which lane observes its atomic succeed
// depends on warp execution order, but whether ANY candidate beat a
// destination's starting value this launch does not (the first lane to
// reach the round's extremum always observes success). The success bits
// therefore feed only commutative ORs, and both stores are issued
// unconditionally — the traffic depends on mask alone, never on race
// outcomes — so results and stats are bit-for-bit identical for any
// worker count (see DESIGN.md, "Parallel execution engine").
func (m Monoid) visitor(target, nextActive, flag *memsys.Buffer) visitFn {
	return func(w *gpu.Warp, mask gpu.Mask, dst *[gpu.WarpSize]uint32, wgt, srcVal *[gpu.WarpSize]uint32) {
		var idx [gpu.WarpSize]int64
		var val [gpu.WarpSize]uint32
		for l := 0; l < gpu.WarpSize; l++ {
			if !mask.Has(l) {
				continue
			}
			idx[l] = int64(dst[l])
			val[l] = m.combine(srcVal[l], wgt[l])
		}
		var old [gpu.WarpSize]uint32
		if m.Max {
			old = w.AtomicMaxU32(target, &idx, &val, mask)
		} else {
			old = w.AtomicMinU32(target, &idx, &val, mask)
		}
		var bits [gpu.WarpSize]uint32
		anySet := uint32(0)
		for l := 0; l < gpu.WarpSize; l++ {
			if mask.Has(l) && m.better(val[l], old[l]) {
				bits[l] = 1
				anySet = 1
			}
		}
		if nextActive != nil {
			w.AtomicOrU32(nextActive, &idx, &bits, mask)
		}
		w.AtomicOrScalarU32(flag, 0, anySet)
	}
}

// FrontierPolicy selects how a Program tracks its frontier.
type FrontierPolicy int

const (
	// FrontierMatch derives the frontier implicitly: a vertex is active
	// when its state equals the current round number (BFS levels). No
	// snapshot is needed because the activity predicate is stable within
	// a launch.
	FrontierMatch FrontierPolicy = iota
	// FrontierActive keeps an explicit active bitmap, double-buffered
	// across rounds, and reads source values from a round-boundary
	// snapshot of the value array so the racy-read/atomic-write kernel
	// stays bit-for-bit reproducible under the parallel launch engine
	// (Jacobi-style bulk-synchronous relaxation; see DESIGN.md).
	FrontierActive
)

// Program declares one traversal algorithm over the frontier engine. A new
// application is a Program plus a registry entry — no engine changes (see
// sswp.go for the worked example, and DESIGN.md §10 for the schema).
type Program struct {
	// App is the Result.App / telemetry label ("BFS", "SSSP", ...).
	App string
	// Frontier selects implicit (match-by-level) or explicit
	// (active-bitmap + snapshot) frontier tracking.
	Frontier FrontierPolicy
	// Relax is the monoid the edge visitor applies.
	Relax Monoid
	// Weighted gathers edge weights for the visitor (requires a weighted
	// graph).
	Weighted bool
	// NoSource marks source-free programs (CC): src is ignored and the
	// Result reports Source -1.
	NoSource bool
	// Init gives every vertex's initial value.
	Init func(v, src int) uint32
	// Seed marks the initial frontier (FrontierActive only).
	Seed func(v, src int) bool
	// Push maps an active vertex's state to the value it offers its
	// neighbors (before Combine folds in the edge weight). Nil means
	// identity; BFS pushes sv+1.
	Push func(sv uint32) uint32
	// Validate checks a finished value array against the CPU reference.
	Validate func(g *graph.CSR, src int, values []uint32) error
}

// push applies the Program's push map (identity when nil).
func (p *Program) push(sv uint32) uint32 {
	if p.Push != nil {
		return p.Push(sv)
	}
	return sv
}

// engineRound is the per-round context handed to kernel launchers: the
// live relax target, the buffer source values must be read from (a
// snapshot under FrontierActive), the current active bitmap, the
// convergence flag, and the monoid visitor for this round.
type engineRound struct {
	dev    *gpu.Device
	n      int
	level  uint32
	values *memsys.Buffer // live relax target
	state  *memsys.Buffer // source-value reads (snapshot when FrontierActive)
	cur    *memsys.Buffer // active bitmap (nil under FrontierMatch)
	flag   *memsys.Buffer
	visit  visitFn
}

// kernelFunc launches one round's kernel. Standard programs use
// stdMatchKernel/stdActiveKernel; specialty configurations (sub-warp
// workers, balanced scheduling, compressed or COO edge layouts,
// direction-optimized pull) supply their own.
type kernelFunc func(r *engineRound)

// engineConfig selects how a Program runs on one device: the kernel, the
// reported variant/transport, buffer names (kept stable so arena layout —
// and therefore request alignment — matches the historical
// implementations), and telemetry labels.
type engineConfig struct {
	variant      Variant
	transport    Transport
	graphName    string
	labelVariant string // RunLabels.Variant (defaults to variant.String())
	valueName    string
	snapName     string
	activeNames  [2]string
	roundName    string
	kernel       kernelFunc
	// dg, when set, enables the transport-policy layer for this run: the
	// engine resolves the effective policy (graph's loaded policy or a
	// context override) and, for routed policies, drives per-partition
	// decisions at round boundaries. Nil keeps the historical static path.
	dg *DeviceGraph
	// postRound observes each finished round (host-side only; it must not
	// touch the device). Direction-optimized BFS uses it to recount the
	// frontier that steers its push/pull heuristic.
	postRound func(r *engineRound, more bool)
}

// stdMatchKernel launches the standard match-by-level kernel discipline.
// The matchKernel (and its launch body) is built once on the first round
// and reused, so steady-state rounds only assign its per-round fields —
// part of the zero-alloc round contract (allocs_test.go).
func stdMatchKernel(dg *DeviceGraph, variant Variant, name string, prog *Program) kernelFunc {
	var k *matchKernel
	return func(r *engineRound) {
		if k == nil {
			k = newMatchKernel(r.dev, dg, variant, name)
		}
		k.state, k.match, k.pushVal, k.visit = r.values, r.level, prog.push(r.level), r.visit
		k.launch()
	}
}

// stdActiveKernel launches the standard explicit-active-set kernel
// discipline, holding its activeKernel across rounds like stdMatchKernel.
func stdActiveKernel(dg *DeviceGraph, variant Variant, name string, prog *Program) kernelFunc {
	var k *activeKernel
	return func(r *engineRound) {
		if k == nil {
			k = newActiveKernel(r.dev, dg, variant, name, prog.Weighted, prog.Relax.Identity)
		}
		k.state, k.active, k.visit = r.state, r.cur, r.visit
		k.launch()
	}
}

// topology runs one relaxation round at the given round number and
// reports whether any value changed (i.e. the traversal must continue).
// Three topologies exist: singleRun (one device), hybridRun (GPU + host
// CPU), and multiRun (N devices with a host reduce).
type topology interface {
	round(level uint32) bool

	// faultCount returns the topology's devices' cumulative injected read
	// -fault tally. runRounds snapshots it before the first round and
	// aborts with a *TransientError when a round increases it: the data
	// behind a failed completion is unusable, so the run's results cannot
	// be trusted. Always zero when fault injection is disabled.
	faultCount() uint64
}

// runRounds is the round loop — the only one in the codebase. It drives a
// topology to its fixed point and returns the iteration count.
//
// Cancellation is cooperative and lands only at round boundaries: the
// context is checked before every round (including the first, so an
// already-done context runs nothing), and a launched round always
// completes — the simulated device, like a real one, cannot abandon an
// in-flight kernel. A canceled run therefore leaves the device in the
// same state a completed run would.
func runRounds(ctx context.Context, app string, t topology) (int, error) {
	iterations := 0
	// Injected read faults also land at round boundaries: the faulted
	// round completes, then the run aborts with a *TransientError instead
	// of trusting data from failed completions. The baseline snapshot
	// scopes the check to this run (the device tally is cumulative).
	faultBase := t.faultCount()
	for level := uint32(0); ; level++ {
		if err := ctx.Err(); err != nil {
			return iterations, &CanceledError{App: app, Rounds: iterations, Cause: err}
		}
		more := t.round(level)
		if faulted := t.faultCount() - faultBase; faulted > 0 {
			return iterations + 1, &TransientError{App: app, Rounds: iterations + 1, Faults: faulted}
		}
		iterations++
		if !more {
			return iterations, nil
		}
	}
}

// singleRun is the standard one-device topology. Everything a round needs
// is prebuilt at run setup — the engineRound is an embedded value, the
// monoid visitors are constructed once (two under FrontierActive, one per
// identity of the double-buffered next-frontier bitmap), and the
// transport-policy density predicate reads its level from a field — so a
// steady-state round performs no heap allocation (allocs_test.go).
type singleRun struct {
	rs                      *runState
	prog                    *Program
	cfg                     *engineConfig
	n                       int
	prt                     *policyRuntime // non-nil only for routed transport-policy runs
	values, snap, cur, next *memsys.Buffer

	r          engineRound // reused per round
	visitMatch visitFn     // FrontierMatch visitor (no next-frontier bitmap)
	// FrontierActive visitors, keyed by which buffer is `next` this round.
	activeBuf   [2]*memsys.Buffer
	activeVisit [2]visitFn
	// Prebuilt density predicate for routed transport-policy runs; reads
	// predLevel so beforeRound needs no per-round closure.
	pred      func(v int) bool
	predLevel uint32
}

func (e *singleRun) faultCount() uint64 { return e.rs.dev.Total().FaultedReads }

// frontierActive reports whether v is in the frontier of the round about to
// execute — the host-side density predicate the transport-policy runtime
// samples. It mirrors the kernels' own activity tests: match-by-level for
// FrontierMatch, bitmap-and-non-identity for FrontierActive.
func (e *singleRun) frontierActive(v int, level uint32) bool {
	if e.prog.Frontier == FrontierActive {
		return e.cur.U32(int64(v)) != 0 && e.values.U32(int64(v)) != e.prog.Relax.Identity
	}
	return e.values.U32(int64(v)) == level
}

func (e *singleRun) round(level uint32) bool {
	dev := e.rs.dev
	roundStart := dev.Clock()
	if e.prt != nil {
		e.predLevel = level
		e.prt.beforeRound(int(level), e.pred)
	}
	e.rs.clearFlag()
	r := &e.r
	*r = engineRound{
		dev:    dev,
		n:      e.n,
		level:  level,
		values: e.values,
		state:  e.values,
		cur:    e.cur,
		flag:   e.rs.flag,
	}
	if e.prog.Frontier == FrontierActive {
		// Round-boundary snapshot: active vertices read their value from
		// here while atomic updates land in the live array, which keeps
		// reads independent of warp execution order.
		dev.CopyOnDevice(e.snap, e.values)
		r.state = e.snap
		if e.next == e.activeBuf[0] {
			r.visit = e.activeVisit[0]
		} else {
			r.visit = e.activeVisit[1]
		}
	} else {
		r.visit = e.visitMatch
	}
	e.cfg.kernel(r)
	more := e.rs.readFlag()
	dev.EmitRound(e.cfg.roundName, int(level), roundStart)
	if e.cfg.postRound != nil {
		e.cfg.postRound(r, more)
	}
	if more && e.prog.Frontier == FrontierActive {
		e.cur, e.next = e.next, e.cur
		dev.Memset(e.next, 0) // clear the new next-frontier (cudaMemsetAsync)
	}
	return more
}

// runProgram executes a Program on one device: buffer setup, state init
// and upload, the round loop, and Result assembly, with every run
// reported to the device's telemetry sink under the config's labels.
// Cancellation through ctx stops the run at the next round boundary with
// a *CanceledError; the per-run buffers are freed either way.
func runProgram(ctx context.Context, dev *gpu.Device, n int, prog *Program, src int, cfg *engineConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !prog.NoSource && (src < 0 || src >= n) {
		return nil, fmt.Errorf("core: %s source %d out of range [0,%d)", prog.App, src, n)
	}
	labelVariant := cfg.labelVariant
	if labelVariant == "" {
		labelVariant = cfg.variant.String()
	}
	// Resolve the transport policy for this run. Static policies matching
	// the graph's base transport take the historical fast path (no router,
	// no density accounting — bit-for-bit the pre-policy engine); anything
	// else routes per partition per round.
	pol, routed := effectivePolicy(ctx, cfg.dg)
	labelTransport := cfg.transport.String()
	if routed {
		labelTransport = pol.Name()
	}
	dev.BeginRun(gpu.RunLabels{App: prog.App, Variant: labelVariant,
		Transport: labelTransport, Graph: cfg.graphName})
	defer dev.EndRun()
	rs, err := newRunState(dev)
	if err != nil {
		return nil, err
	}
	values, err := rs.alloc(cfg.valueName, int64(n)*4)
	if err != nil {
		rs.abort()
		return nil, err
	}
	e := &singleRun{rs: rs, prog: prog, cfg: cfg, n: n, values: values}
	if prog.Frontier == FrontierActive {
		if e.snap, err = rs.alloc(cfg.snapName, int64(n)*4); err != nil {
			rs.abort()
			return nil, err
		}
		if e.cur, err = rs.alloc(cfg.activeNames[0], int64(n)*4); err != nil {
			rs.abort()
			return nil, err
		}
		if e.next, err = rs.alloc(cfg.activeNames[1], int64(n)*4); err != nil {
			rs.abort()
			return nil, err
		}
		// The two frontier bitmaps alternate as `next` across rounds;
		// prebuild one visitor per identity so rounds just select one.
		e.activeBuf[0], e.activeBuf[1] = e.cur, e.next
		e.activeVisit[0] = prog.Relax.visitor(values, e.cur, rs.flag)
		e.activeVisit[1] = prog.Relax.visitor(values, e.next, rs.flag)
	} else {
		e.visitMatch = prog.Relax.visitor(values, nil, rs.flag)
	}
	e.pred = func(v int) bool { return e.frontierActive(v, e.predLevel) }
	// Initialize per-vertex state (and the seed frontier) host-side, then
	// model the initial upload.
	for v := 0; v < n; v++ {
		values.PutU32(int64(v), prog.Init(v, src))
	}
	uploadWords := int64(1)
	if prog.Frontier == FrontierActive {
		for v := 0; v < n; v++ {
			if prog.Seed(v, src) {
				e.cur.PutU32(int64(v), 1)
			}
		}
		uploadWords = 2 // values + initial frontier upload
	}
	dev.CopyToDevice(int64(n) * 4 * uploadWords)

	if routed {
		// Built after the per-run buffers exist so the staged budget sees
		// the GPU memory actually left for this run.
		e.prt = newPolicyRuntime(dev, cfg.dg, pol, cfg.variant, prog.Weighted)
		defer e.prt.close()
	}

	iterations, err := runRounds(ctx, prog.App, e)
	if err != nil {
		rs.abort()
		return nil, err
	}
	res := rs.finish(prog.App, cfg.variant, cfg.transport, src, values, n, iterations)
	if prog.NoSource {
		res.Source = -1 // source-free programs (CC) have no source vertex
	}
	if pol != nil {
		res.Policy = pol.Name()
	} else if cfg.dg != nil {
		res.Policy = cfg.dg.PolicyName()
	}
	return res, nil
}

// hybridRun is the collaborative CPU-GPU topology (§7): the host CPU
// traverses vertices [0, split) directly from its own memory while the
// GPU covers [split, n) with zero-copy reads; the two value replicas are
// reduced under the Program's monoid between rounds. Restricted to
// FrontierMatch programs with a Carry monoid (the CPU side relaxes
// unweighted).
type hybridRun struct {
	h       *HybridSystem
	prog    *Program
	n       int
	labels  *memsys.Buffer
	flag    *memsys.Buffer
	cpuVals []uint32
	visit   visitFn
	elapsed time.Duration
	mark    time.Duration
}

func (hr *hybridRun) faultCount() uint64 { return hr.h.dev.Total().FaultedReads }

func (hr *hybridRun) round(level uint32) bool {
	h := hr.h
	dev := h.dev
	roundStart := dev.Clock()
	// GPU side: vertices [split, n).
	hr.flag.PutU32(0, 0)
	dev.CopyToDevice(4)
	dev.Launch("hbfs/gpu", hr.n-h.split, func(w *gpu.Warp) {
		v := int64(h.split + w.ID())
		if w.ScalarU32(hr.labels, v) != level {
			return
		}
		walkMerged(w, h.dg, v, hr.prog.push(level), true, false, hr.visit)
	})
	dev.CopyToHost(4)
	gpuChanged := hr.flag.U32(0) != 0
	dev.CopyToHost(int64(hr.n) * 4) // replica download for the reduce
	gpuTime := dev.Clock() - hr.mark

	// CPU side, concurrently: vertices [0, split).
	var cpuBytes int64
	cpuChanged := false
	push := hr.prog.push(level)
	for v := 0; v < h.split; v++ {
		if hr.cpuVals[v] != level {
			continue
		}
		cpuBytes += h.graph.Degree(v) * int64(h.dg.EdgeBytes)
		for _, u := range h.graph.Neighbors(v) {
			if hr.prog.Relax.better(push, hr.cpuVals[u]) {
				hr.cpuVals[u] = push
				cpuChanged = true
			}
		}
	}
	cpuTime := h.cfg.CPUIterOverhead +
		time.Duration(float64(cpuBytes)/h.cfg.CPUScanBytesPerSec*float64(time.Second))

	levelTime := gpuTime
	if cpuTime > levelTime {
		levelTime = cpuTime
	}

	// Reduce the two replicas under the monoid, then re-upload the GPU
	// copy.
	for v := int64(0); v < int64(hr.n); v++ {
		gl := hr.labels.U32(v)
		cl := hr.cpuVals[v]
		m := gl
		if hr.prog.Relax.better(cl, m) {
			m = cl
		}
		hr.labels.PutU32(v, m)
		hr.cpuVals[v] = m
	}
	preUp := dev.Clock()
	dev.CopyToDevice(int64(hr.n) * 4)
	levelTime += dev.Clock() - preUp

	hr.elapsed += levelTime
	hr.mark = dev.Clock()
	dev.EmitRound("hbfs", int(level), roundStart)
	return gpuChanged || cpuChanged
}

// runHybrid executes a match-policy Program on the hybrid CPU-GPU
// topology.
func runHybrid(ctx context.Context, h *HybridSystem, prog *Program, src int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := h.graph
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: %s source %d out of range [0,%d)", prog.App, src, n)
	}
	dev := h.dev
	dev.BeginRun(gpu.RunLabels{App: prog.App, Variant: "hybrid",
		Transport: ZeroCopy.String(), Graph: g.Name})
	defer dev.EndRun()
	statStart := dev.Total()

	labels, err := dev.Arena().Alloc("hbfs.labels", memsys.SpaceGPU, int64(n)*4)
	if err != nil {
		return nil, err
	}
	defer dev.Arena().Free(labels)
	flag, err := dev.Arena().Alloc("hbfs.flag", memsys.SpaceGPU, 4)
	if err != nil {
		return nil, err
	}
	defer dev.Arena().Free(flag)
	for v := 0; v < n; v++ {
		labels.PutU32(int64(v), prog.Init(v, src))
	}
	dev.CopyToDevice(int64(n) * 4)

	// The CPU's value replica.
	cpuVals := make([]uint32, n)
	for v := range cpuVals {
		cpuVals[v] = prog.Init(v, src)
	}

	hr := &hybridRun{
		h:       h,
		prog:    prog,
		n:       n,
		labels:  labels,
		flag:    flag,
		cpuVals: cpuVals,
		visit:   prog.Relax.visitor(labels, nil, flag),
		elapsed: dev.Clock(),
		mark:    dev.Clock(),
	}
	iterations, err := runRounds(ctx, prog.App, hr)
	if err != nil {
		return nil, err // labels and flag are freed by the defers above
	}

	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = labels.U32(int64(v))
	}
	return &Result{
		App:        prog.App,
		Variant:    MergedAligned,
		Transport:  ZeroCopy,
		Source:     src,
		Values:     out,
		Iterations: iterations,
		Elapsed:    hr.elapsed,
		Stats:      dev.Total().Sub(statStart),
	}, nil
}

// multiRun is the N-device topology (§7): each device traverses its own
// vertex partition against a full value replica; after each round the
// replicas are reduced through the host under the Program's monoid and
// the vertices whose merged value changed form the next frontier — a
// delta-driven frontier that serves all delta-monotone programs (BFS as
// unit-weight SSSP via Push, SSSP, CC).
type multiRun struct {
	ms        *MultiSystem
	prog      *Program
	n         int
	values    []*memsys.Buffer
	actives   []*memsys.Buffer
	flags     []*memsys.Buffer
	prev      []uint32
	clockMark []time.Duration
	elapsed   time.Duration
}

func (mr *multiRun) faultCount() uint64 {
	var total uint64
	for _, dev := range mr.ms.devs {
		total += dev.Total().FaultedReads
	}
	return total
}

func (mr *multiRun) round(level uint32) bool {
	ms := mr.ms
	nd := len(ms.devs)
	var levelMax time.Duration
	for i, dev := range ms.devs {
		lo, hi := ms.Partition(i)
		val, act, flag := mr.values[i], mr.actives[i], mr.flags[i]
		roundStart := mr.clockMark[i]
		flag.PutU32(0, 0)
		dev.CopyToDevice(4)
		visit := mr.prog.Relax.visitor(val, nil, flag)
		dg := ms.dgs[i]
		prog := mr.prog
		// Serial launch: the kernel reads each source's value from the
		// live relax target (chained relaxation, no snapshot), so its
		// traffic depends on warp execution order.
		dev.Launch("mgpu/"+prog.App, hi-lo, func(w *gpu.Warp) {
			v := int64(lo + w.ID())
			if w.ScalarU32(act, v) == 0 {
				return
			}
			sv := w.ScalarU32(val, v)
			if sv == prog.Relax.Identity {
				return
			}
			walkMerged(w, dg, v, prog.push(sv), true, prog.Weighted, visit)
		}, gpu.Serial())
		dev.CopyToHost(4)
		dev.CopyToHost(int64(mr.n) * 4) // replica download for the reduce
		if dt := dev.Clock() - mr.clockMark[i]; dt > levelMax {
			levelMax = dt
		}
		dev.EmitRound("mgpu/"+prog.App, int(level), roundStart)
	}

	// Host reduce under the monoid; the delta against prev is the next
	// frontier.
	changed := false
	for v := int64(0); v < int64(mr.n); v++ {
		m := mr.values[0].U32(v)
		for i := 1; i < nd; i++ {
			if x := mr.values[i].U32(v); mr.prog.Relax.better(x, m) {
				m = x
			}
		}
		isNew := m != mr.prev[v]
		if isNew {
			changed = true
			mr.prev[v] = m
		}
		for i := 0; i < nd; i++ {
			mr.values[i].PutU32(v, m)
			if isNew {
				mr.actives[i].PutU32(v, 1)
			} else {
				mr.actives[i].PutU32(v, 0)
			}
		}
	}
	// Broadcast the merged values and the next frontier.
	var bcastMax time.Duration
	for _, dev := range ms.devs {
		mark := dev.Clock()
		dev.CopyToDevice(int64(mr.n) * 4 * 2)
		if dt := dev.Clock() - mark; dt > bcastMax {
			bcastMax = dt
		}
	}
	mr.elapsed += levelMax + bcastMax
	for i, dev := range ms.devs {
		mr.clockMark[i] = dev.Clock()
	}
	return changed
}

// runMulti executes a Program on the multi-GPU topology.
func runMulti(ctx context.Context, ms *MultiSystem, prog *Program, src int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := ms.graph
	n := g.NumVertices()
	if !prog.NoSource && (src < 0 || src >= n) {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, n)
	}
	nd := len(ms.devs)
	for _, dev := range ms.devs {
		dev.BeginRun(gpu.RunLabels{App: prog.App, Variant: "multi-gpu",
			Transport: ZeroCopy.String(), Graph: g.Name})
	}
	defer func() {
		for _, dev := range ms.devs {
			dev.EndRun()
		}
	}()

	mr := &multiRun{
		ms:      ms,
		prog:    prog,
		n:       n,
		values:  make([]*memsys.Buffer, nd),
		actives: make([]*memsys.Buffer, nd),
		flags:   make([]*memsys.Buffer, nd),
	}
	// freeAll releases whatever per-device buffers exist so every exit —
	// alloc failure, cancellation, completion — leaves the arenas clean.
	freeAll := func() {
		for i, dev := range ms.devs {
			for _, b := range []*memsys.Buffer{mr.values[i], mr.actives[i], mr.flags[i]} {
				if b != nil {
					dev.Arena().Free(b)
				}
			}
		}
	}
	statStart := make([]gpu.KernelStats, nd)
	for i, dev := range ms.devs {
		statStart[i] = dev.Total()
		var err error
		mr.values[i], err = dev.Arena().Alloc("mgpu.values", memsys.SpaceGPU, int64(n)*4)
		if err != nil {
			freeAll()
			return nil, err
		}
		mr.actives[i], err = dev.Arena().Alloc("mgpu.active", memsys.SpaceGPU, int64(n)*4)
		if err != nil {
			freeAll()
			return nil, err
		}
		mr.flags[i], err = dev.Arena().Alloc("mgpu.flag", memsys.SpaceGPU, 4)
		if err != nil {
			freeAll()
			return nil, err
		}
		for v := 0; v < n; v++ {
			mr.values[i].PutU32(int64(v), prog.Init(v, src))
			if prog.Seed(v, src) {
				mr.actives[i].PutU32(int64(v), 1)
			}
		}
		dev.CopyToDevice(int64(n) * 4 * 2)
	}

	// prev mirrors the merged value array for frontier detection.
	mr.prev = make([]uint32, n)
	for v := 0; v < n; v++ {
		mr.prev[v] = mr.values[0].U32(int64(v))
	}

	for i, dev := range ms.devs {
		if dt := dev.Clock(); i == 0 || dt > mr.elapsed {
			mr.elapsed = dt
		}
	}
	mr.clockMark = make([]time.Duration, nd)
	for i, dev := range ms.devs {
		mr.clockMark[i] = dev.Clock()
	}

	iterations, err := runRounds(ctx, prog.App, mr)
	if err != nil {
		freeAll()
		return nil, err
	}

	out := make([]uint32, n)
	copy(out, mr.prev)
	var stats gpu.KernelStats
	for i, dev := range ms.devs {
		d := dev.Total().Sub(statStart[i])
		stats.Add(&d)
	}
	freeAll()
	resSrc := src
	if prog.NoSource {
		resSrc = -1
	}
	return &Result{
		App:        prog.App,
		Variant:    MergedAligned,
		Transport:  ZeroCopy,
		Source:     resSrc,
		Values:     out,
		Iterations: iterations,
		Elapsed:    mr.elapsed,
		Stats:      stats,
	}, nil
}

// runState carries the engine's shared plumbing: the convergence flag,
// the device clock/stat baseline, and per-run GPU buffers to free.
type runState struct {
	dev        *gpu.Device
	flag       *memsys.Buffer
	freeList   []*memsys.Buffer
	clockStart time.Duration
	statStart  gpu.KernelStats
}

func newRunState(dev *gpu.Device) (*runState, error) {
	flag, err := dev.Arena().Alloc("flag", memsys.SpaceGPU, 4)
	if err != nil {
		return nil, fmt.Errorf("core: allocating convergence flag: %w", err)
	}
	rs := &runState{
		dev:        dev,
		flag:       flag,
		clockStart: dev.Clock(),
		statStart:  dev.Total(),
	}
	rs.freeList = append(rs.freeList, flag)
	return rs, nil
}

// alloc creates a per-run GPU buffer that finish will release.
func (rs *runState) alloc(name string, size int64) (*memsys.Buffer, error) {
	b, err := rs.dev.Arena().Alloc(name, memsys.SpaceGPU, size)
	if err != nil {
		return nil, fmt.Errorf("core: allocating %s: %w", name, err)
	}
	rs.freeList = append(rs.freeList, b)
	return b, nil
}

// abort releases the per-run buffers without assembling a Result — the
// cancellation and alloc-failure path. The arena is left exactly as a
// completed run leaves it, so the same graph is immediately traversable
// again.
func (rs *runState) abort() {
	for _, b := range rs.freeList {
		rs.dev.Arena().Free(b)
	}
}

// clearFlag resets the convergence flag before a kernel (a 4-byte
// host-to-device write).
func (rs *runState) clearFlag() {
	rs.flag.PutU32(0, 0)
	rs.dev.CopyToDevice(4)
}

// readFlag reads the convergence flag back after a kernel (a 4-byte
// device-to-host read).
func (rs *runState) readFlag() bool {
	rs.dev.CopyToHost(4)
	return rs.flag.U32(0) != 0
}

// finish downloads the n-element 4-byte result array from values, frees
// per-run buffers, and assembles the Result.
func (rs *runState) finish(app string, variant Variant, transport Transport, src int, values *memsys.Buffer, n int, iterations int) *Result {
	rs.dev.CopyToHost(int64(n) * 4)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = values.U32(int64(i))
	}
	for _, b := range rs.freeList {
		rs.dev.Arena().Free(b)
	}
	return &Result{
		App:        app,
		Variant:    variant,
		Transport:  transport,
		Source:     src,
		Values:     out,
		Iterations: iterations,
		Elapsed:    rs.dev.Clock() - rs.clockStart,
		Stats:      rs.dev.Total().Sub(rs.statStart),
	}
}
