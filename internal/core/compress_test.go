package core

import (
	"testing"

	"repro/internal/graph"
)

func TestCompressRoundTrip(t *testing.T) {
	for _, g := range testGraphs() {
		dev := testDevice()
		cdg, err := UploadCompressed(dev, g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			want := g.Neighbors(v)
			got := cdg.DecodeList(v)
			if len(got) != len(want) {
				t.Fatalf("%s vertex %d: decoded %d neighbors, want %d",
					g.Name, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s vertex %d neighbor %d: %d != %d",
						g.Name, v, i, got[i], want[i])
				}
			}
		}
		cdg.Free(dev)
	}
}

func TestCompressShrinks(t *testing.T) {
	// Web graphs have strong ID locality: deltas are tiny and the ratio
	// should be large. 8-byte plain elements compress at least 3x.
	g := graph.Web("sk", 4096, 24, 5)
	dev := testDevice()
	cdg, err := UploadCompressed(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	if r := cdg.Ratio(); r < 3 {
		t.Errorf("web graph compression ratio = %.2f, want >= 3", r)
	}
	if cdg.CompressedBytes >= cdg.PlainBytes {
		t.Errorf("compression did not shrink: %d >= %d",
			cdg.CompressedBytes, cdg.PlainBytes)
	}
}

func TestCompressEmptyLists(t *testing.T) {
	g := graph.FromEdges("sparse", 10, []graph.Edge{{Src: 0, Dst: 9}}, false)
	dev := testDevice()
	cdg, err := UploadCompressed(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := cdg.DecodeList(5); got != nil {
		t.Errorf("isolated vertex decoded %v, want nil", got)
	}
	if got := cdg.DecodeList(0); len(got) != 1 || got[0] != 9 {
		t.Errorf("DecodeList(0) = %v, want [9]", got)
	}
}

func TestCompressWideDeltas(t *testing.T) {
	// A list whose gaps exceed 16 bits must fall back to 4-byte deltas and
	// still round-trip.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 70000}, {Src: 0, Dst: 200000}}
	g := graph.FromEdges("wide", 200001, edges, true)
	dev := testDevice()
	cdg, err := UploadCompressed(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	got := cdg.DecodeList(0)
	want := []uint32{1, 70000, 200000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wide delta decode wrong: %v", got)
		}
	}
}

func TestBFSCompressedCorrectness(t *testing.T) {
	for _, g := range testGraphs() {
		dev := testDevice()
		cdg, err := UploadCompressed(dev, g)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.PickSources(g, 1, 41)[0]
		res, err := BFSCompressed(dev, cdg, src)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := ValidateBFS(g, src, res.Values); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestBFSCompressedBadSource(t *testing.T) {
	g := testGraphs()[0]
	dev := testDevice()
	cdg, _ := UploadCompressed(dev, g)
	if _, err := BFSCompressed(dev, cdg, -1); err == nil {
		t.Errorf("bad source accepted")
	}
}

// TestCompressedMovesFewerBytes: on a local-delta graph the compressed
// traversal moves meaningfully fewer PCIe payload bytes than the plain
// merged+aligned kernel — §6's premise.
func TestCompressedMovesFewerBytes(t *testing.T) {
	g := graph.Web("sk", 4096, 24, 5)
	src := graph.PickSources(g, 1, 1)[0]

	devPlain := testDevice()
	dgPlain, err := Upload(devPlain, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BFS(devPlain, dgPlain, src, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}

	devComp := testDevice()
	cdg, err := UploadCompressed(devComp, g)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BFSCompressed(devComp, cdg, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, src, comp.Values); err != nil {
		t.Fatal(err)
	}
	if float64(comp.Stats.PCIePayloadBytes) > 0.6*float64(plain.Stats.PCIePayloadBytes) {
		t.Errorf("compressed run moved %d bytes, want well below plain's %d",
			comp.Stats.PCIePayloadBytes, plain.Stats.PCIePayloadBytes)
	}
	if comp.Elapsed >= plain.Elapsed {
		t.Errorf("compressed traversal should be faster here: %v vs %v",
			comp.Elapsed, plain.Elapsed)
	}
}
