package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/pcie"
)

// This file is the reorder stage's equivalence suite (DESIGN.md §17):
//
//   - ReorderWindow=0 is bit-for-bit the pre-reorder engine, pinned against
//     the golden records with the field set explicitly (the default-config
//     matrix is pinned by TestEngineGolden).
//   - With the stage ON, serial, parallel, and batched runs are
//     deterministic: identical values and identical counters for every
//     worker count, because the window is per-warp and drains at warp end.
//   - Off vs. on obeys request conservation: no request is lost or
//     duplicated, only merged, and every merge is attributed to
//     ReorderMerged exactly.
//
// FuzzReorderWindow fuzzes the same invariants over random graphs, window
// sizes (including sub-minimum values that clamp up), and algorithms.

// reorderDevice returns a test device with an explicit worker count and
// reorder window.
func reorderDevice(workers, window int) *gpu.Device {
	return gpu.NewDevice(gpu.Config{
		Name:          "reorder-test",
		HBM:           memsys.HBM2V100(),
		HostDRAM:      memsys.DDR4Quad(),
		Link:          pcie.Gen3x16(),
		Workers:       workers,
		ReorderWindow: window,
	})
}

// effReorderCap mirrors Device.reorderCap: the configured window, clamped
// up to one full 128B line when positive.
func effReorderCap(window int) uint64 {
	if window > 0 && window < 4 {
		window = 4
	}
	return uint64(window)
}

// checkReorderConservation asserts the off-vs-on invariants between two
// runs of the same traversal: traversal output identical, requests
// conserved (every eliminated request attributed to ReorderMerged), payload
// only shrinking by whole deduplicated 32B sectors, and the window bound
// respected on every flush.
func checkReorderConservation(t *testing.T, name string, off, on *Result, window int) {
	t.Helper()
	if !reflect.DeepEqual(off.Values, on.Values) {
		t.Errorf("%s: traversal values differ with reorder window %d", name, window)
	}
	if off.Iterations != on.Iterations {
		t.Errorf("%s: iterations %d (off) vs %d (window %d)",
			name, off.Iterations, on.Iterations, window)
	}
	if off.Stats.ReorderMerged != 0 || off.Stats.ReorderFlushes != 0 || off.Stats.ReorderWindowSectors != 0 {
		t.Errorf("%s: reorder counters nonzero with the stage off: %+v", name, off.Stats)
	}
	o, n := &off.Stats, &on.Stats
	if o.PCIeRequests < n.PCIeRequests {
		t.Errorf("%s: reorder stage ADDED requests: %d off vs %d on", name, o.PCIeRequests, n.PCIeRequests)
	}
	// Conservation: the thrash re-fetch term is identical on both sides (its
	// inputs are counted at access time, before buffering), so the only
	// permitted request delta is the merge count.
	if o.ZCSectorReuses != n.ZCSectorReuses || o.ZCActiveLanes != n.ZCActiveLanes || o.ZCRefetches != n.ZCRefetches {
		t.Errorf("%s: thrash-model inputs moved with the reorder stage: off %d/%d/%d vs on %d/%d/%d",
			name, o.ZCSectorReuses, o.ZCActiveLanes, o.ZCRefetches,
			n.ZCSectorReuses, n.ZCActiveLanes, n.ZCRefetches)
	}
	if got, want := o.PCIeRequests-n.PCIeRequests, n.ReorderMerged; got != want {
		t.Errorf("%s: request conservation broken: off-on delta %d, ReorderMerged %d (requests lost or duplicated)",
			name, got, want)
	}
	if o.PCIePayloadBytes < n.PCIePayloadBytes {
		t.Errorf("%s: reorder stage inflated payload: %d off vs %d on",
			name, o.PCIePayloadBytes, n.PCIePayloadBytes)
	}
	if delta := o.PCIePayloadBytes - n.PCIePayloadBytes; delta%uint64(memsys.SectorBytes) != 0 {
		t.Errorf("%s: payload delta %dB is not whole 32B sectors", name, delta)
	}
	if cap := effReorderCap(window); n.ReorderWindowSectors > n.ReorderFlushes*cap {
		t.Errorf("%s: window bound violated: %d sectors over %d flushes exceeds cap %d",
			name, n.ReorderWindowSectors, n.ReorderFlushes, cap)
	}
	// GPU-local and UVM traffic never enters the window.
	if o.HBMBytes != n.HBMBytes || o.UVMMigrations != n.UVMMigrations {
		t.Errorf("%s: on-device/UVM traffic moved with the reorder stage", name)
	}
}

// TestReorderWindowZeroMatchesGolden pins the explicit-zero configuration
// against the golden records: setting ReorderWindow to 0 must be
// indistinguishable from never having the field at all.
func TestReorderWindowZeroMatchesGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]goldenRecord, len(want))
	for _, r := range want {
		byName[r.Name] = r
	}

	check := func(name string, res *Result) {
		t.Helper()
		exp, ok := byName[name]
		if !ok {
			t.Fatalf("%s: no golden record", name)
		}
		if got := recordOf(name, res); got != exp {
			t.Errorf("%s drifted with explicit ReorderWindow=0:\n got:  %s\n want: %s",
				name, mustJSON(got), mustJSON(exp))
		}
	}

	spec, err := graph.BySym("GK")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.02, 42)
	src := graph.PickSources(g, 1, 71)[0]

	for _, tc := range []struct {
		name string
		run  func(dev *gpu.Device, dg *DeviceGraph) (*Result, error)
	}{
		{"GK/bfs", func(dev *gpu.Device, dg *DeviceGraph) (*Result, error) {
			return BFS(dev, dg, src, MergedAligned)
		}},
		{"GK/sssp", func(dev *gpu.Device, dg *DeviceGraph) (*Result, error) {
			return SSSP(dev, dg, src, MergedAligned)
		}},
		{"GK/bfs-naive", func(dev *gpu.Device, dg *DeviceGraph) (*Result, error) {
			return BFS(dev, dg, src, Naive)
		}},
	} {
		dev := reorderDevice(0, 0)
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tc.run(dev, dg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		check(tc.name, res)
	}

	// Batched lanes on an explicit-zero device against the pinned batch
	// records.
	bsrcs := graph.PickSources(g, 4, 71)
	dev := reorderDevice(0, 0)
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]BatchSpec, len(bsrcs))
	for i, s := range bsrcs {
		specs[i] = BatchSpec{Src: s}
	}
	out, err := RunBatchAlgo(context.Background(), dev, dg, "bfs", specs, MergedAligned)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range out.Results {
		if item.Err != nil {
			t.Fatalf("lane %d: %v", i, item.Err)
		}
		check(fmt.Sprintf("GK/bfs-batch4.q%d", i), item.Res)
	}
}

// TestReorderDeterminism pins serial == parallel == batched with the stage
// ON: the window is per-warp state that drains at warp boundaries, so the
// launch partitioning must be invisible in every counter.
func TestReorderDeterminism(t *testing.T) {
	const window = 16
	gs := testGraphs()
	for _, g := range gs[:2] {
		src := graph.PickSources(g, 1, 43)[0]
		for _, app := range []string{"bfs", "sssp"} {
			a := LookupAlgorithm(app)
			run := func(workers int) *Result {
				dev := reorderDevice(workers, window)
				dg, err := Upload(dev, g, ZeroCopy, 8)
				if err != nil {
					t.Fatalf("%s/%s: %v", g.Name, app, err)
				}
				res, err := a.Run(context.Background(), dev, dg, src, MergedAligned)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", g.Name, app, workers, err)
				}
				return res
			}
			serial := run(1)
			for _, workers := range []int{4, 13} {
				par := run(workers)
				if !reflect.DeepEqual(serial.Values, par.Values) {
					t.Errorf("%s/%s: values diverge at %d workers with reorder on",
						g.Name, app, workers)
				}
				if serial.Stats != par.Stats {
					t.Errorf("%s/%s: stats diverge at %d workers with reorder on:\n serial: %+v\n par:    %+v",
						g.Name, app, workers, serial.Stats, par.Stats)
				}
				if serial.Elapsed != par.Elapsed {
					t.Errorf("%s/%s: simulated time diverges at %d workers: %v vs %v",
						g.Name, app, workers, serial.Elapsed, par.Elapsed)
				}
			}
		}
	}

	// Batched lanes: the shared run's counters and each lane's values must
	// be partition-independent too.
	g := gs[0]
	bsrcs := graph.PickSources(g, 4, 43)
	specs := make([]BatchSpec, len(bsrcs))
	for i, s := range bsrcs {
		specs[i] = BatchSpec{Src: s}
	}
	runBatch := func(workers int) *BatchOutcome {
		dev := reorderDevice(workers, window)
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunBatchAlgo(context.Background(), dev, dg, "bfs", specs, MergedAligned)
		if err != nil {
			t.Fatalf("batch workers=%d: %v", workers, err)
		}
		return out
	}
	serial := runBatch(1)
	par := runBatch(4)
	for i := range specs {
		sres, perr := serial.Results[i], par.Results[i]
		if sres.Err != nil || perr.Err != nil {
			t.Fatalf("batch lane %d: %v / %v", i, sres.Err, perr.Err)
		}
		if !reflect.DeepEqual(sres.Res.Values, perr.Res.Values) {
			t.Errorf("batch lane %d: values diverge across worker counts with reorder on", i)
		}
		if sres.Res.Stats != perr.Res.Stats {
			t.Errorf("batch lane %d: stats diverge across worker counts with reorder on", i)
		}
	}
}

// TestReorderConservation runs off-vs-on across graphs, algorithms, and
// window sizes, asserting the conservation invariants, and requires the
// stage to actually merge something somewhere (otherwise it is dead code).
func TestReorderConservation(t *testing.T) {
	merged := uint64(0)
	for _, g := range testGraphs()[:3] {
		src := graph.PickSources(g, 1, 43)[0]
		for _, app := range []string{"bfs", "sssp"} {
			a := LookupAlgorithm(app)
			run := func(window int) *Result {
				dev := reorderDevice(1, window)
				dg, err := Upload(dev, g, ZeroCopy, 8)
				if err != nil {
					t.Fatalf("%s/%s: %v", g.Name, app, err)
				}
				res, err := a.Run(context.Background(), dev, dg, src, MergedAligned)
				if err != nil {
					t.Fatalf("%s/%s window=%d: %v", g.Name, app, window, err)
				}
				return res
			}
			off := run(0)
			for _, window := range []int{8, 64} {
				on := run(window)
				checkReorderConservation(t,
					fmt.Sprintf("%s/%s/w%d", g.Name, app, window), off, on, window)
				merged += on.Stats.ReorderMerged
			}
		}
	}
	if merged == 0 {
		t.Error("reorder stage merged zero requests across the whole matrix; the stage is not engaging")
	}
}

// FuzzReorderWindow fuzzes the conservation invariants: random graphs,
// sources, window sizes (0, sub-minimum, large), and algorithms. No
// request may be lost or duplicated, the window bound must hold, and the
// traversal output must be bit-identical to the stage being off.
func FuzzReorderWindow(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(4), uint8(8), uint8(0))
	f.Add(int64(2), uint16(200), uint8(8), uint8(0), uint8(1))
	f.Add(int64(3), uint16(120), uint8(3), uint8(2), uint8(2))
	f.Add(int64(4), uint16(300), uint8(6), uint8(255), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nv uint16, deg uint8, win uint8, algoIdx uint8) {
		n := int(nv)%300 + 2
		avgDeg := int(deg)%8 + 1
		window := int(win) % 96
		g := graph.Urand("fuzz-reorder", n, avgDeg, seed)
		g.InitWeights(seed+1, 1, 64)
		srcs := graph.PickSources(g, 1, seed)
		if srcs == nil {
			t.Skip("no vertex with outgoing edges")
		}
		src := srcs[0]
		algos := []string{"bfs", "sssp", "cc", "sswp"}
		a := LookupAlgorithm(algos[int(algoIdx)%len(algos)])
		if a.NeedsUndirected && g.Directed {
			t.Skip("directed graph for undirected-only algorithm")
		}
		run := func(window int) *Result {
			dev := reorderDevice(1, window)
			dg, err := Upload(dev, g, ZeroCopy, 8)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Run(context.Background(), dev, dg, src, MergedAligned)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		off := run(0)
		on := run(window)
		checkReorderConservation(t, a.Name, off, on, window)
		if err := on.Validate(g); err != nil {
			t.Errorf("%s with window %d: %v", a.Name, window, err)
		}
	})
}
