package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
)

// singleRunRef executes one source alone on a fresh device, the target a
// batched lane must reproduce bit-for-bit.
func singleRunRef(t *testing.T, g *graph.CSR, name string, src int, variant Variant) *Result {
	t.Helper()
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := LookupAlgorithm(name)
	res, err := a.Run(context.Background(), dev, dg, src, variant)
	if err != nil {
		t.Fatalf("reference %s/src=%d: %v", name, src, err)
	}
	return res
}

func sameLane(got, want *Result) bool {
	if got.Iterations != want.Iterations || len(got.Values) != len(want.Values) {
		return false
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			return false
		}
	}
	return true
}

// TestBatchDuplicateSources: lanes are independent, so two lanes with
// the same source converge to identical values and round counts.
func TestBatchDuplicateSources(t *testing.T) {
	g := graph.Urand("dup", 500, 6, 3)
	g.InitWeights(4, 1, 64)
	src := graph.PickSources(g, 1, 3)[0]
	dev := testDevice()
	dg, err := Upload(dev, g, ZeroCopy, 8)
	if err != nil {
		t.Fatal(err)
	}
	specs := []BatchSpec{{Src: src}, {Src: src}, {Src: src}}
	out, err := RunBatchAlgo(context.Background(), dev, dg, "sssp", specs, Merged)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range out.Results {
		if item.Err != nil {
			t.Fatalf("lane %d: %v", i, item.Err)
		}
		if !sameLane(item.Res, out.Results[0].Res) {
			t.Errorf("lane %d diverged from lane 0 with the same source", i)
		}
	}
	if !sameLane(out.Results[0].Res, singleRunRef(t, g, "sssp", src, Merged)) {
		t.Error("duplicated lanes diverged from the single-source run")
	}
}

// FuzzBatchLanes drives the batched engine over random graphs, random
// source sets (1..8 lanes), random applications, and random pre-canceled
// lanes, asserting the batching contract every time: surviving lanes are
// bit-for-bit the single-source run, canceled lanes report the typed
// cancellation error, and no lane overruns the n+1 round bound.
func FuzzBatchLanes(f *testing.F) {
	f.Add(int64(1), uint16(80), uint8(4), uint8(0), uint8(3), uint8(0))
	f.Add(int64(2), uint16(200), uint8(8), uint8(1), uint8(5), uint8(2))
	f.Add(int64(3), uint16(40), uint8(2), uint8(2), uint8(1), uint8(255))
	f.Add(int64(4), uint16(150), uint8(6), uint8(0), uint8(7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, nv uint16, deg uint8, algoIdx uint8, kRaw uint8, cancelMask uint8) {
		n := int(nv)%300 + 2
		avgDeg := int(deg)%8 + 1
		g := graph.Urand("fuzz", n, avgDeg, seed)
		g.InitWeights(seed+1, 1, 64)
		k := int(kRaw)%8 + 1
		srcs := graph.PickSources(g, k, seed)
		if srcs == nil {
			t.Skip("no vertex with outgoing edges")
		}
		algos := []string{"bfs", "sssp", "sswp"}
		name := algos[int(algoIdx)%len(algos)]

		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		specs := make([]BatchSpec, len(srcs))
		for i, src := range srcs {
			specs[i] = BatchSpec{Src: src}
			if cancelMask>>(uint(i)%8)&1 == 1 {
				specs[i].Ctx = canceled
			}
		}

		dev := testDevice()
		dg, err := Upload(dev, g, ZeroCopy, 8)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunBatchAlgo(context.Background(), dev, dg, name, specs, Merged)
		if err != nil {
			t.Fatal(err)
		}
		if !out.BatchedRun {
			t.Fatalf("%s has a batched mode but BatchedRun = false", name)
		}
		for i, item := range out.Results {
			if specs[i].Ctx != nil {
				if !errors.Is(item.Err, ErrCanceled) {
					t.Errorf("canceled lane %d: err = %v, want ErrCanceled", i, item.Err)
				}
				continue
			}
			if item.Err != nil {
				t.Fatalf("lane %d: %v", i, item.Err)
			}
			if item.Res.Iterations < 1 || item.Res.Iterations > n+1 {
				t.Errorf("lane %d: implausible round count %d for %d vertices",
					i, item.Res.Iterations, n)
			}
			if !sameLane(item.Res, singleRunRef(t, g, name, srcs[i], Merged)) {
				t.Errorf("%s lane %d (src=%d): diverged from the single-source run",
					name, i, srcs[i])
			}
		}
	})
}
