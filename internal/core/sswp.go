package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
)

// This file adds single-source widest path (SSWP, also bottleneck
// shortest path: the width of a path is its narrowest edge, and each
// vertex's result is the widest width over all paths from the source)
// as a pure Program descriptor — no engine changes. SSWP is the engine's
// max-lattice existence proof: where BFS/SSSP/CC relax with atomic-min
// toward smaller values, SSWP relaxes with atomic-max toward wider paths,
// combining a vertex's width with each edge weight by min (a path is as
// wide as its narrowest hop). Everything else — the active-set frontier,
// the snapshot policy, convergence, telemetry, result assembly — is the
// same engine machinery the other applications run on.

// sswpProgram declares single-source widest path: a max lattice whose
// unreached value is 0, min-combining edge weights into atomic-max
// relaxations. The source starts at InfDist (the empty path has no
// bottleneck).
func sswpProgram() *Program {
	return &Program{
		App:      "SSWP",
		Frontier: FrontierActive,
		Relax:    Monoid{Identity: 0, Combine: CombineMin, Max: true},
		Weighted: true,
		Init: func(v, src int) uint32 {
			if v == src {
				return graph.InfDist
			}
			return 0
		},
		Seed:     func(v, src int) bool { return v == src },
		Validate: ValidateSSWP,
	}
}

// SSWP runs single-source widest path from src. Like SSSP it iterates
// explicit-active-set relaxation rounds to a fixed point with
// round-boundary snapshots; edge weights stream from host memory.
func SSWP(dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	return SSWPContext(context.Background(), dev, dg, src, variant)
}

// SSWPContext is SSWP with cooperative cancellation at round boundaries
// (see cancel.go for the contract).
func SSWPContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, variant Variant) (*Result, error) {
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: SSWP source %d out of range [0,%d)", src, n)
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("core: SSWP requires a weighted graph")
	}
	prog := sswpProgram()
	name := "sswp/" + variant.String()
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:     variant,
		transport:   dg.Transport,
		graphName:   dg.Graph.Name,
		valueName:   "sswp.width",
		snapName:    "sswp.widthread",
		activeNames: [2]string{"sswp.active0", "sswp.active1"},
		roundName:   name,
		dg:          dg,
		kernel:      stdActiveKernel(dg, variant, name, prog),
	})
}

// ValidateSSWP checks an SSWP result against the widest-path Dijkstra
// reference.
func ValidateSSWP(g *graph.CSR, src int, values []uint32) error {
	want := graph.RefSSWP(g, src)
	if len(values) != len(want) {
		return fmt.Errorf("core: SSWP result length %d, want %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			return fmt.Errorf("core: SSWP width[%d] = %d, want %d (src %d)",
				v, values[v], want[v], src)
		}
	}
	return nil
}
