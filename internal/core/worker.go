package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
)

// This file implements two studies around EMOGI's fixed warp-per-vertex
// worker choice, both as kernel configurations of the frontier engine's
// BFS program:
//
//   - BFSWithWorker generalizes the merged kernel to sub-warp workers of
//     4..32 lanes, the design §4.3.1 argues *against* for out-of-memory
//     traversal ("fine-tuning and reducing the worker size cannot add any
//     additional benefit... making smaller memory requests can have an
//     adverse effect"). The ablation harness uses it to regenerate that
//     argument as data.
//
//   - BFSBalanced adds the workload balancing the paper's §6 defers to
//     prior schemes [38, 39]: neighbor lists longer than a threshold are
//     split across virtual workers, which shortens the latency-bound
//     critical path of hub vertices without changing the traffic.

// BFSWithWorker runs BFS with a worker of the given lane count per vertex
// (4, 8, 16, or 32; 32 equals the Merged/MergedAligned variants). Each
// warp processes 32/workerLanes vertices concurrently, so a worker's
// maximum coalesced request is workerLanes*elemBytes bytes.
func BFSWithWorker(dev *gpu.Device, dg *DeviceGraph, src int, workerLanes int, aligned bool) (*Result, error) {
	return BFSWithWorkerContext(context.Background(), dev, dg, src, workerLanes, aligned)
}

// BFSWithWorkerContext is BFSWithWorker with cooperative cancellation at
// round boundaries (see cancel.go for the contract).
func BFSWithWorkerContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, workerLanes int, aligned bool) (*Result, error) {
	switch workerLanes {
	case 4, 8, 16, 32:
	default:
		return nil, fmt.Errorf("core: worker size %d not in {4, 8, 16, 32}", workerLanes)
	}
	n := dg.NumVertices()
	prog := bfsProgram()
	variant := Merged
	if aligned {
		variant = MergedAligned
	}
	groups := gpu.WarpSize / workerLanes
	warps := (n + groups - 1) / groups
	name := fmt.Sprintf("bfs/worker%d", workerLanes)
	labelVariant := fmt.Sprintf("worker%d", workerLanes)
	if !aligned {
		labelVariant += "-unaligned"
	}
	kernel := func(r *engineRound) {
		level, labels, visit := r.level, r.values, r.visit
		r.dev.Launch(name, warps, func(w *gpu.Warp) {
			vbase := int64(w.ID()) * int64(groups)
			// Group leaders read the labels of their vertices.
			var lidx [gpu.WarpSize]int64
			lmask := gpu.MaskNone
			for g := 0; g < groups; g++ {
				if v := vbase + int64(g); v < int64(n) {
					lidx[g] = v
					lmask = lmask.Set(g)
				}
			}
			labs := w.GatherU32(labels, &lidx, lmask)
			activeGroups := make([]bool, groups)
			any := false
			for g := 0; g < groups; g++ {
				if lmask.Has(g) && labs[g] == level {
					activeGroups[g] = true
					any = true
				}
			}
			if !any {
				return
			}
			walkGrouped(w, dg, vbase, groups, workerLanes, activeGroups, prog.push(level), aligned, visit)
		})
	}
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:      variant,
		transport:    dg.Transport,
		graphName:    dg.Graph.Name,
		labelVariant: labelVariant,
		valueName:    "bfs.labels",
		roundName:    name,
		dg:           dg,
		kernel:       kernel,
	})
}

// walkGrouped traverses up to `groups` neighbor lists with one warp, each
// list owned by a sub-group of workerLanes lanes striding through it in
// lock step. Every group's gather lands in the same warp access, so the
// coalescer merges exactly what real sub-warp workers would merge.
func walkGrouped(w *gpu.Warp, dg *DeviceGraph, vbase int64, groups, workerLanes int,
	activeGroups []bool, pushVal uint32, aligned bool, visit visitFn) {

	type span struct {
		cur, orig, end int64
	}
	spans := make([]span, groups)
	maxIters := int64(0)
	elemsPerLine := dg.ElemsPerCacheLine()
	for g := 0; g < groups; g++ {
		if !activeGroups[g] {
			continue
		}
		start, end := w.PairU64(dg.Offsets, vbase+int64(g))
		first := int64(start)
		if aligned {
			first &^= elemsPerLine - 1
		}
		spans[g] = span{cur: first, orig: int64(start), end: int64(end)}
		if iters := (int64(end) - first + int64(workerLanes) - 1) / int64(workerLanes); iters > maxIters {
			maxIters = iters
		}
	}
	var srcArr, wgt [gpu.WarpSize]uint32
	for l := range srcArr {
		srcArr[l] = pushVal
	}
	for it := int64(0); it < maxIters; it++ {
		var idx [gpu.WarpSize]int64
		mask := gpu.MaskNone
		for g := 0; g < groups; g++ {
			if !activeGroups[g] {
				continue
			}
			s := &spans[g]
			if s.cur >= s.end {
				continue
			}
			for l := 0; l < workerLanes; l++ {
				j := s.cur + int64(l)
				if j >= s.orig && j < s.end {
					lane := g*workerLanes + l
					idx[lane] = j
					mask = mask.Set(lane)
				}
			}
			s.cur += int64(workerLanes)
		}
		w.Instr(2)
		if mask == gpu.MaskNone {
			continue
		}
		dst := gatherEdges(w, dg, &idx, mask)
		visit(w, mask, &dst, &wgt, &srcArr)
	}
}

// BFSBalanced runs the fully-optimized (merged + aligned) BFS with
// workload balancing: lists longer than splitLen elements are handled by
// multiple virtual workers, bounding any single worker's latency-critical
// path at splitLen elements. Traffic is identical to MergedAligned; only
// the critical-path attribution changes.
func BFSBalanced(dev *gpu.Device, dg *DeviceGraph, src int, splitLen int64) (*Result, error) {
	return BFSBalancedContext(context.Background(), dev, dg, src, splitLen)
}

// BFSBalancedContext is BFSBalanced with cooperative cancellation at
// round boundaries (see cancel.go for the contract).
func BFSBalancedContext(ctx context.Context, dev *gpu.Device, dg *DeviceGraph, src int, splitLen int64) (*Result, error) {
	n := dg.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: BFS source %d out of range [0,%d)", src, n)
	}
	if splitLen < gpu.WarpSize {
		return nil, fmt.Errorf("core: split length %d below warp size", splitLen)
	}
	prog := bfsProgram()
	kernel := func(r *engineRound) {
		level, labels, visit := r.level, r.values, r.visit
		r.dev.Launch("bfs/balanced", n, func(w *gpu.Warp) {
			v := int64(w.ID())
			if w.ScalarU32(labels, v) != level {
				return
			}
			walkMergedBalanced(w, dg, v, prog.push(level), splitLen, visit)
		})
	}
	return runProgram(ctx, dev, n, prog, src, &engineConfig{
		variant:      MergedAligned,
		transport:    dg.Transport,
		graphName:    dg.Graph.Name,
		labelVariant: "balanced",
		valueName:    "bfs.labels",
		roundName:    "bfs/balanced",
		dg:           dg,
		kernel:       kernel,
	})
}

// walkMergedBalanced is walkMerged with aligned starts and a virtual-warp
// boundary every splitLen elements.
func walkMergedBalanced(w *gpu.Warp, dg *DeviceGraph, v int64, srcVal uint32, splitLen int64, visit visitFn) {
	start, end := w.PairU64(dg.Offsets, v)
	if start >= end {
		return
	}
	first := int64(start) &^ (dg.ElemsPerCacheLine() - 1)
	var srcArr, wgt [gpu.WarpSize]uint32
	for l := range srcArr {
		srcArr[l] = srcVal
	}
	sinceSplit := int64(0)
	for i := first; i < int64(end); i += gpu.WarpSize {
		var idx [gpu.WarpSize]int64
		mask := gpu.MaskNone
		for l := 0; l < gpu.WarpSize; l++ {
			j := i + int64(l)
			if j >= int64(start) && j < int64(end) {
				idx[l] = j
				mask = mask.Set(l)
			}
		}
		w.Instr(2)
		if mask == gpu.MaskNone {
			continue
		}
		dst := gatherEdges(w, dg, &idx, mask)
		visit(w, mask, &dst, &wgt, &srcArr)
		sinceSplit += gpu.WarpSize
		if sinceSplit >= splitLen {
			w.SplitWorker()
			sinceSplit = 0
		}
	}
}
