// Package graph provides the graph substrate: compressed sparse row (CSR)
// storage, deterministic generators reproducing the character of the
// paper's six evaluation datasets (Table 2), degree analysis (Figure 6),
// binary serialization, CPU reference algorithms used to validate GPU
// results, and the preprocessing transforms (reordering, active-subgraph
// extraction) that the HALO- and Subway-style baselines depend on.
package graph

import (
	"fmt"
	"sort"
)

// CSR is a graph in compressed sparse row form: Offsets[v]..Offsets[v+1]
// delimits vertex v's neighbor list in Dst (§2.1, Figure 1).
//
// For undirected graphs every edge appears in both endpoint lists, so
// NumEdges counts directed arcs — the same convention as the paper's |E|.
type CSR struct {
	Name     string // short symbol, e.g. "GK"
	FullName string // descriptive name, e.g. "kron-scaled"
	Directed bool

	Offsets []int64  // len NumVertices+1, non-decreasing
	Dst     []uint32 // len NumEdges, each < NumVertices
	Weights []uint32 // len NumEdges or nil for unweighted
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns |E| (directed arc count).
func (g *CSR) NumEdges() int64 { return int64(len(g.Dst)) }

// Degree returns the out-degree of vertex v.
func (g *CSR) Degree(v int) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbors returns vertex v's neighbor list as a shared sub-slice.
func (g *CSR) Neighbors(v int) []uint32 {
	return g.Dst[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weights parallel to Neighbors(v), or nil for
// an unweighted graph.
func (g *CSR) NeighborWeights(v int) []uint32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// AvgDegree returns |E| / |V|.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// EdgeListBytes returns the edge list size with the given element width
// (8 bytes in the paper's main experiments, 4 for the Subway comparison).
func (g *CSR) EdgeListBytes(elemBytes int) int64 {
	return g.NumEdges() * int64(elemBytes)
}

// WeightListBytes returns the weight list size (4-byte weights, Table 2).
func (g *CSR) WeightListBytes() int64 {
	if g.Weights == nil {
		return 0
	}
	return int64(len(g.Weights)) * 4
}

// VertexListBytes returns the offset array size with the given element
// width.
func (g *CSR) VertexListBytes(elemBytes int) int64 {
	return int64(len(g.Offsets)) * int64(elemBytes)
}

// Validate checks structural invariants: offset monotonicity, bounds, and
// weight-array parity. Generators and loaders call it before returning.
func (g *CSR) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph %s: empty offsets array", g.Name)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph %s: offsets[0] = %d, want 0", g.Name, g.Offsets[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph %s: offsets not monotone at vertex %d", g.Name, v)
		}
	}
	if g.Offsets[n] != int64(len(g.Dst)) {
		return fmt.Errorf("graph %s: offsets[n] = %d != len(dst) = %d",
			g.Name, g.Offsets[n], len(g.Dst))
	}
	for i, d := range g.Dst {
		if int(d) >= n {
			return fmt.Errorf("graph %s: dst[%d] = %d out of range (n=%d)", g.Name, i, d, n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Dst) {
		return fmt.Errorf("graph %s: weights length %d != edges %d",
			g.Name, len(g.Weights), len(g.Dst))
	}
	return nil
}

// Edge is one directed arc used during construction.
type Edge struct {
	Src, Dst uint32
}

// FromEdges builds a CSR from an arc list. Self-loops are dropped and
// duplicate arcs are merged. If undirected, the reverse of every arc is
// added before deduplication, so both endpoints see the edge.
func FromEdges(name string, n int, edges []Edge, directed bool) *CSR {
	if !directed {
		rev := make([]Edge, 0, len(edges))
		for _, e := range edges {
			rev = append(rev, Edge{e.Dst, e.Src})
		}
		edges = append(edges, rev...)
	}
	// Counting sort by source.
	counts := make([]int64, n+1)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		counts[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	dst := make([]uint32, counts[n])
	cursor := make([]int64, n)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		dst[counts[e.Src]+cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	// Sort each adjacency list and deduplicate in place.
	offsets := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		offsets[v] = w
		lo, hi := counts[v], counts[v]+cursor[v]
		adj := dst[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		for i := range adj {
			if i > 0 && adj[i] == adj[i-1] {
				continue
			}
			dst[w] = adj[i]
			w++
		}
	}
	offsets[n] = w
	g := &CSR{
		Name:     name,
		Directed: directed,
		Offsets:  offsets,
		Dst:      dst[:w:w],
	}
	if err := g.Validate(); err != nil {
		panic("graph: FromEdges produced invalid CSR: " + err.Error())
	}
	return g
}

// InitWeights assigns deterministic pseudo-random integer weights in
// [lo, hi] to every arc (the paper randomly initializes weights between 8
// and 72, §5.2). For undirected graphs the weight is symmetric: arc (u,v)
// and (v,u) get the same weight, derived from the unordered pair.
func (g *CSR) InitWeights(seed int64, lo, hi uint32) {
	if hi < lo {
		panic("graph: InitWeights hi < lo")
	}
	span := uint64(hi-lo) + 1
	g.Weights = make([]uint32, len(g.Dst))
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			a, b := uint64(v), uint64(g.Dst[i])
			if !g.Directed && a > b {
				a, b = b, a
			}
			g.Weights[i] = lo + uint32(mix(a, b, uint64(seed))%span)
		}
	}
}

// mix is a splitmix64-style hash over an edge and seed, giving weights that
// are deterministic, uniform, and symmetric for unordered pairs.
func mix(a, b, seed uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9 ^ seed*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
