package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestReorderPreservesStructure(t *testing.T) {
	g := RMAT("g", 1024, 8, 0.57, 0.19, 0.19, true, 1)
	g.InitWeights(2, 8, 72)
	perm := LocalityOrder(g)
	r := Reorder(g, perm)
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes changed: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), r.NumVertices(), r.NumEdges())
	}
	// Degrees are preserved under relabeling.
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) != r.Degree(int(perm[v])) {
			t.Fatalf("degree of %d changed under reordering", v)
		}
	}
	// Edges map exactly: (u,v) in g <=> (perm[u],perm[v]) in r, with the
	// same weight.
	for v := 0; v < g.NumVertices(); v++ {
		ns, ws := g.Neighbors(v), g.NeighborWeights(v)
		rv := int(perm[v])
		rns, rws := r.Neighbors(rv), r.NeighborWeights(rv)
		for i, u := range ns {
			found := false
			for j, x := range rns {
				if x == perm[u] {
					found = true
					if rws[j] != ws[i] {
						t.Fatalf("weight of edge %d->%d changed", v, u)
					}
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d lost in reordering", v, u)
			}
		}
	}
}

func TestReorderPreservesBFSDepths(t *testing.T) {
	g := Urand("g", 500, 10, 3)
	perm := LocalityOrder(g)
	r := Reorder(g, perm)
	src := PickSources(g, 1, 1)[0]
	lg := RefBFS(g, src)
	lr := RefBFS(r, int(perm[src]))
	for v := 0; v < g.NumVertices(); v++ {
		if lg[v] != lr[perm[v]] {
			t.Fatalf("BFS level changed for vertex %d: %d vs %d", v, lg[v], lr[perm[v]])
		}
	}
}

func TestLocalityOrderIsPermutation(t *testing.T) {
	g := Social("g", 512, 10, 2)
	perm := LocalityOrder(g)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("duplicate new ID %d", p)
		}
		seen[p] = true
	}
}

func TestLocalityOrderImprovesNeighborLocality(t *testing.T) {
	// On a web-like graph, BFS reordering should keep typical frontier
	// neighbors close in ID space; measure mean |dst - src| before/after.
	g := RMAT("g", 2048, 10, 0.57, 0.19, 0.19, true, 5)
	spread := func(g *CSR) float64 {
		var total float64
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				d := int(u) - v
				if d < 0 {
					d = -d
				}
				total += float64(d)
			}
		}
		return total / float64(g.NumEdges())
	}
	r := Reorder(g, LocalityOrder(g))
	if spread(r) >= spread(g) {
		t.Errorf("locality reordering did not reduce ID spread: %.1f -> %.1f",
			spread(g), spread(r))
	}
}

func TestReorderBadPermPanics(t *testing.T) {
	g := diamond()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for wrong-length permutation")
		}
	}()
	Reorder(g, []uint32{0, 1})
}

func TestExtractSubgraph(t *testing.T) {
	g := diamond()
	g.InitWeights(1, 8, 72)
	active := []bool{false, true, false, true, false}
	sub := ExtractSubgraph(g, active)
	if sub.NumActive() != 2 {
		t.Fatalf("active = %d, want 2", sub.NumActive())
	}
	if sub.Vertices[0] != 1 || sub.Vertices[1] != 3 {
		t.Errorf("vertices = %v, want [1 3]", sub.Vertices)
	}
	// Vertex 1 has 4 neighbors, vertex 3 has 2.
	if sub.NumEdges() != 6 {
		t.Errorf("edges = %d, want 6", sub.NumEdges())
	}
	if sub.Offsets[1]-sub.Offsets[0] != 4 {
		t.Errorf("vertex 1 sublist length wrong")
	}
	// Neighbor lists and weights copied verbatim.
	for i, u := range g.Neighbors(1) {
		if sub.Dst[i] != u {
			t.Errorf("sub dst[%d] = %d, want %d", i, sub.Dst[i], u)
		}
		if sub.Weights[i] != g.NeighborWeights(1)[i] {
			t.Errorf("sub weight[%d] mismatch", i)
		}
	}
	if sub.TransferBytes(4) <= 0 {
		t.Errorf("TransferBytes should be positive")
	}
	// 2 IDs * 4 + 3 offsets * 4 + 6 dst * 4 + 6 weights * 4 = 68.
	if got := sub.TransferBytes(4); got != 68 {
		t.Errorf("TransferBytes(4) = %d, want 68", got)
	}
}

func TestExtractSubgraphEmpty(t *testing.T) {
	g := diamond()
	sub := ExtractSubgraph(g, make([]bool, 5))
	if sub.NumActive() != 0 || sub.NumEdges() != 0 {
		t.Errorf("empty frontier should give empty subgraph")
	}
	if len(sub.Offsets) != 1 {
		t.Errorf("offsets = %v, want single zero", sub.Offsets)
	}
}

func TestExtractSubgraphUnweighted(t *testing.T) {
	g := diamond()
	active := []bool{true, false, false, false, false}
	sub := ExtractSubgraph(g, active)
	if sub.Weights != nil {
		t.Errorf("unweighted parent should give unweighted subgraph")
	}
	if sub.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", sub.NumEdges())
	}
}

func TestIORoundTrip(t *testing.T) {
	g := RMAT("rt", 1024, 8, 0.57, 0.19, 0.19, true, 7)
	g.InitWeights(3, 8, 72)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if r.Name != g.Name || r.Directed != g.Directed {
		t.Errorf("metadata mismatch")
	}
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch")
	}
	for i := range g.Offsets {
		if r.Offsets[i] != g.Offsets[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
	for i := range g.Dst {
		if r.Dst[i] != g.Dst[i] || r.Weights[i] != g.Weights[i] {
			t.Fatalf("edges/weights differ at %d", i)
		}
	}
}

func TestIOUnweightedRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if r.Weights != nil {
		t.Errorf("unweighted graph came back weighted")
	}
}

func TestIOFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := diamond()
	if err := g.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	r, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("edge count mismatch after file round trip")
	}
}

func TestIOBadInputs(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("short"))); err == nil {
		t.Errorf("truncated input accepted")
	}
	if _, err := Read(bytes.NewReader(append([]byte("BADMAGIC"), make([]byte, 100)...))); err == nil {
		t.Errorf("bad magic accepted")
	}
	// Corrupt a valid stream's version field.
	var buf bytes.Buffer
	if err := diamond().Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 99 // version
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Errorf("bad version accepted")
	}
	if _, err := ReadFile(filepath.Join(os.TempDir(), "does-not-exist-emogi.csr")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestIOCorruptOffsetsRejected(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The offsets array starts after: 8 magic + 12 header + 4 name + 16
	// sizes = 40. Corrupt the second offset to break monotonicity.
	off := 40 + 8
	data[off] = 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Errorf("corrupt offsets accepted")
	}
}
