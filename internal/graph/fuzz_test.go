package graph

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary CSR reader against arbitrary input: it must
// either return an error or a graph that passes Validate — never panic,
// never accept a structurally broken graph.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialization and a few mutations.
	var buf bytes.Buffer
	g := FromEdges("seed", 8, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, false)
	g.InitWeights(1, 8, 72)
	if err := g.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("EMOGICSR garbage"))
	f.Add([]byte{})
	mut := append([]byte{}, valid...)
	mut[20] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("Read accepted an invalid graph: %v", vErr)
		}
	})
}

// FuzzFromEdges hardens construction: any arc soup over a small vertex set
// must produce a valid, symmetric (when undirected) CSR.
func FuzzFromEdges(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0}, true)
	f.Add([]byte{5, 5, 5, 5}, false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, raw []byte, directed bool) {
		const n = 32
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i]) % n, uint32(raw[i+1]) % n})
		}
		g := FromEdges("fz", n, edges, directed)
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid CSR from FromEdges: %v", err)
		}
		// Round-trip through the binary format must be lossless.
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
			t.Fatalf("round trip changed sizes")
		}
		for i := range g.Dst {
			if r.Dst[i] != g.Dst[i] {
				t.Fatalf("round trip changed arc %d", i)
			}
		}
	})
}
