package graph

import "sort"

// This file implements the locality-enhancing CSR reordering that the
// HALO-style baseline depends on (Table 3). HALO [21] reorders vertices so
// that vertices visited together land on the same UVM pages; we implement
// the same idea as a degree-prioritized BFS relabeling: vertices are
// renumbered in BFS visit order from the highest-degree root, with
// unreached components appended in degree order. This clusters each BFS
// frontier's neighbor lists, improving 4KB-page locality for UVM.

// Reorder returns a new CSR with vertices relabeled by perm: new ID
// perm[v] corresponds to old vertex v. Weights follow their arcs.
func Reorder(g *CSR, perm []uint32) *CSR {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: Reorder permutation length mismatch")
	}
	// Invert: order[newID] = oldID.
	order := make([]uint32, n)
	for old, nw := range perm {
		order[nw] = uint32(old)
	}
	offsets := make([]int64, n+1)
	for nw := 0; nw < n; nw++ {
		offsets[nw+1] = offsets[nw] + g.Degree(int(order[nw]))
	}
	dst := make([]uint32, g.NumEdges())
	var weights []uint32
	if g.Weights != nil {
		weights = make([]uint32, g.NumEdges())
	}
	for nw := 0; nw < n; nw++ {
		old := int(order[nw])
		ns := g.Neighbors(old)
		ws := g.NeighborWeights(old)
		base := offsets[nw]
		for i, u := range ns {
			dst[base+int64(i)] = perm[u]
			if weights != nil {
				weights[base+int64(i)] = ws[i]
			}
		}
		// Keep adjacency lists sorted by new ID, permuting weights along.
		adj := dst[base:offsets[nw+1]]
		if weights != nil {
			wadj := weights[base:offsets[nw+1]]
			idx := make([]int, len(adj))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return adj[idx[a]] < adj[idx[b]] })
			sortedAdj := make([]uint32, len(adj))
			sortedW := make([]uint32, len(adj))
			for i, j := range idx {
				sortedAdj[i] = adj[j]
				sortedW[i] = wadj[j]
			}
			copy(adj, sortedAdj)
			copy(wadj, sortedW)
		} else {
			sort.Slice(adj, func(a, b int) bool { return adj[a] < adj[b] })
		}
	}
	out := &CSR{
		Name:     g.Name + "-reordered",
		FullName: g.FullName,
		Directed: g.Directed,
		Offsets:  offsets,
		Dst:      dst,
		Weights:  weights,
	}
	if err := out.Validate(); err != nil {
		panic("graph: Reorder produced invalid CSR: " + err.Error())
	}
	return out
}

// LocalityOrder computes a HALO-style locality-enhancing permutation:
// BFS visit order from the highest-degree vertex, restarting at the
// highest-degree unvisited vertex for each remaining component.
func LocalityOrder(g *CSR) []uint32 {
	n := g.NumVertices()
	perm := make([]uint32, n)
	visited := make([]bool, n)
	// Vertices sorted by descending degree serve as BFS restart roots.
	roots := make([]int, n)
	for i := range roots {
		roots[i] = i
	}
	sort.Slice(roots, func(a, b int) bool {
		da, db := g.Degree(roots[a]), g.Degree(roots[b])
		if da != db {
			return da > db
		}
		return roots[a] < roots[b]
	})
	next := uint32(0)
	queue := make([]int, 0, n)
	for _, root := range roots {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm[v] = next
			next++
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int(u))
				}
			}
		}
	}
	return perm
}
