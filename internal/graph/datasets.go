package graph

import "fmt"

// Spec describes one of the paper's six evaluation datasets (Table 2) and
// how to synthesize its scaled analog. Scale 1.0 is the repository's
// standard 1:1000 reduction of the paper graph: |V|, |E|, and the GPU
// memory capacity are all scaled by the same factor, preserving every
// capacity ratio the results depend on (e.g. "SK almost fits in GPU
// memory", §5.3.3).
type Spec struct {
	Sym        string // paper symbol: GK, GU, FS, ML, SK, UK5
	PaperGraph string // the original dataset's name
	Directed   bool

	// Paper-reported full-size statistics (for Table 2 rendering).
	PaperVertices int64 // |V| of the original
	PaperEdges    int64 // |E| of the original (arcs)

	// VerticesAt1 is |V| at scale 1.0 (= PaperVertices / 1000).
	VerticesAt1 int

	// AvgDeg is the target arcs-per-vertex ratio of the original.
	AvgDeg int

	build func(n int, avgDeg int, seed int64) *CSR
}

// Build synthesizes the dataset at the given scale with the given seed,
// including 4-byte weights in [8, 72] as in §5.2. Scale is clamped below
// so tiny test graphs stay connected enough to traverse.
func (s Spec) Build(scale float64, seed int64) *CSR {
	n := int(float64(s.VerticesAt1) * scale)
	if n < 64 {
		n = 64
	}
	g := s.build(n, s.AvgDeg, seed)
	g.Name = s.Sym
	g.FullName = fmt.Sprintf("%s (1:%d scale analog)", s.PaperGraph, int(1000.0/scale))
	g.InitWeights(seed, 8, 72)
	if err := g.Validate(); err != nil {
		panic("graph: dataset build produced invalid CSR: " + err.Error())
	}
	return g
}

// AllSpecs returns the six dataset specs in the paper's Table 2 order.
func AllSpecs() []Spec {
	return []Spec{
		{
			Sym: "GK", PaperGraph: "GAP-kron", Directed: false,
			PaperVertices: 134_200_000, PaperEdges: 4_220_000_000,
			VerticesAt1: 134_217, AvgDeg: 31,
			build: func(n, avgDeg int, seed int64) *CSR {
				// Graph500 Kronecker parameters; heavy-tailed hubs.
				return RMAT("GK", n, avgDeg, 0.57, 0.19, 0.19, true, seed)
			},
		},
		{
			Sym: "GU", PaperGraph: "GAP-urand", Directed: false,
			PaperVertices: 134_200_000, PaperEdges: 4_290_000_000,
			VerticesAt1: 134_217, AvgDeg: 32,
			build: func(n, avgDeg int, seed int64) *CSR {
				return Urand("GU", n, avgDeg, seed)
			},
		},
		{
			Sym: "FS", PaperGraph: "Friendster", Directed: false,
			PaperVertices: 65_600_000, PaperEdges: 3_610_000_000,
			VerticesAt1: 65_608, AvgDeg: 55,
			build: func(n, avgDeg int, seed int64) *CSR {
				return Social("FS", n, avgDeg, seed)
			},
		},
		{
			Sym: "ML", PaperGraph: "MOLIERE_2016", Directed: false,
			PaperVertices: 30_200_000, PaperEdges: 6_670_000_000,
			VerticesAt1: 30_239, AvgDeg: 221,
			build: func(n, avgDeg int, seed int64) *CSR {
				return Dense("ML", n, avgDeg, 96, seed)
			},
		},
		{
			Sym: "SK", PaperGraph: "sk-2005", Directed: true,
			PaperVertices: 50_600_000, PaperEdges: 1_950_000_000,
			VerticesAt1: 50_636, AvgDeg: 38,
			build: func(n, avgDeg int, seed int64) *CSR {
				return Web("SK", n, avgDeg, seed)
			},
		},
		{
			Sym: "UK5", PaperGraph: "uk-2007-05", Directed: true,
			PaperVertices: 105_900_000, PaperEdges: 3_740_000_000,
			VerticesAt1: 105_896, AvgDeg: 35,
			build: func(n, avgDeg int, seed int64) *CSR {
				return Web("UK5", n, avgDeg, seed+1)
			},
		},
	}
}

// BySym returns the spec with the given symbol.
func BySym(sym string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Sym == sym {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("graph: unknown dataset symbol %q", sym)
}

// UndirectedSpecs returns the specs usable for CC (the paper excludes the
// directed SK and UK5 graphs from CC, §5.4).
func UndirectedSpecs() []Spec {
	var out []Spec
	for _, s := range AllSpecs() {
		if !s.Directed {
			out = append(out, s)
		}
	}
	return out
}
