package graph

import (
	"testing"
)

func TestRefBFSFigure1(t *testing.T) {
	g := diamond()
	level := RefBFS(g, 4)
	// From vertex 4: neighbors 1, 2, 3 at level 1; vertex 0 at level 2.
	want := []uint32{2, 1, 1, 1, 0}
	for v, w := range want {
		if level[v] != w {
			t.Errorf("level[%d] = %d, want %d", v, level[v], w)
		}
	}
}

func TestRefBFSUnreachable(t *testing.T) {
	g := FromEdges("two", 4, []Edge{{0, 1}, {2, 3}}, false)
	level := RefBFS(g, 0)
	if level[1] != 1 {
		t.Errorf("level[1] = %d, want 1", level[1])
	}
	if level[2] != InfDist || level[3] != InfDist {
		t.Errorf("other component should be unreachable")
	}
	if ReachableCount(level) != 2 {
		t.Errorf("ReachableCount = %d, want 2", ReachableCount(level))
	}
}

func TestRefBFSBadSource(t *testing.T) {
	g := diamond()
	level := RefBFS(g, -1)
	if ReachableCount(level) != 0 {
		t.Errorf("negative source should reach nothing")
	}
	level = RefBFS(g, 99)
	if ReachableCount(level) != 0 {
		t.Errorf("out-of-range source should reach nothing")
	}
}

func TestRefSSSPUnweighted(t *testing.T) {
	g := diamond()
	dist := RefSSSP(g, 4)
	level := RefBFS(g, 4)
	for v := range dist {
		if dist[v] != level[v] {
			t.Errorf("unweighted SSSP != BFS at %d: %d vs %d", v, dist[v], level[v])
		}
	}
}

func TestRefSSSPWeighted(t *testing.T) {
	// Path 0-1-2 with weights 1,1 vs direct edge 0-2 with weight 10:
	// shortest path to 2 should be 2 via vertex 1.
	g := FromEdges("w", 3, []Edge{{0, 1}, {1, 2}, {0, 2}}, false)
	g.Weights = make([]uint32, len(g.Dst))
	setW := func(u, v int, w uint32) {
		ns := g.Neighbors(u)
		for i, x := range ns {
			if int(x) == v {
				g.Weights[g.Offsets[u]+int64(i)] = w
			}
		}
	}
	setW(0, 1, 1)
	setW(1, 0, 1)
	setW(1, 2, 1)
	setW(2, 1, 1)
	setW(0, 2, 10)
	setW(2, 0, 10)
	dist := RefSSSP(g, 0)
	if dist[2] != 2 {
		t.Errorf("dist[2] = %d, want 2 (path through 1)", dist[2])
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", dist[1])
	}
}

func TestRefCC(t *testing.T) {
	g := FromEdges("cc", 7, []Edge{{0, 1}, {1, 2}, {3, 4}, {5, 5}}, false)
	labels := RefCC(g)
	// Component {0,1,2} -> 0; {3,4} -> 3; isolated 5, 6 -> themselves.
	want := []uint32{0, 0, 0, 3, 3, 5, 6}
	for v, w := range want {
		if labels[v] != w {
			t.Errorf("label[%d] = %d, want %d", v, labels[v], w)
		}
	}
}

func TestRefCCSingleComponent(t *testing.T) {
	g := diamond()
	labels := RefCC(g)
	for v, l := range labels {
		if l != 0 {
			t.Errorf("label[%d] = %d, want 0", v, l)
		}
	}
}

// TestRefAlgorithmsConsistency cross-checks the three references on all
// generator families: BFS levels are a lower bound on hop counts, SSSP
// respects triangle inequality along edges, CC labels equal per-component
// minima and are consistent with BFS reachability.
func TestRefAlgorithmsConsistency(t *testing.T) {
	graphs := []*CSR{
		RMAT("gk", 512, 12, 0.57, 0.19, 0.19, true, 1),
		Urand("gu", 400, 12, 2),
		Dense("ml", 150, 40, 16, 3),
		Social("fs", 512, 12, 4),
	}
	for _, g := range graphs {
		g.InitWeights(5, 8, 72)
		src := PickSources(g, 1, 7)[0]
		level := RefBFS(g, src)
		dist := RefSSSP(g, src)
		cc := RefCC(g)
		for v := 0; v < g.NumVertices(); v++ {
			// BFS and SSSP agree on reachability.
			if (level[v] == InfDist) != (dist[v] == InfDist) {
				t.Fatalf("%s: reachability disagreement at %d", g.Name, v)
			}
			// Reachable vertices share the source's component.
			if level[v] != InfDist && cc[v] != cc[src] {
				t.Fatalf("%s: vertex %d reachable but in another component", g.Name, v)
			}
			// CC label is the component minimum: label <= v, and
			// label's own label is itself.
			if cc[v] > uint32(v) {
				t.Fatalf("%s: label[%d] = %d exceeds vertex ID", g.Name, v, cc[v])
			}
			if cc[cc[v]] != cc[v] {
				t.Fatalf("%s: label of label differs at %d", g.Name, v)
			}
			// Edge relaxation: SSSP is a fixed point.
			ns, ws := g.Neighbors(v), g.NeighborWeights(v)
			if dist[v] != InfDist {
				for i, u := range ns {
					if dist[u] > dist[v]+ws[i] {
						t.Fatalf("%s: unrelaxed edge %d->%d", g.Name, v, u)
					}
				}
				// BFS level fixed point too.
				for _, u := range ns {
					if level[u] > level[v]+1 {
						t.Fatalf("%s: BFS level gap on edge %d->%d", g.Name, v, u)
					}
				}
			}
		}
	}
}

func TestPickSourcesDeterministicAndValid(t *testing.T) {
	g := RMAT("g", 1024, 8, 0.57, 0.19, 0.19, true, 1)
	a := PickSources(g, 16, 5)
	b := PickSources(g, 16, 5)
	if len(a) != 16 {
		t.Fatalf("got %d sources, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sources not deterministic")
		}
		if g.Degree(a[i]) == 0 {
			t.Errorf("source %d has no outgoing edges", a[i])
		}
	}
	c := PickSources(g, 16, 6)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Errorf("different seeds gave identical sources")
	}
}

func TestPickSourcesDegenerate(t *testing.T) {
	// All isolated vertices: no valid sources.
	empty := &CSR{Offsets: make([]int64, 11)}
	if got := PickSources(empty, 4, 1); got != nil {
		t.Errorf("expected nil for all-isolated graph, got %v", got)
	}
	// Single connected pair: cycling fallback fills k sources.
	g := FromEdges("pair", 10, []Edge{{3, 7}}, false)
	srcs := PickSources(g, 5, 1)
	if len(srcs) != 5 {
		t.Fatalf("got %d sources, want 5", len(srcs))
	}
	for _, s := range srcs {
		if s != 3 && s != 7 {
			t.Errorf("source %d has no edges", s)
		}
	}
	var zero *CSR = &CSR{Offsets: []int64{0}}
	if got := PickSources(zero, 3, 1); got != nil {
		t.Errorf("empty graph should give nil sources")
	}
}
