package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary CSR serialization, used by cmd/graphgen to cache generated
// datasets between benchmark runs. The format is little-endian:
//
//	magic   [8]byte  "EMOGICSR"
//	version uint32   (1)
//	flags   uint32   bit0 = directed, bit1 = has weights
//	nameLen uint32, name bytes
//	n       uint64   vertex count
//	e       uint64   arc count
//	offsets (n+1) x uint64
//	dst     e x uint32
//	weights e x uint32 (if flagged)

var csrMagic = [8]byte{'E', 'M', 'O', 'G', 'I', 'C', 'S', 'R'}

const csrVersion = 1

// Write serializes the graph to w.
func (g *CSR) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Directed {
		flags |= 1
	}
	if g.Weights != nil {
		flags |= 2
	}
	name := []byte(g.Name)
	for _, v := range []uint32{csrVersion, flags, uint32(len(name))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(g.NumVertices()), uint64(g.NumEdges())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeUint64Slice(bw, g.Offsets); err != nil {
		return err
	}
	if err := writeUint32Slice(bw, g.Dst); err != nil {
		return err
	}
	if g.Weights != nil {
		if err := writeUint32Slice(bw, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write and validates it.
func Read(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var version, flags, nameLen uint32
	for _, p := range []*uint32{&version, &flags, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != csrVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n, e uint64
	for _, p := range []*uint64{&n, &e} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxReasonable = 1 << 33
	if n > maxReasonable || e > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d e=%d", n, e)
	}
	// Arrays are grown incrementally while reading rather than
	// pre-allocated from the header's claims, so a forged header cannot
	// force a huge allocation: the stream must actually contain the bytes.
	g := &CSR{
		Name:     string(name),
		Directed: flags&1 != 0,
	}
	offsets, err := readUint64Grow(br, n+1)
	if err != nil {
		return nil, err
	}
	g.Offsets = offsets
	if g.Dst, err = readUint32Grow(br, e); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		if g.Weights, err = readUint32Grow(br, e); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: deserialized graph invalid: %w", err)
	}
	return g, nil
}

// WriteFile serializes the graph to the named file.
func (g *CSR) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a graph from the named file.
func ReadFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeUint64Slice(w io.Writer, s []int64) error {
	buf := make([]byte, 8*4096)
	for off := 0; off < len(s); {
		chunk := len(s) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(s[off+i]))
		}
		if _, err := w.Write(buf[:chunk*8]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// readUint64Grow reads count little-endian uint64s, growing the result as
// the bytes arrive (see Read for why this is not pre-allocated).
func readUint64Grow(r io.Reader, count uint64) ([]int64, error) {
	buf := make([]byte, 8*4096)
	out := make([]int64, 0, min64(count, 4096))
	for off := uint64(0); off < count; {
		chunk := count - off
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:chunk*8]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < chunk; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
		off += chunk
	}
	return out, nil
}

func writeUint32Slice(w io.Writer, s []uint32) error {
	buf := make([]byte, 4*8192)
	for off := 0; off < len(s); {
		chunk := len(s) - off
		if chunk > 8192 {
			chunk = 8192
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], s[off+i])
		}
		if _, err := w.Write(buf[:chunk*4]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// readUint32Grow reads count little-endian uint32s with incremental
// growth.
func readUint32Grow(r io.Reader, count uint64) ([]uint32, error) {
	buf := make([]byte, 4*8192)
	out := make([]uint32, 0, min64(count, 8192))
	for off := uint64(0); off < count; {
		chunk := count - off
		if chunk > 8192 {
			chunk = 8192
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < chunk; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += chunk
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
