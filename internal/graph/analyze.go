package graph

import (
	"repro/internal/stats"
)

// DegreeCDF returns the cumulative distribution of *edges* over vertex
// degree: the value at x is the fraction of all arcs whose source vertex
// has degree <= x. This is exactly the paper's Figure 6 ("Number of Edges
// CDF vs Degree of Vertex"), which explains which graphs benefit from the
// merge and align optimizations.
func DegreeCDF(g *CSR) *stats.CDF {
	n := g.NumVertices()
	vals := make([]int64, n)
	ws := make([]float64, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		vals[v] = d
		ws[v] = float64(d)
	}
	return stats.NewCDF(vals, ws)
}

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Min, Max int64
	Mean     float64
	// MedianEdgeDegree is the degree d such that half of all edges attach
	// to vertices of degree <= d.
	MedianEdgeDegree int64
	Isolated         int // vertices with degree 0
}

// AnalyzeDegrees computes degree statistics in one pass.
func AnalyzeDegrees(g *CSR) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{Min: int64(^uint64(0) >> 1)}
	if n == 0 {
		st.Min = 0
		return st
	}
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = g.AvgDegree()
	st.MedianEdgeDegree = DegreeCDF(g).Quantile(0.5)
	return st
}

// TableRow is one dataset's line of the paper's Table 2: vertex and edge
// counts and the byte sizes of the edge and weight lists.
type TableRow struct {
	Sym         string
	Vertices    int
	Edges       int64
	EdgeBytes   int64 // 8-byte elements
	WeightBytes int64 // 4-byte weights
	Directed    bool
	AvgDegree   float64
}

// Table2Row summarizes a graph for the dataset inventory.
func Table2Row(g *CSR) TableRow {
	return TableRow{
		Sym:         g.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		EdgeBytes:   g.EdgeListBytes(8),
		WeightBytes: g.WeightListBytes(),
		Directed:    g.Directed,
		AvgDegree:   g.AvgDegree(),
	}
}
