package graph

import (
	"testing"
	"testing/quick"
)

// diamond returns the paper's Figure 1 sample graph: 5 vertices,
// undirected edges {0-1, 0-2, 1-2, 1-3, 2-4, 3-4, 1-4}.
func diamond() *CSR {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {1, 4}}
	return FromEdges("fig1", 5, edges, false)
}

func TestFromEdgesFigure1(t *testing.T) {
	g := diamond()
	// The paper's Figure 1 CSR edge list: [1 2 | 0 2 3 4 | 0 1 4 | 1 4 |
	// 1 2 3]. (The figure prints offsets "0 2 6 9 12 14", but its own edge
	// list segments give vertex 4's start as 11 — the 12 is a typo; the
	// edge list is authoritative.)
	wantOffsets := []int64{0, 2, 6, 9, 11, 14}
	for i, w := range wantOffsets {
		if g.Offsets[i] != w {
			t.Fatalf("Offsets = %v, want %v", g.Offsets, wantOffsets)
		}
	}
	wantDst := []uint32{1, 2, 0, 2, 3, 4, 0, 1, 4, 1, 4, 1, 2, 3}
	for i, w := range wantDst {
		if g.Dst[i] != w {
			t.Fatalf("Dst = %v, want %v", g.Dst, wantDst)
		}
	}
	if g.NumVertices() != 5 || g.NumEdges() != 14 {
		t.Errorf("sizes: |V|=%d |E|=%d, want 5, 14", g.NumVertices(), g.NumEdges())
	}
}

func TestFromEdgesDropsSelfLoopsAndDups(t *testing.T) {
	edges := []Edge{{0, 0}, {1, 2}, {1, 2}, {2, 1}, {1, 1}}
	g := FromEdges("t", 3, edges, true)
	if g.NumEdges() != 2 {
		t.Errorf("|E| = %d, want 2 (dedup + self-loop removal)", g.NumEdges())
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Errorf("degrees wrong after dedup")
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g := FromEdges("d", 3, []Edge{{0, 1}, {1, 2}}, true)
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Errorf("directed degrees wrong: %v", g.Offsets)
	}
	if !g.Directed {
		t.Errorf("Directed flag not set")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := diamond()
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.Neighbors(v)
		for i := 1; i < len(ns); i++ {
			if ns[i] <= ns[i-1] {
				t.Fatalf("vertex %d neighbors not strictly sorted: %v", v, ns)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := diamond()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := *g
	bad.Offsets = append([]int64{}, g.Offsets...)
	bad.Offsets[2] = 100
	if err := bad.Validate(); err == nil {
		t.Errorf("non-monotone offsets accepted")
	}
	bad2 := *g
	bad2.Dst = append([]uint32{}, g.Dst...)
	bad2.Dst[0] = 99
	if err := bad2.Validate(); err == nil {
		t.Errorf("out-of-range dst accepted")
	}
	bad3 := *g
	bad3.Weights = []uint32{1, 2}
	if err := bad3.Validate(); err == nil {
		t.Errorf("weight length mismatch accepted")
	}
	bad4 := CSR{}
	if err := bad4.Validate(); err == nil {
		t.Errorf("empty offsets accepted")
	}
	bad5 := *g
	bad5.Offsets = append([]int64{}, g.Offsets...)
	bad5.Offsets[0] = 1
	if err := bad5.Validate(); err == nil {
		t.Errorf("offsets[0] != 0 accepted")
	}
}

func TestInitWeights(t *testing.T) {
	g := diamond()
	g.InitWeights(7, 8, 72)
	if len(g.Weights) != len(g.Dst) {
		t.Fatalf("weights length mismatch")
	}
	for i, w := range g.Weights {
		if w < 8 || w > 72 {
			t.Errorf("weight[%d] = %d outside [8,72]", i, w)
		}
	}
	// Symmetric: weight(u->v) == weight(v->u) for undirected graphs.
	for v := 0; v < g.NumVertices(); v++ {
		ns, ws := g.Neighbors(v), g.NeighborWeights(v)
		for i, u := range ns {
			back := g.Neighbors(int(u))
			wback := g.NeighborWeights(int(u))
			for j, x := range back {
				if int(x) == v && wback[j] != ws[i] {
					t.Errorf("asymmetric weight %d-%d: %d vs %d", v, u, ws[i], wback[j])
				}
			}
		}
	}
	// Deterministic under the same seed.
	g2 := diamond()
	g2.InitWeights(7, 8, 72)
	for i := range g.Weights {
		if g.Weights[i] != g2.Weights[i] {
			t.Errorf("weights not deterministic at %d", i)
		}
	}
}

func TestInitWeightsBadRangePanics(t *testing.T) {
	g := diamond()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for hi < lo")
		}
	}()
	g.InitWeights(1, 10, 5)
}

func TestByteSizeHelpers(t *testing.T) {
	g := diamond()
	g.InitWeights(1, 8, 72)
	if got := g.EdgeListBytes(8); got != 14*8 {
		t.Errorf("EdgeListBytes(8) = %d", got)
	}
	if got := g.EdgeListBytes(4); got != 14*4 {
		t.Errorf("EdgeListBytes(4) = %d", got)
	}
	if got := g.WeightListBytes(); got != 14*4 {
		t.Errorf("WeightListBytes = %d", got)
	}
	if got := g.VertexListBytes(8); got != 6*8 {
		t.Errorf("VertexListBytes = %d", got)
	}
	var unweighted CSR
	if unweighted.WeightListBytes() != 0 {
		t.Errorf("unweighted WeightListBytes should be 0")
	}
}

func TestAvgDegree(t *testing.T) {
	g := diamond()
	if got := g.AvgDegree(); got != 14.0/5.0 {
		t.Errorf("AvgDegree = %v", got)
	}
	empty := &CSR{Offsets: []int64{0}}
	if empty.AvgDegree() != 0 {
		t.Errorf("empty graph AvgDegree should be 0")
	}
}

// Property: FromEdges always produces a valid CSR with symmetric adjacency
// for undirected graphs, regardless of the input arc soup.
func TestFromEdgesProperty(t *testing.T) {
	f := func(raw []uint16, directed bool) bool {
		const n = 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i] % n), uint32(raw[i+1] % n)})
		}
		g := FromEdges("q", n, edges, directed)
		if err := g.Validate(); err != nil {
			return false
		}
		if directed {
			return true
		}
		// Undirected: adjacency must be symmetric.
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				found := false
				for _, x := range g.Neighbors(int(u)) {
					if int(x) == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
