package graph

import (
	"testing"
)

func TestRMATShape(t *testing.T) {
	g := RMAT("gk", 4096, 16, 0.57, 0.19, 0.19, true, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if g.NumVertices() != 4096 {
		t.Errorf("|V| = %d, want 4096", g.NumVertices())
	}
	st := AnalyzeDegrees(g)
	// R-MAT must be heavy-tailed: max degree far above the mean.
	if float64(st.Max) < 5*st.Mean {
		t.Errorf("R-MAT not skewed: max=%d mean=%.1f", st.Max, st.Mean)
	}
	// Roughly the requested average degree (dedup losses allowed).
	if st.Mean < 6 || st.Mean > 16.5 {
		t.Errorf("R-MAT mean degree %.1f far from target", st.Mean)
	}
	if g.Directed {
		t.Errorf("undirected R-MAT should not be directed")
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT("x", 1024, 8, 0.57, 0.19, 0.19, true, 42)
	b := RMAT("x", 1024, 8, 0.57, 0.19, 0.19, true, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Dst {
		if a.Dst[i] != b.Dst[i] {
			t.Fatalf("graphs differ at arc %d", i)
		}
	}
	c := RMAT("x", 1024, 8, 0.57, 0.19, 0.19, true, 43)
	same := a.NumEdges() == c.NumEdges()
	if same {
		for i := range a.Dst {
			if a.Dst[i] != c.Dst[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical graphs")
	}
}

func TestUrandDegreeBand(t *testing.T) {
	g := Urand("gu", 8192, 32, 2)
	st := AnalyzeDegrees(g)
	// GAP-urand's signature (paper Fig 6): essentially all edges attach to
	// vertices in a tight Poisson band around the mean, none far outside.
	cdf := DegreeCDF(g)
	if frac := cdf.At(12); frac > 0.01 {
		t.Errorf("urand: %.3f of edges on degree <=12 vertices, want ~0", frac)
	}
	if frac := cdf.At(56); frac < 0.99 {
		t.Errorf("urand: only %.3f of edges on degree <=56 vertices, want ~1", frac)
	}
	if st.Mean < 28 || st.Mean > 34 {
		t.Errorf("urand mean degree = %.1f, want ~32", st.Mean)
	}
}

func TestDenseMinimumDegree(t *testing.T) {
	g := Dense("ml", 2048, 221, 96, 3)
	cdf := DegreeCDF(g)
	// ML's signature: nearly no edges on vertices with degree < 96.
	if frac := cdf.At(90); frac > 0.02 {
		t.Errorf("dense: %.3f of edges on degree <=90 vertices, want ~0", frac)
	}
	st := AnalyzeDegrees(g)
	if st.Mean < 150 || st.Mean > 300 {
		t.Errorf("dense mean degree = %.1f, want ~221", st.Mean)
	}
}

func TestSocialShape(t *testing.T) {
	g := Social("fs", 4096, 28, 4)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	st := AnalyzeDegrees(g)
	if float64(st.Max) < 3*st.Mean {
		t.Errorf("social graph should be skewed: max=%d mean=%.1f", st.Max, st.Mean)
	}
	if g.Directed {
		t.Errorf("social graph should be undirected")
	}
}

func TestWebLocality(t *testing.T) {
	g := Web("sk", 8192, 38, 5)
	if !g.Directed {
		t.Fatalf("web graph should be directed")
	}
	// Measure ID locality: fraction of arcs landing within n/64 of the
	// source. The copying-model construction should make this dominant.
	n := g.NumVertices()
	window := n / 64
	local := 0
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			d := int(u) - v
			if d < 0 {
				d = -d
			}
			if d <= window || n-d <= window {
				local++
			}
		}
	}
	frac := float64(local) / float64(g.NumEdges())
	if frac < 0.6 {
		t.Errorf("web graph locality = %.2f, want > 0.6", frac)
	}
	st := AnalyzeDegrees(g)
	if st.Mean < 20 || st.Mean > 60 {
		t.Errorf("web mean degree = %.1f, want ~38", st.Mean)
	}
}

func TestAllSpecsBuildSmall(t *testing.T) {
	for _, spec := range AllSpecs() {
		spec := spec
		t.Run(spec.Sym, func(t *testing.T) {
			g := spec.Build(0.02, 9)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", spec.Sym, err)
			}
			if g.Name != spec.Sym {
				t.Errorf("name = %q, want %q", g.Name, spec.Sym)
			}
			if g.Directed != spec.Directed {
				t.Errorf("directedness mismatch")
			}
			if g.Weights == nil {
				t.Errorf("weights not initialized")
			}
			if g.NumEdges() == 0 {
				t.Errorf("no edges generated")
			}
			for _, w := range g.Weights {
				if w < 8 || w > 72 {
					t.Fatalf("weight %d outside [8,72]", w)
				}
			}
		})
	}
}

func TestSpecScaleClamping(t *testing.T) {
	spec, err := BySym("GU")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build(0.00001, 1) // would be <1 vertex; clamped to 64
	if g.NumVertices() < 64 {
		t.Errorf("|V| = %d, want >= 64", g.NumVertices())
	}
}

func TestBySym(t *testing.T) {
	for _, sym := range []string{"GK", "GU", "FS", "ML", "SK", "UK5"} {
		if _, err := BySym(sym); err != nil {
			t.Errorf("BySym(%s): %v", sym, err)
		}
	}
	if _, err := BySym("nope"); err == nil {
		t.Errorf("unknown symbol accepted")
	}
}

func TestUndirectedSpecs(t *testing.T) {
	specs := UndirectedSpecs()
	if len(specs) != 4 {
		t.Fatalf("undirected specs = %d, want 4 (GK GU FS ML)", len(specs))
	}
	for _, s := range specs {
		if s.Directed {
			t.Errorf("%s should be undirected", s.Sym)
		}
	}
}

func TestDegreeCDFOnFigure1(t *testing.T) {
	g := diamond()
	cdf := DegreeCDF(g)
	// Degrees: v0=2, v1=4, v2=3, v3=2, v4=3; 14 arcs total.
	// Edges on degree<=2 vertices: 4; <=3: 10; <=4: 14.
	if got := cdf.At(2); got != 4.0/14.0 {
		t.Errorf("CDF(2) = %v, want 4/14", got)
	}
	if got := cdf.At(3); got != 10.0/14.0 {
		t.Errorf("CDF(3) = %v, want 10/14", got)
	}
	if got := cdf.At(4); got != 1.0 {
		t.Errorf("CDF(4) = %v, want 1", got)
	}
}

func TestAnalyzeDegrees(t *testing.T) {
	g := diamond()
	st := AnalyzeDegrees(g)
	if st.Min != 2 || st.Max != 4 {
		t.Errorf("min/max = %d/%d, want 2/4", st.Min, st.Max)
	}
	if st.Isolated != 0 {
		t.Errorf("isolated = %d, want 0", st.Isolated)
	}
	// Graph with an isolated vertex.
	g2 := FromEdges("iso", 3, []Edge{{0, 1}}, false)
	st2 := AnalyzeDegrees(g2)
	if st2.Isolated != 1 || st2.Min != 0 {
		t.Errorf("isolated vertex not detected: %+v", st2)
	}
	empty := &CSR{Offsets: []int64{0}}
	ste := AnalyzeDegrees(empty)
	if ste.Min != 0 || ste.Max != 0 {
		t.Errorf("empty graph stats wrong: %+v", ste)
	}
}

func TestTable2Row(t *testing.T) {
	g := diamond()
	g.InitWeights(1, 8, 72)
	row := Table2Row(g)
	if row.Vertices != 5 || row.Edges != 14 {
		t.Errorf("row = %+v", row)
	}
	if row.EdgeBytes != 14*8 || row.WeightBytes != 14*4 {
		t.Errorf("byte sizes wrong: %+v", row)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	build := func(seed int64) []*CSR {
		return []*CSR{
			Urand("gu", 700, 12, seed),
			Dense("ml", 150, 48, 16, seed),
			Social("fs", 512, 12, seed),
			Web("sk", 700, 14, seed),
		}
	}
	a, b := build(7), build(7)
	for i := range a {
		if a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("%s: edge counts differ across identical seeds", a[i].Name)
		}
		for j := range a[i].Dst {
			if a[i].Dst[j] != b[i].Dst[j] {
				t.Fatalf("%s: arc %d differs across identical seeds", a[i].Name, j)
			}
		}
	}
	c := build(8)
	for i := range a {
		same := a[i].NumEdges() == c[i].NumEdges()
		if same {
			for j := range a[i].Dst {
				if a[i].Dst[j] != c[i].Dst[j] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical graphs", a[i].Name)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRMATExactVertexCount(t *testing.T) {
	// Non-power-of-two vertex counts must be honored exactly (this is the
	// property that keeps dataset-to-GPU-memory ratios faithful; see the
	// log2Floor bug note in DESIGN.md's calibration history).
	for _, n := range []int{100, 1000, 1337, 5000} {
		g := RMAT("x", n, 8, 0.57, 0.19, 0.19, true, 1)
		if g.NumVertices() != n {
			t.Errorf("|V| = %d, want %d", g.NumVertices(), n)
		}
		s := Social("y", n, 8, 1)
		if s.NumVertices() != n {
			t.Errorf("social |V| = %d, want %d", s.NumVertices(), n)
		}
	}
}
