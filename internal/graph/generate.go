package graph

import (
	"math"
	"math/rand"
)

// This file holds the deterministic graph generators that stand in for the
// paper's six evaluation datasets (Table 2). Each generator matches the
// degree structure that drives the paper's results (Figures 5-10): skew,
// minimum degree, and locality — not the exact topology of the originals,
// which are not redistributable at full size anyway.

// RMAT generates a Kronecker-style power-law graph with exactly n vertices
// and approximately avgDeg * n arcs, using the classic R-MAT recursive
// quadrant probabilities over the enclosing power-of-two grid with
// rejection sampling for endpoints >= n (which preserves the skew shape).
// GAP-kron (GK) uses the Graph500 parameters a=0.57, b=c=0.19.
func RMAT(name string, n int, avgDeg int, a, b, c float64, undirected bool, seed int64) *CSR {
	scale := ceilLog2(n)
	m := n * avgDeg
	if undirected {
		m /= 2 // symmetrization doubles arc count
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << uint(bit)
			case r < a+b+c:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		if src >= n || dst >= n {
			continue
		}
		edges = append(edges, Edge{uint32(src), uint32(dst)})
	}
	return FromEdges(name, n, edges, !undirected)
}

// ceilLog2 returns the smallest k with 2^k >= n.
func ceilLog2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}

// Urand generates a uniform-random (Erdős–Rényi style) graph like GAP-urand
// (GU): endpoints drawn uniformly, giving a tight Poisson degree band
// (16-48 at mean 32, which is exactly the paper's description of GU in
// Figure 6).
func Urand(name string, n int, avgDeg int, seed int64) *CSR {
	m := n * avgDeg / 2 // undirected: each edge contributes 2 arcs
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return FromEdges(name, n, edges, false)
}

// Dense generates a graph whose edges all attach to high-degree vertices,
// like MOLIERE_2016 (ML): per-vertex target degree minDeg + Exp(mean
// avgDeg-minDeg), realized with a configuration model. The paper's Figure 6
// shows ML with essentially zero edges on vertices of degree < 96 and an
// average degree of 222.
func Dense(name string, n int, avgDeg, minDeg int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	// Target (undirected) degrees; the config model consumes two stubs per
	// edge, so total stubs must be even.
	deg := make([]int, n)
	totalStubs := 0
	mean := float64(avgDeg - minDeg)
	for v := range deg {
		d := minDeg + int(rng.ExpFloat64()*mean)
		deg[v] = d
		totalStubs += d
	}
	if totalStubs%2 == 1 {
		deg[0]++
		totalStubs++
	}
	stubs := make([]uint32, 0, totalStubs)
	for v, d := range deg {
		for i := 0; i < d; i++ {
			stubs = append(stubs, uint32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([]Edge, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		edges = append(edges, Edge{stubs[i], stubs[i+1]})
	}
	return FromEdges(name, n, edges, false)
}

// Social generates a social-network-like graph (Friendster analog, FS)
// with exactly n vertices: power-law degree skew milder than R-MAT's
// default, with some community locality from a bounded-window bias.
func Social(name string, n int, avgDeg int, seed int64) *CSR {
	scale := ceilLog2(n)
	m := n * avgDeg / 2
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	window := n / 64
	if window < 4 {
		window = 4
	}
	for len(edges) < m {
		// Milder R-MAT quadrants soften the hub skew relative to GK.
		src, dst := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < 0.45:
			case r < 0.45+0.22:
				dst |= 1 << uint(bit)
			case r < 0.45+0.44:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		if src >= n || dst >= n {
			continue
		}
		if rng.Float64() < 0.3 {
			// Community edge: rewire dst near src.
			dst = src + rng.Intn(2*window) - window
			if dst < 0 {
				dst += n
			}
			if dst >= n {
				dst -= n
			}
		}
		edges = append(edges, Edge{uint32(src), uint32(dst)})
	}
	return FromEdges(name, n, edges, false)
}

// Web generates a directed web-crawl-like graph (sk-2005 / uk-2007-05
// analogs): URL-ordered vertices give strong ID locality, out-degrees are
// heavy-tailed (lognormal), and most links land near their source with a
// minority of long-range links.
func Web(name string, n int, avgDeg int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n*avgDeg)
	// Lognormal out-degree with the given mean: exp(mu + sigma^2/2) = avgDeg.
	sigma := 1.1
	mu := math.Log(float64(avgDeg)) - sigma*sigma/2
	window := n / 128
	if window < 8 {
		window = 8
	}
	for v := 0; v < n; v++ {
		d := int(math.Exp(rng.NormFloat64()*sigma + mu))
		if d < 1 {
			d = 1
		}
		if d > n/2 {
			d = n / 2
		}
		for i := 0; i < d; i++ {
			var dst int
			if rng.Float64() < 0.85 {
				// Local link within the host/window.
				dst = v + rng.Intn(2*window) - window
				if dst < 0 {
					dst += n
				}
				if dst >= n {
					dst -= n
				}
			} else {
				// Long-range link, biased toward early (popular) vertices.
				dst = int(float64(n) * math.Pow(rng.Float64(), 2.0))
				if dst >= n {
					dst = n - 1
				}
			}
			edges = append(edges, Edge{uint32(v), uint32(dst)})
		}
	}
	return FromEdges(name, n, edges, true)
}
