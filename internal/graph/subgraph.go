package graph

// This file implements Subway-style active-subgraph extraction (Table 3).
// Subway [45] preprocesses each iteration's frontier on the host: it
// gathers the neighbor lists of currently active vertices into a compact
// subgraph, transfers only that subgraph to the GPU, and runs the kernel
// on GPU-resident data. The win is moving fewer bytes; the cost is the
// per-iteration host preprocessing and transfer.

// Subgraph is one iteration's compacted active subgraph.
type Subgraph struct {
	// Vertices holds the original IDs of the active vertices, ascending.
	Vertices []uint32
	// Offsets/Dst/Weights form a CSR over the *local* vertex indices:
	// Offsets[i] delimits the neighbor list of Vertices[i]. Dst still holds
	// original destination IDs (Subway keeps a global value array indexed
	// by original ID).
	Offsets []int64
	Dst     []uint32
	Weights []uint32
}

// NumActive returns the number of active vertices in the subgraph.
func (s *Subgraph) NumActive() int { return len(s.Vertices) }

// NumEdges returns the number of arcs in the subgraph.
func (s *Subgraph) NumEdges() int64 { return int64(len(s.Dst)) }

// TransferBytes returns the bytes that must cross the interconnect to
// place this subgraph in GPU memory with the given edge element width:
// the active vertex array (4B IDs), the offset array (one element per
// active vertex + 1), the destination array, and weights if present.
func (s *Subgraph) TransferBytes(elemBytes int) int64 {
	n := int64(len(s.Vertices))
	e := int64(len(s.Dst))
	total := n*4 + (n+1)*int64(elemBytes) + e*int64(elemBytes)
	if s.Weights != nil {
		total += e * 4
	}
	return total
}

// ExtractSubgraph gathers the neighbor lists of all vertices with
// active[v] set into a compact subgraph, copying weights when the parent
// graph has them. This is the host-side work Subway's "subgraph
// generation" step performs each iteration.
func ExtractSubgraph(g *CSR, active []bool) *Subgraph {
	n := g.NumVertices()
	sub := &Subgraph{}
	var edges int64
	for v := 0; v < n; v++ {
		if active[v] {
			sub.Vertices = append(sub.Vertices, uint32(v))
			edges += g.Degree(v)
		}
	}
	sub.Offsets = make([]int64, len(sub.Vertices)+1)
	sub.Dst = make([]uint32, 0, edges)
	if g.Weights != nil {
		sub.Weights = make([]uint32, 0, edges)
	}
	for i, v := range sub.Vertices {
		sub.Offsets[i] = int64(len(sub.Dst))
		sub.Dst = append(sub.Dst, g.Neighbors(int(v))...)
		if g.Weights != nil {
			sub.Weights = append(sub.Weights, g.NeighborWeights(int(v))...)
		}
		_ = i
	}
	sub.Offsets[len(sub.Vertices)] = int64(len(sub.Dst))
	return sub
}
