package graph

import "container/heap"

// This file holds the host-side reference implementations used to validate
// every simulated GPU traversal: queue-based BFS, Dijkstra SSSP, and
// union-find connected components. They are also the "ground truth" the
// test suite checks property-style against all generator families.

// InfDist is the "unvisited / unreachable" sentinel used by both the
// reference and GPU implementations (0xFFFFFFFF, as a CUDA kernel would
// initialize a 4-byte distance array).
const InfDist = ^uint32(0)

// RefBFS returns each vertex's BFS level from src (InfDist if unreachable).
func RefBFS(g *CSR, src int) []uint32 {
	n := g.NumVertices()
	level := make([]uint32, n)
	for i := range level {
		level[i] = InfDist
	}
	if src < 0 || src >= n {
		return level
	}
	level[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		next := level[v] + 1
		for _, u := range g.Neighbors(v) {
			if level[u] == InfDist {
				level[u] = next
				queue = append(queue, int(u))
			}
		}
	}
	return level
}

// distHeap is a binary min-heap of (vertex, dist) pairs for Dijkstra.
type distHeap struct {
	v []int
	d []uint32
}

func (h *distHeap) Len() int           { return len(h.v) }
func (h *distHeap) Less(i, j int) bool { return h.d[i] < h.d[j] }
func (h *distHeap) Swap(i, j int) {
	h.v[i], h.v[j] = h.v[j], h.v[i]
	h.d[i], h.d[j] = h.d[j], h.d[i]
}
func (h *distHeap) Push(x any) {
	p := x.([2]uint32)
	h.v = append(h.v, int(p[0]))
	h.d = append(h.d, p[1])
}
func (h *distHeap) Pop() any {
	n := len(h.v) - 1
	p := [2]uint32{uint32(h.v[n]), h.d[n]}
	h.v = h.v[:n]
	h.d = h.d[:n]
	return p
}

// RefSSSP returns each vertex's shortest-path distance from src using
// Dijkstra's algorithm (all weights are positive). Unweighted graphs use
// weight 1 per edge.
func RefSSSP(g *CSR, src int) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	h := &distHeap{}
	heap.Push(h, [2]uint32{uint32(src), 0})
	for h.Len() > 0 {
		p := heap.Pop(h).([2]uint32)
		v, d := int(p[0]), p[1]
		if d > dist[v] {
			continue // stale entry
		}
		ns := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		for i, u := range ns {
			w := uint32(1)
			if ws != nil {
				w = ws[i]
			}
			nd := d + w
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(h, [2]uint32{u, nd})
			}
		}
	}
	return dist
}

// RefSSWP returns each vertex's widest-path width from src: the maximum
// over all paths of the path's narrowest edge weight (the bottleneck
// capacity). The source itself has width InfDist (an empty path has no
// bottleneck); unreachable vertices have width 0. Computed with the
// max-bottleneck variant of Dijkstra: repeatedly settle the vertex with
// the widest known path. Unweighted graphs use weight 1 per edge.
func RefSSWP(g *CSR, src int) []uint32 {
	n := g.NumVertices()
	width := make([]uint32, n)
	if src < 0 || src >= n {
		return width
	}
	width[src] = InfDist
	h := &widthHeap{}
	heap.Push(h, [2]uint32{uint32(src), InfDist})
	for h.Len() > 0 {
		p := heap.Pop(h).([2]uint32)
		v, wv := int(p[0]), p[1]
		if wv < width[v] {
			continue // stale entry
		}
		ns := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		for i, u := range ns {
			w := uint32(1)
			if ws != nil {
				w = ws[i]
			}
			// The path through v is as wide as its narrowest hop.
			nw := wv
			if w < nw {
				nw = w
			}
			if nw > width[u] {
				width[u] = nw
				heap.Push(h, [2]uint32{u, nw})
			}
		}
	}
	return width
}

// widthHeap is a binary max-heap of (vertex, width) pairs for the
// widest-path Dijkstra.
type widthHeap struct{ distHeap }

func (h *widthHeap) Less(i, j int) bool { return h.d[i] > h.d[j] }

// RefCC returns each vertex's connected-component label: the smallest
// vertex ID in its component, which is the fixed point that GPU min-label
// propagation converges to. The graph must be undirected.
func RefCC(g *CSR) []uint32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			a, b := find(int32(v)), find(int32(u))
			if a == b {
				continue
			}
			// Union by smaller root ID so roots end up being component minima.
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	labels := make([]uint32, n)
	for v := 0; v < n; v++ {
		labels[v] = uint32(find(int32(v)))
	}
	return labels
}

// ReachableCount returns how many vertices have a finite value in the
// given level/distance array — handy for picking useful BFS sources.
func ReachableCount(dist []uint32) int {
	n := 0
	for _, d := range dist {
		if d != InfDist {
			n++
		}
	}
	return n
}

// PickSources deterministically picks k source vertices with non-zero
// out-degree, mimicking §5.2's "64 random vertices... results are removed
// when the selected vertices have no outgoing edges". The same seed yields
// the same sources for every implementation under comparison.
func PickSources(g *CSR, k int, seed int64) []int {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	out := make([]int, 0, k)
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for attempts := 0; len(out) < k && attempts < 10*n+k; attempts++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := int(x % uint64(n))
		if g.Degree(v) > 0 {
			out = append(out, v)
		}
	}
	// Fallback for graphs that are almost all isolated vertices: take any
	// vertices with edges, cycling if there are fewer than k.
	if len(out) < k {
		var candidates []int
		for v := 0; v < n; v++ {
			if g.Degree(v) > 0 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		for i := 0; len(out) < k; i++ {
			out = append(out, candidates[i%len(candidates)])
		}
	}
	return out
}
