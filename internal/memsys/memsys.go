// Package memsys provides the simulated memory substrate: a single virtual
// address arena with typed buffers placed in one of three spaces (GPU global
// memory, pinned zero-copy host memory, or UVM-managed memory), plus simple
// bandwidth models for host DDR4 DRAM and GPU HBM2.
//
// Buffers carry real backing bytes: simulated kernels actually read and
// write data through them, so graph traversal results are functionally
// correct, not just performance-modeled.
package memsys

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pcie"
)

// Space identifies where a buffer physically lives and therefore which
// transport a GPU access to it takes.
type Space uint8

const (
	// SpaceGPU is GPU global memory (HBM). Accesses are local to the GPU.
	SpaceGPU Space = iota
	// SpaceHostPinned is pinned host memory accessed via zero-copy: every
	// GPU access becomes a cache-line-sized PCIe read/write.
	SpaceHostPinned
	// SpaceUVM is managed memory: accesses fault 4KB pages into GPU memory
	// on demand, after which they are served from HBM.
	SpaceUVM
	// SpaceCXL is external CXL-class memory: byte-addressable like pinned
	// host memory, but reached over the (higher-latency) CXL tier link.
	// Buffers are rarely allocated wholly in it; segments of DRAM-based
	// buffers are homed there when the working set spills past host DRAM
	// (see Buffer.SetSegmentHome and the tier stack in tier.go).
	SpaceCXL
)

// String returns a short human-readable name for the space.
func (s Space) String() string {
	switch s {
	case SpaceGPU:
		return "gpu"
	case SpaceHostPinned:
		return "zerocopy"
	case SpaceUVM:
		return "uvm"
	case SpaceCXL:
		return "cxl"
	default:
		return fmt.Sprintf("space(%d)", uint8(s))
	}
}

// CacheLineBytes is the GPU cache line size; the coalescing unit merges
// accesses within one line into a single request.
const CacheLineBytes = 128

// SectorBytes is the minimum external memory transaction size (one L2
// sector); all PCIe requests are whole multiples of it.
const SectorBytes = 32

// PageBytes is the UVM migration granularity (one system page).
const PageBytes = 4096

// SegmentBytes is the fixed partition granule used by the transport-policy
// layer: edge lists are split into segments of this size and each segment is
// bound to one transport substrate per round. It is a multiple of
// CacheLineBytes so a coalesced request (which never spans a cache line)
// never straddles two segments, and a multiple of PageBytes so segment
// boundaries align with UVM pages.
const SegmentBytes = 64 * 1024

// Buffer is a device-visible allocation. Base is its simulated virtual
// address; Data is the real backing store.
type Buffer struct {
	Name  string
	Space Space
	Base  uint64
	Data  []byte

	// Elem is the element width in bytes used by typed accessors for this
	// buffer's primary payload (4 or 8). Informational; accessors below
	// take explicit widths.
	Elem int

	// SpaceFn, when non-nil, overrides Space per byte offset: the transport
	// router installed by an adaptive policy. Accesses consult SpaceAt so a
	// single buffer can be served zero-copy, via UVM, or from a staged HBM
	// copy on a per-segment basis. Nil (the default, and always for
	// statically-bound buffers) costs one pointer check per access.
	SpaceFn func(off int64) Space

	// pageState is used by the UVM manager for SpaceUVM buffers; nil
	// otherwise. Each entry tracks residency of one 4KB page.
	pageState []bool

	// segState tracks which SegmentBytes-sized segments have an explicit
	// staged copy resident in GPU memory (the batched-copy substrate). Nil
	// until the first SetSegmentStaged call.
	segState []bool

	// segHome, when non-nil, records each SegmentBytes-sized segment's home
	// tier space — where the segment's backing bytes physically live. Nil
	// (the default) means every segment is homed in Space. Placement across
	// a tier stack (DRAM-first with spill to CXL) sets entries to SpaceCXL;
	// accounting moves with them through Arena.SetSegmentHome.
	segHome []Space
}

// SpaceAt returns the space that serves a GPU access at byte offset off.
// Precedence: an installed router (SpaceFn) decides first; otherwise a
// UVM-managed buffer is always served through the UVM space (its segment
// homes describe where pages migrate *from*, not how accesses are served);
// otherwise the segment's home space; otherwise the buffer's static Space.
func (b *Buffer) SpaceAt(off int64) Space {
	if b.SpaceFn != nil {
		return b.SpaceFn(off)
	}
	if b.Space == SpaceUVM {
		return SpaceUVM
	}
	if b.segHome != nil {
		return b.segHome[off/SegmentBytes]
	}
	return b.Space
}

// HomeAt returns the home tier space of the segment containing byte offset
// off: where its backing bytes physically live, independent of any router
// or UVM management layered on top.
func (b *Buffer) HomeAt(off int64) Space {
	if b.segHome != nil {
		return b.segHome[off/SegmentBytes]
	}
	if b.Space == SpaceUVM {
		return SpaceHostPinned // UVM backing lives in host DRAM by default
	}
	return b.Space
}

// SegmentHome returns segment i's home space (see HomeAt).
func (b *Buffer) SegmentHome(i int) Space {
	return b.HomeAt(int64(i) * SegmentBytes)
}

// HomedBytes returns how many of the buffer's bytes are homed in the given
// space.
func (b *Buffer) HomedBytes(s Space) int64 {
	var n int64
	for i := 0; i < b.Segments(); i++ {
		if b.SegmentHome(i) == s {
			n += b.segmentBytes(i)
		}
	}
	return n
}

// segmentBytes returns segment i's length (SegmentBytes except the tail).
func (b *Buffer) segmentBytes(i int) int64 {
	return segLen(b.Size(), i)
}

// segLen returns segment i's length for a buffer of the given total size.
func segLen(size int64, i int) int64 {
	n := size - int64(i)*SegmentBytes
	if n > SegmentBytes {
		n = SegmentBytes
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Segments returns the number of SegmentBytes-sized segments the buffer
// spans.
func (b *Buffer) Segments() int {
	return int((b.Size() + SegmentBytes - 1) / SegmentBytes)
}

// SegmentStaged reports whether segment i has a staged device copy.
func (b *Buffer) SegmentStaged(i int) bool {
	return b.segState != nil && i < len(b.segState) && b.segState[i]
}

// SetSegmentStaged marks segment i's staged-copy residency.
func (b *Buffer) SetSegmentStaged(i int, staged bool) {
	if b.segState == nil {
		b.segState = make([]bool, b.Segments())
	}
	b.segState[i] = staged
}

// StagedSegments returns how many segments currently hold a staged copy.
func (b *Buffer) StagedSegments() int {
	n := 0
	for _, s := range b.segState {
		if s {
			n++
		}
	}
	return n
}

// ResetSegments drops all staged segment copies (e.g. on ColdCaches).
func (b *Buffer) ResetSegments() {
	for i := range b.segState {
		b.segState[i] = false
	}
}

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int64 { return int64(len(b.Data)) }

// Pages returns the number of 4KB pages the buffer spans.
func (b *Buffer) Pages() int {
	return int((b.Size() + PageBytes - 1) / PageBytes)
}

// PageResident reports whether page i is resident in GPU memory. Only
// meaningful for SpaceUVM buffers.
func (b *Buffer) PageResident(i int) bool {
	return b.pageState != nil && i < len(b.pageState) && b.pageState[i]
}

// SetPageResident marks page i's residency. Used by the UVM manager.
func (b *Buffer) SetPageResident(i int, resident bool) {
	if b.pageState == nil {
		b.pageState = make([]bool, b.Pages())
	}
	b.pageState[i] = resident
}

// ResetPages clears all page residency (e.g. between experiment runs).
func (b *Buffer) ResetPages() {
	for i := range b.pageState {
		b.pageState[i] = false
	}
}

// U64 reads the 64-bit little-endian element at index i.
func (b *Buffer) U64(i int64) uint64 {
	return binary.LittleEndian.Uint64(b.Data[i*8:])
}

// PutU64 writes the 64-bit element at index i.
func (b *Buffer) PutU64(i int64, v uint64) {
	binary.LittleEndian.PutUint64(b.Data[i*8:], v)
}

// U32 reads the 32-bit little-endian element at index i.
func (b *Buffer) U32(i int64) uint32 {
	return binary.LittleEndian.Uint32(b.Data[i*4:])
}

// PutU32 writes the 32-bit element at index i.
func (b *Buffer) PutU32(i int64, v uint32) {
	binary.LittleEndian.PutUint32(b.Data[i*4:], v)
}

// Arena hands out non-overlapping virtual address ranges and tracks
// capacity consumption per space. It corresponds to the union of
// cudaMalloc / cudaMallocHost / cudaMallocManaged address ranges.
type Arena struct {
	nextVA  uint64
	buffers []*Buffer

	GPUCapacity  int64 // HBM bytes available for explicit SpaceGPU buffers
	HostCapacity int64 // host DRAM bytes for pinned + UVM backing
	CXLCapacity  int64 // external CXL-tier bytes (0 = no tier unless attached)

	gpuUsed  int64
	hostUsed int64
	cxlUsed  int64
	uvmLive  int

	// cxlTier, when non-nil, is the attached external tier descriptor: its
	// link and memory models price every access to SpaceCXL-homed data.
	cxlTier *Tier

	// allocFault, when non-nil, is consulted before every allocation; a
	// non-nil return fails the allocation with that error. Used by the
	// fault-injection layer to simulate device memory pressure. Nil (the
	// default) costs one pointer check per Alloc.
	allocFault func(space Space, size int64) error
}

// NewArena creates a two-tier arena with the given capacities in bytes. A
// zero capacity means unlimited (useful in unit tests).
//
// Deprecated: use NewTieredArena, which takes the capacities from a
// validated TierStack and also attaches an external tier's cost model when
// the stack has one. NewTieredArena on a two-tier stack is equivalent.
func NewArena(gpuCapacity, hostCapacity int64) *Arena {
	// Delegate through the tiered constructor with placeholder models: the
	// arena only consumes the stack's capacities, so the shim stays
	// infallible (the synthesized stack always validates) and zero
	// capacities keep meaning "unlimited".
	a, err := NewTieredArena(TwoTier(gpuCapacity, hostCapacity,
		DRAMModel{Name: "hbm"}, DRAMModel{Name: "dram"},
		pcie.LinkConfig{RawBytesPerSec: 1}))
	if err != nil {
		panic("memsys: " + err.Error()) // unreachable: the synthesized stack is well-formed
	}
	return a
}

// AllocOption adjusts allocation placement.
type AllocOption func(*allocConfig)

type allocConfig struct {
	align      uint64
	baseOffset uint64
	elem       int
	homes      []Space
}

// WithAlign sets the base alignment in bytes (default 4096). Must be a
// power of two.
func WithAlign(align uint64) AllocOption {
	return func(c *allocConfig) { c.align = align }
}

// WithBaseOffset shifts the buffer base by the given bytes after alignment.
// Used by misalignment experiments to emulate data that does not start on a
// 128-byte boundary.
func WithBaseOffset(off uint64) AllocOption {
	return func(c *allocConfig) { c.baseOffset = off }
}

// WithElem records the element width metadata (4 or 8 bytes).
func WithElem(elem int) AllocOption {
	return func(c *allocConfig) { c.elem = elem }
}

// WithSegmentHomes places each SegmentBytes-sized segment of the buffer on
// its own tier at allocation time (SpaceHostPinned or SpaceCXL per entry).
// len(homes) must equal the buffer's segment count and the buffer's Space
// must be SpaceHostPinned or SpaceUVM; capacity is charged per segment, so a
// buffer larger than host DRAM can spill its tail to a CXL-class tier.
func WithSegmentHomes(homes []Space) AllocOption {
	return func(c *allocConfig) { c.homes = homes }
}

// SetAllocFaultHook installs (or, with nil, removes) a hook consulted
// before every allocation; a non-nil return from the hook fails the
// allocation with that error without touching capacity accounting. The
// arena is not goroutine-safe, so the hook is called under whatever
// serialization the caller already provides (the device run mutex).
func (a *Arena) SetAllocFaultHook(hook func(space Space, size int64) error) {
	a.allocFault = hook
}

// ErrOutOfMemory is returned when an allocation exceeds the space capacity.
type ErrOutOfMemory struct {
	Space     Space
	Requested int64
	Used      int64
	Capacity  int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("memsys: out of %s memory: requested %d bytes, %d/%d used",
		e.Space, e.Requested, e.Used, e.Capacity)
}

// charge accounts size bytes against the capacity backing space, failing
// with ErrOutOfMemory when it would overflow.
func (a *Arena) charge(space Space, size int64) error {
	switch space {
	case SpaceGPU:
		if a.GPUCapacity > 0 && a.gpuUsed+size > a.GPUCapacity {
			return &ErrOutOfMemory{Space: space, Requested: size, Used: a.gpuUsed, Capacity: a.GPUCapacity}
		}
		a.gpuUsed += size
	case SpaceHostPinned, SpaceUVM:
		if a.HostCapacity > 0 && a.hostUsed+size > a.HostCapacity {
			return &ErrOutOfMemory{Space: space, Requested: size, Used: a.hostUsed, Capacity: a.HostCapacity}
		}
		a.hostUsed += size
	case SpaceCXL:
		if a.cxlTier == nil {
			return fmt.Errorf("memsys: no CXL tier attached to this arena")
		}
		if a.CXLCapacity > 0 && a.cxlUsed+size > a.CXLCapacity {
			return &ErrOutOfMemory{Space: space, Requested: size, Used: a.cxlUsed, Capacity: a.CXLCapacity}
		}
		a.cxlUsed += size
	default:
		return fmt.Errorf("memsys: unknown space %d", space)
	}
	return nil
}

// uncharge releases size bytes from the capacity backing space.
func (a *Arena) uncharge(space Space, size int64) {
	switch space {
	case SpaceGPU:
		a.gpuUsed -= size
	case SpaceHostPinned, SpaceUVM:
		a.hostUsed -= size
	case SpaceCXL:
		a.cxlUsed -= size
	}
}

// Alloc creates a buffer of the given size in the given space.
func (a *Arena) Alloc(name string, space Space, size int64, opts ...AllocOption) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("memsys: negative allocation size %d", size)
	}
	cfg := allocConfig{align: uint64(PageBytes), elem: 8}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.align == 0 || cfg.align&(cfg.align-1) != 0 {
		return nil, fmt.Errorf("memsys: alignment %d is not a power of two", cfg.align)
	}
	if a.allocFault != nil {
		if err := a.allocFault(space, size); err != nil {
			return nil, err
		}
	}
	var segHome []Space
	if cfg.homes != nil {
		nseg := int((size + SegmentBytes - 1) / SegmentBytes)
		if space != SpaceHostPinned && space != SpaceUVM {
			return nil, fmt.Errorf("memsys: WithSegmentHomes requires a %s or %s buffer, got %s", SpaceHostPinned, SpaceUVM, space)
		}
		if len(cfg.homes) != nseg {
			return nil, fmt.Errorf("memsys: WithSegmentHomes got %d homes for %d segments", len(cfg.homes), nseg)
		}
		// Charge each segment to its own tier, rolling back the partial
		// charges if any tier runs out.
		for i, home := range cfg.homes {
			if home != SpaceHostPinned && home != SpaceCXL {
				err := fmt.Errorf("memsys: segment home must be %s or %s, got %s", SpaceHostPinned, SpaceCXL, home)
				for j := 0; j < i; j++ {
					a.uncharge(cfg.homes[j], segLen(size, j))
				}
				return nil, err
			}
			if err := a.charge(home, segLen(size, i)); err != nil {
				for j := 0; j < i; j++ {
					a.uncharge(cfg.homes[j], segLen(size, j))
				}
				return nil, err
			}
		}
		segHome = append([]Space(nil), cfg.homes...)
	} else if err := a.charge(space, size); err != nil {
		return nil, err
	}

	base := (a.nextVA + cfg.align - 1) &^ (cfg.align - 1)
	base += cfg.baseOffset
	b := &Buffer{
		Name:    name,
		Space:   space,
		Base:    base,
		Data:    alignedBytes(size),
		Elem:    cfg.elem,
		segHome: segHome,
	}
	if space == SpaceUVM {
		b.pageState = make([]bool, b.Pages())
		a.uvmLive++
	}
	a.nextVA = base + uint64(size)
	a.buffers = append(a.buffers, b)
	return b, nil
}

// MustAlloc is Alloc that panics on failure; used where capacity is known
// to suffice (test setup, fixed-size metadata buffers).
func (a *Arena) MustAlloc(name string, space Space, size int64, opts ...AllocOption) *Buffer {
	b, err := a.Alloc(name, space, size, opts...)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases a buffer's capacity accounting. The buffer must have come
// from this arena. Virtual addresses are not recycled (monotone allocator),
// which keeps traces unambiguous.
func (a *Arena) Free(b *Buffer) {
	for i, x := range a.buffers {
		if x == b {
			a.buffers = append(a.buffers[:i], a.buffers[i+1:]...)
			if b.segHome != nil {
				// Segment homes may have diverged from the base space
				// (spill placement, request-level re-homing): release each
				// segment against the capacity it is currently charged to.
				for s := 0; s < b.Segments(); s++ {
					a.uncharge(b.SegmentHome(s), b.segmentBytes(s))
				}
			} else {
				a.uncharge(b.Space, b.Size())
			}
			if b.Space == SpaceUVM {
				a.uvmLive--
			}
			return
		}
	}
	panic("memsys: Free of buffer not owned by arena")
}

// AttachCXLTier attaches an external CXL-class tier to the arena: SpaceCXL
// homes become allocatable against its capacity, and its link/memory models
// price accesses to data homed there. Attaching nil detaches the tier.
func (a *Arena) AttachCXLTier(t *Tier) {
	a.cxlTier = t
	if t != nil {
		a.CXLCapacity = t.CapacityBytes
	} else {
		a.CXLCapacity = 0
	}
}

// CXLTier returns the attached external tier descriptor, or nil.
func (a *Arena) CXLTier() *Tier { return a.cxlTier }

// SetSegmentHome re-homes segment seg of b to the given tier space, moving
// its capacity accounting: the segment's bytes are released from the old
// home's pool and charged to the new one (failing with ErrOutOfMemory when
// the destination is full, leaving accounting unchanged). The buffer's
// backing bytes do not move — homes describe where data physically lives in
// the simulated hierarchy; the transfer cost of moving it is charged by the
// caller (gpu.Device bulk copies).
func (a *Arena) SetSegmentHome(b *Buffer, seg int, home Space) error {
	if seg < 0 || seg >= b.Segments() {
		return fmt.Errorf("memsys: segment %d out of range for buffer %q (%d segments)",
			seg, b.Name, b.Segments())
	}
	if home != SpaceHostPinned && home != SpaceCXL {
		return fmt.Errorf("memsys: segment home must be a host-side tier space, got %s", home)
	}
	old := b.SegmentHome(seg)
	if old == home {
		return nil
	}
	n := b.segmentBytes(seg)
	if err := a.charge(home, n); err != nil {
		return err
	}
	a.uncharge(old, n)
	if b.segHome == nil {
		b.segHome = make([]Space, b.Segments())
		for i := range b.segHome {
			b.segHome[i] = b.HomeAt(int64(i) * SegmentBytes)
		}
	}
	b.segHome[seg] = home
	return nil
}

// GPUUsed returns the bytes currently allocated in GPU space.
func (a *Arena) GPUUsed() int64 { return a.gpuUsed }

// HostUsed returns the bytes currently allocated in host space
// (pinned + UVM backing).
func (a *Arena) HostUsed() int64 { return a.hostUsed }

// CXLUsed returns the bytes currently homed in the external CXL tier.
func (a *Arena) CXLUsed() int64 { return a.cxlUsed }

// GPUFree returns the remaining explicit-allocation HBM capacity, or -1 if
// the arena is uncapped.
func (a *Arena) GPUFree() int64 {
	if a.GPUCapacity <= 0 {
		return -1
	}
	return a.GPUCapacity - a.gpuUsed
}

// HostFree returns the remaining host-DRAM capacity, or -1 if the arena is
// uncapped.
func (a *Arena) HostFree() int64 {
	if a.HostCapacity <= 0 {
		return -1
	}
	return a.HostCapacity - a.hostUsed
}

// CXLFree returns the remaining external-tier capacity: -1 when the
// attached tier is uncapped, 0 when no tier is attached.
func (a *Arena) CXLFree() int64 {
	if a.cxlTier == nil {
		return 0
	}
	if a.CXLCapacity <= 0 {
		return -1
	}
	return a.CXLCapacity - a.cxlUsed
}

// Buffers returns the live buffers in allocation order. The returned slice
// is shared and must not be mutated.
func (a *Arena) Buffers() []*Buffer { return a.buffers }

// HasUVM reports whether any live buffer is UVM-managed. The execution
// engine uses it to keep launches that can fault pages on the serial path
// (the UVM manager's residency bookkeeping is order-dependent).
func (a *Arena) HasUVM() bool { return a.uvmLive > 0 }

// ResetStaged drops every staged segment copy across all live buffers.
// Called from Device.ResetUVMResidency so ColdCaches evicts the explicit
// batched-copy substrate alongside UVM pages.
func (a *Arena) ResetStaged() {
	for _, b := range a.buffers {
		b.ResetSegments()
	}
}
