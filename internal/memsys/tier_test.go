package memsys

import (
	"errors"
	"testing"

	"repro/internal/pcie"
)

func TestTierKindStringsAndSpaces(t *testing.T) {
	if TierHBM.String() != "hbm" || TierDRAM.String() != "dram" || TierCXL.String() != "cxl" {
		t.Errorf("tier kind labels wrong: %s %s %s", TierHBM, TierDRAM, TierCXL)
	}
	if TierHBM.Space() != SpaceGPU || TierDRAM.Space() != SpaceHostPinned || TierCXL.Space() != SpaceCXL {
		t.Errorf("tier kind space mapping wrong")
	}
	if SpaceCXL.String() != "cxl" {
		t.Errorf("SpaceCXL label = %q", SpaceCXL)
	}
}

func TestTierStackValidate(t *testing.T) {
	two := TwoTier(1<<20, 1<<22, HBM2V100(), DDR4Quad(), pcie.Gen3x16())
	if err := two.Validate(); err != nil {
		t.Fatalf("canonical two-tier stack invalid: %v", err)
	}
	three := ThreeTierCXL(two, 1<<24)
	if err := three.Validate(); err != nil {
		t.Fatalf("canonical three-tier stack invalid: %v", err)
	}
	if !three.HasCXL() || two.HasCXL() {
		t.Errorf("HasCXL wrong: three=%v two=%v", three.HasCXL(), two.HasCXL())
	}
	if three.CXL().CapacityBytes != 1<<24 {
		t.Errorf("CXL capacity = %d", three.CXL().CapacityBytes)
	}

	bad := []TierStack{
		{},               // empty
		{two[0]},         // HBM only
		{two[1], two[0]}, // wrong order
		{two[0], two[0]}, // two HBMs
		append(append(TierStack{}, three...), three[2]), // four tiers
		{two[0], {Name: "dram", Kind: TierDRAM}},        // DRAM with no link
	}
	for i, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("bad stack %d validated", i)
		}
	}
}

func TestNewTieredArenaCapacities(t *testing.T) {
	two := TwoTier(4096, 8192, HBM2V100(), DDR4Quad(), pcie.Gen3x16())
	a, err := NewTieredArena(two)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUCapacity != 4096 || a.HostCapacity != 8192 || a.CXLCapacity != 0 {
		t.Errorf("two-tier arena capacities: %d/%d/%d", a.GPUCapacity, a.HostCapacity, a.CXLCapacity)
	}
	// SpaceCXL without a tier must fail loudly, not silently account.
	if _, err := a.Alloc("x", SpaceCXL, 64); err == nil {
		t.Error("CXL alloc without a CXL tier should fail")
	}

	three := ThreeTierCXL(two, 1<<20)
	a3, err := NewTieredArena(three)
	if err != nil {
		t.Fatal(err)
	}
	if a3.CXLCapacity != 1<<20 || a3.CXLTier() == nil {
		t.Errorf("three-tier arena CXL capacity %d, tier %v", a3.CXLCapacity, a3.CXLTier())
	}
	b, err := a3.Alloc("c", SpaceCXL, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a3.CXLUsed() != 4096 {
		t.Errorf("CXLUsed = %d", a3.CXLUsed())
	}
	a3.Free(b)
	if a3.CXLUsed() != 0 {
		t.Errorf("CXLUsed after free = %d", a3.CXLUsed())
	}
}

func TestWithSegmentHomesSpill(t *testing.T) {
	two := TwoTier(0, 3*SegmentBytes, HBM2V100(), DDR4Quad(), pcie.Gen3x16())
	a, err := NewTieredArena(ThreeTierCXL(two, 16*SegmentBytes))
	if err != nil {
		t.Fatal(err)
	}
	// 6 segments against a 3-segment host: homes split half and half — an
	// allocation bigger than host DRAM that a plain Alloc would refuse.
	size := int64(6 * SegmentBytes)
	if _, err := a.Alloc("plain", SpaceHostPinned, size); err == nil {
		t.Fatal("plain alloc beyond host capacity should fail")
	}
	homes := []Space{SpaceHostPinned, SpaceHostPinned, SpaceHostPinned, SpaceCXL, SpaceCXL, SpaceCXL}
	b, err := a.Alloc("split", SpaceHostPinned, size, WithSegmentHomes(homes))
	if err != nil {
		t.Fatalf("segmented alloc: %v", err)
	}
	if got := a.HostUsed(); got != 3*SegmentBytes {
		t.Errorf("HostUsed = %d, want %d", got, 3*SegmentBytes)
	}
	if got := a.CXLUsed(); got != 3*SegmentBytes {
		t.Errorf("CXLUsed = %d, want %d", got, 3*SegmentBytes)
	}
	if b.HomedBytes(SpaceCXL) != 3*SegmentBytes || b.HomedBytes(SpaceHostPinned) != 3*SegmentBytes {
		t.Errorf("homed bytes: dram %d cxl %d", b.HomedBytes(SpaceHostPinned), b.HomedBytes(SpaceCXL))
	}
	if b.SegmentHome(0) != SpaceHostPinned || b.SegmentHome(5) != SpaceCXL {
		t.Errorf("segment homes wrong: %v / %v", b.SegmentHome(0), b.SegmentHome(5))
	}
	if b.HomeAt(0) != SpaceHostPinned || b.HomeAt(5*SegmentBytes) != SpaceCXL {
		t.Errorf("HomeAt wrong")
	}
	a.Free(b)
	if a.HostUsed() != 0 || a.CXLUsed() != 0 {
		t.Errorf("accounting after free: host %d cxl %d", a.HostUsed(), a.CXLUsed())
	}
}

func TestWithSegmentHomesRollback(t *testing.T) {
	two := TwoTier(0, 8*SegmentBytes, HBM2V100(), DDR4Quad(), pcie.Gen3x16())
	a, err := NewTieredArena(ThreeTierCXL(two, SegmentBytes)) // 1 CXL segment only
	if err != nil {
		t.Fatal(err)
	}
	homes := []Space{SpaceHostPinned, SpaceCXL, SpaceCXL} // second CXL segment overflows
	_, err = a.Alloc("over", SpaceHostPinned, 3*SegmentBytes, WithSegmentHomes(homes))
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if a.HostUsed() != 0 || a.CXLUsed() != 0 {
		t.Errorf("partial charges not rolled back: host %d cxl %d", a.HostUsed(), a.CXLUsed())
	}

	// Shape errors: wrong count, bad home space, wrong buffer space.
	if _, err := a.Alloc("short", SpaceHostPinned, 3*SegmentBytes,
		WithSegmentHomes([]Space{SpaceHostPinned})); err == nil {
		t.Error("home count mismatch should fail")
	}
	if _, err := a.Alloc("gpuhome", SpaceHostPinned, SegmentBytes,
		WithSegmentHomes([]Space{SpaceGPU})); err == nil {
		t.Error("GPU segment home should fail")
	}
	if a.HostUsed() != 0 || a.CXLUsed() != 0 {
		t.Errorf("failed allocs leaked accounting: host %d cxl %d", a.HostUsed(), a.CXLUsed())
	}
}

func TestSetSegmentHomeMovesAccounting(t *testing.T) {
	two := TwoTier(0, 8*SegmentBytes, HBM2V100(), DDR4Quad(), pcie.Gen3x16())
	a, err := NewTieredArena(ThreeTierCXL(two, 2*SegmentBytes))
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Alloc("b", SpaceHostPinned, 4*SegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetSegmentHome(b, 1, SpaceCXL); err != nil {
		t.Fatal(err)
	}
	if a.HostUsed() != 3*SegmentBytes || a.CXLUsed() != SegmentBytes {
		t.Errorf("after move: host %d cxl %d", a.HostUsed(), a.CXLUsed())
	}
	// Moving back restores.
	if err := a.SetSegmentHome(b, 1, SpaceHostPinned); err != nil {
		t.Fatal(err)
	}
	if a.HostUsed() != 4*SegmentBytes || a.CXLUsed() != 0 {
		t.Errorf("after move back: host %d cxl %d", a.HostUsed(), a.CXLUsed())
	}
	// CXL tier is 2 segments: the third move must fail and leave accounting
	// untouched.
	if err := a.SetSegmentHome(b, 0, SpaceCXL); err != nil {
		t.Fatal(err)
	}
	if err := a.SetSegmentHome(b, 1, SpaceCXL); err != nil {
		t.Fatal(err)
	}
	if err := a.SetSegmentHome(b, 2, SpaceCXL); err == nil {
		t.Error("move beyond CXL capacity should fail")
	}
	if a.CXLUsed() != 2*SegmentBytes {
		t.Errorf("CXLUsed after refused move = %d", a.CXLUsed())
	}
	if err := a.SetSegmentHome(b, 9, SpaceCXL); err == nil {
		t.Error("out-of-range segment should fail")
	}
	if err := a.SetSegmentHome(b, 0, SpaceGPU); err == nil {
		t.Error("GPU home should fail")
	}
}

// TestNewTieredArenaDelegation pins the deprecated-style equivalence: a
// two-tier arena from NewTieredArena is indistinguishable from the classic
// NewArena construction.
func TestNewTieredArenaDelegation(t *testing.T) {
	classic := NewArena(4096, 8192)
	tiered, err := NewTieredArena(TwoTier(4096, 8192, HBM2V100(), DDR4Quad(), pcie.Gen3x16()))
	if err != nil {
		t.Fatal(err)
	}
	if classic.GPUCapacity != tiered.GPUCapacity || classic.HostCapacity != tiered.HostCapacity ||
		classic.CXLCapacity != tiered.CXLCapacity {
		t.Errorf("capacities differ: classic %d/%d/%d tiered %d/%d/%d",
			classic.GPUCapacity, classic.HostCapacity, classic.CXLCapacity,
			tiered.GPUCapacity, tiered.HostCapacity, tiered.CXLCapacity)
	}
	if tiered.CXLTier() != nil {
		t.Error("two-tier arena should have no CXL tier")
	}
}
