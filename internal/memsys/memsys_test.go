package memsys

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpaceString(t *testing.T) {
	cases := map[Space]string{
		SpaceGPU:        "gpu",
		SpaceHostPinned: "zerocopy",
		SpaceUVM:        "uvm",
		Space(9):        "space(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Space(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestArenaAllocBasics(t *testing.T) {
	a := NewArena(1<<20, 1<<20)
	b, err := a.Alloc("edges", SpaceHostPinned, 1000)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b.Size() != 1000 {
		t.Errorf("Size = %d, want 1000", b.Size())
	}
	if b.Base%PageBytes != 0 {
		t.Errorf("default base not page-aligned: %#x", b.Base)
	}
	if b.Space != SpaceHostPinned {
		t.Errorf("Space = %v", b.Space)
	}
	if a.HostUsed() != 1000 {
		t.Errorf("HostUsed = %d, want 1000", a.HostUsed())
	}
	if a.GPUUsed() != 0 {
		t.Errorf("GPUUsed = %d, want 0", a.GPUUsed())
	}
}

func TestArenaNonOverlapping(t *testing.T) {
	a := NewArena(0, 0)
	var prevEnd uint64
	for i := 0; i < 20; i++ {
		b, err := a.Alloc("b", SpaceGPU, 777)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if b.Base < prevEnd {
			t.Fatalf("allocation %d overlaps previous: base=%#x prevEnd=%#x", i, b.Base, prevEnd)
		}
		prevEnd = b.Base + uint64(b.Size())
	}
}

func TestArenaCapacityEnforced(t *testing.T) {
	a := NewArena(100, 200)
	if _, err := a.Alloc("big", SpaceGPU, 101); err == nil {
		t.Fatalf("expected GPU OOM")
	} else {
		var oom *ErrOutOfMemory
		if !errors.As(err, &oom) {
			t.Fatalf("error type = %T, want *ErrOutOfMemory", err)
		}
		if oom.Space != SpaceGPU || oom.Requested != 101 {
			t.Errorf("OOM fields wrong: %+v", oom)
		}
	}
	if _, err := a.Alloc("ok", SpaceGPU, 100); err != nil {
		t.Fatalf("allocation at capacity should succeed: %v", err)
	}
	if _, err := a.Alloc("more", SpaceGPU, 1); err == nil {
		t.Fatalf("expected OOM after exhausting capacity")
	}
	// Host capacity covers pinned and UVM jointly.
	if _, err := a.Alloc("h1", SpaceHostPinned, 150); err != nil {
		t.Fatalf("host alloc: %v", err)
	}
	if _, err := a.Alloc("h2", SpaceUVM, 51); err == nil {
		t.Fatalf("expected host OOM for UVM share")
	}
}

func TestArenaZeroCapacityUnlimited(t *testing.T) {
	a := NewArena(0, 0)
	if _, err := a.Alloc("huge", SpaceGPU, 1<<30); err != nil {
		t.Fatalf("uncapped arena refused allocation: %v", err)
	}
	if a.GPUFree() != -1 {
		t.Errorf("GPUFree on uncapped arena = %d, want -1", a.GPUFree())
	}
}

func TestArenaFree(t *testing.T) {
	a := NewArena(100, 0)
	b := a.MustAlloc("x", SpaceGPU, 60)
	if _, err := a.Alloc("y", SpaceGPU, 60); err == nil {
		t.Fatalf("expected OOM before free")
	}
	a.Free(b)
	if a.GPUUsed() != 0 {
		t.Errorf("GPUUsed after free = %d", a.GPUUsed())
	}
	if _, err := a.Alloc("y", SpaceGPU, 60); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestArenaFreeForeignPanics(t *testing.T) {
	a := NewArena(0, 0)
	b := &Buffer{Name: "foreign"}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic freeing foreign buffer")
		}
	}()
	a.Free(b)
}

func TestAllocOptions(t *testing.T) {
	a := NewArena(0, 0)
	b, err := a.Alloc("aligned", SpaceHostPinned, 64, WithAlign(128), WithBaseOffset(32), WithElem(4))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b.Base%128 != 32 {
		t.Errorf("base offset not applied: %#x", b.Base)
	}
	if b.Elem != 4 {
		t.Errorf("Elem = %d, want 4", b.Elem)
	}
	if _, err := a.Alloc("bad", SpaceGPU, 8, WithAlign(100)); err == nil {
		t.Errorf("expected error for non-power-of-two alignment")
	}
	if _, err := a.Alloc("neg", SpaceGPU, -1); err == nil {
		t.Errorf("expected error for negative size")
	}
	if _, err := a.Alloc("weird", Space(42), 8); err == nil {
		t.Errorf("expected error for unknown space")
	}
}

func TestBufferTypedAccessors(t *testing.T) {
	a := NewArena(0, 0)
	b := a.MustAlloc("t", SpaceGPU, 64)
	b.PutU64(2, 0xdeadbeefcafe)
	if got := b.U64(2); got != 0xdeadbeefcafe {
		t.Errorf("U64 = %#x", got)
	}
	b.PutU32(5, 0x1234)
	if got := b.U32(5); got != 0x1234 {
		t.Errorf("U32 = %#x", got)
	}
}

func TestBufferPages(t *testing.T) {
	a := NewArena(0, 0)
	cases := []struct {
		size int64
		want int
	}{
		{0, 0},
		{1, 1},
		{4096, 1},
		{4097, 2},
		{3 * 4096, 3},
	}
	for _, tc := range cases {
		b := a.MustAlloc("p", SpaceUVM, tc.size)
		if got := b.Pages(); got != tc.want {
			t.Errorf("Pages(size=%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestBufferPageResidency(t *testing.T) {
	a := NewArena(0, 0)
	b := a.MustAlloc("uvm", SpaceUVM, 3*PageBytes)
	if b.PageResident(0) || b.PageResident(2) {
		t.Errorf("pages should start non-resident")
	}
	b.SetPageResident(1, true)
	if !b.PageResident(1) || b.PageResident(0) {
		t.Errorf("residency tracking wrong")
	}
	b.ResetPages()
	if b.PageResident(1) {
		t.Errorf("ResetPages did not clear residency")
	}
	// Non-UVM buffers lazily create page state when marked.
	g := a.MustAlloc("gpu", SpaceGPU, PageBytes)
	if g.PageResident(0) {
		t.Errorf("non-UVM buffer should report non-resident")
	}
	g.SetPageResident(0, true)
	if !g.PageResident(0) {
		t.Errorf("lazy page state not created")
	}
}

func TestDRAMServedBytes(t *testing.T) {
	d := DDR4Quad()
	cases := []struct {
		req  int
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 64},
		{32, 64}, // the paper's §3.3 point: 32B request = 64B burst
		{64, 64},
		{96, 128},
		{128, 128},
		{4096, 4096},
	}
	for _, tc := range cases {
		if got := d.ServedBytes(tc.req); got != tc.want {
			t.Errorf("ServedBytes(%d) = %d, want %d", tc.req, got, tc.want)
		}
	}
	hbm := HBM2V100()
	if got := hbm.ServedBytes(32); got != 32 {
		t.Errorf("HBM ServedBytes(32) = %d, want 32", got)
	}
}

func TestDRAMServiceSeconds(t *testing.T) {
	d := DRAMModel{BytesPerSec: 100, MinAccessBytes: 1}
	if got := d.ServiceSeconds(200); got != 2.0 {
		t.Errorf("ServiceSeconds = %v, want 2", got)
	}
	if got := d.ServiceSeconds(0); got != 0 {
		t.Errorf("ServiceSeconds(0) = %v, want 0", got)
	}
	var zero DRAMModel
	if got := zero.ServiceSeconds(100); got != 0 {
		t.Errorf("zero-bandwidth model should return 0, got %v", got)
	}
}

// Property: ServedBytes is monotone in request size, always >= request size,
// and always a multiple of the minimum access size.
func TestDRAMServedBytesProperty(t *testing.T) {
	d := DDR4Quad()
	f := func(req uint16) bool {
		r := int(req)
		got := d.ServedBytes(r)
		if r == 0 {
			return got == 0
		}
		return got >= int64(r) &&
			got%int64(d.MinAccessBytes) == 0 &&
			got-int64(r) < int64(d.MinAccessBytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: allocations never overlap and never violate alignment.
func TestArenaAllocProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(0, 0)
		type rng struct{ lo, hi uint64 }
		var ranges []rng
		for _, s := range sizes {
			b, err := a.Alloc("p", SpaceGPU, int64(s), WithAlign(128))
			if err != nil {
				return false
			}
			if b.Base%128 != 0 {
				return false
			}
			lo, hi := b.Base, b.Base+uint64(s)
			for _, r := range ranges {
				if lo < r.hi && r.lo < hi {
					return false
				}
			}
			ranges = append(ranges, rng{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDRAMModelPresets(t *testing.T) {
	// Every preset must be internally consistent: positive bandwidth and a
	// power-of-two minimum burst no larger than a cache line.
	for _, d := range []DRAMModel{DDR4Quad(), DDR4Single(), HBM2V100(), HBM2eA100(), GDDR5XTitanXp()} {
		if d.BytesPerSec <= 0 {
			t.Errorf("%s: non-positive bandwidth", d.Name)
		}
		if d.MinAccessBytes <= 0 || d.MinAccessBytes > CacheLineBytes ||
			d.MinAccessBytes&(d.MinAccessBytes-1) != 0 {
			t.Errorf("%s: bad min access %d", d.Name, d.MinAccessBytes)
		}
	}
	// Relative ordering of the devices the paper uses.
	if HBM2eA100().BytesPerSec <= HBM2V100().BytesPerSec {
		t.Errorf("A100 HBM2e should outrun V100 HBM2")
	}
	if DDR4Single().BytesPerSec >= DDR4Quad().BytesPerSec {
		t.Errorf("single-channel DDR4 should be slower than quad")
	}
}

func TestErrOutOfMemoryMessage(t *testing.T) {
	err := &ErrOutOfMemory{Space: SpaceGPU, Requested: 100, Used: 50, Capacity: 120}
	msg := err.Error()
	for _, want := range []string{"gpu", "100", "50", "120"} {
		if !strings.Contains(msg, want) {
			t.Errorf("OOM message %q missing %q", msg, want)
		}
	}
}

func TestMustAllocPanicsOnOOM(t *testing.T) {
	a := NewArena(16, 0)
	defer func() {
		if recover() == nil {
			t.Errorf("MustAlloc should panic on OOM")
		}
	}()
	a.MustAlloc("big", SpaceGPU, 1024)
}

func TestGPUFreeAndBuffers(t *testing.T) {
	a := NewArena(1000, 0)
	if got := a.GPUFree(); got != 1000 {
		t.Errorf("GPUFree = %d, want 1000", got)
	}
	b := a.MustAlloc("x", SpaceGPU, 400)
	if got := a.GPUFree(); got != 600 {
		t.Errorf("GPUFree = %d, want 600", got)
	}
	bufs := a.Buffers()
	if len(bufs) != 1 || bufs[0] != b {
		t.Errorf("Buffers = %v", bufs)
	}
	// Freeing host-space buffers adjusts host accounting.
	h := a.MustAlloc("h", SpaceHostPinned, 64)
	a.Free(h)
	if a.HostUsed() != 0 {
		t.Errorf("HostUsed after free = %d", a.HostUsed())
	}
}
