package memsys

import (
	"fmt"

	"repro/internal/pcie"
)

// This file defines the pluggable memory-tier stack. The original model has
// exactly two tiers — GPU HBM and host DRAM behind one PCIe link — baked
// into separate configuration fields. A TierStack makes the hierarchy a
// first-class, extensible description: each Tier couples a capacity with the
// interconnect cost model (pcie.LinkConfig) and device-side service model
// (DRAMModel) that accesses landing on it pay. The canonical two-tier stack
// reproduces the historical configuration bit-for-bit; a third CXL-class
// tier extends the reach of the simulated system beyond host DRAM
// (microsecond-latency external memory, as in the CXL graph-processing
// literature — see PAPERS.md).

// TierKind identifies a tier's position in the memory hierarchy.
type TierKind uint8

const (
	// TierHBM is GPU-local global memory: no interconnect crossing.
	TierHBM TierKind = iota
	// TierDRAM is host DRAM behind the CPU-GPU interconnect (pinned
	// zero-copy and UVM backing live here).
	TierDRAM
	// TierCXL is external CXL-class memory: byte-addressable like host
	// DRAM, but behind a second, higher-latency link.
	TierCXL
)

// String returns the tier-kind label used in catalogs and metrics.
func (k TierKind) String() string {
	switch k {
	case TierHBM:
		return "hbm"
	case TierDRAM:
		return "dram"
	case TierCXL:
		return "cxl"
	default:
		return fmt.Sprintf("tier(%d)", uint8(k))
	}
}

// Space returns the allocation space whose buffers are homed on this tier
// kind. TierHBM maps to SpaceGPU, TierDRAM to SpaceHostPinned (UVM backing
// also lives there), TierCXL to SpaceCXL.
func (k TierKind) Space() Space {
	switch k {
	case TierHBM:
		return SpaceGPU
	case TierCXL:
		return SpaceCXL
	default:
		return SpaceHostPinned
	}
}

// Tier is one level of the memory hierarchy: a capacity plus the cost
// models a GPU access to data homed there pays.
type Tier struct {
	// Name is a human-readable label ("HBM2 V100", "CXL expander").
	Name string
	// Kind is the tier's position in the hierarchy.
	Kind TierKind
	// CapacityBytes bounds allocations homed on this tier. Zero means
	// unlimited (mirroring Arena capacity semantics).
	CapacityBytes int64
	// Link is the interconnect crossed to reach the tier from the GPU.
	// Zero-valued for TierHBM (local accesses pay only Mem).
	Link pcie.LinkConfig
	// Mem is the tier's device-side service model (burst rounding and
	// sustainable bandwidth).
	Mem DRAMModel
}

// TierStack is an ordered memory hierarchy: HBM first, then host DRAM,
// optionally followed by a CXL-class external tier.
type TierStack []Tier

// Validate checks the stack's shape: exactly one HBM tier, exactly one DRAM
// tier, at most one CXL tier, in that order.
func (ts TierStack) Validate() error {
	if len(ts) < 2 || len(ts) > 3 {
		return fmt.Errorf("memsys: tier stack needs 2 or 3 tiers, got %d", len(ts))
	}
	want := []TierKind{TierHBM, TierDRAM, TierCXL}
	for i, t := range ts {
		if t.Kind != want[i] {
			return fmt.Errorf("memsys: tier %d is %s, want %s (stack order is HBM, DRAM, CXL)",
				i, t.Kind, want[i])
		}
	}
	for _, t := range ts[1:] {
		if t.Link.RawBytesPerSec <= 0 {
			return fmt.Errorf("memsys: %s tier %q has no interconnect model", t.Kind, t.Name)
		}
	}
	return nil
}

// byKind returns the first tier of the given kind, or nil.
func (ts TierStack) byKind(k TierKind) *Tier {
	for i := range ts {
		if ts[i].Kind == k {
			return &ts[i]
		}
	}
	return nil
}

// HBM returns the stack's GPU-local tier, or nil.
func (ts TierStack) HBM() *Tier { return ts.byKind(TierHBM) }

// DRAM returns the stack's host-DRAM tier, or nil.
func (ts TierStack) DRAM() *Tier { return ts.byKind(TierDRAM) }

// CXL returns the stack's external CXL-class tier, or nil (two-tier stacks).
func (ts TierStack) CXL() *Tier { return ts.byKind(TierCXL) }

// HasCXL reports whether the stack includes an external CXL-class tier.
func (ts TierStack) HasCXL() bool { return ts.CXL() != nil }

// TwoTier returns the canonical two-tier stack — GPU HBM over host DRAM
// behind one PCIe link — equivalent to the historical (MemBytes,
// HostMemBytes, HBM, HostDRAM, Link) configuration fields. Systems built
// from it are bit-for-bit identical to pre-tier systems.
func TwoTier(gpuBytes, hostBytes int64, hbm, dram DRAMModel, link pcie.LinkConfig) TierStack {
	return TierStack{
		{Name: hbm.Name, Kind: TierHBM, CapacityBytes: gpuBytes, Mem: hbm},
		{Name: dram.Name, Kind: TierDRAM, CapacityBytes: hostBytes, Mem: dram, Link: link},
	}
}

// WithCXL returns a copy of the stack extended with an external CXL-class
// tier of the given capacity behind cxlLink, served by cxlMem.
func (ts TierStack) WithCXL(capacityBytes int64, cxlLink pcie.LinkConfig, cxlMem DRAMModel) TierStack {
	out := make(TierStack, 0, len(ts)+1)
	for _, t := range ts {
		if t.Kind == TierCXL {
			continue
		}
		out = append(out, t)
	}
	out = append(out, Tier{
		Name:          cxlMem.Name,
		Kind:          TierCXL,
		CapacityBytes: capacityBytes,
		Link:          cxlLink,
		Mem:           cxlMem,
	})
	return out
}

// ThreeTierCXL returns a three-tier stack: the given two-tier base extended
// with a CXL-class external tier using the calibrated CXLLink and CXLExpander
// models.
func ThreeTierCXL(base TierStack, cxlBytes int64) TierStack {
	return base.WithCXL(cxlBytes, pcie.CXLLink(), CXLExpander())
}

// CXLExpander returns the external-memory device model of the CXL-class
// tier: a DDR-backed memory expander. Sequential bandwidth is modest (a
// single DDR4-3200 channel, 25.6 GB/s — above the CXL link's ceiling), and
// like host DRAM it serves whole 64-byte bursts.
func CXLExpander() DRAMModel {
	return DRAMModel{Name: "CXL expander DDR4-3200", BytesPerSec: 25.6e9, MinAccessBytes: 64}
}

// NewTieredArena creates an arena whose capacities come from a tier stack:
// HBM capacity for GPU allocations, DRAM capacity for pinned/UVM backing,
// and — when the stack has one — the CXL tier attached for SpaceCXL homes.
// This is the arena's primary constructor; the deprecated NewArena shim
// delegates here through a synthesized two-tier stack.
func NewTieredArena(ts TierStack) (*Arena, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	a := &Arena{
		// Start away from address zero and keep the base 4KB-aligned,
		// like a real allocator would.
		nextVA:       1 << 20,
		GPUCapacity:  ts.HBM().CapacityBytes,
		HostCapacity: ts.DRAM().CapacityBytes,
	}
	if cxl := ts.CXL(); cxl != nil {
		a.AttachCXLTier(cxl)
	}
	return a, nil
}
