package memsys

import (
	"encoding/binary"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Atomic element accessors. Simulated kernels may execute warps on several
// host goroutines at once (see the gpu package's parallel launch engine),
// so every data word a kernel body can touch concurrently must be read and
// written with real atomics. The accessors below operate on the aligned
// machine words backing Data — alignedBytes guarantees 8-byte alignment of
// the backing store, and typed indices keep each element inside one word.
//
// Buffer data is defined to be little-endian (see U32/PutU32), while
// sync/atomic works on native words, so on a big-endian host the logical
// value is byte-swapped around each atomic operation. The swap is a pure
// value transformation: the memory image stays little-endian and remains
// interchangeable with the non-atomic accessors.

// littleEndian reports whether the host stores words little-endian.
var littleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// alignedBytes returns a size-byte slice whose backing array is 8-byte
// aligned, so 32- and 64-bit element slots can be addressed with
// sync/atomic operations.
func alignedBytes(size int64) []byte {
	if size == 0 {
		return []byte{}
	}
	words := make([]uint64, (size+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
}

func word32(v uint32) uint32 {
	if littleEndian {
		return v
	}
	return bits.ReverseBytes32(v)
}

func word64(v uint64) uint64 {
	if littleEndian {
		return v
	}
	return bits.ReverseBytes64(v)
}

func (b *Buffer) ptr32(i int64) *uint32 {
	return (*uint32)(unsafe.Pointer(&b.Data[i*4]))
}

func (b *Buffer) ptr64(i int64) *uint64 {
	return (*uint64)(unsafe.Pointer(&b.Data[i*8]))
}

// AtomicU32 atomically reads the 32-bit element at index i.
func (b *Buffer) AtomicU32(i int64) uint32 {
	return word32(atomic.LoadUint32(b.ptr32(i)))
}

// AtomicPutU32 atomically writes the 32-bit element at index i.
func (b *Buffer) AtomicPutU32(i int64, v uint32) {
	atomic.StoreUint32(b.ptr32(i), word32(v))
}

// AtomicU64 atomically reads the 64-bit element at index i.
func (b *Buffer) AtomicU64(i int64) uint64 {
	return word64(atomic.LoadUint64(b.ptr64(i)))
}

// AtomicPutU64 atomically writes the 64-bit element at index i.
func (b *Buffer) AtomicPutU64(i int64, v uint64) {
	atomic.StoreUint64(b.ptr64(i), word64(v))
}

// AtomicMinU32 atomically lowers element i to v if v is smaller, returning
// the previous value — the CUDA atomicMin contract.
func (b *Buffer) AtomicMinU32(i int64, v uint32) uint32 {
	p := b.ptr32(i)
	for {
		raw := atomic.LoadUint32(p)
		cur := word32(raw)
		if v >= cur {
			return cur
		}
		if atomic.CompareAndSwapUint32(p, raw, word32(v)) {
			return cur
		}
	}
}

// AtomicMaxU32 atomically raises element i to v if v is larger, returning
// the previous value — the CUDA atomicMax contract.
func (b *Buffer) AtomicMaxU32(i int64, v uint32) uint32 {
	p := b.ptr32(i)
	for {
		raw := atomic.LoadUint32(p)
		cur := word32(raw)
		if v <= cur {
			return cur
		}
		if atomic.CompareAndSwapUint32(p, raw, word32(v)) {
			return cur
		}
	}
}

// AtomicOrU32 atomically ORs v into element i, returning the previous
// value — the CUDA atomicOr contract.
func (b *Buffer) AtomicOrU32(i int64, v uint32) uint32 {
	p := b.ptr32(i)
	for {
		raw := atomic.LoadUint32(p)
		cur := word32(raw)
		if cur|v == cur {
			return cur
		}
		if atomic.CompareAndSwapUint32(p, raw, word32(cur|v)) {
			return cur
		}
	}
}

// AtomicOrU64 atomically ORs v into the 64-bit element at index i,
// returning the previous value — the CUDA atomicOr contract on unsigned
// long long. The batched traversal engine uses it to set per-query lane
// bits in its next-frontier bitmask words.
func (b *Buffer) AtomicOrU64(i int64, v uint64) uint64 {
	p := b.ptr64(i)
	for {
		raw := atomic.LoadUint64(p)
		cur := word64(raw)
		if cur|v == cur {
			return cur
		}
		if atomic.CompareAndSwapUint64(p, raw, word64(cur|v)) {
			return cur
		}
	}
}

// AtomicCASU32 atomically sets element i to v if it equals cmp, returning
// the previous value — the CUDA atomicCAS contract.
func (b *Buffer) AtomicCASU32(i int64, cmp, v uint32) uint32 {
	p := b.ptr32(i)
	for {
		raw := atomic.LoadUint32(p)
		cur := word32(raw)
		if cur != cmp {
			return cur
		}
		if atomic.CompareAndSwapUint32(p, raw, word32(v)) {
			return cur
		}
	}
}
