package memsys

// DRAMModel captures the service characteristics of a DRAM device: host
// DDR4 behind the PCIe root complex, or GPU HBM2. It is an analytic model —
// callers account served bytes per kernel and convert them to time with
// ServiceTime.
type DRAMModel struct {
	Name string
	// BytesPerSec is the sustainable sequential bandwidth.
	BytesPerSec float64
	// MinAccessBytes is the smallest burst the device can transfer; smaller
	// requests are rounded up (the paper's §3.3: a 32-byte PCIe read costs
	// a full 64-byte DDR4 burst, halving effective DRAM bandwidth).
	MinAccessBytes int
}

// DDR4Quad returns the paper's evaluation host memory: DDR4-2933 in quad
// channel mode (Table 1), ~85 GB/s aggregate with 64-byte bursts. Only the
// 64-byte burst size materially affects results; the channel bandwidth is
// far above the PCIe ceiling.
func DDR4Quad() DRAMModel {
	return DRAMModel{Name: "DDR4-2933 quad", BytesPerSec: 85e9, MinAccessBytes: 64}
}

// DDR4Single returns a single-channel DDR4-2400 device (19.2 GB/s), the
// configuration the paper's §3.3 bandwidth arithmetic uses to show DRAM-side
// amplification can become a real bottleneck.
func DDR4Single() DRAMModel {
	return DRAMModel{Name: "DDR4-2400 single", BytesPerSec: 19.2e9, MinAccessBytes: 64}
}

// HBM2V100 returns V100-class HBM2 (900 GB/s, 32-byte sectors).
func HBM2V100() DRAMModel {
	return DRAMModel{Name: "HBM2 V100", BytesPerSec: 900e9, MinAccessBytes: 32}
}

// HBM2eA100 returns A100-class HBM2e (1555 GB/s).
func HBM2eA100() DRAMModel {
	return DRAMModel{Name: "HBM2e A100", BytesPerSec: 1555e9, MinAccessBytes: 32}
}

// GDDR5XTitanXp returns Titan Xp GDDR5X (547 GB/s), used for the HALO
// comparison platform (Table 3).
func GDDR5XTitanXp() DRAMModel {
	return DRAMModel{Name: "GDDR5X Titan Xp", BytesPerSec: 547e9, MinAccessBytes: 32}
}

// ServedBytes returns the bytes the device actually transfers to satisfy a
// request of the given size: the size rounded up to whole minimum bursts.
func (d DRAMModel) ServedBytes(requestBytes int) int64 {
	if requestBytes <= 0 {
		return 0
	}
	m := d.MinAccessBytes
	if m <= 0 {
		return int64(requestBytes)
	}
	bursts := (requestBytes + m - 1) / m
	return int64(bursts * m)
}

// ServiceSeconds converts a served-byte total into seconds of device time.
func (d DRAMModel) ServiceSeconds(servedBytes int64) float64 {
	if d.BytesPerSec <= 0 || servedBytes <= 0 {
		return 0
	}
	return float64(servedBytes) / d.BytesPerSec
}
