package bench

import "testing"

// TestTransportComparison pins the headline BENCH_8 claim at the probe
// scale: on the skewed GAP-kron analog the adaptive policy beats BOTH
// static transports cold, and on the uniform-random analog it never loses
// to zero-copy (the paper's preferred transport there).
func TestTransportComparison(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(Config{Scale: 0.05, Seed: 42, Sources: 1})
	cells, err := RunTransportComparison(ds, []string{"GK", "GU"}, []string{"bfs", "sssp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for i := range cells {
		c := &cells[i]
		zc, uvm, ad := c.Elapsed["static-zc"], c.Elapsed["static-uvm"], c.Elapsed["adaptive"]
		if zc <= 0 || uvm <= 0 || ad <= 0 {
			t.Fatalf("%s/%s: non-positive elapsed (zc=%v uvm=%v adaptive=%v)", c.Graph, c.Algo, zc, uvm, ad)
		}
		t.Logf("%s %-5s zc=%v uvm=%v adaptive=%v", c.Graph, c.Algo, zc, uvm, ad)
		switch c.Graph {
		case "GK": // skewed: adaptive must beat both statics outright
			if ad >= zc || ad >= uvm {
				t.Errorf("GK/%s: adaptive %v does not beat both statics (zc=%v uvm=%v)", c.Algo, ad, zc, uvm)
			}
		case "GU": // uniform: adaptive must stay within noise of zero-copy
			if float64(ad) > float64(zc)*1.02 {
				t.Errorf("GU/%s: adaptive %v slower than zero-copy %v beyond 2%% noise", c.Algo, ad, zc)
			}
		}
	}
}
