package bench

import (
	"fmt"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// newToyDevice builds the V100 device used by the §3.3 toy experiments.
// GPU memory is uncapped: the toy's output array lives in GPU memory and
// capacity is not what the experiment characterizes.
func newToyDevice(cfg Config) *gpu.Device {
	gc := emogi.V100PCIe3(cfg.Scale).GPU
	gc.MemBytes = 0
	return cfg.Device(gc)
}

// toyElems sizes the §3.3 1D array: 16MB of 4-byte elements at full scale.
func toyElems(cfg Config) int {
	e := int(4 << 20 * cfg.Scale)
	if e < 1<<16 {
		e = 1 << 16
	}
	return e
}

// Figure3 characterizes the toy example's PCIe request patterns: the
// request-size mix of the strided, merged+aligned, and merged-misaligned
// kernels (paper Figure 3, observed via the FPGA monitor).
func Figure3(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: GPU PCIe request patterns (toy 1D traversal)",
		Header: []string{"pattern", "requests", "32B", "64B", "96B", "128B"},
	}
	for _, p := range []core.ToyPattern{core.ToyStrided, core.ToyMergedAligned, core.ToyMergedMisaligned} {
		dev := newToyDevice(cfg)
		r, err := core.ToyTraverse(dev, toyElems(cfg), p, core.ZeroCopy)
		if err != nil {
			return nil, err
		}
		total := float64(r.Snapshot.Requests)
		row := []string{p.String(), fmt.Sprintf("%d", r.Snapshot.Requests)}
		for _, size := range []int64{32, 64, 96, 128} {
			row = append(row, pct(float64(r.Snapshot.BySize[size])/total))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure4 measures the toy example's average PCIe and DRAM bandwidths for
// the three zero-copy patterns plus the UVM reference line (paper Figure 4).
func Figure4(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 4: toy traversal bandwidth (GB/s)",
		Header: []string{"configuration", "PCIe", "DRAM"},
	}
	type variant struct {
		name      string
		pattern   core.ToyPattern
		transport core.Transport
	}
	for _, v := range []variant{
		{"(a) Strided", core.ToyStrided, core.ZeroCopy},
		{"(b) Merged and Aligned", core.ToyMergedAligned, core.ZeroCopy},
		{"(c) Merged but Misaligned", core.ToyMergedMisaligned, core.ZeroCopy},
		{"UVM reference", core.ToyMergedAligned, core.UVM},
	} {
		dev := newToyDevice(cfg)
		r, err := core.ToyTraverse(dev, toyElems(cfg), v.pattern, v.transport)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, gb(r.PCIeBandwidth), gb(r.DRAMBandwidth))
	}
	peak := emogi.V100PCIe3(cfg.Scale).TierStack().DRAM().Link.MemcpyPeak()
	t.Notes = append(t.Notes, "cudaMemcpy peak: "+gb(peak)+" GB/s")
	return t, nil
}

// Table1 prints the simulated evaluation platform configuration.
func Table1(cfg Config) *Table {
	sys := emogi.V100PCIe3(cfg.Scale)
	t := &Table{
		Title:  "Table 1: evaluation system configuration (simulated)",
		Header: []string{"category", "specification"},
	}
	ts := sys.TierStack()
	hbm, dram := ts.HBM(), ts.DRAM()
	t.AddRow("GPU", sys.GPU.Name)
	t.AddRow("GPU memory", fmt.Sprintf("%d bytes (1:1000 of 16GB at scale %.2g)", hbm.CapacityBytes, cfg.Scale))
	t.AddRow("Host memory", fmt.Sprintf("%d bytes, %s", dram.CapacityBytes, dram.Mem.Name))
	t.AddRow("Interconnect", dram.Link.Name)
	t.AddRow("Memcpy peak", gb(dram.Link.MemcpyPeak())+" GB/s")
	t.AddRow("PCIe RTT", dram.Link.RTT.String())
	t.AddRow("Effective tags", fmt.Sprintf("%d", dram.Link.MaxTags))
	return t
}

// Table2 inventories the datasets (paper Table 2).
func Table2(ds *Datasets) *Table {
	t := &Table{
		Title:  "Table 2: graph datasets (scaled analogs)",
		Header: []string{"sym", "|V|", "|E|", "|E| MB (8B)", "|w| MB", "avg deg", "directed"},
	}
	for _, sym := range AllSyms() {
		g := ds.Get(sym)
		row := graph.Table2Row(g)
		t.AddRow(sym,
			fmt.Sprintf("%d", row.Vertices),
			fmt.Sprintf("%d", row.Edges),
			fnum(float64(row.EdgeBytes)/1e6),
			fnum(float64(row.WeightBytes)/1e6),
			fnum(row.AvgDegree),
			fmt.Sprintf("%v", row.Directed))
	}
	return t
}

// Figure5 reports the PCIe read request size distribution during BFS for
// the Naive, Merged, and Merged+Aligned implementations (paper Figure 5).
func Figure5(sweep *BFSSweep) *Table {
	t := &Table{
		Title:  "Figure 5: PCIe read request size distribution in BFS",
		Header: []string{"graph", "system", "32B", "64B", "96B", "128B"},
	}
	for _, sym := range AllSyms() {
		for _, system := range []string{"Naive", "Merged", "Merged+Aligned"} {
			c := sweep.Cell(sym, system)
			mon := c.Summary.Monitor
			total := float64(mon.Requests)
			row := []string{sym, system}
			for _, size := range []int64{32, 64, 96, 128} {
				row = append(row, pct(float64(mon.BySize[size])/total))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Figure6 samples each graph's edge-count CDF over vertex degree (paper
// Figure 6), on the paper's 0..96 axis.
func Figure6(ds *Datasets) *Table {
	points := []int64{0, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96}
	header := []string{"graph"}
	for _, p := range points {
		header = append(header, fmt.Sprintf("d<=%d", p))
	}
	t := &Table{Title: "Figure 6: number-of-edges CDF vs vertex degree", Header: header}
	for _, sym := range AllSyms() {
		cdf := graph.DegreeCDF(ds.Get(sym))
		row := []string{sym}
		for _, v := range cdf.Sample(points) {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure7 reports total PCIe request counts during BFS per implementation
// (paper Figure 7).
func Figure7(sweep *BFSSweep) *Table {
	t := &Table{
		Title:  "Figure 7: total PCIe requests in BFS",
		Header: []string{"graph", "Naive", "Merged", "Merged+Aligned", "merge cut", "align cut"},
	}
	for _, sym := range AllSyms() {
		n := sweep.Cell(sym, "Naive").Summary.Monitor.Requests
		m := sweep.Cell(sym, "Merged").Summary.Monitor.Requests
		a := sweep.Cell(sym, "Merged+Aligned").Summary.Monitor.Requests
		t.AddRow(sym,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", a),
			pct(1-float64(m)/float64(n)),
			pct(1-float64(a)/float64(m)))
	}
	t.Notes = append(t.Notes,
		"paper: merge cuts requests by up to 83.3%, alignment by up to a further 28.8%")
	return t
}

// Figure8 reports the average PCIe bandwidth achieved during BFS (paper
// Figure 8).
func Figure8(sweep *BFSSweep) *Table {
	t := &Table{
		Title:  "Figure 8: average PCIe bandwidth in BFS (GB/s)",
		Header: []string{"graph", "UVM", "Naive", "Merged", "Merged+Aligned"},
	}
	for _, sym := range AllSyms() {
		row := []string{sym}
		for _, system := range SystemNames {
			row = append(row, gb(sweep.Cell(sym, system).Bandwidth()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "cudaMemcpy peak: "+gb(sweep.MemcpyPeak)+" GB/s")
	return t
}

// Figure9 reports BFS performance normalized to the UVM baseline (paper
// Figure 9).
func Figure9(sweep *BFSSweep) *Table {
	t := &Table{
		Title:  "Figure 9: BFS performance normalized to UVM",
		Header: []string{"graph", "UVM", "Naive", "Merged", "Merged+Aligned"},
	}
	var avg = map[string]float64{}
	for _, sym := range AllSyms() {
		uvm := sweep.Cell(sym, "UVM").Summary
		row := []string{sym}
		for _, system := range SystemNames {
			sp := emogi.Speedup(uvm, sweep.Cell(sym, system).Summary)
			avg[system] += sp
			row = append(row, fnum(sp))
		}
		t.AddRow(row...)
	}
	n := float64(len(AllSyms()))
	t.AddRow("Avg", fnum(avg["UVM"]/n), fnum(avg["Naive"]/n),
		fnum(avg["Merged"]/n), fnum(avg["Merged+Aligned"]/n))
	t.Notes = append(t.Notes, "paper averages: Naive 0.73x, Merged 3.24x, Merged+Aligned 3.56x")
	return t
}

// Figure10 reports I/O read amplification in BFS: bytes moved over the
// interconnect divided by the BFS dataset size (paper Figure 10).
func Figure10(sweep *BFSSweep, ds *Datasets) *Table {
	t := &Table{
		Title:  "Figure 10: I/O read amplification in BFS (data moved / dataset size)",
		Header: []string{"graph", "UVM", "EMOGI"},
	}
	for _, sym := range AllSyms() {
		dataset := ds.Get(sym).EdgeListBytes(8)
		uvm := sweep.Cell(sym, "UVM").Summary.IOAmplification(dataset)
		em := sweep.Cell(sym, "Merged+Aligned").Summary.IOAmplification(dataset)
		t.AddRow(sym, fnum(uvm), fnum(em))
	}
	t.Notes = append(t.Notes,
		"paper: UVM up to 5.16x (FS), ML 2.28x, SK 1.14x; EMOGI never above 1.31x")
	return t
}

// Figure11 reports UVM vs EMOGI across all three applications (paper
// Figure 11).
func Figure11(sweep *AppSweep) *Table {
	t := &Table{
		Title:  "Figure 11: EMOGI speedup over UVM by application",
		Header: []string{"app", "graph", "UVM ms", "EMOGI ms", "speedup"},
	}
	var total float64
	var count int
	for _, app := range []emogi.App{emogi.SSSP, emogi.BFS, emogi.CC} {
		for _, sym := range AppGraphs(app) {
			uvm := sweep.Cell(app, sym, "UVM").Summary
			em := sweep.Cell(app, sym, "EMOGI").Summary
			sp := emogi.Speedup(uvm, em)
			total += sp
			count++
			t.AddRow(app.String(), sym,
				fnum(uvm.MeanElapsed.Seconds()*1e3),
				fnum(em.MeanElapsed.Seconds()*1e3),
				fnum(sp))
		}
	}
	t.AddRow("Avg", "", "", "", fnum(total/float64(count)))
	t.Notes = append(t.Notes, "paper average: 2.92x; CC shows the lowest speedups")
	return t
}

// Figure12 reports PCIe 3.0 vs 4.0 scaling on the A100 platform (paper
// Figure 12): every cell normalized to UVM + PCIe 3.0 for that app/graph.
func Figure12(ds *Datasets) (*Table, error) {
	gen3, err := RunAppSweep(ds, emogi.A100PCIe3)
	if err != nil {
		return nil, err
	}
	gen4, err := RunAppSweep(ds, emogi.A100PCIe4)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12: PCIe 3.0 vs 4.0 on A100 (normalized to UVM+PCIe3.0)",
		Header: []string{"app", "graph", "UVM+3.0", "EMOGI+3.0", "UVM+4.0", "EMOGI+4.0"},
	}
	var uvmScale, emScale float64
	var count int
	for _, app := range []emogi.App{emogi.SSSP, emogi.BFS, emogi.CC} {
		for _, sym := range AppGraphs(app) {
			base := gen3.Cell(app, sym, "UVM").Summary
			norm := func(s *emogi.RunSummary) float64 { return emogi.Speedup(base, s) }
			u3 := norm(gen3.Cell(app, sym, "UVM").Summary)
			e3 := norm(gen3.Cell(app, sym, "EMOGI").Summary)
			u4 := norm(gen4.Cell(app, sym, "UVM").Summary)
			e4 := norm(gen4.Cell(app, sym, "EMOGI").Summary)
			uvmScale += u4 / u3
			emScale += e4 / e3
			count++
			t.AddRow(app.String(), sym, fnum(u3), fnum(e3), fnum(u4), fnum(e4))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"link scaling Gen3->Gen4: UVM %.2fx, EMOGI %.2fx (paper: 1.53x and 1.9x)",
		uvmScale/float64(count), emScale/float64(count)))
	return t, nil
}
