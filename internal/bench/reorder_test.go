package bench

import "testing"

// TestReorderComparison pins the tentpole claim at the probe scale: with
// the reorder window on, every Table-2 cell's mean zero-copy request size
// goes UP and no cell's simulated runtime regresses beyond 2% noise; the
// eliminated requests are fully attributed to the merge counter.
func TestReorderComparison(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(Config{Scale: 0.05, Seed: 42, Sources: 1})
	cells, err := RunReorderComparison(ds, []string{"GK", "GU"}, []string{"bfs", "sssp"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for i := range cells {
		c := &cells[i]
		t.Logf("%s %-5s reqs %d->%d merged %d mean %.1f->%.1fB time %v->%v",
			c.Graph, c.Algo, c.OffRequests, c.OnRequests, c.Merged,
			c.MeanOff(), c.MeanOn(), c.OffElapsed, c.OnElapsed)
		if c.OffRequests == 0 || c.OnRequests == 0 {
			t.Fatalf("%s/%s: no zero-copy requests measured", c.Graph, c.Algo)
		}
		if c.OffRequests-c.OnRequests != c.Merged {
			t.Errorf("%s/%s: request delta %d not attributed to merges %d",
				c.Graph, c.Algo, c.OffRequests-c.OnRequests, c.Merged)
		}
		if c.MeanOn() <= c.MeanOff() {
			t.Errorf("%s/%s: mean request size did not grow: %.2f -> %.2f",
				c.Graph, c.Algo, c.MeanOff(), c.MeanOn())
		}
		if float64(c.OnElapsed) > float64(c.OffElapsed)*1.02 {
			t.Errorf("%s/%s: reorder window regressed runtime beyond 2%%: %v -> %v",
				c.Graph, c.Algo, c.OffElapsed, c.OnElapsed)
		}
	}
}
