package bench

import (
	"fmt"

	emogi "repro"
)

// SystemNames are the four compared implementations of §5.1.2, in figure
// order.
var SystemNames = []string{"UVM", "Naive", "Merged", "Merged+Aligned"}

// systemConfig maps a compared implementation name to its transport and
// kernel variant.
func systemConfig(name string) (emogi.Transport, emogi.Variant, error) {
	switch name {
	case "UVM":
		// The optimized UVM baseline uses the same warp-per-vertex kernel;
		// its performance is dominated by page migration, not coalescing.
		return emogi.UVM, emogi.Merged, nil
	case "Naive":
		return emogi.ZeroCopy, emogi.Naive, nil
	case "Merged":
		return emogi.ZeroCopy, emogi.Merged, nil
	case "Merged+Aligned":
		return emogi.ZeroCopy, emogi.MergedAligned, nil
	default:
		return 0, 0, fmt.Errorf("bench: unknown system %q", name)
	}
}

// Cell is one (graph, system) measurement of the BFS case study (§5.3).
type Cell struct {
	Graph   string
	System  string
	Summary *emogi.RunSummary
}

// Bandwidth returns the run's average PCIe payload bandwidth.
func (c *Cell) Bandwidth() float64 { return c.Summary.MeanBandwidth() }

// BFSSweep holds the full §5.3 case study: BFS on every graph under every
// compared system, sharing one set of sources per graph. Figures 5, 7, 8,
// 9, and 10 are all views of this sweep.
type BFSSweep struct {
	Config     Config
	MemcpyPeak float64
	cells      map[string]map[string]*Cell
}

// Cell returns the (graph, system) measurement.
func (s *BFSSweep) Cell(graphSym, system string) *Cell {
	return s.cells[graphSym][system]
}

// RunBFSSweep executes the case study. Each cell runs on a fresh simulated
// V100 so its traffic monitor is isolated.
func RunBFSSweep(ds *Datasets) (*BFSSweep, error) {
	cfg := ds.Config()
	sweep := &BFSSweep{
		Config:     cfg,
		MemcpyPeak: emogi.V100PCIe3(cfg.Scale).TierStack().DRAM().Link.MemcpyPeak(),
		cells:      make(map[string]map[string]*Cell),
	}
	for _, sym := range AllSyms() {
		g := ds.Get(sym)
		sources := ds.Sources(sym)
		sweep.cells[sym] = make(map[string]*Cell)
		for _, name := range SystemNames {
			transport, variant, err := systemConfig(name)
			if err != nil {
				return nil, err
			}
			sys := cfg.System(emogi.V100PCIe3(cfg.Scale))
			dg, err := sys.Load(g, emogi.WithTransport(transport))
			if err != nil {
				return nil, fmt.Errorf("bench: loading %s for %s: %w", sym, name, err)
			}
			sum, err := sys.RunMany(dg, emogi.BFS, sources, variant)
			if err != nil {
				return nil, fmt.Errorf("bench: BFS %s/%s: %w", sym, name, err)
			}
			sweep.cells[sym][name] = &Cell{Graph: sym, System: name, Summary: sum}
		}
	}
	return sweep, nil
}

// AppCell is one (app, graph, system) measurement for Figures 11 and 12.
type AppCell struct {
	App     emogi.App
	Graph   string
	System  string // "UVM" or "EMOGI"
	Summary *emogi.RunSummary
}

// AppSweep holds the all-applications comparison of §5.4 (and §5.5 when
// run on A100 configs): UVM vs fully-optimized EMOGI for SSSP, BFS, CC.
type AppSweep struct {
	Config Config
	cells  map[string]*AppCell
}

func appKey(app emogi.App, graphSym, system string) string {
	return app.String() + "/" + graphSym + "/" + system
}

// Cell returns the (app, graph, system) measurement, or nil if that
// combination was excluded (directed graphs for CC).
func (s *AppSweep) Cell(app emogi.App, graphSym, system string) *AppCell {
	return s.cells[appKey(app, graphSym, system)]
}

// AppGraphs returns the datasets an application runs on: CC excludes the
// directed SK and UK5 (§5.4).
func AppGraphs(app emogi.App) []string {
	if app == emogi.CC {
		return UndirectedSyms()
	}
	return AllSyms()
}

// RunAppSweep executes the §5.4 comparison on the given platform
// configuration builder (e.g. emogi.V100PCIe3 or emogi.A100PCIe4).
func RunAppSweep(ds *Datasets, platform func(float64) emogi.SystemConfig) (*AppSweep, error) {
	cfg := ds.Config()
	sweep := &AppSweep{Config: cfg, cells: make(map[string]*AppCell)}
	systems := []struct {
		name      string
		transport emogi.Transport
		variant   emogi.Variant
	}{
		{"UVM", emogi.UVM, emogi.Merged},
		{"EMOGI", emogi.ZeroCopy, emogi.MergedAligned},
	}
	for _, app := range []emogi.App{emogi.SSSP, emogi.BFS, emogi.CC} {
		for _, sym := range AppGraphs(app) {
			g := ds.Get(sym)
			sources := ds.Sources(sym)
			for _, sc := range systems {
				sys := cfg.System(platform(cfg.Scale))
				dg, err := sys.Load(g, emogi.WithTransport(sc.transport))
				if err != nil {
					return nil, fmt.Errorf("bench: loading %s: %w", sym, err)
				}
				sum, err := sys.RunMany(dg, app, sources, sc.variant)
				if err != nil {
					return nil, fmt.Errorf("bench: %s %s/%s: %w", app, sym, sc.name, err)
				}
				sweep.cells[appKey(app, sym, sc.name)] = &AppCell{
					App: app, Graph: sym, System: sc.name, Summary: sum,
				}
			}
		}
	}
	return sweep, nil
}
