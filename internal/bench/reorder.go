package bench

import (
	"context"
	"fmt"
	"time"

	emogi "repro"
)

// The reorder comparison measures what the coalescer's IARU-style reorder
// window (internal/gpu/reorder.go, DESIGN.md §17) buys on the Table 2
// cells: off-device request count and mean request size with the stage off
// versus on, the merged-request attribution, and the simulated runtime
// delta. Traversal output is bit-identical in every cell — the equivalence
// suite pins that — so the comparison is purely about request shape and
// time.

// ReorderCell is one (graph, algo) measurement: request shape and runtime
// with the reorder window off and on, summed over the harness sources.
type ReorderCell struct {
	Graph  string
	Algo   string
	Window int

	OffElapsed, OnElapsed   time.Duration
	OffRequests, OnRequests uint64
	OffPayload, OnPayload   uint64
	Merged                  uint64
}

// MeanOff returns the mean off-device request size in bytes with the
// stage off (0 when the cell issued no requests).
func (c *ReorderCell) MeanOff() float64 { return meanSize(c.OffPayload, c.OffRequests) }

// MeanOn is MeanOff with the stage on.
func (c *ReorderCell) MeanOn() float64 { return meanSize(c.OnPayload, c.OnRequests) }

func meanSize(payload, requests uint64) float64 {
	if requests == 0 {
		return 0
	}
	return float64(payload) / float64(requests)
}

// RunReorderComparison measures every (graph, algo) cell with the reorder
// window off and at the given size. Each leg gets a fresh system so device
// state never leaks between configurations.
func RunReorderComparison(ds *Datasets, syms, algos []string, window int) ([]ReorderCell, error) {
	cfg := ds.Config()
	var cells []ReorderCell
	for _, sym := range syms {
		g := ds.Get(sym)
		sources := ds.Sources(sym)
		for _, algo := range algos {
			cell := ReorderCell{Graph: sym, Algo: algo, Window: window}
			for _, w := range []int{0, window} {
				sc := emogi.V100PCIe3(cfg.Scale)
				sc.ReorderWindow = w
				sys := cfg.System(sc)
				dg, err := sys.Load(g)
				if err != nil {
					return nil, fmt.Errorf("bench: loading %s: %w", sym, err)
				}
				var elapsed time.Duration
				var requests, payload, merged uint64
				for _, src := range sources {
					res, err := sys.Do(context.Background(),
						emogi.Request{Graph: dg, Algo: algo, Src: src})
					if err != nil {
						return nil, fmt.Errorf("bench: %s %s/w%d: %w", algo, sym, w, err)
					}
					elapsed += res.Elapsed
					requests += res.Stats.PCIeRequests
					payload += res.Stats.PCIePayloadBytes
					merged += res.Stats.ReorderMerged
				}
				if w == 0 {
					cell.OffElapsed, cell.OffRequests, cell.OffPayload = elapsed, requests, payload
				} else {
					cell.OnElapsed, cell.OnRequests, cell.OnPayload = elapsed, requests, payload
					cell.Merged = merged
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ReorderComparison renders the off-vs-on comparison as a table: per-cell
// request counts, mean request sizes, merged-request attribution, and the
// simulated runtime delta (negative = the reorder window made the run
// faster).
func ReorderComparison(ds *Datasets, syms, algos []string, window int) (*Table, error) {
	cells, err := RunReorderComparison(ds, syms, algos, window)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Reorder window (IARU-style, %d sectors) vs. off — zero-copy request shape and runtime", window),
		Header: []string{"graph", "algo", "reqs off", "reqs on", "merged",
			"mean B off", "mean B on", "time off", "time on", "delta"},
		Notes: []string{
			"Mean request size is PCIe payload bytes over zero-copy requests; traversal",
			"output is bit-identical in every cell (equivalence suite, DESIGN.md §17).",
		},
	}
	for i := range cells {
		c := &cells[i]
		delta := 0.0
		if c.OffElapsed > 0 {
			delta = 100 * (float64(c.OnElapsed) - float64(c.OffElapsed)) / float64(c.OffElapsed)
		}
		t.AddRow(c.Graph, c.Algo,
			fmt.Sprintf("%d", c.OffRequests),
			fmt.Sprintf("%d", c.OnRequests),
			fmt.Sprintf("%d", c.Merged),
			fmt.Sprintf("%.1f", c.MeanOff()),
			fmt.Sprintf("%.1f", c.MeanOn()),
			c.OffElapsed.String(), c.OnElapsed.String(),
			fmt.Sprintf("%+.2f%%", delta))
	}
	return t, nil
}
