package bench

import (
	"fmt"
	"strings"
	"testing"

	emogi "repro"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.02, Seed: 42, Sources: 1}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "test",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("x", "y")
	tb.AddRow("long", "z")
	tb.Notes = append(tb.Notes, "a note")
	out := tb.Render()
	for _, want := range []string{"== test ==", "a     bb", "long  z", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if fnum(0) != "0" || fnum(123.4) != "123" || fnum(12.34) != "12.3" || fnum(1.234) != "1.23" {
		t.Errorf("fnum formats wrong: %s %s %s %s", fnum(0), fnum(123.4), fnum(12.34), fnum(1.234))
	}
	if gb(12.3e9) != "12.30" {
		t.Errorf("gb = %s", gb(12.3e9))
	}
	if pct(0.5) != "50.0%" {
		t.Errorf("pct = %s", pct(0.5))
	}
}

func TestDatasetsCache(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	a := ds.Get("GK")
	b := ds.Get("GK")
	if a != b {
		t.Errorf("dataset not cached")
	}
	if len(ds.Sources("GK")) != 1 {
		t.Errorf("sources count wrong")
	}
}

func TestTable1And2(t *testing.T) {
	t.Parallel()
	cfg := tinyConfig()
	ds := NewDatasets(cfg)
	t1 := Table1(cfg)
	if len(t1.Rows) < 5 {
		t.Errorf("Table1 too short")
	}
	t2 := Table2(ds)
	if len(t2.Rows) != 6 {
		t.Errorf("Table2 rows = %d, want 6", len(t2.Rows))
	}
	out := t2.Render()
	for _, sym := range AllSyms() {
		if !strings.Contains(out, sym) {
			t.Errorf("Table2 missing %s", sym)
		}
	}
}

func TestFigure3And4(t *testing.T) {
	t.Parallel()
	cfg := tinyConfig()
	f3, err := Figure3(cfg)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(f3.Rows) != 3 {
		t.Errorf("Figure3 rows = %d, want 3", len(f3.Rows))
	}
	f4, err := Figure4(cfg)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(f4.Rows) != 4 {
		t.Errorf("Figure4 rows = %d, want 4", len(f4.Rows))
	}
	// Strided must be mostly 32B; merged+aligned mostly 128B.
	if !strings.Contains(f3.Rows[0][2], "100") {
		t.Errorf("strided 32B share should be ~100%%, row: %v", f3.Rows[0])
	}
}

func TestFigure6(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	f6 := Figure6(ds)
	if len(f6.Rows) != 6 {
		t.Fatalf("Figure6 rows = %d", len(f6.Rows))
	}
	// Each row's CDF samples must be non-decreasing.
	for _, row := range f6.Rows {
		prev := -1.0
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < prev {
				t.Errorf("%s: CDF not monotone", row[0])
			}
			prev = v
		}
	}
}

func TestBFSSweepAndFigures(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	sweep, err := RunBFSSweep(ds)
	if err != nil {
		t.Fatalf("RunBFSSweep: %v", err)
	}
	for _, sym := range AllSyms() {
		for _, system := range SystemNames {
			if sweep.Cell(sym, system) == nil {
				t.Fatalf("missing cell %s/%s", sym, system)
			}
		}
	}
	for name, tb := range map[string]*Table{
		"Figure5":  Figure5(sweep),
		"Figure7":  Figure7(sweep),
		"Figure8":  Figure8(sweep),
		"Figure9":  Figure9(sweep),
		"Figure10": Figure10(sweep, ds),
	} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if tb.Render() == "" {
			t.Errorf("%s renders empty", name)
		}
	}
}

func TestAppSweepAndFigure11(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	sweep, err := RunAppSweep(ds, emogi.V100PCIe3)
	if err != nil {
		t.Fatalf("RunAppSweep: %v", err)
	}
	f11 := Figure11(sweep)
	// SSSP 6 + BFS 6 + CC 4 + average row = 17.
	if len(f11.Rows) != 17 {
		t.Errorf("Figure11 rows = %d, want 17", len(f11.Rows))
	}
}

func TestSystemConfigUnknown(t *testing.T) {
	if _, _, err := systemConfig("nope"); err == nil {
		t.Errorf("unknown system accepted")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow(`has"quote`, "plain")
	got := tb.RenderCSV()
	want := "a,b\n1,\"x,y\"\n\"has\"\"quote\",plain\n"
	if got != want {
		t.Errorf("RenderCSV = %q, want %q", got, want)
	}
}

func TestConfigPresets(t *testing.T) {
	d := DefaultConfig()
	if d.Scale != 1.0 || d.Sources < 1 || d.Seed == 0 {
		t.Errorf("DefaultConfig = %+v", d)
	}
	q := QuickConfig()
	if q.Scale >= d.Scale {
		t.Errorf("QuickConfig should be smaller than default")
	}
	if q.Sources < 1 {
		t.Errorf("QuickConfig needs at least one source")
	}
}
