package bench

import (
	"context"
	"fmt"
	"time"

	emogi "repro"
)

// The paging comparison isolates the UVM fault path: the same static-UVM
// traversal once under the classic serialized CPU fault handler and once
// under GPU-driven paging (GPUVM-style page fetch issued from the SM, paced
// by link tag occupancy instead of the host round trip). Migration counts
// are identical by construction; only the time model changes, so the ratio
// is exactly the fault-handling overhead the GPU-driven path removes.

// PagingCell is one (graph, algo) measurement under both paging models.
type PagingCell struct {
	Graph string
	Algo  string
	// CPU and GPU are mean cold simulated times under the CPU fault
	// handler and GPU-driven paging respectively.
	CPU time.Duration
	GPU time.Duration
	// Migrations is the page-migration count (identical for both models).
	Migrations uint64
}

// Speedup returns CPU/GPU — >1.0 means GPU-driven paging wins.
func (c *PagingCell) Speedup() float64 {
	if c.GPU <= 0 {
		return 0
	}
	return c.CPU.Seconds() / c.GPU.Seconds()
}

// RunPagingComparison measures every (graph, algo) cell under the static
// UVM policy with both paging models. Each model gets a fresh system so
// page residency never leaks between measurements.
func RunPagingComparison(ds *Datasets, syms, algos []string) ([]PagingCell, error) {
	cfg := ds.Config()
	var cells []PagingCell
	for _, sym := range syms {
		g := ds.Get(sym)
		sources := ds.Sources(sym)
		for _, algo := range algos {
			cell := PagingCell{Graph: sym, Algo: algo}
			for _, gpuDriven := range []bool{false, true} {
				mcfg := cfg
				mcfg.GPUDrivenPaging = gpuDriven
				sys := mcfg.System(emogi.V100PCIe3(cfg.Scale))
				dg, err := sys.Load(g, emogi.WithTransportPolicy(emogi.StaticPolicy(emogi.UVM)))
				if err != nil {
					return nil, fmt.Errorf("bench: loading %s for paging: %w", sym, err)
				}
				var total time.Duration
				var migrations uint64
				for _, src := range sources {
					res, err := sys.Do(context.Background(),
						emogi.Request{Graph: dg, Algo: algo, Src: src, Cold: true})
					if err != nil {
						return nil, fmt.Errorf("bench: %s %s paging: %w", algo, sym, err)
					}
					total += res.Elapsed
					migrations += res.Stats.UVMMigrations
				}
				mean := total / time.Duration(len(sources))
				if gpuDriven {
					cell.GPU = mean
					if migrations != cell.Migrations {
						return nil, fmt.Errorf("bench: paging models disagree on %s/%s migrations: %d vs %d",
							sym, algo, cell.Migrations, migrations)
					}
				} else {
					cell.CPU = mean
					cell.Migrations = migrations
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// PagingComparison renders the CPU-fault-handler vs GPU-driven-paging
// comparison: one row per (graph, algo) under static UVM.
func PagingComparison(ds *Datasets, syms, algos []string) (*Table, error) {
	cells, err := RunPagingComparison(ds, syms, algos)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "UVM paging models: CPU fault handler vs GPU-driven paging (static UVM, cold, V100)",
		Header: []string{"graph", "algo", "cpu-paging ms", "gpu-paging ms", "speedup", "migrations"},
	}
	for i := range cells {
		c := &cells[i]
		t.AddRow(c.Graph, c.Algo,
			fnum(c.CPU.Seconds()*1e3),
			fnum(c.GPU.Seconds()*1e3),
			fnum(c.Speedup()),
			fmt.Sprintf("%d", c.Migrations))
	}
	t.Notes = append(t.Notes,
		"both models migrate exactly the same pages; only fault handling differs",
		"speedup > 1.0 means GPU-driven paging beats the serialized CPU fault handler")
	return t, nil
}
