package bench

import (
	"fmt"
	"time"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/memsys"
	"repro/internal/pcie"
	"repro/internal/uvm"
)

// Ablations isolate the simulator's and EMOGI's design choices: each table
// varies exactly one knob and reports how the headline behaviour moves.
// They back the DESIGN.md claims that the reproduced shapes come from the
// modeled mechanisms rather than tuning.

// newV100 builds a fresh scaled V100 device.
func newV100(cfg Config) *gpu.Device {
	return cfg.Device(emogi.V100PCIe3(cfg.Scale).GPU)
}

// AblationUVMBlock sweeps the UVM driver's prefetch block size and reports
// BFS I/O amplification and time on GK — the knob behind Figure 10's UVM
// bars.
func AblationUVMBlock(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GK")
	src := ds.Sources("GK")[0]
	t := &Table{
		Title:  "Ablation: UVM prefetch block size (BFS on GK)",
		Header: []string{"block pages", "migrations", "amplification", "time ms"},
	}
	for _, block := range []int{1, 8, 16, 32, 64} {
		dev := newV100(cfg)
		dg, err := core.Upload(dev, g, core.UVM, 8)
		if err != nil {
			return nil, err
		}
		// Rebuild the UVM manager with the ablated block size, keeping the
		// device's capacity and paging mode.
		ucfg := dev.UVM().Config()
		ucfg.BlockPages = block
		*dev.UVM() = *uvm.NewManager(ucfg)
		res, err := core.BFS(dev, dg, src, core.Merged)
		if err != nil {
			return nil, err
		}
		amp := float64(res.Stats.PCIePayloadBytes) / float64(g.EdgeListBytes(8))
		t.AddRow(fmt.Sprintf("%d", block),
			fmt.Sprintf("%d", res.Stats.UVMMigrations),
			fnum(amp),
			fnum(res.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"larger blocks amplify scattered frontiers; the calibrated default is 32")
	return t, nil
}

// AblationWorkerSize sweeps the worker lanes per vertex (§4.3.1's design
// argument: 32 is right for out-of-memory traversal).
func AblationWorkerSize(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("ML") // long lists make worker granularity visible
	src := ds.Sources("ML")[0]
	t := &Table{
		Title:  "Ablation: worker size (aligned BFS on ML)",
		Header: []string{"worker lanes", "PCIe requests", "128B share", "time ms"},
	}
	for _, worker := range []int{4, 8, 16, 32} {
		dev := newV100(cfg)
		dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		res, err := core.BFSWithWorker(dev, dg, src, worker, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", worker),
			fmt.Sprintf("%d", res.Stats.PCIeRequests),
			pct(dev.Monitor().SizeFraction(128)),
			fnum(res.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"paper §4.3.1: shrinking the worker below a warp only shrinks requests",
		"and wastes the constrained interconnect")
	return t, nil
}

// AblationBalance compares plain merged+aligned BFS with the §6 workload
// balancing extension on the hub-heavy GK graph.
func AblationBalance(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GK")
	src := ds.Sources("GK")[0]
	t := &Table{
		Title:  "Ablation: workload balancing (BFS on GK)",
		Header: []string{"kernel", "critical-path reqs", "payload MB", "time ms"},
	}
	dev := newV100(cfg)
	dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
	if err != nil {
		return nil, err
	}
	plain, err := core.BFS(dev, dg, src, core.MergedAligned)
	if err != nil {
		return nil, err
	}
	devB := newV100(cfg)
	dgB, err := core.Upload(devB, g, core.ZeroCopy, 8)
	if err != nil {
		return nil, err
	}
	bal, err := core.BFSBalanced(devB, dgB, src, 1024)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		r    *core.Result
	}{{"merged+aligned", plain}, {"balanced (split=1024)", bal}} {
		t.AddRow(row.name,
			fmt.Sprintf("%d", row.r.Stats.MaxWarpHostReqs),
			fnum(float64(row.r.Stats.PCIePayloadBytes)/1e6),
			fnum(row.r.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"paper §6: balancing shortens hub critical paths without changing traffic")
	return t, nil
}

// AblationCompression compares plain and delta-compressed traversal (§6's
// compression direction) across the datasets.
func AblationCompression(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	t := &Table{
		Title:  "Ablation: compressed edge lists (aligned BFS)",
		Header: []string{"graph", "ratio", "plain MB", "compressed MB", "plain ms", "compressed ms"},
	}
	for _, sym := range AllSyms() {
		g := ds.Get(sym)
		src := ds.Sources(sym)[0]

		dev := newV100(cfg)
		dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		plain, err := core.BFS(dev, dg, src, core.MergedAligned)
		if err != nil {
			return nil, err
		}
		devC := newV100(cfg)
		cdg, err := core.UploadCompressed(devC, g)
		if err != nil {
			return nil, err
		}
		comp, err := core.BFSCompressed(devC, cdg, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(sym,
			fnum(cdg.Ratio()),
			fnum(float64(plain.Stats.PCIePayloadBytes)/1e6),
			fnum(float64(comp.Stats.PCIePayloadBytes)/1e6),
			fnum(plain.Elapsed.Seconds()*1e3),
			fnum(comp.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"paper §6: compression trades idle lanes for bytes; wins grow with ID locality")
	return t, nil
}

// AblationMultiGPU sweeps the device count of the §7 multi-GPU extension.
func AblationMultiGPU(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GU") // uniform degrees: the friendliest scaling case
	src := ds.Sources("GU")[0]
	t := &Table{
		Title:  "Ablation: multi-GPU scaling (aligned BFS on GU)",
		Header: []string{"GPUs", "time ms", "speedup vs 1"},
	}
	var base time.Duration
	for _, n := range []int{1, 2, 4} {
		devs := make([]*gpu.Device, n)
		for i := range devs {
			devs[i] = newV100(cfg)
		}
		ms, err := core.NewMultiSystem(devs, g, 8)
		if err != nil {
			return nil, err
		}
		res, err := ms.BFS(src)
		if err != nil {
			return nil, err
		}
		ms.Free()
		if n == 1 {
			base = res.Elapsed
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fnum(res.Elapsed.Seconds()*1e3),
			fnum(float64(base)/float64(res.Elapsed)))
	}
	t.Notes = append(t.Notes,
		"paper §7 future work: independent links scale traversal; replica",
		"reduction caps the curve")
	return t, nil
}

// AblationThrash sweeps the L2 thrash sensitivity and reports the Naive
// variant's time relative to UVM — the single fitted constant behind
// Figure 9's Naive bars.
func AblationThrash(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GK")
	src := ds.Sources("GK")[0]

	devU := newV100(cfg)
	dgU, err := core.Upload(devU, g, core.UVM, 8)
	if err != nil {
		return nil, err
	}
	uvmRes, err := core.BFS(devU, dgU, src, core.Merged)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Ablation: L2 thrash sensitivity (Naive BFS on GK, vs UVM)",
		Header: []string{"sensitivity", "refetches", "naive ms", "naive/UVM"},
	}
	for _, sens := range []float64{0.01, 0.25, 0.40, 1.0} {
		gcfg := emogi.V100PCIe3(cfg.Scale).GPU
		gcfg.ThrashSensitivity = sens
		dev := cfg.Device(gcfg)
		dg, err := core.Upload(dev, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		res, err := core.BFS(dev, dg, src, core.Naive)
		if err != nil {
			return nil, err
		}
		t.AddRow(fnum(sens),
			fmt.Sprintf("%d", res.Stats.ZCRefetches),
			fnum(res.Elapsed.Seconds()*1e3),
			fnum(float64(uvmRes.Elapsed)/float64(res.Elapsed)))
	}
	t.Notes = append(t.Notes,
		"the default 0.40 is the constant calibrated against the paper's Naive=0.73x")
	return t, nil
}

// AblationHybrid sweeps the CPU share of the §7 collaborative CPU-GPU
// extension: a modest share adds the host's memory-local bandwidth for
// free; an overgrown share makes the slow CPU the straggler.
func AblationHybrid(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GU")
	src := ds.Sources("GU")[0]
	t := &Table{
		Title:  "Ablation: collaborative CPU-GPU share (aligned BFS on GU)",
		Header: []string{"CPU share", "CPU vertices", "time ms"},
	}
	for _, share := range []float64{0, 0.1, 0.2, 0.4, 0.8} {
		dev := newV100(cfg)
		h, err := core.NewHybridSystem(dev, g, 8, core.DefaultHybridConfig(share))
		if err != nil {
			return nil, err
		}
		res, err := h.BFS(src)
		if err != nil {
			return nil, err
		}
		h.Free()
		t.AddRow(fnum(share),
			fmt.Sprintf("%d", h.Split()),
			fnum(res.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"paper §7 future work: the optimum sits where CPU scan time matches the",
		"GPU's zero-copy time for the complementary share")
	return t, nil
}

// AblationLink sweeps the interconnect from PCIe 3.0 x4 to 4.0 x16 and
// reports EMOGI and UVM BFS times on GK — the general form of the paper's
// contribution (3): "EMOGI performance scales linearly with CPU-GPU
// interconnect bandwidth improvement".
func AblationLink(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	g := ds.Get("GK")
	src := ds.Sources("GK")[0]
	t := &Table{
		Title:  "Ablation: interconnect bandwidth (BFS on GK)",
		Header: []string{"link", "memcpy GB/s", "EMOGI ms", "UVM ms", "EMOGI speedup"},
	}
	links := []struct {
		gen   pcie.Gen
		lanes int
	}{
		{pcie.Gen3, 4}, {pcie.Gen3, 8}, {pcie.Gen3, 16}, {pcie.Gen4, 16},
	}
	for _, l := range links {
		link := pcie.Link(l.gen, l.lanes)

		// Swap the interconnect by rebuilding the two-tier stack around the
		// swept link — the tier interface is the canonical route to the
		// device's link model.
		gcfg := emogi.V100PCIe3(cfg.Scale).GPU
		gcfg.Tiers = memsys.TwoTier(gcfg.MemBytes, gcfg.HostMemBytes, gcfg.HBM, gcfg.HostDRAM, link)
		devE := cfg.Device(gcfg)
		dgE, err := core.Upload(devE, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		em, err := core.BFS(devE, dgE, src, core.MergedAligned)
		if err != nil {
			return nil, err
		}

		devU := cfg.Device(gcfg)
		dgU, err := core.Upload(devU, g, core.UVM, 8)
		if err != nil {
			return nil, err
		}
		uvmRes, err := core.BFS(devU, dgU, src, core.Merged)
		if err != nil {
			return nil, err
		}
		t.AddRow(link.Name,
			gb(link.MemcpyPeak()),
			fnum(em.Elapsed.Seconds()*1e3),
			fnum(uvmRes.Elapsed.Seconds()*1e3),
			fnum(float64(uvmRes.Elapsed)/float64(em.Elapsed)))
	}
	t.Notes = append(t.Notes,
		"EMOGI time tracks 1/bandwidth; UVM flattens once the fault pipeline",
		"dominates (the Figure 12 mechanism, swept across four link speeds)")
	return t, nil
}

// AblationEdgeCentric compares the §2.1 methods: vertex-centric scatter
// (EMOGI's choice) against an edge-centric streamer that re-reads the COO
// edge array every iteration with perfect 128B requests.
func AblationEdgeCentric(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	t := &Table{
		Title:  "Ablation: vertex-centric vs edge-centric BFS",
		Header: []string{"graph", "iters", "vertex MB", "edge MB", "vertex ms", "edge ms"},
	}
	for _, sym := range []string{"GK", "GU", "SK"} {
		g := ds.Get(sym)
		src := ds.Sources(sym)[0]

		devV := newV100(cfg)
		dg, err := core.Upload(devV, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		vert, err := core.BFS(devV, dg, src, core.MergedAligned)
		if err != nil {
			return nil, err
		}
		devE := newV100(cfg)
		ec, err := core.UploadEdgeCentric(devE, g)
		if err != nil {
			return nil, err
		}
		edge, err := core.BFSEdgeCentric(devE, ec, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(sym,
			fmt.Sprintf("%d", edge.Iterations),
			fnum(float64(vert.Stats.PCIePayloadBytes)/1e6),
			fnum(float64(edge.Stats.PCIePayloadBytes)/1e6),
			fnum(vert.Elapsed.Seconds()*1e3),
			fnum(edge.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"§2.1: edge-centric streams |E| per iteration regardless of frontier size;",
		"perfect request shapes cannot pay for the extra bytes")
	return t, nil
}

// AblationDirectionOpt compares plain push BFS with the direction-optimized
// (push/pull) extension on the wide-frontier graphs where bottom-up levels
// pay off.
func AblationDirectionOpt(ds *Datasets) (*Table, error) {
	cfg := ds.Config()
	t := &Table{
		Title:  "Ablation: direction-optimized BFS (push/pull over zero-copy)",
		Header: []string{"graph", "push MB", "push/pull MB", "push ms", "push/pull ms"},
	}
	for _, sym := range []string{"GU", "FS", "ML"} {
		g := ds.Get(sym)
		src := ds.Sources(sym)[0]

		devP := newV100(cfg)
		dgP, err := core.Upload(devP, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		push, err := core.BFS(devP, dgP, src, core.MergedAligned)
		if err != nil {
			return nil, err
		}
		devD := newV100(cfg)
		dgD, err := core.Upload(devD, g, core.ZeroCopy, 8)
		if err != nil {
			return nil, err
		}
		do, err := core.BFSDirectionOptimized(devD, dgD, src, core.DefaultPushPullConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(sym,
			fnum(float64(push.Stats.PCIePayloadBytes)/1e6),
			fnum(float64(do.Stats.PCIePayloadBytes)/1e6),
			fnum(push.Elapsed.Seconds()*1e3),
			fnum(do.Elapsed.Seconds()*1e3))
	}
	t.Notes = append(t.Notes,
		"§6: classic traversal optimizations compose with zero-copy; pull's early",
		"exit skips most of the edge list on wide frontiers")
	return t, nil
}
