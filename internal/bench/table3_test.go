package bench

import (
	"strings"
	"testing"
)

func TestTable3(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("table 3 sweep in -short mode")
	}
	ds := NewDatasets(tinyConfig())
	tb, err := Table3(ds)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	// 4 HALO rows + 6 SSSP + 6 BFS + 4 CC Subway rows.
	if len(tb.Rows) != 20 {
		t.Errorf("Table3 rows = %d, want 20", len(tb.Rows))
	}
	out := tb.Render()
	if !strings.Contains(out, "HALO") || !strings.Contains(out, "Subway") {
		t.Errorf("Table3 missing systems:\n%s", out)
	}
	// Every successful comparison row should carry a positive speedup.
	for _, row := range tb.Rows {
		if row[5] == "-" {
			continue
		}
		if row[5] == "0" {
			t.Errorf("zero speedup in row %v", row)
		}
	}
}

func TestFigure12(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("two app sweeps in -short mode")
	}
	ds := NewDatasets(tinyConfig())
	tb, err := Figure12(ds)
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	if len(tb.Rows) != 16 {
		t.Errorf("Figure12 rows = %d, want 16", len(tb.Rows))
	}
	// Normalization: the UVM+3.0 column must be exactly 1 in every row.
	for _, row := range tb.Rows {
		if row[2] != "1.00" {
			t.Errorf("row %v: UVM+3.0 should normalize to 1.00", row)
		}
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "link scaling") {
		t.Errorf("Figure12 missing scaling note")
	}
}
