// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§5), each producing the same rows or series
// the paper reports, rendered as text tables. cmd/emogi-bench drives the
// full set; bench_test.go at the repository root exposes each runner as a
// testing.B benchmark.
//
// Runners are deterministic for a given Config. Absolute times come from
// the calibrated simulator; the claims under test are the *shapes* — who
// wins, by what factor, where the crossovers are — as recorded against the
// paper's numbers in EXPERIMENTS.md.
package bench

import (
	"fmt"

	emogi "repro"
	"repro/internal/gpu"
	"repro/internal/graph"
)

// Config controls experiment size.
type Config struct {
	// Scale is the dataset scale factor on top of the standard 1:1000
	// reduction (1.0 = the repository's full-size experiments).
	Scale float64
	// Seed makes every generator and source choice deterministic.
	Seed int64
	// Sources is the number of BFS/SSSP source vertices averaged per
	// measurement (the paper uses 64; the default trades that for runtime).
	Sources int
	// Workers is the per-launch host worker count passed to every system
	// the harness builds (0 = GOMAXPROCS, 1 = serial). Simulated results
	// are identical for every value; only wall-clock time changes.
	Workers int
	// Telemetry, when non-nil, is attached to every system the harness
	// builds, so one exporter observes the whole evaluation.
	Telemetry emogi.Telemetry
	// TierStack, when non-empty, is the named memory-tier stack applied to
	// every system the harness builds ("2tier", "3tier-cxl" or an alias);
	// empty keeps each platform's native two-tier stack.
	TierStack string
	// GPUDrivenPaging selects the GPUVM-style UVM paging model on every
	// system the harness builds.
	GPUDrivenPaging bool
}

// DefaultConfig returns the full-size configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Seed: 42, Sources: 3}
}

// QuickConfig returns a reduced configuration for smoke tests and
// testing.B benchmarks.
func QuickConfig() Config {
	return Config{Scale: 0.1, Seed: 42, Sources: 2}
}

// Datasets lazily builds and caches the six Table 2 graphs, in both 8-byte
// and 4-byte edge-element flavors of the same topology.
type Datasets struct {
	cfg    Config
	graphs map[string]*graph.CSR
}

// NewDatasets creates an empty cache for the given configuration.
func NewDatasets(cfg Config) *Datasets {
	return &Datasets{cfg: cfg, graphs: make(map[string]*graph.CSR)}
}

// Config returns the dataset configuration.
func (d *Datasets) Config() Config { return d.cfg }

// System builds a simulated machine for the given platform configuration,
// applying the harness worker count.
func (c Config) System(sc emogi.SystemConfig) *emogi.System {
	sc.Workers = c.Workers
	sc.Telemetry = c.Telemetry
	if c.TierStack != "" {
		var err error
		if sc, err = emogi.ApplyTierStack(sc, c.TierStack); err != nil {
			panic(err) // names are validated at flag-parse time
		}
	}
	sc.GPUDrivenPaging = c.GPUDrivenPaging
	return emogi.NewSystem(sc)
}

// Device builds a raw simulated device from a gpu configuration, applying
// the harness worker count and telemetry — for runners (toy figures,
// ablations, prior-work baselines) that bypass the System wrapper.
func (c Config) Device(gc gpu.Config) *gpu.Device {
	if c.Workers != 0 {
		gc.Workers = c.Workers
	}
	dev := gpu.NewDevice(gc)
	if c.Telemetry != nil {
		dev.SetTelemetry(c.Telemetry)
	}
	return dev
}

// Get returns the named dataset, building it on first use.
func (d *Datasets) Get(sym string) *graph.CSR {
	if g, ok := d.graphs[sym]; ok {
		return g
	}
	g, err := emogi.BuildDataset(sym, d.cfg.Scale, d.cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	d.graphs[sym] = g
	return g
}

// Sources returns the measurement sources for a dataset.
func (d *Datasets) Sources(sym string) []int {
	return emogi.PickSources(d.Get(sym), d.cfg.Sources, d.cfg.Seed)
}

// AllSyms returns the dataset symbols in Table 2 order.
func AllSyms() []string { return []string{"GK", "GU", "FS", "ML", "SK", "UK5"} }

// UndirectedSyms returns the datasets CC runs on.
func UndirectedSyms() []string { return []string{"GK", "GU", "FS", "ML"} }

// Table is a rendered experiment result: a title, a header row, and data
// rows, formatted as aligned text by Render.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one data row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := "== " + t.Title + " ==\n"
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			for len(c) < widths[i] {
				c = c + " "
			}
			s += c
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, row := range t.Rows {
		out += line(row)
	}
	for _, n := range t.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// fnum formats a float compactly for table cells.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// gb formats bytes/sec as GB/s.
func gb(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f", bytesPerSec/1e9)
}

// pct formats a fraction as a percentage.
func pct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// RenderCSV formats the table as RFC-4180-ish CSV (quotes only where
// needed), for downstream plotting.
func (t *Table) RenderCSV() string {
	var b []byte
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, ',')
			}
			quote := false
			for _, r := range c {
				if r == ',' || r == '"' || r == '\n' {
					quote = true
					break
				}
			}
			if quote {
				b = append(b, '"')
				for _, r := range c {
					if r == '"' {
						b = append(b, '"', '"')
					} else {
						b = append(b, string(r)...)
					}
				}
				b = append(b, '"')
			} else {
				b = append(b, c...)
			}
		}
		b = append(b, '\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return string(b)
}
