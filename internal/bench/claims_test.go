package bench

import (
	"strings"
	"testing"
)

func TestClaimsAllPass(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(Config{Scale: 0.1, Seed: 42, Sources: 1})
	tb, err := Claims(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 10 {
		t.Fatalf("rows = %d, want >= 10 claims", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[3] != "PASS" {
			t.Errorf("claim %q FAILED: paper %q, measured %q", row[0], row[1], row[2])
		}
	}
	if !strings.Contains(tb.Render(), "PASS") {
		t.Errorf("render missing verdicts")
	}
}
