package bench

import (
	"errors"
	"fmt"
	"time"

	emogi "repro"
	"repro/internal/baseline"
	"repro/internal/core"
)

// Table3 compares EMOGI with the prior state of the art (paper §5.6):
// HALO on a Titan Xp and Subway (async, 4-byte edge elements) on a V100.
// Subway is attempted on every dataset so its documented failures (GU:
// out-of-memory, ML: 2^32-edge limit) reproduce as failures.
func Table3(ds *Datasets) (*Table, error) {
	t := &Table{
		Title:  "Table 3: comparison with prior out-of-memory GPU systems",
		Header: []string{"work", "app", "graph", "prior ms", "EMOGI ms", "speedup"},
	}
	cfg := ds.Config()

	// --- HALO (Titan Xp, BFS, 8-byte elements) ---
	for _, sym := range []string{"ML", "FS", "SK", "UK5"} {
		g := ds.Get(sym)
		sources := ds.Sources(sym)

		haloTime, err := runHALOMean(cfg, sym, ds)
		if err != nil {
			return nil, fmt.Errorf("bench: HALO on %s: %w", sym, err)
		}
		sysE := cfg.System(emogi.TitanXpPCIe3(cfg.Scale))
		dgE, err := sysE.Load(g)
		if err != nil {
			return nil, err
		}
		em, err := sysE.RunMany(dgE, emogi.BFS, sources, emogi.MergedAligned)
		if err != nil {
			return nil, err
		}
		t.AddRow("HALO", "BFS", sym,
			fnum(haloTime.Seconds()*1e3),
			fnum(em.MeanElapsed.Seconds()*1e3),
			fnum(float64(haloTime)/float64(em.MeanElapsed)))
	}

	// --- Subway (V100, 4-byte elements) ---
	type combo struct {
		app  emogi.App
		syms []string
	}
	combos := []combo{
		{emogi.SSSP, []string{"GK", "GU", "FS", "ML", "SK", "UK5"}},
		{emogi.BFS, []string{"GK", "GU", "FS", "ML", "SK", "UK5"}},
		{emogi.CC, []string{"GK", "GU", "FS", "ML"}},
	}
	for _, cb := range combos {
		for _, sym := range cb.syms {
			g := ds.Get(sym)
			sources := ds.Sources(sym)

			subTime, err := runSubwayMean(cfg, g, cb.app, sources)
			if err != nil {
				reason := "error"
				if errors.Is(err, baseline.ErrSubwayUnsupported) {
					reason = "unsupported (2^32-edge limit)"
				} else if errors.Is(err, baseline.ErrSubwayOOM) {
					reason = "out of memory"
				}
				t.AddRow("Subway", cb.app.String(), sym, reason, "-", "-")
				continue
			}
			sysE := cfg.System(emogi.V100PCIe3(cfg.Scale))
			dgE, err := sysE.Load(g, emogi.WithElemBytes(4))
			if err != nil {
				return nil, err
			}
			em, err := sysE.RunMany(dgE, cb.app, sources, emogi.MergedAligned)
			if err != nil {
				return nil, err
			}
			t.AddRow("Subway", cb.app.String(), sym,
				fnum(subTime.Seconds()*1e3),
				fnum(em.MeanElapsed.Seconds()*1e3),
				fnum(float64(subTime)/float64(em.MeanElapsed)))
		}
	}
	t.Notes = append(t.Notes,
		"paper: EMOGI 1.34-4.73x over HALO and Subway across these combinations",
		"paper: Subway cannot run ML (>2^32 edges; reproduced) and failed on GU with",
		"CUDA OOM errors; our Subway model partitions oversized frontiers instead,",
		"so GU rows here measure the design rather than reproduce that bug")
	return t, nil
}

// runHALOMean measures the HALO-style baseline (reorder + UVM) on the
// Titan Xp platform, averaging over the dataset's sources.
func runHALOMean(cfg Config, sym string, ds *Datasets) (time.Duration, error) {
	g := ds.Get(sym)
	sources := ds.Sources(sym)
	var total time.Duration
	for _, src := range sources {
		dev := cfg.Device(emogi.TitanXpPCIe3(cfg.Scale).GPU)
		res, err := baseline.HALORun(dev, g, core.AppBFS, src)
		if err != nil {
			return 0, err
		}
		if err := res.Validate(g); err != nil {
			return 0, fmt.Errorf("HALO produced wrong output: %w", err)
		}
		total += res.Elapsed
	}
	return total / time.Duration(len(sources)), nil
}

// runSubwayMean measures the Subway-style baseline on the V100 platform.
func runSubwayMean(cfg Config, g *emogi.Graph, app emogi.App, sources []int) (time.Duration, error) {
	if app == emogi.CC {
		sources = sources[:1]
	}
	var total time.Duration
	for _, src := range sources {
		dev := cfg.Device(emogi.V100PCIe3(cfg.Scale).GPU)
		res, err := baseline.SubwayRun(dev, g, app, src, baseline.DefaultSubwayConfig())
		if err != nil {
			return 0, err
		}
		if err := res.Validate(g); err != nil {
			return 0, fmt.Errorf("Subway produced wrong output: %w", err)
		}
		total += res.Elapsed
	}
	return total / time.Duration(len(sources)), nil
}
