package bench

import (
	"context"
	"fmt"
	"time"

	emogi "repro"
)

// The transport comparison pits the pluggable transport policies against
// each other on the scaled V100: both static substrates (the paper's
// zero-copy and UVM configurations, now expressed as static policies) and
// the adaptive per-partition policy. Every run is cold — UVM residency and
// staged segments evicted first — so each policy pays its own warm-up, the
// regime the adaptive cost model is built for.

// TransportPolicyNames returns the compared policy names in table order.
func TransportPolicyNames() []string { return []string{"static-zc", "static-uvm", "adaptive"} }

// TransportCell is one (graph, algo) measurement: the mean cold simulated
// time under each policy, averaged over the harness sources.
type TransportCell struct {
	Graph   string
	Algo    string
	Elapsed map[string]time.Duration
}

// BestStatic returns the faster of the two static policies.
func (c *TransportCell) BestStatic() time.Duration {
	zc, uvm := c.Elapsed["static-zc"], c.Elapsed["static-uvm"]
	if uvm < zc {
		return uvm
	}
	return zc
}

// RunTransportComparison measures every (graph, algo) cell under all
// transport policies. Each policy gets a fresh system so one policy's
// residency never leaks into another's measurement.
func RunTransportComparison(ds *Datasets, syms, algos []string) ([]TransportCell, error) {
	cfg := ds.Config()
	var cells []TransportCell
	for _, sym := range syms {
		g := ds.Get(sym)
		sources := ds.Sources(sym)
		for _, algo := range algos {
			cell := TransportCell{Graph: sym, Algo: algo, Elapsed: make(map[string]time.Duration)}
			for _, pname := range TransportPolicyNames() {
				pol, err := emogi.PolicyByName(pname)
				if err != nil {
					return nil, err
				}
				sys := cfg.System(emogi.V100PCIe3(cfg.Scale))
				dg, err := sys.Load(g, emogi.WithTransportPolicy(pol))
				if err != nil {
					return nil, fmt.Errorf("bench: loading %s for %s: %w", sym, pname, err)
				}
				var total time.Duration
				for _, src := range sources {
					res, err := sys.Do(context.Background(),
						emogi.Request{Graph: dg, Algo: algo, Src: src, Cold: true})
					if err != nil {
						return nil, fmt.Errorf("bench: %s %s/%s: %w", algo, sym, pname, err)
					}
					total += res.Elapsed
				}
				cell.Elapsed[pname] = total / time.Duration(len(sources))
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// TransportComparison renders the comparison as a table: one row per
// (graph, algo), the per-policy times, and the adaptive policy's speedup
// over the better static choice (>1.0 means adaptive wins even against an
// oracle that picked the right static transport per graph).
func TransportComparison(ds *Datasets, syms, algos []string) (*Table, error) {
	cells, err := RunTransportComparison(ds, syms, algos)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Transport policies: static zero-copy vs static UVM vs adaptive (cold, V100)",
		Header: []string{"graph", "algo", "static-zc ms", "static-uvm ms", "adaptive ms", "vs best static"},
	}
	for i := range cells {
		c := &cells[i]
		t.AddRow(c.Graph, c.Algo,
			fnum(c.Elapsed["static-zc"].Seconds()*1e3),
			fnum(c.Elapsed["static-uvm"].Seconds()*1e3),
			fnum(c.Elapsed["adaptive"].Seconds()*1e3),
			fnum(c.BestStatic().Seconds()/c.Elapsed["adaptive"].Seconds()))
	}
	t.Notes = append(t.Notes,
		"every run is cold: UVM pages and staged segments evicted before each source",
		"vs best static > 1.0 means adaptive beats an oracle static choice per graph")
	return t, nil
}
