package bench

import (
	"context"
	"fmt"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/graph"
)

// Claims runs the paper's headline *shape* claims as executable checks:
// each row is one qualitative statement from the paper, a target derived
// from it, the measured value, and a PASS/FAIL verdict. This is the
// machine-checkable summary of EXPERIMENTS.md — run it after any model
// change to see which paper behaviours still hold.
//
// Thresholds are deliberately looser than the paper's point values: they
// encode the *direction and rough magnitude* a reproduction must preserve,
// not measurement noise.
func Claims(ds *Datasets) (*Table, error) {
	t := &Table{
		Title:  "Paper claims check",
		Header: []string{"claim", "paper", "measured", "verdict"},
	}
	cfg := ds.Config()
	check := func(name, paper string, measured float64, format string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(name, paper, fmt.Sprintf(format, measured), verdict)
	}

	// --- §3.3 toy claims ---
	link := emogi.V100PCIe3(cfg.Scale).TierStack().DRAM().Link
	toy := func(p core.ToyPattern, tr core.Transport) *core.ToyResult {
		dev := newToyDevice(cfg)
		r, err := core.ToyTraverse(dev, toyElems(cfg), p, tr)
		if err != nil {
			panic(err)
		}
		return r
	}
	aligned := toy(core.ToyMergedAligned, core.ZeroCopy)
	strided := toy(core.ToyStrided, core.ZeroCopy)
	mis := toy(core.ToyMergedMisaligned, core.ZeroCopy)
	uvmToy := toy(core.ToyMergedAligned, core.UVM)

	peak := link.MemcpyPeak()
	check("aligned zero-copy saturates PCIe", "≈ memcpy peak",
		aligned.PCIeBandwidth/peak, "%.2f of peak",
		aligned.PCIeBandwidth > 0.97*peak)
	check("strided is tag-limited", "4.74 GB/s",
		strided.PCIeBandwidth/1e9, "%.2f GB/s",
		strided.PCIeBandwidth > 4.3e9 && strided.PCIeBandwidth < 5.2e9)
	check("strided doubles DRAM traffic", "2.0x",
		strided.DRAMBandwidth/strided.PCIeBandwidth, "%.2fx",
		strided.DRAMBandwidth/strided.PCIeBandwidth > 1.9)
	check("misalignment costs ~25%", "9.6 vs 12.3 GB/s",
		mis.PCIeBandwidth/aligned.PCIeBandwidth, "%.2f of aligned",
		mis.PCIeBandwidth < 0.85*aligned.PCIeBandwidth &&
			mis.PCIeBandwidth > 0.65*aligned.PCIeBandwidth)
	check("UVM stream below zero-copy peak", "9.1 vs 12.3 GB/s",
		uvmToy.PCIeBandwidth/1e9, "%.2f GB/s",
		uvmToy.PCIeBandwidth > 8.5e9 && uvmToy.PCIeBandwidth < 9.8e9)

	// --- BFS case-study claims on a representative skewed graph ---
	g := ds.Get("GK")
	src := ds.Sources("GK")[0]
	run := func(transport core.Transport, v core.Variant) *core.Result {
		dev := newV100(cfg)
		dg, err := core.Upload(dev, g, transport, 8)
		if err != nil {
			panic(err)
		}
		res, err := core.BFS(dev, dg, src, v)
		if err != nil {
			panic(err)
		}
		if err := core.ValidateBFS(g, src, res.Values); err != nil {
			panic(err)
		}
		return res
	}
	uvmRes := run(core.UVM, core.Merged)
	naive := run(core.ZeroCopy, core.Naive)
	merged := run(core.ZeroCopy, core.Merged)
	alignedRes := run(core.ZeroCopy, core.MergedAligned)

	check("naive is slower than UVM", "0.73x",
		float64(uvmRes.Elapsed)/float64(naive.Elapsed), "%.2fx",
		naive.Elapsed > uvmRes.Elapsed)
	check("merged beats UVM well", ">2x",
		float64(uvmRes.Elapsed)/float64(merged.Elapsed), "%.2fx",
		uvmRes.Elapsed > 2*merged.Elapsed)
	check("alignment adds on top of merge", "1.10x",
		float64(merged.Elapsed)/float64(alignedRes.Elapsed), "%.2fx",
		alignedRes.Elapsed < merged.Elapsed)
	edgeBytes := float64(g.EdgeListBytes(8))
	check("EMOGI amplification small", "≤1.31x",
		float64(alignedRes.Stats.PCIePayloadBytes)/edgeBytes, "%.2fx",
		float64(alignedRes.Stats.PCIePayloadBytes) < 1.31*edgeBytes)
	check("UVM amplification large", "up to 5.16x",
		float64(uvmRes.Stats.PCIePayloadBytes)/edgeBytes, "%.2fx",
		float64(uvmRes.Stats.PCIePayloadBytes) > 1.8*edgeBytes)

	// --- SK: the graph that almost fits ---
	gs := ds.Get("SK")
	srcS := ds.Sources("SK")[0]
	runOn := func(g2 *graph.CSR, src2 int, transport core.Transport, v core.Variant) *core.Result {
		dev := newV100(cfg)
		dg, err := core.Upload(dev, g2, transport, 8)
		if err != nil {
			panic(err)
		}
		res, err := core.BFS(dev, dg, src2, v)
		if err != nil {
			panic(err)
		}
		return res
	}
	skUVM := runOn(gs, srcS, core.UVM, core.Merged)
	skEmogi := runOn(gs, srcS, core.ZeroCopy, core.MergedAligned)
	skSpeed := float64(skUVM.Elapsed) / float64(skEmogi.Elapsed)
	check("SK (fits in memory) is the weakest win", "1.21x",
		skSpeed, "%.2fx", skSpeed > 0.9 && skSpeed < 1.8)

	// --- PCIe 4.0 scaling ---
	runA100 := func(platform func(float64) emogi.SystemConfig, transport core.Transport, v core.Variant) *core.Result {
		sys := cfg.System(platform(cfg.Scale))
		dg, err := sys.Load(g, emogi.WithTransport(transport))
		if err != nil {
			panic(err)
		}
		res, err := sys.Do(context.Background(),
			emogi.Request{Graph: dg, Algo: "bfs", Src: src, Variant: v})
		if err != nil {
			panic(err)
		}
		return res
	}
	e3 := runA100(emogi.A100PCIe3, core.ZeroCopy, core.MergedAligned)
	e4 := runA100(emogi.A100PCIe4, core.ZeroCopy, core.MergedAligned)
	u3 := runA100(emogi.A100PCIe3, core.UVM, core.Merged)
	u4 := runA100(emogi.A100PCIe4, core.UVM, core.Merged)
	emogiScale := float64(e3.Elapsed) / float64(e4.Elapsed)
	uvmScale := float64(u3.Elapsed) / float64(u4.Elapsed)
	// Per-level fixed overheads (kernel launch, flag copies) do not scale
	// with the dataset, so the absolute scaling factor compresses at small
	// Config.Scale; the shape claim is that EMOGI out-scales UVM and both
	// scale at all. Full-scale runs measure 1.92x vs 1.55x (EXPERIMENTS.md).
	check("EMOGI scales with PCIe 4.0", "1.9x at full scale",
		emogiScale, "%.2fx", emogiScale > 1.3)
	check("UVM scaling capped by fault pipeline", "1.53x",
		uvmScale, "%.2fx", uvmScale < emogiScale && uvmScale > 1.1)

	return t, nil
}
