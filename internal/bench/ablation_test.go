package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parseMS pulls a float cell back out of a rendered value.
func parseMS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", cell, err)
	}
	return v
}

func TestAblationUVMBlock(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationUVMBlock(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// Amplification must be non-decreasing in block size on a scattered
	// workload.
	prev := 0.0
	for _, row := range tb.Rows {
		amp := parseMS(t, row[2])
		if amp < prev-0.05 {
			t.Errorf("amplification decreased at block %s: %v -> %v", row[0], prev, amp)
		}
		prev = amp
	}
}

func TestAblationWorkerSize(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationWorkerSize(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// The 32-lane worker must be fastest (or tied): §4.3.1's claim.
	t32 := parseMS(t, tb.Rows[3][3])
	for _, row := range tb.Rows[:3] {
		if parseMS(t, row[3]) < t32-1e-9 {
			t.Errorf("worker %s beat the full warp: %s ms vs %.3f ms",
				row[0], row[3], t32)
		}
	}
}

func TestAblationBalance(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationBalance(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// Balanced critical path must not exceed the plain kernel's.
	plain := parseMS(t, tb.Rows[0][1])
	bal := parseMS(t, tb.Rows[1][1])
	if bal > plain {
		t.Errorf("balanced critical path %v exceeds plain %v", bal, plain)
	}
}

func TestAblationCompression(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationCompression(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if r := parseMS(t, row[1]); r < 1.0 {
			t.Errorf("%s: compression ratio %v below 1", row[0], r)
		}
	}
}

func TestAblationMultiGPU(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationMultiGPU(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	if sp := parseMS(t, tb.Rows[1][2]); sp <= 1.0 {
		t.Errorf("2-GPU speedup %v not above 1", sp)
	}
}

func TestAblationThrash(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationThrash(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// More sensitivity, more refetches, slower naive.
	r0 := parseMS(t, tb.Rows[0][1])
	r3 := parseMS(t, tb.Rows[3][1])
	if r3 <= r0 {
		t.Errorf("refetches should grow with sensitivity: %v -> %v", r0, r3)
	}
	t0 := parseMS(t, tb.Rows[0][2])
	t3 := parseMS(t, tb.Rows[3][2])
	if t3 <= t0 {
		t.Errorf("naive time should grow with sensitivity: %v -> %v", t0, t3)
	}
}

func TestAblationHybrid(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationHybrid(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// CPU vertex counts are monotone in the share.
	prev := -1.0
	for _, row := range tb.Rows {
		v := parseMS(t, row[1])
		if v < prev {
			t.Errorf("CPU vertices not monotone in share")
		}
		prev = v
	}
}

func TestAblationLink(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationLink(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// EMOGI times must fall monotonically as the link widens.
	prev := 1e18
	for _, row := range tb.Rows {
		ms := parseMS(t, row[2])
		if ms > prev {
			t.Errorf("EMOGI time rose on a faster link: %v -> %v", prev, ms)
		}
		prev = ms
	}
}

func TestAblationEdgeCentric(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationEdgeCentric(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseMS(t, row[3]) <= parseMS(t, row[2]) {
			t.Errorf("%s: edge-centric should move more bytes", row[0])
		}
	}
}

func TestAblationDirectionOpt(t *testing.T) {
	t.Parallel()
	ds := NewDatasets(tinyConfig())
	tb, err := AblationDirectionOpt(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseMS(t, row[2]) > parseMS(t, row[1]) {
			t.Errorf("%s: push/pull moved more bytes than push", row[0])
		}
	}
}
