// Package uvm simulates NVIDIA's Unified Virtual Memory subsystem as the
// paper's baseline transport: on-demand migration of 4KB pages from host to
// GPU memory on first touch, LRU eviction under oversubscription, and a
// serialized CPU-side fault handler whose fixed per-page cost is what keeps
// UVM from scaling with faster interconnects (§5.5 / Figure 12).
//
// The edge-list buffers the baselines place in UVM space are read-only and
// advised cudaMemAdviseSetReadMostly, so migration duplicates pages into
// GPU memory with no writeback or invalidation traffic — exactly the
// paper's "optimized UVM" configuration (§5.1.2(a)).
package uvm

import (
	"time"

	"repro/internal/memsys"
)

// Config holds the UVM driver model parameters.
type Config struct {
	// PageBytes is the migration granularity (4KB system pages).
	PageBytes int

	// CapacityPages is the number of pages of GPU memory available to hold
	// migrated UVM pages (GPU memory left over after explicit allocations).
	// Zero means no page can be cached (every touch bounces: the page is
	// migrated, used, and immediately reclaimed). Negative means unlimited.
	CapacityPages int

	// FaultCPUSeconds is the effective serialized CPU cost per migrated
	// page: fault interception, batch handling, and page-table updates in
	// the single-threaded UVM driver, amortized over typical batch sizes.
	// Calibrated so a streaming UVM read reaches the paper's measured
	// ~9.1 GB/s on PCIe 3.0 (Figure 4): 4096B / 9.1 GB/s - 4096B / 12.3
	// GB/s ≈ 117ns.
	FaultCPUSeconds float64

	// BlockPages is the driver's migration granule in pages: on a fault,
	// the whole aligned block containing the faulting page is migrated
	// (the UVM driver's tree-based density prefetcher pulls aligned
	// power-of-two regions, up to 2MB). This is the main source of the
	// paper's UVM I/O read amplification on scattered accesses (Figure
	// 10): one needed neighbor list drags in its whole block. Sequential
	// streams are unaffected (every prefetched page gets used). Values
	// <= 1 disable prefetching.
	BlockPages int

	// GPUDriven selects GPUVM-style GPU-driven paging: the GPU itself
	// issues page fetches over the interconnect (RDMA-style reads posted
	// from the fault handler running on-device), so no page ever waits on
	// the serialized CPU fault handler. Migration *counts* are identical
	// to CPU-driven mode — which pages move, and when, depends only on
	// the access stream and the LRU state — but the device's time
	// accounting drops the FaultCPUSeconds term and instead charges tag
	// occupancy for the page reads, letting UVM throughput scale with the
	// interconnect exactly as the GPUVM paper observes.
	GPUDriven bool
}

// ConfigWithPaging returns the calibrated driver model — 4KB pages migrated
// in 64KB prefetch blocks — with the given paging mode: gpuDriven false is
// the classic serialized CPU fault handler, true the GPUVM-style GPU-driven
// path.
func ConfigWithPaging(capacityPages int, gpuDriven bool) Config {
	return Config{
		PageBytes:       memsys.PageBytes,
		CapacityPages:   capacityPages,
		FaultCPUSeconds: 117e-9,
		BlockPages:      32,
		GPUDriven:       gpuDriven,
	}
}

// DefaultConfig returns the calibrated driver model: 4KB pages migrated in
// 64KB prefetch blocks, CPU-driven fault handling.
//
// Deprecated: use ConfigWithPaging, which makes the paging mode explicit.
// DefaultConfig(c) is exactly ConfigWithPaging(c, false).
func DefaultConfig(capacityPages int) Config {
	return ConfigWithPaging(capacityPages, false)
}

// Stats aggregates UVM activity. Times are accounted by the GPU device's
// kernel roofline; Stats only counts events and bytes.
type Stats struct {
	Faults         uint64 // page faults taken (== migrations; no prefetch model)
	Migrations     uint64 // pages moved host -> GPU
	Evictions      uint64 // pages dropped from GPU memory (read-mostly: no writeback)
	HostBytesMoved uint64 // bytes transferred over the interconnect
	HBMHits        uint64 // accesses served from already-resident pages
}

// Add folds other into s.
func (s *Stats) Add(other Stats) {
	s.Faults += other.Faults
	s.Migrations += other.Migrations
	s.Evictions += other.Evictions
	s.HostBytesMoved += other.HostBytesMoved
	s.HBMHits += other.HBMHits
}

// pageKey identifies one page of one UVM buffer.
type pageKey struct {
	buf  *memsys.Buffer
	page int
}

// Manager tracks residency of UVM pages in GPU memory with LRU replacement.
type Manager struct {
	cfg   Config
	stats Stats

	// Intrusive LRU over resident pages: map into a doubly-linked list.
	lru      map[pageKey]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	resident int
}

type lruNode struct {
	key        pageKey
	prev, next *lruNode
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = memsys.PageBytes
	}
	return &Manager{cfg: cfg, lru: make(map[pageKey]*lruNode)}
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Resident returns the number of currently resident pages.
func (m *Manager) Resident() int { return m.resident }

// Touch services a GPU access of size bytes at byte offset off within buf,
// migrating any non-resident pages the access overlaps — plus, for each
// faulting page, the rest of its aligned prefetch block (BlockPages). It
// returns the number of pages migrated now (0 if fully resident).
// Residency recency is updated for every overlapped page.
func (m *Manager) Touch(buf *memsys.Buffer, off int64, size int) (migrated int) {
	if size <= 0 {
		return 0
	}
	pb := int64(m.cfg.PageBytes)
	first := off / pb
	last := (off + int64(size) - 1) / pb
	for p := first; p <= last; p++ {
		key := pageKey{buf, int(p)}
		if node, ok := m.lru[key]; ok {
			m.moveToFront(node)
			m.stats.HBMHits++
			continue
		}
		migrated += m.faultBlock(buf, p)
	}
	return migrated
}

// PrefetchRange migrates every non-resident page overlapping the byte range
// [off, off+size) of buf — cudaMemPrefetchAsync semantics: exactly the asked
// range, no prefetch-block amplification. It returns the number of pages
// migrated. The transport-policy layer uses it when a partition transitions
// onto the UVM substrate eagerly.
func (m *Manager) PrefetchRange(buf *memsys.Buffer, off, size int64) (migrated int) {
	if size <= 0 {
		return 0
	}
	pb := int64(m.cfg.PageBytes)
	first := off / pb
	last := (off + size - 1) / pb
	if limit := int64(buf.Pages()); last >= limit {
		last = limit - 1
	}
	for p := first; p <= last; p++ {
		key := pageKey{buf, int(p)}
		if _, ok := m.lru[key]; ok {
			continue
		}
		m.fault(key, buf)
		migrated++
	}
	return migrated
}

// EvictRange drops residency for every page overlapping the byte range
// [off, off+size) of buf, returning the number evicted. Pages are
// read-mostly duplicates, so eviction moves no data. The transport-policy
// layer uses it when a partition leaves the UVM substrate, so the freed
// capacity is available to partitions that stay on it.
func (m *Manager) EvictRange(buf *memsys.Buffer, off, size int64) (evicted int) {
	if size <= 0 {
		return 0
	}
	pb := int64(m.cfg.PageBytes)
	first := off / pb
	last := (off + size - 1) / pb
	for p := first; p <= last; p++ {
		key := pageKey{buf, int(p)}
		node, ok := m.lru[key]
		if !ok {
			continue
		}
		m.unlink(node)
		delete(m.lru, key)
		m.resident--
		buf.SetPageResident(int(p), false)
		m.stats.Evictions++
		evicted++
	}
	return evicted
}

// faultBlock migrates the aligned prefetch block containing page p,
// skipping already-resident pages, and returns the number migrated.
func (m *Manager) faultBlock(buf *memsys.Buffer, p int64) int {
	block := int64(m.cfg.BlockPages)
	if block <= 1 {
		m.fault(pageKey{buf, int(p)}, buf)
		return 1
	}
	start := p / block * block
	end := start + block
	if limit := int64(buf.Pages()); end > limit {
		end = limit
	}
	migrated := 0
	for q := start; q < end; q++ {
		key := pageKey{buf, int(q)}
		if _, ok := m.lru[key]; ok {
			continue
		}
		m.fault(key, buf)
		migrated++
	}
	return migrated
}

// fault migrates one page in, evicting the LRU page if at capacity.
func (m *Manager) fault(key pageKey, buf *memsys.Buffer) {
	if m.cfg.CapacityPages == 0 {
		// Bounce: the page is transferred and used, but GPU memory has no
		// room to keep it; it is reclaimed before any reuse.
		m.stats.Faults++
		m.stats.Migrations++
		m.stats.Evictions++
		m.stats.HostBytesMoved += uint64(m.cfg.PageBytes)
		return
	}
	if m.cfg.CapacityPages > 0 {
		for m.resident >= m.cfg.CapacityPages && m.tail != nil {
			m.evictLRU()
		}
	}
	node := &lruNode{key: key}
	m.lru[key] = node
	m.pushFront(node)
	m.resident++
	buf.SetPageResident(key.page, true)
	m.stats.Faults++
	m.stats.Migrations++
	m.stats.HostBytesMoved += uint64(m.cfg.PageBytes)
}

// evictLRU drops the least recently used page. Read-mostly pages are
// duplicates of host data, so eviction is free of writeback traffic.
func (m *Manager) evictLRU() {
	node := m.tail
	if node == nil {
		return
	}
	m.unlink(node)
	delete(m.lru, node.key)
	m.resident--
	node.key.buf.SetPageResident(node.key.page, false)
	m.stats.Evictions++
}

// Reset clears residency and statistics (between experiment runs).
func (m *Manager) Reset() {
	for key := range m.lru {
		key.buf.SetPageResident(key.page, false)
	}
	m.lru = make(map[pageKey]*lruNode)
	m.head, m.tail = nil, nil
	m.resident = 0
	m.stats = Stats{}
}

// MigrationWireBytes returns the interconnect payload bytes for n migrated
// pages.
func (m *Manager) MigrationWireBytes(n int) int64 {
	return int64(n) * int64(m.cfg.PageBytes)
}

// FaultCPUTime returns the serialized CPU handler time for n migrated pages.
func (m *Manager) FaultCPUTime(n int) time.Duration {
	return time.Duration(float64(n) * m.cfg.FaultCPUSeconds * float64(time.Second))
}

// --- intrusive LRU list plumbing ---

func (m *Manager) pushFront(n *lruNode) {
	n.prev = nil
	n.next = m.head
	if m.head != nil {
		m.head.prev = n
	}
	m.head = n
	if m.tail == nil {
		m.tail = n
	}
}

func (m *Manager) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		m.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		m.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (m *Manager) moveToFront(n *lruNode) {
	if m.head == n {
		return
	}
	m.unlink(n)
	m.pushFront(n)
}
