package uvm

import (
	"math/rand"
	"testing"

	"repro/internal/memsys"
)

// noPrefetch returns a config with block prefetching disabled, for tests
// that exercise single-page mechanics.
func noPrefetch(capacity int) Config {
	cfg := DefaultConfig(capacity)
	cfg.BlockPages = 1
	return cfg
}

func newTestBuffer(t *testing.T, pages int) *memsys.Buffer {
	t.Helper()
	a := memsys.NewArena(0, 0)
	return a.MustAlloc("uvm", memsys.SpaceUVM, int64(pages*memsys.PageBytes))
}

func TestTouchMigratesOnFirstAccess(t *testing.T) {
	b := newTestBuffer(t, 4)
	m := NewManager(noPrefetch(-1))
	if got := m.Touch(b, 0, 32); got != 1 {
		t.Errorf("first touch migrated %d pages, want 1", got)
	}
	if got := m.Touch(b, 64, 32); got != 0 {
		t.Errorf("same-page touch migrated %d pages, want 0", got)
	}
	st := m.Stats()
	if st.Migrations != 1 || st.Faults != 1 {
		t.Errorf("stats = %+v, want 1 migration/fault", st)
	}
	if st.HBMHits != 1 {
		t.Errorf("HBMHits = %d, want 1", st.HBMHits)
	}
	if st.HostBytesMoved != uint64(memsys.PageBytes) {
		t.Errorf("HostBytesMoved = %d, want %d", st.HostBytesMoved, memsys.PageBytes)
	}
	if !b.PageResident(0) {
		t.Errorf("page 0 should be resident")
	}
}

func TestTouchSpanningPages(t *testing.T) {
	b := newTestBuffer(t, 4)
	m := NewManager(noPrefetch(-1))
	// Access crossing a page boundary: offset 4090, 32 bytes -> pages 0,1.
	if got := m.Touch(b, 4090, 32); got != 2 {
		t.Errorf("boundary-crossing touch migrated %d pages, want 2", got)
	}
	if !b.PageResident(0) || !b.PageResident(1) {
		t.Errorf("both overlapped pages should be resident")
	}
}

func TestTouchZeroSize(t *testing.T) {
	b := newTestBuffer(t, 1)
	m := NewManager(noPrefetch(-1))
	if got := m.Touch(b, 0, 0); got != 0 {
		t.Errorf("zero-size touch migrated %d pages", got)
	}
	if m.Stats().Faults != 0 {
		t.Errorf("zero-size touch should not fault")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := newTestBuffer(t, 4)
	m := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: 2})
	touchPage := func(p int) int { return m.Touch(b, int64(p*memsys.PageBytes), 8) }

	touchPage(0)
	touchPage(1)
	touchPage(0) // refresh page 0; page 1 is now LRU
	if got := touchPage(2); got != 1 {
		t.Fatalf("page 2 touch migrated %d, want 1", got)
	}
	if b.PageResident(1) {
		t.Errorf("page 1 (LRU) should have been evicted")
	}
	if !b.PageResident(0) || !b.PageResident(2) {
		t.Errorf("pages 0 and 2 should be resident")
	}
	if m.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", m.Stats().Evictions)
	}
	if m.Resident() != 2 {
		t.Errorf("Resident = %d, want 2", m.Resident())
	}
}

func TestThrashing(t *testing.T) {
	// Working set of 8 pages with capacity 2: round-robin touches must
	// migrate every time (the UVM thrash the paper describes in §2.2).
	b := newTestBuffer(t, 8)
	m := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: 2})
	for round := 0; round < 3; round++ {
		for p := 0; p < 8; p++ {
			if got := m.Touch(b, int64(p*memsys.PageBytes), 8); got != 1 {
				t.Fatalf("round %d page %d: migrated %d, want 1 (thrash)", round, p, got)
			}
		}
	}
	st := m.Stats()
	if st.Migrations != 24 {
		t.Errorf("Migrations = %d, want 24", st.Migrations)
	}
	if st.HBMHits != 0 {
		t.Errorf("HBMHits = %d, want 0 under thrash", st.HBMHits)
	}
}

func TestZeroCapacityBounces(t *testing.T) {
	b := newTestBuffer(t, 2)
	m := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: 0})
	for i := 0; i < 5; i++ {
		if got := m.Touch(b, 0, 8); got != 1 {
			t.Fatalf("touch %d migrated %d, want 1 (bounce)", i, got)
		}
	}
	st := m.Stats()
	if st.Migrations != 5 || st.Evictions != 5 {
		t.Errorf("stats = %+v, want 5 migrations and evictions", st)
	}
	if m.Resident() != 0 {
		t.Errorf("Resident = %d, want 0", m.Resident())
	}
	if b.PageResident(0) {
		t.Errorf("page should never stay resident at zero capacity")
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	b := newTestBuffer(t, 100)
	m := NewManager(noPrefetch(-1))
	for p := 0; p < 100; p++ {
		m.Touch(b, int64(p*memsys.PageBytes), 8)
	}
	if m.Resident() != 100 {
		t.Errorf("Resident = %d, want 100", m.Resident())
	}
	if m.Stats().Evictions != 0 {
		t.Errorf("unlimited capacity should never evict")
	}
}

func TestReset(t *testing.T) {
	b := newTestBuffer(t, 4)
	m := NewManager(noPrefetch(-1))
	m.Touch(b, 0, 8)
	m.Touch(b, memsys.PageBytes, 8)
	m.Reset()
	if m.Resident() != 0 {
		t.Errorf("Resident after Reset = %d", m.Resident())
	}
	if m.Stats().Migrations != 0 {
		t.Errorf("stats not cleared by Reset")
	}
	if b.PageResident(0) || b.PageResident(1) {
		t.Errorf("buffer residency not cleared by Reset")
	}
	// Pages fault again after reset.
	if got := m.Touch(b, 0, 8); got != 1 {
		t.Errorf("post-reset touch migrated %d, want 1", got)
	}
}

func TestCostHelpers(t *testing.T) {
	m := NewManager(noPrefetch(-1))
	if got := m.MigrationWireBytes(3); got != 3*memsys.PageBytes {
		t.Errorf("MigrationWireBytes(3) = %d", got)
	}
	cpu := m.FaultCPUTime(10)
	if cpu <= 0 {
		t.Errorf("FaultCPUTime should be positive, got %v", cpu)
	}
	if got := m.FaultCPUTime(0); got != 0 {
		t.Errorf("FaultCPUTime(0) = %v, want 0", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Faults: 1, Migrations: 2, Evictions: 3, HostBytesMoved: 4, HBMHits: 5}
	b := Stats{Faults: 10, Migrations: 20, Evictions: 30, HostBytesMoved: 40, HBMHits: 50}
	a.Add(b)
	if a.Faults != 11 || a.Migrations != 22 || a.Evictions != 33 ||
		a.HostBytesMoved != 44 || a.HBMHits != 55 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
}

func TestDefaultConfigCalibration(t *testing.T) {
	cfg := DefaultConfig(100)
	if cfg.PageBytes != 4096 {
		t.Errorf("PageBytes = %d, want 4096", cfg.PageBytes)
	}
	// Calibration anchor: streaming UVM bandwidth should land near the
	// paper's ~9.1 GB/s on PCIe 3.0. 4096B / (4096B/12.3GB/s + cpu).
	wire := 4096.0 / 12.34e9
	bw := 4096.0 / (wire + cfg.FaultCPUSeconds)
	if bw < 8.6e9 || bw > 9.6e9 {
		t.Errorf("streaming UVM bandwidth = %.2f GB/s, want ~9.1", bw/1e9)
	}
}

// Invariant: resident count never exceeds capacity; migrations - evictions
// equals residency; residency map matches buffer page flags.
func TestLRUInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pages := 32
	b := newTestBuffer(t, pages)
	for _, capacity := range []int{1, 2, 7, 16, 100} {
		m := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: capacity})
		for i := 0; i < 2000; i++ {
			off := rng.Int63n(int64(pages*memsys.PageBytes) - 64)
			m.Touch(b, off, 1+rng.Intn(64))
			if capacity > 0 && m.Resident() > capacity {
				t.Fatalf("capacity %d exceeded: resident=%d", capacity, m.Resident())
			}
			st := m.Stats()
			if st.Migrations-st.Evictions != uint64(m.Resident()) {
				t.Fatalf("migrations-evictions=%d != resident=%d",
					st.Migrations-st.Evictions, m.Resident())
			}
		}
		// Residency flags agree with the manager's view.
		flagged := 0
		for p := 0; p < pages; p++ {
			if b.PageResident(p) {
				flagged++
			}
		}
		if flagged != m.Resident() {
			t.Fatalf("capacity %d: buffer flags %d != resident %d", capacity, flagged, m.Resident())
		}
		m.Reset()
	}
}

func TestBlockPrefetch(t *testing.T) {
	b := newTestBuffer(t, 64)
	cfg := DefaultConfig(-1)
	cfg.BlockPages = 16
	m := NewManager(cfg)
	// Touching one byte in page 3 migrates its whole aligned 16-page block.
	if got := m.Touch(b, 3*memsys.PageBytes, 8); got != 16 {
		t.Fatalf("block fault migrated %d pages, want 16", got)
	}
	for p := 0; p < 16; p++ {
		if !b.PageResident(p) {
			t.Errorf("page %d of the block should be resident", p)
		}
	}
	if b.PageResident(16) {
		t.Errorf("page outside the block should not be resident")
	}
	// Any further touch within the block is free.
	if got := m.Touch(b, 15*memsys.PageBytes, 8); got != 0 {
		t.Errorf("in-block touch migrated %d pages, want 0", got)
	}
	// A touch in the next block pulls exactly that block.
	if got := m.Touch(b, 20*memsys.PageBytes, 8); got != 16 {
		t.Errorf("next-block touch migrated %d pages, want 16", got)
	}
}

func TestBlockPrefetchClippedAtBufferEnd(t *testing.T) {
	b := newTestBuffer(t, 20) // last block has only 4 pages
	cfg := DefaultConfig(-1)
	cfg.BlockPages = 16
	m := NewManager(cfg)
	if got := m.Touch(b, 17*memsys.PageBytes, 8); got != 4 {
		t.Errorf("clipped block migrated %d pages, want 4", got)
	}
}

func TestBlockPrefetchSkipsResident(t *testing.T) {
	b := newTestBuffer(t, 32)
	m := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: -1,
		FaultCPUSeconds: 117e-9, BlockPages: 4})
	m.Touch(b, 1*memsys.PageBytes, 8) // pages 0-3 via block fault
	if got := m.Touch(b, 2*memsys.PageBytes, 8); got != 0 {
		t.Errorf("resident block re-migrated %d pages", got)
	}
	if m.Resident() != 4 {
		t.Errorf("resident = %d, want 4", m.Resident())
	}
	// Under capacity pressure the block fill itself evicts: a 4-page block
	// into a 3-page budget leaves 3 resident.
	m2 := NewManager(Config{PageBytes: memsys.PageBytes, CapacityPages: 3,
		FaultCPUSeconds: 117e-9, BlockPages: 4})
	if got := m2.Touch(b, 0, 8); got != 4 {
		t.Fatalf("block fault migrated %d, want 4", got)
	}
	if m2.Resident() != 3 {
		t.Fatalf("resident = %d, want 3", m2.Resident())
	}
}

// TestBlockPrefetchStreamingNoWaste: a sequential scan with prefetching
// moves each page exactly once — block migration does not change the
// streaming calibration.
func TestBlockPrefetchStreamingNoWaste(t *testing.T) {
	pages := 64
	b := newTestBuffer(t, pages)
	cfg := DefaultConfig(-1)
	m := NewManager(cfg)
	total := 0
	for p := 0; p < pages; p++ {
		total += m.Touch(b, int64(p*memsys.PageBytes), 8)
	}
	if total != pages {
		t.Errorf("streaming migrated %d pages, want %d", total, pages)
	}
}

// TestDefaultConfigDelegation pins the deprecated wrapper: DefaultConfig(c)
// is exactly ConfigWithPaging(c, false).
func TestDefaultConfigDelegation(t *testing.T) {
	for _, c := range []int{-1, 0, 7, 4096} {
		if got, want := DefaultConfig(c), ConfigWithPaging(c, false); got != want {
			t.Errorf("DefaultConfig(%d) = %+v, want %+v", c, got, want)
		}
	}
	g := ConfigWithPaging(16, true)
	if !g.GPUDriven {
		t.Error("ConfigWithPaging(_, true) should select GPU-driven paging")
	}
	c := ConfigWithPaging(16, false)
	g.GPUDriven = false
	if g != c {
		t.Error("paging selector must be the only difference between the models")
	}
}
