package service

import "repro/internal/telemetry"

// Request outcomes, the label values of emogi_serve_requests_total.
const (
	outcomeOK       = "ok"       // admitted, ran to the fixed point
	outcomeCached   = "cached"   // answered from the result cache, never queued
	outcomeCanceled = "canceled" // stopped through the request context
	outcomeRejected = "rejected" // shed at admission (ErrOverloaded / ErrStopped)
	outcomeError    = "error"    // admitted but failed (bad source, wrong graph kind, ...)
)

// metrics is the service's per-request instrumentation, exported through
// the shared telemetry registry. Every series is created — at zero — when
// the service starts, so scrapes see the full schema deterministically
// instead of only the outcomes that happened to occur first.
type metrics struct {
	requests  map[string]*telemetry.Counter // by outcome
	queueWait *telemetry.Histogram          // admission -> worker pickup (wall seconds)
	runTime   *telemetry.Histogram          // worker pickup -> completion (wall seconds)
	cacheHits *telemetry.Counter
	cacheMiss *telemetry.Counter
	inflight  *telemetry.Gauge // requests a worker is currently executing
	queued    *telemetry.Gauge // admitted requests waiting for a worker
	datasets  *telemetry.Gauge // graphs loaded on the service

	// Fault-injection and recovery series. faults is synced from the
	// injector's own tallies (see Service.syncFaultCounters), so the
	// exported totals are exactly the injector's counts by kind.
	retries  *telemetry.Counter            // re-attempts after transient failures
	degraded *telemetry.Counter            // runs answered on the UVM fallback transport
	faults   map[string]*telemetry.Counter // injected faults by kind

	// Request-coalescing series (see batch.go).
	batchSize      *telemetry.Histogram // lanes per dispatched batch
	batchedRuns    *telemetry.Counter   // batched engine runs completed
	edgeScansSaved *telemetry.Counter   // edge reads amortized away by sharing

	// stage holds the per-lifecycle-stage latency histograms
	// (emogi_request_stage_seconds by stage label). Every recorded span
	// lands in exactly one of these, so a stage's histogram count equals
	// the number of spans requests recorded for it — batched requests
	// observe the shared stages once per waiter.
	stage map[string]*telemetry.Histogram
}

// Fault kinds, the label values of emogi_faults_injected_total.
const (
	faultKindRead  = "read"  // transient zero-copy read completion failures
	faultKindSpike = "spike" // injected latency spikes
	faultKindAlloc = "alloc" // injected allocation failures
)

// wallBounds covers host wall-clock latencies from sub-millisecond cache
// and queue hops to multi-second traversals.
var wallBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchBounds covers coalesced batch widths from a lone request up past
// the default BatchMax.
var batchBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{
		requests: map[string]*telemetry.Counter{},
		queueWait: reg.Histogram("emogi_serve_queue_wait_seconds",
			"Wall time requests spent in the admission queue.", wallBounds, nil),
		runTime: reg.Histogram("emogi_serve_run_seconds",
			"Wall time workers spent executing traversals.", wallBounds, nil),
		cacheHits: reg.Counter("emogi_serve_cache_hits_total",
			"Requests answered from the result cache.", nil),
		cacheMiss: reg.Counter("emogi_serve_cache_misses_total",
			"Requests that missed the result cache.", nil),
		inflight: reg.Gauge("emogi_serve_inflight",
			"Requests currently executing on the device.", nil),
		queued: reg.Gauge("emogi_serve_queued",
			"Admitted requests waiting for a worker.", nil),
		datasets: reg.Gauge("emogi_serve_datasets",
			"Graphs loaded on the service.", nil),
	}
	for _, o := range []string{outcomeOK, outcomeCached, outcomeCanceled, outcomeRejected, outcomeError} {
		m.requests[o] = reg.Counter("emogi_serve_requests_total",
			"Traversal requests by outcome.", telemetry.Labels{"outcome": o})
	}
	m.retries = reg.Counter("emogi_retries_total",
		"Traversal attempts re-run after a transient injected fault.", nil)
	m.degraded = reg.Counter("emogi_degraded_runs_total",
		"Requests answered on the UVM fallback transport after repeated zero-copy faults.", nil)
	m.faults = map[string]*telemetry.Counter{}
	for _, k := range []string{faultKindRead, faultKindSpike, faultKindAlloc} {
		m.faults[k] = reg.Counter("emogi_faults_injected_total",
			"Faults injected by the fault-injection layer, by kind.", telemetry.Labels{"kind": k})
	}
	m.batchSize = reg.Histogram("emogi_batch_size",
		"Distinct sources per dispatched coalesced batch.", batchBounds, nil)
	m.batchedRuns = reg.Counter("emogi_batched_runs_total",
		"Batched engine runs completed (lanes sharing one edge sweep).", nil)
	m.edgeScansSaved = reg.Counter("emogi_edge_scans_saved_total",
		"Edge reads avoided by sharing frontier sweeps across batched lanes.", nil)
	m.stage = map[string]*telemetry.Histogram{}
	for _, st := range telemetry.Stages() {
		m.stage[st] = reg.Histogram("emogi_request_stage_seconds",
			"Wall time requests spent per lifecycle stage.", wallBounds,
			telemetry.Labels{"stage": st})
	}
	return m
}

func (m *metrics) outcome(o string) { m.requests[o].Inc() }

// stageObserve folds one lifecycle-stage duration into its histogram.
func (m *metrics) stageObserve(stage string, seconds float64) {
	if h := m.stage[stage]; h != nil {
		h.Observe(seconds)
	}
}
