// Package service is the concurrent traversal service: it owns one
// simulated System plus a pool of loaded graphs and executes many
// traversal requests safely over them. The pieces are exactly what a
// production serving layer needs on top of the frontier engine:
//
//   - Admission control: a bounded queue feeding a fixed worker pool.
//     When the queue is full the request is rejected immediately with
//     ErrOverloaded — load is shed at the door instead of accumulating
//     as unbounded goroutines (requests block only after admission).
//   - Cancellation: each request carries a context; a canceled or
//     expired request stops at the engine's next round boundary with an
//     error matching emogi.ErrCanceled (the cancellation contract is the
//     engine's — see internal/core/cancel.go).
//   - Result cache: the simulator is deterministic, so (dataset, algo,
//     src, variant, transport) fully determines a cold-cache Result; a
//     small LRU answers repeats without touching the device.
//   - Drain-then-stop shutdown: Close stops admission, lets admitted
//     requests finish, then unloads the graphs.
//
// Every stage is instrumented through the shared telemetry registry
// (queue wait, run time, cache hits/misses, per-outcome request counts).
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// Typed admission errors.
var (
	// ErrOverloaded is returned when the admission queue is full. The
	// caller should back off and retry; nothing was executed.
	ErrOverloaded = errors.New("service: overloaded (admission queue full)")
	// ErrStopped is returned for requests arriving after Close began.
	ErrStopped = errors.New("service: stopped")
)

// UnknownDatasetError reports a Request.Dataset the service has not
// loaded; its message lists the loaded names.
type UnknownDatasetError struct {
	Name string
	Have []string
}

func (e *UnknownDatasetError) Error() string {
	if len(e.Have) == 0 {
		return fmt.Sprintf("service: unknown dataset %q (no datasets loaded)", e.Name)
	}
	return fmt.Sprintf("service: unknown dataset %q (loaded: %s)",
		e.Name, strings.Join(e.Have, ", "))
}

// Config sizes the service.
type Config struct {
	// Concurrency is the number of worker goroutines executing
	// traversals (default 2). The simulated device serializes runs, so
	// workers beyond 1 mainly bound how many requests can be mid-flight;
	// real deployments with per-stream devices raise it.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// (default 16). Requests beyond Concurrency+QueueDepth in flight are
	// rejected with ErrOverloaded.
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity: 0 selects the
	// default (128), negative disables caching.
	CacheEntries int
	// Metrics, when non-nil, receives the service's series; nil creates
	// a private registry (reachable via Registry, e.g. for tests).
	Metrics *telemetry.Registry
}

// Request names one traversal over a loaded dataset.
type Request struct {
	// Dataset is the name the graph was loaded under (see AddGraph).
	Dataset string
	// Algo is the algorithm registry name ("bfs", "sssp", ...; see
	// emogi.Algorithms).
	Algo string
	// Src is the source vertex (ignored by source-free algorithms).
	Src int
	// Variant selects the kernel access pattern (ignored by
	// fixed-variant specialty kernels).
	Variant emogi.Variant
}

// DatasetInfo describes one loaded graph.
type DatasetInfo struct {
	Name      string
	Vertices  int
	Edges     int64
	Transport string
	Directed  bool
	Weighted  bool
}

// task is one admitted request moving through the queue.
type task struct {
	ctx      context.Context
	req      Request
	dg       *emogi.DeviceGraph
	key      cacheKey
	cachable bool
	enqueued time.Time
	done     chan taskResult // buffered: workers never block on delivery
}

type taskResult struct {
	res *emogi.Result
	err error
}

// Service executes traversal requests over one System.
type Service struct {
	sys   *emogi.System
	cfg   Config
	reg   *telemetry.Registry
	met   *metrics
	cache *resultCache

	queue    chan *task
	wg       sync.WaitGroup
	inflight atomic.Int64

	mu     sync.Mutex
	graphs map[string]*emogi.DeviceGraph
	closed bool
}

// New starts a service over sys with cfg's pool sizes. The caller hands
// the System over: the service serializes all device access, and Close
// unloads the graphs it loaded.
func New(sys *emogi.System, cfg Config) *Service {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	cacheEntries := cfg.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = 128
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Service{
		sys:    sys,
		cfg:    cfg,
		reg:    reg,
		met:    newMetrics(reg),
		queue:  make(chan *task, cfg.QueueDepth),
		graphs: make(map[string]*emogi.DeviceGraph),
	}
	if cacheEntries > 0 {
		s.cache = newResultCache(cacheEntries)
	}
	s.wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the telemetry registry the service reports into.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// AddGraph loads g onto the service's system under name. Load options
// (transport, element width) pass through to System.Load.
func (s *Service) AddGraph(name string, g *emogi.Graph, opts ...emogi.LoadOption) error {
	if name == "" {
		return fmt.Errorf("service: AddGraph requires a dataset name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStopped
	}
	if _, dup := s.graphs[name]; dup {
		return fmt.Errorf("service: dataset %q already loaded", name)
	}
	dg, err := s.sys.Load(g, opts...)
	if err != nil {
		return err
	}
	s.graphs[name] = dg
	s.met.datasets.Set(float64(len(s.graphs)))
	return nil
}

// Datasets describes the loaded graphs sorted by name.
func (s *Service) Datasets() []DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, len(s.graphs))
	for name, dg := range s.graphs {
		out = append(out, DatasetInfo{
			Name:      name,
			Vertices:  dg.Graph.NumVertices(),
			Edges:     dg.Graph.NumEdges(),
			Transport: dg.Transport.String(),
			Directed:  dg.Graph.Directed,
			Weighted:  dg.Graph.Weights != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetNames returns the loaded names sorted, for error messages.
func (s *Service) datasetNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Do executes one request: cache lookup, bounded admission, then a
// worker runs it on the device. It blocks until the request completes,
// is canceled, or is rejected. Safe for concurrent use.
func (s *Service) Do(ctx context.Context, req Request) (*emogi.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.outcome(outcomeRejected)
		return nil, ErrStopped
	}
	dg := s.graphs[req.Dataset]
	s.mu.Unlock()
	if dg == nil {
		s.met.outcome(outcomeError)
		return nil, &UnknownDatasetError{Name: req.Dataset, Have: s.datasetNames()}
	}
	algo := core.LookupAlgorithm(req.Algo)
	if algo == nil {
		s.met.outcome(outcomeError)
		return nil, &core.UnknownAlgorithmError{Name: req.Algo}
	}

	// Normalize the cache key so equivalent requests share an entry.
	key := cacheKey{
		dataset:   req.Dataset,
		algo:      algo.Name,
		src:       req.Src,
		variant:   req.Variant,
		transport: dg.Transport,
	}
	if algo.NoSource {
		key.src = -1
	}
	if algo.FixedVariant {
		key.variant = 0
	}
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			s.met.cacheHits.Inc()
			s.met.outcome(outcomeCached)
			return res, nil
		}
		s.met.cacheMiss.Inc()
	}

	t := &task{
		ctx:      ctx,
		req:      req,
		dg:       dg,
		key:      key,
		cachable: s.cache != nil,
		enqueued: time.Now(),
		done:     make(chan taskResult, 1),
	}
	// Admission: the closed check and the send share the mutex so Close
	// cannot close the queue between them.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.outcome(outcomeRejected)
		return nil, ErrStopped
	}
	select {
	case s.queue <- t:
		s.met.queued.Set(float64(len(s.queue)))
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.met.outcome(outcomeRejected)
		return nil, ErrOverloaded
	}

	// Admitted: the worker always delivers, including for canceled
	// requests (the engine observes ctx at the next round boundary), so
	// waiting here cannot hang on an abandoned context.
	r := <-t.done
	return r.res, r.err
}

// worker executes admitted tasks until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.met.queued.Set(float64(len(s.queue)))
		s.met.queueWait.Observe(time.Since(t.enqueued).Seconds())
		s.met.inflight.Set(float64(s.inflight.Add(1)))
		start := time.Now()
		// Cold caches make every run independent of queue order: UVM
		// residency is device-global state the LRU cache key could not
		// otherwise account for.
		res, err := s.sys.Do(t.ctx, emogi.Request{
			Graph:   t.dg,
			Algo:    t.req.Algo,
			Src:     t.req.Src,
			Variant: t.req.Variant,
			Cold:    true,
		})
		s.met.runTime.Observe(time.Since(start).Seconds())
		s.met.inflight.Set(float64(s.inflight.Add(-1)))
		switch {
		case err == nil:
			s.met.outcome(outcomeOK)
			if t.cachable {
				s.cache.put(t.key, res)
			}
		case errors.Is(err, emogi.ErrCanceled):
			s.met.outcome(outcomeCanceled)
		default:
			s.met.outcome(outcomeError)
		}
		t.done <- taskResult{res: res, err: err}
	}
}

// Close drains and stops the service: new requests are rejected with
// ErrStopped, admitted requests run to completion (or cancellation),
// the workers exit, and the loaded graphs are unloaded. Close is
// idempotent and safe to call concurrently with Do.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// No sender can reach the queue after closed is set (the admission
	// send happens under the mutex), so closing here is race-free.
	close(s.queue)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, dg := range s.graphs {
		s.sys.Unload(dg)
		delete(s.graphs, name)
	}
	s.met.datasets.Set(0)
}
