// Package service is the concurrent traversal service: it owns one
// simulated System plus a pool of loaded graphs and executes many
// traversal requests safely over them. The pieces are exactly what a
// production serving layer needs on top of the frontier engine:
//
//   - Admission control: a bounded queue feeding a fixed worker pool.
//     When the queue is full the request is rejected immediately with
//     ErrOverloaded — load is shed at the door instead of accumulating
//     as unbounded goroutines (requests block only after admission).
//   - Cancellation: each request carries a context; a canceled or
//     expired request stops at the engine's next round boundary with an
//     error matching emogi.ErrCanceled (the cancellation contract is the
//     engine's — see internal/core/cancel.go).
//   - Result cache: the simulator is deterministic, so (dataset, algo,
//     src, variant, transport) fully determines a cold-cache Result; a
//     small LRU answers repeats without touching the device.
//   - Drain-then-stop shutdown: Close stops admission, lets admitted
//     requests finish, then unloads the graphs.
//
// Every stage is instrumented through the shared telemetry registry
// (queue wait, run time, cache hits/misses, per-outcome request counts).
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	emogi "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Typed admission errors.
var (
	// ErrOverloaded is returned when the admission queue is full. The
	// caller should back off and retry; nothing was executed.
	ErrOverloaded = errors.New("service: overloaded (admission queue full)")
	// ErrStopped is returned for requests arriving after Close began.
	ErrStopped = errors.New("service: stopped")
)

// UnknownDatasetError reports a Request.Dataset the service has not
// loaded; its message lists the loaded names.
type UnknownDatasetError struct {
	Name string
	Have []string
}

func (e *UnknownDatasetError) Error() string {
	if len(e.Have) == 0 {
		return fmt.Sprintf("service: unknown dataset %q (no datasets loaded)", e.Name)
	}
	return fmt.Sprintf("service: unknown dataset %q (loaded: %s)",
		e.Name, strings.Join(e.Have, ", "))
}

// Config sizes the service.
type Config struct {
	// Concurrency is the number of worker goroutines executing
	// traversals (default 2). The simulated device serializes runs, so
	// workers beyond 1 mainly bound how many requests can be mid-flight;
	// real deployments with per-stream devices raise it.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// (default 16). Requests beyond Concurrency+QueueDepth in flight are
	// rejected with ErrOverloaded.
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity: 0 selects the
	// default (128), negative disables caching.
	CacheEntries int
	// Metrics, when non-nil, receives the service's series; nil creates
	// a private registry (reachable via Registry, e.g. for tests).
	Metrics *telemetry.Registry

	// Fault is the injector whose tallies the service exports as
	// emogi_faults_injected_total (injection itself is wired into the
	// System via emogi.SystemConfig.Faults). Nil selects the System's own
	// injector; with no injector anywhere the fault series stay zero.
	Fault fault.Injector
	// RetryAttempts bounds the total attempts per admitted request,
	// including the first (default 4; 1 disables retries). Only failures
	// matching emogi.ErrTransient are retried.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry (default 2ms).
	// Subsequent retries double it (capped at 64x) and add deterministic
	// jitter derived from the request key, honoring the request context
	// during the wait.
	RetryBackoff time.Duration
	// DegradeAfter is the number of consecutive transient zero-copy
	// failures after which the request is rerouted onto the static-uvm
	// transport policy (default 3) — a policy transition over the same
	// loaded graph, not a reload. UVM traffic is bulk page migrations,
	// which the per-request link faults cannot touch, so a degraded
	// attempt completes where zero-copy kept faulting; the Result is
	// marked Degraded. Requires spare attempts: degradation only happens
	// while the retry budget lasts.
	DegradeAfter int

	// BatchWindow, when positive, enables request coalescing: cache-
	// missing requests for the same (dataset, algo, variant, transport)
	// arriving within the window are dispatched as one batched engine
	// run sharing every edge scan (see batch.go). Zero disables
	// coalescing; every request runs alone.
	BatchWindow time.Duration
	// BatchMax caps how many distinct sources one batch carries (default
	// 32): a full batch seals and dispatches immediately instead of
	// waiting out the window.
	BatchMax int

	// Recorder, when non-nil, receives one flight-recorder record per
	// completed request (every outcome, cache hits and rejections
	// included). Nil disables recording at zero cost.
	Recorder *telemetry.Recorder
	// Health, when non-nil, receives one observation per executed request
	// and is flipped to draining when Close begins, so /healthz can report
	// honestly. Nil disables health tracking.
	Health *telemetry.Health
	// Tracer, when non-nil, receives each completed request as its own
	// track in the Chrome-trace timeline, alongside the device tracks the
	// Collector emits.
	Tracer *telemetry.Tracer
}

// Request names one traversal over a loaded dataset.
type Request struct {
	// Dataset is the name the graph was loaded under (see AddGraph).
	Dataset string
	// Algo is the algorithm registry name ("bfs", "sssp", ...; see
	// emogi.Algorithms).
	Algo string
	// Src is the source vertex (ignored by source-free algorithms).
	Src int
	// Variant selects the kernel access pattern (ignored by
	// fixed-variant specialty kernels).
	Variant emogi.Variant
	// Transport, when set, names the transport policy this request runs
	// under ("static-zc", "static-uvm", "adaptive"; the v1 spellings
	// "zerocopy", "zc", "emogi", "uvm" are aliases), overriding the
	// dataset's loaded policy for this request only. Unknown names are
	// rejected before admission. Empty uses the dataset's policy.
	Transport string
	// TraceID, when set, identifies the request across the lifecycle
	// trace, the flight recorder, and logs (serving layers pass an
	// inbound X-Request-ID through). Empty generates one. It never enters
	// the cache key: equivalent requests share an entry regardless of ID.
	TraceID string
}

// DatasetInfo describes one loaded graph.
type DatasetInfo struct {
	Name      string
	Vertices  int
	Edges     int64
	Transport string
	// Policy is the registry name of the transport policy the dataset was
	// loaded under ("static-zc", "static-uvm", "adaptive").
	Policy   string
	Directed bool
	Weighted bool
}

// task is one admitted unit moving through the queue: a single request,
// or (batch != nil) a sealed batch of coalesced requests occupying one
// admission slot together.
type task struct {
	ctx      context.Context
	req      Request
	dg       *emogi.DeviceGraph
	pol      emogi.TransportPolicy // per-request policy override, nil = dataset's
	key      cacheKey
	cachable bool
	batch    *pendingBatch
	enqueued time.Time
	done     chan taskResult // buffered: workers never block on delivery

	// trace collects the task's lifecycle spans: the request's own trace
	// for single tasks, a shared batch-scoped trace for batch tasks
	// (runBatch replays it into every waiter). The executing worker owns
	// the fields below until it delivers on done; the channel receive
	// orders the caller's reads after them.
	trace    *telemetry.RequestTrace
	attempts int    // execution attempts made (retries = attempts - 1)
	faults   uint64 // injected read faults absorbed by failed attempts
}

type taskResult struct {
	res *emogi.Result
	err error
	// Batch deliveries carry the shared run's recovery tallies so each
	// waiter's finishRequest can report them (single requests read them
	// off their own task instead).
	executed bool
	retries  int
	faults   uint64
	lanes    int
	batched  bool
}

// Service executes traversal requests over one System.
type Service struct {
	sys     *emogi.System
	cfg     Config
	reg     *telemetry.Registry
	met     *metrics
	cache   *resultCache
	devName string // health/identity name of the system's device

	queue    chan *task
	wg       sync.WaitGroup
	inflight atomic.Int64

	// runEWMA holds the float64 bits of an exponentially weighted moving
	// average of run wall time in seconds, feeding RetryAfterHint.
	runEWMA atomic.Uint64

	// faultMu guards lastFaults, the injector tally already exported to
	// the telemetry counters; syncFaultCounters adds only the delta, so
	// the exported series exactly track the injector's own counts.
	faultMu    sync.Mutex
	lastFaults fault.Counts

	// bmu guards pending, the open (unsealed) coalescing batches by key.
	bmu     sync.Mutex
	pending map[batchKey]*pendingBatch

	mu     sync.Mutex
	graphs map[string]*emogi.DeviceGraph
	closed bool
}

// New starts a service over sys with cfg's pool sizes. The caller hands
// the System over: the service serializes all device access, and Close
// unloads the graphs it loaded.
func New(sys *emogi.System, cfg Config) *Service {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	cacheEntries := cfg.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = 128
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = 3
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 32
	}
	if cfg.Fault == nil {
		cfg.Fault = sys.Faults()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Service{
		sys:     sys,
		cfg:     cfg,
		reg:     reg,
		met:     newMetrics(reg),
		devName: sys.Config().GPU.Name,
		queue:   make(chan *task, cfg.QueueDepth),
		graphs:  make(map[string]*emogi.DeviceGraph),
		pending: make(map[batchKey]*pendingBatch),
	}
	// List the device healthy before traffic, so /healthz names it from
	// the first scrape.
	cfg.Health.RegisterDevice(s.devName)
	if cacheEntries > 0 {
		// cacheEntries is positive by construction here; a constructor
		// error would be a programming bug, not a config value.
		cache, err := newResultCache(cacheEntries)
		if err != nil {
			panic(err)
		}
		s.cache = cache
	}
	s.wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the telemetry registry the service reports into.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// AddGraph loads g onto the service's system under name. Load options
// (transport, element width) pass through to System.Load.
func (s *Service) AddGraph(name string, g *emogi.Graph, opts ...emogi.LoadOption) error {
	if name == "" {
		return fmt.Errorf("service: AddGraph requires a dataset name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStopped
	}
	if _, dup := s.graphs[name]; dup {
		return fmt.Errorf("service: dataset %q already loaded", name)
	}
	dg, err := s.sys.Load(g, opts...)
	if err != nil {
		return err
	}
	s.graphs[name] = dg
	s.met.datasets.Set(float64(len(s.graphs)))
	return nil
}

// Datasets describes the loaded graphs sorted by name.
func (s *Service) Datasets() []DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, len(s.graphs))
	for name, dg := range s.graphs {
		out = append(out, DatasetInfo{
			Name:      name,
			Vertices:  dg.Graph.NumVertices(),
			Edges:     dg.Graph.NumEdges(),
			Transport: dg.Transport.String(),
			Policy:    dg.PolicyName(),
			Directed:  dg.Graph.Directed,
			Weighted:  dg.Graph.Weights != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// datasetNames returns the loaded names sorted, for error messages.
func (s *Service) datasetNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Do executes one request: cache lookup, bounded admission, then a
// worker runs it on the device. It blocks until the request completes,
// is canceled, or is rejected. Safe for concurrent use.
//
// Every request is traced end to end: its TraceID (generated when empty)
// and lifecycle spans flow into the flight recorder, the per-stage
// histograms, and — for executed runs — the device health window.
func (s *Service) Do(ctx context.Context, req Request) (*emogi.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	id := req.TraceID
	if id == "" {
		id = telemetry.NewTraceID()
	}
	rt := telemetry.NewRequestTrace(id)
	admitStart := rt.Begin()

	// fail resolves a request that never reached a worker: the admission
	// span covers whatever validation rejected it.
	fail := func(outcome string, err error) (*emogi.Result, error) {
		s.met.outcome(outcome)
		s.observeStage(rt, telemetry.StageAdmission, 0, admitStart, err.Error())
		s.finishRequest(rt, req, requestOutcome{outcome: outcome, err: err})
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fail(outcomeRejected, ErrStopped)
	}
	dg := s.graphs[req.Dataset]
	s.mu.Unlock()
	if dg == nil {
		return fail(outcomeError, &UnknownDatasetError{Name: req.Dataset, Have: s.datasetNames()})
	}
	algo := core.LookupAlgorithm(req.Algo)
	if algo == nil {
		return fail(outcomeError, &core.UnknownAlgorithmError{Name: req.Algo})
	}
	// Resolve the per-request transport-policy override before admission,
	// so unknown names fail fast with the resolver's error.
	var pol emogi.TransportPolicy
	policyName := dg.PolicyName()
	if req.Transport != "" {
		var perr error
		if pol, perr = emogi.PolicyByName(req.Transport); perr != nil {
			return fail(outcomeError, perr)
		}
		policyName = pol.Name()
	}

	// Normalize the cache key so equivalent requests share an entry.
	key := cacheKey{
		dataset: req.Dataset,
		algo:    algo.Name,
		src:     req.Src,
		variant: req.Variant,
		policy:  policyName,
	}
	if algo.NoSource {
		key.src = -1
	}
	if algo.FixedVariant {
		key.variant = 0
	}
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			s.met.cacheHits.Inc()
			s.met.outcome(outcomeCached)
			s.observeStage(rt, telemetry.StageAdmission, 0, admitStart, "cache hit")
			s.finishRequest(rt, req, requestOutcome{outcome: outcomeCached, res: res})
			return res, nil
		}
		s.met.cacheMiss.Inc()
	}
	s.observeStage(rt, telemetry.StageAdmission, 0, admitStart, "")

	// Coalescing: batchable algorithms join the pending batch for their
	// key instead of queueing alone (see batch.go).
	if s.cfg.BatchWindow > 0 && algo.Batch != nil {
		return s.doBatched(ctx, req, dg, pol, key, rt)
	}

	t := &task{
		ctx:      ctx,
		req:      req,
		dg:       dg,
		pol:      pol,
		key:      key,
		cachable: s.cache != nil,
		enqueued: time.Now(),
		done:     make(chan taskResult, 1),
		trace:    rt,
	}
	// Admission: the closed check and the send share the mutex so Close
	// cannot close the queue between them.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.outcome(outcomeRejected)
		s.finishRequest(rt, req, requestOutcome{outcome: outcomeRejected, err: ErrStopped})
		return nil, ErrStopped
	}
	select {
	case s.queue <- t:
		s.met.queued.Set(float64(len(s.queue)))
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.met.outcome(outcomeRejected)
		s.finishRequest(rt, req, requestOutcome{outcome: outcomeRejected, err: ErrOverloaded})
		return nil, ErrOverloaded
	}

	// Admitted: the worker always delivers, including for canceled
	// requests (the engine observes ctx at the next round boundary), so
	// waiting here cannot hang on an abandoned context. The receive
	// orders our reads of the worker-owned task fields.
	r := <-t.done
	s.finishRequest(rt, req, requestOutcome{
		outcome:  outcomeOf(r.err),
		res:      r.res,
		err:      r.err,
		executed: true,
		retries:  t.attempts - 1,
		faults:   t.faults,
	})
	return r.res, r.err
}

// worker executes admitted tasks until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.met.queued.Set(float64(len(s.queue)))
		qd := s.stageSpan(t, telemetry.StageQueue, 0, t.enqueued, "")
		s.met.queueWait.Observe(qd.Seconds())
		if t.batch != nil {
			s.runBatch(t)
			continue
		}
		s.met.inflight.Set(float64(s.inflight.Add(1)))
		start := time.Now()
		res, err := s.execute(t)
		elapsed := time.Since(start)
		s.met.runTime.Observe(elapsed.Seconds())
		s.observeRunTime(elapsed)
		s.met.inflight.Set(float64(s.inflight.Add(-1)))
		switch {
		case err == nil:
			s.met.outcome(outcomeOK)
			// Degraded results ran on a transport the cache key does not
			// name; caching them would poison later healthy hits.
			if t.cachable && !res.Degraded {
				s.cache.put(t.key, res)
			}
		case errors.Is(err, emogi.ErrCanceled):
			s.met.outcome(outcomeCanceled)
		default:
			s.met.outcome(outcomeError)
		}
		t.done <- taskResult{res: res, err: err}
	}
}

// execute runs one admitted task with retry, backoff, and transport
// degradation. Attempts that fail with an error matching
// emogi.ErrTransient (aborted traversals, injected allocation failures)
// are retried after an exponential, jittered backoff until the budget
// (Config.RetryAttempts) runs out; after Config.DegradeAfter consecutive
// transient zero-copy failures the remaining attempts run under the
// static-uvm policy override — a transport-policy transition, not a
// reload: the policy layer rebinds the same pinned edge list to page
// migration, whose bulk traffic the per-request link faults cannot touch
// — and a success is marked Degraded. Every other error — cancellation
// included — returns immediately.
func (s *Service) execute(t *task) (*emogi.Result, error) {
	pol := t.pol
	degraded := false
	consecutive := 0
	var lastErr error
	for attempt := 0; attempt < s.cfg.RetryAttempts; attempt++ {
		t.attempts = attempt + 1
		if attempt > 0 {
			s.met.retries.Inc()
			if err := s.backoff(t, attempt); err != nil {
				return nil, err
			}
		}
		// Cold caches make every run independent of queue order: UVM
		// residency and staged segments are device-global state the LRU
		// cache key could not otherwise account for. The trace rides the
		// context so the collector attributes the run's rounds to this
		// request.
		execStart := time.Now()
		res, err := s.sys.Do(telemetry.WithTrace(t.ctx, t.trace), emogi.Request{
			Graph:   t.dg,
			Algo:    t.req.Algo,
			Src:     t.req.Src,
			Variant: t.req.Variant,
			Cold:    true,
			Policy:  pol,
		})
		s.syncFaultCounters()
		s.stageSpan(t, telemetry.StageExecute, attempt+1, execStart, executeDetail(degraded, err))
		if err == nil {
			if degraded {
				res.Degraded = true
				s.met.degraded.Inc()
			}
			return res, nil
		}
		var te *emogi.TransientError
		if errors.As(err, &te) {
			t.faults += te.Faults
		}
		if !errors.Is(err, emogi.ErrTransient) {
			return nil, err
		}
		lastErr = err
		consecutive++
		if !degraded && consecutive >= s.cfg.DegradeAfter && attempt+1 < s.cfg.RetryAttempts {
			degStart := time.Now()
			pol = emogi.StaticPolicy(emogi.UVM)
			degraded = true
			s.stageSpan(t, telemetry.StageDegrade, attempt+1, degStart, "rerouted onto static-uvm policy")
		}
	}
	return nil, fmt.Errorf("service: retry budget exhausted after %d attempts: %w",
		s.cfg.RetryAttempts, lastErr)
}

// executeDetail annotates one execute span: the transport it ran on and
// how it failed, if it did.
func executeDetail(degraded bool, err error) string {
	d := ""
	if degraded {
		d = "uvm"
	}
	switch {
	case err == nil:
		return d
	case errors.Is(err, emogi.ErrTransient):
		return strings.TrimSpace(d + " transient fault")
	case errors.Is(err, emogi.ErrCanceled):
		return strings.TrimSpace(d + " canceled")
	default:
		return strings.TrimSpace(d + " error")
	}
}

// backoff sleeps before retry number attempt (>= 1), honoring the request
// context: an exponential base delay (doubling per retry, capped at 64x)
// whose upper half is jittered deterministically from the request key and
// attempt number, so identical request streams reproduce identical
// schedules while distinct requests decorrelate.
func (s *Service) backoff(t *task, attempt int) error {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	base := s.cfg.RetryBackoff << uint(shift)
	delay := base/2 + time.Duration(retryJitter(t.key, attempt)%uint64(base/2+1))
	timer := time.NewTimer(delay)
	defer timer.Stop()
	// The backoff span carries the attempt it precedes (1-based, matching
	// the execute span it delays).
	start := time.Now()
	select {
	case <-t.ctx.Done():
		s.stageSpan(t, telemetry.StageBackoff, attempt+1, start, "canceled")
		return &emogi.CanceledError{App: t.req.Algo, Cause: t.ctx.Err()}
	case <-timer.C:
		s.stageSpan(t, telemetry.StageBackoff, attempt+1, start, "")
		return nil
	}
}

// retryJitter hashes the request key and attempt number into the
// deterministic jitter source for backoff.
func retryJitter(k cacheKey, attempt int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.dataset))
	h.Write([]byte{0})
	h.Write([]byte(k.algo))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(k.src)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(int(k.variant))))
	h.Write([]byte{0})
	h.Write([]byte(k.policy))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(attempt)))
	return h.Sum64()
}

// syncFaultCounters folds the injector's tally growth into the telemetry
// counters. Deltas are taken under faultMu, so concurrent workers export
// each injected fault exactly once and the series totals always equal the
// injector's own counts.
func (s *Service) syncFaultCounters() {
	inj := s.cfg.Fault
	if inj == nil {
		return
	}
	now := inj.Counts()
	s.faultMu.Lock()
	prev := s.lastFaults
	s.lastFaults = now
	s.faultMu.Unlock()
	s.met.faults[faultKindRead].Add(now.ReadFaults - prev.ReadFaults)
	s.met.faults[faultKindSpike].Add(now.Spikes - prev.Spikes)
	s.met.faults[faultKindAlloc].Add(now.AllocFaults - prev.AllocFaults)
}

// observeRunTime folds one run's wall time into the EWMA behind
// RetryAfterHint.
func (s *Service) observeRunTime(d time.Duration) {
	obs := d.Seconds()
	for {
		old := s.runEWMA.Load()
		next := obs
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*obs
		}
		if s.runEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfterHint suggests how long a shed client should wait before
// retrying: the mean recent run wall time, floored at one second so
// early scrapes (no runs observed yet) and sub-millisecond simulated
// workloads still pace clients sanely. Serving layers put it in the
// Retry-After header of 429 responses.
func (s *Service) RetryAfterHint() time.Duration {
	hint := time.Second
	if bits := s.runEWMA.Load(); bits != 0 {
		if d := time.Duration(math.Float64frombits(bits) * float64(time.Second)); d > hint {
			hint = d
		}
	}
	return hint
}

// Close drains and stops the service: new requests are rejected with
// ErrStopped, admitted requests run to completion (or cancellation),
// the workers exit, and the loaded graphs are unloaded. Close is
// idempotent and safe to call concurrently with Do.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Draining starts the moment admission stops: /healthz flips to 503
	// while admitted requests finish, and stays there — a closed service
	// never serves again.
	s.cfg.Health.SetDraining(true)
	// Fail the open coalescing batches before the queue closes: their
	// window timers would otherwise dispatch into a stopped service while
	// the waiters block forever. Marking them sealed under bmu makes a
	// concurrently firing timer a no-op; sealed batches already in (or
	// racing into) the queue drain normally below.
	s.bmu.Lock()
	var orphaned []*pendingBatch
	for k, b := range s.pending {
		b.sealed = true
		orphaned = append(orphaned, b)
		delete(s.pending, k)
	}
	s.bmu.Unlock()
	for _, b := range orphaned {
		b.timer.Stop()
		s.failBatch(b, ErrStopped, outcomeRejected)
	}
	// No sender can reach the queue after closed is set (the admission
	// send happens under the mutex), so closing here is race-free.
	close(s.queue)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, dg := range s.graphs {
		s.sys.Unload(dg)
		delete(s.graphs, name)
	}
	s.met.datasets.Set(0)
}
