package service

import (
	"context"
	"sync"
	"testing"
	"time"

	emogi "repro"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// lifecycleService builds a fully instrumented service: registry-backed
// metrics, a collector on the device (so engine rounds flow into request
// traces), flight recorder, health, and a Chrome tracer.
func lifecycleService(t *testing.T, inj fault.Injector, cfg Config) (*Service, *telemetry.Recorder, *telemetry.Health, *telemetry.Tracer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	syscfg := emogi.V100PCIe3(testScale)
	syscfg.Faults = inj
	syscfg.Telemetry = telemetry.NewCollector(reg, nil)
	sys := emogi.NewSystem(syscfg)

	rec := telemetry.NewRecorder(64)
	health := telemetry.NewHealth(reg)
	cfg.Metrics = reg
	cfg.Recorder = rec
	cfg.Health = health
	cfg.Tracer = tracer
	svc := New(sys, cfg)
	if err := svc.AddGraph("GK", testGraph(t)); err != nil {
		t.Fatal(err)
	}
	return svc, rec, health, tracer
}

// stageSum adds up a record's span durations for one stage; attempt < 0
// sums every attempt.
func stageSum(rec telemetry.RequestRecord, stage string) (n int, durNS int64) {
	for _, sp := range rec.Stages {
		if sp.Stage == stage {
			n++
			durNS += sp.DurNS
		}
	}
	return n, durNS
}

// TestRequestLifecycleTrace is the tentpole acceptance test for a clean
// request: the caller's trace ID survives into the flight recorder, the
// stage spans sum to the request's wall time (up to scheduler handoff
// slop), engine rounds are attributed to the request, the per-stage
// histograms count the request exactly once, and the tracer gained a
// request track.
func TestRequestLifecycleTrace(t *testing.T) {
	svc, rec, _, tracer := lifecycleService(t, nil, Config{Concurrency: 1, CacheEntries: -1})
	defer svc.Close()

	const id = "lifecycle-trace-1"
	res, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 1, TraceID: id})
	if err != nil {
		t.Fatal(err)
	}

	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.TraceID != id {
		t.Errorf("TraceID = %q, want %q", r.TraceID, id)
	}
	if r.Outcome != outcomeOK || r.Error != "" {
		t.Errorf("outcome = %q (err %q), want ok", r.Outcome, r.Error)
	}
	if r.SimElapsedNS != res.Elapsed.Nanoseconds() {
		t.Errorf("SimElapsedNS = %d, want %d", r.SimElapsedNS, res.Elapsed.Nanoseconds())
	}

	// Exactly one admission, queue, and execute span; no recovery stages.
	for stage, want := range map[string]int{
		telemetry.StageAdmission: 1,
		telemetry.StageQueue:     1,
		telemetry.StageExecute:   1,
		telemetry.StageBackoff:   0,
		telemetry.StageDegrade:   0,
		telemetry.StageCoalesce:  0,
	} {
		if n, _ := stageSum(r, stage); n != want {
			t.Errorf("stage %s spans = %d, want %d (spans: %+v)", stage, n, want, r.Stages)
		}
	}

	// The stage durations account for the request's wall time up to
	// scheduler handoff slop.
	var sum int64
	for _, sp := range r.Stages {
		sum += sp.DurNS
	}
	tol := int64(25 * time.Millisecond)
	if q := r.WallNS / 4; q > tol {
		tol = q
	}
	if gap := r.WallNS - sum; gap < 0 || gap > tol {
		t.Errorf("stage durations sum to %d ns of %d ns wall (gap %d, tolerance %d): %+v",
			sum, r.WallNS, r.WallNS-sum, tol, r.Stages)
	}

	// Engine rounds were attributed to this request via the bound trace.
	if r.Rounds == 0 || len(r.RoundSpans) == 0 {
		t.Errorf("no engine rounds on the record: rounds=%d spans=%d", r.Rounds, len(r.RoundSpans))
	}
	if r.Rounds != res.Iterations {
		t.Errorf("record rounds = %d, result iterations = %d", r.Rounds, res.Iterations)
	}

	// Per-stage histograms counted the request exactly once per stage.
	for stage, want := range map[string]uint64{
		telemetry.StageAdmission: 1,
		telemetry.StageQueue:     1,
		telemetry.StageExecute:   1,
		telemetry.StageBackoff:   0,
	} {
		if got := svc.met.stage[stage].Count(); got != want {
			t.Errorf("stage %s histogram count = %d, want %d", stage, got, want)
		}
	}

	// The tracer gained the request's track.
	if tracer.Len() == 0 {
		t.Error("tracer recorded no events for the request")
	}

	// A second identical request answers from... nothing: cache disabled.
	// Re-enable by using the same source; with CacheEntries: -1 each run
	// hits the device, so the histograms advance.
	if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 1}); err != nil {
		t.Fatal(err)
	}
	if got := svc.met.stage[telemetry.StageExecute].Count(); got != 2 {
		t.Errorf("execute histogram count after second request = %d, want 2", got)
	}
	if rec.Len() != 2 {
		t.Errorf("recorder holds %d records, want 2", rec.Len())
	}
	// The generated trace ID is non-empty even when the caller sent none.
	if got := rec.Snapshot()[0].TraceID; got == "" {
		t.Error("generated trace ID is empty")
	}
}

// TestRequestLifecycleCached: a cache hit records an admission-only trace
// under the cached outcome and touches no execution histograms.
func TestRequestLifecycleCached(t *testing.T) {
	svc, rec, _, _ := lifecycleService(t, nil, Config{Concurrency: 1, CacheEntries: 8})
	defer svc.Close()

	req := Request{Dataset: "GK", Algo: "bfs", Src: 2}
	if _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	recs := rec.Snapshot() // newest first: the cache hit
	if len(recs) != 2 {
		t.Fatalf("recorder holds %d records, want 2", len(recs))
	}
	hit := recs[0]
	if hit.Outcome != outcomeCached {
		t.Fatalf("second request outcome = %q, want cached", hit.Outcome)
	}
	if n, _ := stageSum(hit, telemetry.StageAdmission); n != 1 || len(hit.Stages) != 1 {
		t.Errorf("cache hit stages = %+v, want a single admission span", hit.Stages)
	}
	if hit.Rounds != 0 || hit.SimElapsedNS == 0 {
		// Cached answers carry the cached result's simulated time but ran
		// no rounds of their own.
		t.Errorf("cache hit rounds=%d sim=%d, want 0 rounds with the cached result's sim time",
			hit.Rounds, hit.SimElapsedNS)
	}
	if got := svc.met.stage[telemetry.StageExecute].Count(); got != 1 {
		t.Errorf("execute histogram count = %d, want 1 (the miss only)", got)
	}
	if got := svc.met.stage[telemetry.StageAdmission].Count(); got != 2 {
		t.Errorf("admission histogram count = %d, want 2", got)
	}
}

// TestRequestLifecycleRetries is the recovery acceptance test: against a
// flaky link, a request that retried and degraded carries its recovery
// history — retry attempts matching the emogi_retries_total delta, backoff
// spans between attempts, the degrade span, absorbed fault counts — and
// the device health window reflects the degradation.
func TestRequestLifecycleRetries(t *testing.T) {
	inj, err := fault.Profile(fault.ProfileFlakyLink, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, rec, health, _ := lifecycleService(t, inj, Config{Concurrency: 1, CacheEntries: -1})
	defer svc.Close()

	res, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 3, TraceID: "retry-trace"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("request did not degrade; the profile/seed no longer exercises recovery")
	}

	r := rec.Snapshot()[0]
	if !r.Degraded {
		t.Error("record not marked degraded")
	}
	retriesTotal := svc.met.retries.Value()
	if uint64(r.Retries) != retriesTotal {
		t.Errorf("record retries = %d, emogi_retries_total = %d; must agree", r.Retries, retriesTotal)
	}
	if r.Retries == 0 {
		t.Error("degraded run recorded zero retries")
	}
	if r.FaultsSurvived == 0 {
		t.Error("degraded run recorded zero absorbed faults")
	}

	execN, _ := stageSum(r, telemetry.StageExecute)
	backoffN, _ := stageSum(r, telemetry.StageBackoff)
	degradeN, _ := stageSum(r, telemetry.StageDegrade)
	if execN != r.Retries+1 {
		t.Errorf("execute spans = %d, want attempts = retries+1 = %d", execN, r.Retries+1)
	}
	if backoffN != r.Retries {
		t.Errorf("backoff spans = %d, want one per retry = %d", backoffN, r.Retries)
	}
	if degradeN != 1 {
		t.Errorf("degrade spans = %d, want 1 (the UVM fallback load)", degradeN)
	}

	// Attempt numbering: execute spans are 1-based consecutive attempts.
	attempt := 0
	for _, sp := range r.Stages {
		if sp.Stage != telemetry.StageExecute {
			continue
		}
		attempt++
		if sp.Attempt != attempt {
			t.Errorf("execute span attempt = %d, want %d", sp.Attempt, attempt)
		}
	}

	// The health window saw the degraded run.
	rep := health.Report()
	if len(rep.Devices) != 1 || rep.Devices[0].State != "degraded" {
		t.Errorf("health report = %+v, want the device degraded", rep)
	}
	if !rep.Serving {
		t.Error("degraded device stopped serving; only unhealthy should")
	}

	// Close drains: the report flips to draining/503 and stays there.
	svc.Close()
	rep = health.Report()
	if rep.Status != "draining" || rep.Serving {
		t.Errorf("post-Close report = %+v, want draining/not-serving", rep)
	}
}

// TestBatchLifecycleReplay: waiters on a coalesced batch each carry the
// batch's shared spans (rebased into their own timebase) plus their own
// coalesce span, the rounds of the shared run, and the batch metadata —
// and the per-stage histograms count once per waiter, not once per batch.
func TestBatchLifecycleReplay(t *testing.T) {
	svc, rec, _, _ := lifecycleService(t, nil, Config{
		Concurrency:  1,
		CacheEntries: -1,
		BatchWindow:  40 * time.Millisecond,
		BatchMax:     8,
	})
	defer svc.Close()

	const lanes = 3
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: src}); err != nil {
				t.Errorf("src %d: %v", src, err)
			}
		}(i + 1)
	}
	wg.Wait()

	recs := rec.Snapshot()
	if len(recs) != lanes {
		t.Fatalf("recorder holds %d records, want %d", len(recs), lanes)
	}
	batched := 0
	for _, r := range recs {
		if !r.Batched {
			continue
		}
		batched++
		if r.BatchLanes < 1 || r.BatchLanes > lanes {
			t.Errorf("record batch lanes = %d, want 1..%d", r.BatchLanes, lanes)
		}
		if n, _ := stageSum(r, telemetry.StageCoalesce); n != 1 {
			t.Errorf("batched record has %d coalesce spans, want 1: %+v", n, r.Stages)
		}
		if n, _ := stageSum(r, telemetry.StageExecute); n != 1 {
			t.Errorf("batched record has %d execute spans, want 1: %+v", n, r.Stages)
		}
		if r.Rounds == 0 {
			t.Errorf("batched record carries no rounds")
		}
		// Replayed spans are rebased into the waiter's own timebase: no
		// span may start before the waiter's admission.
		for _, sp := range r.Stages {
			if sp.StartNS < 0 {
				t.Errorf("span %s starts %d ns before the request began", sp.Stage, sp.StartNS)
			}
		}
	}
	if batched == 0 {
		t.Fatal("no request was batched; the window never coalesced")
	}

	// Histogram counts are per waiter: every request was admitted, queued
	// (directly or via its batch), and executed exactly once.
	for _, stage := range []string{telemetry.StageAdmission, telemetry.StageQueue, telemetry.StageExecute} {
		if got := svc.met.stage[stage].Count(); got != lanes {
			t.Errorf("stage %s histogram count = %d, want %d (one per waiter)", stage, got, lanes)
		}
	}
}
