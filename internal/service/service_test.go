package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	emogi "repro"
)

const testScale = 0.02

func testGraph(t *testing.T) *emogi.Graph {
	t.Helper()
	g, err := emogi.BuildDataset("GK", testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestService(t *testing.T, cfg Config) (*Service, *emogi.System) {
	t.Helper()
	sys := emogi.NewSystem(emogi.V100PCIe3(testScale))
	svc := New(sys, cfg)
	if err := svc.AddGraph("GK", testGraph(t)); err != nil {
		t.Fatal(err)
	}
	return svc, sys
}

// normalize clears the KernelStats fields that are not bit-stable
// per-run deltas: MaxWarpHostReqs is max-aggregated over the device
// lifetime, and the float second accumulators (WireSeconds, TagSeconds,
// UVMSerialSeconds) are deltas of cumulative float64 sums, whose low
// ulps depend on the accumulated base. The float fields are checked
// separately with a relative tolerance (closeSeconds).
func normalize(res *emogi.Result) emogi.Result {
	cp := *res
	cp.Stats.MaxWarpHostReqs = 0
	cp.Stats.WireSeconds = 0
	cp.Stats.TagSeconds = 0
	cp.Stats.UVMSerialSeconds = 0
	return cp
}

// closeSeconds reports whether two float second counters agree to within
// float64 subtraction noise.
func closeSeconds(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > scale {
		scale = b
	}
	return diff <= 1e-9*scale+1e-15
}

// TestServiceStress is the concurrency acceptance test: 32 concurrent
// requests against a service with 4 workers and an 8-deep queue while
// the device is frozen, so admission capacity (4 in-worker + 8 queued =
// 12) is exact. Admitted requests must produce results identical to a
// direct System.Do; overflow must be rejected with ErrOverloaded; a
// follow-up wave of canceled requests must come back with the typed
// cancellation error without running a single round. Run under -race.
func TestServiceStress(t *testing.T) {
	svc, sys := newTestService(t, Config{
		Concurrency:  4,
		QueueDepth:   8,
		CacheEntries: -1, // determinism of counts: no cache short-circuits
	})
	defer svc.Close()

	// Freeze the device: workers admit tasks but block inside System.Do
	// until released, making the 12-slot capacity bound exact.
	release := make(chan struct{})
	blockerHeld := make(chan struct{})
	go sys.Device().Exclusive(func() {
		close(blockerHeld)
		<-release
	})
	<-blockerHeld

	const requests = 32
	algos := []string{"bfs", "sssp", "cc", "sswp"}
	type outcome struct {
		req Request
		res *emogi.Result
		err error
	}
	results := make([]outcome, requests)
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		req := Request{
			Dataset: "GK",
			Algo:    algos[i%len(algos)],
			Src:     i, // distinct sources: every request is distinct work
			Variant: emogi.MergedAligned,
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := svc.Do(context.Background(), req)
			results[i] = outcome{req: req, res: res, err: err}
			if errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			}
		}(i, req)
	}

	// Rejections return immediately; admitted callers block. Capacity is
	// hard-bounded at 12 while the device is frozen, so at least 20 of
	// the 32 must eventually be shed.
	deadline := time.Now().Add(10 * time.Second)
	for rejected.Load() < requests-12 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d rejections after 10s, want >= %d", rejected.Load(), requests-12)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var ok, shed int
	for _, o := range results {
		switch {
		case o.err == nil:
			ok++
		case errors.Is(o.err, ErrOverloaded):
			shed++
		default:
			t.Errorf("%s/src=%d: unexpected error %v", o.req.Algo, o.req.Src, o.err)
		}
	}
	if ok+shed != requests {
		t.Fatalf("ok=%d shed=%d, want them to cover all %d requests", ok, shed, requests)
	}
	if ok < 8 || ok > 12 {
		t.Errorf("admitted = %d, want between 8 (queue alone) and 12 (queue + workers)", ok)
	}
	t.Logf("admitted=%d rejected=%d", ok, shed)

	// Equivalence: every admitted result must be bit-identical to the
	// same request run directly on a fresh system (modulo the cumulative
	// MaxWarpHostReqs counter).
	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dg, err := ref.Load(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dg)
	for _, o := range results {
		if o.err != nil {
			continue
		}
		want, err := ref.Do(context.Background(), emogi.Request{
			Graph: dg, Algo: o.req.Algo, Src: o.req.Src, Variant: o.req.Variant, Cold: true,
		})
		if err != nil {
			t.Fatalf("reference %s/src=%d: %v", o.req.Algo, o.req.Src, err)
		}
		if got, wantN := normalize(o.res), normalize(want); !reflect.DeepEqual(got, wantN) {
			t.Errorf("%s/src=%d: service result diverged from direct System.Do\n got %+v\nwant %+v",
				o.req.Algo, o.req.Src, got, wantN)
		}
		if !closeSeconds(o.res.Stats.WireSeconds, want.Stats.WireSeconds) ||
			!closeSeconds(o.res.Stats.TagSeconds, want.Stats.TagSeconds) ||
			!closeSeconds(o.res.Stats.UVMSerialSeconds, want.Stats.UVMSerialSeconds) {
			t.Errorf("%s/src=%d: float second counters diverged beyond tolerance: got %v/%v/%v want %v/%v/%v",
				o.req.Algo, o.req.Src,
				o.res.Stats.WireSeconds, o.res.Stats.TagSeconds, o.res.Stats.UVMSerialSeconds,
				want.Stats.WireSeconds, want.Stats.TagSeconds, want.Stats.UVMSerialSeconds)
		}
	}

	// Cancellation wave: 8 concurrent pre-canceled requests (within the
	// now-idle capacity, so all admit) must each come back with the typed
	// error having executed zero rounds.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var cwg sync.WaitGroup
	cancelErrs := make([]error, 8)
	for i := 0; i < 8; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			_, err := svc.Do(canceled, Request{Dataset: "GK", Algo: "bfs", Src: i})
			cancelErrs[i] = err
		}(i)
	}
	cwg.Wait()
	for i, err := range cancelErrs {
		if !errors.Is(err, emogi.ErrCanceled) {
			t.Errorf("canceled request %d: err = %v, want ErrCanceled", i, err)
			continue
		}
		var ce *emogi.CanceledError
		if !errors.As(err, &ce) {
			t.Errorf("canceled request %d: err = %v, want *CanceledError", i, err)
		} else if ce.Rounds != 0 {
			t.Errorf("canceled request %d: ran %d round(s), want 0", i, ce.Rounds)
		}
	}
}

// TestServiceCache: repeating a request serves the cached Result without
// touching the device; normalized-equivalent requests share the entry.
func TestServiceCache(t *testing.T) {
	svc, sys := newTestService(t, Config{Concurrency: 1})
	defer svc.Close()

	first, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 5})
	if err != nil {
		t.Fatal(err)
	}
	kernels := len(sys.Device().Kernels())
	again, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 5})
	if err != nil {
		t.Fatal(err)
	}
	if again == first {
		t.Errorf("cache hit shared the stored *Result; want a defensive copy")
	}
	if !reflect.DeepEqual(again, first) {
		t.Errorf("cached Result differs from the original")
	}
	if got := len(sys.Device().Kernels()); got != kernels {
		t.Errorf("cache hit launched %d kernel(s)", got-kernels)
	}
	// The copies must be independent: mutating one caller's response must
	// not leak into what the next hit sees.
	if len(again.Values) > 0 {
		again.Values[0] = 0xDEAD
	}
	third, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, first) {
		t.Errorf("mutating a returned Result corrupted the cached entry")
	}

	// cc is source-free: any src maps onto the same normalized key.
	if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "cc", Src: 1}); err != nil {
		t.Fatal(err)
	}
	kernels = len(sys.Device().Kernels())
	if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "cc", Src: 99}); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Device().Kernels()); got != kernels {
		t.Errorf("source-free cache key missed: cc with a different src re-ran")
	}
	if n := svc.cache.len(); n != 2 {
		t.Errorf("cache holds %d entries, want 2 (bfs + normalized cc)", n)
	}
}

// TestServiceCacheLRU: the cache evicts least-recently-used entries at
// capacity.
func TestServiceCacheLRU(t *testing.T) {
	c, err := newResultCache(2)
	if err != nil {
		t.Fatal(err)
	}
	r := &emogi.Result{}
	c.put(cacheKey{dataset: "a"}, r)
	c.put(cacheKey{dataset: "b"}, r)
	if _, ok := c.get(cacheKey{dataset: "a"}); !ok { // refresh a
		t.Fatal("entry a missing")
	}
	c.put(cacheKey{dataset: "c"}, r) // evicts b
	if _, ok := c.get(cacheKey{dataset: "b"}); ok {
		t.Error("b survived eviction, want LRU out")
	}
	if _, ok := c.get(cacheKey{dataset: "a"}); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestServiceClose: drain-then-stop semantics and idempotence.
func TestServiceClose(t *testing.T) {
	svc, sys := newTestService(t, Config{Concurrency: 2})

	if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 1}); err != nil {
		t.Fatal(err)
	}
	used := sys.Device().Arena().GPUUsed()
	if used == 0 {
		t.Fatal("expected the loaded graph to occupy GPU memory")
	}
	svc.Close()
	svc.Close() // idempotent

	if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 1}); !errors.Is(err, ErrStopped) {
		t.Errorf("Do after Close: err = %v, want ErrStopped", err)
	}
	if err := svc.AddGraph("GK2", testGraph(t)); !errors.Is(err, ErrStopped) {
		t.Errorf("AddGraph after Close: err = %v, want ErrStopped", err)
	}
	if got := sys.Device().Arena().GPUUsed(); got != 0 {
		t.Errorf("GPU arena after Close = %d bytes, want 0 (graphs unloaded)", got)
	}
	if len(svc.Datasets()) != 0 {
		t.Errorf("Datasets after Close = %v, want none", svc.Datasets())
	}
}

// TestServiceCloseDrains: requests admitted before Close complete.
func TestServiceCloseDrains(t *testing.T) {
	svc, sys := newTestService(t, Config{Concurrency: 1, QueueDepth: 4, CacheEntries: -1})

	release := make(chan struct{})
	held := make(chan struct{})
	go sys.Device().Exclusive(func() {
		close(held)
		<-release
	})
	<-held

	var res *emogi.Result
	var doErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, doErr = svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 2})
	}()
	// Wait until the single worker has the task in hand, then close with
	// the device still frozen: Close must block until the request drains.
	deadline := time.Now().Add(5 * time.Second)
	for svc.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the task")
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() { defer close(closed); svc.Close() }()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-closed
	<-done
	if doErr != nil {
		t.Fatalf("drained request failed: %v", doErr)
	}
	if res == nil || res.App != "BFS" {
		t.Fatalf("drained request returned %+v", res)
	}
}

// TestServiceErrors: unknown names produce typed errors whose messages
// list the valid choices.
func TestServiceErrors(t *testing.T) {
	svc, _ := newTestService(t, Config{Concurrency: 1})
	defer svc.Close()
	if err := svc.AddGraph("GU", testGraph(t)); err != nil {
		// Second upload of the same CSR is fine; only the name must differ.
		t.Fatal(err)
	}

	_, err := svc.Do(context.Background(), Request{Dataset: "nope", Algo: "bfs"})
	var ud *UnknownDatasetError
	if !errors.As(err, &ud) {
		t.Fatalf("err = %v, want *UnknownDatasetError", err)
	}
	for _, name := range []string{"GK", "GU"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("dataset error %q does not list %q", err.Error(), name)
		}
	}

	_, err = svc.Do(context.Background(), Request{Dataset: "GK", Algo: "dfs"})
	var ua *emogi.UnknownAlgorithmError
	if !errors.As(err, &ua) {
		t.Fatalf("err = %v, want *UnknownAlgorithmError", err)
	}
	if !strings.Contains(err.Error(), "bfs") || !strings.Contains(err.Error(), "sssp") {
		t.Errorf("algorithm error %q does not list valid names", err.Error())
	}

	if err := svc.AddGraph("GK", testGraph(t)); err == nil {
		t.Error("duplicate AddGraph succeeded, want error")
	}
	if err := svc.AddGraph("", testGraph(t)); err == nil {
		t.Error("empty dataset name accepted, want error")
	}
}

// TestServiceMetrics: the outcome counters on the shared registry track
// what actually happened.
func TestServiceMetrics(t *testing.T) {
	svc, _ := newTestService(t, Config{Concurrency: 1})
	defer svc.Close()

	mustDo := func(req Request) {
		t.Helper()
		if _, err := svc.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	mustDo(Request{Dataset: "GK", Algo: "bfs", Src: 1})
	mustDo(Request{Dataset: "GK", Algo: "bfs", Src: 1}) // cache hit
	svc.Do(context.Background(), Request{Dataset: "GK", Algo: "dfs"}) // error

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	svc.Do(canceled, Request{Dataset: "GK", Algo: "bfs", Src: 9})

	expect := map[string]uint64{
		outcomeOK:       1,
		outcomeCached:   1,
		outcomeCanceled: 1,
		outcomeError:    1,
		outcomeRejected: 0,
	}
	for o, want := range expect {
		if got := svc.met.requests[o].Value(); got != want {
			t.Errorf("requests{outcome=%q} = %v, want %v", o, got, want)
		}
	}
	if got := svc.met.cacheHits.Value(); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}

	// The exported names appear in the Prometheus exposition.
	var sb strings.Builder
	if err := svc.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"emogi_serve_requests_total", "emogi_serve_queue_wait_seconds",
		"emogi_serve_run_seconds", "emogi_serve_cache_hits_total",
		"emogi_serve_datasets",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
}

// TestServiceDatasets: the catalog reflects loads in sorted order.
func TestServiceDatasets(t *testing.T) {
	svc, _ := newTestService(t, Config{Concurrency: 1})
	defer svc.Close()
	if err := svc.AddGraph("AA", testGraph(t), emogi.WithTransport(emogi.UVM)); err != nil {
		t.Fatal(err)
	}
	ds := svc.Datasets()
	if len(ds) != 2 || ds[0].Name != "AA" || ds[1].Name != "GK" {
		t.Fatalf("Datasets = %+v, want AA then GK", ds)
	}
	if ds[0].Transport != "uvm" || ds[1].Transport != "zerocopy" {
		t.Errorf("transports = %s, %s", ds[0].Transport, ds[1].Transport)
	}
	if ds[1].Vertices == 0 || ds[1].Edges == 0 {
		t.Errorf("GK reports empty dimensions: %+v", ds[1])
	}
}

func ExampleService() {
	sys := emogi.NewSystem(emogi.V100PCIe3(0.02))
	svc := New(sys, Config{Concurrency: 2, QueueDepth: 8})
	defer svc.Close()
	g, _ := emogi.BuildDataset("GK", 0.02, 42)
	_ = svc.AddGraph("GK", g)
	res, _ := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 3})
	fmt.Println(res.App, res.Iterations > 0)
	// Output: BFS true
}
