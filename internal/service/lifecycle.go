package service

import (
	"errors"
	"time"

	emogi "repro"
	"repro/internal/telemetry"
)

// Request-lifecycle instrumentation: every request carries a
// telemetry.RequestTrace from admission to delivery, and every trace ends
// in finishRequest — the single place a completed request becomes a
// flight-recorder record, a Chrome-trace request track, and a health
// observation. Stage spans and the emogi_request_stage_seconds histograms
// are recorded together (stageSpan / replaySpan), so a stage's histogram
// count always equals the number of spans requests recorded for it.

// requestOutcome carries one finished request's disposition into
// finishRequest.
type requestOutcome struct {
	// outcome is the emogi_serve_requests_total label value the request
	// was counted under (the counters themselves are incremented at the
	// existing sites, not here).
	outcome string
	res     *emogi.Result
	err     error
	// executed marks requests that ran on the device (admitted and picked
	// up by a worker); only those become health observations.
	executed bool
	// retries and faults are the recovery tallies: re-attempts after the
	// first, and injected read faults the failed attempts absorbed.
	retries int
	faults  uint64
	// batched marks requests that rode a coalesced batch of lanes width.
	batched bool
	lanes   int
}

// outcomeOf maps a delivered error to its request-counter label.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, emogi.ErrCanceled):
		return outcomeCanceled
	case errors.Is(err, ErrStopped), errors.Is(err, ErrOverloaded):
		return outcomeRejected
	default:
		return outcomeError
	}
}

// stageSpan records one completed lifecycle stage on a task: a span on the
// task's trace and — for single requests — a histogram observation. Batch
// tasks record the span only; runBatch later replays the batch's shared
// spans into every waiter, observing the histograms once per waiter so
// stage counts stay per-request. Returns the measured duration.
func (s *Service) stageSpan(t *task, stage string, attempt int, start time.Time, detail string) time.Duration {
	d := t.trace.Observe(stage, attempt, start, detail)
	if t.batch == nil {
		s.met.stageObserve(stage, d.Seconds())
	}
	return d
}

// observeStage records one completed lifecycle stage directly on a
// request trace plus its histogram (the pre-worker path, where there is
// no task yet).
func (s *Service) observeStage(rt *telemetry.RequestTrace, stage string, attempt int, start time.Time, detail string) time.Duration {
	d := rt.Observe(stage, attempt, start, detail)
	s.met.stageObserve(stage, d.Seconds())
	return d
}

// replaySpan copies one shared batch span into a waiter's trace and
// observes its stage histogram for that waiter.
func (s *Service) replaySpan(rt *telemetry.RequestTrace, sp telemetry.Span) {
	rt.ObserveSpan(sp)
	s.met.stageObserve(sp.Stage, float64(sp.DurNS)/float64(time.Second))
}

// finishRequest closes out one request's trace: it assembles the
// flight-recorder record, emits the per-request track to the Chrome
// tracer, and folds executed runs into the device health window. It is
// called exactly once per request, on the caller's goroutine, after the
// result is determined. Nil recorder / tracer / health are each inert.
func (s *Service) finishRequest(rt *telemetry.RequestTrace, req Request, ro requestOutcome) {
	wall := time.Since(rt.Begin())
	degraded := ro.res != nil && ro.res.Degraded
	if s.cfg.Health != nil && ro.executed {
		s.cfg.Health.ObserveRun(s.devName, telemetry.RunObservation{
			TransientFailure: ro.err != nil && errors.Is(ro.err, emogi.ErrTransient),
			Degraded:         degraded,
			Faults:           ro.faults,
		})
	}
	if s.cfg.Recorder == nil && s.cfg.Tracer == nil {
		return
	}
	spans := rt.Spans()
	if s.cfg.Recorder != nil {
		rounds, totalRounds := rt.Rounds()
		rec := telemetry.RequestRecord{
			TraceID:        rt.ID(),
			Dataset:        req.Dataset,
			Algo:           req.Algo,
			Src:            req.Src,
			Variant:        req.Variant.String(),
			Outcome:        ro.outcome,
			Start:          rt.Begin(),
			WallNS:         wall.Nanoseconds(),
			Stages:         spans,
			Rounds:         totalRounds,
			RoundSpans:     rounds,
			Retries:        ro.retries,
			FaultsSurvived: ro.faults,
			Degraded:       degraded,
			Batched:        ro.batched,
			BatchLanes:     ro.lanes,
		}
		if ro.err != nil {
			rec.Error = ro.err.Error()
		}
		if ro.res != nil {
			rec.SimElapsedNS = ro.res.Elapsed.Nanoseconds()
		}
		s.cfg.Recorder.Record(rec)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Request(rt.ID(), ro.outcome, rt.Begin(), spans)
	}
}
