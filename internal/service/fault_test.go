package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	emogi "repro"
	"repro/internal/fault"
)

// newFaultyService builds a service over a system carrying inj on its
// PCIe link, with the GK test graph loaded.
func newFaultyService(t *testing.T, inj fault.Injector, cfg Config) (*Service, *emogi.System) {
	t.Helper()
	syscfg := emogi.V100PCIe3(testScale)
	syscfg.Faults = inj
	sys := emogi.NewSystem(syscfg)
	svc := New(sys, cfg)
	if err := svc.AddGraph("GK", testGraph(t)); err != nil {
		t.Fatal(err)
	}
	return svc, sys
}

// TestServiceFaultStress is the recovery acceptance test: 32 concurrent
// requests against a flaky-link service (1% read faults) must all
// complete — either a retried zero-copy run or a run degraded onto the
// static-uvm policy, never an error — with results bit-identical to a
// fault-free reference system under the policy they ultimately ran on
// (degraded runs replay the same static-uvm override, pinning the policy
// layer's replay determinism), and the exported fault/retry/degraded
// counters must agree exactly with the injector's own tallies. Run under
// -race.
func TestServiceFaultStress(t *testing.T) {
	inj, err := fault.Profile(fault.ProfileFlakyLink, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newFaultyService(t, inj, Config{
		Concurrency:  4,
		QueueDepth:   32, // capacity 36 > 32: every request admits
		CacheEntries: -1, // every request must exercise the retry path
	})
	defer svc.Close()

	const requests = 32
	algos := []string{"bfs", "sssp", "cc", "sswp"}
	type outcome struct {
		req Request
		res *emogi.Result
		err error
	}
	results := make([]outcome, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		req := Request{
			Dataset: "GK",
			Algo:    algos[i%len(algos)],
			Src:     i,
			Variant: emogi.MergedAligned,
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := svc.Do(context.Background(), req)
			results[i] = outcome{req: req, res: res, err: err}
		}(i, req)
	}
	wg.Wait()

	// Fault-free reference system: clean runs replay on the same zero-copy
	// graph; degraded runs replay under the same static-uvm policy
	// override the service rerouted them onto.
	g := testGraph(t)
	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dgZC, err := ref.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dgZC)

	degradedRuns := 0
	for _, o := range results {
		if o.err != nil {
			t.Errorf("%s/src=%d: failed despite retry+degradation: %v", o.req.Algo, o.req.Src, o.err)
			continue
		}
		if err := emogi.Validate(g, o.res); err != nil {
			t.Errorf("%s/src=%d: wrong traversal output: %v", o.req.Algo, o.req.Src, err)
		}
		refReq := emogi.Request{
			Graph: dgZC, Algo: o.req.Algo, Src: o.req.Src, Variant: o.req.Variant, Cold: true,
		}
		if o.res.Degraded {
			degradedRuns++
			refReq.Policy = emogi.StaticPolicy(emogi.UVM)
		}
		want, err := ref.Do(context.Background(), refReq)
		if err != nil {
			t.Fatalf("reference %s/src=%d: %v", o.req.Algo, o.req.Src, err)
		}
		got, wantN := normalize(o.res), normalize(want)
		got.Degraded, wantN.Degraded = false, false
		if !reflect.DeepEqual(got, wantN) {
			t.Errorf("%s/src=%d (degraded=%v): result diverged from fault-free reference\n got %+v\nwant %+v",
				o.req.Algo, o.req.Src, o.res.Degraded, got, wantN)
		}
	}
	t.Logf("degraded=%d/%d", degradedRuns, requests)

	// Counter consistency: the exported series are exactly the injector's
	// tallies, retries happened, and the degraded counter matches what the
	// results report.
	counts := inj.Counts()
	if counts.ReadFaults == 0 {
		t.Fatal("flaky-link injected zero read faults across 32 requests")
	}
	if got := svc.met.faults[faultKindRead].Value(); got != counts.ReadFaults {
		t.Errorf("emogi_faults_injected_total{kind=read} = %d, injector counted %d", got, counts.ReadFaults)
	}
	if got := svc.met.faults[faultKindSpike].Value(); got != counts.Spikes {
		t.Errorf("emogi_faults_injected_total{kind=spike} = %d, injector counted %d", got, counts.Spikes)
	}
	if got := svc.met.faults[faultKindAlloc].Value(); got != counts.AllocFaults {
		t.Errorf("emogi_faults_injected_total{kind=alloc} = %d, injector counted %d", got, counts.AllocFaults)
	}
	if got := svc.met.retries.Value(); got == 0 {
		t.Error("emogi_retries_total = 0 under a 1% fault rate")
	}
	if got := svc.met.degraded.Value(); got != uint64(degradedRuns) {
		t.Errorf("emogi_degraded_runs_total = %d, results report %d degraded runs", got, degradedRuns)
	}
}

// TestServiceRetryEquivalence: under a read-fault-only injector a request
// that needed retries returns, once a clean epoch lands, a Result
// bit-for-bit identical to the same request on a fault-free system —
// including the modeled Elapsed time — and is not marked Degraded.
func TestServiceRetryEquivalence(t *testing.T) {
	inj, err := fault.New(fault.Config{Seed: 17, ReadFaultRate: 0.0003})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newFaultyService(t, inj, Config{
		Concurrency:   1,
		CacheEntries:  -1,
		RetryAttempts: 64,  // enough epochs that one comes up clean
		DegradeAfter:  100, // never degrade: this test is about clean retries
	})
	defer svc.Close()

	res, err := svc.Do(context.Background(), Request{
		Dataset: "GK", Algo: "bfs", Src: 5, Variant: emogi.MergedAligned,
	})
	if err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if res.Degraded {
		t.Fatal("result marked Degraded with degradation disabled")
	}
	if got := svc.met.retries.Value(); got == 0 {
		t.Fatal("request succeeded on the first attempt; raise the rate so the test exercises a retry")
	} else {
		t.Logf("retries=%d", got)
	}

	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dg, err := ref.Load(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dg)
	want, err := ref.Do(context.Background(), emogi.Request{
		Graph: dg, Algo: "bfs", Src: 5, Variant: emogi.MergedAligned, Cold: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantN := normalize(res), normalize(want); !reflect.DeepEqual(got, wantN) {
		t.Errorf("retried result diverged from fault-free run\n got %+v\nwant %+v", got, wantN)
	}
	if !closeSeconds(res.Stats.WireSeconds, want.Stats.WireSeconds) {
		t.Errorf("WireSeconds %v vs fault-free %v", res.Stats.WireSeconds, want.Stats.WireSeconds)
	}
}

// TestServiceRetryBudgetExhausted: when every attempt faults and
// degradation is out of reach, the service reports a typed transient
// error naming the budget instead of hanging or succeeding wrongly.
func TestServiceRetryBudgetExhausted(t *testing.T) {
	inj, err := fault.New(fault.Config{Seed: 5, ReadFaultRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newFaultyService(t, inj, Config{
		Concurrency:   1,
		CacheEntries:  -1,
		RetryAttempts: 2,
		DegradeAfter:  5, // beyond the budget: degradation can't trigger
	})
	defer svc.Close()

	res, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: 1})
	if res != nil || err == nil {
		t.Fatalf("Do = (%v, %v), want exhaustion error", res, err)
	}
	if !errors.Is(err, emogi.ErrTransient) {
		t.Errorf("exhaustion error %v does not match emogi.ErrTransient", err)
	}
	var te *emogi.TransientError
	if !errors.As(err, &te) {
		t.Errorf("exhaustion error %v does not carry the *TransientError cause", err)
	}
	if got := svc.met.retries.Value(); got != 1 {
		t.Errorf("emogi_retries_total = %d, want 1 (budget of 2 attempts)", got)
	}
	if got := svc.met.requests[outcomeError].Value(); got != 1 {
		t.Errorf("requests{outcome=error} = %d, want 1", got)
	}
}

// TestServiceCacheConcurrentMutation: many goroutines hitting the same
// cache key each get an independent copy — mutating one caller's Result
// must neither race with other callers (-race is the oracle here) nor
// corrupt the cached entry.
func TestServiceCacheConcurrentMutation(t *testing.T) {
	svc, _ := newTestService(t, Config{Concurrency: 2})
	defer svc.Close()

	req := Request{Dataset: "GK", Algo: "bfs", Src: 5}
	first, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Do(context.Background(), req)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			// Scribble over the whole value slice: only safe if every
			// caller got its own copy.
			for j := range res.Values {
				res.Values[j] = uint32(i)
			}
		}(i)
	}
	wg.Wait()
	final, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final, first) {
		t.Error("concurrent mutation of returned Results corrupted the cached entry")
	}
}
