package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	emogi "repro"
	"repro/internal/fault"
)

// laneEqual compares the fields the batching contract pins bit-for-bit
// against a single-source reference (Elapsed and Stats of a batched
// Result describe the shared run, so full normalize() comparison does
// not apply across batch widths).
func laneEqual(got, want *emogi.Result) bool {
	if got == nil || want == nil || got.Iterations != want.Iterations ||
		len(got.Values) != len(want.Values) {
		return false
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			return false
		}
	}
	return true
}

// TestServiceBatchCoalescing is the coalescing acceptance test, run
// under -race: 64 concurrent same-key requests (16 distinct sources x 4
// waiters each) against a frozen device with only 2 workers and a
// 2-deep queue. Run solo those 64 requests would overwhelm admission
// (capacity 4); coalesced they occupy one slot per batch, so none may
// be shed. Every waiter must get the exact single-source Result (own
// private copy), clean lanes must land in the cache, the batch buffers
// must all be returned to the arena, and the coalescing counters must
// be exactly consistent.
func TestServiceBatchCoalescing(t *testing.T) {
	svc, sys := newTestService(t, Config{
		Concurrency: 2,
		QueueDepth:  2,
		BatchWindow: 150 * time.Millisecond,
		BatchMax:    64,
	})
	defer svc.Close()
	arenaUsed := sys.Device().Arena().GPUUsed()

	// Freeze the device so no batch can execute (or retire) until every
	// request has made its admission decision.
	release := make(chan struct{})
	held := make(chan struct{})
	go sys.Device().Exclusive(func() {
		close(held)
		<-release
	})
	<-held

	const (
		distinct = 16
		waiters  = 4
		requests = distinct * waiters
	)
	results := make([]*emogi.Result, requests)
	errs := make([]error, requests)
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Do(context.Background(), Request{
				Dataset: "GK", Algo: "bfs", Src: i % distinct, Variant: emogi.MergedAligned,
			})
			results[i], errs[i] = res, err
			if errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			}
		}(i)
	}

	// Wait until the sealed batch has been dispatched and a worker has
	// picked it up (it then blocks on the frozen device). Nothing may
	// have been rejected: the whole point of coalescing is that 64
	// requests cost one admission slot, not 64.
	deadline := time.Now().Add(10 * time.Second)
	for svc.met.inflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no batch dispatched within 10s of the window closing")
		}
		time.Sleep(time.Millisecond)
	}
	if got := rejected.Load(); got != 0 {
		t.Fatalf("%d requests shed while coalescing; batches must occupy one admission slot", got)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d (src=%d): %v", i, i%distinct, err)
		}
	}

	// Exact counter consistency: every request missed the cache once and
	// completed ok; the lanes ran as one (or, if a goroutine straggled
	// past the window, very few) batched engine runs that shared edge
	// scans.
	if got := svc.met.requests[outcomeOK].Value(); got != requests {
		t.Errorf("requests{ok} = %d, want %d", got, requests)
	}
	if got := svc.met.cacheMiss.Value(); got != requests {
		t.Errorf("cache misses = %d, want %d", got, requests)
	}
	if got := svc.met.cacheHits.Value(); got != 0 {
		t.Errorf("cache hits = %d, want 0", got)
	}
	batches := svc.met.batchedRuns.Value()
	if batches < 1 {
		t.Error("emogi_batched_runs_total = 0, want at least one batched run")
	}
	if got := svc.met.batchSize.Count(); got != batches {
		t.Errorf("batch size observations = %d, batched runs = %d", got, batches)
	}
	if got := svc.met.edgeScansSaved.Value(); got == 0 {
		t.Error("emogi_edge_scans_saved_total = 0 across 16 shared lanes")
	}
	t.Logf("batched runs = %d, edge scans saved = %d", batches, svc.met.edgeScansSaved.Value())

	// Per-waiter results: bit-identical to the single-source reference,
	// and every waiter holds a private copy (no aliasing between the
	// duplicates of a lane).
	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dg, err := ref.Load(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dg)
	for src := 0; src < distinct; src++ {
		want, err := ref.Do(context.Background(), emogi.Request{
			Graph: dg, Algo: "bfs", Src: src, Variant: emogi.MergedAligned, Cold: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var mine []*emogi.Result
		for i := src; i < requests; i += distinct {
			mine = append(mine, results[i])
		}
		for wi, res := range mine {
			if !laneEqual(res, want) {
				t.Errorf("src=%d waiter %d: batched result diverged from direct System.Do", src, wi)
			}
			if batches == 1 && res.BatchSize != distinct {
				t.Errorf("src=%d waiter %d: BatchSize = %d, want %d", src, wi, res.BatchSize, distinct)
			}
			for wj := wi + 1; wj < len(mine); wj++ {
				if res == mine[wj] || &res.Values[0] == &mine[wj].Values[0] {
					t.Fatalf("src=%d: waiters %d and %d share a Result", src, wi, wj)
				}
			}
		}
	}

	// Cache fills: a second wave of the 16 distinct requests is answered
	// from the cache without touching the device.
	kernels := len(sys.Device().Kernels())
	for src := 0; src < distinct; src++ {
		res, err := svc.Do(context.Background(), Request{
			Dataset: "GK", Algo: "bfs", Src: src, Variant: emogi.MergedAligned,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !laneEqual(res, results[src]) {
			t.Errorf("src=%d: cached result diverged from the batched one", src)
		}
	}
	if got := len(sys.Device().Kernels()); got != kernels {
		t.Errorf("cache wave launched %d kernels", got-kernels)
	}
	if got := svc.met.cacheHits.Value(); got != distinct {
		t.Errorf("cache hits after repeat wave = %d, want %d", got, distinct)
	}

	// Arena hygiene: the batch's lane-major buffers were all freed.
	if got := sys.Device().Arena().GPUUsed(); got != arenaUsed {
		t.Errorf("arena GPU bytes = %d after batches, want %d (leak)", got, arenaUsed)
	}
}

// TestServiceBatchLaneCancel: a waiter whose context is already canceled
// detaches only its own lane mid-batch — the other lanes complete, are
// cached, and the canceled lane is not.
func TestServiceBatchLaneCancel(t *testing.T) {
	svc, sys := newTestService(t, Config{
		Concurrency: 1,
		QueueDepth:  4,
		BatchWindow: 150 * time.Millisecond,
		BatchMax:    8,
	})
	defer svc.Close()
	arenaUsed := sys.Device().Arena().GPUUsed()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	const lanes = 4
	const victim = lanes - 1
	results := make([]*emogi.Result, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		ctx := context.Background()
		if i == victim {
			ctx = canceled
		}
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			results[i], errs[i] = svc.Do(ctx, Request{Dataset: "GK", Algo: "bfs", Src: i})
		}(i, ctx)
	}
	wg.Wait()

	if !errors.Is(errs[victim], emogi.ErrCanceled) {
		t.Fatalf("victim: err = %v, want ErrCanceled", errs[victim])
	}
	var ce *emogi.CanceledError
	if !errors.As(errs[victim], &ce) {
		t.Fatalf("victim: err = %v, want *CanceledError", errs[victim])
	} else if ce.Rounds != 0 {
		t.Errorf("victim: detached after %d round(s), want 0", ce.Rounds)
	}

	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dg, err := ref.Load(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dg)
	for i := 0; i < victim; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		want, err := ref.Do(context.Background(), emogi.Request{
			Graph: dg, Algo: "bfs", Src: i, Cold: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !laneEqual(results[i], want) {
			t.Errorf("lane %d: result diverged after a batchmate canceled", i)
		}
	}

	// Clean lanes were cached; the canceled lane was not.
	misses := svc.met.cacheMiss.Value()
	kernels := len(sys.Device().Kernels())
	for i := 0; i < victim; i++ {
		if _, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.Device().Kernels()); got != kernels {
		t.Errorf("repeating completed lanes launched %d kernels, want cache hits", got-kernels)
	}
	if got := svc.met.cacheMiss.Value(); got != misses {
		t.Errorf("repeating completed lanes missed the cache %d times", got-misses)
	}
	res, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: victim})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.met.cacheMiss.Value(); got != misses+1 {
		t.Error("canceled lane was served from the cache; incomplete results must never be cached")
	}
	want, err := ref.Do(context.Background(), emogi.Request{Graph: dg, Algo: "bfs", Src: victim, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if !laneEqual(res, want) {
		t.Errorf("victim rerun diverged from the reference")
	}

	if got := sys.Device().Arena().GPUUsed(); got != arenaUsed {
		t.Errorf("arena GPU bytes = %d after canceled lane, want %d (leak)", got, arenaUsed)
	}
}

// TestServiceBatchFaultEquivalence: coalesced batches ride the same
// retry / backoff / UVM-degradation ladder as single requests. Under the
// flaky-link profile every concurrent request must still complete with
// values bit-identical to a fault-free run, and the exported fault
// counters must match the injector's tallies exactly.
func TestServiceBatchFaultEquivalence(t *testing.T) {
	inj, err := fault.Profile(fault.ProfileFlakyLink, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newFaultyService(t, inj, Config{
		Concurrency:  2,
		QueueDepth:   8,
		CacheEntries: -1,
		BatchWindow:  150 * time.Millisecond,
		BatchMax:     32,
	})
	defer svc.Close()

	const requests = 16
	algos := []string{"bfs", "sssp", "sswp"}
	results := make([]*emogi.Result, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Do(context.Background(), Request{
				Dataset: "GK", Algo: algos[i%len(algos)], Src: i, Variant: emogi.MergedAligned,
			})
		}(i)
	}
	wg.Wait()

	g := testGraph(t)
	ref := emogi.NewSystem(emogi.V100PCIe3(testScale))
	dg, err := ref.Load(g)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Unload(dg)
	degradedRuns := 0
	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			t.Errorf("request %d: failed despite retry+degradation: %v", i, errs[i])
			continue
		}
		if results[i].Degraded {
			degradedRuns++
		}
		if err := emogi.Validate(g, results[i]); err != nil {
			t.Errorf("request %d: wrong traversal output: %v", i, err)
		}
		want, err := ref.Do(context.Background(), emogi.Request{
			Graph: dg, Algo: algos[i%len(algos)], Src: i, Variant: emogi.MergedAligned, Cold: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !laneEqual(results[i], want) {
			t.Errorf("request %d (degraded=%v): batched result diverged from fault-free reference",
				i, results[i].Degraded)
		}
	}

	counts := inj.Counts()
	if got := svc.met.faults[faultKindRead].Value(); got != counts.ReadFaults {
		t.Errorf("emogi_faults_injected_total{kind=read} = %d, injector counted %d", got, counts.ReadFaults)
	}
	if got := svc.met.faults[faultKindSpike].Value(); got != counts.Spikes {
		t.Errorf("emogi_faults_injected_total{kind=spike} = %d, injector counted %d", got, counts.Spikes)
	}
	if got := svc.met.degraded.Value(); got != uint64(degradedRuns) {
		t.Errorf("emogi_degraded_runs_total = %d, results report %d degraded runs", got, degradedRuns)
	}
	t.Logf("readFaults=%d retries=%d degraded=%d/%d",
		counts.ReadFaults, svc.met.retries.Value(), degradedRuns, requests)
}

// TestServiceBatchDegradedNotCached is the regression test for the
// degraded-lane cache rule: a batch that fell back to the UVM transport
// delivers Degraded results, and none of its lanes may be cached — the
// cache key names the zero-copy transport the lanes did not run on.
func TestServiceBatchDegradedNotCached(t *testing.T) {
	inj, err := fault.New(fault.Config{Seed: 5, ReadFaultRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := newFaultyService(t, inj, Config{
		Concurrency:   1,
		QueueDepth:    4,
		BatchWindow:   150 * time.Millisecond,
		BatchMax:      8,
		RetryAttempts: 8,
		DegradeAfter:  2,
	})
	defer svc.Close()

	const lanes = 2
	results := make([]*emogi.Result, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: i})
		}(i)
	}
	wg.Wait()
	for i := 0; i < lanes; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !results[i].Degraded {
			t.Fatalf("lane %d: not Degraded under a 5%% zero-copy fault rate with DegradeAfter=2", i)
		}
	}
	if got := svc.met.degraded.Value(); got != lanes {
		t.Errorf("emogi_degraded_runs_total = %d, want %d", got, lanes)
	}

	// Degraded lanes must not have been cached: the repeats miss and run
	// again (degrading again — the link is still flaky).
	misses := svc.met.cacheMiss.Value()
	hits := svc.met.cacheHits.Value()
	for i := 0; i < lanes; i++ {
		res, err := svc.Do(context.Background(), Request{Dataset: "GK", Algo: "bfs", Src: i})
		if err != nil {
			t.Fatalf("lane %d repeat: %v", i, err)
		}
		if !laneEqual(res, results[i]) {
			t.Errorf("lane %d repeat: values diverged", i)
		}
	}
	if got := svc.met.cacheMiss.Value(); got != misses+lanes {
		t.Errorf("cache misses after repeats = %d, want %d: degraded results must never be cached",
			got, misses+lanes)
	}
	if got := svc.met.cacheHits.Value(); got != hits {
		t.Errorf("cache hits after repeats = %d, want %d: degraded results must never be cached",
			got, hits)
	}
}
