package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	emogi "repro"
	"repro/internal/telemetry"
)

// Request coalescing: when Config.BatchWindow is set, cache-missing
// requests for the same (dataset, algo, variant, transport policy) that arrive
// within the window are collected into one pending batch and dispatched
// as a single System.DoBatch — one admission-queue slot, one engine run,
// one edge scan serving every lane (see internal/core/batch.go and
// DESIGN.md §13). The batch seals when the window elapses or when it
// reaches Config.BatchMax lanes, whichever comes first.
//
// Per-request semantics are preserved exactly:
//
//   - Each waiter gets the bit-for-bit Result an uncoalesced run would
//     return (Values/Iterations; Elapsed/Stats describe the shared run).
//   - A request's context detaches only its own lane — mid-batch
//     cancellation never aborts the other lanes or frees shared buffers
//     early; the lane just leaves the live mask at the next round
//     boundary.
//   - Duplicate sources inside one window share a lane: the lane's
//     result is delivered to every waiter (cloned, so no waiter observes
//     another's mutations), and the lane detaches only when every waiter
//     has canceled.
//   - Cache fills are per-lane on completion, with the same
//     degraded-results-are-never-cached rule as single runs: a batch
//     that fell back to UVM caches nothing, and a mixed batch (some
//     lanes canceled) caches only the lanes that completed cleanly.

// batchKey groups coalescable requests. Sources are intentionally
// absent: differing sources are the point of batching. The algo name and
// variant are the cache-normalized ones, and policy is the effective
// transport-policy name, so requests that would share a cache entry also
// share a lane (and requests under different policies never coalesce).
type batchKey struct {
	dataset string
	algo    string
	variant emogi.Variant
	policy  string
}

// batchWaiter is one caller blocked in Do waiting for its lane.
type batchWaiter struct {
	ctx  context.Context
	done chan taskResult // buffered: delivery never blocks

	// trace is the waiter's own request trace; joined is when it entered
	// the pending batch. runBatch replays the batch's shared spans into
	// every waiter's trace, plus a per-waiter coalesce span covering
	// joined -> dispatch.
	trace  *telemetry.RequestTrace
	joined time.Time
}

// pendingLane is one distinct source inside a pending batch.
type pendingLane struct {
	src      int
	key      cacheKey
	cachable bool
	waiters  []*batchWaiter
}

// pendingBatch collects same-key requests until it seals.
type pendingBatch struct {
	key        batchKey
	dg         *emogi.DeviceGraph
	pol        emogi.TransportPolicy // shared per-request override, nil = dataset's
	variant    emogi.Variant
	lanes      []*pendingLane
	bySrc      map[int]*pendingLane
	timer      *time.Timer
	sealed     bool
	dispatched time.Time // when the sealed batch entered admission
}

// doBatched joins (or opens) the pending batch for the request's key and
// blocks until the batch delivers. Callers have already missed the
// cache and validated the dataset and algorithm.
func (s *Service) doBatched(ctx context.Context, req Request, dg *emogi.DeviceGraph, pol emogi.TransportPolicy, key cacheKey, rt *telemetry.RequestTrace) (*emogi.Result, error) {
	w := &batchWaiter{ctx: ctx, done: make(chan taskResult, 1), trace: rt, joined: time.Now()}
	bkey := batchKey{dataset: req.Dataset, algo: key.algo, variant: key.variant, policy: key.policy}
	s.bmu.Lock()
	b := s.pending[bkey]
	if b == nil {
		b = &pendingBatch{
			key:     bkey,
			dg:      dg,
			pol:     pol,
			variant: key.variant,
			bySrc:   make(map[int]*pendingLane),
		}
		s.pending[bkey] = b
		// The window timer seals the batch with whatever joined by then.
		b.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.sealBatch(b) })
	}
	ln := b.bySrc[key.src]
	if ln == nil {
		ln = &pendingLane{src: key.src, key: key, cachable: s.cache != nil}
		b.bySrc[key.src] = ln
		b.lanes = append(b.lanes, ln)
	}
	ln.waiters = append(ln.waiters, w)
	// A full batch seals immediately instead of waiting out the window.
	sealNow := !b.sealed && len(b.lanes) >= s.cfg.BatchMax
	if sealNow {
		b.sealed = true
		delete(s.pending, bkey)
	}
	s.bmu.Unlock()
	if sealNow {
		b.timer.Stop()
		s.dispatchBatch(b)
	}
	r := <-w.done
	s.finishRequest(rt, req, requestOutcome{
		outcome:  outcomeOf(r.err),
		res:      r.res,
		err:      r.err,
		executed: r.executed,
		retries:  r.retries,
		faults:   r.faults,
		batched:  r.batched,
		lanes:    r.lanes,
	})
	return r.res, r.err
}

// sealBatch is the window-timer path: mark the batch sealed, detach it
// from the pending map, and dispatch it. A batch already sealed (by
// reaching BatchMax, or by Close) is someone else's to dispatch.
func (s *Service) sealBatch(b *pendingBatch) {
	s.bmu.Lock()
	if b.sealed {
		s.bmu.Unlock()
		return
	}
	b.sealed = true
	delete(s.pending, b.key)
	s.bmu.Unlock()
	s.dispatchBatch(b)
}

// dispatchBatch admits a sealed batch to the worker queue as one task —
// a K-lane batch occupies a single admission slot, which is exactly the
// load-shedding win coalescing buys. Rejection (queue full, service
// stopped) fails every waiter the way a single request is failed.
func (s *Service) dispatchBatch(b *pendingBatch) {
	b.dispatched = time.Now()
	t := &task{
		ctx: context.Background(),
		req: Request{Dataset: b.key.dataset, Algo: b.key.algo, Variant: b.variant},
		dg:  b.dg,
		// key feeds retry-backoff jitter; lane 0's is as good as any.
		key:      b.lanes[0].key,
		batch:    b,
		enqueued: b.dispatched,
		// The batch collects its shared lifecycle spans (queue, backoff,
		// execute, degrade) and round events on its own trace; runBatch
		// replays them into every waiter's.
		trace: telemetry.NewRequestTrace(telemetry.NewTraceID()),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.failBatch(b, ErrStopped, outcomeRejected)
		return
	}
	select {
	case s.queue <- t:
		s.met.queued.Set(float64(len(s.queue)))
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.failBatch(b, ErrOverloaded, outcomeRejected)
	}
}

// failBatch delivers one error to every waiter of every lane.
func (s *Service) failBatch(b *pendingBatch, err error, outcome string) {
	for _, ln := range b.lanes {
		for _, w := range ln.waiters {
			s.met.outcome(outcome)
			w.done <- taskResult{err: err}
		}
	}
}

// runBatch executes one admitted batch on a worker and delivers per-lane
// results, cache fills, and metrics. The batch's shared lifecycle spans
// and round events — collected on the task's batch-scoped trace — are
// replayed into every waiter's trace, preceded by a per-waiter coalesce
// span, so each request's record reads like it ran alone.
func (s *Service) runBatch(t *task) {
	b := t.batch
	s.met.inflight.Set(float64(s.inflight.Add(1)))
	start := time.Now()
	out, err := s.executeBatch(t)
	elapsed := time.Since(start)
	s.met.runTime.Observe(elapsed.Seconds())
	s.observeRunTime(elapsed)
	s.met.inflight.Set(float64(s.inflight.Add(-1)))
	s.met.batchSize.Observe(float64(len(b.lanes)))

	batchSpans := t.trace.Spans()
	rounds, totalRounds := t.trace.Rounds()
	replay := func(w *batchWaiter) {
		wb := w.trace.Begin()
		s.replaySpan(w.trace, telemetry.Span{
			Stage:   telemetry.StageCoalesce,
			StartNS: w.joined.Sub(wb).Nanoseconds(),
			DurNS:   b.dispatched.Sub(w.joined).Nanoseconds(),
		})
		// Shared spans are recorded relative to the batch trace's begin;
		// rebase them onto this waiter's clock.
		off := t.trace.Begin().Sub(wb).Nanoseconds()
		for _, sp := range batchSpans {
			sp.StartNS += off
			s.replaySpan(w.trace, sp)
		}
		w.trace.ReplayRounds(rounds, totalRounds)
	}
	meta := taskResult{
		executed: true,
		retries:  t.attempts - 1,
		faults:   t.faults,
		lanes:    len(b.lanes),
		batched:  true,
	}

	if err != nil {
		oc := outcomeError
		if errors.Is(err, emogi.ErrCanceled) {
			oc = outcomeCanceled
		}
		for _, ln := range b.lanes {
			for _, w := range ln.waiters {
				s.met.outcome(oc)
				replay(w)
				r := meta
				r.err = err
				w.done <- r
			}
		}
		return
	}
	if out.BatchedRun {
		s.met.batchedRuns.Inc()
		s.met.edgeScansSaved.Add(out.EdgeScansSaved)
	}
	for i, ln := range b.lanes {
		item := out.Results[i]
		// Per-lane cache fill: only lanes that completed cleanly under the
		// requested transport policy. A degraded lane ran rerouted onto
		// static-uvm — a policy its cache key does not name — so it must
		// never be cached even when its batchmates are.
		if item.Err == nil && ln.cachable && !item.Res.Degraded {
			s.cache.put(ln.key, item.Res)
		}
		for wi, w := range ln.waiters {
			switch {
			case item.Err == nil:
				s.met.outcome(outcomeOK)
			case errors.Is(item.Err, emogi.ErrCanceled):
				s.met.outcome(outcomeCanceled)
			default:
				s.met.outcome(outcomeError)
			}
			res := item.Res
			if wi > 0 {
				// Waiters legitimately mutate their response; duplicates
				// of a lane each get a private copy.
				res = cloneResult(res)
			}
			replay(w)
			r := meta
			r.res = res
			r.err = item.Err
			w.done <- r
		}
	}
}

// executeBatch runs one batch through DoBatch with the same retry,
// backoff, and degradation ladder as single requests (execute): the
// whole batch retries on transient faults, and after DegradeAfter
// consecutive zero-copy failures the remaining attempts run every lane
// under the static-uvm policy override, marking each delivered Result
// Degraded. The batch itself never carries a caller context — each lane
// detaches through its own waiters' contexts instead.
func (s *Service) executeBatch(t *task) (*emogi.BatchOutcome, error) {
	b := t.batch
	stop := make(chan struct{})
	defer close(stop)
	reqs := make([]emogi.Request, len(b.lanes))
	for i, ln := range b.lanes {
		reqs[i] = emogi.Request{
			Graph:   b.dg,
			Algo:    b.key.algo,
			Src:     ln.src,
			Variant: b.variant,
			Cold:    true,
			Policy:  b.pol,
			Ctx:     laneContext(ln.waiters, stop),
		}
	}
	degraded := false
	consecutive := 0
	var lastErr error
	for attempt := 0; attempt < s.cfg.RetryAttempts; attempt++ {
		t.attempts = attempt + 1
		if attempt > 0 {
			s.met.retries.Inc()
			if err := s.backoff(t, attempt); err != nil {
				return nil, err
			}
		}
		// The batch trace rides the dispatch context so the collector
		// attributes the shared run's rounds to it.
		execStart := time.Now()
		out, err := s.sys.DoBatch(telemetry.WithTrace(context.Background(), t.trace), reqs)
		s.syncFaultCounters()
		s.stageSpan(t, telemetry.StageExecute, attempt+1, execStart, executeDetail(degraded, err))
		if err == nil {
			if degraded {
				for _, item := range out.Results {
					if item.Res != nil {
						item.Res.Degraded = true
						s.met.degraded.Inc()
					}
				}
			}
			return out, nil
		}
		var te *emogi.TransientError
		if errors.As(err, &te) {
			t.faults += te.Faults
		}
		if !errors.Is(err, emogi.ErrTransient) {
			return nil, err
		}
		lastErr = err
		consecutive++
		if !degraded && consecutive >= s.cfg.DegradeAfter && attempt+1 < s.cfg.RetryAttempts {
			degStart := time.Now()
			for i := range reqs {
				reqs[i].Policy = emogi.StaticPolicy(emogi.UVM)
			}
			degraded = true
			s.stageSpan(t, telemetry.StageDegrade, attempt+1, degStart, "rerouted onto static-uvm policy")
		}
	}
	return nil, fmt.Errorf("service: retry budget exhausted after %d attempts: %w",
		s.cfg.RetryAttempts, lastErr)
}

// laneContext merges a lane's waiters into the context the engine
// watches: one waiter passes its context through; duplicates yield a
// context done only when every waiter's is — one surviving requester
// keeps the lane running. The watcher goroutine exits with the batch
// through stop.
func laneContext(waiters []*batchWaiter, stop <-chan struct{}) context.Context {
	if len(waiters) == 1 {
		return waiters[0].ctx
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for _, w := range waiters {
			select {
			case <-w.ctx.Done():
			case <-stop:
				return
			}
		}
		cancel()
	}()
	return ctx
}
