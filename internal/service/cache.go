package service

import (
	"container/list"
	"sync"

	emogi "repro"
)

// cacheKey identifies one deterministic traversal: the simulator is
// bit-for-bit reproducible, so (dataset, algorithm, source, variant,
// transport) fully determines the Result for cold-cache runs. Src and
// variant are normalized at key construction (source-free algorithms
// ignore src, fixed-variant kernels ignore variant) so equivalent
// requests share an entry.
type cacheKey struct {
	dataset   string
	algo      string
	src       int
	variant   emogi.Variant
	transport emogi.Transport
}

// resultCache is a small mutex-guarded LRU over *emogi.Result. Cached
// results are shared between callers; they are treated as immutable by
// convention, like every Result the engine hands out.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; elements hold *cacheEntry
	m   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *emogi.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *resultCache) get(k cacheKey) (*emogi.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(k cacheKey, res *emogi.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
