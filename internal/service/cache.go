package service

import (
	"container/list"
	"fmt"
	"sync"

	emogi "repro"
)

// cacheKey identifies one deterministic traversal: the simulator is
// bit-for-bit reproducible, so (dataset, algorithm, source, variant,
// transport policy) fully determines the Result for cold-cache runs — a
// routed policy's per-round decisions are themselves a pure function of
// those inputs. Src and variant are normalized at key construction
// (source-free algorithms ignore src, fixed-variant kernels ignore
// variant) so equivalent requests share an entry. policy is the registry
// name of the policy the run executes under (the dataset's loaded policy,
// or the request's override).
type cacheKey struct {
	dataset string
	algo    string
	src     int
	variant emogi.Variant
	policy  string
}

// resultCache is a small mutex-guarded LRU over emogi.Result values. Both
// put and get copy: the cache never shares a *Result (or its Values
// backing array) with any caller, so one caller mutating its response —
// which handlers legitimately do — cannot corrupt what later hits see.
// "Immutable by convention" was the previous contract and it was a bug:
// concurrent hits on one key observed each other's writes.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; elements hold *cacheEntry
	m   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *emogi.Result
}

// newResultCache builds an LRU holding up to capacity entries. A capacity
// of zero or less is a constructor error, not an empty cache: the old
// behavior silently evicted every entry on insert, turning a
// configuration mistake into a 0% hit rate. Callers that want caching off
// must not construct a cache at all (Config.CacheEntries < 0).
func newResultCache(capacity int) (*resultCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("service: result cache capacity %d is not positive; disable caching instead of sizing it to zero", capacity)
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capacity),
	}, nil
}

// cloneResult returns a deep copy of res: the struct plus a private copy
// of the Values slice (Stats is a plain value struct; no other field holds
// shared mutable state).
func cloneResult(res *emogi.Result) *emogi.Result {
	if res == nil {
		return nil
	}
	out := *res
	if res.Values != nil {
		out.Values = make([]uint32, len(res.Values))
		copy(out.Values, res.Values)
	}
	return &out
}

func (c *resultCache) get(k cacheKey) (*emogi.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return cloneResult(el.Value.(*cacheEntry).res), true
}

func (c *resultCache) put(k cacheKey, res *emogi.Result) {
	stored := cloneResult(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).res = stored
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, res: stored})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
