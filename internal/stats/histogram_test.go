package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("zero-value histogram not empty: total=%d sum=%d", h.Total(), h.Sum())
	}
	h.Add(32)
	h.Add(32)
	h.Add(128)
	if got := h.Count(32); got != 2 {
		t.Errorf("Count(32) = %d, want 2", got)
	}
	if got := h.Count(128); got != 1 {
		t.Errorf("Count(128) = %d, want 1", got)
	}
	if got := h.Count(64); got != 0 {
		t.Errorf("Count(64) = %d, want 0", got)
	}
	if got := h.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	if got := h.Sum(); got != 192 {
		t.Errorf("Sum = %d, want 192", got)
	}
	if got := h.Mean(); got != 64 {
		t.Errorf("Mean = %v, want 64", got)
	}
	if got := h.Fraction(32); got != 2.0/3.0 {
		t.Errorf("Fraction(32) = %v, want 2/3", got)
	}
}

func TestHistogramAddNZero(t *testing.T) {
	var h Histogram
	h.AddN(32, 0)
	if h.Total() != 0 {
		t.Errorf("AddN(v, 0) should be a no-op, total = %d", h.Total())
	}
	if len(h.Keys()) != 0 {
		t.Errorf("AddN(v, 0) should not create keys: %v", h.Keys())
	}
}

func TestHistogramKeysSorted(t *testing.T) {
	var h Histogram
	for _, v := range []int64{128, 32, 96, 64, 32} {
		h.Add(v)
	}
	keys := h.Keys()
	want := []int64{32, 64, 96, 128}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.AddN(32, 5)
	a.AddN(64, 2)
	b.AddN(32, 3)
	b.AddN(128, 7)
	total := a.Total() + b.Total()
	sum := a.Sum() + b.Sum()
	a.Merge(&b)
	if a.Total() != total {
		t.Errorf("merged Total = %d, want %d", a.Total(), total)
	}
	if a.Sum() != sum {
		t.Errorf("merged Sum = %d, want %d", a.Sum(), sum)
	}
	if a.Count(32) != 8 || a.Count(64) != 2 || a.Count(128) != 7 {
		t.Errorf("merged counts wrong: %s", a.String())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramCloneIndependence(t *testing.T) {
	var h Histogram
	h.AddN(32, 4)
	c := h.Clone()
	c.Add(64)
	if h.Count(64) != 0 {
		t.Errorf("mutating clone changed original")
	}
	if c.Count(32) != 4 || c.Count(64) != 1 {
		t.Errorf("clone counts wrong: %s", c.String())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.AddN(32, 10)
	h.Reset()
	if h.Total() != 0 || h.Sum() != 0 || len(h.Keys()) != 0 {
		t.Errorf("Reset did not clear histogram")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.AddN(128, 2)
	h.AddN(32, 1)
	if got, want := h.String(), "32:1 128:2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: Total always equals the sum of per-key counts, and Sum equals
// the weighted sum of keys, no matter the insertion sequence.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []int16, reps []uint8) bool {
		var h Histogram
		var wantTotal uint64
		var wantSum int64
		for i, v := range vals {
			n := uint64(1)
			if i < len(reps) {
				n = uint64(reps[i])
			}
			h.AddN(int64(v), n)
			wantTotal += n
			wantSum += int64(v) * int64(n)
		}
		var keyTotal uint64
		for _, k := range h.Keys() {
			keyTotal += h.Count(k)
		}
		return h.Total() == wantTotal && h.Sum() == wantSum && keyTotal == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two histograms is observation-preserving and commutative
// in the aggregate counts.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var a, b, ab, ba Histogram
		for i := 0; i < 50; i++ {
			v := int64(rng.Intn(5)) * 32
			if rng.Intn(2) == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		ab.Merge(&a)
		ab.Merge(&b)
		ba.Merge(&b)
		ba.Merge(&a)
		if ab.String() != ba.String() {
			t.Fatalf("merge not commutative: %q vs %q", ab.String(), ba.String())
		}
		if ab.Total() != a.Total()+b.Total() {
			t.Fatalf("merge lost observations")
		}
	}
}
