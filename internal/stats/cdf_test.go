package stats

import (
	"math/rand"
	"testing"
)

func TestCDFBasic(t *testing.T) {
	// Degrees 1, 2, 3 with edge weights 10, 20, 70.
	c := NewCDF([]int64{1, 2, 3}, []float64{10, 20, 70})
	cases := []struct {
		x    int64
		want float64
	}{
		{0, 0},
		{1, 0.1},
		{2, 0.3},
		{3, 1.0},
		{100, 1.0},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.TotalWeight(); got != 100 {
		t.Errorf("TotalWeight = %v, want 100", got)
	}
}

func TestCDFDuplicatesMerged(t *testing.T) {
	c := NewCDF([]int64{5, 5, 5}, []float64{1, 2, 3})
	if got := c.At(5); got != 1.0 {
		t.Errorf("At(5) = %v, want 1", got)
	}
	if got := c.At(4); got != 0.0 {
		t.Errorf("At(4) = %v, want 0", got)
	}
	if got := len(c.Support()); got != 1 {
		t.Errorf("Support has %d points, want 1", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]int64{10, 20, 30, 40}, []float64{25, 25, 25, 25})
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10},
		{0.25, 10},
		{0.26, 20},
		{0.5, 20},
		{0.75, 30},
		{1.0, 40},
		{2.0, 40},  // clamped
		{-1.0, 10}, // clamped
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil, nil)
	if c.At(10) != 0 || c.Quantile(0.5) != 0 || c.TotalWeight() != 0 {
		t.Errorf("empty CDF should return zeros")
	}
	var nilCDF *CDF
	if nilCDF.At(1) != 0 || nilCDF.TotalWeight() != 0 {
		t.Errorf("nil CDF should return zeros")
	}
}

func TestCDFMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on mismatched lengths")
		}
	}()
	NewCDF([]int64{1}, []float64{1, 2})
}

func TestCDFNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on negative weight")
		}
	}()
	NewCDF([]int64{1}, []float64{-1})
}

func TestCDFSample(t *testing.T) {
	c := NewCDF([]int64{16, 48}, []float64{50, 50})
	got := c.Sample([]int64{0, 16, 32, 48, 96})
	want := []float64{0, 0.5, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the CDF is monotone non-decreasing and bounded by [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		vals := make([]int64, n)
		ws := make([]float64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(200))
			ws[i] = rng.Float64() * 10
		}
		c := NewCDF(vals, ws)
		prev := -1.0
		for x := int64(-5); x <= 205; x += 3 {
			v := c.At(x)
			if v < prev-1e-12 {
				t.Fatalf("CDF not monotone at x=%d: %v < %v", x, v, prev)
			}
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("CDF out of range at x=%d: %v", x, v)
			}
			prev = v
		}
		if got := c.At(205); got < 1-1e-12 {
			t.Fatalf("CDF should reach 1 above max support, got %v", got)
		}
	}
}
