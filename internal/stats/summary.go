package stats

import "math"

// Summary accumulates a running mean/variance/min/max over float64
// observations using Welford's algorithm. The zero value is ready to use.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator), or 0 when there
// are fewer than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s, as if every observation seen by other had been
// Added to s (Chan et al. parallel variance combination).
func (s *Summary) Merge(other *Summary) {
	if other == nil || other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	s.mean += delta * float64(other.n) / float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n = n
}

// GeoMean computes the geometric mean of xs, ignoring non-positive entries.
// It returns 0 if no positive entries remain. The paper's "average speedup"
// figures are arithmetic means; GeoMean is provided for the harness's
// supplementary reporting.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean computes the arithmetic mean of xs, returning 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
