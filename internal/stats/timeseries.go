package stats

import "time"

// Point is one sample in a TimeSeries.
type Point struct {
	T time.Duration // simulated time at the end of the sample window
	V float64       // value over the window (e.g. bandwidth in bytes/sec)
}

// TimeSeries records values over simulated time, used to render
// bandwidth-over-time traces like the paper's Figure 4. The zero value is
// ready to use.
type TimeSeries struct {
	pts []Point
}

// Append adds a sample. Samples should be appended in non-decreasing time
// order; Append panics otherwise to catch accounting bugs early.
func (ts *TimeSeries) Append(t time.Duration, v float64) {
	if n := len(ts.pts); n > 0 && t < ts.pts[n-1].T {
		panic("stats: TimeSeries samples must be time-ordered")
	}
	ts.pts = append(ts.pts, Point{T: t, V: v})
}

// Points returns the recorded samples. The returned slice is shared with the
// series and must not be mutated.
func (ts *TimeSeries) Points() []Point { return ts.pts }

// Reset discards all samples but keeps the backing capacity, so steady-state
// reset+sample cycles do not allocate. Samples handed out by Points before
// the reset are invalidated (their slots will be rewritten).
func (ts *TimeSeries) Reset() { ts.pts = ts.pts[:0] }

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.pts) }

// TimeWeightedMean returns the mean value weighted by the duration each
// sample covers (from the previous sample's time, or zero for the first).
// It returns 0 for an empty series.
func (ts *TimeSeries) TimeWeightedMean() float64 {
	if len(ts.pts) == 0 {
		return 0
	}
	var sum float64
	var total time.Duration
	prev := time.Duration(0)
	for _, p := range ts.pts {
		w := p.T - prev
		if w <= 0 {
			// Zero-width windows (back-to-back instantaneous samples)
			// contribute nothing but are not an error.
			prev = p.T
			continue
		}
		sum += p.V * w.Seconds()
		total += w
		prev = p.T
	}
	if total <= 0 {
		// All samples at t=0: fall back to the plain mean.
		s := 0.0
		for _, p := range ts.pts {
			s += p.V
		}
		return s / float64(len(ts.pts))
	}
	return sum / total.Seconds()
}

// Peak returns the largest sample value, or 0 for an empty series.
func (ts *TimeSeries) Peak() float64 {
	peak := 0.0
	for _, p := range ts.pts {
		if p.V > peak {
			peak = p.V
		}
	}
	return peak
}
