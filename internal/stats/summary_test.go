package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	// Sample variance with n-1 = 7: sum of squared deviations = 32.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Errorf("empty summary should be all zeros")
	}
	s.Add(3.5)
	if s.Variance() != 0 {
		t.Errorf("single-observation variance should be 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single observation min/max wrong")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var all, a, b Summary
		n := 2 + rng.Intn(100)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 50
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.N() != all.N() {
			t.Fatalf("merged N = %d, want %d", a.N(), all.N())
		}
		if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
			t.Fatalf("merged Mean = %v, want %v", a.Mean(), all.Mean())
		}
		if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
			t.Fatalf("merged Variance = %v, want %v", a.Variance(), all.Variance())
		}
		if a.Min() != all.Min() || a.Max() != all.Max() {
			t.Fatalf("merged min/max wrong")
		}
	}
}

func TestSummaryMergeEdgeCases(t *testing.T) {
	var a Summary
	a.Merge(nil) // no-op
	var empty Summary
	a.Merge(&empty) // no-op
	if a.N() != 0 {
		t.Errorf("merging empties should leave summary empty")
	}
	var b Summary
	b.Add(7)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 7 {
		t.Errorf("merge into empty failed: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("GeoMean(1,1,1) = %v, want 1", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positive = %v, want 0", got)
	}
	// Non-positive entries are ignored, not zeroing.
	if got := GeoMean([]float64{4, 0}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(4, 0) = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestTimeSeriesBasic(t *testing.T) {
	var ts TimeSeries
	ts.Append(1*time.Second, 10)
	ts.Append(2*time.Second, 20)
	ts.Append(4*time.Second, 5)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	// Windows: [0,1s]@10, [1s,2s]@20, [2s,4s]@5 -> (10 + 20 + 10) / 4.
	if got, want := ts.TimeWeightedMean(), 10.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("TimeWeightedMean = %v, want %v", got, want)
	}
	if got := ts.Peak(); got != 20 {
		t.Errorf("Peak = %v, want 20", got)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	var ts TimeSeries
	if ts.TimeWeightedMean() != 0 || ts.Peak() != 0 || ts.Len() != 0 {
		t.Errorf("empty time series should be zeros")
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	var ts TimeSeries
	ts.Append(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on out-of-order append")
		}
	}()
	ts.Append(1*time.Second, 2)
}

func TestTimeSeriesAllAtZero(t *testing.T) {
	var ts TimeSeries
	ts.Append(0, 4)
	ts.Append(0, 8)
	if got := ts.TimeWeightedMean(); got != 6 {
		t.Errorf("degenerate series mean = %v, want 6", got)
	}
}
