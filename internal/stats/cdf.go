package stats

import "sort"

// CDF is an empirical, weighted cumulative distribution function over integer
// support, used e.g. for the paper's Figure 6 (cumulative fraction of edges
// as a function of vertex degree).
type CDF struct {
	xs []int64   // ascending, distinct support points
	cw []float64 // cumulative weight at each support point
	tw float64   // total weight
}

// NewCDF builds a CDF from (value, weight) pairs. Duplicate values are
// merged. Weights must be non-negative; pairs with zero weight are kept so
// the support still records them.
func NewCDF(values []int64, weights []float64) *CDF {
	if len(values) != len(weights) {
		panic("stats: NewCDF values/weights length mismatch")
	}
	agg := make(map[int64]float64, len(values))
	for i, v := range values {
		if weights[i] < 0 {
			panic("stats: NewCDF negative weight")
		}
		agg[v] += weights[i]
	}
	c := &CDF{
		xs: make([]int64, 0, len(agg)),
		cw: make([]float64, 0, len(agg)),
	}
	for v := range agg {
		c.xs = append(c.xs, v)
	}
	sort.Slice(c.xs, func(i, j int) bool { return c.xs[i] < c.xs[j] })
	run := 0.0
	for _, v := range c.xs {
		run += agg[v]
		c.cw = append(c.cw, run)
	}
	c.tw = run
	return c
}

// At returns P(X <= x), in [0, 1]. An empty CDF returns 0.
func (c *CDF) At(x int64) float64 {
	if c == nil || c.tw == 0 {
		return 0
	}
	// Find the last support point <= x.
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] > x })
	if i == 0 {
		return 0
	}
	return c.cw[i-1] / c.tw
}

// Quantile returns the smallest support value x with P(X <= x) >= q.
// q is clamped to [0, 1]. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) int64 {
	if c == nil || len(c.xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * c.tw
	i := sort.Search(len(c.cw), func(i int) bool { return c.cw[i] >= target })
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Support returns the ascending distinct values the CDF is defined over.
func (c *CDF) Support() []int64 {
	out := make([]int64, len(c.xs))
	copy(out, c.xs)
	return out
}

// TotalWeight returns the sum of all weights.
func (c *CDF) TotalWeight() float64 {
	if c == nil {
		return 0
	}
	return c.tw
}

// Sample evaluates the CDF at each of the given points, returning
// P(X <= x) for each. Useful for rendering fixed-axis plots.
func (c *CDF) Sample(points []int64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = c.At(p)
	}
	return out
}
