// Package stats provides the small statistics substrate shared by the
// simulator's traffic monitor and the experiment harness: integer-keyed
// histograms, weighted CDFs, running summaries, and time series.
//
// Everything in this package is deterministic and allocation-conscious; the
// hot path (Histogram.Add) is called once per simulated PCIe request.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts occurrences of integer-valued observations, such as PCIe
// request sizes in bytes. The zero value is ready to use.
type Histogram struct {
	counts map[int64]uint64
	total  uint64
	sum    int64
}

// Add records one observation of value v.
func (h *Histogram) Add(v int64) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *Histogram) AddN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int64]uint64)
	}
	h.counts[v] += n
	h.total += n
	h.sum += v * int64(n)
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int64) uint64 {
	return h.counts[v]
}

// Total returns the total number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all observed values (e.g. total bytes when the
// histogram keys are request sizes).
func (h *Histogram) Sum() int64 { return h.sum }

// Fraction returns the fraction of observations with value v, in [0, 1].
// It returns 0 for an empty histogram.
func (h *Histogram) Fraction(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Mean returns the mean observed value, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Keys returns the distinct observed values in ascending order.
func (h *Histogram) Keys() []int64 {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Merge adds all observations from other into h. Merging preserves totals:
// after the call, h.Total() has grown by other.Total().
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for k, n := range other.counts {
		h.AddN(k, n)
	}
}

// Reset discards all observations. The bucket map is retained (cleared, not
// dropped), so reset+record cycles over a stable key set — the traffic
// monitor's per-run lifecycle — do not allocate.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total = 0
	h.sum = 0
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{total: h.total, sum: h.sum}
	if h.counts != nil {
		c.counts = make(map[int64]uint64, len(h.counts))
		for k, v := range h.counts {
			c.counts[k] = v
		}
	}
	return c
}

// String renders the histogram as "key:count" pairs in ascending key order,
// which keeps test failure output readable.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h.counts[k])
	}
	return b.String()
}
