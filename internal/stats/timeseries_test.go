package stats

import (
	"math"
	"testing"
	"time"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestTimeWeightedMeanEmpty(t *testing.T) {
	var ts TimeSeries
	if got := ts.TimeWeightedMean(); got != 0 {
		t.Errorf("empty series mean = %v, want 0", got)
	}
	if got := ts.Peak(); got != 0 {
		t.Errorf("empty series peak = %v, want 0", got)
	}
}

func TestTimeWeightedMeanSingleSample(t *testing.T) {
	var ts TimeSeries
	ts.Append(2*time.Second, 10)
	// One sample covering [0, 2s): the mean is the sample itself.
	if got := ts.TimeWeightedMean(); !almostEqual(got, 10) {
		t.Errorf("single-sample mean = %v, want 10", got)
	}
}

func TestTimeWeightedMeanSingleSampleAtZero(t *testing.T) {
	// A single sample at t=0 has a zero-width window; the fallback plain
	// mean must kick in rather than dividing by zero.
	var ts TimeSeries
	ts.Append(0, 7)
	if got := ts.TimeWeightedMean(); !almostEqual(got, 7) {
		t.Errorf("t=0 sample mean = %v, want 7", got)
	}
}

func TestTimeWeightedMeanAllZeroDurationWindows(t *testing.T) {
	// Several instantaneous samples at the same timestamp: total weight is
	// zero, so the plain mean of the values is returned, never NaN.
	var ts TimeSeries
	ts.Append(time.Second, 2)
	ts.Append(time.Second, 4)
	ts.Append(time.Second, 6)
	got := ts.TimeWeightedMean()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero-duration series mean = %v, must be finite", got)
	}
	// First sample covers [0, 1s) with weight 1s; the two zero-width
	// repeats contribute nothing.
	if !almostEqual(got, 2) {
		t.Errorf("mean = %v, want 2 (only the first window has weight)", got)
	}
}

func TestTimeWeightedMeanWeighting(t *testing.T) {
	// 1s at 10 then 3s at 2: mean = (10*1 + 2*3) / 4 = 4.
	var ts TimeSeries
	ts.Append(time.Second, 10)
	ts.Append(4*time.Second, 2)
	if got := ts.TimeWeightedMean(); !almostEqual(got, 4) {
		t.Errorf("weighted mean = %v, want 4", got)
	}
	if got := ts.Peak(); !almostEqual(got, 10) {
		t.Errorf("peak = %v, want 10", got)
	}
}

func TestTimeWeightedMeanZeroWidthMidSeries(t *testing.T) {
	// A zero-width window in the middle contributes nothing but does not
	// derail the weighting of its neighbors.
	var ts TimeSeries
	ts.Append(time.Second, 6)    // [0,1s) at 6
	ts.Append(time.Second, 1000) // zero-width, ignored
	ts.Append(2*time.Second, 12) // [1s,2s) at 12
	if got, want := ts.TimeWeightedMean(), 9.0; !almostEqual(got, want) {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	var ts TimeSeries
	ts.Append(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-order Append must panic")
		}
	}()
	ts.Append(time.Second, 2)
}
