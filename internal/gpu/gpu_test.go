package gpu

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

func TestDeviceDefaults(t *testing.T) {
	d := NewDevice(Config{Link: pcie.Gen3x16(), HBM: memsys.HBM2V100(), HostDRAM: memsys.DDR4Quad()})
	cfg := d.Config()
	if cfg.LaunchOverhead == 0 || cfg.CopyOverhead == 0 || cfg.WarpInstrPerSec == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestLaunchAdvancesClock(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	before := d.Clock()
	ks := d.Launch("k", 4, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i)
		}
		w.GatherU32(buf, &idx, MaskFull)
	})
	if d.Clock() <= before {
		t.Errorf("clock did not advance")
	}
	if ks.Elapsed < d.Config().LaunchOverhead {
		t.Errorf("elapsed %v below launch overhead", ks.Elapsed)
	}
	if ks.Warps != 4 {
		t.Errorf("Warps = %d, want 4", ks.Warps)
	}
	if len(d.Kernels()) != 1 {
		t.Errorf("kernel log length = %d, want 1", len(d.Kernels()))
	}
}

func TestLaunchNegativeWarpsPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	d.Launch("bad", -1, func(w *Warp) {})
}

// TestRooflineZeroCopyBandwidth: a long stream of aligned 128B zero-copy
// requests should achieve ~12.3 GB/s of simulated bandwidth (the calibrated
// memcpy peak), demonstrating the paper's central claim that merged+aligned
// zero-copy saturates PCIe.
func TestRooflineZeroCopyBandwidth(t *testing.T) {
	d := testDevice()
	const elems = 1 << 18 // 2MB of 8B elements
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, elems*8)
	ks := d.Launch("stream", elems/(WarpSize*8), func(w *Warp) {
		base := int64(w.ID()) * WarpSize * 8
		var idx [WarpSize]int64
		for it := 0; it < 8; it++ {
			for i := range idx {
				idx[i] = base + int64(it*WarpSize+i)
			}
			w.GatherU64(buf, &idx, MaskFull)
		}
	})
	dataTime := ks.Elapsed - d.Config().LaunchOverhead
	bw := float64(ks.PCIePayloadBytes) / dataTime.Seconds()
	if math.Abs(bw/1e9-12.3) > 0.5 {
		t.Errorf("streaming bandwidth = %.2f GB/s, want ~12.3", bw/1e9)
	}
}

// TestRooflineStridedBandwidth: 32B-request streams should be tag-limited
// to ~4.75 GB/s (Figure 4a).
func TestRooflineStridedBandwidth(t *testing.T) {
	d := testDevice()
	const lines = 1 << 14
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, lines*128)
	ks := d.Launch("strided", lines/WarpSize, func(w *Warp) {
		var idx [WarpSize]int64
		for s := 0; s < 4; s++ { // four sectors per 128B line
			for i := range idx {
				// lane i strides over its own 128B block, sector s
				idx[i] = int64(w.ID()*WarpSize+i)*16 + int64(s*4)
			}
			w.GatherU64(buf, &idx, MaskFull)
		}
	})
	dataTime := ks.Elapsed - d.Config().LaunchOverhead
	bw := float64(ks.PCIePayloadBytes) / dataTime.Seconds()
	if math.Abs(bw/1e9-4.75) > 0.3 {
		t.Errorf("strided bandwidth = %.2f GB/s, want ~4.75", bw/1e9)
	}
	// DRAM side sees 2x the payload (64B min burst for 32B requests).
	if got := float64(ks.HostDRAMBytes) / float64(ks.PCIePayloadBytes); math.Abs(got-2.0) > 0.01 {
		t.Errorf("DRAM amplification = %.2f, want 2.0", got)
	}
}

// TestUVMAccess: touching a UVM buffer migrates pages once, then serves
// from HBM.
func TestUVMAccess(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("uvm", memsys.SpaceUVM, 2*memsys.PageBytes)
	ks := d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		for i := range idx {
			idx[i] = int64(i)
		}
		w.GatherU64(buf, &idx, MaskFull) // 256B in page 0
		w.GatherU64(buf, &idx, MaskFull) // MRU... invalidate to re-access
		w.InvalidateMRU()
		w.GatherU64(buf, &idx, MaskFull) // resident now
	})
	// The 2-page buffer is migrated as one clipped prefetch block on
	// first touch (driver block prefetching).
	if ks.UVMMigrations != 2 {
		t.Errorf("migrations = %d, want 2", ks.UVMMigrations)
	}
	if ks.UVMHits == 0 {
		t.Errorf("expected UVM hits on resident page")
	}
	if ks.PCIePayloadBytes != 2*memsys.PageBytes {
		t.Errorf("PCIe payload = %d, want both pages (%d)", ks.PCIePayloadBytes, 2*memsys.PageBytes)
	}
	if ks.UVMSerialSeconds <= 0 {
		t.Errorf("UVM CPU time not accounted")
	}
}

// TestUVMReadAmplification: a sparse access pattern (one sector per page)
// moves 4KB per 32B of useful data — the paper's 4KB-page amplification.
func TestUVMReadAmplification(t *testing.T) {
	d := testDevice()
	pages := 64
	buf := d.Arena().MustAlloc("uvm", memsys.SpaceUVM, int64(pages*memsys.PageBytes))
	ks := d.Launch("sparse", pages, func(w *Warp) {
		var idx [WarpSize]int64
		idx[0] = int64(w.ID() * memsys.PageBytes / 8)
		w.GatherU64(buf, &idx, MaskFirstN(1))
	})
	useful := uint64(pages * 32)
	if ks.PCIePayloadBytes != uint64(pages*memsys.PageBytes) {
		t.Errorf("moved %d bytes, want %d", ks.PCIePayloadBytes, pages*memsys.PageBytes)
	}
	amp := float64(ks.PCIePayloadBytes) / float64(useful)
	if amp != 128 {
		t.Errorf("amplification = %v, want 128 (4096/32)", amp)
	}
}

// TestUVMCapacityPages: UVM caching capacity shrinks as explicit GPU
// allocations grow.
func TestUVMCapacityPages(t *testing.T) {
	d := NewDevice(Config{
		MemBytes: 64 * memsys.PageBytes,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
	if got := d.UVM().Config().CapacityPages; got != 64 {
		t.Errorf("initial capacity = %d pages, want 64", got)
	}
	d.Arena().MustAlloc("v", memsys.SpaceGPU, 16*memsys.PageBytes)
	d.ResetUVMResidency()
	if got := d.UVM().Config().CapacityPages; got != 48 {
		t.Errorf("capacity after alloc = %d pages, want 48", got)
	}
}

func TestCopyToDevice(t *testing.T) {
	d := testDevice()
	before := d.Clock()
	dt := d.CopyToDevice(1 << 20)
	if dt <= d.Config().CopyOverhead {
		t.Errorf("copy time %v should exceed overhead", dt)
	}
	if d.Clock()-before != dt {
		t.Errorf("clock advance mismatch")
	}
	if d.Monitor().PayloadBytes() != 1<<20 {
		t.Errorf("monitor saw %d bytes, want %d", d.Monitor().PayloadBytes(), 1<<20)
	}
	// Bandwidth sanity: 1MB at ~12.3GB/s ≈ 85us + 10us overhead.
	if dt > 120*time.Microsecond {
		t.Errorf("copy too slow: %v", dt)
	}
}

func TestCopyToHostNotMonitored(t *testing.T) {
	// The monitor observes GPU-bound read traffic like the paper's FPGA;
	// result downloads don't pollute request-size histograms.
	d := testDevice()
	d.CopyToHost(4096)
	if d.Monitor().Requests() != 0 {
		t.Errorf("D2H copy should not be recorded by the monitor")
	}
	if d.Clock() == 0 {
		t.Errorf("D2H copy should advance the clock")
	}
}

func TestHostCompute(t *testing.T) {
	d := testDevice()
	d.HostCompute(5 * time.Millisecond)
	if d.Clock() != 5*time.Millisecond {
		t.Errorf("clock = %v, want 5ms", d.Clock())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on negative host compute")
		}
	}()
	d.HostCompute(-time.Second)
}

func TestResetStats(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4096)
	d.Launch("k", 1, func(w *Warp) {
		var idx [WarpSize]int64
		w.GatherU64(buf, &idx, MaskFirstN(1))
	})
	d.ResetStats()
	if d.Clock() != 0 || len(d.Kernels()) != 0 || d.Monitor().Requests() != 0 {
		t.Errorf("ResetStats incomplete")
	}
	if d.Total().PCIeRequests != 0 {
		t.Errorf("total not reset")
	}
	// Allocations survive.
	if len(d.Arena().Buffers()) != 1 {
		t.Errorf("allocations should survive ResetStats")
	}
}

func TestKernelStatsAdd(t *testing.T) {
	a := KernelStats{Warps: 1, WarpInstrs: 2, HBMBytes: 3, PCIeRequests: 4,
		PCIePayloadBytes: 5, HostDRAMBytes: 6, UVMMigrations: 7, UVMHits: 8,
		WireSeconds: 1, TagSeconds: 2, UVMSerialSeconds: 3, Elapsed: time.Second}
	b := a
	a.Add(&b)
	if a.Warps != 2 || a.WarpInstrs != 4 || a.HBMBytes != 6 || a.PCIeRequests != 8 ||
		a.PCIePayloadBytes != 10 || a.HostDRAMBytes != 12 || a.UVMMigrations != 14 ||
		a.UVMHits != 16 || a.WireSeconds != 2 || a.TagSeconds != 4 ||
		a.UVMSerialSeconds != 6 || a.Elapsed != 2*time.Second {
		t.Errorf("Add wrong: %+v", a)
	}
}

// Property: for random access patterns, the coalescer's emitted requests
// exactly cover the set of missed sectors — no gaps, no overlap, and all
// request sizes are in {32, 64, 96, 128} with matching alignment.
func TestCoalescerCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		d := testDevice()
		buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 1<<16)
		var idx [WarpSize]int64
		mask := Mask(rng.Uint32())
		for i := range idx {
			idx[i] = rng.Int63n(1 << 13)
		}
		// Expected: distinct sectors across active lanes.
		want := map[uint64]bool{}
		for i := 0; i < WarpSize; i++ {
			if mask.Has(i) {
				want[(buf.Base+uint64(idx[i]*8))>>5] = true
			}
		}
		d.Launch("k", 1, func(w *Warp) {
			w.GatherU64(buf, &idx, mask)
		})
		snap := d.Monitor().Snapshot()
		var covered uint64
		for size, count := range snap.BySize {
			if size%32 != 0 || size < 32 || size > 128 {
				t.Fatalf("trial %d: illegal request size %d", trial, size)
			}
			covered += uint64(size/32) * count
		}
		if covered != uint64(len(want)) {
			t.Fatalf("trial %d: covered %d sectors, want %d (mask=%#x)",
				trial, covered, len(want), mask)
		}
	}
}

func TestKernelStatsSub(t *testing.T) {
	a := KernelStats{Warps: 5, WarpInstrs: 10, HBMBytes: 20, PCIeRequests: 7,
		PCIePayloadBytes: 224, HostDRAMBytes: 256, UVMMigrations: 3, UVMHits: 4,
		WireSeconds: 2, TagSeconds: 3, UVMSerialSeconds: 4, Elapsed: 10 * time.Second,
		ZCSectorReuses: 6, ZCActiveLanes: 8, ZCRefetches: 2, MaxWarpHostReqs: 9}
	b := KernelStats{Warps: 2, WarpInstrs: 4, HBMBytes: 8, PCIeRequests: 3,
		PCIePayloadBytes: 96, HostDRAMBytes: 128, UVMMigrations: 1, UVMHits: 2,
		WireSeconds: 1, TagSeconds: 1, UVMSerialSeconds: 1, Elapsed: 4 * time.Second,
		ZCSectorReuses: 1, ZCActiveLanes: 2, ZCRefetches: 1, MaxWarpHostReqs: 4}
	d := a.Sub(b)
	if d.Warps != 3 || d.WarpInstrs != 6 || d.HBMBytes != 12 || d.PCIeRequests != 4 ||
		d.PCIePayloadBytes != 128 || d.HostDRAMBytes != 128 || d.UVMMigrations != 2 ||
		d.UVMHits != 2 || d.WireSeconds != 1 || d.TagSeconds != 2 ||
		d.UVMSerialSeconds != 3 || d.Elapsed != 6*time.Second ||
		d.ZCSectorReuses != 5 || d.ZCActiveLanes != 6 || d.ZCRefetches != 1 {
		t.Errorf("Sub wrong: %+v", d)
	}
	// MaxWarpHostReqs is max-aggregated: Sub keeps the current value.
	if d.MaxWarpHostReqs != 9 {
		t.Errorf("MaxWarpHostReqs = %d, want 9 (kept, not subtracted)", d.MaxWarpHostReqs)
	}
}

func TestMemset(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("m", memsys.SpaceGPU, 1<<20)
	for i := range buf.Data {
		buf.Data[i] = 0xAB
	}
	before := d.Clock()
	d.Memset(buf, 0)
	if d.Clock() <= before {
		t.Errorf("Memset should advance the clock")
	}
	for i, v := range buf.Data {
		if v != 0 {
			t.Fatalf("byte %d not cleared: %#x", i, v)
		}
	}
}

func TestWarpMiscAccessors(t *testing.T) {
	d := testDevice()
	buf := d.Arena().MustAlloc("g", memsys.SpaceGPU, 64)
	buf.PutU32(3, 99)
	ks := d.Launch("k", 1, func(w *Warp) {
		if w.LaneCount() != WarpSize {
			t.Errorf("LaneCount = %d", w.LaneCount())
		}
		w.Instr(7)
		if got := w.ScalarU32(buf, 3); got != 99 {
			t.Errorf("ScalarU32 = %d, want 99", got)
		}
		w.SplitWorker() // no host traffic yet: must be harmless
	})
	// 7 explicit instrs + 1 per access.
	if ks.WarpInstrs < 8 {
		t.Errorf("WarpInstrs = %d, want >= 8", ks.WarpInstrs)
	}
}
