package gpu

import (
	"fmt"
	"testing"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

func TestShardRangeProperties(t *testing.T) {
	cases := []struct{ warps, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 8}, {7, 8}, {8, 8}, {9, 8},
		{100, 1}, {100, 3}, {100, 7}, {1000, 16}, {31, 32},
	}
	for _, c := range cases {
		covered := make([]int, c.warps)
		prevHi := 0
		for i := 0; i < c.workers; i++ {
			lo, hi := ShardRange(c.warps, c.workers, i)
			if lo != prevHi {
				t.Errorf("ShardRange(%d,%d,%d): lo = %d, want %d (contiguity)", c.warps, c.workers, i, lo, prevHi)
			}
			if size := hi - lo; size < c.warps/c.workers || size > c.warps/c.workers+1 {
				t.Errorf("ShardRange(%d,%d,%d): size %d not within one of %d", c.warps, c.workers, i, size, c.warps/c.workers)
			}
			for id := lo; id < hi; id++ {
				covered[id]++
			}
			prevHi = hi
		}
		if prevHi != c.warps {
			t.Errorf("ShardRange(%d,%d): last hi = %d, want %d", c.warps, c.workers, prevHi, c.warps)
		}
		for id, n := range covered {
			if n != 1 {
				t.Errorf("ShardRange(%d,%d): warp %d covered %d times", c.warps, c.workers, id, n)
			}
		}
	}
}

// launchStatsForWorkers runs a mixed zero-copy + HBM kernel — strided
// gathers from pinned memory, atomic mins into a GPU array, a scalar flag
// store — on a fresh device with the given worker count and returns the
// launch stats, the monitor snapshot, the recorded trace, and the final
// contents of the relax target.
func launchStatsForWorkers(t *testing.T, workers int) (*KernelStats, pcie.Snapshot, []pcie.TraceEntry, []uint32) {
	t.Helper()
	d := NewDevice(Config{
		Name:     fmt.Sprintf("w%d", workers),
		Workers:  workers,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
	d.Monitor().EnableTrace(4096)
	const n = 1 << 12
	edges := d.Arena().MustAlloc("edges", memsys.SpaceHostPinned, n*8)
	vals := d.Arena().MustAlloc("vals", memsys.SpaceGPU, n*4, memsys.WithElem(4))
	flag := d.Arena().MustAlloc("flag", memsys.SpaceGPU, 4, memsys.WithElem(4))
	for i := int64(0); i < n; i++ {
		edges.PutU64(i, uint64((i*2654435761)%n))
		vals.PutU32(i, ^uint32(0))
	}
	warps := n / WarpSize
	ks := d.Launch("mixed", warps, func(w *Warp) {
		base := int64(w.ID()) * WarpSize
		var idx [WarpSize]int64
		for l := 0; l < WarpSize; l++ {
			idx[l] = base + int64(l)
		}
		dst := w.GatherU64(edges, &idx, MaskFull)
		var tgt [WarpSize]int64
		var cand [WarpSize]uint32
		for l := 0; l < WarpSize; l++ {
			tgt[l] = int64(dst[l])
			cand[l] = uint32(w.ID())
		}
		w.AtomicMinU32(vals, &tgt, &cand, MaskFull)
		w.AtomicOrScalarU32(flag, 0, 1)
	})
	out := make([]uint32, n)
	for i := int64(0); i < n; i++ {
		out[i] = vals.U32(i)
	}
	return ks, d.Monitor().Snapshot(), d.Monitor().Trace(), out
}

// TestLaunchWorkerEquivalence checks the engine contract directly at the
// gpu layer: stats, clock, monitor counters, trace order, and functional
// buffer contents are identical for 1, 2, 5, and 8 workers.
func TestLaunchWorkerEquivalence(t *testing.T) {
	refKS, refSnap, refTrace, refVals := launchStatsForWorkers(t, 1)
	if refKS.PCIeRequests == 0 || refKS.HBMBytes == 0 {
		t.Fatalf("reference kernel produced no traffic: %+v", refKS)
	}
	for _, workers := range []int{2, 5, 8} {
		ks, snap, trace, vals := launchStatsForWorkers(t, workers)
		ksCopy, refCopy := *ks, *refKS
		ksCopy.Name, refCopy.Name = "", ""
		if ksCopy != refCopy {
			t.Errorf("workers=%d stats differ:\nserial:   %+v\nparallel: %+v", workers, refCopy, ksCopy)
		}
		if snap.Requests != refSnap.Requests || snap.PayloadBytes != refSnap.PayloadBytes ||
			snap.WireBytes != refSnap.WireBytes || snap.AvgBandwidth != refSnap.AvgBandwidth ||
			len(snap.BySize) != len(refSnap.BySize) {
			t.Errorf("workers=%d monitor counters differ: %+v vs %+v", workers, refSnap, snap)
		}
		for size, count := range refSnap.BySize {
			if snap.BySize[size] != count {
				t.Errorf("workers=%d monitor BySize[%d] = %d, want %d", workers, size, snap.BySize[size], count)
			}
		}
		if len(trace) != len(refTrace) {
			t.Fatalf("workers=%d trace length %d, want %d", workers, len(trace), len(refTrace))
		}
		for i := range refTrace {
			if trace[i] != refTrace[i] {
				t.Fatalf("workers=%d trace[%d] = %+v, want %+v (arrival order)", workers, i, trace[i], refTrace[i])
			}
		}
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("workers=%d vals[%d] = %d, want %d", workers, i, vals[i], refVals[i])
			}
		}
	}
}

// TestUVMLaunchForcedSerial checks that a device with a live UVM buffer
// keeps launches on the serial path: the UVM manager's LRU bookkeeping is
// order-dependent (and not thread-safe), so under -race this test also
// proves the engine never runs such a launch concurrently.
func TestUVMLaunchForcedSerial(t *testing.T) {
	run := func(workers int) (*KernelStats, []uint64) {
		d := NewDevice(Config{
			Name:     "uvm",
			Workers:  workers,
			MemBytes: 1 << 16,
			HBM:      memsys.HBM2V100(),
			HostDRAM: memsys.DDR4Quad(),
			Link:     pcie.Gen3x16(),
		})
		const n = 1 << 12
		buf := d.Arena().MustAlloc("edges", memsys.SpaceUVM, n*8)
		for i := int64(0); i < n; i++ {
			buf.PutU64(i, uint64(i)*3)
		}
		ks := d.Launch("touch", n/WarpSize, func(w *Warp) {
			base := int64(w.ID()) * WarpSize
			var idx [WarpSize]int64
			for l := 0; l < WarpSize; l++ {
				idx[l] = base + int64(l)
			}
			w.GatherU64(buf, &idx, MaskFull)
		})
		out := make([]uint64, 4)
		for i := range out {
			out[i] = buf.U64(int64(i))
		}
		return ks, out
	}
	ks1, v1 := run(1)
	ks8, v8 := run(8)
	ks8.Name = ks1.Name
	if *ks1 != *ks8 {
		t.Errorf("UVM launch stats differ across worker counts:\nw1: %+v\nw8: %+v", ks1, ks8)
	}
	if ks1.UVMMigrations == 0 {
		t.Errorf("UVM kernel did not fault any pages: %+v", ks1)
	}
	for i := range v1 {
		if v1[i] != v8[i] {
			t.Errorf("UVM data differs at %d: %d vs %d", i, v1[i], v8[i])
		}
	}
}

// TestSerialOption checks the explicit opt-out: a body that mutates plain
// host state without atomics must be safe when launched with Serial().
func TestSerialOption(t *testing.T) {
	d := NewDevice(Config{
		Name:     "serial-opt",
		Workers:  8,
		HBM:      memsys.HBM2V100(),
		HostDRAM: memsys.DDR4Quad(),
		Link:     pcie.Gen3x16(),
	})
	const warps = 1024
	order := make([]int, 0, warps)
	d.Launch("ordered", warps, func(w *Warp) {
		order = append(order, w.ID())
	}, Serial())
	if len(order) != warps {
		t.Fatalf("serial launch ran %d warps, want %d", len(order), warps)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("serial launch order[%d] = %d, want ascending IDs", i, id)
		}
	}
}
