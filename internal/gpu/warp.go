package gpu

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

// Mask selects active lanes of a warp; bit i is lane i.
type Mask uint32

// MaskFull has all 32 lanes active.
const MaskFull Mask = 0xFFFFFFFF

// MaskNone has no lanes active.
const MaskNone Mask = 0

// MaskFirstN returns a mask with lanes 0..n-1 active. n is clamped to
// [0, WarpSize].
func MaskFirstN(n int) Mask {
	if n <= 0 {
		return 0
	}
	if n >= WarpSize {
		return MaskFull
	}
	return Mask(uint32(1)<<uint(n) - 1)
}

// Has reports whether lane i is active.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Set returns m with lane i active.
func (m Mask) Set(i int) Mask { return m | 1<<uint(i) }

// Clear returns m with lane i inactive.
func (m Mask) Clear(i int) Mask { return m &^ (1 << uint(i)) }

// Count returns the number of active lanes.
func (m Mask) Count() int {
	n := 0
	for v := uint32(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

const invalidSector = ^uint64(0)

// Warp is the execution context passed to kernel bodies: 32 lanes executing
// in lock step. All memory traffic flows through the coalescing unit, which
// reproduces the request patterns of the paper's Figure 3.
type Warp struct {
	dev *Device
	ks  *KernelStats
	id  int

	// mon receives this warp's individual PCIe request records. On the
	// serial path it is the device monitor; on the parallel path it is the
	// executing worker's private shard monitor, merged in shard order at
	// the launch barrier.
	mon *pcie.Monitor

	// zcBySize counts this worker's zero-copy requests per size class
	// (32/64/96/128 bytes). The launch barrier merges the counts and
	// derives the wire/tag roofline seconds from the totals, keeping the
	// float arithmetic independent of the warp partitioning.
	zcBySize *[zcSizeClasses]uint64

	// cxlBySize is the same per-size-class count for requests served by
	// the external CXL-class tier, merged and converted with the CXL
	// link's constants at the launch barrier.
	cxlBySize *[zcSizeClasses]uint64

	// mru is the per-lane most-recently-touched 32B sector, modeling the L1
	// behaviour behind §3.3's "each thread generates a new 32-byte request
	// every time it crosses a 32-byte address boundary": repeated loads
	// within a lane's current sector do not re-issue requests.
	mru [WarpSize]uint64

	// coalescer scratch (no allocation on the hot path)
	sectors [2 * WarpSize]uint64

	// zcLanes marks lanes that streamed zero-copy data during this warp's
	// execution, feeding the L2 thrash model's concurrency estimate.
	zcLanes uint32

	// hostReqs counts host-memory requests issued by the current (virtual)
	// warp, feeding the latency-bound critical-path term. cxlReqs is the
	// external-tier analogue, kept separate because the two links have
	// very different round-trip times.
	hostReqs uint64
	cxlReqs  uint64

	// faultSeq numbers this warp's zero-copy requests within the current
	// launch, giving the fault injector a coordinate — (run epoch, warp ID,
	// request seq) — that identifies a request independently of how the
	// launch was sharded across host workers. Reset per warp by
	// runWarpRange; unused when no FaultHook is attached.
	faultSeq uint64

	// reorder is the IARU-style reorder window (see reorder.go): buffered
	// off-device sectors awaiting a line-regrouped flush. reorderCap > 0
	// enables the stage; reorderBase counts the coalesced runs buffered
	// since the last flush (the pre-reorder request baseline). The slice's
	// capacity persists across warps and launches.
	reorder     []reorderEntry
	reorderCap  int
	reorderBase uint64

	// Local is kernel-private per-worker scratch. The launch machinery
	// never touches it: it persists across warps, launches, and runs, so
	// kernels can reuse allocation-free state (e.g. the traversal engine's
	// walk buffers) for the lifetime of the executing worker.
	Local any
}

// ID returns the warp's global index within the launch grid.
func (w *Warp) ID() int { return w.id }

// LaneCount returns WarpSize; provided for readable kernel code.
func (w *Warp) LaneCount() int { return WarpSize }

// Instr accounts n extra warp instructions (loop and branch bookkeeping).
func (w *Warp) Instr(n int) { w.ks.WarpInstrs += uint64(n) }

func (w *Warp) resetMRU() {
	for i := range w.mru {
		w.mru[i] = invalidSector
	}
}

// InvalidateMRU clears the per-lane sector reuse state, e.g. at a
// synchronization point.
func (w *Warp) InvalidateMRU() { w.resetMRU() }

// flushCriticalPath folds the current virtual warp's host and CXL request
// counts into the kernel's critical-path maxima and starts a new virtual
// warp.
func (w *Warp) flushCriticalPath() {
	if w.hostReqs > w.ks.MaxWarpHostReqs {
		w.ks.MaxWarpHostReqs = w.hostReqs
	}
	w.hostReqs = 0
	if w.cxlReqs > w.ks.MaxWarpCXLReqs {
		w.ks.MaxWarpCXLReqs = w.cxlReqs
	}
	w.cxlReqs = 0
}

// SplitWorker declares a virtual warp boundary: the work that follows is
// executed by a different hardware warp in a workload-balanced kernel, so
// it does not extend this warp's latency critical path. Used by the
// balanced traversal extension (paper §6: "workload balancing between long
// and short neighbor lists [38, 39] can be added on top of EMOGI").
func (w *Warp) SplitWorker() { w.flushCriticalPath() }

// access is the coalescing unit. For each active lane it computes the
// touched 32-byte sector; sectors already in the lane's MRU are L1 hits
// (reads only). The remaining sectors are grouped by 128-byte cache line
// and each contiguous sector run within a line becomes one memory request
// of 32, 64, 96, or 128 bytes, dispatched to the buffer's backing space.
//
// Element accesses must not straddle sector boundaries: callers guarantee
// element-aligned indices (4- or 8-byte elements on matching alignment),
// which real allocators guarantee too.
func (w *Warp) access(buf *memsys.Buffer, off *[WarpSize]int64, mask Mask, write bool) {
	w.ks.WarpInstrs++
	if mask == 0 {
		return
	}
	n := 0
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		addr := buf.Base + uint64(off[lane])
		sector := addr >> 5
		if !write {
			if w.mru[lane] == sector {
				// Sector reuse. For zero-copy data the reuse must survive
				// in the shared L2 until this touch; the thrash model at
				// kernel finish converts a concurrency-dependent fraction
				// of these into 32B re-fetches (§3.3).
				if buf.SpaceAt(off[lane]) == memsys.SpaceHostPinned {
					w.ks.ZCSectorReuses++
				}
				continue
			}
			w.mru[lane] = sector
			if buf.SpaceAt(off[lane]) == memsys.SpaceHostPinned {
				w.zcLanes |= 1 << uint(lane)
			}
		}
		w.sectors[n] = sector
		n++
	}
	if n == 0 {
		return
	}
	// Sort the touched sectors (insertion sort; n <= 32, mostly sorted for
	// merged access patterns) and deduplicate.
	s := w.sectors[:n]
	for i := 1; i < n; i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	m := 1
	for i := 1; i < n; i++ {
		if s[i] != s[m-1] {
			s[m] = s[i]
			m++
		}
	}
	s = s[:m]
	// Emit one request per contiguous sector run within a 128B line. With
	// the reorder stage enabled, off-device runs are buffered in the window
	// instead (reorder.go) and dispatched line-regrouped at flush time;
	// on-device and UVM runs always dispatch immediately (UVM page state is
	// dispatch-order-dependent).
	runStart := 0
	for i := 1; i <= m; i++ {
		if i < m && s[i] == s[i-1]+1 && s[i]>>2 == s[runStart]>>2 {
			continue
		}
		first := s[runStart]
		if w.reorderCap > 0 {
			sp := buf.SpaceAt(int64(first<<5 - buf.Base))
			if sp == memsys.SpaceHostPinned || sp == memsys.SpaceCXL {
				w.reorderPush(buf, s, runStart, i)
				runStart = i
				continue
			}
		}
		size := (i - runStart) * memsys.SectorBytes
		w.dispatch(buf, first<<5, size)
		runStart = i
	}
}

// dispatch routes one coalesced request to the space serving the request's
// address — the buffer's static space, or the substrate its transport
// policy bound the containing segment to — and performs the corresponding
// accounting. A request never spans two segments: coalescing keeps requests
// within one 128B cache line and segments are cache-line multiples.
func (w *Warp) dispatch(buf *memsys.Buffer, addr uint64, size int) {
	d := w.dev
	ks := w.ks
	switch buf.SpaceAt(int64(addr - buf.Base)) {
	case memsys.SpaceGPU:
		ks.HBMBytes += uint64(size)

	case memsys.SpaceHostPinned:
		w.hostReqs++
		ks.PCIeRequests++
		ks.PCIePayloadBytes += uint64(size)
		w.zcBySize[size/memsys.SectorBytes-1]++
		ks.HostDRAMBytes += uint64(d.cfg.HostDRAM.ServedBytes(size))
		w.mon.Record(size, d.cfg.Link.TLPOverheadBytes)
		if h := d.cfg.Link.Faults; h != nil {
			// The decision is keyed by (epoch, warp, seq), not call order,
			// so the injected fault set — and the merged counts — are
			// identical for every worker count. A failed completion still
			// occupied the wire; only the usability of the data changes.
			switch h.RequestFault(d.runEpoch, w.id, w.faultSeq, size) {
			case pcie.ReqFail:
				ks.FaultedReads++
			case pcie.ReqSpike:
				ks.LatencySpikes++
			}
			w.faultSeq++
		}

	case memsys.SpaceUVM:
		off := int64(addr - buf.Base)
		pb := int64(d.uvmgr.Config().PageBytes)
		pagesTouched := int((off+int64(size)-1)/pb - off/pb + 1)
		migrated := d.uvmgr.Touch(buf, off, size)
		if migrated > 0 {
			bytes := d.uvmgr.MigrationWireBytes(migrated)
			ks.UVMMigrations += uint64(migrated)
			// Pages migrate over the link of the tier the segment is homed
			// on: host DRAM behind PCIe, or the CXL expander behind its own
			// link. UVM launches always run serially (see workerCount), so
			// accumulating these floats here is partition-independent.
			lnk := d.cfg.Link
			fromCXL := buf.HomeAt(off) == memsys.SpaceCXL
			if fromCXL {
				lnk = d.cfg.Tiers.CXL().Link
				ks.CXLPayloadBytes += uint64(bytes)
				ks.CXLWireSeconds += lnk.BulkSeconds(bytes)
				ks.CXLMemBytes += uint64(bytes)
				w.mon.RecordBulkClass(bytes, lnk.TLPOverheadBytes, pcie.ClassCXL)
			} else {
				ks.PCIePayloadBytes += uint64(bytes)
				ks.WireSeconds += lnk.BulkSeconds(bytes)
				ks.HostDRAMBytes += uint64(bytes)
				w.mon.RecordBulkClass(bytes, lnk.TLPOverheadBytes, pcie.ClassUVM)
			}
			if d.uvmgr.Config().GPUDriven {
				// GPU-driven paging (GPUVM): the device posts the page
				// reads itself, so they cost link tag occupancy — one
				// full-size request per 128 bytes — instead of waiting on
				// the CPU handler. UVM throughput then scales with the
				// interconnect.
				tagOcc := float64(migrated) * float64(pb/128) * lnk.TagSeconds()
				if fromCXL {
					ks.CXLTagSeconds += tagOcc
				} else {
					ks.TagSeconds += tagOcc
				}
			} else {
				// The single-threaded UVM driver serializes fault handling
				// with the page transfer (§2.2): the pipeline term is
				// handler cost plus transfer time per page, which is what
				// keeps UVM at ~9.1 GB/s even though the wire could do 12.3
				// (Figure 4) and what prevents UVM from scaling to PCIe 4.0
				// (Figure 12).
				ks.UVMSerialSeconds += d.uvmgr.FaultCPUTime(migrated).Seconds() +
					lnk.BulkSeconds(bytes)
			}
		}
		ks.UVMHits += uint64(pagesTouched - migrated)
		// After migration the access is served from GPU memory.
		ks.HBMBytes += uint64(size)

	case memsys.SpaceCXL:
		// Coalesced read served directly by the external CXL-class tier:
		// same shape as the zero-copy case, but crossing the CXL link and
		// the expander's DRAM. CXL sector reuse is not fed into the L2
		// thrash model (a deliberate simplification: CXL-homed segments
		// are the cold tail, whose reuse is rare by construction).
		cxlT := d.cfg.Tiers.CXL()
		w.cxlReqs++
		ks.CXLRequests++
		ks.CXLPayloadBytes += uint64(size)
		w.cxlBySize[size/memsys.SectorBytes-1]++
		ks.CXLMemBytes += uint64(cxlT.Mem.ServedBytes(size))
		w.mon.RecordClassN(size, cxlT.Link.TLPOverheadBytes, 1, pcie.ClassCXL)

	default:
		panic(fmt.Sprintf("gpu: access to buffer %q in unknown space %d", buf.Name, buf.Space))
	}
}

// --- typed gathers, scatters, scalars, atomics ---

// GatherU64 loads 64-bit elements: lane i reads buf[idx[i]] when active.
func (w *Warp) GatherU64(buf *memsys.Buffer, idx *[WarpSize]int64, mask Mask) [WarpSize]uint64 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 8
		}
	}
	w.access(buf, &off, mask, false)
	var out [WarpSize]uint64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			out[i] = buf.AtomicU64(idx[i])
		}
	}
	return out
}

// GatherU32 loads 32-bit elements: lane i reads buf[idx[i]] when active.
func (w *Warp) GatherU32(buf *memsys.Buffer, idx *[WarpSize]int64, mask Mask) [WarpSize]uint32 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, false)
	var out [WarpSize]uint32
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			out[i] = buf.AtomicU32(idx[i])
		}
	}
	return out
}

// ScatterU32 stores 32-bit elements: lane i writes val[i] to buf[idx[i]].
func (w *Warp) ScatterU32(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint32, mask Mask) {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, true)
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			buf.AtomicPutU32(idx[i], val[i])
		}
	}
}

// ScatterU64 stores 64-bit elements.
func (w *Warp) ScatterU64(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint64, mask Mask) {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 8
		}
	}
	w.access(buf, &off, mask, true)
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			buf.AtomicPutU64(idx[i], val[i])
		}
	}
}

// ScalarU64 loads one 64-bit element through lane 0 (a uniform load
// broadcast to the warp).
func (w *Warp) ScalarU64(buf *memsys.Buffer, idx int64) uint64 {
	var off [WarpSize]int64
	off[0] = idx * 8
	w.access(buf, &off, 1, false)
	return buf.AtomicU64(idx)
}

// ScalarU32 loads one 32-bit element through lane 0.
func (w *Warp) ScalarU32(buf *memsys.Buffer, idx int64) uint32 {
	var off [WarpSize]int64
	off[0] = idx * 4
	w.access(buf, &off, 1, false)
	return buf.AtomicU32(idx)
}

// PairU64 loads buf[idx] and buf[idx+1] through two lanes — the classic
// "start = offset[v]; end = offset[v+1]" neighbor-list bounds read, which
// usually coalesces into a single request.
func (w *Warp) PairU64(buf *memsys.Buffer, idx int64) (uint64, uint64) {
	var off [WarpSize]int64
	off[0] = idx * 8
	off[1] = (idx + 1) * 8
	w.access(buf, &off, 3, false)
	return buf.AtomicU64(idx), buf.AtomicU64(idx + 1)
}

// StoreScalarU32 stores one 32-bit element through lane 0.
func (w *Warp) StoreScalarU32(buf *memsys.Buffer, idx int64, v uint32) {
	var off [WarpSize]int64
	off[0] = idx * 4
	w.access(buf, &off, 1, true)
	buf.AtomicPutU32(idx, v)
}

// AtomicMinU32 performs per-lane atomicMin on buf[idx[i]] with val[i],
// returning the previous values. Within one warp, lanes are applied in
// ascending order — one legal serialization of the hardware's arbitrary
// order; across warps the CAS loop serializes arbitrarily. The final buffer
// state is order-independent (min commutes), but the returned old values
// are not: callers must only branch on them in order-insensitive ways (see
// DESIGN.md, "Parallel execution engine").
func (w *Warp) AtomicMinU32(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint32, mask Mask) [WarpSize]uint32 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, true)
	var old [WarpSize]uint32
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			old[i] = buf.AtomicMinU32(idx[i], val[i])
		}
	}
	return old
}

// AtomicMaxU32 performs per-lane atomicMax on buf[idx[i]] with val[i],
// returning the previous values. The same ordering caveats as AtomicMinU32
// apply: max commutes, so the final buffer state is order-independent, but
// the returned old values may only feed order-insensitive logic.
func (w *Warp) AtomicMaxU32(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint32, mask Mask) [WarpSize]uint32 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, true)
	var old [WarpSize]uint32
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			old[i] = buf.AtomicMaxU32(idx[i], val[i])
		}
	}
	return old
}

// AtomicOrU32 performs per-lane atomicOr on buf[idx[i]] with val[i],
// returning the previous values. Like min, OR commutes, so the final
// buffer state is independent of warp execution order.
func (w *Warp) AtomicOrU32(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint32, mask Mask) [WarpSize]uint32 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, true)
	var old [WarpSize]uint32
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			old[i] = buf.AtomicOrU32(idx[i], val[i])
		}
	}
	return old
}

// AtomicOrU64 performs per-lane atomicOr on the 64-bit elements
// buf[idx[i]] with val[i], returning the previous values. Like its 32-bit
// sibling, OR commutes, so the final buffer state is independent of warp
// execution order; the returned old values may only feed order-insensitive
// logic. The batched traversal engine uses it to set query-lane bits in
// next-frontier bitmask words.
func (w *Warp) AtomicOrU64(buf *memsys.Buffer, idx *[WarpSize]int64, val *[WarpSize]uint64, mask Mask) [WarpSize]uint64 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 8
		}
	}
	w.access(buf, &off, mask, true)
	var old [WarpSize]uint64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			old[i] = buf.AtomicOrU64(idx[i], val[i])
		}
	}
	return old
}

// AtomicOrScalarU32 performs one atomicOr on buf[idx] through lane 0.
func (w *Warp) AtomicOrScalarU32(buf *memsys.Buffer, idx int64, v uint32) uint32 {
	var off [WarpSize]int64
	off[0] = idx * 4
	w.access(buf, &off, 1, true)
	return buf.AtomicOrU32(idx, v)
}

// AtomicCASU32 performs per-lane compare-and-swap: if buf[idx[i]] == cmp[i]
// it is set to val[i]; the previous value is returned.
func (w *Warp) AtomicCASU32(buf *memsys.Buffer, idx *[WarpSize]int64, cmp, val *[WarpSize]uint32, mask Mask) [WarpSize]uint32 {
	var off [WarpSize]int64
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			off[i] = idx[i] * 4
		}
	}
	w.access(buf, &off, mask, true)
	var old [WarpSize]uint32
	for i := 0; i < WarpSize; i++ {
		if mask.Has(i) {
			old[i] = buf.AtomicCASU32(idx[i], cmp[i], val[i])
		}
	}
	return old
}
