package gpu

import (
	"slices"

	"repro/internal/memsys"
)

// This file implements the optional IARU-style reorder stage (PAPERS.md:
// "Irregular Accesses Reorder Unit"). When enabled, coalesced runs headed
// for an off-device tier (host-pinned zero-copy or the external CXL tier)
// are not dispatched immediately: their 32B sectors are buffered in a
// bounded per-warp window and re-grouped by 128-byte cache line when the
// window flushes. Sectors that different virtual-warp slices touched in the
// same line — invisible to the per-access coalescer — merge into one wider
// request, raising the mean request size the same way the IARU hardware
// raises it ahead of the memory coalescer.
//
// Scope and determinism:
//   - Only SpaceHostPinned and SpaceCXL runs are buffered. SpaceGPU is
//     local (nothing to merge on a link), and SpaceUVM must keep its
//     dispatch order because page migration state (LRU) is order-dependent.
//   - The window is per-warp state, flushed at the end of each warp by
//     runWarpRange, so no request ever crosses a warp boundary. Warps are
//     never split across launch workers, which keeps every derived count
//     bit-identical for any worker count (DESIGN.md §17).
//   - The MRU sector filter and the L2 thrash inputs (ZCSectorReuses,
//     ZCActiveLanes) are applied at access time, before buffering, so they
//     are identical with the stage on or off. Only the request grouping —
//     counts, sizes, and the per-warp critical-path request totals — moves.

// minReorderWindow is the smallest effective window: one full 128B line
// (four sectors), so a single coalesced run always fits an empty window.
const minReorderWindow = 4

// reorderEntry is one buffered 32B sector. Sector numbers are global
// virtual addresses >> 5, so they are unique across buffers; the buffer is
// carried along because a flush dispatches through the owning buffer's
// space routing.
type reorderEntry struct {
	buf    *memsys.Buffer
	sector uint64
}

// reorderPush buffers one coalesced run (sectors s[lo:hi], all within one
// 128B line of buf) into the window, flushing first if the run would not
// fit. Counts the run against the pre-reorder baseline so the flush can
// attribute merged requests.
func (w *Warp) reorderPush(buf *memsys.Buffer, s []uint64, lo, hi int) {
	if len(w.reorder)+(hi-lo) > w.reorderCap {
		w.flushReorder()
	}
	for j := lo; j < hi; j++ {
		w.reorder = append(w.reorder, reorderEntry{buf: buf, sector: s[j]})
	}
	w.reorderBase++
	if len(w.reorder) >= w.reorderCap {
		w.flushReorder()
	}
}

// flushReorder drains the window: sorts the buffered sectors, deduplicates,
// re-groups contiguous sectors within a 128B line into single requests, and
// dispatches them. Dispatch order is ascending sector order — deterministic
// regardless of the access order that filled the window.
func (w *Warp) flushReorder() {
	n := len(w.reorder)
	if n == 0 {
		return
	}
	e := w.reorder
	slices.SortFunc(e, func(a, b reorderEntry) int {
		switch {
		case a.sector < b.sector:
			return -1
		case a.sector > b.sector:
			return 1
		default:
			return 0
		}
	})
	// Deduplicate in place. Equal sectors always belong to the same buffer
	// (sector numbers are global VAs), so keeping the first is enough.
	m := 1
	for i := 1; i < n; i++ {
		if e[i].sector != e[m-1].sector {
			e[m] = e[i]
			m++
		}
	}
	e = e[:m]
	// Emit one request per contiguous sector run within a 128B line, never
	// crossing a buffer boundary (adjacent buffers can abut in VA space).
	emitted := uint64(0)
	runStart := 0
	for i := 1; i <= m; i++ {
		if i < m && e[i].sector == e[i-1].sector+1 &&
			e[i].sector>>2 == e[runStart].sector>>2 &&
			e[i].buf == e[runStart].buf {
			continue
		}
		first := e[runStart].sector
		size := (i - runStart) * memsys.SectorBytes
		w.dispatch(e[runStart].buf, first<<5, size)
		emitted++
		runStart = i
	}
	ks := w.ks
	ks.ReorderFlushes++
	ks.ReorderWindowSectors += uint64(n)
	if w.reorderBase > emitted {
		ks.ReorderMerged += w.reorderBase - emitted
	}
	w.reorder = w.reorder[:0]
	w.reorderBase = 0
}
