package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pcie"
)

// zcSizeClasses is the number of distinct zero-copy request sizes the
// coalescer can emit: 32, 64, 96, and 128 bytes (paper Figure 3). Workers
// count requests per size class as integers during the kernel; finish
// converts the merged counts into wire/tag seconds so the float arithmetic
// is independent of the warp partitioning.
const zcSizeClasses = 4

// LaunchOption adjusts how one kernel launch executes.
type LaunchOption func(*launchConfig)

type launchConfig struct {
	serial bool
}

// Serial forces the launch onto a single worker regardless of
// Config.Workers. Kernel bodies that read values other warps of the same
// launch write through anything but commutative atomics — or that mutate
// plain host-side state — are order- or race-sensitive and must opt out of
// parallel execution to keep results bit-for-bit reproducible.
func Serial() LaunchOption { return func(c *launchConfig) { c.serial = true } }

// ShardRange splits the warp ID range [0, warps) into workers contiguous
// shards and returns shard i as the half-open interval [lo, hi). The first
// warps%workers shards hold one extra warp, so every ID is covered exactly
// once and shard sizes differ by at most one.
func ShardRange(warps, workers, i int) (lo, hi int) {
	if workers <= 0 || i < 0 || i >= workers {
		panic(fmt.Sprintf("gpu: ShardRange(%d, %d, %d) out of range", warps, workers, i))
	}
	base := warps / workers
	rem := warps % workers
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// launchShard is one worker's private accumulation state: a stats shard, a
// private traffic monitor, the per-size zero-copy request counts, and the
// worker's persistent warp. All counting fields merge commutatively (or in
// ascending shard order, for traces) at the launch barrier. Shards live in
// the device's pool and are reused across launches, so a worker index keeps
// its warp — and the warp's kernel-private Local scratch — for the lifetime
// of the device.
type launchShard struct {
	ks        KernelStats
	mon       pcie.Monitor
	zcBySize  [zcSizeClasses]uint64
	cxlBySize [zcSizeClasses]uint64
	w         Warp
}

// ksChunkSize is the KernelStats slab chunk: big enough that multi-round
// traversals stop growing the slab quickly, small enough not to matter on
// tiny devices.
const ksChunkSize = 64

// newLaunchStats hands out a zeroed *KernelStats from the device's chunked
// slab. Chunks are never moved, so the pointer stays valid until ResetStats
// rewinds the slab.
func (d *Device) newLaunchStats(name string, warps int) *KernelStats {
	ci, cj := d.ksUsed/ksChunkSize, d.ksUsed%ksChunkSize
	if ci == len(d.ksChunks) {
		d.ksChunks = append(d.ksChunks, make([]KernelStats, ksChunkSize))
	}
	d.ksUsed++
	ks := &d.ksChunks[ci][cj]
	*ks = KernelStats{Name: name, Warps: warps}
	return ks
}

// reorderCap resolves the effective reorder-window bound: 0 when the stage
// is off, otherwise at least one full 128B line so any single coalesced run
// fits an empty window.
func (d *Device) reorderCap() int {
	c := d.cfg.ReorderWindow
	if c > 0 && c < minReorderWindow {
		c = minReorderWindow
	}
	return c
}

// workerCount resolves the effective worker count for a launch.
func (d *Device) workerCount(warps int, lc *launchConfig) int {
	// UVM page faults mutate the manager's LRU residency state, whose
	// outcome depends on fault order; those launches stay serial, as does
	// anything that asked for it explicitly and any routed (adaptive
	// transport policy) run, which can bind segments to UVM mid-run.
	if lc.serial || d.forceSerial || d.arena.HasUVM() {
		return 1
	}
	n := d.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > warps {
		n = warps
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runWarpRange executes warp IDs [lo, hi) on w in ascending order. The
// reorder window drains at each warp's end — before the critical-path fold,
// since flushed requests still belong to the warp that buffered them — so
// no request ever crosses a warp boundary and sharded launches stay
// bit-identical to serial ones. w.Local is deliberately not reset: it is
// the kernel's per-worker scratch.
func runWarpRange(w *Warp, lo, hi int, body func(w *Warp)) {
	for id := lo; id < hi; id++ {
		w.id = id
		w.resetMRU()
		w.zcLanes = 0
		w.hostReqs = 0
		w.cxlReqs = 0
		w.faultSeq = 0
		body(w)
		w.flushReorder()
		w.ks.ZCActiveLanes += uint64(Mask(w.zcLanes).Count())
		w.flushCriticalPath()
	}
}

// Launch executes a kernel: body is invoked once per warp with warp IDs
// 0..warps-1, partitioned into contiguous shards across the worker pool
// (Config.Workers). Bodies therefore run concurrently unless the launch is
// serial — see Serial and the package comment for the safety contract. It
// returns the launch's statistics after advancing the simulated clock.
func (d *Device) Launch(name string, warps int, body func(w *Warp), opts ...LaunchOption) *KernelStats {
	if warps < 0 {
		panic(fmt.Sprintf("gpu: Launch %q with negative warp count %d", name, warps))
	}
	// The option scratch lives on the device, not this frame: &lc of a local
	// would escape through the indirect option calls and heap-allocate on
	// every launch, breaking the zero-alloc round contract. Launches on one
	// device are never concurrent, so the field is safe to reuse.
	d.lc = launchConfig{}
	lc := &d.lc
	for _, o := range opts {
		o(lc)
	}
	workers := d.workerCount(warps, lc)
	rcap := d.reorderCap()

	ks := d.newLaunchStats(name, warps)
	if workers == 1 {
		// Serial fast path: accumulate straight into the launch stats and
		// the device monitor through the device's persistent warp, exactly
		// like the historical engine but with zero per-launch allocations.
		d.serialZC = [zcSizeClasses]uint64{}
		d.serialCXL = [zcSizeClasses]uint64{}
		w := &d.serialWarp
		w.dev = d
		w.ks = ks
		w.mon = &d.mon
		w.zcBySize = &d.serialZC
		w.cxlBySize = &d.serialCXL
		w.reorderCap = rcap
		runWarpRange(w, 0, warps, body)
		d.finish(ks, &d.serialZC, &d.serialCXL, 1)
		return ks
	}

	for len(d.shardPool) < workers {
		d.shardPool = append(d.shardPool, &launchShard{})
	}
	shards := d.shardPool[:workers]
	traceLimit := d.mon.TraceLimit()
	var wg sync.WaitGroup
	for i, sh := range shards {
		sh.ks = KernelStats{}
		sh.zcBySize = [zcSizeClasses]uint64{}
		sh.cxlBySize = [zcSizeClasses]uint64{}
		sh.mon.Reset()
		if traceLimit != sh.mon.TraceLimit() {
			// Give each shard the full budget; the ordered merge below
			// truncates at the device monitor's remaining capacity.
			sh.mon.EnableTrace(traceLimit)
		}
		lo, hi := ShardRange(warps, workers, i)
		w := &sh.w
		w.dev = d
		w.ks = &sh.ks
		w.mon = &sh.mon
		w.zcBySize = &sh.zcBySize
		w.cxlBySize = &sh.cxlBySize
		w.reorderCap = rcap
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWarpRange(w, lo, hi, body)
		}()
	}
	wg.Wait()

	// Merge in ascending shard order. Since shards are contiguous warp
	// ranges, concatenating their monitor traces reproduces the serial
	// arrival order; every counter merge is a sum or a max.
	var zc, cxl [zcSizeClasses]uint64
	for _, sh := range shards {
		ks.Add(&sh.ks)
		for j, n := range sh.zcBySize {
			zc[j] += n
		}
		for j, n := range sh.cxlBySize {
			cxl[j] += n
		}
		d.mon.Merge(&sh.mon)
	}
	d.finish(ks, &zc, &cxl, workers)
	return ks
}
