package gpu

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/pcie"
)

// thrashDevice returns a device with a deliberately tiny L2 so the cache
// thrash model fires deterministically.
func thrashDevice(l2 int64, lanes int, sensitivity float64) *Device {
	return NewDevice(Config{
		Name:               "thrash",
		HBM:                memsys.HBM2V100(),
		HostDRAM:           memsys.DDR4Quad(),
		Link:               pcie.Gen3x16(),
		L2Bytes:            l2,
		MaxConcurrentLanes: lanes,
		ThrashSensitivity:  sensitivity,
	})
}

// stridedKernel runs the naive-style sequential walk: every lane streams
// its own 64-element (8B) chunk, producing 3 sector reuses per sector.
func stridedKernel(d *Device, buf *memsys.Buffer, warps int) *KernelStats {
	return d.Launch("strided", warps, func(w *Warp) {
		base := int64(w.ID()) * WarpSize * 64
		var idx [WarpSize]int64
		for j := 0; j < 64; j++ {
			for l := 0; l < WarpSize; l++ {
				idx[l] = base + int64(l*64+j)
			}
			w.GatherU64(buf, &idx, MaskFull)
		}
	})
}

func TestThrashChargesRefetches(t *testing.T) {
	// L2 of 1KB = 32 sectors vs 32 concurrent lanes * 32B = 1KB footprint:
	// miss fraction = sensitivity * 1.0.
	d := thrashDevice(1024, 1<<20, 1.0)
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 1<<20)
	ks := stridedKernel(d, buf, 1)
	if ks.ZCSectorReuses == 0 {
		t.Fatalf("sequential walk should observe sector reuses")
	}
	if ks.ZCRefetches != ks.ZCSectorReuses {
		t.Errorf("full thrash should refetch every reuse: %d vs %d",
			ks.ZCRefetches, ks.ZCSectorReuses)
	}
	// Each refetch is a 32B request charged everywhere.
	base := uint64(32 * 64 / 4) // sectors actually fetched first: 512
	if ks.PCIeRequests != base+ks.ZCRefetches {
		t.Errorf("requests = %d, want %d first fetches + %d refetches",
			ks.PCIeRequests, base, ks.ZCRefetches)
	}
	if d.Monitor().SizeHistogram().Count(32) != ks.PCIeRequests {
		t.Errorf("monitor did not record refetches")
	}
}

func TestNoThrashWithBigL2(t *testing.T) {
	d := thrashDevice(1<<30, 1<<20, 1.0)
	buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 1<<20)
	ks := stridedKernel(d, buf, 1)
	if ks.ZCRefetches != 0 {
		t.Errorf("huge L2 should not thrash, got %d refetches", ks.ZCRefetches)
	}
}

func TestThrashScalesWithConcurrency(t *testing.T) {
	// Same data, same L2: more concurrent streams means more refetches.
	run := func(lanes int) uint64 {
		d := thrashDevice(64*1024, lanes, 1.0)
		buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4<<20)
		ks := stridedKernel(d, buf, 64)
		return ks.ZCRefetches
	}
	low := run(32)
	high := run(32 * 64)
	if high <= low {
		t.Errorf("refetches should grow with concurrency: %d -> %d", low, high)
	}
}

func TestThrashConcurrencyCappedByHardware(t *testing.T) {
	// Active lanes above the hardware limit must not increase the miss
	// fraction further.
	run := func(hwLanes int) uint64 {
		d := thrashDevice(64*1024, hwLanes, 1.0)
		buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 4<<20)
		ks := stridedKernel(d, buf, 64) // 2048 active lanes
		return ks.ZCRefetches
	}
	if run(512) != run(512) {
		t.Fatalf("thrash model must be deterministic")
	}
	// With the cap at 512 lanes, raising actual activity (already above
	// cap) changes nothing; raising the cap does.
	if run(2048) <= run(512) {
		t.Errorf("raising the hardware cap should raise refetches while under it")
	}
}

func TestThrashOnlyAppliesToZeroCopy(t *testing.T) {
	d := thrashDevice(32, 1<<20, 1.0) // absurdly small L2
	buf := d.Arena().MustAlloc("gpu", memsys.SpaceGPU, 1<<20)
	ks := stridedKernel(d, buf, 1)
	if ks.ZCSectorReuses != 0 || ks.ZCRefetches != 0 {
		t.Errorf("GPU-memory reuse must not enter the zero-copy thrash model")
	}
	if ks.PCIeRequests != 0 {
		t.Errorf("GPU-memory traffic must not hit the link")
	}
}

func TestThrashSensitivityScalesLinearly(t *testing.T) {
	run := func(s float64) uint64 {
		d := thrashDevice(2048, 1<<20, s)
		buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 1<<20)
		// 32 lanes * 32B = 1KB footprint over 2KB L2 = 0.5 base ratio.
		return stridedKernel(d, buf, 1).ZCRefetches
	}
	half := run(1.0) // miss = 0.5
	full := run(2.0) // miss = 1.0
	if full < 2*half-2 || full > 2*half+2 {
		t.Errorf("refetches should scale with sensitivity: %d vs %d", half, full)
	}
}

// TestThrashPreservesBandwidthRate: thrash adds traffic but each 32B
// request still moves at the tag-limited rate, so the achieved PCIe
// bandwidth (rate) stays ~4.75 GB/s while total time grows — exactly the
// paper's Figure 4(a) signature ("bandwidth saturated but transferring
// more bytes than the dataset").
func TestThrashPreservesBandwidthRate(t *testing.T) {
	clean := thrashDevice(1<<30, 1<<20, 1.0)
	dirty := thrashDevice(1024, 1<<20, 1.0)
	for _, d := range []*Device{clean, dirty} {
		buf := d.Arena().MustAlloc("zc", memsys.SpaceHostPinned, 1<<20)
		// Enough warps that aggregate parallelism hides the per-warp
		// latency critical path.
		ks := stridedKernel(d, buf, 64)
		dataTime := (ks.Elapsed - d.Config().LaunchOverhead).Seconds()
		bw := float64(ks.PCIePayloadBytes) / dataTime / 1e9
		if bw < 4.4 || bw > 5.1 {
			t.Errorf("strided rate = %.2f GB/s, want ~4.75 regardless of thrash", bw)
		}
	}
	// But the thrashing run takes longer for the same useful data.
	cleanKS := clean.Kernels()[0]
	dirtyKS := dirty.Kernels()[0]
	if dirtyKS.Elapsed <= cleanKS.Elapsed {
		t.Errorf("thrash should increase elapsed time: %v vs %v",
			dirtyKS.Elapsed, cleanKS.Elapsed)
	}
}
