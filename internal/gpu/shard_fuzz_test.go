package gpu

import "testing"

// FuzzShardRange checks the warp-partitioning invariants the parallel
// engine's determinism proof rests on, for arbitrary warp counts and
// worker counts: the shards are contiguous, ascending, cover every warp ID
// exactly once, and differ in size by at most one.
func FuzzShardRange(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(7, 8)
	f.Add(1000, 16)
	f.Add(31, 32)
	f.Add(1<<20, 7)
	f.Fuzz(func(t *testing.T, warps, workers int) {
		// Clamp to the domain Launch actually calls with: warps >= 0 and
		// 1 <= workers (workerCount never returns less than 1).
		if warps < 0 {
			warps = -warps
		}
		warps %= 1 << 16
		if workers < 1 {
			workers = 1 - workers
		}
		workers = workers%1024 + 1

		base, rem := warps/workers, warps%workers
		prevHi := 0
		for i := 0; i < workers; i++ {
			lo, hi := ShardRange(warps, workers, i)
			if lo != prevHi {
				t.Fatalf("ShardRange(%d,%d,%d): lo = %d, want %d — gap or overlap between shards",
					warps, workers, i, lo, prevHi)
			}
			wantSize := base
			if i < rem {
				wantSize++
			}
			if hi-lo != wantSize {
				t.Fatalf("ShardRange(%d,%d,%d): size = %d, want %d — remainder must spread over the first %d shards",
					warps, workers, i, hi-lo, wantSize, rem)
			}
			prevHi = hi
		}
		if prevHi != warps {
			t.Fatalf("ShardRange(%d,%d): shards end at %d, want %d — warp IDs dropped", warps, workers, prevHi, warps)
		}
	})
}
