package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsys"
)

// TestAtomicMinConvergesProperty: for any sequence of atomicMin operations
// over any lane/warp partitioning, each cell ends at the minimum of its
// initial value and every value ever pushed at it — order independence is
// what the traversal algorithms rely on.
func TestAtomicMinConvergesProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const cells = 16
		d := testDevice()
		buf := d.Arena().MustAlloc("cells", memsys.SpaceGPU, cells*4)
		want := make([]uint32, cells)
		for i := range want {
			want[i] = 1000
			buf.PutU32(int64(i), 1000)
		}
		rng := rand.New(rand.NewSource(seed))
		// Partition ops into random warp batches with random lane masks.
		d.Launch("minprop", 1, func(w *Warp) {
			i := 0
			for i < len(ops) {
				var idx [WarpSize]int64
				var val [WarpSize]uint32
				mask := MaskNone
				batch := 1 + rng.Intn(WarpSize)
				for l := 0; l < batch && i < len(ops); l++ {
					cell := int64(ops[i]) % cells
					v := uint32(ops[i]) % 2000
					idx[l] = cell
					val[l] = v
					mask = mask.Set(l)
					if v < want[cell] {
						want[cell] = v
					}
					i++
				}
				w.AtomicMinU32(buf, &idx, &val, mask)
			}
		})
		for c := int64(0); c < cells; c++ {
			if buf.U32(c) != want[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAtomicOrU64ConvergesProperty: for any sequence of 64-bit atomicOr
// operations over any lane/warp partitioning, each cell ends at the OR of
// its initial value and every value ever pushed at it — the order
// independence the batched engine's lane-bitmask frontier relies on.
func TestAtomicOrU64ConvergesProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const cells = 16
		d := testDevice()
		buf := d.Arena().MustAlloc("orcells", memsys.SpaceGPU, cells*8)
		want := make([]uint64, cells)
		for i := range want {
			want[i] = 1 << 63
			buf.PutU64(int64(i), 1<<63)
		}
		rng := rand.New(rand.NewSource(seed))
		d.Launch("orprop", 1, func(w *Warp) {
			i := 0
			for i < len(ops) {
				var idx [WarpSize]int64
				var val [WarpSize]uint64
				mask := MaskNone
				batch := 1 + rng.Intn(WarpSize)
				for l := 0; l < batch && i < len(ops); l++ {
					cell := int64(ops[i]) % cells
					v := uint64(1) << (ops[i] % 63)
					idx[l] = cell
					val[l] = v
					mask = mask.Set(l)
					want[cell] |= v
					i++
				}
				w.AtomicOrU64(buf, &idx, &val, mask)
			}
		})
		for c := int64(0); c < cells; c++ {
			if buf.U64(c) != want[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAtomicCASLinearizesProperty: within one warp call, exactly one lane
// wins each contended CAS chain, and the final value is the last winning
// lane's proposal under the documented ascending-lane serialization.
func TestAtomicCASLinearizesProperty(t *testing.T) {
	f := func(vals [WarpSize]uint8) bool {
		d := testDevice()
		buf := d.Arena().MustAlloc("cas", memsys.SpaceGPU, 64)
		buf.PutU32(0, 7)
		var winner = -1
		d.Launch("cas", 1, func(w *Warp) {
			var idx [WarpSize]int64
			var cmp, val [WarpSize]uint32
			for l := 0; l < WarpSize; l++ {
				cmp[l] = 7
				val[l] = uint32(vals[l]) + 100 // never equal to 7
			}
			old := w.AtomicCASU32(buf, &idx, &cmp, &val, MaskFull)
			for l := 0; l < WarpSize; l++ {
				if old[l] == 7 {
					if winner != -1 {
						winner = -2 // two winners: violation
						return
					}
					winner = l
				}
			}
		})
		// Lane 0 must win under ascending serialization, and the cell must
		// hold its proposal.
		return winner == 0 && buf.U32(0) == uint32(vals[0])+100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestScatterGatherRoundTripProperty: scattering values and gathering them
// back through the warp API is the identity for any index permutation
// without duplicates.
func TestScatterGatherRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := testDevice()
		buf := d.Arena().MustAlloc("rt", memsys.SpaceGPU, 1<<12)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(512)
		var idx [WarpSize]int64
		var val [WarpSize]uint32
		for l := 0; l < WarpSize; l++ {
			idx[l] = int64(perm[l])
			val[l] = rng.Uint32()
		}
		ok := true
		d.Launch("rt", 1, func(w *Warp) {
			w.ScatterU32(buf, &idx, &val, MaskFull)
			w.InvalidateMRU()
			got := w.GatherU32(buf, &idx, MaskFull)
			for l := 0; l < WarpSize; l++ {
				if got[l] != val[l] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
